// Package stream is the windowed irregular-update engine: it consumes
// an unbounded sequence of update batches — edge insertions or weight
// deltas, deterministically generated from a seeded workload spec —
// and drives them through the existing scheme runners (Baseline,
// PB-SW, COBRA, COBRA-COMM, PHI) using epoch-based binning. Each
// window is binned, flushed, and applied as one simulation cell with
// the same byte-identity and multi-core sharding contracts as offline
// cells.
//
// Determinism contract (the basis for window-granularity checkpoints):
//
//   - Update(i) is a pure function of (Seed, i): any window is
//     addressable without generating its prefix, so a resumed run can
//     functionally replay completed windows and a remote worker could
//     regenerate any window from the spec alone.
//   - The functional state after window w equals the offline oracle
//     applied to updates [0, (w+1)*WindowUpdates): updates are
//     commutative integer adds, and every scheme runner is a
//     functional no-op, so a streamed run over K windows bitwise-
//     equals the offline run over the concatenated stream — at one
//     core and under the sharded multi-core model alike.
//   - A window's METRICS depend only on the window's updates and the
//     architecture, never on the functional state accumulated by
//     earlier windows (appliers touch addresses derived from keys, not
//     values). That independence is what makes per-window journal
//     entries replayable in isolation.
package stream

import (
	"fmt"

	"cobra/internal/sim"
)

// Kind selects the update family.
type Kind int

const (
	// KindIngest streams edge insertions: each update increments the
	// destination key's degree by one (4 B tuple — the key alone).
	KindIngest Kind = iota
	// KindDelta streams weight deltas: each update adds a hash-derived
	// delta in [1, 256] to the key's weight (8 B tuple: key + delta).
	KindDelta
)

func (k Kind) String() string {
	switch k {
	case KindIngest:
		return "ingest"
	case KindDelta:
		return "delta"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dist selects the key distribution of the update stream.
type Dist int

const (
	// DistUniform draws keys uniformly from [0, NumKeys).
	DistUniform Dist = iota
	// DistSkewed cubes a uniform fraction, concentrating update mass on
	// low keys — the power-law hot-set every binning scheme exploits.
	DistSkewed
)

// Workload is one seeded streaming workload: Windows windows of
// WindowUpdates updates each over a NumKeys key space.
type Workload struct {
	Name      string // registry app name ("StreamIngest", "StreamDelta")
	InputName string // registry input name selecting Dist
	Kind      Kind
	Dist      Dist
	NumKeys   int
	Windows   int
	// WindowUpdates is the epoch size: updates binned, flushed, and
	// applied per window.
	WindowUpdates int
	Seed          uint64
}

// Total is the length of the concatenated update sequence.
func (w Workload) Total() int { return w.Windows * w.WindowUpdates }

// Validate sanity-checks the workload shape.
func (w Workload) Validate() error {
	if w.NumKeys <= 0 {
		return fmt.Errorf("stream: workload %s has no keys", w.Name)
	}
	if w.Windows <= 0 {
		return fmt.Errorf("stream: workload %s has no windows", w.Name)
	}
	if w.WindowUpdates <= 0 {
		return fmt.Errorf("stream: workload %s has empty windows", w.Name)
	}
	if w.Kind != KindIngest && w.Kind != KindDelta {
		return fmt.Errorf("stream: workload %s has unknown kind %d", w.Name, int(w.Kind))
	}
	if w.Dist != DistUniform && w.Dist != DistSkewed {
		return fmt.Errorf("stream: workload %s has unknown distribution %d", w.Name, int(w.Dist))
	}
	return nil
}

// mix is splitmix64's finalizer: the per-index hash behind the
// random-access generator.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Update returns the i'th update of the stream — a pure function of
// (Seed, i), never of preceding updates.
func (w Workload) Update(i int) (key uint32, val uint64) {
	h := mix(w.Seed ^ mix(uint64(i)))
	k := h % uint64(w.NumKeys)
	if w.Dist == DistSkewed {
		u := float64(h>>11) / (1 << 53)
		u = u * u * u
		k = uint64(u * float64(w.NumKeys))
		if k >= uint64(w.NumKeys) {
			k = uint64(w.NumKeys) - 1
		}
	}
	val = 1
	if w.Kind == KindDelta {
		val = 1 + (mix(h) & 0xFF)
	}
	return uint32(k), val
}

// State is the persistent functional state of a streamed run: the
// weight (or degree) accumulated per key. It survives across windows
// and is shared by per-core shard views within a window, so the final
// slice is directly byte-comparable against the offline oracle's.
type State struct {
	Vals []uint64
}

// NewState allocates the zeroed initial state.
func NewState(numKeys int) *State { return &State{Vals: make([]uint64, numKeys)} }

// ApplyWindow replays window idx functionally — no simulation, no
// machine — mutating st exactly as a simulated run of the window
// would. This is the resume path for windows already recorded in a
// checkpoint journal.
func (w Workload) ApplyWindow(idx int, st *State) {
	lo, hi := idx*w.WindowUpdates, (idx+1)*w.WindowUpdates
	for i := lo; i < hi; i++ {
		k, v := w.Update(i)
		st.Vals[k] += v
	}
}

// applier performs stream updates against the persistent state while
// issuing each update's read-modify-write on the simulated machine.
type applier struct {
	m    *sim.Mach
	reg  sim.Region
	vals []uint64
}

func (a *applier) Apply(key uint32, val uint64) {
	addr := a.reg.Addr(uint64(key) * 8)
	a.m.B.Load(addr)
	a.m.B.Store(addr)
	a.vals[key] += val
}

// Shard returns a per-core view issuing ops on m while sharing the
// functional weight array (sharded runs partition the key range, so
// views write disjoint elements).
func (a *applier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

func addU64(a, b uint64) uint64 { return a + b }

// tupleBytes is the binned tuple size per kind (ingest bins the key
// alone; delta bins key + 4 B delta).
func (w Workload) tupleBytes() int {
	if w.Kind == KindDelta {
		return 8
	}
	return 4
}

// streamBytes is input bytes consumed per update (ingest reads an
// 8 B edge; delta reads a 16 B keyed-delta record).
func (w Workload) streamBytes() int {
	if w.Kind == KindDelta {
		return 16
	}
	return 8
}

// appRange builds the sim.App view over updates [lo, hi). With st set,
// the applier binds to that shared persistent state (windowed epochs,
// conformance oracles); with st nil every NewApplier call allocates a
// fresh zeroed state — the static-app semantics the exp registry
// expects, where one App may run through several schemes.
func (w Workload) appRange(lo, hi int, st *State) *sim.App {
	return &sim.App{
		Name:        w.Name,
		InputName:   w.InputName,
		Commutative: true,
		TupleBytes:  w.tupleBytes(),
		NumKeys:     w.NumKeys,
		NumUpdates:  hi - lo,
		StreamBytes: w.streamBytes(),
		ApplyALU:    1,
		Reduce:      addU64,
		ForEach: func(emit func(uint32, uint64, bool)) {
			for i := lo; i < hi; i++ {
				k, v := w.Update(i)
				emit(k, v, false)
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			vals := make([]uint64, w.NumKeys)
			if st != nil {
				vals = st.Vals
			}
			return &applier{m: m, reg: m.Alloc(uint64(w.NumKeys) * 8), vals: vals}
		},
	}
}

// WindowApp returns the epoch view of window idx, applying into the
// shared persistent state st.
func (w Workload) WindowApp(idx int, st *State) *sim.App {
	return w.appRange(idx*w.WindowUpdates, (idx+1)*w.WindowUpdates, st)
}

// App returns the offline concatenated workload — the whole update
// sequence as one static app with self-contained functional state.
// This is what the exp registry serves for BuildApp("StreamIngest",
// ...): the same updates the windowed engine streams, applied in one
// offline campaign cell.
func (w Workload) App() *sim.App {
	return w.appRange(0, w.Total(), nil)
}
