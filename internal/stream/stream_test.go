package stream

import (
	"context"
	"fmt"
	"testing"

	"cobra/internal/sim"
)

func testWorkload(kind Kind, dist Dist, windows int) Workload {
	w := Workload{
		Name:          "StreamIngest",
		InputName:     "URND",
		Kind:          kind,
		Dist:          dist,
		NumKeys:       1 << 10,
		Windows:       windows,
		WindowUpdates: 1 << 12,
		Seed:          42,
	}
	if kind == KindDelta {
		w.Name = "StreamDelta"
	}
	if dist == DistSkewed {
		w.InputName = "SKEW"
	}
	return w
}

// TestUpdateDeterminism pins the random-access generator: Update(i) is
// a pure function of (Seed, i), so two workloads with the same seed
// agree element-wise and a different seed diverges.
func TestUpdateDeterminism(t *testing.T) {
	w := testWorkload(KindDelta, DistUniform, 3)
	w2 := w
	diff := 0
	other := w
	other.Seed = 43
	for i := 0; i < w.Total(); i++ {
		k1, v1 := w.Update(i)
		k2, v2 := w2.Update(i)
		if k1 != k2 || v1 != v2 {
			t.Fatalf("Update(%d) not deterministic: (%d,%d) vs (%d,%d)", i, k1, v1, k2, v2)
		}
		if int(k1) >= w.NumKeys {
			t.Fatalf("Update(%d) key %d out of range [0,%d)", i, k1, w.NumKeys)
		}
		if v1 == 0 {
			t.Fatalf("Update(%d) produced zero value", i)
		}
		ko, vo := other.Update(i)
		if ko != k1 || vo != v1 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed 43 generated the identical stream as seed 42")
	}
}

// TestSkewConcentration sanity-checks DistSkewed: the low quarter of
// the key space must absorb well over half the update mass.
func TestSkewConcentration(t *testing.T) {
	w := testWorkload(KindIngest, DistSkewed, 2)
	low := 0
	for i := 0; i < w.Total(); i++ {
		k, _ := w.Update(i)
		if int(k) < w.NumKeys/4 {
			low++
		}
	}
	if frac := float64(low) / float64(w.Total()); frac < 0.5 {
		t.Fatalf("skewed stream put only %.2f of updates in the low quarter", frac)
	}
}

// TestStreamOfflineConformance is the tentpole contract: a streamed
// run over K windows bitwise-equals the offline oracle applied to the
// concatenated update sequence — for every streamable scheme, at one
// and several cores, for both update kinds.
func TestStreamOfflineConformance(t *testing.T) {
	schemes := []sim.Scheme{sim.SchemeBaseline, sim.SchemePBSW, sim.SchemeCOBRA, sim.SchemeComm, sim.SchemePHI}
	for _, kind := range []Kind{KindIngest, KindDelta} {
		for _, dist := range []Dist{DistUniform, DistSkewed} {
			w := testWorkload(kind, dist, 4)
			for _, scheme := range schemes {
				for _, cores := range []int{1, 3} {
					name := fmt.Sprintf("%s/%s/%s/cores=%d", kind, dist.name(), scheme, cores)
					t.Run(name, func(t *testing.T) {
						cfg := Config{Scheme: scheme, Bins: 64, Arch: sim.DefaultArch().WithCores(cores)}
						got, err := Run(w, cfg)
						if err != nil {
							t.Fatalf("Run: %v", err)
						}
						want, err := RunOffline(w, cfg)
						if err != nil {
							t.Fatalf("RunOffline: %v", err)
						}
						assertSameFinal(t, got.Final, want.Final)
						if len(got.PerWindow) != w.Windows {
							t.Fatalf("got %d window metrics, want %d", len(got.PerWindow), w.Windows)
						}
						// Metrics are NOT additive across batchings (coalescing
						// is more effective over the offline concatenation), so
						// only sanity-check the per-window metrics here; byte
						// identity of the functional state is the contract.
						for i, m := range got.PerWindow {
							if m.Cycles <= 0 {
								t.Fatalf("window %d reported no cycles", i)
							}
							if wantCores := cores; m.Cores != wantCores {
								t.Fatalf("window %d ran on %d cores, want %d", i, m.Cores, wantCores)
							}
						}
					})
				}
			}
		}
	}
}

func (d Dist) name() string {
	if d == DistSkewed {
		return "skew"
	}
	return "urnd"
}

// TestStreamRunDeterminism pins byte-identity of the metrics
// themselves: two streamed runs of the same spec agree window for
// window.
func TestStreamRunDeterminism(t *testing.T) {
	w := testWorkload(KindIngest, DistUniform, 3)
	cfg := Config{Scheme: sim.SchemeCOBRA, Arch: sim.DefaultArch()}
	a, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerWindow {
		if a.PerWindow[i] != b.PerWindow[i] {
			t.Fatalf("window %d metrics differ between identical runs", i)
		}
	}
	if a.Merged != b.Merged {
		t.Fatal("merged metrics differ between identical runs")
	}
}

// TestWindowMetricsIndependence pins the checkpoint-replay premise: a
// window's metrics depend only on the window's updates, never on the
// functional state accumulated by earlier windows. Window 2 simulated
// mid-stream must equal window 2 simulated against fresh state.
func TestWindowMetricsIndependence(t *testing.T) {
	w := testWorkload(KindDelta, DistSkewed, 3)
	cfg := Config{Scheme: sim.SchemePBSW, Bins: 64, Arch: sim.DefaultArch()}
	full, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(w.NumKeys) // fresh: windows 0 and 1 never applied
	m, err := runScheme(w.WindowApp(2, st), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m != full.PerWindow[2] {
		t.Fatal("window 2 metrics depend on prior functional state")
	}
}

// TestStreamResume kills a streamed run mid-stream and resumes it
// against the recorded windows: the resumed run must replay the
// completed prefix functionally and still bitwise-match the offline
// oracle at one and several cores.
func TestStreamResume(t *testing.T) {
	for _, cores := range []int{1, 3} {
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			w := testWorkload(KindIngest, DistUniform, 5)
			journal := map[int]sim.Metrics{}
			ctx, cancel := context.WithCancel(context.Background())
			cfg := Config{
				Scheme: sim.SchemeCOBRA,
				Arch:   sim.DefaultArch().WithCores(cores),
				Ctx:    ctx,
				Record: func(i int, m sim.Metrics) error {
					journal[i] = m
					if i == 2 {
						cancel() // kill after the third window commits
					}
					return nil
				},
			}
			if _, err := Run(w, cfg); err == nil {
				t.Fatal("interrupted run returned no error")
			} else if !isInterrupted(err) {
				t.Fatalf("want ErrInterrupted, got %v", err)
			}
			if len(journal) != 3 {
				t.Fatalf("journal holds %d windows, want 3", len(journal))
			}

			resumed := Config{
				Scheme: cfg.Scheme,
				Arch:   cfg.Arch,
				Lookup: func(i int) (sim.Metrics, bool) {
					m, ok := journal[i]
					return m, ok
				},
				Record: func(i int, m sim.Metrics) error {
					journal[i] = m
					return nil
				},
			}
			got, err := Run(w, resumed)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if got.Replayed != 3 {
				t.Fatalf("resumed run replayed %d windows, want 3", got.Replayed)
			}
			want, err := RunOffline(w, Config{Scheme: cfg.Scheme, Arch: cfg.Arch})
			if err != nil {
				t.Fatal(err)
			}
			assertSameFinal(t, got.Final, want.Final)
			// Replayed metrics must be the recorded originals.
			fresh, err := Run(w, Config{Scheme: cfg.Scheme, Arch: cfg.Arch})
			if err != nil {
				t.Fatal(err)
			}
			for i := range fresh.PerWindow {
				if got.PerWindow[i] != fresh.PerWindow[i] {
					t.Fatalf("window %d: resumed metrics differ from a fresh run", i)
				}
			}
		})
	}
}

func isInterrupted(err error) bool {
	for e := err; e != nil; {
		if e == ErrInterrupted {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestRecordFailure pins that a failing Record aborts the run — a
// window must never advance past an unrecorded checkpoint.
func TestRecordFailure(t *testing.T) {
	w := testWorkload(KindIngest, DistUniform, 3)
	boom := fmt.Errorf("disk full")
	cfg := Config{
		Scheme: sim.SchemeBaseline,
		Arch:   sim.DefaultArch(),
		Record: func(i int, m sim.Metrics) error {
			if i == 1 {
				return boom
			}
			return nil
		},
	}
	if _, err := Run(w, cfg); err == nil {
		t.Fatal("run survived a failed checkpoint record")
	}
}

// TestNotStreamable pins the PB-SW-IDEAL rejection.
func TestNotStreamable(t *testing.T) {
	w := testWorkload(KindIngest, DistUniform, 2)
	if _, err := Run(w, Config{Scheme: sim.SchemePBIdeal, Arch: sim.DefaultArch()}); err == nil {
		t.Fatal("PB-SW-IDEAL streamed without error")
	}
	if Streamable(sim.SchemePBIdeal) {
		t.Fatal("Streamable(PB-SW-IDEAL) = true")
	}
	if !Streamable(sim.SchemePHI) {
		t.Fatal("Streamable(PHI) = false")
	}
}

// TestStaticAppIsolation pins the registry-facing App() view: every
// NewApplier call gets fresh functional state, so one App can run
// through several schemes without cross-contamination.
func TestStaticAppIsolation(t *testing.T) {
	w := testWorkload(KindIngest, DistUniform, 2)
	app := w.App()
	m1, err := sim.RunBaseline(app, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sim.RunBaseline(app, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("static App not reusable: back-to-back runs differ")
	}
}

func assertSameFinal(t *testing.T, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("final state length %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("final state diverges at key %d: %d != %d", i, got[i], want[i])
		}
	}
}
