package stream

// The windowed engine. Run drives a workload's windows sequentially —
// each window is one epoch: binned, flushed, and applied through the
// selected scheme runner on a fresh machine — while the functional
// state persists across windows. RunOffline is the conformance oracle:
// the concatenated update sequence through the same runner as one
// offline cell. Both expose the final functional state for bitwise
// comparison.

import (
	"context"
	"errors"
	"fmt"

	"cobra/internal/sim"
)

// DefaultBins is the epoch bin count used when a config does not pick
// one (PB-SW and PHI only; clamped to the key count).
const DefaultBins = 4096

// ErrInterrupted reports a streamed run stopped between windows
// because its context was cancelled. Windows recorded before the
// interrupt remain valid; a resumed run replays them via its Lookup
// hook.
var ErrInterrupted = errors.New("stream: run interrupted")

// Config drives one streamed (or offline-oracle) run.
type Config struct {
	// Scheme is the runner each window goes through: Baseline, PB-SW,
	// COBRA, COBRA-COMM, or PHI. PB-SW-IDEAL is a composed offline
	// construction and is not streamable.
	Scheme sim.Scheme
	// Bins is the PB-SW/PHI bin count; <= 0 selects DefaultBins. (The
	// offline best-bin sweep has no streaming analogue: an unbounded
	// stream is binned at a fixed epoch geometry.)
	Bins int
	Arch sim.Arch

	// Ctx, when non-nil, is checked between windows: cancellation stops
	// the run with ErrInterrupted (the in-flight window completes).
	Ctx context.Context

	// Lookup, when non-nil, consults a checkpoint for window w. A hit
	// replays the recorded metrics and applies the window functionally
	// instead of simulating it.
	Lookup func(w int) (sim.Metrics, bool)
	// Record, when non-nil, durably records window w's fresh metrics
	// before the run advances — the window-granularity checkpoint.
	Record func(w int, m sim.Metrics) error
	// OnWindow, when non-nil, observes every window as it completes
	// (replayed reports a Lookup hit) — progress lines, /metrics
	// gauges, event streams.
	OnWindow func(w int, m sim.Metrics, replayed bool)
}

// Result is one run's outcome.
type Result struct {
	// PerWindow holds each window's metrics in window order (one entry
	// for an offline run).
	PerWindow []sim.Metrics
	// Merged folds PerWindow through the sim.MergeMetrics laws: cycle
	// max-fold (the slowest window bounds a pipelined steady state),
	// counter/traffic sums, rates re-derived from summed raw counts.
	Merged sim.Metrics
	// Final is the functional state after every window — the byte-
	// identity witness against the offline oracle.
	Final []uint64
	// Replayed counts windows served from the checkpoint Lookup.
	Replayed int
}

// Run executes the workload's windows in order. Each window simulates
// on a fresh machine (epoch semantics: per-window binning state never
// leaks across windows) while the functional state accumulates, so
// after the last window Result.Final bitwise-equals RunOffline's.
func Run(w Workload, cfg Config) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	st := NewState(w.NumKeys)
	res := &Result{PerWindow: make([]sim.Metrics, 0, w.Windows)}
	for i := 0; i < w.Windows; i++ {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return nil, fmt.Errorf("%w after %d/%d windows (%v)", ErrInterrupted, i, w.Windows, cfg.Ctx.Err())
		}
		if cfg.Lookup != nil {
			if m, ok := cfg.Lookup(i); ok {
				w.ApplyWindow(i, st)
				res.PerWindow = append(res.PerWindow, m)
				res.Replayed++
				if cfg.OnWindow != nil {
					cfg.OnWindow(i, m, true)
				}
				continue
			}
		}
		m, err := runScheme(w.WindowApp(i, st), cfg)
		if err != nil {
			return nil, fmt.Errorf("stream: window %d/%d: %w", i, w.Windows, err)
		}
		if cfg.Record != nil {
			if err := cfg.Record(i, m); err != nil {
				return nil, fmt.Errorf("stream: recording window %d: %w", i, err)
			}
		}
		res.PerWindow = append(res.PerWindow, m)
		if cfg.OnWindow != nil {
			cfg.OnWindow(i, m, false)
		}
	}
	res.Merged = sim.MergeMetrics(res.PerWindow)
	if len(res.PerWindow) > 0 {
		// Windows run sequentially on the same machine: the core-sum
		// law (which merges concurrent shards) does not apply across
		// windows.
		res.Merged.Cores = res.PerWindow[0].Cores
		if res.Merged.Cores == 0 {
			res.Merged.Cores = 1
		}
	}
	res.Final = st.Vals
	return res, nil
}

// RunOffline is the oracle: the concatenated update sequence applied
// as one offline cell through the same scheme runner.
func RunOffline(w Workload, cfg Config) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	st := NewState(w.NumKeys)
	m, err := runScheme(w.appRange(0, w.Total(), st), cfg)
	if err != nil {
		return nil, err
	}
	return &Result{PerWindow: []sim.Metrics{m}, Merged: m, Final: st.Vals}, nil
}

// runScheme dispatches one epoch (or the offline concatenation) to the
// existing scheme runners.
func runScheme(app *sim.App, cfg Config) (sim.Metrics, error) {
	bins := cfg.Bins
	if bins <= 0 {
		bins = DefaultBins
	}
	if bins > app.NumKeys {
		bins = app.NumKeys
	}
	switch cfg.Scheme {
	case sim.SchemeBaseline:
		return sim.RunBaseline(app, cfg.Arch)
	case sim.SchemePBSW:
		return sim.RunPBSW(app, bins, cfg.Arch)
	case sim.SchemeCOBRA:
		return sim.RunCOBRA(app, sim.CobraOpt{}, cfg.Arch)
	case sim.SchemeComm:
		return sim.RunCOBRA(app, sim.CobraOpt{Coalesce: true}, cfg.Arch)
	case sim.SchemePHI:
		return sim.RunPHI(app, bins, cfg.Arch)
	default:
		return sim.Metrics{}, fmt.Errorf("stream: scheme %q is not streamable (want one of Baseline, PB-SW, COBRA, COBRA-COMM, PHI)", cfg.Scheme)
	}
}

// Streamable reports whether a scheme can drive the windowed engine.
func Streamable(s sim.Scheme) bool {
	switch s {
	case sim.SchemeBaseline, sim.SchemePBSW, sim.SchemeCOBRA, sim.SchemeComm, sim.SchemePHI:
		return true
	default:
		return false
	}
}
