package cpu

import (
	"cobra/internal/mem"
)

// OpKind tags one buffered micro-op.
type OpKind uint8

// Buffered micro-op kinds, mirroring the Core methods.
const (
	OpALU OpKind = iota
	OpLoad
	OpLoadDep
	OpStore
	OpStoreNT
	OpBranch
	OpBinUpdate
)

// Op is one buffered micro-op. Addr is overloaded: the memory address
// for loads/stores, the branch PC for OpBranch, and the op count for
// OpALU.
type Op struct {
	Addr  uint64
	Kind  OpKind
	Taken bool // OpBranch outcome
}

// opBufCap is the flush threshold. Large enough to amortize the batch
// setup over many references, small enough that the ref/level scratch
// stays L1-resident in the host cache.
const opBufCap = 256

// OpBuf batches micro-ops destined for one Core and retires them in
// Flush: memory references resolve first through mem.AccessBatch (the
// hierarchy is cycle-free, so residency state never depends on the
// core clock), then timing replays the ops in program order performing
// exactly the floating-point operations the scalar Core methods would
// — same additions, same divisions, same order — so cycle counts are
// bit-identical, not merely close.
//
// The buffer flushes itself when full; callers must call Flush before
// reading Cycles/Ctr/hierarchy stats or touching the Core or Hierarchy
// directly (AdvanceCycles, DrainMem, core.Machine interactions).
//
// A buffer built with NewOpBufDirect skips batching entirely and
// forwards each op to the scalar Core methods as it arrives — the
// oracle mode the differential tests compare against.
type OpBuf struct {
	c      *Core
	direct bool
	ops    []Op
	refs   []mem.Ref
	levels []mem.Level

	// Hoisted once at construction (the core config is immutable):
	// latency table indexed by mem.Level, issue width, the 1/width
	// increment (the same constant division the scalar issue(1)
	// performs, so reusing its result is bit-identical), and the
	// branch misprediction penalty.
	latTab  [4]uint32
	w       float64
	oneOp   float64
	penalty float64
}

// NewOpBuf builds a batching op buffer for c.
func NewOpBuf(c *Core) *OpBuf {
	b := &OpBuf{
		c:      c,
		ops:    make([]Op, 0, opBufCap),
		refs:   make([]mem.Ref, 0, opBufCap),
		levels: make([]mem.Level, 0, opBufCap),
	}
	lat := c.Mem.Config().Lat
	b.latTab = [4]uint32{lat.L1, lat.L2, lat.LLC, lat.DRAM}
	b.w = float64(c.cfg.IssueWidth)
	b.oneOp = float64(1) / b.w
	b.penalty = float64(c.cfg.BranchPenalty)
	return b
}

// NewOpBufDirect builds an oracle buffer that executes every op
// immediately through the scalar Core methods.
func NewOpBufDirect(c *Core) *OpBuf {
	return &OpBuf{c: c, direct: true}
}

// Direct reports whether this buffer is in scalar oracle mode.
func (b *OpBuf) Direct() bool { return b.direct }

// Core returns the bound core.
func (b *OpBuf) Core() *Core { return b.c }

func (b *OpBuf) push(op Op) {
	if len(b.ops) == cap(b.ops) {
		b.Flush()
	}
	b.ops = append(b.ops, op)
}

// ALU buffers n simple micro-ops (one issue group, as Core.ALU).
func (b *OpBuf) ALU(n int) {
	if n <= 0 {
		return
	}
	if b.direct {
		b.c.ALU(n)
		return
	}
	b.push(Op{Addr: uint64(n), Kind: OpALU})
}

// Load buffers an independent load. Memory ops append their mem.Ref at
// push time so Flush needs no separate ref-building pass.
func (b *OpBuf) Load(addr uint64) {
	if b.direct {
		b.c.Load(addr)
		return
	}
	if len(b.ops) == cap(b.ops) {
		b.Flush()
	}
	b.ops = append(b.ops, Op{Addr: addr, Kind: OpLoad})
	b.refs = append(b.refs, mem.Ref{Addr: addr, Kind: mem.RefLoad})
}

// LoadDep buffers a dependent load (execution serializes on its fill).
func (b *OpBuf) LoadDep(addr uint64) {
	if b.direct {
		b.c.LoadDep(addr)
		return
	}
	if len(b.ops) == cap(b.ops) {
		b.Flush()
	}
	b.ops = append(b.ops, Op{Addr: addr, Kind: OpLoadDep})
	b.refs = append(b.refs, mem.Ref{Addr: addr, Kind: mem.RefLoad})
}

// Store buffers a demand store.
func (b *OpBuf) Store(addr uint64) {
	if b.direct {
		b.c.Store(addr)
		return
	}
	if len(b.ops) == cap(b.ops) {
		b.Flush()
	}
	b.ops = append(b.ops, Op{Addr: addr, Kind: OpStore})
	b.refs = append(b.refs, mem.Ref{Addr: addr, Kind: mem.RefStore})
}

// StoreNT buffers a non-temporal store.
func (b *OpBuf) StoreNT(addr uint64) {
	if b.direct {
		b.c.StoreNT(addr)
		return
	}
	if len(b.ops) == cap(b.ops) {
		b.Flush()
	}
	b.ops = append(b.ops, Op{Addr: addr, Kind: OpStoreNT})
	b.refs = append(b.refs, mem.Ref{Addr: addr, Kind: mem.RefStoreNT})
}

// Branch buffers a conditional branch outcome.
func (b *OpBuf) Branch(pc uint64, taken bool) {
	if b.direct {
		b.c.Branch(pc, taken)
		return
	}
	b.push(Op{Addr: pc, Kind: OpBranch, Taken: taken})
}

// BinUpdate buffers a COBRA binupdate issue slot.
func (b *OpBuf) BinUpdate() {
	if b.direct {
		b.c.BinUpdate()
		return
	}
	b.push(Op{Kind: OpBinUpdate})
}

// Flush retires every buffered op. Safe to call when empty or direct.
func (b *OpBuf) Flush() {
	if len(b.ops) == 0 {
		return
	}
	c := b.c

	// Phase 1: resolve all memory references (accumulated ref-by-ref at
	// push time). The hierarchy's functional state is independent of the
	// core clock, so resolving ahead of the timing replay observes
	// exactly the state each scalar call would.
	b.levels = c.Mem.AccessBatch(b.refs, b.levels)

	// Phase 2: timing replay in program order, performing the identical
	// floating-point operations the scalar path would.
	latTab := b.latTab
	w := b.w
	oneOp := b.oneOp
	penalty := b.penalty
	li := 0
	// Event counters accumulate in batch-locals and fold into Ctr once:
	// integer addition commutes, so the totals are exact; only the cycle
	// clock (floating point, order-sensitive) updates op-by-op.
	var instr, aluOps, loads, stores, branches, brMiss, binUpd uint64
	var loadLvl [4]uint64
	for i := range b.ops {
		op := &b.ops[i]
		switch op.Kind {
		case OpALU:
			aluOps += op.Addr
			instr += op.Addr
			c.cycle += float64(op.Addr) / w
		case OpLoad, OpLoadDep:
			level := b.levels[li]
			li++
			loads++
			instr++
			c.cycle += oneOp
			loadLvl[level]++
			if level != mem.L1 {
				l := latTab[level]
				if level == mem.LLC || level == mem.DRAM {
					l += c.Mem.LLCExtraCycles(op.Addr)
				}
				done := c.occupy(float64(l))
				if op.Kind == OpLoadDep && done > c.cycle {
					c.cycle = done
				}
			}
		case OpStore:
			level := b.levels[li]
			li++
			stores++
			instr++
			c.cycle += oneOp
			if level != mem.L1 {
				c.occupy(float64(latTab[level]) / 2)
			}
		case OpStoreNT:
			li++
			stores++
			instr++
			c.cycle += oneOp
		case OpBranch:
			branches++
			instr++
			c.cycle += oneOp
			if !c.bp.predict(op.Addr, op.Taken) {
				brMiss++
				c.cycle += penalty
			}
		default: // OpBinUpdate
			binUpd++
			instr++
			c.cycle += oneOp
		}
	}
	c.Ctr.Instructions += instr
	c.Ctr.ALUOps += aluOps
	c.Ctr.Loads += loads
	c.Ctr.LoadsL1 += loadLvl[mem.L1]
	c.Ctr.LoadsL2 += loadLvl[mem.L2]
	c.Ctr.LoadsLLC += loadLvl[mem.LLC]
	c.Ctr.LoadsDRAM += loadLvl[mem.DRAM]
	c.Ctr.Stores += stores
	c.Ctr.Branches += branches
	c.Ctr.BranchMisses += brMiss
	c.Ctr.BinUpdates += binUpd
	b.ops = b.ops[:0]
	b.refs = b.refs[:0]
}
