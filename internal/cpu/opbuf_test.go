package cpu

import (
	"math/rand"
	"testing"

	"cobra/internal/mem"
)

// genOps produces a random op stream that exercises every op kind,
// same-line bursts (read-modify-write pairs), streaming runs, and
// correlated branch outcomes.
func genOps(rng *rand.Rand, n int) []Op {
	ops := make([]Op, 0, n)
	addr := rng.Uint64() % (1 << 22)
	for len(ops) < n {
		switch rng.Intn(10) {
		case 0:
			ops = append(ops, Op{Addr: uint64(1 + rng.Intn(8)), Kind: OpALU})
		case 1:
			addr = rng.Uint64() % (1 << 22)
			ops = append(ops, Op{Addr: addr, Kind: OpLoad})
		case 2: // read-modify-write to one address (the accumulate idiom)
			a := rng.Uint64() % (1 << 22)
			ops = append(ops, Op{Addr: a, Kind: OpLoad}, Op{Addr: a, Kind: OpStore})
		case 3:
			addr += 64
			ops = append(ops, Op{Addr: addr, Kind: OpLoad})
		case 4:
			ops = append(ops, Op{Addr: rng.Uint64() % (1 << 22), Kind: OpLoadDep})
		case 5:
			ops = append(ops, Op{Addr: rng.Uint64() % (1 << 22), Kind: OpStore})
		case 6:
			addr += 16
			ops = append(ops, Op{Addr: addr, Kind: OpStoreNT})
		case 7:
			pc := uint64(0x100 + 0x100*rng.Intn(3))
			ops = append(ops, Op{Addr: pc, Kind: OpBranch, Taken: rng.Intn(4) != 0})
		case 8:
			ops = append(ops, Op{Kind: OpBinUpdate})
		default:
			ops = append(ops, Op{Addr: uint64(1 + rng.Intn(3)), Kind: OpALU})
		}
	}
	return ops[:n]
}

func feed(b *OpBuf, ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpALU:
			b.ALU(int(op.Addr))
		case OpLoad:
			b.Load(op.Addr)
		case OpLoadDep:
			b.LoadDep(op.Addr)
		case OpStore:
			b.Store(op.Addr)
		case OpStoreNT:
			b.StoreNT(op.Addr)
		case OpBranch:
			b.Branch(op.Addr, op.Taken)
		default:
			b.BinUpdate()
		}
	}
	b.Flush()
}

// TestOpBufMatchesScalarCore replays identical op streams through a
// batching OpBuf and a direct (scalar oracle) OpBuf on twin cores. The
// cycle clock must match bit-for-bit (==, not within epsilon), and all
// counters and hierarchy stats must be identical.
func TestOpBufMatchesScalarCore(t *testing.T) {
	cfgs := map[string]mem.Config{"default": mem.DefaultConfig()}
	nuca := mem.DefaultConfig()
	nuca.NUCA = mem.DefaultNUCA()
	cfgs["nuca"] = nuca
	for name, mcfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(123))
			for trial := 0; trial < 6; trial++ {
				scalarCore := New(DefaultConfig(), mem.New(mcfg))
				batchCore := New(DefaultConfig(), mem.New(mcfg))
				ops := genOps(rng, 5000+rng.Intn(3000))
				feed(NewOpBufDirect(scalarCore), ops)
				feed(NewOpBuf(batchCore), ops)
				if scalarCore.cycle != batchCore.cycle {
					t.Fatalf("trial %d: cycle diverged: scalar=%v batched=%v (diff %v)",
						trial, scalarCore.cycle, batchCore.cycle, scalarCore.cycle-batchCore.cycle)
				}
				if scalarCore.Ctr != batchCore.Ctr {
					t.Fatalf("trial %d: counters diverged\nscalar:  %+v\nbatched: %+v",
						trial, scalarCore.Ctr, batchCore.Ctr)
				}
				if s, b := scalarCore.Mem.DRAMTraffic, batchCore.Mem.DRAMTraffic; s != b {
					t.Fatalf("trial %d: DRAM traffic diverged: %+v vs %+v", trial, s, b)
				}
				if s, b := scalarCore.Mem.L1c.Stats, batchCore.Mem.L1c.Stats; s != b {
					t.Fatalf("trial %d: L1 stats diverged: %+v vs %+v", trial, s, b)
				}
				if s, b := scalarCore.Mem.L2c.Stats, batchCore.Mem.L2c.Stats; s != b {
					t.Fatalf("trial %d: L2 stats diverged: %+v vs %+v", trial, s, b)
				}
				if s, b := scalarCore.Mem.LLCc.Stats, batchCore.Mem.LLCc.Stats; s != b {
					t.Fatalf("trial %d: LLC stats diverged: %+v vs %+v", trial, s, b)
				}
			}
		})
	}
}

// TestOpBufFlushBoundaries checks that mid-stream flushes (including
// DrainMem barriers between them) do not change results.
func TestOpBufFlushBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ops := genOps(rng, 4000)
	scalarCore := New(DefaultConfig(), mem.New(mem.DefaultConfig()))
	feed(NewOpBufDirect(scalarCore), ops)
	scalarCore.DrainMem()

	batchCore := New(DefaultConfig(), mem.New(mem.DefaultConfig()))
	b := NewOpBuf(batchCore)
	for i, op := range ops {
		feed(b, ops[i:i+1])
		if i%997 == 0 {
			b.Flush()
		}
		_ = op
	}
	b.Flush()
	batchCore.DrainMem()

	if scalarCore.cycle != batchCore.cycle || scalarCore.Ctr != batchCore.Ctr {
		t.Fatalf("flush-boundary divergence: cycles %v vs %v", scalarCore.cycle, batchCore.cycle)
	}
}

// TestOpBufZeroAllocSteadyState pins the buffered push+flush cycle at
// zero allocations once constructed.
func TestOpBufZeroAllocSteadyState(t *testing.T) {
	core := New(DefaultConfig(), mem.New(mem.DefaultConfig()))
	b := NewOpBuf(core)
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 1024; i++ {
			b.Load(uint64(i%8) * 64)
			b.ALU(1)
			b.Store(uint64(i%8) * 64)
		}
		b.Flush()
	})
	if allocs != 0 {
		t.Fatalf("OpBuf steady state allocates: %v allocs/op", allocs)
	}
}
