// Package cpu provides an analytic out-of-order core timing model.
//
// The model substitutes for the paper's Sniper simulations (see
// DESIGN.md): it tracks the quantities the paper's conclusions actually
// depend on — instruction counts by class, branch mispredictions from a
// real gshare predictor, and memory stalls under ROB- and MSHR-bounded
// memory-level parallelism — without simulating a full pipeline.
//
// Timing works on a monotonically increasing cycle clock:
//
//   - Every issued micro-op advances the clock by 1/IssueWidth.
//   - A load that misses occupies an MSHR until its fill completes; the
//     core keeps issuing until either all MSHRs are busy or the ROB
//     runway past the oldest outstanding miss is exhausted, whichever
//     binds first. Dependent loads (LoadDep) additionally serialize on
//     their own completion.
//   - A mispredicted branch adds a fixed redirect penalty.
package cpu

import (
	"math/bits"

	"cobra/internal/mem"
)

// Config holds the core parameters (Table II: 4-wide issue, 128-entry
// ROB, 2.66 GHz; MSHRs and branch penalty are typical for the class of
// machine).
type Config struct {
	IssueWidth    int
	ROB           int
	MSHRs         int
	BranchPenalty uint32
	FreqGHz       float64
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{IssueWidth: 4, ROB: 128, MSHRs: 10, BranchPenalty: 15, FreqGHz: 2.66}
}

// Counters aggregates retired-work statistics.
type Counters struct {
	Instructions uint64 // total retired micro-ops (ALU+mem+branch+binupdate)
	ALUOps       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	BranchMisses uint64
	BinUpdates   uint64 // COBRA binupdate instructions

	// Loads serviced by each level.
	LoadsL1, LoadsL2, LoadsLLC, LoadsDRAM uint64
}

// Sub returns c - o, counter-wise (for phase deltas).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Instructions: c.Instructions - o.Instructions,
		ALUOps:       c.ALUOps - o.ALUOps,
		Loads:        c.Loads - o.Loads,
		Stores:       c.Stores - o.Stores,
		Branches:     c.Branches - o.Branches,
		BranchMisses: c.BranchMisses - o.BranchMisses,
		BinUpdates:   c.BinUpdates - o.BinUpdates,
		LoadsL1:      c.LoadsL1 - o.LoadsL1,
		LoadsL2:      c.LoadsL2 - o.LoadsL2,
		LoadsLLC:     c.LoadsLLC - o.LoadsLLC,
		LoadsDRAM:    c.LoadsDRAM - o.LoadsDRAM,
	}
}

// Add returns c + o, counter-wise (for merging per-core counters).
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Instructions: c.Instructions + o.Instructions,
		ALUOps:       c.ALUOps + o.ALUOps,
		Loads:        c.Loads + o.Loads,
		Stores:       c.Stores + o.Stores,
		Branches:     c.Branches + o.Branches,
		BranchMisses: c.BranchMisses + o.BranchMisses,
		BinUpdates:   c.BinUpdates + o.BinUpdates,
		LoadsL1:      c.LoadsL1 + o.LoadsL1,
		LoadsL2:      c.LoadsL2 + o.LoadsL2,
		LoadsLLC:     c.LoadsLLC + o.LoadsLLC,
		LoadsDRAM:    c.LoadsDRAM + o.LoadsDRAM,
	}
}

// BranchMissRate returns mispredictions per branch.
func (c Counters) BranchMissRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.BranchMisses) / float64(c.Branches)
}

// MPKI returns branch mispredictions per kilo-instruction.
func (c Counters) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.BranchMisses) / float64(c.Instructions)
}

// Core is one simulated hardware thread bound to a memory hierarchy.
type Core struct {
	cfg Config
	Mem *mem.Hierarchy

	Ctr   Counters
	cycle float64

	// Outstanding-miss slots: issue and completion cycle per busy MSHR;
	// doneAt == 0 marks a free slot. busy mirrors doneAt (bit i set ⇔
	// doneAt[i] != 0) so the occupy scans touch only live slots; it is
	// maintained only when the MSHR count fits the mask (≤ 64 — wider
	// configs take the maskless scan in occupyWide).
	issueAt []float64
	doneAt  []float64
	busy    uint64

	// runway caches robRunwayCycles() — a pure function of the config.
	runway float64

	bp gshare
}

// New binds a core model to a hierarchy.
func New(cfg Config, h *mem.Hierarchy) *Core {
	c := &Core{
		cfg:     cfg,
		Mem:     h,
		issueAt: make([]float64, cfg.MSHRs),
		doneAt:  make([]float64, cfg.MSHRs),
	}
	c.runway = c.robRunwayCycles()
	c.bp.init()
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Cycles returns the current cycle count.
func (c *Core) Cycles() float64 { return c.cycle }

// Seconds converts the cycle count to wall time at the configured clock.
func (c *Core) Seconds() float64 { return c.cycle / (c.cfg.FreqGHz * 1e9) }

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.cycle == 0 {
		return 0
	}
	return float64(c.Ctr.Instructions) / c.cycle
}

// AdvanceCycles adds raw stall cycles (used by the COBRA eviction-buffer
// model when the core blocks on a full FIFO).
func (c *Core) AdvanceCycles(n float64) { c.cycle += n }

func (c *Core) issue(n uint64) {
	c.Ctr.Instructions += n
	c.cycle += float64(n) / float64(c.cfg.IssueWidth)
}

// ALU retires n simple integer/FP micro-ops.
func (c *Core) ALU(n int) {
	if n <= 0 {
		return
	}
	c.Ctr.ALUOps += uint64(n)
	c.issue(uint64(n))
}

// robRunwayCycles is how far (in cycles of issue) the core can run past
// the oldest unresolved miss before the ROB fills.
func (c *Core) robRunwayCycles() float64 {
	return float64(c.cfg.ROB) / float64(c.cfg.IssueWidth)
}

// load performs the cache access and applies the MLP timing model.
// Returns the completion cycle of the access.
func (c *Core) load(addr uint64) float64 {
	c.Ctr.Loads++
	c.issue(1)
	level := c.Mem.Load(addr)
	lat := c.Mem.Config().Lat.Of(level)
	if level == mem.LLC || level == mem.DRAM {
		// Shared-LLC NUCA mode: remote banks add NoC hops (also paid on
		// the LLC lookup that precedes a DRAM fill).
		lat += c.Mem.LLCExtraCycles(addr)
	}
	switch level {
	case mem.L1:
		c.Ctr.LoadsL1++
	case mem.L2:
		c.Ctr.LoadsL2++
	case mem.LLC:
		c.Ctr.LoadsLLC++
	default:
		c.Ctr.LoadsDRAM++
	}
	if level == mem.L1 {
		// Pipelined; the 3-cycle load-to-use latency is hidden by OoO issue.
		return c.cycle
	}
	return c.occupy(float64(lat))
}

// occupy allocates an MSHR for a miss of the given latency starting at
// the current cycle, stalling the core if all MSHRs are busy or the ROB
// runway past the oldest outstanding miss is exhausted, and returns the
// completion time.
func (c *Core) occupy(lat float64) float64 {
	if len(c.doneAt) > 64 {
		return c.occupyWide(lat)
	}
	doneAt := c.doneAt
	issueAt := c.issueAt
	busy := c.busy
	// One fused scan over the busy slots only: retire completed entries
	// lazily, and — against the post-retire state, with c.cycle
	// unchanged — find the oldest still-outstanding miss. (Equivalent
	// to the scalar model's full-array passes: retirement depends only
	// on pre-scan values, bits iterate in ascending index order, and a
	// clear bit is exactly a free slot.)
	oldest := -1
	var oldestIssue float64
	for m := busy; m != 0; {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		if doneAt[i] <= c.cycle {
			doneAt[i] = 0
			busy &^= 1 << uint(i)
			continue
		}
		if oldest < 0 || issueAt[i] < oldestIssue {
			oldest = i
			oldestIssue = issueAt[i]
		}
	}
	// ROB bound: the core cannot issue more than `runway` cycles of work
	// past the issue point of the oldest un-completed miss. When it
	// tries, it waits for that miss to complete (the ROB drains, real
	// time jumps to the completion).
	runway := c.runway
	for oldest >= 0 && c.cycle > oldestIssue+runway {
		if doneAt[oldest] > c.cycle {
			c.cycle = doneAt[oldest]
		}
		doneAt[oldest] = 0
		busy &^= 1 << uint(oldest)
		oldest = -1
		for m := busy; m != 0; {
			i := bits.TrailingZeros64(m)
			m &= m - 1
			if oldest < 0 || issueAt[i] < oldestIssue {
				oldest = i
				oldestIssue = issueAt[i]
			}
		}
	}
	// First free slot; if none, stall until the earliest completion.
	slot := bits.TrailingZeros64(^busy)
	if slot >= len(doneAt) {
		earliest := 0
		for i := range doneAt {
			if doneAt[i] < doneAt[earliest] {
				earliest = i
			}
		}
		c.cycle = doneAt[earliest]
		slot = earliest
	}
	issueAt[slot] = c.cycle
	done := c.cycle + lat
	doneAt[slot] = done
	c.busy = busy | 1<<uint(slot)
	return done
}

// occupyWide is the maskless variant for configs with more MSHRs than
// the busy bitmask holds.
func (c *Core) occupyWide(lat float64) float64 {
	doneAt := c.doneAt
	issueAt := c.issueAt
	slot := -1
	oldest := -1
	for i := range doneAt {
		d := doneAt[i]
		if d != 0 && d <= c.cycle {
			doneAt[i] = 0
			d = 0
		}
		if d == 0 {
			if slot < 0 {
				slot = i
			}
			continue
		}
		if oldest < 0 || issueAt[i] < issueAt[oldest] {
			oldest = i
		}
	}
	// ROB bound: the core cannot issue more than `runway` cycles of work
	// past the issue point of the oldest un-completed miss. When it
	// tries, it waits for that miss to complete (the ROB drains, real
	// time jumps to the completion). Draining frees slots, so the free
	// search reruns when the drain loop fires (the rare case).
	runway := c.runway
	if oldest >= 0 && c.cycle > issueAt[oldest]+runway {
		for oldest >= 0 && c.cycle > issueAt[oldest]+runway {
			if doneAt[oldest] > c.cycle {
				c.cycle = doneAt[oldest]
			}
			doneAt[oldest] = 0
			oldest = -1
			for i := range doneAt {
				if doneAt[i] == 0 {
					continue
				}
				if oldest < 0 || issueAt[i] < issueAt[oldest] {
					oldest = i
				}
			}
		}
		slot = -1
		for i := range doneAt {
			if doneAt[i] == 0 {
				slot = i
				break
			}
		}
	}
	// If no MSHR is free, stall until the earliest completion.
	if slot < 0 {
		earliest := 0
		for i := range doneAt {
			if doneAt[i] < doneAt[earliest] {
				earliest = i
			}
		}
		c.cycle = doneAt[earliest]
		slot = earliest
	}
	c.issueAt[slot] = c.cycle
	done := c.cycle + lat
	c.doneAt[slot] = done
	return done
}

// Load performs an independent load: the core continues past it
// (latency overlapped subject to MSHR/ROB limits).
func (c *Core) Load(addr uint64) { c.load(addr) }

// LoadDep performs a dependent load: execution cannot proceed until the
// value arrives (e.g., a loaded value feeding the very next address
// computation). This is what makes pointer-chasing and
// read-modify-write irregular updates expensive.
func (c *Core) LoadDep(addr uint64) {
	done := c.load(addr)
	if done > c.cycle {
		c.cycle = done
	}
}

// Store retires a store. Write latency is buffered (store queue), so
// the core does not stall on the fill; we still walk the hierarchy for
// correct allocation/traffic and charge an issue slot. Store-queue
// pressure from miss bursts is approximated by occupying an MSHR.
func (c *Core) Store(addr uint64) {
	c.Ctr.Stores++
	c.issue(1)
	level := c.Mem.Store(addr)
	if level != mem.L1 {
		c.occupy(float64(c.Mem.Config().Lat.Of(level)) / 2)
	}
}

// StoreNT retires a non-temporal store: one issue slot, write-combining
// in mem; never stalls (fire-and-forget through the WC buffer).
func (c *Core) StoreNT(addr uint64) {
	c.Ctr.Stores++
	c.issue(1)
	c.Mem.StoreNT(addr)
}

// Branch retires a conditional branch identified by pc with the given
// outcome. The gshare predictor decides whether a redirect penalty is
// paid — mispredict rates in the results are measured, not assumed.
func (c *Core) Branch(pc uint64, taken bool) {
	c.Ctr.Branches++
	c.issue(1)
	if !c.bp.predict(pc, taken) {
		c.Ctr.BranchMisses++
		c.cycle += float64(c.cfg.BranchPenalty)
	}
}

// BinUpdate retires a COBRA binupdate instruction: a single store-like
// micro-op that needs no address-generation port (§VI). The C-Buffer
// append itself is modeled by package core; this charges the issue slot.
func (c *Core) BinUpdate() {
	c.Ctr.BinUpdates++
	c.issue(1)
}

// DrainMem waits for all outstanding misses (end-of-phase barrier).
func (c *Core) DrainMem() {
	for i := range c.doneAt {
		if c.doneAt[i] > c.cycle {
			c.cycle = c.doneAt[i]
		}
		c.doneAt[i] = 0
	}
	c.busy = 0
}

// gshare is a standard global-history XOR-indexed 2-bit predictor.
type gshare struct {
	table   []uint8 // 2-bit saturating counters
	history uint64
	mask    uint64
}

const gshareBits = 14

func (g *gshare) init() {
	g.table = make([]uint8, 1<<gshareBits)
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	g.mask = 1<<gshareBits - 1
}

// predict returns whether the prediction matched the outcome, updating
// predictor state.
func (g *gshare) predict(pc uint64, taken bool) bool {
	idx := (pc ^ g.history) & g.mask
	ctr := g.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		g.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		g.table[idx] = ctr - 1
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
	return pred == taken
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
