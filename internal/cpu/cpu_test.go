package cpu

import (
	"testing"

	"cobra/internal/mem"
	"cobra/internal/stats"
)

func newCore() *Core {
	cfg := mem.DefaultConfig()
	cfg.PrefetchDegree = 0
	return New(DefaultConfig(), mem.New(cfg))
}

func TestALUThroughput(t *testing.T) {
	c := newCore()
	c.ALU(400)
	if c.Cycles() != 100 {
		t.Fatalf("400 ALU ops on a 4-wide core took %.1f cycles, want 100", c.Cycles())
	}
	if c.Ctr.Instructions != 400 || c.Ctr.ALUOps != 400 {
		t.Fatalf("counters = %+v", c.Ctr)
	}
	c.ALU(0)
	c.ALU(-5)
	if c.Ctr.Instructions != 400 {
		t.Fatal("non-positive ALU counts must be no-ops")
	}
}

func TestL1HitLoadsArePipelined(t *testing.T) {
	c := newCore()
	c.Load(0x1000) // cold: DRAM
	c.DrainMem()
	start := c.Cycles()
	for i := 0; i < 100; i++ {
		c.Load(0x1000)
	}
	elapsed := c.Cycles() - start
	if elapsed > 30 {
		t.Fatalf("100 L1-hit loads took %.1f cycles; should be ~issue-bound (25)", elapsed)
	}
}

func TestDependentMissesSerialize(t *testing.T) {
	// Dependent DRAM misses cannot overlap: N misses ~ N * DRAM latency.
	c := newCore()
	r := stats.NewRand(3)
	const n = 200
	start := c.Cycles()
	for i := 0; i < n; i++ {
		c.LoadDep(r.Uint64n(1 << 30))
	}
	perMiss := (c.Cycles() - start) / n
	if perMiss < 150 {
		t.Fatalf("dependent misses overlapped too much: %.1f cycles each, want ~212", perMiss)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Independent DRAM misses overlap up to MSHR count: N misses should
	// be several times faster than dependent ones.
	dep, ind := newCore(), newCore()
	r1, r2 := stats.NewRand(3), stats.NewRand(3)
	const n = 500
	for i := 0; i < n; i++ {
		dep.LoadDep(r1.Uint64n(1 << 30))
		ind.Load(r2.Uint64n(1 << 30))
	}
	dep.DrainMem()
	ind.DrainMem()
	if ind.Cycles() > dep.Cycles()/2 {
		t.Fatalf("independent misses (%.0f cyc) should be far faster than dependent (%.0f cyc)",
			ind.Cycles(), dep.Cycles())
	}
}

func TestMSHRLimitBoundsOverlap(t *testing.T) {
	// With 1 MSHR, independent misses serialize just like dependent ones.
	cfg := DefaultConfig()
	cfg.MSHRs = 1
	m := mem.DefaultConfig()
	m.PrefetchDegree = 0
	c := New(cfg, mem.New(m))
	r := stats.NewRand(5)
	const n = 200
	for i := 0; i < n; i++ {
		c.Load(r.Uint64n(1 << 30))
	}
	c.DrainMem()
	perMiss := c.Cycles() / n
	if perMiss < 150 {
		t.Fatalf("1-MSHR core overlapped misses: %.1f cycles per miss", perMiss)
	}
}

func TestROBRunwayBoundsDistantOverlap(t *testing.T) {
	// A tiny ROB forces the core to wait on outstanding misses even when
	// MSHRs are free, so cycles grow versus a big ROB.
	run := func(rob int) float64 {
		cfg := DefaultConfig()
		cfg.ROB = rob
		m := mem.DefaultConfig()
		m.PrefetchDegree = 0
		c := New(cfg, mem.New(m))
		r := stats.NewRand(7)
		for i := 0; i < 500; i++ {
			c.Load(r.Uint64n(1 << 30))
			c.ALU(40) // work between misses exhausts a small ROB
		}
		c.DrainMem()
		return c.Cycles()
	}
	small, big := run(16), run(512)
	if small <= big {
		t.Fatalf("ROB=16 (%.0f cyc) should be slower than ROB=512 (%.0f cyc)", small, big)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	c := newCore()
	// A loop branch: taken 63 times, not-taken once, repeated. Gshare
	// should get well above 90% on this.
	for iter := 0; iter < 100; iter++ {
		for i := 0; i < 63; i++ {
			c.Branch(0x400, true)
		}
		c.Branch(0x400, false)
	}
	if r := c.Ctr.BranchMissRate(); r > 0.1 {
		t.Fatalf("loop-branch miss rate %.3f, want < 0.1", r)
	}
}

func TestBranchPredictorRandomIsBad(t *testing.T) {
	c := newCore()
	r := stats.NewRand(9)
	for i := 0; i < 20000; i++ {
		c.Branch(0x400, r.Intn(2) == 0)
	}
	if rate := c.Ctr.BranchMissRate(); rate < 0.35 {
		t.Fatalf("random branches mispredicted only %.3f, want ~0.5", rate)
	}
}

func TestBranchMissPenaltyCharged(t *testing.T) {
	good, bad := newCore(), newCore()
	for i := 0; i < 1000; i++ {
		good.Branch(1, true) // perfectly predictable
	}
	r := stats.NewRand(2)
	for i := 0; i < 1000; i++ {
		bad.Branch(1, r.Intn(2) == 0)
	}
	if bad.Cycles() <= good.Cycles()+1000 {
		t.Fatalf("mispredicts cost too little: good=%.0f bad=%.0f", good.Cycles(), bad.Cycles())
	}
}

func TestStoreNTDoesNotStall(t *testing.T) {
	c := newCore()
	start := c.Cycles()
	for i := uint64(0); i < 1000; i++ {
		c.StoreNT(0x100000 + i*8)
	}
	elapsed := c.Cycles() - start
	if elapsed > 300 {
		t.Fatalf("1000 NT stores took %.0f cycles; they must not stall", elapsed)
	}
}

func TestBinUpdateIsSingleSlot(t *testing.T) {
	c := newCore()
	for i := 0; i < 400; i++ {
		c.BinUpdate()
	}
	if c.Cycles() != 100 {
		t.Fatalf("400 binupdates took %.1f cycles, want 100 (issue-bound)", c.Cycles())
	}
	if c.Ctr.BinUpdates != 400 {
		t.Fatalf("BinUpdates = %d", c.Ctr.BinUpdates)
	}
}

func TestCountersSubAndRates(t *testing.T) {
	c := newCore()
	c.ALU(10)
	snap := c.Ctr
	c.Load(0)
	c.Store(64)
	c.Branch(1, true)
	d := c.Ctr.Sub(snap)
	if d.Instructions != 3 || d.Loads != 1 || d.Stores != 1 || d.Branches != 1 {
		t.Fatalf("delta = %+v", d)
	}
	var zero Counters
	if zero.BranchMissRate() != 0 || zero.MPKI() != 0 {
		t.Fatal("zero counters should have zero rates")
	}
}

func TestLoadLevelCounters(t *testing.T) {
	c := newCore()
	c.Load(0x5000)
	c.DrainMem()
	c.Load(0x5000)
	if c.Ctr.LoadsDRAM != 1 || c.Ctr.LoadsL1 != 1 {
		t.Fatalf("level counters = %+v", c.Ctr)
	}
}

func TestSecondsAndIPC(t *testing.T) {
	c := newCore()
	c.ALU(2660)
	if s := c.Seconds(); s <= 0 {
		t.Fatalf("Seconds = %v", s)
	}
	if ipc := c.IPC(); ipc != 4 {
		t.Fatalf("pure-ALU IPC = %v, want 4", ipc)
	}
	var idle Core
	if idle.IPC() != 0 {
		t.Fatal("idle IPC should be 0")
	}
}

func TestAdvanceCycles(t *testing.T) {
	c := newCore()
	c.AdvanceCycles(123)
	if c.Cycles() != 123 {
		t.Fatalf("Cycles = %v", c.Cycles())
	}
}

func TestIrregularVsStreamingGap(t *testing.T) {
	// The premise of the whole paper: streaming updates run much faster
	// than irregular updates over a DRAM-sized footprint.
	streaming, irregular := newCore(), newCore()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		streaming.Load(i * 4)
	}
	streaming.DrainMem()
	r := stats.NewRand(11)
	for i := 0; i < n; i++ {
		addr := r.Uint64n(256 << 20)
		irregular.LoadDep(addr)
		irregular.Store(addr)
	}
	irregular.DrainMem()
	if irregular.Cycles() < 5*streaming.Cycles() {
		t.Fatalf("irregular (%.0f) should dwarf streaming (%.0f)", irregular.Cycles(), streaming.Cycles())
	}
}

func TestNUCASlowsSharedLLCHits(t *testing.T) {
	// With NUCA on, LLC-serviced loads to remote banks cost more than
	// the local-slice model; total cycles must not decrease.
	mk := func(nuca bool) *Core {
		cfg := mem.DefaultConfig()
		cfg.PrefetchDegree = 0
		if nuca {
			cfg.NUCA = mem.DefaultNUCA()
		}
		return New(DefaultConfig(), mem.New(cfg))
	}
	run := func(c *Core) float64 {
		r := stats.NewRand(3)
		// Working set inside the LLC so most accesses are LLC hits.
		for i := 0; i < 60000; i++ {
			c.LoadDep(r.Uint64n(1 << 20))
		}
		c.DrainMem()
		return c.Cycles()
	}
	local, nuca := run(mk(false)), run(mk(true))
	if nuca <= local {
		t.Fatalf("NUCA (%.0f cyc) should cost more than local-slice (%.0f cyc)", nuca, local)
	}
}
