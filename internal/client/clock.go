package client

import (
	"context"
	"time"
)

// Clock abstracts time for the retry/backoff machinery so tests drive
// hundreds of simulated retries without a single wall-clock sleep.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
