package client

// All retry/backoff behavior is tested against a fake clock: sleeps
// record their duration and return instantly, so hundreds of simulated
// retries run in microseconds of wall time.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cobra/internal/srv"
)

// fakeClock advances only when Sleep is called, and logs every sleep.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return nil
}

// advance moves the clock without a sleep (cooldown expiry).
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) sleepLog() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// scriptServer answers each request with the next scripted status (the
// last repeats forever) and counts requests.
type scriptServer struct {
	mu      sync.Mutex
	script  []int
	calls   int
	headers map[string]string
	bodyFor func(status int) string
}

func (s *scriptServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		i := s.calls
		s.calls++
		if i >= len(s.script) {
			i = len(s.script) - 1
		}
		status := s.script[i]
		hdrs := s.headers
		s.mu.Unlock()
		for k, v := range hdrs {
			w.Header().Set(k, v)
		}
		w.WriteHeader(status)
		body := `{"status":"ok"}`
		if s.bodyFor != nil {
			body = s.bodyFor(status)
		}
		w.Write([]byte(body))
	}
}

func (s *scriptServer) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func newTestClient(t *testing.T, script *scriptServer, opts Options) (*Client, *fakeClock) {
	t.Helper()
	ts := httptest.NewServer(script.handler())
	t.Cleanup(ts.Close)
	clk := newFakeClock()
	opts.Clock = clk
	if opts.Seed == 0 {
		opts.Seed = 12345
	}
	return New(ts.URL, opts), clk
}

// TestRetryThenSuccess: transient 500s are retried with backoff until
// the server recovers; the overall call succeeds.
func TestRetryThenSuccess(t *testing.T) {
	srvr := &scriptServer{script: []int{500, 500, 200}}
	c, clk := newTestClient(t, srvr, Options{MaxRetries: 4})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after recovery: %v", err)
	}
	if got := srvr.count(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	if len(clk.sleepLog()) != 2 {
		t.Fatalf("slept %d times, want 2", len(clk.sleepLog()))
	}
}

// TestBackoffGrowsWithFullJitter: each retry's delay is drawn from
// [0, base<<attempt] — never above the attempt's cap, never above
// MaxBackoff, and deterministic under a fixed seed.
func TestBackoffGrowsWithFullJitter(t *testing.T) {
	srvr := &scriptServer{script: []int{500}}
	base, max := 100*time.Millisecond, 400*time.Millisecond
	c, clk := newTestClient(t, srvr, Options{MaxRetries: 6, BaseBackoff: base, MaxBackoff: max})
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected failure against an always-500 server")
	}
	sleeps := clk.sleepLog()
	if len(sleeps) != 6 {
		t.Fatalf("slept %d times, want 6", len(sleeps))
	}
	for i, d := range sleeps {
		cap := base << uint(i)
		if cap > max {
			cap = max
		}
		if d < 0 || d > cap {
			t.Fatalf("sleep %d = %v outside [0, %v]", i, d, cap)
		}
	}

	// Same seed, same jitter sequence.
	srvr2 := &scriptServer{script: []int{500}}
	c2, clk2 := newTestClient(t, srvr2, Options{MaxRetries: 6, BaseBackoff: base, MaxBackoff: max})
	c2.Health(context.Background())
	for i, d := range clk2.sleepLog() {
		if d != sleeps[i] {
			t.Fatalf("jitter not deterministic: attempt %d %v != %v", i, d, sleeps[i])
		}
	}
	_ = err
}

// TestRetryAfterHonored: a 429 with Retry-After overrides jittered
// backoff with the server's exact delay.
func TestRetryAfterHonored(t *testing.T) {
	srvr := &scriptServer{script: []int{429, 200}, headers: map[string]string{"Retry-After": "7"}}
	c, clk := newTestClient(t, srvr, Options{MaxRetries: 2})
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	sleeps := clk.sleepLog()
	if len(sleeps) != 1 || sleeps[0] != 7*time.Second {
		t.Fatalf("sleeps = %v, want exactly [7s]", sleeps)
	}
}

// TestPermanentErrorNoRetry: a 400 is permanent — one request, no
// sleeps, typed error with the status.
func TestPermanentErrorNoRetry(t *testing.T) {
	srvr := &scriptServer{script: []int{400}, bodyFor: func(int) string { return `{"error":"srv: bad spec"}` }}
	c, clk := newTestClient(t, srvr, Options{MaxRetries: 5})
	_, err := c.Submit(context.Background(), srv.JobSpec{})
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *Error", err, err)
	}
	if !ce.Permanent || ce.Status != 400 || ce.Op != "submit" {
		t.Fatalf("error misclassified: %+v", ce)
	}
	if srvr.count() != 1 || len(clk.sleepLog()) != 0 {
		t.Fatalf("permanent error retried: %d requests, %d sleeps", srvr.count(), len(clk.sleepLog()))
	}
}

// TestRetriesExhausted: a persistent 500 gives up after MaxRetries
// with a retryable typed error carrying the retry count.
func TestRetriesExhausted(t *testing.T) {
	srvr := &scriptServer{script: []int{500}}
	c, _ := newTestClient(t, srvr, Options{MaxRetries: 3})
	err := c.Health(context.Background())
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v", err)
	}
	if ce.Permanent {
		t.Fatal("availability failure marked permanent")
	}
	if ce.Retries != 3 || ce.Status != 500 {
		t.Fatalf("error = %+v, want 3 retries at status 500", ce)
	}
	if srvr.count() != 4 {
		t.Fatalf("server saw %d requests, want 4 (1 + 3 retries)", srvr.count())
	}
}

// TestContextCancelStopsRetries: a canceled context ends the retry
// loop immediately with a permanent error.
func TestContextCancelStopsRetries(t *testing.T) {
	srvr := &scriptServer{script: []int{500}}
	c, _ := newTestClient(t, srvr, Options{MaxRetries: 50})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.Health(ctx)
	var ce *Error
	if !errors.As(err, &ce) || !ce.Permanent || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want permanent wrapping context.Canceled", err)
	}
}

// TestCircuitBreakerOpens: after threshold consecutive failures the
// breaker refuses locally without touching the network; after the
// cooldown a half-open probe goes through and a success closes it.
func TestCircuitBreakerOpens(t *testing.T) {
	srvr := &scriptServer{script: []int{500}}
	c, clk := newTestClient(t, srvr, Options{
		MaxRetries:       -1, // isolate breaker behavior from retries
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.Health(ctx); err == nil {
			t.Fatal("expected failure")
		}
	}
	before := srvr.count()
	err := c.Health(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if srvr.count() != before {
		t.Fatal("open breaker still hit the network")
	}

	// Cooldown elapses; the server has recovered; one probe closes it.
	srvr.mu.Lock()
	srvr.script = []int{200}
	srvr.calls = 0
	srvr.mu.Unlock()
	clk.advance(2 * time.Minute)
	if err := c.Health(ctx); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("closed circuit refused: %v", err)
	}
}

// TestCircuitBreakerReopensOnFailedProbe: a failed half-open probe
// re-opens the circuit for another full cooldown.
func TestCircuitBreakerReopensOnFailedProbe(t *testing.T) {
	srvr := &scriptServer{script: []int{500}}
	c, clk := newTestClient(t, srvr, Options{
		MaxRetries:       -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	ctx := context.Background()
	c.Health(ctx)
	c.Health(ctx) // opens
	clk.advance(61 * time.Second)
	if err := c.Health(ctx); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("cooldown elapsed but probe was refused")
	}
	// Probe failed against the still-broken server: open again.
	if err := c.Health(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after failed probe", err)
	}
}

// TestBackpressureNotABreakerFailure: 429s retry (honoring Retry-After)
// without tripping the breaker — the server is healthy, just busy.
func TestBackpressureNotABreakerFailure(t *testing.T) {
	srvr := &scriptServer{script: []int{429, 429, 429, 429, 200}, headers: map[string]string{"Retry-After": "1"}}
	c, _ := newTestClient(t, srvr, Options{MaxRetries: 10, BreakerThreshold: 2})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("backpressure tripped something: %v", err)
	}
}

// TestRetryAfterHTTPDate: the HTTP-date form of Retry-After works too.
func TestRetryAfterHTTPDate(t *testing.T) {
	clkProbe := newFakeClock()
	date := clkProbe.Now().Add(30 * time.Second).Format(http.TimeFormat)
	srvr := &scriptServer{script: []int{503, 200}, headers: map[string]string{"Retry-After": date}}
	c, clk := newTestClient(t, srvr, Options{MaxRetries: 2})
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	sleeps := clk.sleepLog()
	if len(sleeps) != 1 || sleeps[0] != 30*time.Second {
		t.Fatalf("sleeps = %v, want [30s]", sleeps)
	}
}

// TestErrorEnvelopeDecoded: the client decodes the /v1 error envelope
// into the typed Error — machine-readable code plus the human message —
// and still understands pre-envelope bodies that carry only the legacy
// top-level "error" key.
func TestErrorEnvelopeDecoded(t *testing.T) {
	srvr := &scriptServer{script: []int{400}, bodyFor: func(int) string {
		return `{"code":"invalid_spec","message":"srv: unknown app","details":{"app":"Nope"},"error":"srv: unknown app"}`
	}}
	c, _ := newTestClient(t, srvr, Options{MaxRetries: 2})
	_, err := c.Submit(context.Background(), srv.JobSpec{})
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *Error", err, err)
	}
	if ce.Code != "invalid_spec" || !ce.Permanent || ce.Status != 400 {
		t.Fatalf("envelope not decoded: %+v", ce)
	}
	if ce.Err.Error() != "srv: unknown app" {
		t.Fatalf("message = %q", ce.Err.Error())
	}

	// Legacy body: message only, no code.
	legacy := &scriptServer{script: []int{400}, bodyFor: func(int) string {
		return `{"error":"srv: old-style error"}`
	}}
	c2, _ := newTestClient(t, legacy, Options{MaxRetries: 2})
	_, err = c2.Submit(context.Background(), srv.JobSpec{})
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v", err)
	}
	if ce.Code != "" || ce.Err.Error() != "srv: old-style error" {
		t.Fatalf("legacy body misdecoded: %+v", ce)
	}
}
