package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen reports a request refused locally because the breaker
// tripped: the last N attempts all failed, so the client stops hammering
// a struggling server until the cooldown elapses.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// breaker is a consecutive-failure circuit breaker. Closed it counts
// failures; at threshold it opens and refuses requests for cooldown;
// then it goes half-open, letting exactly one probe through — a probe
// success closes the circuit, a probe failure re-opens it for another
// full cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	clock     Clock

	mu          sync.Mutex
	consecutive int
	open        bool
	openedAt    time.Time
	probing     bool   // half-open probe in flight
	opens       uint64 // transitions into the open state (re-opens included)
}

func newBreaker(threshold int, cooldown time.Duration, clock Clock) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// allow reports whether a request may proceed. In the open state it
// admits a single half-open probe once the cooldown has elapsed.
func (b *breaker) allow() error {
	if b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if b.clock.Now().Sub(b.openedAt) < b.cooldown || b.probing {
		return ErrCircuitOpen
	}
	b.probing = true
	return nil
}

// success records a completed request (any response from the server,
// including 4xx — the server being reachable and answering is what the
// breaker measures).
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.open = false
	b.probing = false
}

// failure records an availability failure (network error or 5xx).
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.probing {
		// Failed half-open probe: back to open for a fresh cooldown.
		b.probing = false
		b.openedAt = b.clock.Now()
		b.opens++
		return
	}
	if b.consecutive >= b.threshold && !b.open {
		b.open = true
		b.openedAt = b.clock.Now()
		b.opens++
	}
}

// state reports the breaker's phase ("closed", "open", "half-open")
// and how many times it has opened.
func (b *breaker) state() (string, uint64) {
	if b.threshold <= 0 {
		return "closed", 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return "closed", b.opens
	case b.probing:
		return "half-open", b.opens
	default:
		return "open", b.opens
	}
}
