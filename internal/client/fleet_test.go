package client

// Satellite coverage for the fleet-facing client surface: the Wait
// poll floor, the Stats snapshot, and the breaker's half-open gate
// under concurrent callers (run under -race in `make race`).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cobra/internal/srv"
)

// TestWaitPollFloor: with a floor set, Wait's sleeps start at the
// floor and double per poll up to PollInterval — fast jobs are noticed
// in milliseconds, slow ones settle to the flat interval.
func TestWaitPollFloor(t *testing.T) {
	polls := 0
	script := &scriptServer{script: []int{200}, bodyFor: func(int) string {
		state := srv.JobRunning
		polls++
		if polls >= 6 {
			state = srv.JobDone
		}
		b, _ := json.Marshal(srv.JobView{ID: "j-000001", State: state})
		return string(b)
	}}
	c, clk := newTestClient(t, script, Options{
		PollFloor:    10 * time.Millisecond,
		PollInterval: 160 * time.Millisecond,
	})
	v, err := c.Wait(context.Background(), "j-000001")
	if err != nil || v.State != srv.JobDone {
		t.Fatalf("wait: %+v %v", v, err)
	}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond,
	}
	got := clk.sleepLog()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("poll sleeps %v, want %v", got, want)
	}
}

// TestWaitFloorAboveIntervalFallsBack: a floor wider than the interval
// is nonsense; Wait polls at the flat interval.
func TestWaitFloorAboveIntervalFallsBack(t *testing.T) {
	polls := 0
	script := &scriptServer{script: []int{200}, bodyFor: func(int) string {
		state := srv.JobRunning
		polls++
		if polls >= 3 {
			state = srv.JobDone
		}
		b, _ := json.Marshal(srv.JobView{ID: "j-000001", State: state})
		return string(b)
	}}
	c, clk := newTestClient(t, script, Options{
		PollFloor:    time.Second,
		PollInterval: 50 * time.Millisecond,
	})
	if _, err := c.Wait(context.Background(), "j-000001"); err != nil {
		t.Fatal(err)
	}
	for _, d := range clk.sleepLog() {
		if d != 50*time.Millisecond {
			t.Fatalf("sleep %v, want flat 50ms", d)
		}
	}
}

// TestStats: attempts/retries/failures and breaker state are
// observable — the per-node health the fleet coordinator snapshots
// into the campaign manifest.
func TestStats(t *testing.T) {
	script := &scriptServer{script: []int{500, 500, 200}}
	c, _ := newTestClient(t, script, Options{MaxRetries: 4})
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Failures != 2 {
		t.Fatalf("stats after recovery: %+v", st)
	}
	if st.BreakerState != "closed" || st.BreakerOpens != 0 {
		t.Fatalf("breaker should be closed: %+v", st)
	}
}

func TestStatsBreakerOpen(t *testing.T) {
	script := &scriptServer{script: []int{500}}
	c, _ := newTestClient(t, script, Options{MaxRetries: 2, BreakerThreshold: 3})
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("health against a dead server succeeded")
	}
	st := c.Stats()
	if st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("breaker after threshold failures: %+v", st)
	}
	if st.Failures != 3 {
		t.Fatalf("failures: %+v", st)
	}
	// Open breaker refuses locally: attempts must not grow.
	before := st.Attempts
	if err := c.Health(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if got := c.Stats().Attempts; got != before {
		t.Fatalf("open breaker still sent requests: %d -> %d", before, got)
	}
}

// TestBreakerHalfOpenConcurrentAllow: after the cooldown, exactly one
// of many concurrent allow() callers wins the half-open probe slot; a
// failed probe re-opens for a full cooldown; a successful probe closes
// the circuit for everyone.
func TestBreakerHalfOpenConcurrentAllow(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, time.Second, clk)
	for i := 0; i < 3; i++ {
		b.failure()
	}
	if state, opens := b.state(); state != "open" || opens != 1 {
		t.Fatalf("breaker after threshold: %s/%d", state, opens)
	}

	admitted := func() int {
		var wg sync.WaitGroup
		var mu sync.Mutex
		n := 0
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.allow() == nil {
					mu.Lock()
					n++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return n
	}

	// Cooldown not elapsed: everyone refused.
	if n := admitted(); n != 0 {
		t.Fatalf("%d callers admitted before cooldown", n)
	}
	// Cooldown elapsed: exactly one probe slot.
	clk.advance(time.Second)
	if n := admitted(); n != 1 {
		t.Fatalf("%d callers admitted in half-open, want exactly 1", n)
	}
	if state, _ := b.state(); state != "half-open" {
		t.Fatalf("state %s, want half-open", state)
	}

	// Probe fails: re-open for a fresh cooldown, all refused again.
	b.failure()
	if state, opens := b.state(); state != "open" || opens != 2 {
		t.Fatalf("after failed probe: %s/%d", state, opens)
	}
	if n := admitted(); n != 0 {
		t.Fatalf("%d callers admitted right after re-open", n)
	}

	// Next cooldown: one probe again, and its success closes for all.
	clk.advance(time.Second)
	if n := admitted(); n != 1 {
		t.Fatalf("%d callers admitted in second half-open, want 1", n)
	}
	b.success()
	if state, _ := b.state(); state != "closed" {
		t.Fatalf("state %s after successful probe, want closed", state)
	}
	if n := admitted(); n != 64 {
		t.Fatalf("closed breaker admitted %d of 64", n)
	}
}
