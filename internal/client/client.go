// Package client is the resilient cobrad HTTP client: typed errors
// that distinguish permanent rejections from retryable availability
// failures, exponential backoff with full jitter, Retry-After
// honoring, a consecutive-failure circuit breaker with half-open
// probes, and idempotent job resubmission.
//
// Resubmission is safe because the server's result cache is
// content-addressed by the exp.CellKey fingerprint of each (app,
// input, scale, seed, scheme, bins, arch) cell: re-running a job whose
// first submission was lost to a crash or timeout replays the cached
// metrics byte-identically instead of recomputing them. The client
// leans on that contract — Run resubmits on failed or vanished jobs —
// and the chaos suite holds the server to it.
//
// All waiting goes through an injectable Clock, so the retry paths are
// tested with a fake clock and zero wall-clock sleeps.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cobra/internal/srv"
)

// Options configures a Client. The zero value of every field selects a
// sensible default.
type Options struct {
	// HTTP is the underlying transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// Clock drives backoff and polling; nil uses the wall clock.
	Clock Clock
	// MaxRetries bounds retry attempts after the first try of one HTTP
	// request (default 4; negative disables retries).
	MaxRetries int
	// BaseBackoff is the first retry's maximum delay; each subsequent
	// attempt doubles it up to MaxBackoff. The actual delay is drawn
	// uniformly from [0, cap] ("full jitter"). Defaults 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter sequence deterministic for tests; 0 derives
	// one from the clock at construction.
	Seed uint64
	// BreakerThreshold is the consecutive availability-failure count
	// that opens the circuit (default 8; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a
	// half-open probe (default 10s).
	BreakerCooldown time.Duration
	// PollInterval spaces Wait's job-status polls (default 250ms).
	PollInterval time.Duration
	// PollFloor, when > 0, is Wait's first poll delay: polling starts
	// there and doubles per poll up to PollInterval, so very fast jobs
	// are noticed in milliseconds without hammering the server on slow
	// ones. 0 polls at a flat PollInterval.
	PollFloor time.Duration
	// Resubmits bounds Run's whole-job resubmissions after failed or
	// vanished jobs (default 2; negative disables).
	Resubmits int
}

// Error is the typed failure the client returns: which operation, the
// HTTP status if a response arrived, the server's machine-readable
// error code if it sent one, how many retries were spent, and whether
// retrying could ever help.
type Error struct {
	Op        string // "submit", "get", "wait", "health"
	Status    int    // HTTP status, 0 for transport failures
	Code      string // /v1 envelope code ("invalid_spec", ...), "" if none
	Permanent bool   // true: retrying cannot succeed (4xx, validation)
	Retries   int    // retry attempts consumed before giving up
	Err       error
}

func (e *Error) Error() string {
	kind := "retryable"
	if e.Permanent {
		kind = "permanent"
	}
	if e.Code != "" {
		kind += " [" + e.Code + "]"
	}
	if e.Status != 0 {
		return fmt.Sprintf("client: %s: %s http %d after %d retries: %v", e.Op, kind, e.Status, e.Retries, e.Err)
	}
	return fmt.Sprintf("client: %s: %s after %d retries: %v", e.Op, kind, e.Retries, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// apiError is one decoded /v1 error envelope.
type apiError struct {
	code string
	msg  string
}

func (e *apiError) Error() string { return e.msg }

// codeOf extracts the envelope code from a response error, if any.
func codeOf(err error) string {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.code
	}
	return ""
}

// Client is a cobrad API client. Safe for concurrent use.
type Client struct {
	base    string
	httpc   *http.Client
	clock   Clock
	opts    Options
	breaker *breaker
	rng     *jitterRNG

	attempts atomic.Uint64 // individual HTTP attempts
	retries  atomic.Uint64 // attempts that were retries of an earlier one
	failures atomic.Uint64 // availability failures (transport errors, 5xx)
}

// Stats is a point-in-time snapshot of a client's transport health —
// the per-node view the fleet coordinator surfaces in its manifest.
type Stats struct {
	Attempts uint64 `json:"attempts"`
	Retries  uint64 `json:"retries"`
	Failures uint64 `json:"failures"`
	// BreakerState is "closed", "open", or "half-open" (a probe in
	// flight); BreakerOpens counts every transition into the open
	// state, failed half-open probes included.
	BreakerState string `json:"breaker_state"`
	BreakerOpens uint64 `json:"breaker_opens"`
}

// New builds a Client for the cobrad server at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts Options) *Client {
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultClient
	}
	if opts.Clock == nil {
		opts.Clock = realClock{}
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 4
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 8
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 10 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 250 * time.Millisecond
	}
	if opts.Resubmits == 0 {
		opts.Resubmits = 2
	}
	seed := opts.Seed
	if seed == 0 {
		seed = uint64(opts.Clock.Now().UnixNano())
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{
		base:    baseURL,
		httpc:   opts.HTTP,
		clock:   opts.Clock,
		opts:    opts,
		breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Clock),
		rng:     &jitterRNG{state: seed},
	}
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, "health", http.MethodGet, "/healthz", nil, &out)
}

// Ready checks /readyz: an error means the server is starting,
// draining, or unreachable — it should not be handed new work.
func (c *Client) Ready(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, "ready", http.MethodGet, "/readyz", nil, &out)
}

// Jobs fetches the server's job-list summary (GET /v1/jobs): state
// counts, capacity, and recent views.
func (c *Client) Jobs(ctx context.Context) (srv.JobsSummary, error) {
	var v srv.JobsSummary
	err := c.do(ctx, "jobs", http.MethodGet, "/v1/jobs", nil, &v)
	return v, err
}

// Stats snapshots the client's transport counters and breaker state.
func (c *Client) Stats() Stats {
	state, opens := c.breaker.state()
	return Stats{
		Attempts:     c.attempts.Load(),
		Retries:      c.retries.Load(),
		Failures:     c.failures.Load(),
		BreakerState: state,
		BreakerOpens: opens,
	}
}

// Submit posts spec to /v1/jobs and returns the accepted job (202).
func (c *Client) Submit(ctx context.Context, spec srv.JobSpec) (srv.JobView, error) {
	var v srv.JobView
	err := c.do(ctx, "submit", http.MethodPost, "/v1/jobs", spec, &v)
	return v, err
}

// Get fetches one job's current view.
func (c *Client) Get(ctx context.Context, id string) (srv.JobView, error) {
	var v srv.JobView
	err := c.do(ctx, "get", http.MethodGet, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// Wait polls the job until it reaches a terminal state (done, failed,
// canceled) or ctx expires. With Options.PollFloor set, polling starts
// at the floor and doubles per poll up to PollInterval — fast jobs
// resolve in milliseconds without hammering the server on slow ones. A
// vanished job (404 — the server restarted and lost its in-memory job
// table) surfaces as a permanent Error with Status 404 so callers like
// Run can resubmit.
func (c *Client) Wait(ctx context.Context, id string) (srv.JobView, error) {
	delay := c.opts.PollFloor
	if delay <= 0 || delay > c.opts.PollInterval {
		delay = c.opts.PollInterval
	}
	for {
		v, err := c.Get(ctx, id)
		if err != nil {
			return v, err
		}
		switch v.State {
		case srv.JobDone, srv.JobFailed, srv.JobCanceled:
			return v, nil
		}
		if err := c.clock.Sleep(ctx, delay); err != nil {
			return srv.JobView{}, &Error{Op: "wait", Permanent: true, Err: err}
		}
		if delay < c.opts.PollInterval {
			delay *= 2
			if delay > c.opts.PollInterval {
				delay = c.opts.PollInterval
			}
		}
	}
}

// Run submits spec and waits for completion, resubmitting the whole
// job — up to Options.Resubmits times — when it fails or vanishes
// (server restart). Resubmission is idempotent: cells already computed
// before the failure replay from the server's fingerprint-keyed cache.
func (c *Client) Run(ctx context.Context, spec srv.JobSpec) (srv.JobView, error) {
	resubmits := c.opts.Resubmits
	if resubmits < 0 {
		// Disabled: one submission, no retries of the whole job.
		resubmits = 0
	}
	var lastErr error
	for attempt := 0; attempt <= resubmits; attempt++ {
		if attempt > 0 {
			if err := c.clock.Sleep(ctx, c.backoff(attempt-1, 0)); err != nil {
				return srv.JobView{}, &Error{Op: "run", Permanent: true, Err: err}
			}
		}
		v, err := c.Submit(ctx, spec)
		if err == nil {
			v, err = c.Wait(ctx, v.ID)
			if err == nil {
				if v.State == srv.JobDone {
					return v, nil
				}
				// Failed or canceled server-side: the job itself is the
				// failure, and a fresh submission may succeed (transient
				// worker faults, drain races).
				lastErr = fmt.Errorf("client: job %s %s: %s", v.ID, v.State, v.Error)
				continue
			}
		}
		var ce *Error
		if errors.As(err, &ce) && ce.Permanent && ce.Status != http.StatusNotFound {
			// Invalid spec, canceled context, ... — resubmitting the same
			// bytes cannot help.
			return srv.JobView{}, err
		}
		lastErr = err
	}
	return srv.JobView{}, &Error{Op: "run", Retries: resubmits, Err: lastErr}
}

// do runs one logical request with retry, backoff, Retry-After, and
// the circuit breaker. All cobrad mutations are idempotent (submission
// is content-addressed server-side), so POSTs retry as freely as GETs.
func (c *Client) do(ctx context.Context, op, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return &Error{Op: op, Permanent: true, Err: err}
		}
	}

	var lastErr error
	retries := 0
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return &Error{Op: op, Permanent: true, Retries: retries, Err: err}
		}
		if err := c.breaker.allow(); err != nil {
			return &Error{Op: op, Retries: retries, Err: err}
		}

		c.attempts.Add(1)
		status, retryAfter, err := c.once(ctx, method, path, payload, out)
		switch {
		case err == nil:
			c.breaker.success()
			return nil
		case status == 0:
			// Transport failure: server unreachable, connection reset.
			c.failures.Add(1)
			c.breaker.failure()
			if ctx.Err() != nil {
				return &Error{Op: op, Permanent: true, Retries: retries, Err: ctx.Err()}
			}
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			// Backpressure: the server is up and telling us to slow
			// down — not a breaker failure.
			c.breaker.success()
		case status >= 500:
			c.failures.Add(1)
			c.breaker.failure()
		default:
			// 4xx: the request itself is wrong; retrying cannot help.
			c.breaker.success()
			return &Error{Op: op, Status: status, Code: codeOf(err), Permanent: true, Retries: retries, Err: err}
		}
		lastErr = err

		if attempt >= c.opts.MaxRetries {
			return &Error{Op: op, Status: status, Code: codeOf(lastErr), Retries: retries, Err: lastErr}
		}
		if err := c.clock.Sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return &Error{Op: op, Permanent: true, Retries: retries, Err: err}
		}
		retries++
		c.retries.Add(1)
	}
}

// once performs a single HTTP attempt. status 0 means no response.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) (status int, retryAfter time.Duration, err error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return 0, 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()

	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return resp.StatusCode, 0, nil
		}
		if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
			// A mangled success body is retryable: the request landed but
			// the response did not survive the trip.
			return 0, 0, fmt.Errorf("decoding response: %w", derr)
		}
		return resp.StatusCode, 0, nil
	}

	retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.clock)
	// Decode the /v1 error envelope; pre-envelope servers carried only
	// the top-level "error" key, which ErrorBody still maps (Legacy).
	var eb srv.ErrorBody
	ae := &apiError{msg: resp.Status}
	if json.NewDecoder(resp.Body).Decode(&eb) == nil {
		switch {
		case eb.Message != "":
			ae.code, ae.msg = eb.Code, eb.Message
		case eb.Legacy != "":
			ae.msg = eb.Legacy
		}
	}
	return resp.StatusCode, retryAfter, ae
}

// backoff computes the delay before retry #attempt: full jitter over
// an exponentially growing cap, or the server's Retry-After verbatim
// when it asked for a specific delay.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	cap := c.opts.BaseBackoff << uint(attempt)
	if cap > c.opts.MaxBackoff || cap <= 0 {
		cap = c.opts.MaxBackoff
	}
	return time.Duration(c.rng.float64() * float64(cap))
}

// parseRetryAfter understands both forms of the header: delta-seconds
// and HTTP-date.
func parseRetryAfter(v string, clock Clock) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(clock.Now()); d > 0 {
			return d
		}
	}
	return 0
}

// jitterRNG is a tiny lock-protected splitmix64 stream for backoff
// jitter — deterministic under a fixed seed, no math/rand global state.
type jitterRNG struct {
	mu    sync.Mutex
	state uint64
}

func (r *jitterRNG) float64() float64 {
	r.mu.Lock()
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
