package sim

// Harness observability for the scheme runners. Every Run* entry point
// reports per-scheme run counts, per-phase wall-clock histograms, and
// update-throughput rates into the process obsv registry — strictly
// harness-side wall time, never simulated state, so instrumented runs
// produce bit-identical Metrics (asserted by TestRunsByteIdenticalWithObsv).
//
// Zero-cost-when-disabled: beginRunObs starts with one atomic load of
// the default registry; when it is nil the returned runObs is inert —
// no clock reads, no allocations, no metric lookups.

import (
	"strconv"
	"time"

	"cobra/internal/obsv"
)

// schemeScope maps a scheme to its metric-name scope. Constant strings
// only: no formatting on any path.
func schemeScope(s Scheme) string {
	switch s {
	case SchemeBaseline:
		return "sim.baseline"
	case SchemePBSW:
		return "sim.pbsw"
	case SchemePBIdeal:
		return "sim.pbideal"
	case SchemeCOBRA:
		return "sim.cobra"
	case SchemeComm:
		return "sim.cobracomm"
	case SchemePHI:
		return "sim.phi"
	default:
		return "sim.other"
	}
}

// runObs observes one scheme run. The zero runObs (disabled registry)
// no-ops everywhere.
type runObs struct {
	reg     *obsv.Registry // scoped to "sim.<scheme>", nil when disabled
	start   time.Time
	updates int
}

// beginRunObs opens observation of one run and counts it.
func beginRunObs(scheme Scheme, app *App) runObs {
	root := obsv.Default()
	if root == nil {
		return runObs{}
	}
	reg := root.Scope(schemeScope(scheme))
	reg.Counter("runs").Add(1)
	reg.Counter("updates").Add(uint64(app.NumUpdates))
	return runObs{reg: reg, start: time.Now(), updates: app.NumUpdates}
}

// phase starts a wall-clock timer for one phase ("init.wall",
// "binning.wall", "accumulate.wall").
func (ro runObs) phase(name string) obsv.Timer {
	if ro.reg == nil {
		return obsv.Timer{}
	}
	return ro.reg.Timer(name)
}

// cores records the shard width of a multi-core run.
func (ro runObs) cores(n int) {
	if ro.reg == nil {
		return
	}
	ro.reg.Gauge("cores").Set(float64(n))
}

// corePhase starts a per-core wall-clock timer for one shard's phase
// ("core3.binning.wall"). Timers on distinct cores run concurrently;
// the registry is lock-free, so this is safe from the shard goroutines.
func (ro runObs) corePhase(c int, name string) obsv.Timer {
	if ro.reg == nil {
		return obsv.Timer{}
	}
	return ro.reg.Scope("core" + strconv.Itoa(c)).Timer(name)
}

// end closes the run: whole-run wall histogram plus the event-rate
// gauge (simulated updates processed per harness second).
func (ro runObs) end() {
	if ro.reg == nil {
		return
	}
	elapsed := time.Since(ro.start)
	ro.reg.Histogram("wall").Observe(elapsed)
	if s := elapsed.Seconds(); s > 0 {
		ro.reg.Gauge("updates_per_sec").Set(float64(ro.updates) / s)
	}
}
