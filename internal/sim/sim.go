// Package sim assembles the simulated machine (core + hierarchy +
// COBRA extensions) and runs workloads through the execution schemes
// the paper evaluates: Baseline, PB-SW, PB-SW-IDEAL, COBRA, COBRA-COMM,
// and PHI. It produces the Metrics every figure is built from.
//
// The simulated unit is one representative core owning 1/16th of the
// work and a core-local NUCA LLC slice (see DESIGN.md): the paper's PB
// and COBRA duplicate all bins and C-Buffers per thread and privatize
// LLC banks per core, so per-core behaviour is the unit of analysis.
package sim

import (
	"fmt"

	"cobra/internal/core"
	"cobra/internal/cpu"
	"cobra/internal/mem"
	"cobra/internal/phi"
)

// Arch is the simulated architecture (Table II defaults).
type Arch struct {
	Mem mem.Config
	CPU cpu.Config

	// NumCores is the number of simulated cores. 0 and 1 both select
	// the legacy single-core model (one representative core owning all
	// the work), whose outputs are byte-identical to the pre-multi-core
	// simulator. Values > 1 shard every scheme across NumCores per-core
	// machines — each with its own L1/L2, OpBuf pipeline, and private
	// NUCA LLC slice — and merge per-core Metrics via MergeMetrics.
	// See DESIGN.md §9 for the shard/merge model.
	NumCores int

	// scalarRefs forces runs built from this Arch through the scalar
	// per-reference oracle path instead of the batched pipeline. Both
	// paths must produce bit-identical Metrics; the differential tests
	// exercise this knob.
	scalarRefs bool
}

// DefaultMultiCores is the paper's evaluated machine width (Table II:
// a 16-core OoO CMP), used when a caller asks for "multi-core" without
// naming a count.
const DefaultMultiCores = 16

// DefaultArch mirrors Table II's per-core parameters on the legacy
// single-core model.
func DefaultArch() Arch {
	return Arch{Mem: mem.DefaultConfig(), CPU: cpu.DefaultConfig()}
}

// WithCores returns a copy of a simulating n cores (n <= 0 selects
// DefaultMultiCores, the paper's 16).
func (a Arch) WithCores(n int) Arch {
	if n <= 0 {
		n = DefaultMultiCores
	}
	a.NumCores = n
	return a
}

// Cores resolves the configured core count (0 means 1).
func (a Arch) Cores() int {
	if a.NumCores <= 1 {
		return 1
	}
	return a.NumCores
}

// WithScalarRefs returns a copy of a whose machines execute every
// micro-op immediately through the scalar Core methods (the oracle the
// batched pipeline is verified against).
func (a Arch) WithScalarRefs() Arch {
	a.scalarRefs = true
	return a
}

// Region is an allocated block of simulated address space.
type Region struct {
	Base uint64
	Size uint64
}

// Addr returns the byte address at offset off.
func (r Region) Addr(off uint64) uint64 {
	return r.Base + off
}

// Mach is one simulated machine instance for one run.
//
// Hot loops emit micro-ops through B, the batched op pipeline; direct
// CPU/H access remains for code that needs the clock or hierarchy
// state mid-stream (the COBRA binning loop, phase bookkeeping) — any
// such access must be preceded by B.Flush().
type Mach struct {
	CPU *cpu.Core
	H   *mem.Hierarchy
	B   *cpu.OpBuf

	next uint64
}

// NewMach builds a fresh machine.
func NewMach(a Arch) *Mach {
	h := mem.New(a.Mem)
	c := cpu.New(a.CPU, h)
	b := cpu.NewOpBuf(c)
	if a.scalarRefs {
		b = cpu.NewOpBufDirect(c)
	}
	return &Mach{CPU: c, H: h, B: b, next: 1 << 20}
}

// Alloc reserves a page-aligned region of simulated address space.
// Regions never overlap, so distinct arrays contend only through cache
// geometry, as on real hardware.
func (m *Mach) Alloc(bytes uint64) Region {
	const pageMask = 4096 - 1
	base := (m.next + pageMask) &^ uint64(pageMask)
	m.next = base + bytes
	return Region{Base: base, Size: bytes}
}

// App is one irregular-update workload, expressed as (1) an update
// stream replayable from its input and (2) an applier that performs
// each update functionally while driving the machine with the real
// addresses it touches. Package kernels provides constructors for the
// paper's nine applications.
type App struct {
	Name        string
	InputName   string
	Commutative bool
	// TupleBytes is the binned tuple size (4/8/16 in Table "workloads").
	TupleBytes int
	// NumKeys is the irregular data namespace (vertices, keys, columns).
	NumKeys int
	// NumUpdates is the length of the update stream.
	NumUpdates int
	// StreamBytes is input bytes streamed per update (edge = 8 B, ...).
	StreamBytes int
	// ForEach replays the update stream in input order. newGroup marks
	// the first update of an input group (vertex/row) — it drives the
	// inner-loop branch model, making power-law trip counts genuinely
	// hard to predict (paper footnote 3).
	ForEach func(emit func(key uint32, val uint64, newGroup bool))
	// NewApplier returns a fresh functional state bound to mach regions.
	NewApplier func(m *Mach) Applier
	// ApplyALU is the applier's pure-ALU work per update, charged by the
	// harness (address math, value ops).
	ApplyALU int
	// Reduce merges two update values for the same key, for apps whose
	// updates coalesce losslessly in integer hardware (counts: add,
	// masks: or). nil means PHI and COBRA-COMM are inapplicable even if
	// the math is abstractly commutative (e.g., float adds).
	Reduce func(a, b uint64) uint64
}

// Applier performs one update against real data arrays, issuing the
// update's irregular accesses on the machine.
type Applier interface {
	Apply(key uint32, val uint64)
}

// ShardApplier is an Applier that supports multi-core sharding: Shard
// returns a view bound to machine m that SHARES the receiver's
// functional state (the real data slices) while issuing its machine
// ops on m. Sharded runs partition the key range across cores, so
// per-core views touch disjoint slice elements and the shared arrays
// end up bitwise identical to a single-core run. Apps whose applier
// does not implement this cannot run with Arch.NumCores > 1.
type ShardApplier interface {
	Applier
	Shard(m *Mach) Applier
}

// Validate sanity-checks an app definition.
func (a *App) Validate() error {
	if a.NumKeys <= 0 || a.NumUpdates <= 0 {
		return fmt.Errorf("sim: app %s has empty workload", a.Name)
	}
	if a.TupleBytes != 4 && a.TupleBytes != 8 && a.TupleBytes != 16 {
		return fmt.Errorf("sim: app %s tuple size %d not in {4,8,16}", a.Name, a.TupleBytes)
	}
	if a.ForEach == nil || a.NewApplier == nil {
		return fmt.Errorf("sim: app %s missing stream or applier", a.Name)
	}
	return nil
}

// Scheme names an execution scheme.
type Scheme string

// Execution schemes (Figure 10's bars plus the §VII-C specializations).
const (
	SchemeBaseline Scheme = "Baseline"
	SchemePBSW     Scheme = "PB-SW"
	SchemePBIdeal  Scheme = "PB-SW-IDEAL"
	SchemeCOBRA    Scheme = "COBRA"
	SchemeComm     Scheme = "COBRA-COMM"
	SchemePHI      Scheme = "PHI"
)

// Metrics is what one simulated run reports.
type Metrics struct {
	App    string
	Input  string
	Scheme Scheme

	Cycles      float64
	InitCycles  float64
	BinCycles   float64 // Binning phase
	AccumCycles float64 // Accumulate phase

	Ctr      cpu.Counters // whole run
	BinCtr   cpu.Counters // Binning phase only
	AccumCtr cpu.Counters

	L1Misses, L2Misses, LLCMisses uint64
	// LLCAccesses carries the LLC demand-access count so LLCMissRate
	// can be re-derived exactly when per-core metrics are merged.
	LLCAccesses uint64
	LLCMissRate float64
	DRAM        mem.Traffic

	// Cores is the number of simulated cores this Metrics aggregates
	// (1 for the single-core model and for each per-core shard).
	Cores int

	// Per-phase memory behaviour (Init excluded from Bin/Accum, so
	// Figure 4b and Figure 14 compare the phases the paper compares).
	BinMem   PhaseMem
	AccumMem PhaseMem

	NumBins        int
	EvictStalls    float64
	EvictStallFrac float64 // stall cycles / binning cycles
	CtxWasteBytes  uint64
	CtxSwitches    uint64
	CBufMissRate   float64 // NoPartition runs: unpartitioned C-Buffer L1 miss rate
}

// PhaseMem is a per-phase snapshot delta of memory-system activity.
type PhaseMem struct {
	L1Misses, L2Misses, LLCMisses uint64
	DRAMReadLines, DRAMWriteLines uint64
}

// Sum returns a + b field-wise.
func (a PhaseMem) Sum(b PhaseMem) PhaseMem {
	return PhaseMem{
		L1Misses:       a.L1Misses + b.L1Misses,
		L2Misses:       a.L2Misses + b.L2Misses,
		LLCMisses:      a.LLCMisses + b.LLCMisses,
		DRAMReadLines:  a.DRAMReadLines + b.DRAMReadLines,
		DRAMWriteLines: a.DRAMWriteLines + b.DRAMWriteLines,
	}
}

// DRAMBytes returns total DRAM traffic in bytes for the phase.
func (a PhaseMem) DRAMBytes() uint64 { return (a.DRAMReadLines + a.DRAMWriteLines) * 64 }

// memSnap captures cumulative memory counters for phase deltas.
func memSnap(mach *Mach) PhaseMem {
	l1, l2, llc := mach.H.MissSummary()
	return PhaseMem{
		L1Misses:       l1,
		L2Misses:       l2,
		LLCMisses:      llc,
		DRAMReadLines:  mach.H.DRAMTraffic.ReadLines,
		DRAMWriteLines: mach.H.DRAMTraffic.WriteLines,
	}
}

func (a PhaseMem) sub(b PhaseMem) PhaseMem {
	return PhaseMem{
		L1Misses:       a.L1Misses - b.L1Misses,
		L2Misses:       a.L2Misses - b.L2Misses,
		LLCMisses:      a.LLCMisses - b.LLCMisses,
		DRAMReadLines:  a.DRAMReadLines - b.DRAMReadLines,
		DRAMWriteLines: a.DRAMWriteLines - b.DRAMWriteLines,
	}
}

// Speedup returns base.Cycles / m.Cycles.
func (m Metrics) Speedup(base Metrics) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return base.Cycles / m.Cycles
}

// finish snapshots hierarchy-level stats into the metrics.
func (m *Metrics) finish(mach *Mach) {
	m.Ctr = mach.CPU.Ctr
	m.L1Misses, m.L2Misses, m.LLCMisses = mach.H.MissSummary()
	m.LLCAccesses = mach.H.LLCc.Stats.Accesses()
	m.LLCMissRate = mach.H.LLCc.Stats.MissRate()
	m.DRAM = mach.H.DRAMTraffic
	m.Cycles = mach.CPU.Cycles()
	if m.Cores == 0 {
		m.Cores = 1
	}
}

// branch PCs used by the harness (arbitrary distinct values).
const (
	pcInnerLoop = 0x100 // per-update loop branch (taken within a group)
	pcCBufFull  = 0x200 // PB-SW "C-Buffer full?" branch
	pcBinLoop   = 0x300 // accumulate per-bin loop branch
)

// RunBaseline executes the unoptimized kernel: stream the input, apply
// each irregular update directly (Figure 3 left).
func RunBaseline(app *App, arch Arch) (Metrics, error) {
	if err := app.Validate(); err != nil {
		return Metrics{}, err
	}
	if arch.Cores() > 1 {
		return runBaselineMC(app, arch)
	}
	ro := beginRunObs(SchemeBaseline, app)
	defer ro.end()
	applyT := ro.phase("accumulate.wall")
	defer applyT.Stop()
	mach := NewMach(arch)
	applier := app.NewApplier(mach)
	input := mach.Alloc(uint64(app.NumUpdates) * uint64(app.StreamBytes))
	met := Metrics{App: app.Name, Input: app.InputName, Scheme: SchemeBaseline}
	i := 0
	app.ForEach(func(key uint32, val uint64, newGroup bool) {
		mach.B.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
		mach.B.Branch(pcInnerLoop, !newGroup)
		mach.B.ALU(1 + app.ApplyALU) // address math + apply work
		applier.Apply(key, val)
		i++
	})
	mach.B.Flush()
	mach.CPU.DrainMem()
	met.finish(mach)
	met.AccumCycles = met.Cycles // the whole run is "apply"
	met.AccumMem = memSnap(mach)
	return met, nil
}

// pbLayout bundles the software-PB data structures of one run.
type pbLayout struct {
	numBins  int
	shift    uint
	cbuf     Region // numBins × 64 B coalescing buffers
	cnt      Region // numBins × 4 B per-C-Buffer fill counters
	binPos   Region // numBins × 4 B bin write cursors
	bins     Region // NumUpdates × TupleBytes in-memory bins
	tuplesPL int
}

func planPB(mach *Mach, app *App, numBins int) pbLayout {
	if numBins < 1 {
		numBins = 1
	}
	if numBins > app.NumKeys {
		numBins = app.NumKeys
	}
	// Power-of-two bin range, as in Algorithm 2's shift-based binning.
	shift := uint(0)
	for (uint64(app.NumKeys)+(1<<shift)-1)>>shift > uint64(numBins) {
		shift++
	}
	bins := int((uint64(app.NumKeys) + (1 << shift) - 1) >> shift)
	return pbLayout{
		numBins:  bins,
		shift:    shift,
		cbuf:     mach.Alloc(uint64(bins) * 64),
		cnt:      mach.Alloc(uint64(bins) * 4),
		binPos:   mach.Alloc(uint64(bins) * 4),
		bins:     mach.Alloc(uint64(app.NumUpdates) * uint64(app.TupleBytes)),
		tuplesPL: 64 / app.TupleBytes,
	}
}

// runInitCount models the Init phase both PB and COBRA pay (Table I):
// one streaming pass over the input counting tuples per bin, then a
// prefix sum over the bin counts.
func runInitCount(mach *Mach, app *App, input Region, cntRegion Region, shift uint, numBins int) {
	i := 0
	app.ForEach(func(key uint32, val uint64, newGroup bool) {
		mach.B.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
		mach.B.Branch(pcInnerLoop, !newGroup)
		mach.B.ALU(2) // shift + address math
		addr := cntRegion.Addr(uint64(key>>shift) * 4)
		mach.B.Load(addr)
		mach.B.Store(addr)
		i++
	})
	// Prefix sum over bin counts.
	for b := 0; b < numBins; b++ {
		mach.B.Load(cntRegion.Addr(uint64(b) * 4))
		mach.B.ALU(2)
		mach.B.Store(cntRegion.Addr(uint64(b) * 4))
	}
	mach.B.Flush()
	mach.CPU.DrainMem()
}

// RunPBSW executes software propagation blocking with the given bin
// count (Algorithm 2): Init (exact bin sizing), Binning through
// cacheline-sized software C-Buffers flushed with non-temporal stores,
// then Accumulate over the materialized bins.
func RunPBSW(app *App, numBins int, arch Arch) (Metrics, error) {
	if err := app.Validate(); err != nil {
		return Metrics{}, err
	}
	if arch.Cores() > 1 {
		return runPBSWMC(app, numBins, arch)
	}
	ro := beginRunObs(SchemePBSW, app)
	defer ro.end()
	mach := NewMach(arch)
	applier := app.NewApplier(mach)
	input := mach.Alloc(uint64(app.NumUpdates) * uint64(app.StreamBytes))
	lay := planPB(mach, app, numBins)
	met := Metrics{App: app.Name, Input: app.InputName, Scheme: SchemePBSW, NumBins: lay.numBins}

	// ---- Init: per-bin tuple counts + prefix sum ----
	initT := ro.phase("init.wall")
	runInitCount(mach, app, input, lay.cnt, lay.shift, lay.numBins)
	initT.Stop()
	met.InitCycles = mach.CPU.Cycles()

	// ---- Binning ----
	binT := ro.phase("binning.wall")
	binStartCyc := mach.CPU.Cycles()
	binStartCtr := mach.CPU.Ctr
	binStartMem := memSnap(mach)
	scratch := getBinScratch(lay.numBins)
	defer putBinScratch(scratch)
	bins := scratch.bins     // materialized software bins
	fill := scratch.fill     // tuples in each software C-Buffer
	binPos := scratch.binPos // write cursor into each memory bin
	i := 0
	app.ForEach(func(key uint32, val uint64, newGroup bool) {
		mach.B.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
		mach.B.Branch(pcInnerLoop, !newGroup)
		i++
		b := int(key >> lay.shift)
		mach.B.ALU(2) // shift + C-Buffer address math
		// Read-modify-write the C-Buffer fill counter, store the tuple.
		cntAddr := lay.cnt.Addr(uint64(b) * 4)
		mach.B.Load(cntAddr)
		mach.B.Store(lay.cbuf.Addr(uint64(b)*64 + uint64(fill[b])*uint64(app.TupleBytes)))
		mach.B.ALU(1)
		mach.B.Store(cntAddr)
		fill[b]++
		full := fill[b] == lay.tuplesPL
		mach.B.Branch(pcCBufFull, !full)
		if full {
			// Bulk transfer: non-temporal stores of the C-Buffer's tuples
			// into the in-memory bin at this bin's cursor.
			posAddr := lay.binPos.Addr(uint64(b) * 4)
			mach.B.Load(posAddr)
			for k := 0; k < lay.tuplesPL; k++ {
				off := uint64(binPos[b]+k) * uint64(app.TupleBytes)
				mach.B.StoreNT(lay.bins.Addr(off))
				mach.B.ALU(1)
			}
			binPos[b] += lay.tuplesPL
			mach.B.ALU(1)
			mach.B.Store(posAddr)
			fill[b] = 0
		}
		bins[b] = append(bins[b], core.Tuple{Key: key, Val: val})
	})
	// Flush partial C-Buffers (software epilogue).
	for b := 0; b < lay.numBins; b++ {
		mach.B.Load(lay.cnt.Addr(uint64(b) * 4))
		mach.B.Branch(pcCBufFull, fill[b] == 0)
		for k := 0; k < fill[b]; k++ {
			off := uint64(binPos[b]+k) * uint64(app.TupleBytes)
			mach.B.StoreNT(lay.bins.Addr(off))
			mach.B.ALU(1)
		}
		binPos[b] += fill[b]
		fill[b] = 0
	}
	mach.B.Flush()
	mach.CPU.DrainMem()
	binT.Stop()
	met.BinCycles = mach.CPU.Cycles() - binStartCyc
	met.BinCtr = mach.CPU.Ctr.Sub(binStartCtr)
	met.BinMem = memSnap(mach).sub(binStartMem)

	// ---- Accumulate ----
	accT := ro.phase("accumulate.wall")
	accStartCyc := mach.CPU.Cycles()
	accStartCtr := mach.CPU.Ctr
	accStartMem := memSnap(mach)
	runAccumulate(mach, app, applier, bins, lay.bins)
	accT.Stop()
	met.AccumCycles = mach.CPU.Cycles() - accStartCyc
	met.AccumCtr = mach.CPU.Ctr.Sub(accStartCtr)
	met.AccumMem = memSnap(mach).sub(accStartMem)

	met.finish(mach)
	return met, nil
}

// runAccumulate replays materialized bins: sequential (prefetchable)
// tuple reads, then the irregular apply whose footprint is now bounded
// by the bin range.
func runAccumulate(mach *Mach, app *App, applier Applier, bins [][]core.Tuple, binRegion Region) {
	pos := 0
	for b := range bins {
		// Per-bin loop prologue: offsets lookup + loop setup.
		mach.B.ALU(6)
		mach.B.Load(binRegion.Addr(uint64(pos) * uint64(app.TupleBytes)))
		mach.B.Branch(pcBinLoop, len(bins[b]) != 0)
		for _, t := range bins[b] {
			mach.B.Load(binRegion.Addr(uint64(pos) * uint64(app.TupleBytes)))
			mach.B.Branch(pcBinLoop, true)
			mach.B.ALU(1 + app.ApplyALU)
			applier.Apply(t.Key, t.Val)
			pos++
		}
	}
	mach.B.Flush()
	mach.CPU.DrainMem()
}

// IdealPB composes PB-SW-IDEAL (Figure 5): the Binning phase of a
// small-bin run with the Accumulate phase of a large-bin run — the
// unrealizable best of both worlds.
func IdealPB(binning, accumulate Metrics) Metrics {
	m := binning
	m.Scheme = SchemePBIdeal
	m.AccumCycles = accumulate.AccumCycles
	m.AccumCtr = accumulate.AccumCtr
	m.AccumMem = accumulate.AccumMem
	m.Cycles = binning.InitCycles + binning.BinCycles + accumulate.AccumCycles
	m.NumBins = accumulate.NumBins
	return m
}

// CobraOpt tweaks a COBRA run.
type CobraOpt struct {
	Coalesce         bool    // COBRA-COMM
	CtxSwitchQuantum float64 // Figure 13c
	EvictBufL1L2     int     // Figure 13a (0 = default 32)
	ReserveL1        int     // Figure 13b (0 = default)
	ReserveL2        int
	ReserveLLC       int
	MaxLLCBufs       int  // cap LLC C-Buffers (PINV medium-bin variant)
	SkipAccum        bool // stop after Binning (Figure 13 sweeps need only that phase)
	NoPartition      bool // §V-E: no static cache partitioning; C-Buffers compete in cache
}

// RunCOBRA executes the COBRA scheme: the Init counting pass (bin sizes
// are precomputed exactly as in PB, §V-E), bininit, a Binning phase of
// single binupdate instructions through the hardware C-Buffer
// hierarchy, binflush, then Accumulate over the hardware-materialized
// bins (one per LLC C-Buffer — the optimal large bin count).
func RunCOBRA(app *App, opt CobraOpt, arch Arch) (Metrics, error) {
	if err := app.Validate(); err != nil {
		return Metrics{}, err
	}
	if arch.Cores() > 1 {
		return runCOBRAMC(app, opt, arch)
	}
	mach := NewMach(arch)
	applier := app.NewApplier(mach)
	input := mach.Alloc(uint64(app.NumUpdates) * uint64(app.StreamBytes))

	cfg := core.DefaultConfig(app.TupleBytes)
	cfg.Coalesce = opt.Coalesce
	cfg.CtxSwitchQuantum = opt.CtxSwitchQuantum
	if opt.EvictBufL1L2 > 0 {
		cfg.EvictBufL1L2 = opt.EvictBufL1L2
	}
	if opt.ReserveL1 > 0 {
		cfg.ReserveL1 = opt.ReserveL1
	}
	if opt.ReserveL2 > 0 {
		cfg.ReserveL2 = opt.ReserveL2
	}
	if opt.ReserveLLC > 0 {
		cfg.ReserveLLC = opt.ReserveLLC
	}
	cfg.NoPartition = opt.NoPartition
	if opt.Coalesce {
		if !app.Commutative || app.Reduce == nil {
			return Metrics{}, fmt.Errorf("sim: COBRA-COMM is inapplicable to %s (§III-B: updates must coalesce losslessly)", app.Name)
		}
		cfg.CoalesceFn = app.Reduce
	}
	m := core.NewMachine(mach.CPU, cfg)

	scheme := SchemeCOBRA
	if opt.Coalesce {
		scheme = SchemeComm
	}
	met := Metrics{App: app.Name, Input: app.InputName, Scheme: scheme}
	ro := beginRunObs(scheme, app)
	defer ro.end()

	// ---- Init: bin-size counting pass (charged to COBRA too) ----
	// The count array is one slot per *memory bin*; before bininit the
	// bin count is the LLC C-Buffer count, which we compute by a dry
	// BinInit on a scratch machine... instead BinInit first (cheap), then
	// count. Order matches §V-E: offsets must exist before Binning.
	if err := m.BinInit(uint64(app.NumKeys)); err != nil {
		return Metrics{}, err
	}
	cntRegion := mach.Alloc(uint64(m.NumBins()) * 4)
	initT := ro.phase("init.wall")
	runInitCount(mach, app, input, cntRegion, m.BinShiftLLC(), m.NumBins())
	initT.Stop()
	met.InitCycles = mach.CPU.Cycles()
	met.NumBins = m.NumBins()

	// ---- Binning: one binupdate per tuple ----
	// This loop stays on the scalar CPU methods deliberately: the COBRA
	// eviction-FIFO model inside m.BinUpdate reads the live cycle clock
	// (queueing delays, context-switch quanta), so its micro-ops cannot
	// be deferred behind a batch. See DESIGN §7.
	binT := ro.phase("binning.wall")
	binStartCyc := mach.CPU.Cycles()
	binStartCtr := mach.CPU.Ctr
	binStartMem := memSnap(mach)
	i := 0
	app.ForEach(func(key uint32, val uint64, newGroup bool) {
		mach.CPU.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
		mach.CPU.Branch(pcInnerLoop, !newGroup)
		m.BinUpdate(key, val)
		i++
	})
	m.BinFlush()
	binT.Stop()
	met.BinCycles = mach.CPU.Cycles() - binStartCyc
	met.BinCtr = mach.CPU.Ctr.Sub(binStartCtr)
	met.BinMem = memSnap(mach).sub(binStartMem)
	met.EvictStalls, _ = m.EvictionStalls()
	if met.BinCycles > 0 {
		met.EvictStallFrac = met.EvictStalls / met.BinCycles
	}
	met.CtxWasteBytes = m.St.CtxWasteBytes
	met.CtxSwitches = m.St.CtxSwitches
	met.CBufMissRate = m.St.CBufMissRate()

	if opt.SkipAccum {
		met.finish(mach)
		return met, nil
	}

	// ---- Accumulate over hardware bins ----
	binRegion := mach.Alloc(uint64(app.NumUpdates) * uint64(app.TupleBytes))
	accT := ro.phase("accumulate.wall")
	accStartCyc := mach.CPU.Cycles()
	accStartCtr := mach.CPU.Ctr
	accStartMem := memSnap(mach)
	hwBins := m.Bins
	if opt.MaxLLCBufs > 0 && opt.MaxLLCBufs < len(hwBins) {
		hwBins = regroupBins(hwBins, opt.MaxLLCBufs)
	}
	runAccumulate(mach, app, applier, hwBins, binRegion)
	accT.Stop()
	met.AccumCycles = mach.CPU.Cycles() - accStartCyc
	met.AccumCtr = mach.CPU.Ctr.Sub(accStartCtr)
	met.AccumMem = memSnap(mach).sub(accStartMem)

	met.finish(mach)
	return met, nil
}

// regroupBins merges adjacent fine bins into at most maxBins coarse
// bins (the "medium number of LLC C-Buffers" variant for PINV, §VII-A).
func regroupBins(bins [][]core.Tuple, maxBins int) [][]core.Tuple {
	group := (len(bins) + maxBins - 1) / maxBins
	total := 0
	for _, b := range bins {
		total += len(b)
	}
	// One flat backing array for all merged bins (instead of per-bin
	// append-grown slices); each coarse bin is a capacity-clipped window
	// so later appends by callers could never bleed across bins.
	flat := make([]core.Tuple, 0, total)
	out := make([][]core.Tuple, 0, maxBins)
	for lo := 0; lo < len(bins); lo += group {
		hi := lo + group
		if hi > len(bins) {
			hi = len(bins)
		}
		start := len(flat)
		for _, b := range bins[lo:hi] {
			flat = append(flat, b...)
		}
		out = append(out, flat[start:len(flat):len(flat)])
	}
	return out
}

// RunPHI models PHI for a commutative app (Figure 14): idealized
// zero-overhead hierarchical coalescing during Binning (traffic =
// stream reads + residue writes), then an Accumulate pass over the
// coalesced residue with PB-SW's (compromised) bin count.
func RunPHI(app *App, numBins int, arch Arch) (Metrics, error) {
	if err := app.Validate(); err != nil {
		return Metrics{}, err
	}
	if !app.Commutative || app.Reduce == nil {
		return Metrics{}, fmt.Errorf("sim: PHI is inapplicable to %s (§III-B: updates must coalesce losslessly)", app.Name)
	}
	if arch.Cores() > 1 {
		return runPHIMC(app, numBins, arch)
	}
	ro := beginRunObs(SchemePHI, app)
	defer ro.end()
	mach := NewMach(arch)
	applier := app.NewApplier(mach)
	input := mach.Alloc(uint64(app.NumUpdates) * uint64(app.StreamBytes))
	met := Metrics{App: app.Name, Input: app.InputName, Scheme: SchemePHI}

	phiCfg := phi.DefaultConfig(app.TupleBytes, numBins)
	phiCfg.Reduce = app.Reduce
	model := phi.New(phiCfg, uint64(app.NumKeys))
	met.NumBins = model.NumBins()

	// Binning: stream the input (real cache traffic); coalescing and
	// residue writes are idealized per the paper's PHI methodology.
	binT := ro.phase("binning.wall")
	binStart := mach.CPU.Cycles()
	binStartMem := memSnap(mach)
	i := 0
	app.ForEach(func(key uint32, val uint64, newGroup bool) {
		mach.B.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
		mach.B.Branch(pcInnerLoop, !newGroup)
		mach.B.BinUpdate()     // PHI also uses a single update instruction
		model.Update(key, val) // pure functional model: no machine state read
		i++
	})
	mach.B.Flush()
	model.Flush()
	mach.H.WriteLineDirect((model.St.MemBytes + 63) / 64)
	mach.CPU.DrainMem()
	binT.Stop()
	met.BinCycles = mach.CPU.Cycles() - binStart
	met.BinMem = memSnap(mach).sub(binStartMem)

	// Accumulate over the coalesced residue with PB-SW's bin count.
	binRegion := mach.Alloc(uint64(app.NumUpdates) * uint64(app.TupleBytes))
	accT := ro.phase("accumulate.wall")
	accStart := mach.CPU.Cycles()
	accStartCtr := mach.CPU.Ctr
	accStartMem := memSnap(mach)
	runAccumulate(mach, app, applier, model.Bins, binRegion)
	accT.Stop()
	met.AccumCycles = mach.CPU.Cycles() - accStart
	met.AccumCtr = mach.CPU.Ctr.Sub(accStartCtr)
	met.AccumMem = memSnap(mach).sub(accStartMem)

	met.finish(mach)
	return met, nil
}
