package sim

// Metamorphic laws of the per-core metrics reduction (DESIGN §9).
// These tests build synthetic per-core parts with known values, so
// every law is checked exactly: cycles fold by max, work counters and
// per-phase memory fold by sum, rates are re-derived from summed raw
// counts (never averaged), and the whole reduction is invariant under
// core permutation. A timing-model change can shift what the per-core
// parts contain; it must never change how they combine.

import (
	"math"
	"testing"

	"cobra/internal/cpu"
)

// mcPart builds a distinguishable synthetic per-core Metrics. Every
// field is a distinct function of i so a mis-folded field can't hide
// behind a coincidence.
func mcPart(i int) Metrics {
	f := float64(i + 1)
	u := uint64(i + 1)
	return Metrics{
		Cycles:      1000 * f,
		InitCycles:  10 * f,
		BinCycles:   100 * f,
		AccumCycles: 500 * f,
		Ctr:         cpu.Counters{Instructions: 1000 * u, Loads: 300 * u, Stores: 200 * u, BinUpdates: 40 * u},
		BinCtr:      cpu.Counters{Instructions: 400 * u, BinUpdates: 40 * u},
		AccumCtr:    cpu.Counters{Instructions: 600 * u},
		L1Misses:    50 * u, L2Misses: 20 * u, LLCMisses: 10 * u,
		LLCAccesses:  30 * u,
		BinMem:       PhaseMem{L1Misses: 5 * u, LLCMisses: 2 * u, DRAMReadLines: 7 * u, DRAMWriteLines: 3 * u},
		AccumMem:     PhaseMem{L1Misses: 4 * u, LLCMisses: 1 * u, DRAMReadLines: 6 * u, DRAMWriteLines: 2 * u},
		NumBins:      64,
		EvictStalls:  5 * f,
		CBufMissRate: 0.1 * f,
		Cores:        1,
	}
}

func TestMergeCyclesAreMaxima(t *testing.T) {
	parts := []Metrics{mcPart(2), mcPart(0), mcPart(1)}
	m := MergeMetrics(parts)
	// The slowest core (i=2) dominates every cycle field.
	if m.Cycles != 3000 || m.InitCycles != 30 || m.BinCycles != 300 || m.AccumCycles != 1500 {
		t.Fatalf("merged cycles not per-phase maxima: %+v", m)
	}
	if m.Cores != 3 {
		t.Fatalf("merged Cores = %d, want 3", m.Cores)
	}
}

func TestMergeConservesWork(t *testing.T) {
	parts := []Metrics{mcPart(0), mcPart(1), mcPart(2)}
	m := MergeMetrics(parts)

	// Event counters and DRAM traffic are machine-wide work: sums.
	var wantInstr, wantL1 uint64
	var wantBinMem, wantAccumMem PhaseMem
	for _, p := range parts {
		wantInstr += p.Ctr.Instructions
		wantL1 += p.L1Misses
		wantBinMem = wantBinMem.Sum(p.BinMem)
		wantAccumMem = wantAccumMem.Sum(p.AccumMem)
	}
	if m.Ctr.Instructions != wantInstr {
		t.Fatalf("instructions = %d, want %d", m.Ctr.Instructions, wantInstr)
	}
	if m.L1Misses != wantL1 {
		t.Fatalf("L1 misses = %d, want %d", m.L1Misses, wantL1)
	}
	// Per-core PhaseMem conserves under the merge: the merged phase
	// snapshots are exactly the field-wise sums, and phase DRAM bytes
	// stay additive.
	if m.BinMem != wantBinMem || m.AccumMem != wantAccumMem {
		t.Fatalf("phase mem not conserved:\nbin %+v want %+v\naccum %+v want %+v",
			m.BinMem, wantBinMem, m.AccumMem, wantAccumMem)
	}
	if got := m.BinMem.DRAMBytes(); got != parts[0].BinMem.DRAMBytes()+parts[1].BinMem.DRAMBytes()+parts[2].BinMem.DRAMBytes() {
		t.Fatalf("phase DRAM bytes not additive: %d", got)
	}
}

func TestMergeRederivesRates(t *testing.T) {
	parts := []Metrics{mcPart(0), mcPart(1), mcPart(2)}
	m := MergeMetrics(parts)

	// LLCMissRate from summed counts: (10+20+30)/(30+60+90).
	if want := float64(60) / float64(180); m.LLCMissRate != want {
		t.Fatalf("LLC miss rate = %v, want %v", m.LLCMissRate, want)
	}
	// EvictStallFrac over summed per-core binning cycles, not the merged
	// maximum: (5+10+15)/(100+200+300).
	if want := 30.0 / 600.0; m.EvictStallFrac != want {
		t.Fatalf("evict stall frac = %v, want %v", m.EvictStallFrac, want)
	}
	// CBufMissRate weighted by per-core binupdate counts:
	// (0.1*40 + 0.2*80 + 0.3*120) / 240.
	if want := (0.1*40 + 0.2*80 + 0.3*120) / 240; math.Abs(m.CBufMissRate-want) > 1e-12 {
		t.Fatalf("cbuf miss rate = %v, want %v", m.CBufMissRate, want)
	}
}

func TestMergePermutationInvariant(t *testing.T) {
	// Core index must not matter: max and sum are commutative, and the
	// weighted rates renormalize identically. (The variadic Merge sugar
	// must agree with the slice form.)
	a := MergeMetrics([]Metrics{mcPart(0), mcPart(1), mcPart(2)})
	b := mcPart(2).Merge(mcPart(0), mcPart(1))
	if a != b {
		t.Fatalf("merge not permutation-invariant:\n%+v\n%+v", a, b)
	}
}

func TestMergeIdentity(t *testing.T) {
	// A single part passes through unchanged (Cores defaulted to 1), so
	// merging is the identity on single-core runs — the structural half
	// of the N=1 byte-identity guarantee.
	p := mcPart(0)
	p.Cores = 0
	got := MergeMetrics([]Metrics{p})
	p.Cores = 1
	if got != p {
		t.Fatalf("single-part merge not identity:\n%+v\n%+v", got, p)
	}
	if z := MergeMetrics(nil); z != (Metrics{}) {
		t.Fatalf("empty merge = %+v, want zero", z)
	}
	// Parts with unset Cores still count as one core each.
	q := mcPart(1)
	q.Cores = 0
	if m := MergeMetrics([]Metrics{p, q}); m.Cores != 2 {
		t.Fatalf("unset-core parts merged to Cores=%d, want 2", m.Cores)
	}
}

func TestMergeSpeedupSane(t *testing.T) {
	// Merged metrics stay usable as Speedup numerator/denominator: a
	// merged N-core run against a slower single-core run yields a
	// finite speedup > 1.
	single := mcPart(5)
	merged := MergeMetrics([]Metrics{mcPart(0), mcPart(1)})
	sp := merged.Speedup(single)
	if sp <= 1 || math.IsInf(sp, 0) || math.IsNaN(sp) {
		t.Fatalf("speedup = %v, want finite > 1", sp)
	}
}
