package sim

// Typed scheme identity for API boundaries.
//
// Scheme (a string) remains the simulator's internal spelling — it is
// what Metrics carries and what checkpoint fingerprints embed — but
// every API boundary (exp.RunSpec, srv.JobSpec, the cobrad wire
// format, fleet cell translation) passes the typed SchemeID instead of
// shuttling raw strings through ParseScheme at each layer. A SchemeID
// marshals to the canonical scheme name, so wire formats are unchanged;
// unmarshalling additionally accepts legacy spellings (case variants,
// surrounding space) for back-compat with pre-typed clients.

import (
	"encoding/json"
	"fmt"
	"strings"
)

// SchemeID is the typed identity of an execution scheme. The zero
// value is invalid, so an absent or unparsed scheme can never be
// mistaken for a real one.
type SchemeID uint8

// Scheme identities, in the canonical presentation order (Figure 10's
// bars plus the §VII-C specializations).
const (
	SchemeIDInvalid SchemeID = iota
	SchemeIDBaseline
	SchemeIDPBSW
	SchemeIDPBIdeal
	SchemeIDCOBRA
	SchemeIDComm
	SchemeIDPHI
)

// schemeIDNames maps each id to its canonical Scheme spelling.
var schemeIDNames = [...]Scheme{
	SchemeIDInvalid:  "",
	SchemeIDBaseline: SchemeBaseline,
	SchemeIDPBSW:     SchemePBSW,
	SchemeIDPBIdeal:  SchemePBIdeal,
	SchemeIDCOBRA:    SchemeCOBRA,
	SchemeIDComm:     SchemeComm,
	SchemeIDPHI:      SchemePHI,
}

// SchemeIDs returns every valid scheme id in presentation order.
func SchemeIDs() []SchemeID {
	return []SchemeID{SchemeIDBaseline, SchemeIDPBSW, SchemeIDPBIdeal, SchemeIDCOBRA, SchemeIDComm, SchemeIDPHI}
}

// Valid reports whether id names a real scheme.
func (id SchemeID) Valid() bool {
	return id > SchemeIDInvalid && int(id) < len(schemeIDNames)
}

// Scheme returns the canonical simulator spelling ("" for invalid).
func (id SchemeID) Scheme() Scheme {
	if !id.Valid() {
		return ""
	}
	return schemeIDNames[id]
}

// String returns the canonical name (or a diagnostic for invalid ids).
func (id SchemeID) String() string {
	if !id.Valid() {
		return fmt.Sprintf("SchemeID(%d)", uint8(id))
	}
	return string(schemeIDNames[id])
}

// ParseSchemeID resolves a canonical scheme name, strictly (exact
// case): checkpoint fingerprints and wire formats key on the canonical
// spelling, so generated identifiers must never drift.
func ParseSchemeID(name string) (SchemeID, error) {
	for _, id := range SchemeIDs() {
		if name == string(id.Scheme()) {
			return id, nil
		}
	}
	return SchemeIDInvalid, fmt.Errorf("sim: unknown scheme %q (want one of %s)", name, schemeNameList())
}

// ParseSchemeIDLenient resolves a scheme name accepting the legacy
// input forms pre-typed clients sent: surrounding whitespace and any
// case ("baseline", "pb-sw"). The resolved id still spells itself
// canonically, so leniency never leaks into fingerprints or output.
func ParseSchemeIDLenient(name string) (SchemeID, error) {
	trimmed := strings.TrimSpace(name)
	for _, id := range SchemeIDs() {
		if strings.EqualFold(trimmed, string(id.Scheme())) {
			return id, nil
		}
	}
	return SchemeIDInvalid, fmt.Errorf("sim: unknown scheme %q (want one of %s)", name, schemeNameList())
}

func schemeNameList() string {
	names := make([]string, 0, len(schemeIDNames)-1)
	for _, id := range SchemeIDs() {
		names = append(names, string(id.Scheme()))
	}
	return strings.Join(names, ", ")
}

// MarshalJSON emits the canonical scheme name, keeping the wire format
// byte-compatible with the historical []string spelling.
func (id SchemeID) MarshalJSON() ([]byte, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("sim: cannot marshal invalid SchemeID(%d)", uint8(id))
	}
	return json.Marshal(string(id.Scheme()))
}

// UnmarshalJSON accepts a JSON string naming a scheme — canonical or
// legacy (case-insensitive) — for wire back-compat.
func (id *SchemeID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("sim: scheme must be a JSON string: %w", err)
	}
	parsed, err := ParseSchemeIDLenient(s)
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// SchemeNames renders ids as their canonical strings (display and
// legacy-wire helpers).
func SchemeNames(ids []SchemeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id.Scheme())
	}
	return out
}
