package sim_test

// Differential tests pinning the batched op pipeline (Mach.B over
// mem.AccessBatch) to the scalar per-reference oracle: every Metrics
// field of every scheme must be bit-identical under
// Arch.WithScalarRefs().

import (
	"reflect"
	"testing"

	"cobra/internal/mem"
	"cobra/internal/sim"
	"cobra/internal/simtest"
)

// runAll executes every scheme (including the COBRA variants with
// distinctive machinery: coalescing, bin regrouping, no-partition) and
// returns the metrics keyed by a descriptive name.
func runAll(t *testing.T, arch sim.Arch) map[string]sim.Metrics {
	t.Helper()
	out := map[string]sim.Metrics{}
	for _, dist := range simtest.Dists() {
		app, _ := simtest.CountAppDist(dist, 1<<13, 30000, 77)
		base, err := sim.RunBaseline(app, arch)
		if err != nil {
			t.Fatal(err)
		}
		out["base/"+dist.String()] = base
		pb, err := sim.RunPBSW(app, 64, arch)
		if err != nil {
			t.Fatal(err)
		}
		out["pbsw/"+dist.String()] = pb
		cob, err := sim.RunCOBRA(app, sim.CobraOpt{}, arch)
		if err != nil {
			t.Fatal(err)
		}
		out["cobra/"+dist.String()] = cob
	}
	app, _ := simtest.CountApp(1<<13, 30000, 78)
	comm, err := sim.RunCOBRA(app, sim.CobraOpt{Coalesce: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	out["cobra-comm"] = comm
	regroup, err := sim.RunCOBRA(app, sim.CobraOpt{MaxLLCBufs: 16}, arch)
	if err != nil {
		t.Fatal(err)
	}
	out["cobra-regroup"] = regroup
	nopart, err := sim.RunCOBRA(app, sim.CobraOpt{NoPartition: true, SkipAccum: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	out["cobra-nopart"] = nopart
	phi, err := sim.RunPHI(app, 64, arch)
	if err != nil {
		t.Fatal(err)
	}
	out["phi"] = phi
	return out
}

// TestBatchedPipelineMatchesScalar is the whole-simulation analogue of
// the mem/cpu layer differential tests: Metrics — cycles (float64,
// compared exactly), phase deltas, counters, traffic — must not differ
// in any bit between the batched pipeline and the scalar oracle.
func TestBatchedPipelineMatchesScalar(t *testing.T) {
	batched := runAll(t, sim.DefaultArch())
	scalar := runAll(t, sim.DefaultArch().WithScalarRefs())
	if len(batched) != len(scalar) {
		t.Fatalf("scheme sets differ: %d vs %d", len(batched), len(scalar))
	}
	for name, b := range batched {
		s, ok := scalar[name]
		if !ok {
			t.Fatalf("missing scalar run %q", name)
		}
		if !reflect.DeepEqual(b, s) {
			t.Errorf("%s: batched metrics diverge from scalar oracle\nbatched: %+v\nscalar:  %+v", name, b, s)
		}
	}
}

// TestBatchedPipelineMatchesScalarNUCA repeats the check with NUCA hop
// latencies enabled (the one place LLC/DRAM load timing depends on the
// address, exercising the replay's hoisted NUCA math).
func TestBatchedPipelineMatchesScalarNUCA(t *testing.T) {
	arch := sim.DefaultArch()
	arch.Mem.NUCA = mem.DefaultNUCA()
	app, _ := simtest.CountApp(1<<13, 30000, 79)
	for _, scheme := range []string{"base", "pbsw"} {
		var b, s sim.Metrics
		var err1, err2 error
		switch scheme {
		case "base":
			b, err1 = sim.RunBaseline(app, arch)
			s, err2 = sim.RunBaseline(app, arch.WithScalarRefs())
		default:
			b, err1 = sim.RunPBSW(app, 64, arch)
			s, err2 = sim.RunPBSW(app, 64, arch.WithScalarRefs())
		}
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !reflect.DeepEqual(b, s) {
			t.Errorf("%s under NUCA: batched diverges from scalar", scheme)
		}
	}
}
