package sim

// Metrics merge: the explicit reduction from per-core shard metrics to
// one machine-level Metrics (DESIGN §9).
//
// Cycle fields merge by MAX: per-core clocks run concurrently, so the
// machine's wall time is the slowest core — and per-phase cycles are
// per-phase maxima (phases are barrier-separated in the sharded
// runners). Note that merged Cycles is the max of core *totals*, which
// can be less than the sum of the merged phase maxima when different
// cores are slowest in different phases.
//
// Event counters, per-phase memory activity, and DRAM traffic SUM:
// they count machine-wide work. Rates are re-derived from the summed
// raw counts (never averaged): LLCMissRate from summed misses over
// summed accesses, EvictStallFrac from summed stall cycles over summed
// per-core Binning cycles, CBufMissRate weighted by each core's
// binupdate count.

// MergeMetrics folds per-core metrics (core-index order) into one
// machine-level Metrics. A single part is returned unchanged (with
// Cores defaulted to 1), so merging is the identity on single-core
// runs.
func MergeMetrics(parts []Metrics) Metrics {
	if len(parts) == 0 {
		return Metrics{}
	}
	out := parts[0]
	if out.Cores == 0 {
		out.Cores = 1
	}
	if len(parts) == 1 {
		return out
	}
	// Weighted-rate denominators need every part's raw weight; they are
	// not recoverable from a pairwise (rate, rate) fold.
	binCycleSum := out.BinCycles
	cbufWeighted := out.CBufMissRate * float64(out.Ctr.BinUpdates)
	binUpdates := out.Ctr.BinUpdates
	for _, p := range parts[1:] {
		cores := p.Cores
		if cores == 0 {
			cores = 1
		}
		binCycleSum += p.BinCycles
		cbufWeighted += p.CBufMissRate * float64(p.Ctr.BinUpdates)
		binUpdates += p.Ctr.BinUpdates

		out.Cycles = maxf(out.Cycles, p.Cycles)
		out.InitCycles = maxf(out.InitCycles, p.InitCycles)
		out.BinCycles = maxf(out.BinCycles, p.BinCycles)
		out.AccumCycles = maxf(out.AccumCycles, p.AccumCycles)

		out.Ctr = out.Ctr.Add(p.Ctr)
		out.BinCtr = out.BinCtr.Add(p.BinCtr)
		out.AccumCtr = out.AccumCtr.Add(p.AccumCtr)

		out.L1Misses += p.L1Misses
		out.L2Misses += p.L2Misses
		out.LLCMisses += p.LLCMisses
		out.LLCAccesses += p.LLCAccesses
		out.DRAM.ReadLines += p.DRAM.ReadLines
		out.DRAM.WriteLines += p.DRAM.WriteLines
		out.DRAM.PrefetchLines += p.DRAM.PrefetchLines
		out.BinMem = out.BinMem.Sum(p.BinMem)
		out.AccumMem = out.AccumMem.Sum(p.AccumMem)

		if p.NumBins > out.NumBins {
			out.NumBins = p.NumBins
		}
		out.EvictStalls += p.EvictStalls
		out.CtxWasteBytes += p.CtxWasteBytes
		out.CtxSwitches += p.CtxSwitches
		out.Cores += cores
	}
	out.LLCMissRate = 0
	if out.LLCAccesses > 0 {
		out.LLCMissRate = float64(out.LLCMisses) / float64(out.LLCAccesses)
	}
	out.EvictStallFrac = 0
	if binCycleSum > 0 {
		out.EvictStallFrac = out.EvictStalls / binCycleSum
	}
	out.CBufMissRate = 0
	if binUpdates > 0 {
		out.CBufMissRate = cbufWeighted / float64(binUpdates)
	}
	return out
}

// Merge folds m with rest, per MergeMetrics.
func (m Metrics) Merge(rest ...Metrics) Metrics {
	return MergeMetrics(append([]Metrics{m}, rest...))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
