package sim

// Multi-core sharded simulation (DESIGN §9).
//
// An Arch with NumCores > 1 runs every scheme on a gang of per-core
// Machs — each with its own L1/L2, OpBuf pipeline, and private NUCA
// LLC slice, exactly the paper's Table II machine — and merges the
// per-core Metrics with MergeMetrics. The sharding follows the paper's
// parallel PB/COBRA execution model:
//
//   - Init and Binning shard the *input stream* by position: core c
//     streams its contiguous chunk of updates into core-private bins
//     spanning the full key range (the paper duplicates all bins and
//     C-Buffers per thread).
//   - Baseline and Accumulate shard the *key range* by ownership
//     (owner-computes): core c applies every update whose key (or bin)
//     it owns, reading tuples from all source cores' bins in source
//     order. Because chunk order equals input order, each key sees its
//     updates in exactly the single-core sequence, so the shared
//     functional arrays are bitwise identical to a single-core run —
//     and writes from different cores land on disjoint slice elements,
//     so the fan-out is race-free.
//
// Determinism contract: per-core simulations are fully independent
// within a phase (no shared machine state), phases are separated by
// barriers (one runShards call each, giving cross-core bin handoff a
// happens-before edge), and per-core results are folded in core-index
// order — the same discipline as exp.RunCells. The goroutine schedule
// can therefore never change a single byte of the output.

import (
	"fmt"
	"runtime/debug"
	"sync"

	"cobra/internal/core"
	"cobra/internal/phi"
)

// shardRange returns the half-open item range [lo, hi) that core c of
// n owns in an n-way shard of total items: lo = ceil(c·total/n).
// Consistent with shardOwner: shardOwner(k) == c iff lo <= k < hi.
func shardRange(c, n, total int) (lo, hi int) {
	return (c*total + n - 1) / n, ((c+1)*total + n - 1) / n
}

// shardOwner returns the core owning item k under shardRange's split.
func shardOwner(k, n, total int) int {
	return k * n / total
}

// gang is one multi-core run: n per-core machines in allocation
// lockstep plus per-core views of one shared functional applier.
type gang struct {
	n     int
	machs []*Mach
	apps  []Applier // apps[0] is the primary (NewApplier) instance
}

// newGang builds the per-core machines and applier views. The applier
// allocates its regions on core 0; the other machines' allocators are
// then synced so every later gang allocation lands at the same base on
// every core (each core addresses an identical layout through its own
// private hierarchy).
func newGang(app *App, arch Arch) (*gang, error) {
	n := arch.Cores()
	g := &gang{n: n, machs: make([]*Mach, n), apps: make([]Applier, n)}
	for c := range g.machs {
		g.machs[c] = NewMach(arch)
	}
	primary := app.NewApplier(g.machs[0])
	sh, ok := primary.(ShardApplier)
	if !ok {
		return nil, fmt.Errorf("sim: app %s applier (%T) does not support multi-core sharding", app.Name, primary)
	}
	g.apps[0] = primary
	for c := 1; c < n; c++ {
		g.machs[c].next = g.machs[0].next
		g.apps[c] = sh.Shard(g.machs[c])
	}
	return g, nil
}

// alloc reserves the same region on every core's machine (lockstep).
func (g *gang) alloc(bytes uint64) Region {
	r := g.machs[0].Alloc(bytes)
	for _, m := range g.machs[1:] {
		m.Alloc(bytes)
	}
	return r
}

// forEachChunk replays core c's contiguous chunk of the update stream,
// passing the global stream position alongside each update.
func (g *gang) forEachChunk(app *App, c int, fn func(i int, key uint32, val uint64, newGroup bool)) {
	lo, hi := shardRange(c, g.n, app.NumUpdates)
	i := 0
	app.ForEach(func(key uint32, val uint64, newGroup bool) {
		if i >= lo && i < hi {
			fn(i, key, val, newGroup)
		}
		i++
	})
}

// runShards runs f(c) for every core on its own goroutine and joins
// deterministically: every shard finishes (or panics, captured as a
// per-core error) before runShards returns, and the lowest core index
// with an error wins — the exp.RunCells discipline. Each call is one
// phase barrier.
func runShards(n int, f func(c int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[c] = fmt.Errorf("sim: core %d panicked: %v\n%s", c, r, debug.Stack())
				}
			}()
			errs[c] = f(c)
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// srcPrefixes computes, for each source core's bins, the cumulative
// tuple position of each bin's first tuple inside that source's bin
// region (prefix[s][b], with prefix[s][len] = the source's total).
func srcPrefixes(perSrc [][][]core.Tuple) [][]int {
	prefix := make([][]int, len(perSrc))
	for s, bins := range perSrc {
		p := make([]int, len(bins)+1)
		for b, seg := range bins {
			p[b+1] = p[b] + len(seg)
		}
		prefix[s] = p
	}
	return prefix
}

// runAccumulateMC replays the owned bin range [binLo, binHi) on one
// core: for each owned bin, every source core's segment is read
// sequentially from that source's bin region (the per-thread bin
// arrays of parallel PB) and applied in source order — which is input
// order, preserving per-key update sequence exactly.
func runAccumulateMC(mach *Mach, app *App, applier Applier, perSrc [][][]core.Tuple, srcRegions []Region, prefix [][]int, binLo, binHi int) {
	tb := uint64(app.TupleBytes)
	for b := binLo; b < binHi; b++ {
		for s := range perSrc {
			seg := perSrc[s][b]
			pos := prefix[s][b]
			// Per-(bin, source) prologue: offsets lookup + loop setup,
			// mirroring the single-core per-bin prologue.
			mach.B.ALU(6)
			mach.B.Load(srcRegions[s].Addr(uint64(pos) * tb))
			mach.B.Branch(pcBinLoop, len(seg) != 0)
			for _, t := range seg {
				mach.B.Load(srcRegions[s].Addr(uint64(pos) * tb))
				mach.B.Branch(pcBinLoop, true)
				mach.B.ALU(1 + app.ApplyALU)
				applier.Apply(t.Key, t.Val)
				pos++
			}
		}
	}
	mach.B.Flush()
	mach.CPU.DrainMem()
}

// runBaselineMC is the sharded Baseline: owner-computes over the key
// range. Core c applies only the updates whose key it owns, streaming
// them from a dense core-local input queue (the pre-partitioned update
// queues of a parallel baseline).
func runBaselineMC(app *App, arch Arch) (Metrics, error) {
	g, err := newGang(app, arch)
	if err != nil {
		return Metrics{}, err
	}
	ro := beginRunObs(SchemeBaseline, app)
	defer ro.end()
	ro.cores(g.n)
	input := g.alloc(uint64(app.NumUpdates) * uint64(app.StreamBytes))
	mets := make([]Metrics, g.n)
	err = runShards(g.n, func(c int) error {
		mach, applier := g.machs[c], g.apps[c]
		t := ro.corePhase(c, "accumulate.wall")
		defer t.Stop()
		j := 0
		app.ForEach(func(key uint32, val uint64, newGroup bool) {
			if shardOwner(int(key), g.n, app.NumKeys) != c {
				return
			}
			mach.B.Load(input.Addr(uint64(j) * uint64(app.StreamBytes)))
			mach.B.Branch(pcInnerLoop, !newGroup)
			mach.B.ALU(1 + app.ApplyALU)
			applier.Apply(key, val)
			j++
		})
		mach.B.Flush()
		mach.CPU.DrainMem()
		met := Metrics{App: app.Name, Input: app.InputName, Scheme: SchemeBaseline}
		met.finish(mach)
		met.AccumCycles = met.Cycles
		met.AccumMem = memSnap(mach)
		mets[c] = met
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}
	return MergeMetrics(mets), nil
}

// planPBMC is planPB for a gang: the per-core private PB structures
// (C-Buffers, counters, cursors) share one layout, and each source
// core gets its own bin region sized to its stream chunk — tuples from
// different sources never alias a cache line.
func planPBMC(g *gang, app *App, numBins int) (pbLayout, []Region) {
	if numBins < 1 {
		numBins = 1
	}
	if numBins > app.NumKeys {
		numBins = app.NumKeys
	}
	shift := uint(0)
	for (uint64(app.NumKeys)+(1<<shift)-1)>>shift > uint64(numBins) {
		shift++
	}
	bins := int((uint64(app.NumKeys) + (1 << shift) - 1) >> shift)
	lay := pbLayout{
		numBins:  bins,
		shift:    shift,
		cbuf:     g.alloc(uint64(bins) * 64),
		cnt:      g.alloc(uint64(bins) * 4),
		binPos:   g.alloc(uint64(bins) * 4),
		tuplesPL: 64 / app.TupleBytes,
	}
	src := make([]Region, g.n)
	for s := range src {
		lo, hi := shardRange(s, g.n, app.NumUpdates)
		src[s] = g.alloc(uint64(hi-lo) * uint64(app.TupleBytes))
	}
	return lay, src
}

// runPBSWMC is the sharded PB-SW: Init and Binning stream per-core
// chunks into core-private bins; Accumulate owner-computes over the
// bin range, replaying every source's segment per owned bin.
func runPBSWMC(app *App, numBins int, arch Arch) (Metrics, error) {
	g, err := newGang(app, arch)
	if err != nil {
		return Metrics{}, err
	}
	ro := beginRunObs(SchemePBSW, app)
	defer ro.end()
	ro.cores(g.n)
	input := g.alloc(uint64(app.NumUpdates) * uint64(app.StreamBytes))
	lay, srcRegions := planPBMC(g, app, numBins)
	mets := make([]Metrics, g.n)
	for c := range mets {
		mets[c] = Metrics{App: app.Name, Input: app.InputName, Scheme: SchemePBSW, NumBins: lay.numBins}
	}

	// ---- Init: per-core chunk counts + private prefix sum ----
	err = runShards(g.n, func(c int) error {
		mach := g.machs[c]
		t := ro.corePhase(c, "init.wall")
		defer t.Stop()
		g.forEachChunk(app, c, func(i int, key uint32, val uint64, newGroup bool) {
			mach.B.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
			mach.B.Branch(pcInnerLoop, !newGroup)
			mach.B.ALU(2)
			addr := lay.cnt.Addr(uint64(key>>lay.shift) * 4)
			mach.B.Load(addr)
			mach.B.Store(addr)
		})
		for b := 0; b < lay.numBins; b++ {
			mach.B.Load(lay.cnt.Addr(uint64(b) * 4))
			mach.B.ALU(2)
			mach.B.Store(lay.cnt.Addr(uint64(b) * 4))
		}
		mach.B.Flush()
		mach.CPU.DrainMem()
		mets[c].InitCycles = mach.CPU.Cycles()
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}

	// ---- Binning: per-core chunks into private bins ----
	perSrc := make([][][]core.Tuple, g.n)
	scratches := make([]*binScratch, g.n)
	defer func() {
		for _, s := range scratches {
			if s != nil {
				putBinScratch(s)
			}
		}
	}()
	err = runShards(g.n, func(c int) error {
		mach := g.machs[c]
		t := ro.corePhase(c, "binning.wall")
		defer t.Stop()
		binStartCyc := mach.CPU.Cycles()
		binStartCtr := mach.CPU.Ctr
		binStartMem := memSnap(mach)
		scratch := getBinScratch(lay.numBins)
		scratches[c] = scratch
		bins, fill, binPos := scratch.bins, scratch.fill, scratch.binPos
		g.forEachChunk(app, c, func(i int, key uint32, val uint64, newGroup bool) {
			mach.B.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
			mach.B.Branch(pcInnerLoop, !newGroup)
			b := int(key >> lay.shift)
			mach.B.ALU(2)
			cntAddr := lay.cnt.Addr(uint64(b) * 4)
			mach.B.Load(cntAddr)
			mach.B.Store(lay.cbuf.Addr(uint64(b)*64 + uint64(fill[b])*uint64(app.TupleBytes)))
			mach.B.ALU(1)
			mach.B.Store(cntAddr)
			fill[b]++
			full := fill[b] == lay.tuplesPL
			mach.B.Branch(pcCBufFull, !full)
			if full {
				posAddr := lay.binPos.Addr(uint64(b) * 4)
				mach.B.Load(posAddr)
				for k := 0; k < lay.tuplesPL; k++ {
					off := uint64(binPos[b]+k) * uint64(app.TupleBytes)
					mach.B.StoreNT(srcRegions[c].Addr(off))
					mach.B.ALU(1)
				}
				binPos[b] += lay.tuplesPL
				mach.B.ALU(1)
				mach.B.Store(posAddr)
				fill[b] = 0
			}
			bins[b] = append(bins[b], core.Tuple{Key: key, Val: val})
		})
		for b := 0; b < lay.numBins; b++ {
			mach.B.Load(lay.cnt.Addr(uint64(b) * 4))
			mach.B.Branch(pcCBufFull, fill[b] == 0)
			for k := 0; k < fill[b]; k++ {
				off := uint64(binPos[b]+k) * uint64(app.TupleBytes)
				mach.B.StoreNT(srcRegions[c].Addr(off))
				mach.B.ALU(1)
			}
			binPos[b] += fill[b]
			fill[b] = 0
		}
		mach.B.Flush()
		mach.CPU.DrainMem()
		mets[c].BinCycles = mach.CPU.Cycles() - binStartCyc
		mets[c].BinCtr = mach.CPU.Ctr.Sub(binStartCtr)
		mets[c].BinMem = memSnap(mach).sub(binStartMem)
		perSrc[c] = bins
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}

	// ---- Accumulate: owner-computes over the bin range ----
	prefix := srcPrefixes(perSrc)
	err = runShards(g.n, func(c int) error {
		mach, applier := g.machs[c], g.apps[c]
		t := ro.corePhase(c, "accumulate.wall")
		defer t.Stop()
		accStartCyc := mach.CPU.Cycles()
		accStartCtr := mach.CPU.Ctr
		accStartMem := memSnap(mach)
		binLo, binHi := shardRange(c, g.n, lay.numBins)
		runAccumulateMC(mach, app, applier, perSrc, srcRegions, prefix, binLo, binHi)
		mets[c].AccumCycles = mach.CPU.Cycles() - accStartCyc
		mets[c].AccumCtr = mach.CPU.Ctr.Sub(accStartCtr)
		mets[c].AccumMem = memSnap(mach).sub(accStartMem)
		mets[c].finish(g.machs[c])
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}
	return MergeMetrics(mets), nil
}

// runCOBRAMC is the sharded COBRA: each core owns a full hardware
// C-Buffer hierarchy (the paper duplicates C-Buffers per core and
// assigns each core's LLC C-Buffers to its own NUCA banks), bins its
// stream chunk through binupdate instructions, then owner-computes the
// Accumulate over every core's hardware-materialized bins.
func runCOBRAMC(app *App, opt CobraOpt, arch Arch) (Metrics, error) {
	cfg := core.DefaultConfig(app.TupleBytes)
	cfg.Coalesce = opt.Coalesce
	cfg.CtxSwitchQuantum = opt.CtxSwitchQuantum
	if opt.EvictBufL1L2 > 0 {
		cfg.EvictBufL1L2 = opt.EvictBufL1L2
	}
	if opt.ReserveL1 > 0 {
		cfg.ReserveL1 = opt.ReserveL1
	}
	if opt.ReserveL2 > 0 {
		cfg.ReserveL2 = opt.ReserveL2
	}
	if opt.ReserveLLC > 0 {
		cfg.ReserveLLC = opt.ReserveLLC
	}
	cfg.NoPartition = opt.NoPartition
	if opt.Coalesce {
		if !app.Commutative || app.Reduce == nil {
			return Metrics{}, fmt.Errorf("sim: COBRA-COMM is inapplicable to %s (§III-B: updates must coalesce losslessly)", app.Name)
		}
		cfg.CoalesceFn = app.Reduce
	}
	g, err := newGang(app, arch)
	if err != nil {
		return Metrics{}, err
	}
	input := g.alloc(uint64(app.NumUpdates) * uint64(app.StreamBytes))
	machines := make([]*core.Machine, g.n)
	for c := range machines {
		machines[c] = core.NewMachine(g.machs[c].CPU, cfg)
		if err := machines[c].BinInit(uint64(app.NumKeys)); err != nil {
			return Metrics{}, err
		}
	}
	scheme := SchemeCOBRA
	if opt.Coalesce {
		scheme = SchemeComm
	}
	ro := beginRunObs(scheme, app)
	defer ro.end()
	ro.cores(g.n)
	numBins := machines[0].NumBins()
	shiftLLC := machines[0].BinShiftLLC()
	cntRegion := g.alloc(uint64(numBins) * 4)
	mets := make([]Metrics, g.n)
	for c := range mets {
		mets[c] = Metrics{App: app.Name, Input: app.InputName, Scheme: scheme, NumBins: numBins}
	}

	// ---- Init: per-core chunk counts (charged to COBRA too) ----
	err = runShards(g.n, func(c int) error {
		mach := g.machs[c]
		t := ro.corePhase(c, "init.wall")
		defer t.Stop()
		g.forEachChunk(app, c, func(i int, key uint32, val uint64, newGroup bool) {
			mach.B.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
			mach.B.Branch(pcInnerLoop, !newGroup)
			mach.B.ALU(2)
			addr := cntRegion.Addr(uint64(key>>shiftLLC) * 4)
			mach.B.Load(addr)
			mach.B.Store(addr)
		})
		for b := 0; b < numBins; b++ {
			mach.B.Load(cntRegion.Addr(uint64(b) * 4))
			mach.B.ALU(2)
			mach.B.Store(cntRegion.Addr(uint64(b) * 4))
		}
		mach.B.Flush()
		mach.CPU.DrainMem()
		mets[c].InitCycles = mach.CPU.Cycles()
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}

	// ---- Binning: one binupdate per tuple, per-core C-Buffers ----
	// Scalar CPU path per core (the eviction-FIFO model reads the live
	// per-core clock; DESIGN §7) — cores stay independent because each
	// Machine is bound to its own cpu.Core.
	err = runShards(g.n, func(c int) error {
		mach, m := g.machs[c], machines[c]
		t := ro.corePhase(c, "binning.wall")
		defer t.Stop()
		binStartCyc := mach.CPU.Cycles()
		binStartCtr := mach.CPU.Ctr
		binStartMem := memSnap(mach)
		g.forEachChunk(app, c, func(i int, key uint32, val uint64, newGroup bool) {
			mach.CPU.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
			mach.CPU.Branch(pcInnerLoop, !newGroup)
			m.BinUpdate(key, val)
		})
		m.BinFlush()
		met := &mets[c]
		met.BinCycles = mach.CPU.Cycles() - binStartCyc
		met.BinCtr = mach.CPU.Ctr.Sub(binStartCtr)
		met.BinMem = memSnap(mach).sub(binStartMem)
		met.EvictStalls, _ = m.EvictionStalls()
		if met.BinCycles > 0 {
			met.EvictStallFrac = met.EvictStalls / met.BinCycles
		}
		met.CtxWasteBytes = m.St.CtxWasteBytes
		met.CtxSwitches = m.St.CtxSwitches
		met.CBufMissRate = m.St.CBufMissRate()
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}

	if opt.SkipAccum {
		for c := range mets {
			mets[c].finish(g.machs[c])
		}
		return MergeMetrics(mets), nil
	}

	// ---- Accumulate: owner-computes over every core's hardware bins ----
	perSrc := make([][][]core.Tuple, g.n)
	for s := range perSrc {
		hwBins := machines[s].Bins
		if opt.MaxLLCBufs > 0 && opt.MaxLLCBufs < len(hwBins) {
			hwBins = regroupBins(hwBins, opt.MaxLLCBufs)
		}
		perSrc[s] = hwBins
	}
	accBins := len(perSrc[0])
	prefix := srcPrefixes(perSrc)
	srcRegions := make([]Region, g.n)
	for s := range srcRegions {
		srcRegions[s] = g.alloc(uint64(prefix[s][accBins]) * uint64(app.TupleBytes))
	}
	err = runShards(g.n, func(c int) error {
		mach, applier := g.machs[c], g.apps[c]
		t := ro.corePhase(c, "accumulate.wall")
		defer t.Stop()
		accStartCyc := mach.CPU.Cycles()
		accStartCtr := mach.CPU.Ctr
		accStartMem := memSnap(mach)
		binLo, binHi := shardRange(c, g.n, accBins)
		runAccumulateMC(mach, app, applier, perSrc, srcRegions, prefix, binLo, binHi)
		met := &mets[c]
		met.AccumCycles = mach.CPU.Cycles() - accStartCyc
		met.AccumCtr = mach.CPU.Ctr.Sub(accStartCtr)
		met.AccumMem = memSnap(mach).sub(accStartMem)
		met.finish(mach)
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}
	return MergeMetrics(mets), nil
}

// runPHIMC is the sharded PHI: one idealized coalescing unit per core
// over its stream chunk (partial residues per core — cross-core
// updates to one key coalesce only at Accumulate, which is exact for
// the integer monoids PHI admits), then owner-computes Accumulate over
// every core's residue bins.
func runPHIMC(app *App, numBins int, arch Arch) (Metrics, error) {
	g, err := newGang(app, arch)
	if err != nil {
		return Metrics{}, err
	}
	ro := beginRunObs(SchemePHI, app)
	defer ro.end()
	ro.cores(g.n)
	input := g.alloc(uint64(app.NumUpdates) * uint64(app.StreamBytes))
	phiCfg := phi.DefaultConfig(app.TupleBytes, numBins)
	phiCfg.Reduce = app.Reduce
	models := make([]*phi.Model, g.n)
	for c := range models {
		models[c] = phi.New(phiCfg, uint64(app.NumKeys))
	}
	mets := make([]Metrics, g.n)
	for c := range mets {
		mets[c] = Metrics{App: app.Name, Input: app.InputName, Scheme: SchemePHI, NumBins: models[0].NumBins()}
	}

	// ---- Binning: per-core idealized coalescing over the chunk ----
	err = runShards(g.n, func(c int) error {
		mach, model := g.machs[c], models[c]
		t := ro.corePhase(c, "binning.wall")
		defer t.Stop()
		binStart := mach.CPU.Cycles()
		binStartMem := memSnap(mach)
		g.forEachChunk(app, c, func(i int, key uint32, val uint64, newGroup bool) {
			mach.B.Load(input.Addr(uint64(i) * uint64(app.StreamBytes)))
			mach.B.Branch(pcInnerLoop, !newGroup)
			mach.B.BinUpdate()
			model.Update(key, val)
		})
		mach.B.Flush()
		model.Flush()
		mach.H.WriteLineDirect((model.St.MemBytes + 63) / 64)
		mach.CPU.DrainMem()
		mets[c].BinCycles = mach.CPU.Cycles() - binStart
		mets[c].BinMem = memSnap(mach).sub(binStartMem)
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}

	// ---- Accumulate: owner-computes over every core's residues ----
	perSrc := make([][][]core.Tuple, g.n)
	for s := range perSrc {
		perSrc[s] = models[s].Bins
	}
	accBins := len(perSrc[0])
	prefix := srcPrefixes(perSrc)
	srcRegions := make([]Region, g.n)
	for s := range srcRegions {
		srcRegions[s] = g.alloc(uint64(prefix[s][accBins]) * uint64(app.TupleBytes))
	}
	err = runShards(g.n, func(c int) error {
		mach, applier := g.machs[c], g.apps[c]
		t := ro.corePhase(c, "accumulate.wall")
		defer t.Stop()
		accStart := mach.CPU.Cycles()
		accStartCtr := mach.CPU.Ctr
		accStartMem := memSnap(mach)
		binLo, binHi := shardRange(c, g.n, accBins)
		runAccumulateMC(mach, app, applier, perSrc, srcRegions, prefix, binLo, binHi)
		mets[c].AccumCycles = mach.CPU.Cycles() - accStart
		mets[c].AccumCtr = mach.CPU.Ctr.Sub(accStartCtr)
		mets[c].AccumMem = memSnap(mach).sub(accStartMem)
		mets[c].finish(mach)
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}
	return MergeMetrics(mets), nil
}
