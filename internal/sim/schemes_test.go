package sim_test

// Functional and metric tests of the execution schemes, built on the
// shared workload builders in internal/simtest (external test package:
// simtest imports sim, so these can't live in package sim).

import (
	"math"
	"testing"

	"cobra/internal/sim"
	"cobra/internal/simtest"
)

func TestValidateRejectsBadApps(t *testing.T) {
	app, _ := simtest.CountApp(10, 10, 1)
	app.TupleBytes = 7
	if app.Validate() == nil {
		t.Fatal("bad tuple size accepted")
	}
	app.TupleBytes = 4
	app.NumUpdates = 0
	if app.Validate() == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestBaselineFunctionalAndMetrics(t *testing.T) {
	app, counts := simtest.CountApp(1<<14, 100000, 2)
	m, err := sim.RunBaseline(app, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	simtest.CheckCounts(t, "baseline", *counts, simtest.RefCounts(app))
	if m.Cycles <= 0 || m.Ctr.Instructions == 0 || m.Ctr.Loads == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	if m.Scheme != sim.SchemeBaseline {
		t.Fatal("wrong scheme tag")
	}
}

func TestPBSWFunctionalAndPhases(t *testing.T) {
	app, counts := simtest.CountApp(1<<14, 100000, 3)
	m, err := sim.RunPBSW(app, 64, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	simtest.CheckCounts(t, "pbsw", *counts, simtest.RefCounts(app))
	if m.NumBins < 32 || m.NumBins > 64 {
		t.Fatalf("NumBins = %d", m.NumBins)
	}
	total := m.InitCycles + m.BinCycles + m.AccumCycles
	if math.Abs(total-m.Cycles)/m.Cycles > 0.01 {
		t.Fatalf("phases (%.0f) do not sum to total (%.0f)", total, m.Cycles)
	}
	if m.BinCtr.Instructions == 0 || m.AccumCtr.Instructions == 0 {
		t.Fatal("phase counters empty")
	}
	// PB-SW executes far more instructions than baseline (paper: up to 4x).
	base, _ := sim.RunBaseline(app, sim.DefaultArch())
	if m.Ctr.Instructions < 2*base.Ctr.Instructions {
		t.Fatalf("PB-SW instructions (%d) not well above baseline (%d)", m.Ctr.Instructions, base.Ctr.Instructions)
	}
}

func TestCOBRAFunctionalAndFaster(t *testing.T) {
	// Big enough that the counter array exceeds the LLC slice: 1M keys x
	// 4B = 4MB > 2MB.
	app, counts := simtest.CountApp(1<<20, 400000, 4)
	arch := sim.DefaultArch()
	base, err := sim.RunBaseline(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint32(nil), simtest.RefCounts(app)...)
	pbsw, err := sim.RunPBSW(app, 512, arch)
	if err != nil {
		t.Fatal(err)
	}
	simtest.CheckCounts(t, "pbsw", *counts, want)
	cob, err := sim.RunCOBRA(app, sim.CobraOpt{}, arch)
	if err != nil {
		t.Fatal(err)
	}
	simtest.CheckCounts(t, "cobra", *counts, want)
	if !(cob.Cycles < pbsw.Cycles && pbsw.Cycles < base.Cycles) {
		t.Fatalf("expected COBRA < PB-SW < Baseline cycles, got %.3g / %.3g / %.3g",
			cob.Cycles, pbsw.Cycles, base.Cycles)
	}
	// COBRA executes fewer instructions than PB-SW (Figure 12).
	if cob.Ctr.Instructions >= pbsw.Ctr.Instructions {
		t.Fatal("COBRA did not reduce instructions")
	}
	// COBRA's binning branch misses are near zero (Figure 12 bottom).
	if r := cob.BinCtr.BranchMissRate(); r > 0.02 {
		t.Fatalf("COBRA binning branch miss rate %.3f, want ~0", r)
	}
	if cob.NumBins <= pbsw.NumBins {
		t.Fatalf("COBRA bins (%d) should exceed PB-SW's compromise (%d)", cob.NumBins, pbsw.NumBins)
	}
}

func TestCOBRACommCoalesces(t *testing.T) {
	app, counts := simtest.CountApp(1<<16, 300000, 5)
	arch := sim.DefaultArch()
	plain, err := sim.RunCOBRA(app, sim.CobraOpt{}, arch)
	if err != nil {
		t.Fatal(err)
	}
	simtest.CheckCounts(t, "cobra", *counts, simtest.RefCounts(app))
	comm, err := sim.RunCOBRA(app, sim.CobraOpt{Coalesce: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	// Coalesced values must still sum correctly.
	simtest.CheckCounts(t, "cobra-comm", *counts, simtest.RefCounts(app))
	if comm.BinMem.DRAMWriteLines >= plain.BinMem.DRAMWriteLines {
		t.Fatalf("COBRA-COMM writes (%d lines) not below COBRA (%d)",
			comm.BinMem.DRAMWriteLines, plain.BinMem.DRAMWriteLines)
	}
}

func TestCommRejectsNonCommutative(t *testing.T) {
	app, _ := simtest.CountApp(1<<12, 1000, 6)
	app.Commutative = false
	if _, err := sim.RunCOBRA(app, sim.CobraOpt{Coalesce: true}, sim.DefaultArch()); err == nil {
		t.Fatal("COBRA-COMM accepted a non-commutative app")
	}
	if _, err := sim.RunPHI(app, 64, sim.DefaultArch()); err == nil {
		t.Fatal("PHI accepted a non-commutative app")
	}
	app.Commutative = true
	app.Reduce = nil
	if _, err := sim.RunPHI(app, 64, sim.DefaultArch()); err == nil {
		t.Fatal("PHI accepted an app without a lossless reducer")
	}
}

func TestPHIFunctionalAndTraffic(t *testing.T) {
	app, counts := simtest.CountApp(1<<14, 200000, 7)
	m, err := sim.RunPHI(app, 64, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	simtest.CheckCounts(t, "phi", *counts, simtest.RefCounts(app))
	if m.NumBins > 64 {
		t.Fatalf("PHI bins = %d", m.NumBins)
	}
	// 16K keys over a 200K-update stream coalesce massively on chip:
	// PHI's bin write traffic must be far below one tuple per update.
	if m.BinMem.DRAMWriteLines*16 > uint64(app.NumUpdates) {
		t.Fatalf("PHI wrote %d lines; expected heavy coalescing", m.BinMem.DRAMWriteLines)
	}
}

func TestIdealPBComposition(t *testing.T) {
	app, _ := simtest.CountApp(1<<16, 200000, 8)
	arch := sim.DefaultArch()
	small, err := sim.RunPBSW(app, 16, arch)
	if err != nil {
		t.Fatal(err)
	}
	large, err := sim.RunPBSW(app, 4096, arch)
	if err != nil {
		t.Fatal(err)
	}
	ideal := sim.IdealPB(small, large)
	if ideal.Scheme != sim.SchemePBIdeal {
		t.Fatal("wrong scheme")
	}
	want := small.InitCycles + small.BinCycles + large.AccumCycles
	if ideal.Cycles != want {
		t.Fatalf("ideal cycles %.0f, want %.0f", ideal.Cycles, want)
	}
	if ideal.Cycles > small.Cycles || ideal.Cycles > large.Cycles {
		t.Fatal("ideal must be at least as fast as both parents")
	}
}

func TestEvictBufSizeMonotone(t *testing.T) {
	app, _ := simtest.CountApp(1<<18, 300000, 9)
	arch := sim.DefaultArch()
	small, err := sim.RunCOBRA(app, sim.CobraOpt{EvictBufL1L2: 1}, arch)
	if err != nil {
		t.Fatal(err)
	}
	big, err := sim.RunCOBRA(app, sim.CobraOpt{EvictBufL1L2: 64}, arch)
	if err != nil {
		t.Fatal(err)
	}
	if small.EvictStalls < big.EvictStalls {
		t.Fatalf("1-entry buffer stalled less (%.0f) than 64-entry (%.0f)",
			small.EvictStalls, big.EvictStalls)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	// Identical app + arch must reproduce cycle counts bit-for-bit; the
	// figures' reproducibility rests on this.
	run := func() (float64, float64, float64) {
		app, _ := simtest.CountApp(1<<14, 50000, 21)
		arch := sim.DefaultArch()
		b, _ := sim.RunBaseline(app, arch)
		p, _ := sim.RunPBSW(app, 64, arch)
		c, _ := sim.RunCOBRA(app, sim.CobraOpt{}, arch)
		return b.Cycles, p.Cycles, c.Cycles
	}
	b1, p1, c1 := run()
	b2, p2, c2 := run()
	if b1 != b2 || p1 != p2 || c1 != c2 {
		t.Fatalf("nondeterministic simulation: (%v,%v,%v) vs (%v,%v,%v)", b1, p1, c1, b2, p2, c2)
	}
}

func TestCtxSwitchQuantumMonotone(t *testing.T) {
	app, _ := simtest.CountApp(1<<16, 200000, 22)
	arch := sim.DefaultArch()
	freq, err := sim.RunCOBRA(app, sim.CobraOpt{CtxSwitchQuantum: 10000, SkipAccum: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	rare, err := sim.RunCOBRA(app, sim.CobraOpt{CtxSwitchQuantum: 10e6, SkipAccum: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	if freq.CtxSwitches <= rare.CtxSwitches {
		t.Fatalf("switches: freq=%d rare=%d", freq.CtxSwitches, rare.CtxSwitches)
	}
	if freq.CtxWasteBytes < rare.CtxWasteBytes {
		t.Fatalf("waste: freq=%d rare=%d", freq.CtxWasteBytes, rare.CtxWasteBytes)
	}
}

func TestSkipAccumStopsEarly(t *testing.T) {
	app, _ := simtest.CountApp(1<<14, 50000, 23)
	arch := sim.DefaultArch()
	full, err := sim.RunCOBRA(app, sim.CobraOpt{}, arch)
	if err != nil {
		t.Fatal(err)
	}
	binOnly, err := sim.RunCOBRA(app, sim.CobraOpt{SkipAccum: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	if binOnly.AccumCycles != 0 || binOnly.Cycles >= full.Cycles {
		t.Fatalf("SkipAccum did not skip: %+v", binOnly)
	}
	if binOnly.BinCycles != full.BinCycles {
		t.Fatalf("binning cycles differ with/without accumulate: %v vs %v", binOnly.BinCycles, full.BinCycles)
	}
}

func TestMaxLLCBufsRegroup(t *testing.T) {
	app, _ := simtest.CountApp(1<<16, 100000, 24)
	m, err := sim.RunCOBRA(app, sim.CobraOpt{MaxLLCBufs: 64}, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles <= 0 {
		t.Fatal("capped run produced no cycles")
	}
}
