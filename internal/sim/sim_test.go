package sim

import (
	"math"
	"testing"

	"cobra/internal/core"
	"cobra/internal/stats"
)

// testApp builds a synthetic irregular-update app: n updates with
// uniformly random keys over numKeys, pure RMW counters.
func testApp(numKeys, n int, seed uint64) (*App, *[]uint32) {
	r := stats.NewRand(seed)
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(r.Intn(numKeys))
	}
	counts := &[]uint32{}
	return &App{
		Name:        "test",
		InputName:   "synthetic",
		Commutative: true,
		TupleBytes:  4,
		NumKeys:     numKeys,
		NumUpdates:  n,
		StreamBytes: 4,
		ApplyALU:    1,
		Reduce:      func(a, b uint64) uint64 { return a + b },
		ForEach: func(emit func(uint32, uint64, bool)) {
			for _, k := range keys {
				emit(k, 1, false)
			}
		},
		NewApplier: func(m *Mach) Applier {
			c := make([]uint32, numKeys)
			*counts = c
			return &countApplier{m: m, r: m.Alloc(uint64(numKeys) * 4), c: c}
		},
	}, counts
}

type countApplier struct {
	m *Mach
	r Region
	c []uint32
}

func (a *countApplier) Apply(key uint32, val uint64) {
	addr := a.r.Addr(uint64(key) * 4)
	a.m.CPU.Load(addr)
	a.m.CPU.Store(addr)
	a.c[key] += uint32(val)
}

func refCounts(app *App) []uint32 {
	ref := make([]uint32, app.NumKeys)
	app.ForEach(func(k uint32, v uint64, _ bool) { ref[k] += uint32(v) })
	return ref
}

func checkCounts(t *testing.T, scheme string, got, want []uint32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: counts[%d] = %d, want %d", scheme, i, got[i], want[i])
		}
	}
}

func TestAllocDisjointPages(t *testing.T) {
	m := NewMach(DefaultArch())
	a := m.Alloc(100)
	b := m.Alloc(100)
	if a.Base%4096 != 0 || b.Base%4096 != 0 {
		t.Fatal("regions not page-aligned")
	}
	if b.Base < a.Base+100 {
		t.Fatal("regions overlap")
	}
}

func TestValidateRejectsBadApps(t *testing.T) {
	app, _ := testApp(10, 10, 1)
	app.TupleBytes = 7
	if app.Validate() == nil {
		t.Fatal("bad tuple size accepted")
	}
	app.TupleBytes = 4
	app.NumUpdates = 0
	if app.Validate() == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestBaselineFunctionalAndMetrics(t *testing.T) {
	app, counts := testApp(1<<14, 100000, 2)
	m, err := RunBaseline(app, DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, "baseline", *counts, refCounts(app))
	if m.Cycles <= 0 || m.Ctr.Instructions == 0 || m.Ctr.Loads == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	if m.Scheme != SchemeBaseline {
		t.Fatal("wrong scheme tag")
	}
}

func TestPBSWFunctionalAndPhases(t *testing.T) {
	app, counts := testApp(1<<14, 100000, 3)
	m, err := RunPBSW(app, 64, DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, "pbsw", *counts, refCounts(app))
	if m.NumBins < 32 || m.NumBins > 64 {
		t.Fatalf("NumBins = %d", m.NumBins)
	}
	total := m.InitCycles + m.BinCycles + m.AccumCycles
	if math.Abs(total-m.Cycles)/m.Cycles > 0.01 {
		t.Fatalf("phases (%.0f) do not sum to total (%.0f)", total, m.Cycles)
	}
	if m.BinCtr.Instructions == 0 || m.AccumCtr.Instructions == 0 {
		t.Fatal("phase counters empty")
	}
	// PB-SW executes far more instructions than baseline (paper: up to 4x).
	base, _ := RunBaseline(app, DefaultArch())
	if m.Ctr.Instructions < 2*base.Ctr.Instructions {
		t.Fatalf("PB-SW instructions (%d) not well above baseline (%d)", m.Ctr.Instructions, base.Ctr.Instructions)
	}
}

func TestCOBRAFunctionalAndFaster(t *testing.T) {
	// Big enough that the counter array exceeds the LLC slice: 1M keys x
	// 4B = 4MB > 2MB.
	app, counts := testApp(1<<20, 400000, 4)
	arch := DefaultArch()
	base, err := RunBaseline(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint32(nil), refCounts(app)...)
	pbsw, err := RunPBSW(app, 512, arch)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, "pbsw", *counts, want)
	cob, err := RunCOBRA(app, CobraOpt{}, arch)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, "cobra", *counts, want)
	if !(cob.Cycles < pbsw.Cycles && pbsw.Cycles < base.Cycles) {
		t.Fatalf("expected COBRA < PB-SW < Baseline cycles, got %.3g / %.3g / %.3g",
			cob.Cycles, pbsw.Cycles, base.Cycles)
	}
	// COBRA executes fewer instructions than PB-SW (Figure 12).
	if cob.Ctr.Instructions >= pbsw.Ctr.Instructions {
		t.Fatal("COBRA did not reduce instructions")
	}
	// COBRA's binning branch misses are near zero (Figure 12 bottom).
	if r := cob.BinCtr.BranchMissRate(); r > 0.02 {
		t.Fatalf("COBRA binning branch miss rate %.3f, want ~0", r)
	}
	if cob.NumBins <= pbsw.NumBins {
		t.Fatalf("COBRA bins (%d) should exceed PB-SW's compromise (%d)", cob.NumBins, pbsw.NumBins)
	}
}

func TestCOBRACommCoalesces(t *testing.T) {
	app, counts := testApp(1<<16, 300000, 5)
	arch := DefaultArch()
	plain, err := RunCOBRA(app, CobraOpt{}, arch)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, "cobra", *counts, refCounts(app))
	comm, err := RunCOBRA(app, CobraOpt{Coalesce: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	// Coalesced values must still sum correctly.
	checkCounts(t, "cobra-comm", *counts, refCounts(app))
	if comm.BinMem.DRAMWriteLines >= plain.BinMem.DRAMWriteLines {
		t.Fatalf("COBRA-COMM writes (%d lines) not below COBRA (%d)",
			comm.BinMem.DRAMWriteLines, plain.BinMem.DRAMWriteLines)
	}
}

func TestCommRejectsNonCommutative(t *testing.T) {
	app, _ := testApp(1<<12, 1000, 6)
	app.Commutative = false
	if _, err := RunCOBRA(app, CobraOpt{Coalesce: true}, DefaultArch()); err == nil {
		t.Fatal("COBRA-COMM accepted a non-commutative app")
	}
	if _, err := RunPHI(app, 64, DefaultArch()); err == nil {
		t.Fatal("PHI accepted a non-commutative app")
	}
	app.Commutative = true
	app.Reduce = nil
	if _, err := RunPHI(app, 64, DefaultArch()); err == nil {
		t.Fatal("PHI accepted an app without a lossless reducer")
	}
}

func TestPHIFunctionalAndTraffic(t *testing.T) {
	app, counts := testApp(1<<14, 200000, 7)
	m, err := RunPHI(app, 64, DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, "phi", *counts, refCounts(app))
	if m.NumBins > 64 {
		t.Fatalf("PHI bins = %d", m.NumBins)
	}
	// 16K keys over a 200K-update stream coalesce massively on chip:
	// PHI's bin write traffic must be far below one tuple per update.
	if m.BinMem.DRAMWriteLines*16 > uint64(app.NumUpdates) {
		t.Fatalf("PHI wrote %d lines; expected heavy coalescing", m.BinMem.DRAMWriteLines)
	}
}

func TestIdealPBComposition(t *testing.T) {
	app, _ := testApp(1<<16, 200000, 8)
	arch := DefaultArch()
	small, err := RunPBSW(app, 16, arch)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunPBSW(app, 4096, arch)
	if err != nil {
		t.Fatal(err)
	}
	ideal := IdealPB(small, large)
	if ideal.Scheme != SchemePBIdeal {
		t.Fatal("wrong scheme")
	}
	want := small.InitCycles + small.BinCycles + large.AccumCycles
	if ideal.Cycles != want {
		t.Fatalf("ideal cycles %.0f, want %.0f", ideal.Cycles, want)
	}
	if ideal.Cycles > small.Cycles || ideal.Cycles > large.Cycles {
		t.Fatal("ideal must be at least as fast as both parents")
	}
}

func TestEvictBufSizeMonotone(t *testing.T) {
	app, _ := testApp(1<<18, 300000, 9)
	arch := DefaultArch()
	small, err := RunCOBRA(app, CobraOpt{EvictBufL1L2: 1}, arch)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunCOBRA(app, CobraOpt{EvictBufL1L2: 64}, arch)
	if err != nil {
		t.Fatal(err)
	}
	if small.EvictStalls < big.EvictStalls {
		t.Fatalf("1-entry buffer stalled less (%.0f) than 64-entry (%.0f)",
			small.EvictStalls, big.EvictStalls)
	}
}

func TestRegroupBins(t *testing.T) {
	bins := make([][]core.Tuple, 10)
	total := 0
	for i := range bins {
		for j := 0; j <= i; j++ {
			bins[i] = append(bins[i], core.Tuple{Key: uint32(i)})
			total++
		}
	}
	out := regroupBins(bins, 3)
	if len(out) > 3 {
		t.Fatalf("regrouped into %d bins, want <= 3", len(out))
	}
	n := 0
	for _, b := range out {
		n += len(b)
	}
	if n != total {
		t.Fatalf("regrouping lost tuples: %d vs %d", n, total)
	}
}

func TestPhaseMemHelpers(t *testing.T) {
	a := PhaseMem{L1Misses: 1, DRAMReadLines: 2, DRAMWriteLines: 3}
	b := PhaseMem{L1Misses: 10, DRAMReadLines: 20, DRAMWriteLines: 30}
	s := a.Sum(b)
	if s.L1Misses != 11 || s.DRAMReadLines != 22 {
		t.Fatalf("Sum = %+v", s)
	}
	if a.DRAMBytes() != (2+3)*64 {
		t.Fatalf("DRAMBytes = %d", a.DRAMBytes())
	}
	if d := b.sub(a); d.L1Misses != 9 {
		t.Fatalf("sub = %+v", d)
	}
}

func TestSpeedupZeroSafe(t *testing.T) {
	var m Metrics
	if m.Speedup(Metrics{Cycles: 100}) != 0 {
		t.Fatal("zero-cycle speedup should be 0")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	// Identical app + arch must reproduce cycle counts bit-for-bit; the
	// figures' reproducibility rests on this.
	run := func() (float64, float64, float64) {
		app, _ := testApp(1<<14, 50000, 21)
		arch := DefaultArch()
		b, _ := RunBaseline(app, arch)
		p, _ := RunPBSW(app, 64, arch)
		c, _ := RunCOBRA(app, CobraOpt{}, arch)
		return b.Cycles, p.Cycles, c.Cycles
	}
	b1, p1, c1 := run()
	b2, p2, c2 := run()
	if b1 != b2 || p1 != p2 || c1 != c2 {
		t.Fatalf("nondeterministic simulation: (%v,%v,%v) vs (%v,%v,%v)", b1, p1, c1, b2, p2, c2)
	}
}

func TestCtxSwitchQuantumMonotone(t *testing.T) {
	app, _ := testApp(1<<16, 200000, 22)
	arch := DefaultArch()
	freq, err := RunCOBRA(app, CobraOpt{CtxSwitchQuantum: 10000, SkipAccum: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	rare, err := RunCOBRA(app, CobraOpt{CtxSwitchQuantum: 10e6, SkipAccum: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	if freq.CtxSwitches <= rare.CtxSwitches {
		t.Fatalf("switches: freq=%d rare=%d", freq.CtxSwitches, rare.CtxSwitches)
	}
	if freq.CtxWasteBytes < rare.CtxWasteBytes {
		t.Fatalf("waste: freq=%d rare=%d", freq.CtxWasteBytes, rare.CtxWasteBytes)
	}
}

func TestSkipAccumStopsEarly(t *testing.T) {
	app, _ := testApp(1<<14, 50000, 23)
	arch := DefaultArch()
	full, err := RunCOBRA(app, CobraOpt{}, arch)
	if err != nil {
		t.Fatal(err)
	}
	binOnly, err := RunCOBRA(app, CobraOpt{SkipAccum: true}, arch)
	if err != nil {
		t.Fatal(err)
	}
	if binOnly.AccumCycles != 0 || binOnly.Cycles >= full.Cycles {
		t.Fatalf("SkipAccum did not skip: %+v", binOnly)
	}
	if binOnly.BinCycles != full.BinCycles {
		t.Fatalf("binning cycles differ with/without accumulate: %v vs %v", binOnly.BinCycles, full.BinCycles)
	}
}

func TestMaxLLCBufsRegroup(t *testing.T) {
	app, _ := testApp(1<<16, 100000, 24)
	m, err := RunCOBRA(app, CobraOpt{MaxLLCBufs: 64}, DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles <= 0 {
		t.Fatal("capped run produced no cycles")
	}
}
