package sim

// Internal tests for unexported machinery. The functional scheme tests
// live in schemes_test.go (package sim_test) on top of the shared
// workload builders in internal/simtest; the cross-scheme differential
// oracle is in internal/simtest.

import (
	"testing"

	"cobra/internal/core"
)

func TestAllocDisjointPages(t *testing.T) {
	m := NewMach(DefaultArch())
	a := m.Alloc(100)
	b := m.Alloc(100)
	if a.Base%4096 != 0 || b.Base%4096 != 0 {
		t.Fatal("regions not page-aligned")
	}
	if b.Base < a.Base+100 {
		t.Fatal("regions overlap")
	}
}

func TestRegroupBins(t *testing.T) {
	bins := make([][]core.Tuple, 10)
	total := 0
	for i := range bins {
		for j := 0; j <= i; j++ {
			bins[i] = append(bins[i], core.Tuple{Key: uint32(i)})
			total++
		}
	}
	out := regroupBins(bins, 3)
	if len(out) > 3 {
		t.Fatalf("regrouped into %d bins, want <= 3", len(out))
	}
	n := 0
	for _, b := range out {
		n += len(b)
	}
	if n != total {
		t.Fatalf("regrouping lost tuples: %d vs %d", n, total)
	}
}

func TestPhaseMemHelpers(t *testing.T) {
	a := PhaseMem{L1Misses: 1, DRAMReadLines: 2, DRAMWriteLines: 3}
	b := PhaseMem{L1Misses: 10, DRAMReadLines: 20, DRAMWriteLines: 30}
	s := a.Sum(b)
	if s.L1Misses != 11 || s.DRAMReadLines != 22 {
		t.Fatalf("Sum = %+v", s)
	}
	if a.DRAMBytes() != (2+3)*64 {
		t.Fatalf("DRAMBytes = %d", a.DRAMBytes())
	}
	if d := b.sub(a); d.L1Misses != 9 {
		t.Fatalf("sub = %+v", d)
	}
}

func TestSpeedupZeroSafe(t *testing.T) {
	var m Metrics
	if m.Speedup(Metrics{Cycles: 100}) != 0 {
		t.Fatal("zero-cycle speedup should be 0")
	}
}

func TestSchemeScopeNames(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeBaseline: "sim.baseline",
		SchemePBSW:     "sim.pbsw",
		SchemePBIdeal:  "sim.pbideal",
		SchemeCOBRA:    "sim.cobra",
		SchemeComm:     "sim.cobracomm",
		SchemePHI:      "sim.phi",
		Scheme("??"):   "sim.other",
	} {
		if got := schemeScope(s); got != want {
			t.Fatalf("schemeScope(%s) = %s, want %s", s, got, want)
		}
	}
}
