package sim

import (
	"sync"

	"cobra/internal/core"
)

// binScratch is the software-PB scratch state of one run: the
// materialized bins plus the C-Buffer fill counters and bin write
// cursors. Runs executed back-to-back on one worker (exp.MapCellsCtx
// cells) churn megabytes of these per cell; pooling them keeps the
// tuple capacity warm across cells. Contents are fully re-initialized
// on checkout, so reuse is invisible to the simulation.
type binScratch struct {
	bins   [][]core.Tuple
	fill   []int
	binPos []int
}

var binScratchPool = sync.Pool{New: func() any { return new(binScratch) }}

// getBinScratch checks out a scratch sized for n bins: counters zeroed,
// bins emptied with their capacities (the expensive part) preserved.
func getBinScratch(n int) *binScratch {
	s := binScratchPool.Get().(*binScratch)
	if cap(s.bins) < n {
		s.bins = make([][]core.Tuple, n)
		s.fill = make([]int, n)
		s.binPos = make([]int, n)
	}
	s.bins = s.bins[:n]
	s.fill = s.fill[:n]
	s.binPos = s.binPos[:n]
	for i := range s.bins {
		s.bins[i] = s.bins[i][:0]
		s.fill[i] = 0
		s.binPos[i] = 0
	}
	return s
}

// putBinScratch returns a scratch to the pool. The caller must be done
// with every slice handed out from it.
func putBinScratch(s *binScratch) { binScratchPool.Put(s) }
