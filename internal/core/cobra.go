// Package core implements the paper's primary contribution: the COBRA
// architecture model (Cache Optimized Binning for RAdix partitioning).
//
// COBRA replaces software PB's single set of cacheline-sized coalescing
// buffers (C-Buffers) with a hierarchy of hardware-managed C-Buffers,
// one set per cache level, each bounded by that level's reserved
// capacity and indexed by a per-level power-of-two bin range (§IV–§V):
//
//   - bininit reserves ways per level and computes per-level bin ranges
//     (BinInit here).
//   - binupdate appends a tuple to an L1 C-Buffer in one instruction
//     (BinUpdate); offset counters in repurposed metadata bits provide
//     append-only line access.
//   - When a C-Buffer fills, its line enters a FIFO eviction buffer;
//     the next level's binning engine drains it at one tuple per cycle,
//     scattering tuples into that level's C-Buffers. The core stalls
//     only when an eviction buffer is full — a discrete-event queue
//     model clocked by core cycles (§V-D, Figure 13a).
//   - A full LLC C-Buffer is written to its in-memory bin at the offset
//     stored in the line's repurposed tag (§V-E); the bins in memory
//     equal the number of LLC C-Buffers.
//   - binflush walks every level evicting partial C-Buffers (BinFlush).
//
// The model is functional as well as timed: the bins it materializes
// are real and are validated against software PB's output.
package core

import (
	"fmt"

	"cobra/internal/cache"
	"cobra/internal/cpu"
	"cobra/internal/mem"
	"cobra/internal/stats"
)

// Tuple is one binned update: a data index and its payload.
type Tuple struct {
	Key uint32
	Val uint64
}

// Config parameterizes the COBRA extensions.
type Config struct {
	// TupleBytes is the size of one (index, value) tuple: 4, 8, or 16
	// in the paper's workloads. Determines tuples per 64 B C-Buffer.
	TupleBytes int
	// Ways reserved for C-Buffers per level. The paper's default (§V-A):
	// all but one way at L1 and LLC, exactly one way at L2 (the stream
	// prefetcher needs the rest).
	ReserveL1, ReserveL2, ReserveLLC int
	// Eviction buffer capacities in lines (§V-D defaults: 32 and 8).
	EvictBufL1L2, EvictBufL2LLC int
	// Coalesce enables COBRA-COMM (§VII-C): commutative updates to the
	// same key merge in LLC C-Buffers instead of appending.
	Coalesce bool
	// CoalesceFn merges val into old when Coalesce is on (default add).
	CoalesceFn func(old, val uint64) uint64
	// CtxSwitchQuantum, when non-zero, evicts all partially filled LLC
	// C-Buffers every quantum cycles, modeling worst-case preemption
	// (§V-E virtualization, Figure 13c).
	CtxSwitchQuantum float64
	// NoPartition disables static cache partitioning (§V-E "Need for
	// Static Cache Partitioning"): C-Buffer lines live in the ordinary
	// cache ways, subject to the replacement policy and pressure from
	// other program data. The machine then tracks the C-Buffer miss
	// rate the paper reports to be <1% (all competing Binning-phase
	// accesses are streaming).
	NoPartition bool
}

// DefaultConfig returns the paper's default COBRA configuration for a
// given tuple size.
func DefaultConfig(tupleBytes int) Config {
	return Config{
		TupleBytes:    tupleBytes,
		ReserveL1:     7,
		ReserveL2:     1,
		ReserveLLC:    15,
		EvictBufL1L2:  32,
		EvictBufL2LLC: 8,
		CoalesceFn:    func(old, val uint64) uint64 { return old + val },
	}
}

// level indices into Machine.lvl.
const (
	lvlL1 = iota
	lvlL2
	lvlLLC
	numLvls
)

// levelState is one cache level's C-Buffer array.
type levelState struct {
	numBufs  int    // C-Buffers at this level (= bins in memory for LLC)
	binShift uint   // key >> binShift = buffer ID (power-of-two bin range)
	waysUsed int    // ways actually occupied by C-Buffers (bininit result)
	baseAddr uint64 // synthetic line addresses when NoPartition is on
	bufs     [][]Tuple
}

// fifo models one FIFO eviction buffer between cache levels with a
// deterministic-service queueing recurrence: entry k completes at
// max(arrival_k, finish_{k-1}) + service. The queue is full when
// `capacity` entries have not yet finished; an arrival then waits.
type fifo struct {
	capacity int
	service  float64   // cycles to drain one line (tuples per line)
	finishes []float64 // ring of last `capacity` finish times
	head     int
	lastFin  float64

	Stalls      float64 // cycles callers waited on a full queue
	LinesServed uint64
}

func newFIFO(capacity int, service float64) *fifo {
	return &fifo{capacity: capacity, service: service, finishes: make([]float64, capacity)}
}

// push enqueues a line arriving at `now`, returning (startOfService,
// stallCycles) — the caller advances its clock by stallCycles.
func (f *fifo) push(now float64) (fin float64, stall float64) {
	oldest := f.finishes[f.head]
	if oldest > now {
		stall = oldest - now
		now = oldest
	}
	start := now
	if f.lastFin > start {
		start = f.lastFin
	}
	fin = start + f.service
	f.finishes[f.head] = fin
	f.head = (f.head + 1) % f.capacity
	f.lastFin = fin
	f.Stalls += stall
	f.LinesServed++
	return fin, stall
}

// Stats aggregates the COBRA machine's activity.
type Stats struct {
	BinUpdates    uint64
	L1Evictions   uint64 // full L1 C-Buffer lines pushed to FIFO1
	L2Evictions   uint64
	LLCEvictions  uint64 // full LLC C-Buffer lines written to memory
	FlushLines    uint64 // partial lines evicted by BinFlush
	PartialWasteB uint64 // DRAM bytes wasted writing partial lines
	MemWriteBytes uint64 // total bin bytes written to DRAM
	StallCycles   float64
	CtxSwitches   uint64
	CtxWasteBytes uint64
	FlushCycles   float64
	InitCycles    float64

	// NoPartition mode only: how often the core's C-Buffer inserts
	// found their line in the L1 (§V-E claims a <1% miss rate).
	CBufAccesses uint64
	CBufMisses   uint64
}

// CBufMissRate returns the unpartitioned C-Buffer L1 miss rate.
func (s Stats) CBufMissRate() float64 {
	if s.CBufAccesses == 0 {
		return 0
	}
	return float64(s.CBufMisses) / float64(s.CBufAccesses)
}

// Machine couples a cpu.Core (and its hierarchy) with COBRA state.
type Machine struct {
	CPU *cpu.Core
	cfg Config

	tuplesPerLine int
	numIndices    uint64

	lvl   [numLvls]levelState
	fifo1 *fifo // L1 -> L2
	fifo2 *fifo // L2 -> LLC

	// Bins materialized in memory (per-key-range), appended on LLC
	// evictions and flush. binOffsets mirrors the repurposed-tag offsets.
	Bins       [][]Tuple
	binOffsets []uint32

	nextCtxSwitch float64

	St Stats

	inited bool
}

// NewMachine builds a COBRA machine around an existing core model.
func NewMachine(c *cpu.Core, cfg Config) *Machine {
	if cfg.TupleBytes <= 0 || 64%cfg.TupleBytes != 0 {
		panic(fmt.Sprintf("core: tuple size %d must divide the 64 B line", cfg.TupleBytes))
	}
	if cfg.CoalesceFn == nil {
		cfg.CoalesceFn = func(old, val uint64) uint64 { return old + val }
	}
	return &Machine{CPU: c, cfg: cfg, tuplesPerLine: 64 / cfg.TupleBytes}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// TuplesPerLine returns tuples per C-Buffer line.
func (m *Machine) TuplesPerLine() int { return m.tuplesPerLine }

// LevelBufs returns the number of C-Buffers at L1, L2, and LLC
// (after BinInit). The LLC count equals the number of in-memory bins.
func (m *Machine) LevelBufs() (l1, l2, llc int) {
	return m.lvl[lvlL1].numBufs, m.lvl[lvlL2].numBufs, m.lvl[lvlLLC].numBufs
}

// NumBins returns the number of in-memory bins (= LLC C-Buffers).
func (m *Machine) NumBins() int { return m.lvl[lvlLLC].numBufs }

// BinInit executes the bininit instruction for every level: reserve the
// configured ways, compute the smallest power-of-two bin range whose
// C-Buffers fit the reserved capacity, and record the ways actually
// used (§V-A). numIndices is the size of the data namespace (e.g.,
// vertex count). It also initializes the in-memory bins and the
// repurposed-tag bin offsets (§V-E).
func (m *Machine) BinInit(numIndices uint64) error {
	if numIndices == 0 {
		return fmt.Errorf("core: BinInit with zero indices")
	}
	h := m.CPU.Mem
	caches := [numLvls]*cache.Cache{h.L1c, h.L2c, h.LLCc}
	reserve := [numLvls]int{m.cfg.ReserveL1, m.cfg.ReserveL2, m.cfg.ReserveLLC}
	for l := 0; l < numLvls; l++ {
		c := caches[l]
		ways := reserve[l]
		if ways >= c.Ways() {
			ways = c.Ways() - 1
		}
		if ways < 0 {
			ways = 0
		}
		maxBufs := ways * c.Sets() // one C-Buffer per reserved line
		if maxBufs < 1 {
			return fmt.Errorf("core: level %d reserves no capacity", l)
		}
		// Smallest power-of-two bin range such that bufs fit: range =
		// 2^s with ceil(numIndices/2^s) <= maxBufs.
		shift := uint(0)
		for stats.DivCeil(numIndices, 1<<shift) > uint64(maxBufs) {
			shift++
		}
		numBufs := int(stats.DivCeil(numIndices, 1<<shift))
		// Ways actually used (bininit frees unused reserved ways, §V-A).
		waysUsed := int(stats.DivCeil(uint64(numBufs), uint64(c.Sets())))
		if m.cfg.NoPartition {
			// §V-E: no reservation; C-Buffer lines compete with program
			// data under the ordinary replacement policy.
			waysUsed = 0
		}
		if err := c.ReserveWays(waysUsed); err != nil {
			return fmt.Errorf("core: level %d: %v", l, err)
		}
		// One flat backing array for all C-Buffers of this level instead
		// of numBufs little allocations (the LLC level alone has tens of
		// thousands). Three-index subslices pin each buffer's capacity to
		// its own line-sized window, so appends can never bleed into a
		// neighbouring buffer.
		bufs := make([][]Tuple, numBufs)
		flat := make([]Tuple, numBufs*m.tuplesPerLine)
		for i := range bufs {
			bufs[i] = flat[i*m.tuplesPerLine : i*m.tuplesPerLine : (i+1)*m.tuplesPerLine]
		}
		m.lvl[l] = levelState{
			numBufs:  numBufs,
			binShift: shift,
			waysUsed: waysUsed,
			baseAddr: 1<<40 + uint64(l)<<36,
			bufs:     bufs,
		}
	}
	// Monotonicity check: deeper levels must have >= bins (the paper's
	// construction guarantees it since capacity grows down the
	// hierarchy; guard against degenerate configs).
	if m.lvl[lvlL2].numBufs < m.lvl[lvlL1].numBufs || m.lvl[lvlLLC].numBufs < m.lvl[lvlL2].numBufs {
		return fmt.Errorf("core: C-Buffer counts not monotone: %d/%d/%d",
			m.lvl[lvlL1].numBufs, m.lvl[lvlL2].numBufs, m.lvl[lvlLLC].numBufs)
	}
	m.numIndices = numIndices
	m.fifo1 = newFIFO(m.cfg.EvictBufL1L2, float64(m.tuplesPerLine))
	m.fifo2 = newFIFO(m.cfg.EvictBufL2LLC, float64(m.tuplesPerLine))
	m.Bins = make([][]Tuple, m.lvl[lvlLLC].numBufs)
	m.binOffsets = make([]uint32, m.lvl[lvlLLC].numBufs)
	// Init cost: one bininit per level plus one tag-offset write per LLC
	// C-Buffer (§V-E "initializes the starting offsets ... using a new
	// ISA instruction"). Charge issue slots for them.
	m.CPU.ALU(3 + m.lvl[lvlLLC].numBufs)
	m.St.InitCycles = m.CPU.Cycles()
	if m.cfg.CtxSwitchQuantum > 0 {
		m.nextCtxSwitch = m.CPU.Cycles() + m.cfg.CtxSwitchQuantum
	}
	m.inited = true
	return nil
}

// BinUpdate executes the binupdate instruction: one issue slot, then a
// hardware append into the L1 C-Buffer selected by the L1 bin range.
// A filled L1 C-Buffer line is pushed into the L1→L2 eviction buffer;
// the core stalls only if that FIFO is full.
func (m *Machine) BinUpdate(key uint32, val uint64) {
	if !m.inited {
		panic("core: BinUpdate before BinInit")
	}
	if uint64(key) >= m.numIndices {
		panic(fmt.Sprintf("core: key %d out of range [0,%d)", key, m.numIndices))
	}
	m.CPU.BinUpdate()
	m.St.BinUpdates++
	if m.cfg.CtxSwitchQuantum > 0 && m.CPU.Cycles() >= m.nextCtxSwitch {
		m.contextSwitch()
	}
	l1 := &m.lvl[lvlL1]
	id := key >> l1.binShift
	if m.cfg.NoPartition {
		// The C-Buffer line is an ordinary cached line: walk the real
		// hierarchy and record whether the insert found it in L1.
		m.St.CBufAccesses++
		if m.CPU.Mem.Store(l1.baseAddr+uint64(id)*64) != mem.L1 {
			m.St.CBufMisses++
		}
	}
	l1.bufs[id] = append(l1.bufs[id], Tuple{key, val})
	if len(l1.bufs[id]) == m.tuplesPerLine {
		m.evictL1(int(id))
	}
}

// evictL1 pushes a full L1 C-Buffer line into FIFO1 and lets the L2
// binning engine scatter its tuples (at the line's service time).
func (m *Machine) evictL1(id int) {
	l1 := &m.lvl[lvlL1]
	line := l1.bufs[id]
	l1.bufs[id] = l1.bufs[id][:0]
	m.St.L1Evictions++
	fin, stall := m.fifo1.push(m.CPU.Cycles())
	if stall > 0 {
		m.CPU.AdvanceCycles(stall)
		m.St.StallCycles += stall
	}
	m.scatterToL2(line, fin)
}

// scatterToL2 is the L2 binning engine: unpack each tuple of an evicted
// line into L2 C-Buffers (at time `when`), propagating fills to FIFO2.
func (m *Machine) scatterToL2(line []Tuple, when float64) {
	l2 := &m.lvl[lvlL2]
	for _, t := range line {
		id := t.Key >> l2.binShift
		l2.bufs[id] = append(l2.bufs[id], t)
		if len(l2.bufs[id]) == m.tuplesPerLine {
			m.St.L2Evictions++
			fin, _ := m.fifo2.push(when)
			// Safe aliasing: the LLC scatter never touches L2 buffers.
			m.scatterToLLC(l2.bufs[id], fin)
			l2.bufs[id] = l2.bufs[id][:0]
		}
	}
}

// scatterToLLC is the LLC binning engine: insert tuples into LLC
// C-Buffers, coalescing when configured (COBRA-COMM); full buffers are
// written to their in-memory bin at the tag-stored offset.
func (m *Machine) scatterToLLC(line []Tuple, when float64) {
	llc := &m.lvl[lvlLLC]
	for _, t := range line {
		id := t.Key >> llc.binShift
		if m.cfg.Coalesce {
			if merged := m.tryCoalesce(llc, int(id), t); merged {
				continue
			}
		}
		llc.bufs[id] = append(llc.bufs[id], t)
		if len(llc.bufs[id]) == m.tuplesPerLine {
			m.evictLLC(int(id), false)
		}
	}
	_ = when
}

func (m *Machine) tryCoalesce(llc *levelState, id int, t Tuple) bool {
	buf := llc.bufs[id]
	for i := range buf {
		if buf[i].Key == t.Key {
			buf[i].Val = m.cfg.CoalesceFn(buf[i].Val, t.Val)
			return true
		}
	}
	return false
}

// evictLLC writes an LLC C-Buffer's tuples to its in-memory bin
// (BinBasePtr + BinOffset[binID], §V-E) as a line-sized DRAM burst,
// then bumps the offset. Partial lines (flush/preemption) still cost a
// full 64 B write — the waste measured in Figure 13c.
func (m *Machine) evictLLC(id int, partial bool) {
	llc := &m.lvl[lvlLLC]
	buf := llc.bufs[id]
	if len(buf) == 0 {
		return
	}
	m.Bins[id] = append(m.Bins[id], buf...)
	m.binOffsets[id] += uint32(len(buf))
	m.CPU.Mem.WriteLineDirect(1)
	m.St.MemWriteBytes += 64
	if partial {
		waste := uint64(m.tuplesPerLine-len(buf)) * uint64(m.cfg.TupleBytes)
		m.St.PartialWasteB += waste
		m.St.FlushLines++
	} else {
		m.St.LLCEvictions++
	}
	llc.bufs[id] = llc.bufs[id][:0]
}

// contextSwitch models worst-case preemption: every partially filled
// LLC C-Buffer is evicted (partial 64 B writes), wasting bandwidth.
func (m *Machine) contextSwitch() {
	m.St.CtxSwitches++
	llc := &m.lvl[lvlLLC]
	before := m.St.PartialWasteB
	for id := range llc.bufs {
		if n := len(llc.bufs[id]); n > 0 && n < m.tuplesPerLine {
			m.evictLLC(id, true)
		}
	}
	m.St.CtxWasteBytes += m.St.PartialWasteB - before
	m.nextCtxSwitch += m.cfg.CtxSwitchQuantum
}

// BinFlush executes the binflush instruction (§V-E): serially walk L1,
// then L2, then the LLC, force-evicting non-empty C-Buffers so every
// tuple lands in an in-memory bin. The walk and the partial-line
// scatters cost cycles (engine work is on the critical path here).
func (m *Machine) BinFlush() {
	if !m.inited {
		panic("core: BinFlush before BinInit")
	}
	start := m.CPU.Cycles()
	var engineTuples int
	l1 := &m.lvl[lvlL1]
	for id := range l1.bufs {
		if len(l1.bufs[id]) > 0 {
			line := l1.bufs[id]
			l1.bufs[id] = l1.bufs[id][:0]
			engineTuples += len(line)
			m.St.FlushLines++
			m.scatterToL2(line, m.CPU.Cycles())
		}
	}
	l2 := &m.lvl[lvlL2]
	for id := range l2.bufs {
		if len(l2.bufs[id]) > 0 {
			line := l2.bufs[id]
			l2.bufs[id] = l2.bufs[id][:0]
			engineTuples += len(line)
			m.St.FlushLines++
			m.scatterToLLC(line, m.CPU.Cycles())
		}
	}
	llc := &m.lvl[lvlLLC]
	for id := range llc.bufs {
		if len(llc.bufs[id]) > 0 {
			engineTuples += len(llc.bufs[id])
			m.evictLLC(id, true)
		}
	}
	// The serial walk costs one cycle per C-Buffer line visited plus one
	// per tuple moved by the engines.
	walk := float64(l1.numBufs + l2.numBufs + llc.numBufs)
	m.CPU.AdvanceCycles(walk + float64(engineTuples))
	m.CPU.DrainMem()
	m.St.FlushCycles += m.CPU.Cycles() - start
}

// ResidentTuples counts tuples still buffered on chip (0 after flush).
func (m *Machine) ResidentTuples() int {
	n := 0
	for l := 0; l < numLvls; l++ {
		for _, b := range m.lvl[l].bufs {
			n += len(b)
		}
	}
	return n
}

// TotalBinnedTuples counts tuples materialized in memory bins.
func (m *Machine) TotalBinnedTuples() int {
	n := 0
	for _, b := range m.Bins {
		n += len(b)
	}
	return n
}

// BinShiftLLC returns the LLC bin shift: in-memory bin i holds keys
// [i<<shift, (i+1)<<shift).
func (m *Machine) BinShiftLLC() uint { return m.lvl[lvlLLC].binShift }

// EvictionStalls returns (stall cycles, lines served) for the L1→L2
// eviction buffer — the quantity swept in Figure 13a.
func (m *Machine) EvictionStalls() (float64, uint64) {
	if m.fifo1 == nil {
		return 0, 0
	}
	return m.fifo1.Stalls, m.fifo1.LinesServed
}
