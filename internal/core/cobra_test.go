package core

import (
	"testing"
	"testing/quick"

	"cobra/internal/cpu"
	"cobra/internal/mem"
	"cobra/internal/stats"
)

func newMachine(t *testing.T, tupleBytes int, numIndices uint64) *Machine {
	t.Helper()
	h := mem.New(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), h)
	m := NewMachine(c, DefaultConfig(tupleBytes))
	if err := m.BinInit(numIndices); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBinInitHierarchyShape(t *testing.T) {
	m := newMachine(t, 8, 1<<22) // 4M indices, 8B tuples
	l1, l2, llc := m.LevelBufs()
	if !(l1 <= l2 && l2 <= llc) {
		t.Fatalf("C-Buffer counts not monotone: %d/%d/%d", l1, l2, llc)
	}
	// L1: 7 ways of 64 sets = 448 lines max.
	if l1 > 448 {
		t.Fatalf("L1 C-Buffers %d exceed reserved capacity", l1)
	}
	// L2: 1 way of 512 sets = 512 lines max.
	if l2 > 512 {
		t.Fatalf("L2 C-Buffers %d exceed reserved capacity", l2)
	}
	// LLC: 15 ways of 2048 sets = 30720 lines max.
	if llc > 30720 {
		t.Fatalf("LLC C-Buffers %d exceed reserved capacity", llc)
	}
	if m.NumBins() != llc {
		t.Fatal("in-memory bins != LLC C-Buffers")
	}
	// Bin ranges are powers of two (shift-indexed).
	if 1<<m.BinShiftLLC()*uint64(llc) < 1<<22 {
		t.Fatal("LLC bins do not cover the namespace")
	}
}

func TestBinInitSmallNamespaceUsesFewerWays(t *testing.T) {
	// 1000 indices fit in a handful of C-Buffers; bininit must release
	// unused reserved ways (§V-A).
	h := mem.New(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), h)
	m := NewMachine(c, DefaultConfig(8))
	if err := m.BinInit(1000); err != nil {
		t.Fatal(err)
	}
	l1, l2, llc := m.LevelBufs()
	if l1 > 448 || l2 > 512 || llc > 30720 {
		t.Fatal("buffer counts exceed capacity")
	}
	if h.L1c.ReservedWays() >= 8 {
		t.Fatal("L1 reservation left no usable way")
	}
	// With 1000 indices and >=448-line capacity the range can be small:
	// every level can afford range <= 4.
	if llc < 250 {
		t.Fatalf("LLC buffers = %d, want fine-grained bins for tiny namespace", llc)
	}
}

func TestBinInitRejectsZero(t *testing.T) {
	h := mem.New(mem.DefaultConfig())
	m := NewMachine(cpu.New(cpu.DefaultConfig(), h), DefaultConfig(8))
	if err := m.BinInit(0); err == nil {
		t.Fatal("BinInit(0) should fail")
	}
}

func TestBadTupleSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-divisor tuple size")
		}
	}()
	h := mem.New(mem.DefaultConfig())
	NewMachine(cpu.New(cpu.DefaultConfig(), h), DefaultConfig(7))
}

func TestBinUpdateBeforeInitPanics(t *testing.T) {
	h := mem.New(mem.DefaultConfig())
	m := NewMachine(cpu.New(cpu.DefaultConfig(), h), DefaultConfig(8))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for BinUpdate before BinInit")
		}
	}()
	m.BinUpdate(0, 0)
}

func TestTupleConservation(t *testing.T) {
	// Every binupdate'd tuple must reach exactly one in-memory bin, in
	// the right bin, after flush.
	const n = 1 << 16
	m := newMachine(t, 8, n)
	r := stats.NewRand(1)
	const updates = 200000
	want := make(map[uint64]int)
	for i := 0; i < updates; i++ {
		k := uint32(r.Intn(n))
		v := uint64(i)
		m.BinUpdate(k, v)
		want[uint64(k)<<32|v&0xffffffff]++
	}
	m.BinFlush()
	if m.ResidentTuples() != 0 {
		t.Fatalf("%d tuples still on chip after flush", m.ResidentTuples())
	}
	if got := m.TotalBinnedTuples(); got != updates {
		t.Fatalf("binned %d tuples, want %d", got, updates)
	}
	shift := m.BinShiftLLC()
	for id, bin := range m.Bins {
		for _, tp := range bin {
			if int(tp.Key>>shift) != id {
				t.Fatalf("tuple key %d in bin %d (shift %d)", tp.Key, id, shift)
			}
			want[uint64(tp.Key)<<32|tp.Val&0xffffffff]--
		}
	}
	for k, c := range want {
		if c != 0 {
			t.Fatalf("tuple %x count off by %d", k, c)
		}
	}
}

func TestTupleConservationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, tsel uint8) bool {
		n := uint64(nRaw%5000) + 64
		tupleBytes := []int{4, 8, 16}[tsel%3]
		h := mem.New(mem.DefaultConfig())
		m := NewMachine(cpu.New(cpu.DefaultConfig(), h), DefaultConfig(tupleBytes))
		if err := m.BinInit(n); err != nil {
			return false
		}
		r := stats.NewRand(seed)
		const updates = 5000
		for i := 0; i < updates; i++ {
			m.BinUpdate(uint32(r.Uint64n(n)), uint64(i))
		}
		m.BinFlush()
		return m.ResidentTuples() == 0 && m.TotalBinnedTuples() == updates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOutOfRangePanics(t *testing.T) {
	m := newMachine(t, 8, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range key")
		}
	}()
	m.BinUpdate(100, 0)
}

func TestPerChunkOrderWithinBin(t *testing.T) {
	// COBRA preserves arrival order per key range... more precisely,
	// tuples of one key arrive in bins in production order (FIFO through
	// the hierarchy) — required for non-commutative correctness.
	m := newMachine(t, 8, 1024)
	for i := 0; i < 5000; i++ {
		m.BinUpdate(uint32(i%1024), uint64(i))
	}
	m.BinFlush()
	seen := make(map[uint32]uint64)
	for _, bin := range m.Bins {
		for _, tp := range bin {
			if last, ok := seen[tp.Key]; ok && tp.Val <= last {
				t.Fatalf("key %d: tuple %d arrived after %d", tp.Key, tp.Val, last)
			}
			seen[tp.Key] = tp.Val
		}
	}
}

func TestEvictionBufferStalls(t *testing.T) {
	// A tiny eviction buffer under a dense burst must stall; the default
	// 32-entry buffer must stall far less (Figure 13a's shape).
	run := func(entries int) float64 {
		h := mem.New(mem.DefaultConfig())
		c := cpu.New(cpu.DefaultConfig(), h)
		cfg := DefaultConfig(4) // 16 tuples/line -> heavy engine load
		cfg.EvictBufL1L2 = entries
		m := NewMachine(c, cfg)
		if err := m.BinInit(1 << 20); err != nil {
			t.Fatal(err)
		}
		r := stats.NewRand(3)
		for i := 0; i < 300000; i++ {
			// back-to-back binupdates, no other work: worst-case burst
			m.BinUpdate(uint32(r.Uint64n(1<<20)), 1)
		}
		stalls, _ := m.EvictionStalls()
		return stalls
	}
	small := run(1)
	big := run(64)
	if small <= big {
		t.Fatalf("1-entry buffer stalled %.0f cycles, 64-entry %.0f; want small >> big", small, big)
	}
	if small == 0 {
		t.Fatal("worst-case burst produced zero stalls with a 1-entry buffer")
	}
}

func TestCoalescingReducesTraffic(t *testing.T) {
	// COBRA-COMM on a highly skewed stream must write fewer tuples to
	// memory than plain COBRA (Figure 14a's mechanism).
	run := func(coalesce bool) (tuples int, memBytes uint64) {
		h := mem.New(mem.DefaultConfig())
		c := cpu.New(cpu.DefaultConfig(), h)
		cfg := DefaultConfig(8)
		cfg.Coalesce = coalesce
		m := NewMachine(c, cfg)
		if err := m.BinInit(1 << 16); err != nil {
			t.Fatal(err)
		}
		r := stats.NewRand(5)
		for i := 0; i < 200000; i++ {
			// Zipf-ish: 80% of updates to 1% of keys.
			var k uint32
			if r.Float64() < 0.8 {
				k = uint32(r.Uint64n(655))
			} else {
				k = uint32(r.Uint64n(1 << 16))
			}
			m.BinUpdate(k, 1)
		}
		m.BinFlush()
		return m.TotalBinnedTuples(), m.St.MemWriteBytes
	}
	plainTuples, plainBytes := run(false)
	commTuples, commBytes := run(true)
	if plainTuples != 200000 {
		t.Fatalf("plain COBRA lost tuples: %d", plainTuples)
	}
	if commTuples >= plainTuples {
		t.Fatalf("coalescing did not reduce tuples: %d vs %d", commTuples, plainTuples)
	}
	if commBytes >= plainBytes {
		t.Fatalf("coalescing did not reduce traffic: %d vs %d", commBytes, plainBytes)
	}
}

func TestCoalescedSumsPreserved(t *testing.T) {
	// With add-coalescing, per-key value sums must be exact.
	h := mem.New(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), h)
	cfg := DefaultConfig(8)
	cfg.Coalesce = true
	m := NewMachine(c, cfg)
	const n = 4096
	if err := m.BinInit(n); err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	r := stats.NewRand(7)
	for i := 0; i < 100000; i++ {
		k := uint32(r.Uint64n(n))
		v := uint64(r.Intn(10))
		m.BinUpdate(k, v)
		want[k] += v
	}
	m.BinFlush()
	got := make([]uint64, n)
	for _, bin := range m.Bins {
		for _, tp := range bin {
			got[tp.Key] += tp.Val
		}
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("key %d: sum %d, want %d", k, got[k], want[k])
		}
	}
}

func TestContextSwitchWaste(t *testing.T) {
	run := func(quantum float64) uint64 {
		h := mem.New(mem.DefaultConfig())
		c := cpu.New(cpu.DefaultConfig(), h)
		cfg := DefaultConfig(8)
		cfg.CtxSwitchQuantum = quantum
		m := NewMachine(c, cfg)
		if err := m.BinInit(1 << 18); err != nil {
			t.Fatal(err)
		}
		r := stats.NewRand(9)
		for i := 0; i < 300000; i++ {
			m.BinUpdate(uint32(r.Uint64n(1<<18)), 1)
		}
		m.BinFlush()
		return m.St.CtxWasteBytes
	}
	frequent := run(5000)
	rare := run(10e6)
	if frequent <= rare {
		t.Fatalf("frequent preemption wasted %d B, rare %d B; want frequent > rare", frequent, rare)
	}
}

func TestBinUpdateChargesOneInstruction(t *testing.T) {
	m := newMachine(t, 8, 1<<16)
	before := m.CPU.Ctr.Instructions
	m.BinUpdate(1, 2)
	if d := m.CPU.Ctr.Instructions - before; d != 1 {
		t.Fatalf("binupdate charged %d instructions, want 1", d)
	}
}

func TestFlushIdempotent(t *testing.T) {
	m := newMachine(t, 8, 1<<12)
	for i := 0; i < 100; i++ {
		m.BinUpdate(uint32(i%100), uint64(i))
	}
	m.BinFlush()
	n := m.TotalBinnedTuples()
	m.BinFlush()
	if m.TotalBinnedTuples() != n {
		t.Fatal("second flush changed bins")
	}
}

func TestStatsAccounting(t *testing.T) {
	m := newMachine(t, 8, 1<<16)
	r := stats.NewRand(11)
	const updates = 50000
	for i := 0; i < updates; i++ {
		m.BinUpdate(uint32(r.Uint64n(1<<16)), 1)
	}
	m.BinFlush()
	if m.St.BinUpdates != updates {
		t.Fatalf("BinUpdates = %d", m.St.BinUpdates)
	}
	if m.St.MemWriteBytes == 0 || m.St.LLCEvictions == 0 && m.St.FlushLines == 0 {
		t.Fatalf("stats = %+v", m.St)
	}
	// All tuples written as lines: bytes >= tuples*8.
	if m.St.MemWriteBytes < uint64(updates)*8 {
		t.Fatalf("MemWriteBytes %d below tuple payload", m.St.MemWriteBytes)
	}
}

func TestNoPartitionCBufMissRate(t *testing.T) {
	// §V-E: without static partitioning, C-Buffer inserts should still
	// mostly hit in L1 because only ~256 hot buffer lines compete with
	// streaming data (which Bit-PLRU cycles through one way).
	h := mem.New(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), h)
	cfg := DefaultConfig(8)
	cfg.NoPartition = true
	m := NewMachine(c, cfg)
	if err := m.BinInit(1 << 20); err != nil {
		t.Fatal(err)
	}
	if h.L1c.ReservedWays() != 0 {
		t.Fatal("NoPartition must not reserve ways")
	}
	r := stats.NewRand(3)
	var streamAddr uint64 = 1 << 30
	for i := 0; i < 200000; i++ {
		// Interleave streaming input loads with binupdates, as Binning does.
		c.Load(streamAddr)
		streamAddr += 8
		m.BinUpdate(uint32(r.Uint64n(1<<20)), 1)
	}
	if m.St.CBufAccesses == 0 {
		t.Fatal("no C-Buffer accesses tracked")
	}
	if rate := m.St.CBufMissRate(); rate > 0.02 {
		t.Fatalf("unpartitioned C-Buffer miss rate %.4f, paper claims <1%%", rate)
	}
}

func TestPartitionedModeTracksNoCBufStats(t *testing.T) {
	m := newMachine(t, 8, 1<<16)
	m.BinUpdate(1, 1)
	if m.St.CBufAccesses != 0 {
		t.Fatal("partitioned mode should not track C-Buffer accesses")
	}
	var zero Stats
	if zero.CBufMissRate() != 0 {
		t.Fatal("zero stats miss rate should be 0")
	}
}
