package core

import (
	"testing"

	"cobra/internal/cpu"
	"cobra/internal/mem"
	"cobra/internal/stats"
)

// BenchmarkBinUpdate measures the modeled binupdate datapath: L1
// C-Buffer append, hierarchical evictions, DES eviction buffers.
func BenchmarkBinUpdate(b *testing.B) {
	h := mem.New(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), h)
	m := NewMachine(c, DefaultConfig(8))
	if err := m.BinInit(1 << 20); err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(1)
	keys := make([]uint32, 1<<16)
	for i := range keys {
		keys[i] = uint32(r.Uint64n(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BinUpdate(keys[i&(1<<16-1)], uint64(i))
	}
}

// BenchmarkBinUpdateCoalescing measures COBRA-COMM's LLC coalescing
// scan on a skewed stream.
func BenchmarkBinUpdateCoalescing(b *testing.B) {
	h := mem.New(mem.DefaultConfig())
	c := cpu.New(cpu.DefaultConfig(), h)
	cfg := DefaultConfig(8)
	cfg.Coalesce = true
	m := NewMachine(c, cfg)
	if err := m.BinInit(1 << 20); err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(1)
	keys := make([]uint32, 1<<16)
	for i := range keys {
		if r.Float64() < 0.8 {
			keys[i] = uint32(r.Uint64n(1 << 13))
		} else {
			keys[i] = uint32(r.Uint64n(1 << 20))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BinUpdate(keys[i&(1<<16-1)], 1)
	}
}
