package phi

import (
	"testing"
	"testing/quick"

	"cobra/internal/stats"
)

func TestSumsPreserved(t *testing.T) {
	const n = 1 << 16
	m := New(DefaultConfig(8, 64), n)
	want := make([]uint64, n)
	r := stats.NewRand(1)
	for i := 0; i < 300000; i++ {
		k := uint32(r.Uint64n(n))
		v := uint64(r.Intn(5))
		m.Update(k, v)
		want[k] += v
	}
	m.Flush()
	got := make([]uint64, n)
	for _, bin := range m.Bins {
		for _, tp := range bin {
			got[tp.Key] += tp.Val
		}
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("key %d: %d vs %d", k, got[k], want[k])
		}
	}
}

func TestSumsPreservedProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := uint64(nRaw%4000) + 16
		m := New(DefaultConfig(8, 16), n)
		want := make(map[uint32]uint64)
		r := stats.NewRand(seed)
		for i := 0; i < 5000; i++ {
			k := uint32(r.Uint64n(n))
			m.Update(k, 1)
			want[k]++
		}
		m.Flush()
		got := make(map[uint32]uint64)
		for _, bin := range m.Bins {
			for _, tp := range bin {
				got[tp.Key] += tp.Val
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedStreamCoalescesHeavily(t *testing.T) {
	const n = 1 << 20
	m := New(DefaultConfig(8, 64), n)
	r := stats.NewRand(3)
	const updates = 500000
	for i := 0; i < updates; i++ {
		var k uint32
		if r.Float64() < 0.8 {
			k = uint32(r.Uint64n(n / 100)) // hot 1%
		} else {
			k = uint32(r.Uint64n(n))
		}
		m.Update(k, 1)
	}
	m.Flush()
	if rate := m.St.CoalesceRate(); rate < 0.3 {
		t.Fatalf("skewed stream coalesce rate %.3f, want > 0.3", rate)
	}
	if m.St.MemTuples >= updates {
		t.Fatal("no traffic reduction")
	}
	// The paper: the overwhelming share of coalescing happens at the
	// LLC (97% on average) because it is by far the largest table.
	if share := m.St.LLCShare(); share < 0.5 {
		t.Fatalf("LLC coalescing share %.3f, want majority", share)
	}
}

func TestUniformStreamCoalescesLittle(t *testing.T) {
	const n = 1 << 22 // footprint 16x the LLC table
	m := New(DefaultConfig(8, 64), n)
	r := stats.NewRand(5)
	const updates = 400000
	for i := 0; i < updates; i++ {
		m.Update(uint32(r.Uint64n(n)), 1)
	}
	m.Flush()
	if rate := m.St.CoalesceRate(); rate > 0.2 {
		t.Fatalf("uniform over-capacity stream coalesced %.3f; URND-like inputs should see little benefit", rate)
	}
}

func TestBinRangesRespected(t *testing.T) {
	const n = 10000
	m := New(DefaultConfig(8, 32), n)
	r := stats.NewRand(7)
	for i := 0; i < 100000; i++ {
		m.Update(uint32(r.Uint64n(n)), 1)
	}
	m.Flush()
	shift := m.BinShift()
	for id, bin := range m.Bins {
		for _, tp := range bin {
			if int(tp.Key>>shift) != id {
				t.Fatalf("key %d in bin %d", tp.Key, id)
			}
		}
	}
	if m.NumBins() > 32 {
		t.Fatalf("bins = %d, want <= 32", m.NumBins())
	}
}

func TestZeroStats(t *testing.T) {
	var s Stats
	if s.CoalesceRate() != 0 || s.LLCShare() != 0 {
		t.Fatal("zero stats rates should be 0")
	}
}

func TestStringAndCounts(t *testing.T) {
	m := New(DefaultConfig(8, 8), 1000)
	m.Update(1, 1)
	m.Flush()
	if m.TotalBinnedTuples() != 1 {
		t.Fatalf("binned = %d", m.TotalBinnedTuples())
	}
	if m.String() == "" {
		t.Fatal("empty description")
	}
}
