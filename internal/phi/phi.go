// Package phi models PHI [43], the state-of-the-art hardware PB
// optimization for COMMUTATIVE updates that the paper compares against
// in §VII-C / Figure 14.
//
// PHI adds reduction units at private caches and an atomic reduction
// unit at the shared LLC: updates buffered on chip coalesce
// hierarchically — an update whose key is already buffered at some
// level merges into it and never travels further. Only coalesced
// residue is written to the in-memory bins. Following the paper's
// methodology ("we model an idealized version of PHI that incurs zero
// overheads for managing PB data"), the model charges no instruction or
// management cost; it answers the memory-traffic and locality questions
// of Figure 14.
//
// Unlike COBRA, PHI keeps software PB's bin organization, so its
// Accumulate phase runs with the same (compromised) bin count as PB-SW
// — the reason Figure 14b shows COBRA winning on L1 misses.
package phi

import (
	"fmt"

	"cobra/internal/core"
)

// Config sizes the coalescing hierarchy.
type Config struct {
	TupleBytes int
	// Per-level coalescing capacities in bytes (defaults: the cache
	// sizes of Table II).
	L1Bytes, L2Bytes, LLCBytes int
	// NumBins is the software-PB bin count PHI inherits.
	NumBins int
	// BatchSize is PHI's selective update batching: every BatchSize
	// updates the private-level (L1/L2) buffers drain into the LLC
	// reduction unit. Private levels therefore coalesce only within a
	// short window, which is why the paper observes ~97% of coalescing
	// happening at the (persistent, much larger) LLC.
	BatchSize int
	// Reduce merges two values for one key (must be commutative).
	Reduce func(a, b uint64) uint64
}

// DefaultConfig mirrors the simulated machine.
func DefaultConfig(tupleBytes, numBins int) Config {
	return Config{
		TupleBytes: tupleBytes,
		L1Bytes:    32 << 10,
		L2Bytes:    256 << 10,
		LLCBytes:   2 << 20,
		NumBins:    numBins,
		BatchSize:  4096,
		Reduce:     func(a, b uint64) uint64 { return a + b },
	}
}

// Stats counts coalescing activity.
type Stats struct {
	Updates      uint64
	CoalescedL1  uint64
	CoalescedL2  uint64
	CoalescedLLC uint64
	MemTuples    uint64 // residue tuples written to in-memory bins
	MemBytes     uint64
}

// CoalesceRate returns the fraction of updates absorbed on chip.
func (s Stats) CoalesceRate() float64 {
	if s.Updates == 0 {
		return 0
	}
	return float64(s.CoalescedL1+s.CoalescedL2+s.CoalescedLLC) / float64(s.Updates)
}

// LLCShare returns the fraction of coalescing that happened at the LLC
// (the paper reports 97% on average).
func (s Stats) LLCShare() float64 {
	total := s.CoalescedL1 + s.CoalescedL2 + s.CoalescedLLC
	if total == 0 {
		return 0
	}
	return float64(s.CoalescedLLC) / float64(total)
}

// slot is one coalescing-table entry.
type slot struct {
	key   uint32
	val   uint64
	valid bool
}

// table is one level's reduction buffer: direct-mapped by key, an
// incoming update either merges (key match), fills an empty slot, or
// displaces the incumbent to the next level.
type table struct {
	slots []slot
	mask  uint32
}

func newTable(capacityBytes, tupleBytes int) *table {
	n := capacityBytes / tupleBytes
	// Round down to a power of two for mask indexing.
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return &table{slots: make([]slot, p), mask: uint32(p - 1)}
}

// insert returns (coalesced, displaced, displacedTuple).
func (t *table) insert(key uint32, val uint64, reduce func(a, b uint64) uint64) (bool, bool, core.Tuple) {
	s := &t.slots[key&t.mask]
	if s.valid && s.key == key {
		s.val = reduce(s.val, val)
		return true, false, core.Tuple{}
	}
	if !s.valid {
		*s = slot{key: key, val: val, valid: true}
		return false, false, core.Tuple{}
	}
	old := core.Tuple{Key: s.key, Val: s.val}
	*s = slot{key: key, val: val, valid: true}
	return false, true, old
}

// Model is one core's PHI pipeline.
type Model struct {
	cfg      Config
	lvls     [3]*table
	shift    uint
	sinceBat int
	Bins     [][]core.Tuple
	St       Stats
}

// New builds a PHI model. numKeys sizes the bin ranges.
func New(cfg Config, numKeys uint64) *Model {
	if cfg.TupleBytes <= 0 {
		panic("phi: tuple size must be positive")
	}
	if cfg.Reduce == nil {
		cfg.Reduce = func(a, b uint64) uint64 { return a + b }
	}
	if cfg.NumBins < 1 {
		cfg.NumBins = 1
	}
	m := &Model{cfg: cfg}
	m.lvls[0] = newTable(cfg.L1Bytes, cfg.TupleBytes)
	m.lvls[1] = newTable(cfg.L2Bytes, cfg.TupleBytes)
	m.lvls[2] = newTable(cfg.LLCBytes, cfg.TupleBytes)
	// Power-of-two bin range covering numKeys with <= NumBins bins.
	shift := uint(0)
	for (numKeys+(1<<shift)-1)>>shift > uint64(cfg.NumBins) {
		shift++
	}
	m.shift = shift
	bins := int((numKeys + (1 << shift) - 1) >> shift)
	m.Bins = make([][]core.Tuple, bins)
	return m
}

// NumBins returns the in-memory bin count (PB-SW's compromise).
func (m *Model) NumBins() int { return len(m.Bins) }

// BinShift returns the bin range shift.
func (m *Model) BinShift() uint { return m.shift }

// Update feeds one commutative update through the coalescing hierarchy.
func (m *Model) Update(key uint32, val uint64) {
	m.St.Updates++
	if m.cfg.BatchSize > 0 {
		m.sinceBat++
		if m.sinceBat >= m.cfg.BatchSize {
			m.drainPrivate()
			m.sinceBat = 0
		}
	}
	t := core.Tuple{Key: key, Val: val}
	for l, tab := range m.lvls {
		coalesced, displaced, old := tab.insert(t.Key, t.Val, m.cfg.Reduce)
		if coalesced {
			switch l {
			case 0:
				m.St.CoalescedL1++
			case 1:
				m.St.CoalescedL2++
			default:
				m.St.CoalescedLLC++
			}
			return
		}
		if !displaced {
			return // absorbed into an empty slot
		}
		t = old // displaced incumbent moves down a level
	}
	m.writeToBin(t)
}

// writeToBin spills residue to the in-memory bin (idealized batching:
// exactly tuple bytes of traffic, per the paper's zero-overhead PHI).
func (m *Model) writeToBin(t core.Tuple) {
	m.Bins[t.Key>>m.shift] = append(m.Bins[t.Key>>m.shift], t)
	m.St.MemTuples++
	m.St.MemBytes += uint64(m.cfg.TupleBytes)
}

// Flush drains every level into the in-memory bins (end of Binning).
func (m *Model) Flush() {
	m.drainPrivate()
	for i := range m.lvls[2].slots {
		s := &m.lvls[2].slots[i]
		if s.valid {
			m.writeToBin(core.Tuple{Key: s.key, Val: s.val})
			s.valid = false
		}
	}
}

// drainPrivate moves every buffered tuple in the private levels (L1,
// L2) down the hierarchy, coalescing where possible; residue displaced
// out of the LLC spills to memory.
func (m *Model) drainPrivate() {
	for l := 0; l < 2; l++ {
		for i := range m.lvls[l].slots {
			s := &m.lvls[l].slots[i]
			if !s.valid {
				continue
			}
			t := core.Tuple{Key: s.key, Val: s.val}
			s.valid = false
			cur := t
			settled := false
			for nl := l + 1; nl < 3; nl++ {
				coalesced, displaced, old := m.lvls[nl].insert(cur.Key, cur.Val, m.cfg.Reduce)
				if coalesced {
					if nl == 1 {
						m.St.CoalescedL2++
					} else {
						m.St.CoalescedLLC++
					}
					settled = true
					break
				}
				if !displaced {
					settled = true
					break
				}
				cur = old
			}
			if !settled {
				m.writeToBin(cur)
			}
		}
	}
}

// TotalBinnedTuples counts residue tuples in memory bins.
func (m *Model) TotalBinnedTuples() int {
	n := 0
	for _, b := range m.Bins {
		n += len(b)
	}
	return n
}

// String describes the model.
func (m *Model) String() string {
	return fmt.Sprintf("PHI: %d bins (shift %d), tables %d/%d/%d slots",
		len(m.Bins), m.shift, len(m.lvls[0].slots), len(m.lvls[1].slots), len(m.lvls[2].slots))
}
