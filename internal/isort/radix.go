package isort

// Radix sorting: the paper names PB "an instance of radix partitioning"
// (§IV footnote, citing [54]), and prior work [54], [65] showed radix
// partitioning's performance cliffs when the partition count outgrows
// the cache — the same cliff COBRA removes for PB. This file provides
// the radix machinery: an LSD radix sort for uint64 keys and a
// single-pass MSD partitioner with software coalescing buffers, the
// direct software analogue of PB's Binning phase.

// RadixSortU64 sorts keys ascending with an LSD radix sort over
// 8-bit digits (8 passes, stable within each pass).
func RadixSortU64(keys []uint64) {
	if len(keys) < 2 {
		return
	}
	buf := make([]uint64, len(keys))
	src, dst := keys, buf
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [256]uint32
		allZero := true
		for _, k := range src {
			d := (k >> shift) & 0xff
			counts[d]++
			if d != 0 {
				allZero = false
			}
		}
		if allZero {
			continue // digit column empty; skip the scatter pass
		}
		var sum uint32
		var cursor [256]uint32
		for i, c := range counts[:] {
			cursor[i] = sum
			sum += c
		}
		for _, k := range src {
			d := (k >> shift) & 0xff
			dst[cursor[d]] = k
			cursor[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// Partitioned is the result of one MSD radix partitioning pass:
// CSR-style offsets into a permuted copy of the input.
type Partitioned struct {
	Bits    uint     // partition on the top Bits bits below `width`
	Offsets []uint32 // len 2^Bits + 1
	Keys    []uint32 // permuted input, grouped by partition
}

// NumPartitions returns the partition count.
func (p *Partitioned) NumPartitions() int { return len(p.Offsets) - 1 }

// Partition returns partition i's keys (do not mutate).
func (p *Partitioned) Partition(i int) []uint32 {
	return p.Keys[p.Offsets[i]:p.Offsets[i+1]]
}

// RadixPartition splits keys into 2^bits partitions by their top bits
// (below keyBits significant bits), buffering writes through
// cacheline-sized software coalescing buffers exactly like PB's Binning
// phase (16 keys per buffer = 64 B). Stable within partitions.
func RadixPartition(keys []uint32, keyBits, bits uint) *Partitioned {
	if bits == 0 || bits > 24 {
		panic("isort: partition bits must be in [1, 24]")
	}
	if keyBits < bits {
		keyBits = bits
	}
	shift := keyBits - bits
	nPart := 1 << bits
	counts := make([]uint32, nPart)
	for _, k := range keys {
		counts[k>>shift&uint32(nPart-1)]++
	}
	offsets := make([]uint32, nPart+1)
	var sum uint32
	for i, c := range counts {
		offsets[i] = sum
		sum += c
	}
	offsets[nPart] = sum

	out := make([]uint32, len(keys))
	cursor := make([]uint32, nPart)
	copy(cursor, offsets[:nPart])

	// Software C-Buffers: 16 keys per partition, flushed in bulk.
	const bufCap = 16
	cbuf := make([]uint32, nPart*bufCap)
	fill := make([]uint8, nPart)
	flush := func(p uint32) {
		n := uint32(fill[p])
		copy(out[cursor[p]:cursor[p]+n], cbuf[p*bufCap:p*bufCap+n])
		cursor[p] += n
		fill[p] = 0
	}
	for _, k := range keys {
		p := k >> shift & uint32(nPart-1)
		cbuf[p*bufCap+uint32(fill[p])] = k
		fill[p]++
		if fill[p] == bufCap {
			flush(p)
		}
	}
	for p := 0; p < nPart; p++ {
		if fill[p] > 0 {
			flush(uint32(p))
		}
	}
	return &Partitioned{Bits: bits, Offsets: offsets, Keys: out}
}

// RadixSortPB sorts uint32 keys by MSD-partitioning them into
// cache-sized groups (the PB analogy: Binning) and then sorting each
// partition independently (Accumulate with cache-resident working sets).
func RadixSortPB(keys []uint32, keyBits uint) []uint32 {
	if len(keys) == 0 {
		return nil
	}
	// Pick a partition count so each partition's expected size fits L2:
	// ~64 Ki keys per partition.
	bits := uint(1)
	for len(keys)>>bits > 64<<10 && bits < 12 {
		bits++
	}
	part := RadixPartition(keys, keyBits, bits)
	for i := 0; i < part.NumPartitions(); i++ {
		SortComparison(part.Partition(i))
	}
	return part.Keys
}
