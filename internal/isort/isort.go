// Package isort provides the integer-sorting workload: a comparison
// baseline (the stand-in for __gnu_parallel::sort), a counting sort
// whose scatter is a classic irregular non-commutative update, and the
// propagation-blocked counting sort the paper's PB/COBRA versions
// optimize.
package isort

import (
	"runtime"
	"sort"
	"sync"

	"cobra/internal/pb"
)

// SortComparison sorts keys with the standard library (pdqsort), the
// baseline the paper compares against (§VI uses __gnu_parallel::sort).
func SortComparison(keys []uint32) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// SortComparisonParallel is a simple parallel merge-over-chunks wrapper
// around the stdlib sort, approximating the parallel baseline.
func SortComparisonParallel(keys []uint32) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 || len(keys) < 1<<14 {
		SortComparison(keys)
		return
	}
	chunk := (len(keys) + workers - 1) / workers
	var wg sync.WaitGroup
	for b := 0; b < len(keys); b += chunk {
		e := b + chunk
		if e > len(keys) {
			e = len(keys)
		}
		wg.Add(1)
		go func(s []uint32) {
			defer wg.Done()
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		}(keys[b:e])
		_ = e
	}
	wg.Wait()
	// k-way merge via repeated pairwise merges.
	out := make([]uint32, len(keys))
	size := chunk
	src, dst := keys, out
	for size < len(keys) {
		for lo := 0; lo < len(keys); lo += 2 * size {
			mid := lo + size
			hi := lo + 2*size
			if mid > len(keys) {
				mid = len(keys)
			}
			if hi > len(keys) {
				hi = len(keys)
			}
			merge(src[lo:mid], src[mid:hi], dst[lo:hi])
		}
		src, dst = dst, src
		size *= 2
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

func merge(a, b, out []uint32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// CountingSort sorts keys in [0, maxKey) using the textbook counting
// sort [16]. The histogram increments and the scatter are irregular
// updates over the full key range; the scatter is non-commutative
// (cursor order defines stability).
func CountingSort(keys []uint32, maxKey int) []uint32 {
	counts := make([]uint32, maxKey)
	for _, k := range keys {
		counts[k]++ // irregular update
	}
	cursor := make([]uint32, maxKey)
	var sum uint32
	for i, c := range counts {
		cursor[i] = sum
		sum += c
	}
	out := make([]uint32, len(keys))
	for _, k := range keys {
		out[cursor[k]] = k // irregular non-commutative update
		cursor[k]++
	}
	return out
}

// CountingSortPB is the propagation-blocked counting sort: both the
// histogram and the scatter run through PB bins so the counter/cursor
// working set stays in cache.
func CountingSortPB(keys []uint32, maxKey int, o pb.Options) []uint32 {
	counts := pb.Histogram(keys, maxKey, o)
	cursor := make([]uint32, maxKey)
	var sum uint32
	for i, c := range counts {
		cursor[i] = sum
		sum += c
	}
	out := make([]uint32, len(keys))
	pb.Run(len(keys), maxKey,
		func(b, e int, emit func(uint32, uint32)) {
			for _, k := range keys[b:e] {
				emit(k, k)
			}
		},
		func(k uint32, v uint32) {
			out[cursor[k]] = v
			cursor[k]++
		},
		o)
	return out
}

// IsSorted reports whether keys is non-decreasing.
func IsSorted(keys []uint32) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}
