package isort

import (
	"testing"

	"cobra/internal/pb"
)

func BenchmarkSortComparison(b *testing.B) {
	src := randKeys(1, 1<<20, 1<<24)
	buf := make([]uint32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SortComparison(buf)
	}
}

func BenchmarkCountingSort(b *testing.B) {
	keys := randKeys(1, 1<<20, 1<<22)
	b.SetBytes(int64(4 * len(keys)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountingSort(keys, 1<<22)
	}
}

func BenchmarkCountingSortPB(b *testing.B) {
	keys := randKeys(1, 1<<20, 1<<22)
	b.SetBytes(int64(4 * len(keys)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountingSortPB(keys, 1<<22, pb.Options{})
	}
}
