package isort

import (
	"sort"
	"testing"
	"testing/quick"

	"cobra/internal/stats"
)

func TestRadixSortU64(t *testing.T) {
	r := stats.NewRand(1)
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	RadixSortU64(keys)
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("differs at %d", i)
		}
	}
}

func TestRadixSortU64SmallAndEdge(t *testing.T) {
	RadixSortU64(nil)
	one := []uint64{5}
	RadixSortU64(one)
	if one[0] != 5 {
		t.Fatal("singleton corrupted")
	}
	dup := []uint64{3, 3, 3, 1, 1}
	RadixSortU64(dup)
	for i, w := range []uint64{1, 1, 3, 3, 3} {
		if dup[i] != w {
			t.Fatalf("dup = %v", dup)
		}
	}
}

func TestRadixSortU64Property(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 3000)
		r := stats.NewRand(seed)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = r.Uint64() >> uint(r.Intn(60)) // varied magnitudes
		}
		RadixSortU64(keys)
		for i := 1; i < n; i++ {
			if keys[i] < keys[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixPartitionIsStablePartition(t *testing.T) {
	keys := randKeys(3, 40000, 1<<20)
	const keyBits, bits = 20, 6
	p := RadixPartition(keys, keyBits, bits)
	if p.NumPartitions() != 1<<bits {
		t.Fatalf("partitions = %d", p.NumPartitions())
	}
	if int(p.Offsets[p.NumPartitions()]) != len(keys) {
		t.Fatal("offsets do not cover input")
	}
	// Every key in partition i has top bits == i; stability holds.
	seen := 0
	for i := 0; i < p.NumPartitions(); i++ {
		part := p.Partition(i)
		var last = -1
		ptr := 0
		for _, k := range keys {
			if int(k>>(keyBits-bits)) == i {
				if ptr >= len(part) || part[ptr] != k {
					t.Fatalf("partition %d not stable at %d", i, ptr)
				}
				ptr++
			}
			_ = last
		}
		if ptr != len(part) {
			t.Fatalf("partition %d has %d extra keys", i, len(part)-ptr)
		}
		seen += len(part)
	}
	if seen != len(keys) {
		t.Fatalf("partitions hold %d of %d keys", seen, len(keys))
	}
}

func TestRadixPartitionBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bits=0")
		}
	}()
	RadixPartition([]uint32{1}, 10, 0)
}

func TestRadixSortPBMatchesComparison(t *testing.T) {
	keys := randKeys(5, 300000, 1<<24)
	want := append([]uint32(nil), keys...)
	SortComparison(want)
	got := RadixSortPB(keys, 24)
	if len(got) != len(want) {
		t.Fatal("length changed")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("differs at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if RadixSortPB(nil, 10) != nil {
		t.Fatal("empty input should return nil")
	}
}
