package isort

import (
	"testing"
	"testing/quick"

	"cobra/internal/pb"
	"cobra/internal/stats"
)

func randKeys(seed uint64, n, maxKey int) []uint32 {
	r := stats.NewRand(seed)
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(r.Intn(maxKey))
	}
	return keys
}

func TestSortComparison(t *testing.T) {
	keys := randKeys(1, 10000, 1<<20)
	SortComparison(keys)
	if !IsSorted(keys) {
		t.Fatal("not sorted")
	}
}

func TestSortComparisonParallelMatches(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1 << 14, 100001} {
		a := randKeys(2, n, 1<<24)
		b := append([]uint32(nil), a...)
		SortComparison(a)
		SortComparisonParallel(b)
		if !IsSorted(b) {
			t.Fatalf("n=%d: parallel output not sorted", n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: outputs differ at %d", n, i)
			}
		}
	}
}

func TestCountingSortMatchesComparison(t *testing.T) {
	const maxKey = 4096
	keys := randKeys(3, 50000, maxKey)
	want := append([]uint32(nil), keys...)
	SortComparison(want)
	got := CountingSort(keys, maxKey)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("differs at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestCountingSortPBProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, maxRaw uint16, bins uint8, workers uint8) bool {
		n := int(nRaw % 20000)
		maxKey := int(maxRaw%4000) + 1
		keys := randKeys(seed, n, maxKey)
		o := pb.Options{NumBins: int(bins % 33), Workers: int(workers%6) + 1}
		got := CountingSortPB(keys, maxKey, o)
		if len(got) != n || !IsSorted(got) {
			return false
		}
		// Same multiset.
		cnt := make(map[uint32]int)
		for _, k := range keys {
			cnt[k]++
		}
		for _, k := range got {
			cnt[k]--
		}
		for _, c := range cnt {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingSortEmpty(t *testing.T) {
	if out := CountingSort(nil, 10); len(out) != 0 {
		t.Fatal("phantom output")
	}
	if out := CountingSortPB(nil, 10, pb.Options{}); len(out) != 0 {
		t.Fatal("phantom PB output")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]uint32{1, 2, 2, 3}) || IsSorted([]uint32{2, 1}) || !IsSorted(nil) {
		t.Fatal("IsSorted wrong")
	}
}

func TestMerge(t *testing.T) {
	out := make([]uint32, 7)
	merge([]uint32{1, 4, 6}, []uint32{2, 3, 5, 7}, out)
	for i, w := range []uint32{1, 2, 3, 4, 5, 6, 7} {
		if out[i] != w {
			t.Fatalf("merge = %v", out)
		}
	}
	// Degenerate sides.
	out2 := make([]uint32, 2)
	merge(nil, []uint32{1, 2}, out2)
	if out2[0] != 1 || out2[1] != 2 {
		t.Fatalf("merge with empty left = %v", out2)
	}
}
