// Package tiling implements CSR-Segmenting (1D graph tiling, Zhang et
// al. [63]), the software locality optimization the paper compares PB
// against in §VII-D / Figure 15.
//
// CSR-Segmenting splits the incoming-edge graph into segments by source
// vertex range so that the source-indexed data (PageRank contributions)
// accessed while processing one segment fits in cache. Each segment
// produces partial sums per destination into a per-segment intermediate
// buffer; a merge pass accumulates the intermediates. Unlike PB, the
// per-segment sub-CSRs must be constructed up front — the significant
// initialization overhead Figure 15 charges against Tiling.
package tiling

import (
	"math"

	"cobra/internal/graph"
)

// Segmented is a graph pre-processed into 1D segments.
type Segmented struct {
	N         int
	SegRange  int // source vertices per segment
	Segments  []Segment
	InitEdges int // total edges copied during construction (init cost proxy)
}

// Segment holds the sub-CSR of edges whose SOURCE lies in
// [Lo, Hi): for each destination vertex with incoming edges from the
// range, a compact row.
type Segment struct {
	Lo, Hi  uint32
	DstIDs  []uint32 // destinations with at least one in-range source
	Offsets []uint32 // len(DstIDs)+1 into Srcs
	Srcs    []uint32 // in-range sources, grouped by destination
}

// BuildSegments constructs the segmented representation of the
// transpose graph gt (gt.Neighbors(v) = in-neighbors of v) with
// segRange source vertices per segment.
func BuildSegments(gt *graph.CSR, segRange int) *Segmented {
	if segRange <= 0 {
		segRange = gt.N
	}
	numSegs := (gt.N + segRange - 1) / segRange
	s := &Segmented{N: gt.N, SegRange: segRange, Segments: make([]Segment, numSegs)}
	// Count per-segment, per-destination in-range sources.
	counts := make([][]uint32, numSegs) // lazily allocated maps are slow; dense count array reused
	for i := range counts {
		counts[i] = make([]uint32, gt.N)
	}
	for v := uint32(0); int(v) < gt.N; v++ {
		for _, u := range gt.Neighbors(v) {
			counts[int(u)/segRange][v]++
		}
	}
	for si := 0; si < numSegs; si++ {
		seg := &s.Segments[si]
		seg.Lo = uint32(si * segRange)
		hi := (si + 1) * segRange
		if hi > gt.N {
			hi = gt.N
		}
		seg.Hi = uint32(hi)
		var totalSrcs uint32
		for v := 0; v < gt.N; v++ {
			if c := counts[si][v]; c > 0 {
				seg.DstIDs = append(seg.DstIDs, uint32(v))
				totalSrcs += c
			}
		}
		seg.Offsets = make([]uint32, len(seg.DstIDs)+1)
		var sum uint32
		for i, v := range seg.DstIDs {
			seg.Offsets[i] = sum
			sum += counts[si][v]
		}
		seg.Offsets[len(seg.DstIDs)] = sum
		seg.Srcs = make([]uint32, totalSrcs)
		s.InitEdges += int(totalSrcs)
	}
	// Fill pass.
	cursor := make([][]uint32, numSegs)
	dstSlot := make([][]int32, numSegs)
	for si := range cursor {
		cursor[si] = make([]uint32, len(s.Segments[si].DstIDs))
		copy(cursor[si], s.Segments[si].Offsets[:len(s.Segments[si].DstIDs)])
		slot := make([]int32, gt.N)
		for i := range slot {
			slot[i] = -1
		}
		for i, v := range s.Segments[si].DstIDs {
			slot[v] = int32(i)
		}
		dstSlot[si] = slot
	}
	for v := uint32(0); int(v) < gt.N; v++ {
		for _, u := range gt.Neighbors(v) {
			si := int(u) / segRange
			slot := dstSlot[si][v]
			s.Segments[si].Srcs[cursor[si][slot]] = u
			cursor[si][slot]++
		}
	}
	return s
}

// PageRank runs pull PageRank over the segmented graph until the L1
// delta falls below eps or maxIters is reached. Matches
// graph.PageRankPull results for the same iteration count.
func (s *Segmented) PageRank(outDeg []uint32, maxIters int, eps float64) ([]float64, int) {
	n := s.N
	scores := make([]float64, n)
	contrib := make([]float64, n)
	incoming := make([]float64, n)
	base := (1 - graph.PRDamping) / float64(n)
	for i := range scores {
		scores[i] = 1 / float64(n)
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		for v := 0; v < n; v++ {
			if d := outDeg[v]; d > 0 {
				contrib[v] = scores[v] / float64(d)
			} else {
				contrib[v] = 0
			}
			incoming[v] = 0
		}
		// Per-segment gather: contrib accesses stay within [Lo,Hi),
		// which fits in cache; incoming writes walk DstIDs sequentially.
		for si := range s.Segments {
			seg := &s.Segments[si]
			for i, v := range seg.DstIDs {
				sum := 0.0
				for _, u := range seg.Srcs[seg.Offsets[i]:seg.Offsets[i+1]] {
					sum += contrib[u]
				}
				incoming[v] += sum
			}
		}
		delta := 0.0
		for v := 0; v < n; v++ {
			next := base + graph.PRDamping*incoming[v]
			delta += math.Abs(next - scores[v])
			scores[v] = next
		}
		if delta < eps {
			iters++
			break
		}
	}
	return scores, iters
}
