package tiling

import (
	"math"
	"testing"

	"cobra/internal/graph"
	"cobra/internal/pb"
)

func setup(t *testing.T) (*graph.CSR, *graph.CSR, []uint32) {
	t.Helper()
	el := graph.RMAT(9, 8, 5)
	g := graph.BuildCSR(el, false, pb.Options{})
	gt := g.Transpose()
	deg := graph.DegreeCount(el)
	return g, gt, deg
}

func TestSegmentsPartitionEdges(t *testing.T) {
	_, gt, _ := setup(t)
	s := BuildSegments(gt, 64)
	total := 0
	for si := range s.Segments {
		seg := &s.Segments[si]
		total += len(seg.Srcs)
		for _, u := range seg.Srcs {
			if u < seg.Lo || u >= seg.Hi {
				t.Fatalf("segment [%d,%d) holds out-of-range source %d", seg.Lo, seg.Hi, u)
			}
		}
		if int(seg.Offsets[len(seg.DstIDs)]) != len(seg.Srcs) {
			t.Fatal("segment offsets do not cover srcs")
		}
	}
	if total != gt.M() {
		t.Fatalf("segments hold %d edges, graph has %d", total, gt.M())
	}
	if s.InitEdges != gt.M() {
		t.Fatalf("InitEdges = %d, want %d", s.InitEdges, gt.M())
	}
}

func TestSegmentedPageRankMatchesPull(t *testing.T) {
	_, gt, deg := setup(t)
	want, _ := graph.PageRankPull(gt, deg, 30, 0)
	for _, segRange := range []int{16, 64, 512, 1 << 20} {
		s := BuildSegments(gt, segRange)
		got, _ := s.PageRank(deg, 30, 0)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("segRange=%d: scores differ at %d: %g vs %g", segRange, i, got[i], want[i])
			}
		}
	}
}

func TestSegmentedPageRankConverges(t *testing.T) {
	_, gt, deg := setup(t)
	s := BuildSegments(gt, 128)
	_, iters := s.PageRank(deg, 200, graph.PREps)
	if iters == 200 {
		t.Fatal("segmented PageRank did not converge")
	}
	_, wantIters := graph.PageRankPull(gt, deg, 200, graph.PREps)
	if iters != wantIters {
		t.Fatalf("converged in %d iters, pull baseline took %d", iters, wantIters)
	}
}

func TestZeroSegRangeMeansOneSegment(t *testing.T) {
	_, gt, _ := setup(t)
	s := BuildSegments(gt, 0)
	if len(s.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(s.Segments))
	}
}

func TestSegmentsWithIsolatedVertices(t *testing.T) {
	// Vertices without incoming edges must not appear in any segment.
	el := &graph.EdgeList{N: 10, Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}}
	g := graph.BuildCSR(el, false, pb.Options{})
	gt := g.Transpose()
	s := BuildSegments(gt, 4)
	total := 0
	for si := range s.Segments {
		total += len(s.Segments[si].Srcs)
		for _, d := range s.Segments[si].DstIDs {
			if gt.Degree(d) == 0 {
				t.Fatalf("isolated vertex %d appears in a segment", d)
			}
		}
	}
	if total != 2 {
		t.Fatalf("segments hold %d edges, want 2", total)
	}
	deg := graph.DegreeCount(el)
	scores, _ := s.PageRank(deg, 10, 0)
	ref, _ := graph.PageRankPull(gt, deg, 10, 0)
	for i := range ref {
		if math.Abs(scores[i]-ref[i]) > 1e-12 {
			t.Fatalf("scores differ at %d", i)
		}
	}
}

func TestSegRangeLargerThanGraph(t *testing.T) {
	_, gt, deg := setup(t)
	s := BuildSegments(gt, gt.N*10)
	if len(s.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(s.Segments))
	}
	got, _ := s.PageRank(deg, 5, 0)
	want, _ := graph.PageRankPull(gt, deg, 5, 0)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatal("single-segment PageRank differs")
		}
	}
}
