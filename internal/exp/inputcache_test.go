package exp

import (
	"sync"
	"testing"

	"cobra/internal/graph"
)

// TestInputCacheSharesPointer: the memo must hand every caller the same
// immutable instance for the same (input, scale, seed) key.
func TestInputCacheSharesPointer(t *testing.T) {
	ResetMemos()
	a, err := CachedGraphInput("KRON", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedGraphInput("KRON", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same key returned distinct instances: %p vs %p", a, b)
	}
	if got := InputBuilds(); got != 1 {
		t.Fatalf("InputBuilds = %d, want 1 (second lookup must not regenerate)", got)
	}

	ma, err := CachedMatrixInput("RAND", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := CachedMatrixInput("RAND", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ma != mb {
		t.Fatalf("same matrix key returned distinct instances: %p vs %p", ma, mb)
	}
}

// TestInputCacheSeedSensitivity: different seeds are different keys and
// different graphs — the cache must not conflate them.
func TestInputCacheSeedSensitivity(t *testing.T) {
	ResetMemos()
	a, err := CachedGraphInput("URND", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedGraphInput("URND", 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different seeds returned the same instance")
	}
	if InputBuilds() != 2 {
		t.Fatalf("InputBuilds = %d, want 2", InputBuilds())
	}
	if len(a.Edges) == len(b.Edges) {
		diff := false
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds generated identical edge lists")
		}
	}
}

// TestInputCacheSingleFlight: concurrent first use must run the
// generator exactly once; every goroutine sees the same instance.
// Run with -race to also check the memo's synchronization.
func TestInputCacheSingleFlight(t *testing.T) {
	ResetMemos()
	const goroutines = 16
	els := make([]*graph.EdgeList, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			el, err := CachedGraphInput("KRON", 12, 3)
			if err != nil {
				t.Error(err)
				return
			}
			// Touch the data to give the race detector something to see
			// if construction escaped the single-flight.
			_ = el.Edges[0]
			els[g] = el
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if els[g] != els[0] {
			t.Fatalf("goroutine %d saw a different instance", g)
		}
	}
	if got := InputBuilds(); got != 1 {
		t.Fatalf("InputBuilds = %d, want exactly 1 under concurrent first use", got)
	}
}

// TestResetMemosForcesRebuild: after ResetMemos the next lookup must
// regenerate (fresh instance, build counter restarts).
func TestResetMemosForcesRebuild(t *testing.T) {
	ResetMemos()
	a, err := CachedGraphInput("ROAD", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	ResetMemos()
	if InputBuilds() != 0 {
		t.Fatalf("InputBuilds = %d after reset, want 0", InputBuilds())
	}
	b, err := CachedGraphInput("ROAD", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("ResetMemos did not drop the memoized instance")
	}
}
