package exp

// Input memoization. A `figures -all` run previously regenerated the
// same R-MAT/uniform/road/matrix inputs from scratch for every
// (figure, scheme) cell — O(figures x schemes) generator passes for a
// handful of distinct inputs. This cache builds each generated input
// exactly once per (input, scale, seed) key with single-flight
// construction and shares the result read-only across cells: generated
// EdgeLists and Matrices are immutable by contract (kernels and CSR
// builders only read them), so concurrent cells may alias one instance.

import (
	"sync"
	"sync/atomic"

	"cobra/internal/graph"
	"cobra/internal/obsv"
	"cobra/internal/sparse"
)

// inputKey identifies one generated input.
type inputKey struct {
	kind  string // "graph" | "matrix"
	input string
	scale int
	seed  uint64
}

// inputEntry is a single-flight construction slot: the first user runs
// the generator inside once; every other user blocks on once and then
// reads the shared, immutable result.
type inputEntry struct {
	once sync.Once
	el   *graph.EdgeList
	mat  *sparse.Matrix
	err  error
}

var (
	inputMu sync.Mutex
	inputs  = map[inputKey]*inputEntry{}

	// inputBuilds counts generator executions (not lookups) — test
	// observability for the build-exactly-once guarantee.
	inputBuilds atomic.Uint64
)

// InputBuilds returns how many generator executions have happened since
// the last ResetMemos (diagnostics and tests).
func InputBuilds() uint64 { return inputBuilds.Load() }

// ResetMemos drops every memoized input and suite result. Tests use it
// to force regeneration; long-lived callers can use it to release
// memory between unrelated campaigns.
func ResetMemos() {
	inputMu.Lock()
	inputs = map[inputKey]*inputEntry{}
	inputBuilds.Store(0)
	inputMu.Unlock()
	suiteMu.Lock()
	suiteCache = map[string][]suiteResult{}
	suiteMu.Unlock()
}

func entryFor(k inputKey) *inputEntry {
	inputMu.Lock()
	defer inputMu.Unlock()
	e := inputs[k]
	if e == nil {
		e = &inputEntry{}
		inputs[k] = e
	}
	return e
}

// CachedGraphInput returns the shared, immutable edge list for the
// named graph input, generating it on first use (single-flight: under
// concurrent first use exactly one goroutine runs the generator).
func CachedGraphInput(input string, scale int, seed uint64) (*graph.EdgeList, error) {
	e := entryFor(inputKey{"graph", input, scale, seed})
	built := false
	e.once.Do(func() {
		built = true
		inputBuilds.Add(1)
		e.el, e.err = genGraphInput(input, scale, seed)
	})
	countInputLookup(built)
	return e.el, e.err
}

// countInputLookup records an input-cache hit or miss (a miss is the
// lookup that ran the generator; waiters on the same single-flight
// entry count as hits).
func countInputLookup(built bool) {
	reg := obsv.Default()
	if reg == nil {
		return
	}
	if built {
		reg.Counter("exp.inputcache.misses").Add(1)
	} else {
		reg.Counter("exp.inputcache.hits").Add(1)
	}
}

// CachedMatrixInput returns the shared, immutable sparse matrix for the
// named matrix input, generating it on first use.
func CachedMatrixInput(input string, scale int, seed uint64) (*sparse.Matrix, error) {
	e := entryFor(inputKey{"matrix", input, scale, seed})
	built := false
	e.once.Do(func() {
		built = true
		inputBuilds.Add(1)
		e.mat, e.err = genMatrixInput(input, scale, seed)
	})
	countInputLookup(built)
	return e.mat, e.err
}
