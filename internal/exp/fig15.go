package exp

import (
	"fmt"
	"time"

	"cobra/internal/graph"
	"cobra/internal/pb"
	"cobra/internal/tiling"
)

// Fig15 regenerates Figure 15: runtime reduction of CSR-Segmenting
// (Tiling) vs Propagation Blocking for PageRank run to convergence,
// including each optimization's initialization overhead.
//
// The paper measured this on a real Xeon; we do the same thing in
// spirit — these are real wall-clock measurements of the functional Go
// implementations on the host machine, not simulations. The claims
// under test: (1) ignoring init, PB ≈ Tiling (paper: 1.35x vs 1.27x);
// (2) PB's init is far cheaper than constructing per-tile CSRs.
func Fig15(o Opts) (*Table, error) {
	t := &Table{
		ID:     "Figure 15",
		Title:  "PB vs CSR-Segmenting for PageRank to convergence (real host wall-clock)",
		Header: []string{"input", "scheme", "init-ms", "run-ms", "speedup-no-init", "speedup-with-init"},
	}
	const maxIters = 50
	// Deliberately serial: these cells are host wall-clock measurements,
	// and running them concurrently would let the schemes contend for
	// cores and caches, corrupting the very numbers under comparison.
	// Input construction still benefits from the (input, scale, seed)
	// memo shared with the simulated figures.
	for _, input := range []string{"KRON", "URND"} {
		el, err := buildGraphInput(input, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		g := graph.BuildCSR(el, false, pb.Options{})
		gt := g.Transpose()
		deg := graph.DegreeCount(el)

		// Baseline: pull PageRank (the fastest unoptimized variant).
		start := time.Now()
		baseScores, baseIters := graph.PageRankPull(gt, deg, maxIters, graph.PREps)
		baseMS := msSince(start)
		_ = baseScores

		// PB: push PageRank through propagation blocking. Init cost for
		// PB is bin allocation — it happens inside the first iteration's
		// pb.Run; we charge a one-iteration warmup delta as init.
		start = time.Now()
		pbScores, pbIters := graph.PageRankPB(g, maxIters, graph.PREps, pb.Options{})
		pbMS := msSince(start)
		_ = pbScores

		// Tiling: segment construction is the init; segments sized so
		// per-segment source data fits in cache (256 Ki vertices).
		segRange := 1 << 18
		if segRange > g.N {
			segRange = g.N
		}
		start = time.Now()
		seg := tiling.BuildSegments(gt, segRange)
		tileInitMS := msSince(start)
		start = time.Now()
		tileScores, tileIters := seg.PageRank(deg, maxIters, graph.PREps)
		tileMS := msSince(start)
		_ = tileScores

		if baseIters != pbIters || baseIters != tileIters {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: iteration counts differ (base %d, pb %d, tile %d)",
				input, baseIters, pbIters, tileIters))
		}
		t.AddRow(input, "Baseline", "0.0", f2(baseMS), "1.00x", "1.00x")
		t.AddRow(input, "PB", "0.0", f2(pbMS), fx(baseMS/pbMS), fx(baseMS/pbMS))
		t.AddRow(input, "Tiling", f2(tileInitMS), f2(tileMS),
			fx(baseMS/tileMS), fx(baseMS/(tileMS+tileInitMS)))
	}
	t.Notes = append(t.Notes,
		"paper: PB 1.35x vs Tiling 1.27x ignoring overheads; Tiling's init (per-tile CSRs) dwarfs PB's",
		"host wall-clock measurements — expect run-to-run noise")
	return t, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }
