package exp

// Checkpoint journal: crash-safe campaign resume.
//
// A full figure campaign is hours of independent simulation cells; a
// Ctrl-C, OOM kill, or panicking cell used to throw all completed work
// away. The Journal records every finished cell as one JSON line —
// keyed by a stable fingerprint of everything that determines the
// cell's metrics (figure, app, input, scale, seed, scheme, bins, arch)
// — in an append-only file that is fsync'd after every append. A
// resumed run (`figures -resume`) looks each cell up before simulating:
// hits replay the recorded sim.Metrics verbatim, so the resumed
// output is byte-identical to an uninterrupted run (Go's JSON float64
// encoding round-trips exactly, and every derived table string is a
// pure function of the metrics).
//
// Crash tolerance on the journal itself: a process killed mid-append
// leaves at most one truncated final line, which Open(resume=true)
// drops — and physically truncates away, so later appends never fuse
// with the torn bytes into interior damage. A *surviving* process
// whose append fails midway (ENOSPC, short write, failed fsync — all
// injectable via the fault registry) rolls the file back to the last
// good entry for the same reason. Corruption anywhere other than the
// tail is an error — a journal with a damaged interior is not
// trustworthy enough to skip work from.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"time"

	"cobra/internal/fault"
	"cobra/internal/fsx"
	"cobra/internal/obsv"
	"cobra/internal/sim"
)

// CellKey is the stable identity of one simulation cell. Two cells with
// equal keys are guaranteed to produce identical metrics (simulations
// are deterministic functions of these fields), so a journal hit can
// replay the recorded result.
type CellKey struct {
	Figure string // campaign unit ("suite", "Figure 4", "Ablation A2", ...)
	App    string
	Input  string
	Scale  int
	Seed   uint64
	Scheme string // scheme plus any variant knobs ("COBRA[evict=8]")
	Bins   int
	Cores  int    // simulated core count (0 and 1 both mean single-core)
	Arch   string // ArchFingerprint of the cell's architecture
	// Window identifies one window of a streamed run, 1-based; 0 means
	// an offline (whole-workload) cell. Windows checkpoint individually,
	// so a killed streamed run resumes at window granularity.
	Window int
}

// fingerprint renders the key as the canonical journal string. Cores
// is folded to its effective value (0 -> 1) so callers that never set
// it produce the same key as callers that spell out single-core. The
// window suffix appears only for streamed windows, keeping every
// offline fingerprint byte-identical to the pre-streaming format.
func (k CellKey) fingerprint() string {
	cores := k.Cores
	if cores <= 1 {
		cores = 1
	}
	fp := fmt.Sprintf("fig=%s|app=%s|in=%s|scale=%d|seed=%d|scheme=%s|bins=%d|cores=%d|arch=%s",
		k.Figure, k.App, k.Input, k.Scale, k.Seed, k.Scheme, k.Bins, cores, k.Arch)
	if k.Window > 0 {
		fp += fmt.Sprintf("|win=%d", k.Window)
	}
	return fp
}

// Fingerprint is the exported form of the canonical cell identity
// string. The cobrad service keys its content-addressed result cache
// on it, so a service cache journal and a figures checkpoint journal
// share one address space (and one on-disk format).
func (k CellKey) Fingerprint() string { return k.fingerprint() }

// ArchFingerprint digests an architecture configuration into a short
// stable token. Any config change (cache geometry, policies, MSHRs,
// NUCA, prefetcher) changes the fingerprint, so checkpoints recorded
// under one architecture are never replayed under another.
func ArchFingerprint(a sim.Arch) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", a)
	return fmt.Sprintf("%016x", h.Sum64())
}

// journalEntry is one line of the JSONL journal.
type journalEntry struct {
	K string      `json:"k"`
	M sim.Metrics `json:"m"`
}

// ErrJournalCorrupt reports interior damage in a checkpoint journal
// (anything other than a truncated final line).
var ErrJournalCorrupt = errors.New("exp: checkpoint journal corrupt")

// Journal is the append-only, fsync'd record of completed cells.
// Safe for concurrent use by parallel cells.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	cells map[string]sim.Metrics

	// size is the length of the durable, well-formed prefix. A failed
	// append truncates back to it, so the on-disk journal is damaged in
	// at most its final (in-flight) line at any instant.
	size   int64
	broken error // a rollback that itself failed; journal unusable

	replayed uint64 // lookups served from the journal
	recorded uint64 // cells appended this run

	// onRecord, when set, observes the total number of appends after
	// each Record — the test hook that cancels a campaign after exactly
	// K completed cells.
	onRecord func(total uint64)
}

// OpenJournal opens (or creates) the journal at path. With resume=true
// any existing entries are loaded and will be replayed; with
// resume=false an existing journal is discarded and the campaign
// starts from scratch.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{path: path, cells: map[string]sim.Metrics{}}
	if resume {
		scan, err := scanJournal(path)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		if scan != nil {
			j.cells = scan.cells
			j.size = scan.goodSize
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: opening checkpoint journal: %w", err)
	}
	// Physically drop any torn tail before the first append: O_APPEND
	// writes land at EOF, and a new entry fused onto half a line would
	// turn a tolerable torn tail into refused interior corruption on
	// the next resume.
	if resume {
		if err := f.Truncate(j.size); err != nil {
			f.Close()
			return nil, fmt.Errorf("exp: dropping torn checkpoint tail: %w", err)
		}
	}
	j.f = f
	return j, nil
}

// journalScan is the result of reading a journal file tolerantly:
// every complete well-formed line, the byte length of that good
// prefix, and whether a torn tail was dropped.
type journalScan struct {
	order    []string // keys in first-appearance order (for compaction)
	cells    map[string]sim.Metrics
	entries  int   // complete entries parsed (duplicates included)
	goodSize int64 // bytes of intact prefix
	torn     bool  // a trailing partial or damaged line was dropped
}

// scanJournal reads every complete entry from a journal file. A
// truncated or damaged final line (crash or torn write mid-append) is
// tolerated, reported via torn, and excluded from goodSize; damage
// anywhere else is ErrJournalCorrupt. A missing file propagates
// os.ErrNotExist.
func scanJournal(path string) (*journalScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("exp: reading checkpoint journal: %w", err)
	}
	scan := &journalScan{cells: map[string]sim.Metrics{}}
	lineNo := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated trailing bytes: a crash mid-append.
			scan.torn = true
			break
		}
		line := data[off : off+nl]
		end := off + nl + 1
		lineNo++
		if len(line) > 0 {
			var e journalEntry
			if err := json.Unmarshal(line, &e); err != nil || e.K == "" {
				if end == len(data) {
					// Complete-but-damaged final line (e.g. a torn write
					// whose partial bytes happened to end in '\n', or a
					// crashed writer interleaving) — drop it like an
					// unterminated tail; the cell re-runs.
					scan.torn = true
					break
				}
				return nil, fmt.Errorf("%w: %s line %d", ErrJournalCorrupt, path, lineNo)
			}
			if _, seen := scan.cells[e.K]; !seen {
				scan.order = append(scan.order, e.K)
			}
			scan.cells[e.K] = e.M
			scan.entries++
		}
		scan.goodSize = int64(end)
		off = end
	}
	return scan, nil
}

// Lookup returns the recorded metrics for key, if the cell already
// completed in a previous (or the current) run.
func (j *Journal) Lookup(key CellKey) (sim.Metrics, bool) {
	fp := key.fingerprint()
	j.mu.Lock()
	defer j.mu.Unlock()
	m, ok := j.cells[fp]
	if ok {
		j.replayed++
	}
	return m, ok
}

// Record appends one completed cell and fsyncs the journal, so the
// entry survives any subsequent crash. Append-only + O_APPEND keeps
// concurrent recorders from interleaving partial lines. A failed
// append (ENOSPC, short write, failed fsync — each behind a named
// fault injection point) rolls the file back to the last good entry,
// so an error can cost at most the entry being written, never the
// journal prefix.
func (j *Journal) Record(key CellKey, m sim.Metrics) error {
	line, err := json.Marshal(journalEntry{K: key.fingerprint(), M: m})
	if err != nil {
		return fmt.Errorf("exp: encoding checkpoint entry: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return fmt.Errorf("exp: checkpoint journal unusable after failed rollback: %w", j.broken)
	}
	if _, err := fault.Writer(fault.PointJournalAppend, io.Writer(j.f)).Write(line); err != nil {
		return j.rollback("appending checkpoint entry", err)
	}
	if err := fault.Hit(fault.PointJournalSync); err != nil {
		return j.rollback("syncing checkpoint journal", err)
	}
	if err := j.f.Sync(); err != nil {
		return j.rollback("syncing checkpoint journal", err)
	}
	j.size += int64(len(line))
	j.cells[key.fingerprint()] = m
	j.recorded++
	if j.onRecord != nil {
		j.onRecord(j.recorded)
	}
	return nil
}

// rollback restores the journal to its last good prefix after a failed
// append and returns the classified append error. If the truncate
// itself fails the journal is marked unusable — better to refuse
// further appends than to fuse new entries onto torn bytes. Caller
// holds j.mu.
func (j *Journal) rollback(stage string, cause error) error {
	cause = fmt.Errorf("exp: %s: %w", stage, fsx.WrapDiskFull(cause))
	if terr := j.f.Truncate(j.size); terr != nil {
		j.broken = fmt.Errorf("%v (rollback failed: %v)", cause, terr)
		return j.broken
	}
	return cause
}

// Len returns the number of distinct completed cells known.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Stats reports how many cells were replayed from the journal and how
// many were newly recorded during this run.
func (j *Journal) Stats() (replayed, recorded uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed, j.recorded
}

// Close flushes and closes the journal file. The journal must not be
// used afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// journaled runs one simulation cell through o's checkpoint journal
// and (optionally) its remote runner: a journal hit replays the
// recorded metrics without simulating; a miss offers the cell to
// o.Remote and falls back to the local simulator when the remote
// declines it; either way the result is recorded durably before
// returning. Without a journal or remote it is a plain call. Common
// key fields (Scale, Seed, Arch) are filled from o unless the caller
// already set them (ablations pass an explicit fingerprint for their
// modified architectures).
func (o Opts) journaled(k CellKey, run func() (sim.Metrics, error)) (sim.Metrics, error) {
	if o.Journal == nil && o.Remote == nil {
		return o.observed(k, run)
	}
	k.Scale, k.Seed = o.Scale, o.Seed
	if k.Cores == 0 {
		k.Cores = o.Arch.Cores()
	}
	if k.Arch == "" {
		k.Arch = ArchFingerprint(o.Arch)
	}
	if o.Journal != nil {
		if m, ok := o.Journal.Lookup(k); ok {
			obsv.Default().Counter("exp.checkpoint.replayed").Add(1)
			o.Progress.Replayed()
			o.Events.Emit("cell_replay", cellFields(k, 0, nil))
			return m, nil
		}
	}
	m, ran, err := o.remote(k)
	if !ran {
		m, err = o.observed(k, run)
	}
	if err != nil {
		return m, err
	}
	if o.Journal != nil {
		if err := o.Journal.Record(k, m); err != nil {
			return m, err
		}
		obsv.Default().Counter("exp.checkpoint.recorded").Add(1)
	}
	return m, nil
}

// remote offers one cell to o.Remote. ran=false means the cell was
// declined (or no remote is configured) and must run locally; a
// declined cell never carries an error.
func (o Opts) remote(k CellKey) (m sim.Metrics, ran bool, err error) {
	if o.Remote == nil {
		return sim.Metrics{}, false, nil
	}
	start := time.Now()
	m, ok, err := o.Remote.RunCell(o.ctx(), k)
	if !ok {
		obsv.Default().Counter("exp.cells.remote_declined").Add(1)
		return sim.Metrics{}, false, nil
	}
	elapsed := time.Since(start)
	if reg := obsv.Default(); reg != nil {
		reg.Counter("exp.cells.remote").Add(1)
		reg.Histogram("exp.cell.remote_wall").Observe(elapsed)
	}
	if err != nil {
		o.Events.Emit("cell_remote_error", cellFields(k, elapsed, err))
	} else {
		o.Events.Emit("cell_remote", cellFields(k, elapsed, nil))
	}
	return m, true, err
}

// observed runs one simulation cell with per-cell observability: the
// simulation-only latency histogram ("exp.cell.sim_wall" — the pool's
// "exp.cell.wall" also covers replays and app builds) and a cell_done
// / cell_error event carrying the cell identity and latency. With
// observability disabled it is a plain call.
func (o Opts) observed(k CellKey, run func() (sim.Metrics, error)) (sim.Metrics, error) {
	reg := obsv.Default()
	if reg == nil && o.Events == nil {
		return run()
	}
	start := time.Now()
	m, err := run()
	elapsed := time.Since(start)
	if reg != nil {
		reg.Histogram("exp.cell.sim_wall").Observe(elapsed)
	}
	if err != nil {
		o.Events.Emit("cell_error", cellFields(k, elapsed, err))
	} else {
		o.Events.Emit("cell_done", cellFields(k, elapsed, nil))
	}
	return m, err
}

// cellFields renders a cell identity (plus optional latency and error)
// as JSONL event fields.
func cellFields(k CellKey, elapsed time.Duration, err error) map[string]any {
	f := map[string]any{
		"figure": k.Figure,
		"app":    k.App,
		"input":  k.Input,
		"scheme": k.Scheme,
	}
	if k.Bins != 0 {
		f["bins"] = k.Bins
	}
	if elapsed > 0 {
		f["ms"] = float64(elapsed.Microseconds()) / 1000
	}
	if err != nil {
		f["error"] = err.Error()
	}
	return f
}
