// Package exp defines the experiment registry and the per-figure
// drivers that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index).
package exp

import (
	"fmt"
	"sort"
	"strings"

	"cobra/internal/graph"
	"cobra/internal/kernels"
	"cobra/internal/pb"
	"cobra/internal/sim"
	"cobra/internal/sparse"
	"cobra/internal/stats"
)

// appBuilder constructs a workload at the given scale.
type appBuilder func(input string, scale int, seed uint64) (*sim.App, error)

// buildGraphInput returns the named graph input, memoized per
// (input, scale, seed) — see inputcache.go.
func buildGraphInput(input string, scale int, seed uint64) (*graph.EdgeList, error) {
	return CachedGraphInput(input, scale, seed)
}

// buildMatrixInput returns the named sparse-matrix input, memoized per
// (input, scale, seed).
func buildMatrixInput(input string, scale int, seed uint64) (*sparse.Matrix, error) {
	return CachedMatrixInput(input, scale, seed)
}

// genGraphInput generates the named graph input (stand-ins for the
// paper's Table III inputs; see internal/graph). Callers want the
// memoized buildGraphInput instead.
func genGraphInput(input string, scale int, seed uint64) (*graph.EdgeList, error) {
	switch input {
	case "KRON":
		return graph.RMAT(scale, 16, seed), nil
	case "TWIT":
		return graph.RMATParams(scale, 12, 0.65, 0.15, 0.15, seed+2), nil
	case "URND":
		n := 1 << scale
		return graph.Uniform(n, 16*n, seed+1), nil
	case "ROAD":
		side := 1 << ((scale + 1) / 2)
		return graph.Grid(side, 1<<(scale/2), 0.05, seed+3), nil
	default:
		return nil, fmt.Errorf("exp: unknown graph input %q (want KRON, TWIT, URND, ROAD)", input)
	}
}

// genMatrixInput generates the named sparse-matrix input.
func genMatrixInput(input string, scale int, seed uint64) (*sparse.Matrix, error) {
	n := 1 << scale
	switch input {
	case "STEN": // HPCG-style stencil (simulation problems)
		side := 1 << (scale / 2)
		return sparse.Stencil5(side), nil
	case "RAND": // optimization problems
		return sparse.RandomSparse(n, n, 8, seed+4), nil
	case "SKEW": // power-law columns
		return sparse.SkewedSparse(n, n, 8, seed+5), nil
	case "BAND":
		return sparse.Banded(n, 8, 1<<(scale/2), seed+6), nil
	default:
		return nil, fmt.Errorf("exp: unknown matrix input %q (want STEN, RAND, SKEW, BAND)", input)
	}
}

var appBuilders = map[string]appBuilder{
	"DegreeCount": func(input string, scale int, seed uint64) (*sim.App, error) {
		el, err := buildGraphInput(input, scale, seed)
		if err != nil {
			return nil, err
		}
		return kernels.DegreeCount(el, input), nil
	},
	"NeighborPopulate": func(input string, scale int, seed uint64) (*sim.App, error) {
		el, err := buildGraphInput(input, scale, seed)
		if err != nil {
			return nil, err
		}
		return kernels.NeighborPopulate(el, input), nil
	},
	"PageRank": func(input string, scale int, seed uint64) (*sim.App, error) {
		el, err := buildGraphInput(input, scale, seed)
		if err != nil {
			return nil, err
		}
		return kernels.PageRank(graph.BuildCSR(el, false, pb.Options{}), input), nil
	},
	"Radii": func(input string, scale int, seed uint64) (*sim.App, error) {
		el, err := buildGraphInput(input, scale, seed)
		if err != nil {
			return nil, err
		}
		return kernels.Radii(graph.BuildCSR(el, false, pb.Options{}), input), nil
	},
	"IntSort": func(input string, scale int, seed uint64) (*sim.App, error) {
		// Input selects the max key value relative to key count (the
		// paper varies maximum key values): SMALLKEY = 2^(scale-2),
		// BIGKEY = 2^scale.
		n := 4 << scale
		switch input {
		case "SMALLKEY":
			return kernels.IntSort(n, 1<<(scale-2), seed+7, input), nil
		case "BIGKEY", "URND", "KRON", "TWIT", "ROAD":
			return kernels.IntSort(n, 1<<scale, seed+7, "BIGKEY"), nil
		default:
			return nil, fmt.Errorf("exp: unknown IntSort input %q (want SMALLKEY, BIGKEY)", input)
		}
	},
	"SpMV": func(input string, scale int, seed uint64) (*sim.App, error) {
		m, err := buildMatrixInput(input, scale, seed)
		if err != nil {
			return nil, err
		}
		return kernels.SpMV(m, input), nil
	},
	"Transpose": func(input string, scale int, seed uint64) (*sim.App, error) {
		m, err := buildMatrixInput(input, scale, seed)
		if err != nil {
			return nil, err
		}
		return kernels.Transpose(m, input), nil
	},
	"PINV": func(input string, scale int, seed uint64) (*sim.App, error) {
		perm := stats.NewRand(seed + 8).Perm(1 << scale)
		return kernels.PINV(perm, "PERM"), nil
	},
	"SymPerm": func(input string, scale int, seed uint64) (*sim.App, error) {
		m, err := buildMatrixInput(input, scale, seed)
		if err != nil {
			return nil, err
		}
		perm := stats.NewRand(seed + 9).Perm(m.Rows)
		return kernels.SymPerm(m, perm, input), nil
	},
}

// AppNames returns the registered workload names, sorted.
func AppNames() []string {
	names := make([]string, 0, len(appBuilders))
	for n := range appBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InputNames returns the canonical input names.
func InputNames() []string {
	return []string{"KRON", "TWIT", "URND", "ROAD", "STEN", "RAND", "SKEW", "BAND", "SMALLKEY", "BIGKEY", "PERM"}
}

// ValidApp reports whether name is a registered workload, with an
// error naming the valid set — the shared validation for CLI flags
// and service job specs.
func ValidApp(name string) error {
	if _, ok := appBuilders[name]; !ok {
		return fmt.Errorf("exp: unknown workload %q (want one of %v)", name, AppNames())
	}
	return nil
}

// ValidInput reports whether name is a canonical input name, with an
// error naming the valid set.
func ValidInput(name string) error {
	for _, n := range InputNames() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("exp: unknown input %q (want one of %v)", name, InputNames())
}

// SchemeNames returns the canonical execution-scheme names in
// presentation order (Figure 10's bars plus the §VII-C
// specializations). Both CLIs and the cobrad service validate
// user-supplied scheme names against this list via ParseScheme.
func SchemeNames() []string {
	return []string{
		string(sim.SchemeBaseline),
		string(sim.SchemePBSW),
		string(sim.SchemePBIdeal),
		string(sim.SchemeCOBRA),
		string(sim.SchemeComm),
		string(sim.SchemePHI),
	}
}

// ParseScheme validates a user-supplied scheme name, returning the
// typed scheme or an error naming the valid set. Validation is strict
// (exact case): wire formats and checkpoint fingerprints both key on
// the canonical spelling.
func ParseScheme(name string) (sim.Scheme, error) {
	for _, s := range SchemeNames() {
		if name == s {
			return sim.Scheme(s), nil
		}
	}
	return "", fmt.Errorf("exp: unknown scheme %q (want one of %s)", name, strings.Join(SchemeNames(), ", "))
}

// GraphApps lists workloads that take graph inputs.
func GraphApps() []string {
	return []string{"DegreeCount", "NeighborPopulate", "PageRank", "Radii"}
}

// MatrixApps lists workloads that take matrix inputs.
func MatrixApps() []string { return []string{"SpMV", "Transpose", "SymPerm"} }

// Scale bounds accepted by BuildApp. Below MinScale the generators'
// shift arithmetic degenerates (IntSort's SMALLKEY range needs
// scale-2 bits); above MaxScale a single input is tens of GiB of
// update stream — far past anything the simulated 1/16th-machine
// models, and an easy way for a service caller to OOM the process.
const (
	MinScale = 4
	MaxScale = 30
)

// BuildApp constructs a workload by name at the given scale. The
// scale must lie in [MinScale, MaxScale]; out-of-range values are a
// validation error, never a shift panic or an OOM.
func BuildApp(name, input string, scale int, seed uint64) (*sim.App, error) {
	b, ok := appBuilders[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown workload %q (want one of %v)", name, AppNames())
	}
	if scale < MinScale || scale > MaxScale {
		return nil, fmt.Errorf("exp: scale %d out of range [%d, %d]", scale, MinScale, MaxScale)
	}
	return b(input, scale, seed)
}

// BinSweep is the bin-count sweep used to pick PB-SW's best bin count,
// exactly as the paper does ("we simulated multiple bin ranges for PB,
// selecting the best bin range for each workload and input pair").
var BinSweep = []int{16, 256, 4096, 16384, 65536}

// validBins enumerates the sweep's bin counts applicable to app (the
// independent cells of a sweep). A key range smaller than every sweep
// point degenerates to a single 1-bin run, as before.
func validBins(app *sim.App) []int {
	var out []int
	for _, bins := range BinSweep {
		if bins > app.NumKeys {
			break
		}
		out = append(out, bins)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// BestPBSW sweeps bin counts and returns the fastest PB-SW run plus the
// whole sweep (Figure 4's raw data). The sweep cells run on the default
// worker pool (one worker per CPU); use BestPBSWN to bound it.
func BestPBSW(app *sim.App, arch sim.Arch) (best sim.Metrics, sweep []sim.Metrics, err error) {
	return BestPBSWN(app, arch, 0)
}

// BestPBSWN is BestPBSW on a bounded pool: the sweep's independent
// (bin-count) cells run on at most `workers` goroutines (0 =
// GOMAXPROCS, 1 = serial). The sweep slice is ordered by bin count and
// `best` is the first strict minimum, regardless of schedule.
func BestPBSWN(app *sim.App, arch sim.Arch, workers int) (best sim.Metrics, sweep []sim.Metrics, err error) {
	bins := validBins(app)
	sweep, err = MapCells(workers, len(bins), func(i int) (sim.Metrics, error) {
		return sim.RunPBSW(app, bins[i], arch)
	})
	if err != nil {
		return sim.Metrics{}, nil, err
	}
	for _, m := range sweep {
		if best.Cycles == 0 || m.Cycles < best.Cycles {
			best = m
		}
	}
	return best, sweep, nil
}

// BestIdealPB composes PB-SW-IDEAL from a sweep: the fastest Binning
// phase paired with the fastest Accumulate phase (Figure 5).
func BestIdealPB(sweep []sim.Metrics) sim.Metrics {
	if len(sweep) == 0 {
		return sim.Metrics{}
	}
	bestBin, bestAcc := sweep[0], sweep[0]
	for _, m := range sweep[1:] {
		if m.BinCycles < bestBin.BinCycles {
			bestBin = m
		}
		if m.AccumCycles < bestAcc.AccumCycles {
			bestAcc = m
		}
	}
	return sim.IdealPB(bestBin, bestAcc)
}

// RunScheme executes one scheme by name; bins <= 0 triggers the PB-SW
// sweep (and PB-SW's best bin count is reused for PHI).
func RunScheme(app *sim.App, scheme sim.Scheme, bins int, arch sim.Arch) (sim.Metrics, error) {
	switch scheme {
	case sim.SchemeBaseline:
		return sim.RunBaseline(app, arch)
	case sim.SchemePBSW:
		if bins > 0 {
			return sim.RunPBSW(app, bins, arch)
		}
		best, _, err := BestPBSW(app, arch)
		return best, err
	case sim.SchemePBIdeal:
		_, sweep, err := BestPBSW(app, arch)
		if err != nil {
			return sim.Metrics{}, err
		}
		return BestIdealPB(sweep), nil
	case sim.SchemeCOBRA:
		return sim.RunCOBRA(app, sim.CobraOpt{}, arch)
	case sim.SchemeComm:
		return sim.RunCOBRA(app, sim.CobraOpt{Coalesce: true}, arch)
	case sim.SchemePHI:
		if bins <= 0 {
			best, _, err := BestPBSW(app, arch)
			if err != nil {
				return sim.Metrics{}, err
			}
			bins = best.NumBins
		}
		return sim.RunPHI(app, bins, arch)
	default:
		return sim.Metrics{}, fmt.Errorf("exp: unknown scheme %q", scheme)
	}
}
