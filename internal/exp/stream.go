package exp

// Streaming surface of the experiment layer: the stream workload
// family in the registry, the journaled streamed-run driver, and the
// windows-vs-locality figure. See internal/stream for the engine and
// its determinism contract.

import (
	"fmt"

	"cobra/internal/obsv"
	"cobra/internal/sim"
	"cobra/internal/stream"
)

// StreamApps lists the streaming workload family.
func StreamApps() []string { return []string{"StreamDelta", "StreamIngest"} }

// IsStreamApp reports whether name is a streaming workload.
func IsStreamApp(name string) bool {
	return name == "StreamIngest" || name == "StreamDelta"
}

// streamWorkload maps registry names onto a stream.Workload. URND
// streams uniformly random keys; SKEW concentrates update mass on a
// power-law hot set.
func streamWorkload(app, input string, scale int, seed uint64, windows, windowUpdates int) (stream.Workload, error) {
	w := stream.Workload{
		Name:          app,
		InputName:     input,
		NumKeys:       1 << scale,
		Windows:       windows,
		WindowUpdates: windowUpdates,
		Seed:          seed,
	}
	switch app {
	case "StreamIngest":
		w.Kind = stream.KindIngest
	case "StreamDelta":
		w.Kind = stream.KindDelta
	default:
		return stream.Workload{}, fmt.Errorf("exp: unknown streaming workload %q (want one of %v)", app, StreamApps())
	}
	switch input {
	case "URND":
		w.Dist = stream.DistUniform
	case "SKEW":
		w.Dist = stream.DistSkewed
	default:
		return stream.Workload{}, fmt.Errorf("exp: unknown stream input %q (want URND, SKEW)", input)
	}
	return w, w.Validate()
}

// The stream family registers like any other workload, so BuildApp
// serves it to every offline consumer (cobrad jobs, the fleet, ad-hoc
// cobrasim runs) as the concatenated update sequence at the default
// window geometry — exactly the oracle the streamed run must match.
func init() {
	builder := func(app string) appBuilder {
		return func(input string, scale int, seed uint64) (*sim.App, error) {
			w, err := streamWorkload(app, input, scale, seed, DefaultStreamWindows, DefaultWindowUpdates(scale))
			if err != nil {
				return nil, err
			}
			return w.App(), nil
		}
	}
	for _, app := range StreamApps() {
		appBuilders[app] = builder(app)
	}
}

// RunStream executes one streamed scheme cell of a normalized stream
// spec under o's campaign controls: windows checkpoint individually
// through o.Journal (keyed by CellKey.Window, 1-based), replays count
// toward the progress line, and each window emits a window_done /
// window_replay event. The returned result carries per-window metrics,
// the MergeMetrics fold, and the final functional state.
func RunStream(o Opts, figure string, spec RunSpec, scheme sim.SchemeID) (*stream.Result, error) {
	w, err := spec.StreamWorkload()
	if err != nil {
		return nil, err
	}
	base := spec.CellKey(figure, scheme, o.Arch)
	cfg := stream.Config{
		Scheme: scheme.Scheme(),
		Bins:   spec.Bins,
		Arch:   spec.Arch(o.Arch),
		Ctx:    o.Ctx,
	}
	if o.Journal != nil {
		cfg.Lookup = func(i int) (sim.Metrics, bool) {
			k := base
			k.Window = i + 1
			return o.Journal.Lookup(k)
		}
		cfg.Record = func(i int, m sim.Metrics) error {
			k := base
			k.Window = i + 1
			if err := o.Journal.Record(k, m); err != nil {
				return err
			}
			obsv.Default().Counter("exp.checkpoint.recorded").Add(1)
			return nil
		}
	}
	cfg.OnWindow = func(i int, m sim.Metrics, replayed bool) {
		k := base
		k.Window = i + 1
		if replayed {
			obsv.Default().Counter("exp.checkpoint.replayed").Add(1)
			obsv.Default().Counter("exp.stream.windows_replayed").Add(1)
			o.Progress.Replayed()
			o.Events.Emit("window_replay", windowFields(k, i, w.Windows))
			return
		}
		obsv.Default().Counter("exp.stream.windows_done").Add(1)
		o.Events.Emit("window_done", windowFields(k, i, w.Windows))
	}
	return stream.Run(w, cfg)
}

// windowFields renders one window identity as JSONL event fields.
func windowFields(k CellKey, i, total int) map[string]any {
	return map[string]any{
		"figure": k.Figure,
		"app":    k.App,
		"input":  k.Input,
		"scheme": k.Scheme,
		"window": i + 1,
		"of":     total,
	}
}

// streamSpec assembles the RunSpec for one FigStream cell from the
// campaign options.
func (o Opts) streamSpec(app, input string, scheme sim.SchemeID) RunSpec {
	windows := o.StreamWindows
	if windows <= 0 {
		windows = DefaultStreamWindows
	}
	wu := o.StreamWindowUpdates
	if wu <= 0 {
		wu = DefaultWindowUpdates(o.Scale)
	}
	return RunSpec{
		App: app, Input: input,
		Scale: o.Scale, Seed: o.Seed,
		Schemes: []sim.SchemeID{scheme},
		Cores:   o.Arch.Cores(),
		Kind:    KindStream,
		Windows: windows, WindowUpdates: wu,
	}
}

// FigStream regenerates the streaming figure: windows-vs-locality for
// the streamable schemes over the stream workload family. Each cell is
// one full streamed run; the per-window columns show whether a
// scheme's locality holds up window over window (it does — window
// metrics are independent of accumulated state), and the merged
// columns compare schemes at the streaming epoch geometry, where PB's
// offline best-bin sweep is unavailable.
func FigStream(o Opts) (*Table, error) {
	t := &Table{
		ID:     "Stream",
		Title:  "Streaming irregular updates: per-window locality by scheme",
		Header: []string{"app", "input", "scheme", "windows", "LLC-miss", "first-win", "last-win", "DRAM-lines/upd", "cyc/upd"},
	}
	pairs := []pair{
		{"StreamIngest", "URND"},
		{"StreamIngest", "SKEW"},
		{"StreamDelta", "SKEW"},
	}
	schemes := []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDPBSW, sim.SchemeIDCOBRA, sim.SchemeIDPHI}
	type cell struct {
		p pair
		s sim.SchemeID
	}
	var cells []cell
	for _, p := range pairs {
		for _, s := range schemes {
			cells = append(cells, cell{p, s})
		}
	}
	rs, err := mapCells(o, len(cells), func(i int) (*stream.Result, error) {
		c := cells[i]
		return RunStream(o, "stream", o.streamSpec(c.p.App, c.p.Input, c.s), c.s)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		r := rs[i]
		m := r.Merged
		spec := o.streamSpec(c.p.App, c.p.Input, c.s)
		total := float64(spec.Windows) * float64(spec.WindowUpdates)
		first, last := r.PerWindow[0], r.PerWindow[len(r.PerWindow)-1]
		t.AddRow(c.p.App, c.p.Input, string(c.s.Scheme()),
			fmt.Sprintf("%d", len(r.PerWindow)),
			fp(m.LLCMissRate), fp(first.LLCMissRate), fp(last.LLCMissRate),
			f2(float64(m.DRAM.ReadLines+m.DRAM.WriteLines)/total),
			f2(m.Cycles/total))
	}
	t.Notes = append(t.Notes,
		"each run streams its updates in windows; per-window metrics merge via the MergeMetrics laws",
		"(cycles max-fold: the slowest window bounds a pipelined steady state; traffic and counters sum)",
		"first-win vs last-win: window locality is stationary — metrics are independent of accumulated state")
	return t, nil
}
