package exp

// Golden-snapshot regression test for the simulator's numeric outputs.
// Every execution scheme runs a fixed s12 workload at 1 and 16 cores,
// and the full Metrics structs must match the checked-in JSON byte for
// byte. Any timing-model change — intended or not — shows up as a
// golden diff; intended changes regenerate with
//
//	go test ./internal/exp -run TestGoldenMetrics -update
//
// and the diff is reviewed like any other source change. The 1-core
// rows double as the multi-core work's byte-identity contract: they
// may never change in a PR that only touches the sharded path.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cobra/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden snapshot files with current outputs")

const goldenPath = "testdata/golden_s12.json"

// goldenRow is one (scheme, cores) cell of the snapshot.
type goldenRow struct {
	Scheme  string      `json:"scheme"`
	Cores   int         `json:"cores"`
	Metrics sim.Metrics `json:"metrics"`
}

func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("golden snapshot skipped in -short mode")
	}
	const (
		appName = "DegreeCount"
		input   = "URND"
		scale   = 12
		seed    = 42
		bins    = 256 // fixed so PB-SW and PHI skip the sweep
	)
	app, err := BuildApp(appName, input, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	var rows []goldenRow
	for _, name := range SchemeNames() {
		for _, cores := range []int{1, 16} {
			arch := sim.DefaultArch().WithCores(cores)
			m, err := RunScheme(app, sim.Scheme(name), bins, arch)
			if err != nil {
				t.Fatalf("%s cores=%d: %v", name, cores, err)
			}
			rows = append(rows, goldenRow{Scheme: name, Cores: cores, Metrics: m})
		}
	}
	got, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d rows)", goldenPath, len(rows))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("metrics diverge from golden snapshot %s\n%s\n(regenerate with -update only for intended timing-model changes)",
			goldenPath, goldenDiff(want, got))
	}
}

// goldenDiff names the first diverging golden row and line so the
// failure is actionable without an external diff tool.
func goldenDiff(want, got []byte) string {
	var w, g []goldenRow
	if json.Unmarshal(want, &w) == nil && json.Unmarshal(got, &g) == nil && len(w) == len(g) {
		for i := range w {
			if w[i].Metrics != g[i].Metrics || w[i].Scheme != g[i].Scheme || w[i].Cores != g[i].Cores {
				return fmt.Sprintf("first diverging row: %s cores=%d\nwant %+v\ngot  %+v",
					w[i].Scheme, w[i].Cores, w[i].Metrics, g[i].Metrics)
			}
		}
	}
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first diverging line %d:\nwant %s\ngot  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d bytes, got %d bytes", len(want), len(got))
}
