package exp

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cobra/internal/fault"
	"cobra/internal/fsx"
	"cobra/internal/sim"
)

func TestCellKeyFingerprint(t *testing.T) {
	a := CellKey{Figure: "suite", App: "PageRank", Input: "KRON", Scale: 20, Seed: 42, Scheme: "PB-SW", Bins: 256, Arch: "abc"}
	b := a
	if a.fingerprint() != b.fingerprint() {
		t.Fatal("equal keys, different fingerprints")
	}
	b.Bins = 4096
	if a.fingerprint() == b.fingerprint() {
		t.Fatal("bin count not part of the fingerprint")
	}
	c := a
	c.Arch = "def"
	if a.fingerprint() == c.fingerprint() {
		t.Fatal("arch not part of the fingerprint")
	}
}

func TestArchFingerprintSensitivity(t *testing.T) {
	a := sim.DefaultArch()
	b := sim.DefaultArch()
	if ArchFingerprint(a) != ArchFingerprint(b) {
		t.Fatal("identical archs, different fingerprints")
	}
	b.CPU.MSHRs++
	if ArchFingerprint(a) == ArchFingerprint(b) {
		t.Fatal("MSHR change not reflected in arch fingerprint")
	}
}

func TestJournalRecordReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	k1 := CellKey{Figure: "f", App: "A", Input: "I", Scale: 12, Seed: 7, Scheme: "Baseline", Arch: "x"}
	k2 := k1
	k2.Scheme, k2.Bins = "PB-SW", 256
	m1 := sim.Metrics{App: "A", Cycles: 123.456789012345, NumBins: 1}
	m2 := sim.Metrics{App: "A", Cycles: 9.87e12, NumBins: 256}
	m2.Ctr.Instructions = 1<<63 + 12345 // must survive JSON exactly (not via float64)
	if err := j.Record(k1, m1); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(k2, m2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("reloaded %d cells, want 2", r.Len())
	}
	got, ok := r.Lookup(k2)
	if !ok {
		t.Fatal("k2 missing after reload")
	}
	if got.Cycles != m2.Cycles || got.Ctr.Instructions != m2.Ctr.Instructions || got.NumBins != 256 {
		t.Fatalf("metrics changed across the journal: %+v", got)
	}
	if _, ok := r.Lookup(CellKey{Figure: "f", App: "other"}); ok {
		t.Fatal("lookup hit for an unknown key")
	}
}

// TestJournalFreshOpenDiscards: opening without resume starts a new
// campaign — old entries must not be replayed.
func TestJournalFreshOpenDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := OpenJournal(path, false)
	k := CellKey{Figure: "f", App: "A"}
	if err := j.Record(k, sim.Metrics{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 0 {
		t.Fatal("fresh open replayed stale entries")
	}
}

// TestJournalTornTailTolerated: a crash mid-append leaves a truncated
// final line; resume must keep every complete entry and drop the tail.
func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := OpenJournal(path, false)
	k := CellKey{Figure: "f", App: "A", Scheme: "Baseline"}
	if err := j.Record(k, sim.Metrics{Cycles: 42}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate the crash: append half a JSON line without newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"k":"fig=half|app=`)
	f.Close()

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("kept %d cells, want 1", r.Len())
	}
	if _, ok := r.Lookup(k); !ok {
		t.Fatal("complete entry lost")
	}
}

// TestJournalInteriorCorruptionRejected: damage before the final line
// means the journal cannot be trusted — resume must refuse loudly
// rather than silently skip simulations.
func TestJournalInteriorCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := OpenJournal(path, false)
	j.Record(CellKey{Figure: "f", App: "A"}, sim.Metrics{Cycles: 1})
	j.Record(CellKey{Figure: "f", App: "B"}, sim.Metrics{Cycles: 2})
	j.Close()
	data, _ := os.ReadFile(path)
	data[2] = 0xff // damage the first line
	os.WriteFile(path, data, 0o644)
	if _, err := OpenJournal(path, true); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("err = %v, want ErrJournalCorrupt", err)
	}
}

// TestJournalResumeMissingFile: resuming with no journal yet is a
// fresh start, not an error (first run of a campaign).
func TestJournalResumeMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.ckpt")
	j, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Fatal("phantom entries")
	}
}

// TestCampaignInterruptResume is the acceptance test for the tentpole:
// cancel a Fig10 campaign after K completed cells, then resume from the
// journal — the final table bytes must equal an uninterrupted serial
// run, and the resumed run must replay (not re-simulate) the completed
// cells.
func TestCampaignInterruptResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign resume test skipped in -short mode")
	}
	o := tinyOpts()
	o.Parallel = 1

	// Reference: uninterrupted serial run, no journal.
	ResetMemos()
	want := renderFigure(t, Fig10, o)

	// Interrupted run: cancel the campaign after K recorded cells.
	path := filepath.Join(t.TempDir(), "fig10.ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	const stopAfter = 7
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.onRecord = func(total uint64) {
		if total == stopAfter {
			cancel()
		}
	}
	ResetMemos()
	run1 := o
	run1.Ctx = ctx
	run1.Journal = j
	_, err = Fig10(run1)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted campaign: err = %v, want ErrInterrupted", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: completed cells replay from the journal, the rest run.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() < stopAfter {
		t.Fatalf("journal holds %d cells, want >= %d", j2.Len(), stopAfter)
	}
	ResetMemos()
	run2 := o
	run2.Journal = j2
	got := renderFigure(t, Fig10, run2)
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
	replayed, recorded := j2.Stats()
	if replayed < stopAfter {
		t.Fatalf("resume replayed %d cells, want >= %d", replayed, stopAfter)
	}
	if recorded == 0 {
		t.Fatal("resume recorded no new cells — interrupt happened after completion?")
	}

	// A third run with the now-complete journal is pure replay.
	j3, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	ResetMemos()
	run3 := o
	run3.Journal = j3
	again := renderFigure(t, Fig10, run3)
	if !bytes.Equal(want, again) {
		t.Fatal("pure-replay output differs")
	}
	if _, rec := j3.Stats(); rec != 0 {
		t.Fatalf("pure replay still simulated %d cells", rec)
	}
}

// TestJournalResumeTruncatesTornTail: the torn bytes are physically
// removed on resume, so appends after resume land on a clean boundary
// and the next resume sees zero damage.
func TestJournalResumeTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := OpenJournal(path, false)
	k1 := CellKey{Figure: "f", App: "A"}
	if err := j.Record(k1, sim.Metrics{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString(`{"k":"torn`)
	f.Close()

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	k2 := CellKey{Figure: "f", App: "B"}
	if err := r.Record(k2, sim.Metrics{Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Had the tail survived, the new entry would have fused with it into
	// interior corruption; a clean resume proves it was truncated away.
	r2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("journal corrupt after append-past-torn-tail: %v", err)
	}
	defer r2.Close()
	if r2.Len() != 2 {
		t.Fatalf("kept %d cells, want 2", r2.Len())
	}
	for _, k := range []CellKey{k1, k2} {
		if _, ok := r2.Lookup(k); !ok {
			t.Fatalf("cell %v lost", k)
		}
	}
}

// TestJournalAppendFaultRollsBack drives the exp.journal.append and
// exp.journal.sync injection points: a failed append (torn write,
// ENOSPC, failed fsync) must roll the file back to the last good entry
// so the journal stays loadable with every previously recorded cell.
func TestJournalAppendFaultRollsBack(t *testing.T) {
	for _, tc := range []struct {
		name     string
		spec     string
		diskFull bool
	}{
		{"torn append", "exp.journal.append:at=1:err=short", true},
		{"append enospc", "exp.journal.append:at=1:err=enospc", true},
		{"failed fsync", "exp.journal.sync:at=1:err=eio", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			j, err := OpenJournal(path, false)
			if err != nil {
				t.Fatal(err)
			}
			k1 := CellKey{Figure: "f", App: "A"}
			if err := j.Record(k1, sim.Metrics{Cycles: 1}); err != nil {
				t.Fatal(err)
			}
			plan, err := fault.Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			fault.Activate(plan)
			err = j.Record(CellKey{Figure: "f", App: "B"}, sim.Metrics{Cycles: 2})
			fault.Deactivate()
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("err = %v, want injected", err)
			}
			if errors.Is(err, fsx.ErrDiskFull) != tc.diskFull {
				t.Fatalf("ErrDiskFull classification = %v, want %v (err: %v)", !tc.diskFull, tc.diskFull, err)
			}
			// The journal keeps working after the rollback.
			k3 := CellKey{Figure: "f", App: "C"}
			if err := j.Record(k3, sim.Metrics{Cycles: 3}); err != nil {
				t.Fatalf("journal unusable after rollback: %v", err)
			}
			j.Close()

			r, err := OpenJournal(path, true)
			if err != nil {
				t.Fatalf("journal corrupt after rolled-back append: %v", err)
			}
			defer r.Close()
			if r.Len() != 2 {
				t.Fatalf("kept %d cells, want 2 (A and C)", r.Len())
			}
			if _, ok := r.Lookup(k1); !ok {
				t.Fatal("pre-fault entry lost")
			}
			if _, ok := r.Lookup(k3); !ok {
				t.Fatal("post-rollback entry lost")
			}
		})
	}
}

// TestCompactJournal: duplicates collapse last-wins, torn tails drop,
// and the compacted journal replays identically to the original.
func TestCompactJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := OpenJournal(path, false)
	kA := CellKey{Figure: "f", App: "A"}
	kB := CellKey{Figure: "f", App: "B"}
	j.Record(kA, sim.Metrics{Cycles: 1})
	j.Record(kB, sim.Metrics{Cycles: 2})
	j.Record(kA, sim.Metrics{Cycles: 10}) // supersedes the first A
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString(`{"k":"torn`)
	f.Close()

	kept, dropped, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 || dropped != 2 { // 1 superseded duplicate + 1 torn tail
		t.Fatalf("kept=%d dropped=%d, want 2/2", kept, dropped)
	}

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("compacted journal holds %d cells, want 2", r.Len())
	}
	if m, ok := r.Lookup(kA); !ok || m.Cycles != 10 {
		t.Fatalf("compaction lost last-wins semantics: %+v %v", m, ok)
	}
	if m, ok := r.Lookup(kB); !ok || m.Cycles != 2 {
		t.Fatalf("unique entry damaged: %+v %v", m, ok)
	}

	// Compacting an already-compact journal is a no-op (bytes untouched).
	before, _ := os.ReadFile(path)
	kept, dropped, err = CompactJournal(path)
	if err != nil || kept != 2 || dropped != 0 {
		t.Fatalf("second compaction: kept=%d dropped=%d err=%v", kept, dropped, err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("idempotent compaction rewrote the file")
	}
}

// TestCompactJournalRefusesCorrupt: interior damage is not something
// compaction should paper over.
func TestCompactJournalRefusesCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := OpenJournal(path, false)
	j.Record(CellKey{Figure: "f", App: "A"}, sim.Metrics{Cycles: 1})
	j.Record(CellKey{Figure: "f", App: "B"}, sim.Metrics{Cycles: 2})
	j.Close()
	data, _ := os.ReadFile(path)
	data[2] = 0xff
	os.WriteFile(path, data, 0o644)
	if _, _, err := CompactJournal(path); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("err = %v, want ErrJournalCorrupt", err)
	}
}

// TestCampaignReplayAfterCompaction: a compacted checkpoint drives a
// byte-identical pure-replay campaign — the satellite's acceptance.
func TestCampaignReplayAfterCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign compaction test skipped in -short mode")
	}
	o := tinyOpts()
	o.Parallel = 1

	path := filepath.Join(t.TempDir(), "fig10.ckpt")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ResetMemos()
	run1 := o
	run1.Journal = j
	want := renderFigure(t, Fig10, run1)
	j.Close()

	if _, _, err := CompactJournal(path); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ResetMemos()
	run2 := o
	run2.Journal = j2
	got := renderFigure(t, Fig10, run2)
	if !bytes.Equal(want, got) {
		t.Fatal("replay from compacted journal differs from original run")
	}
	if _, rec := j2.Stats(); rec != 0 {
		t.Fatalf("replay from compacted journal still simulated %d cells", rec)
	}
}

// TestJournaledPassThrough: without a journal, o.journaled is a plain
// call; with one, errors are not recorded.
func TestJournaledPassThrough(t *testing.T) {
	o := tinyOpts()
	m, err := o.journaled(CellKey{Figure: "x"}, func() (sim.Metrics, error) {
		return sim.Metrics{Cycles: 5}, nil
	})
	if err != nil || m.Cycles != 5 {
		t.Fatalf("pass-through broken: %v %v", m, err)
	}

	path := filepath.Join(t.TempDir(), "j.ckpt")
	j, _ := OpenJournal(path, false)
	defer j.Close()
	o.Journal = j
	boom := errors.New("sim failed")
	if _, err := o.journaled(CellKey{Figure: "x", App: "A"}, func() (sim.Metrics, error) {
		return sim.Metrics{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if j.Len() != 0 {
		t.Fatal("failed cell recorded as completed")
	}
	// Error text should be the cell's own error, not journal noise.
	if !strings.Contains(boom.Error(), "sim failed") {
		t.Fatal("unexpected")
	}
}
