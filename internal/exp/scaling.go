package exp

// Thread-scaling sweep: the multi-core sharded simulator (sim
// multicore.go, DESIGN §9) swept over core counts up to the paper's
// 16-core machine. Each (app, scheme, N) point is one independent
// journaled cell keyed by its core count and per-N arch fingerprint,
// so a resumed campaign replays exactly like any other figure.

import (
	"fmt"

	"cobra/internal/sim"
)

// CoreSweep is the thread-scaling core-count axis: 1 (the single-core
// oracle) doubling up to the paper's 16-core CMP (Table II).
var CoreSweep = []int{1, 2, 4, 8, 16}

// scalingPairs and scalingSchemes pick the sweep's workloads: one
// commutative and one non-commutative app, under the three headline
// schemes. PB-SW runs at the representative 4096-bin compromise so the
// sweep holds the bin count fixed while the core count varies.
var (
	scalingPairs   = []pair{{"DegreeCount", "KRON"}, {"NeighborPopulate", "KRON"}}
	scalingSchemes = []struct {
		Scheme sim.Scheme
		Bins   int
	}{
		{sim.SchemeBaseline, 0},
		{sim.SchemePBSW, 4096},
		{sim.SchemeCOBRA, 0},
	}
)

// FigScaling regenerates the thread-scaling sweep: simulated cycles of
// Baseline, PB-SW, and COBRA at N ∈ {1,2,4,8,16} cores. "vs-1core" is
// the cycle ratio over the same scheme's single-core run (parallel
// scaling), and "DRAM-bytes" the machine-wide traffic (additive across
// cores, so constant traffic under sharding means no duplication
// overhead).
func FigScaling(o Opts) (*Table, error) {
	t := &Table{
		ID:     "Scaling",
		Title:  "Thread scaling: simulated cycles vs core count",
		Header: []string{"app", "input", "scheme", "cores", "cycles", "vs-1core", "DRAM-bytes"},
	}
	type cellID struct{ pair, scheme, core int }
	var cells []cellID
	for p := range scalingPairs {
		for s := range scalingSchemes {
			for c := range CoreSweep {
				cells = append(cells, cellID{p, s, c})
			}
		}
	}
	ms, err := mapCells(o, len(cells), func(i int) (sim.Metrics, error) {
		c := cells[i]
		p := scalingPairs[c.pair]
		sc := scalingSchemes[c.scheme]
		arch := o.Arch.WithCores(CoreSweep[c.core])
		key := CellKey{
			Figure: "Scaling", App: p.App, Input: p.Input,
			Scheme: string(sc.Scheme), Bins: sc.Bins,
			Cores: CoreSweep[c.core], Arch: ArchFingerprint(arch),
		}
		return o.journaled(key, func() (sim.Metrics, error) {
			app, err := BuildApp(p.App, p.Input, o.Scale, o.Seed)
			if err != nil {
				return sim.Metrics{}, err
			}
			return RunScheme(app, sc.Scheme, sc.Bins, arch)
		})
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		m := ms[i]
		base := ms[(c.pair*len(scalingSchemes)+c.scheme)*len(CoreSweep)] // N=1 cell of this (pair, scheme)
		p := scalingPairs[c.pair]
		t.AddRow(p.App, p.Input, string(scalingSchemes[c.scheme].Scheme),
			fmt.Sprintf("%d", CoreSweep[c.core]), fe(m.Cycles), fx(base.Cycles/m.Cycles),
			fmt.Sprintf("%d", m.DRAM.Bytes()))
	}
	t.Notes = append(t.Notes,
		"N=1 is the legacy single-core model (byte-identical to the pre-multi-core simulator)",
		"merged cycles are the slowest core's clock; sub-linear scaling reflects shard imbalance, not sync overhead")
	return t, nil
}
