package exp

// Overhead regression for the observability hooks on the cell hot path.
// The contract (documented in internal/obsv): with the default registry
// nil, instrumentation costs one atomic load plus a nil check — zero
// allocations, no clock reads. These pins keep that true as the harness
// grows.

import (
	"context"
	"sync/atomic"
	"testing"

	"cobra/internal/obsv"
)

// swapDefault installs r as the process registry and returns a restore
// function, so tests never leak observability state into each other.
func swapDefault(r *obsv.Registry) func() {
	prev := obsv.Default()
	obsv.SetDefault(r)
	return func() { obsv.SetDefault(prev) }
}

// TestDisabledRegistryAddsZeroAllocs pins the zero-cost-disabled rule
// at the exact seam every campaign cell passes through: obsCell, the
// wrapper RunCells/MapCells put around user code.
func TestDisabledRegistryAddsZeroAllocs(t *testing.T) {
	defer swapDefault(nil)()
	ctx := context.Background()
	cell := func(context.Context, int) error { return nil }
	if avg := testing.AllocsPerRun(200, func() {
		if err := obsCell(ctx, 0, cell); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("disabled observability allocates %.1f objects per cell, want 0", avg)
	}
}

// TestEnabledRegistryCountsCells is the counterpart sanity check: with
// a registry installed the same path actually records latency and
// completion counts (otherwise the zero-alloc pin could be trivially
// satisfied by instrumentation that never fires).
func TestEnabledRegistryCountsCells(t *testing.T) {
	reg := obsv.New()
	defer swapDefault(reg)()
	var fail atomic.Bool
	cell := func(_ context.Context, i int) error {
		if fail.Load() {
			panic("boom")
		}
		return nil
	}
	const n = 8
	if err := RunCells(2, n, func(i int) error { return cell(context.Background(), i) }); err != nil {
		t.Fatal(err)
	}
	fail.Store(true)
	if err := RunCells(1, 1, func(i int) error { return cell(context.Background(), i) }); err == nil {
		t.Fatal("expected the panicking cell to fail")
	}
	if got := reg.Counter("exp.cells.completed").Value(); got != n {
		t.Fatalf("completed = %d, want %d", got, n)
	}
	if got := reg.Counter("exp.cells.failed").Value(); got != 1 {
		t.Fatalf("failed = %d, want 1", got)
	}
	if got := reg.Histogram("exp.cell.wall").Count(); got != n+1 {
		t.Fatalf("wall observations = %d, want %d", got, n+1)
	}
}

// benchCells drives the RunCells hot path with a cheap but non-empty
// cell, the shape the overhead comparison is about: the harness wrapper
// must stay negligible next to even a trivial cell body.
func benchCells(b *testing.B) {
	b.Helper()
	b.ReportAllocs()
	var sink atomic.Uint64
	cell := func(i int) error {
		sink.Add(uint64(i))
		return nil
	}
	b.ResetTimer()
	for b.Loop() {
		if err := RunCells(1, 64, cell); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsvDisabled measures the cell dispatch path with
// observability off — the default for every test and plain CLI run.
func BenchmarkObsvDisabled(b *testing.B) {
	defer swapDefault(nil)()
	benchCells(b)
}

// BenchmarkObsvEnabled measures the same path with a live registry, so
// `benchstat` (or eyeballs) can confirm the enabled overhead stays in
// the tens-of-nanoseconds-per-cell range.
func BenchmarkObsvEnabled(b *testing.B) {
	defer swapDefault(obsv.New())()
	benchCells(b)
}
