package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cobra/internal/obsv"
	"cobra/internal/sim"
	"cobra/internal/stats"
)

// Opts parameterizes a figure regeneration.
type Opts struct {
	Scale int // keys/vertices ~ 2^Scale
	Seed  uint64
	Arch  sim.Arch
	// Parallel bounds the worker pool the figure's independent
	// simulation cells run on: 0 = one worker per CPU (GOMAXPROCS),
	// 1 = serial. Output is byte-identical at any setting.
	Parallel int

	// StreamWindows / StreamWindowUpdates parameterize the streaming
	// figure's window geometry (0: DefaultStreamWindows /
	// DefaultWindowUpdates at the campaign scale).
	StreamWindows       int
	StreamWindowUpdates int

	// Ctx, when non-nil, governs the campaign: cancelling it stops the
	// dispatch of new simulation cells (in-flight cells drain) and the
	// figure returns an ErrInterrupted-wrapping error.
	Ctx context.Context
	// CellTimeout, when > 0, bounds each cell's context lifetime (see
	// WithCellTimeout).
	CellTimeout time.Duration
	// Journal, when non-nil, checkpoints every completed simulation
	// cell and replays already-completed cells on resume (see
	// checkpoint.go).
	Journal *Journal
	// Remote, when non-nil, is offered every simulation cell before it
	// runs locally (after the journal lookup, so replays stay free). A
	// runner that returns ok=false declines the cell — not expressible
	// remotely, or no worker able to take it — and the cell falls back
	// to the local simulator. Output is byte-identical either way:
	// cells are deterministic functions of their CellKey, and JSON
	// round-trips sim.Metrics exactly (the same argument that makes
	// journal replays exact). internal/dist implements this with a
	// cobrad worker fleet.
	Remote RemoteRunner

	// Progress, when non-nil, receives live completion updates (cell
	// totals as figures declare them, per-cell completions, journal
	// replays) for the -progress line. Nil is a no-op sink.
	Progress *obsv.Progress
	// Events, when non-nil, receives the structured JSONL event stream
	// (cell_done / cell_replay with identity and latency). Nil is a
	// no-op sink.
	Events *obsv.EventLog
}

// RemoteRunner executes simulation cells somewhere other than this
// process (a fleet of cobrad workers). RunCell either runs the cell to
// completion (ok=true, with m or err) or declines it (ok=false) — the
// caller then runs the cell locally. Implementations must return the
// exact metrics the local simulator would produce for k.
type RemoteRunner interface {
	RunCell(ctx context.Context, k CellKey) (m sim.Metrics, ok bool, err error)
}

// workers resolves the pool size for this regeneration.
func (o Opts) workers() int { return Workers(o.Parallel) }

// ctx resolves the campaign context, including the per-cell timeout.
func (o Opts) ctx() context.Context {
	c := o.Ctx
	if c == nil {
		c = context.Background()
	}
	if o.CellTimeout > 0 {
		c = WithCellTimeout(c, o.CellTimeout)
	}
	return c
}

// mapCells runs a figure's independent cells under o's campaign
// controls: bounded pool, cancellation-with-drain, per-cell panic
// isolation, and the optional per-cell timeout. Every figure driver
// schedules through this (never raw goroutines), so one Ctrl-C drains
// every figure the same way.
func mapCells[T any](o Opts, n int, cell func(i int) (T, error)) ([]T, error) {
	o.Progress.AddTotal(n)
	return MapCellsCtx(o.ctx(), o.Parallel, n, func(_ context.Context, i int) (T, error) {
		v, err := cell(i)
		o.Progress.CellDone()
		return v, err
	})
}

// DefaultOpts returns the standard experiment configuration. Scale 20
// (1 Mi keys) keeps per-core irregular working sets 2–16× the 2 MB LLC
// slice — the DRAM-bound regime the paper's inputs occupy — while
// simulating in minutes per run.
func DefaultOpts() Opts {
	return Opts{Scale: 20, Seed: 42, Arch: sim.DefaultArch()}
}

// QuickOpts is a fast smoke-test configuration.
func QuickOpts() Opts {
	return Opts{Scale: 16, Seed: 42, Arch: sim.DefaultArch()}
}

// pair is one (app, input) evaluation point of the default suite.
type pair struct{ App, Input string }

// DefaultSuite returns the (workload, input) pairs of the standard
// evaluation, mirroring the paper's coverage of every app across its
// input classes.
func DefaultSuite() []pair {
	return []pair{
		{"DegreeCount", "KRON"}, {"DegreeCount", "URND"},
		{"NeighborPopulate", "KRON"}, {"NeighborPopulate", "URND"}, {"NeighborPopulate", "ROAD"},
		{"PageRank", "KRON"},
		{"Radii", "KRON"},
		{"IntSort", "BIGKEY"},
		{"SpMV", "SKEW"},
		{"Transpose", "RAND"},
		{"PINV", "PERM"},
		{"SymPerm", "RAND"},
	}
}

// Fig2 regenerates Figure 2: the LLC miss rate of every application's
// baseline (unoptimized) execution — the motivation that irregular
// updates defeat conventional hierarchies.
func Fig2(o Opts) (*Table, error) {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Locality of irregular updates: baseline LLC miss rate",
		Header: []string{"app", "input", "LLC-miss-rate", "L1-MPKI", "DRAM-lines"},
	}
	suite := DefaultSuite()
	ms, err := mapCells(o, len(suite), func(i int) (sim.Metrics, error) {
		p := suite[i]
		return o.journaled(CellKey{Figure: "Figure 2", App: p.App, Input: p.Input, Scheme: "Baseline"},
			func() (sim.Metrics, error) {
				app, err := BuildApp(p.App, p.Input, o.Scale, o.Seed)
				if err != nil {
					return sim.Metrics{}, err
				}
				return sim.RunBaseline(app, o.Arch)
			})
	})
	if err != nil {
		return nil, err
	}
	for i, p := range suite {
		m := ms[i]
		mpki := 1000 * float64(m.L1Misses) / float64(m.Ctr.Instructions)
		t.AddRow(p.App, p.Input, fp(m.LLCMissRate), f2(mpki),
			fmt.Sprintf("%d", m.DRAM.ReadLines+m.DRAM.WriteLines))
	}
	return t, nil
}

// bestPBSW is the journaled, campaign-aware PB-SW sweep: the sweep's
// independent (bin-count) cells run under o's context on o's pool and
// each completed cell is checkpointed per (figure, app, input, bins).
func bestPBSW(o Opts, fig string, app *sim.App) (best sim.Metrics, sweep []sim.Metrics, err error) {
	bins := validBins(app)
	sweep, err = mapCells(o, len(bins), func(i int) (sim.Metrics, error) {
		return o.journaled(CellKey{Figure: fig, App: app.Name, Input: app.InputName, Scheme: "PB-SW", Bins: bins[i]},
			func() (sim.Metrics, error) { return sim.RunPBSW(app, bins[i], o.Arch) })
	})
	if err != nil {
		return sim.Metrics{}, nil, err
	}
	for _, m := range sweep {
		if best.Cycles == 0 || m.Cycles < best.Cycles {
			best = m
		}
	}
	return best, sweep, nil
}

// Fig4 regenerates Figure 4: Binning vs Accumulate sensitivity to the
// number of bins for Neighbor-Populate — the compromise COBRA removes.
// (a) phase runtimes; (b) load misses split by level.
func Fig4(o Opts) (*Table, error) {
	app, err := BuildApp("NeighborPopulate", "KRON", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 4",
		Title:  "PB bin-count sensitivity (Neighbor-Populate, KRON)",
		Header: []string{"bins", "binning-cyc", "accum-cyc", "total-cyc", "bin-L2miss", "bin-LLCmiss", "bin-DRAMrd", "acc-L1miss"},
	}
	best, sweep, err := bestPBSW(o, "Figure 4", app)
	if err != nil {
		return nil, err
	}
	for _, m := range sweep {
		t.AddRow(fmt.Sprintf("%d", m.NumBins), fe(m.BinCycles), fe(m.AccumCycles), fe(m.Cycles),
			fmt.Sprintf("%d", m.BinMem.L2Misses), fmt.Sprintf("%d", m.BinMem.LLCMisses),
			fmt.Sprintf("%d", m.BinMem.DRAMReadLines), fmt.Sprintf("%d", m.AccumMem.L1Misses))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("PB-SW compromise picks %d bins (fastest total; red dotted line in the paper)", best.NumBins),
		"Binning prefers few bins; Accumulate prefers many — the green dotted lines")
	return t, nil
}

// Fig5 regenerates Figure 5: speedup of PB-SW and the unrealizable
// PB-SW-IDEAL over the baseline, showing the headroom COBRA targets.
func Fig5(o Opts) (*Table, error) {
	t := &Table{
		ID:     "Figure 5",
		Title:  "Ideal-PB headroom: speedup over baseline",
		Header: []string{"app", "input", "PB-SW", "PB-SW-IDEAL", "headroom"},
	}
	rs, err := runSuite(o)
	if err != nil {
		return nil, err
	}
	var pbS, idS []float64
	for _, r := range rs {
		sp, si := r.pbsw.Speedup(r.base), r.ideal.Speedup(r.base)
		pbS = append(pbS, sp)
		idS = append(idS, si)
		t.AddRow(r.p.App, r.p.Input, fx(sp), fx(si), fx(si/sp))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("geomean: PB-SW %s, PB-SW-IDEAL %s (paper: ideal ≈ 1.2x over PB)",
		fx(stats.GeoMean(pbS)), fx(stats.GeoMean(idS))))
	return t, nil
}

// Table1 regenerates Table I: the execution-time breakup of PB for
// Neighbor-Populate with small and large bin counts — Binning dominates.
func Table1(o Opts) (*Table, error) {
	app, err := BuildApp("NeighborPopulate", "KRON", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Table I",
		Title:  "PB execution breakup (Neighbor-Populate)",
		Header: []string{"bins", "init%", "binning%", "accumulate%"},
	}
	binCounts := []int{64, 4096}
	ms, err := mapCells(o, len(binCounts), func(i int) (sim.Metrics, error) {
		return o.journaled(CellKey{Figure: "Table I", App: "NeighborPopulate", Input: "KRON", Scheme: "PB-SW", Bins: binCounts[i]},
			func() (sim.Metrics, error) { return sim.RunPBSW(app, binCounts[i], o.Arch) })
	})
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		t.AddRow(fmt.Sprintf("%d", m.NumBins),
			fp(m.InitCycles/m.Cycles), fp(m.BinCycles/m.Cycles), fp(m.AccumCycles/m.Cycles))
	}
	t.Notes = append(t.Notes, "paper: Init ~6%, Binning is the dominant phase")
	return t, nil
}

// suiteResult carries the four headline schemes for one (app, input).
type suiteResult struct {
	p     pair
	base  sim.Metrics
	pbsw  sim.Metrics
	ideal sim.Metrics
	cobra sim.Metrics
}

// suiteCache memoizes runSuite across figures within one process: a
// figures -all invocation would otherwise re-simulate the whole suite
// for each of Figures 5, 10, 11, and 12. Guarded by suiteMu because
// parallel cells of distinct figures may race on first fill.
var (
	suiteMu    sync.Mutex
	suiteCache = map[string][]suiteResult{}
)

// runSuite executes the headline comparison for every default pair,
// reusing the bin sweep across PB-SW / IDEAL (and returning it for
// callers that need PHI's bin count).
//
// It is the canonical three-stage use of the executor: (1) build every
// app in parallel (inputs memoized and shared read-only), (2) enumerate
// every independent simulation cell — one baseline, one PB-SW run per
// sweep bin count, and one COBRA run per pair — and run them all on one
// bounded pool, (3) aggregate in enumeration order, so the result (and
// every figure derived from it) is byte-identical at any -parallel.
func runSuite(o Opts) ([]suiteResult, error) {
	key := fmt.Sprintf("%d/%d", o.Scale, o.Seed)
	suiteMu.Lock()
	if rs, ok := suiteCache[key]; ok {
		suiteMu.Unlock()
		obsv.Default().Counter("exp.suitecache.hits").Add(1)
		return rs, nil
	}
	suiteMu.Unlock()
	obsv.Default().Counter("exp.suitecache.misses").Add(1)

	pairs := DefaultSuite()

	// Stage 1: build apps.
	apps, err := mapCells(o, len(pairs), func(i int) (*sim.App, error) {
		return BuildApp(pairs[i].App, pairs[i].Input, o.Scale, o.Seed)
	})
	if err != nil {
		return nil, err
	}

	// Stage 2: enumerate and run every simulation cell.
	const (
		kindBase = iota
		kindPBSW
		kindCOBRA
	)
	type cellID struct{ pair, kind, bins int }
	var cells []cellID
	sweepBins := make([][]int, len(pairs))
	for p := range pairs {
		sweepBins[p] = validBins(apps[p])
		cells = append(cells, cellID{p, kindBase, 0})
		for _, b := range sweepBins[p] {
			cells = append(cells, cellID{p, kindPBSW, b})
		}
		cells = append(cells, cellID{p, kindCOBRA, 0})
	}
	// Each cell is journaled under the shared "suite" campaign unit, so
	// Figures 5/10/11/12 (which all derive from runSuite) resume from
	// the same completed-cell set.
	res, err := mapCells(o, len(cells), func(i int) (sim.Metrics, error) {
		c := cells[i]
		p := pairs[c.pair]
		key := CellKey{Figure: "suite", App: p.App, Input: p.Input, Bins: c.bins}
		switch c.kind {
		case kindBase:
			key.Scheme = "Baseline"
			return o.journaled(key, func() (sim.Metrics, error) { return sim.RunBaseline(apps[c.pair], o.Arch) })
		case kindPBSW:
			key.Scheme = "PB-SW"
			return o.journaled(key, func() (sim.Metrics, error) { return sim.RunPBSW(apps[c.pair], c.bins, o.Arch) })
		default:
			key.Scheme = "COBRA"
			return o.journaled(key, func() (sim.Metrics, error) { return sim.RunCOBRA(apps[c.pair], sim.CobraOpt{}, o.Arch) })
		}
	})
	if err != nil {
		return nil, err
	}

	// Stage 3: aggregate by cell index (enumeration order).
	out := make([]suiteResult, len(pairs))
	ci := 0
	for p := range pairs {
		r := suiteResult{p: pairs[p]}
		r.base = res[ci]
		ci++
		sweep := res[ci : ci+len(sweepBins[p])]
		ci += len(sweepBins[p])
		for _, m := range sweep {
			if r.pbsw.Cycles == 0 || m.Cycles < r.pbsw.Cycles {
				r.pbsw = m
			}
		}
		r.ideal = BestIdealPB(sweep)
		r.cobra = res[ci]
		ci++
		out[p] = r
	}
	suiteMu.Lock()
	suiteCache[key] = out
	suiteMu.Unlock()
	return out, nil
}

// Fig10 regenerates Figure 10: speedups of PB-SW, PB-SW-IDEAL, and
// COBRA over the baseline across the whole suite.
func Fig10(o Opts) (*Table, error) {
	rs, err := runSuite(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 10",
		Title:  "Speedup over baseline",
		Header: []string{"app", "input", "PB-SW", "PB-SW-IDEAL", "COBRA", "COBRA/PB"},
	}
	var pbS, idS, coS, ratio []float64
	for _, r := range rs {
		sp, si, sc := r.pbsw.Speedup(r.base), r.ideal.Speedup(r.base), r.cobra.Speedup(r.base)
		pbS, idS, coS, ratio = append(pbS, sp), append(idS, si), append(coS, sc), append(ratio, sc/sp)
		t.AddRow(r.p.App, r.p.Input, fx(sp), fx(si), fx(sc), fx(sc/sp))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean: PB-SW %s, IDEAL %s, COBRA %s, COBRA-over-PB %s",
			fx(stats.GeoMean(pbS)), fx(stats.GeoMean(idS)), fx(stats.GeoMean(coS)), fx(stats.GeoMean(ratio))),
		"paper means: PB 1.81x, COBRA 3.16x over baseline, 1.74x over PB",
		"paper anomalies: PINV (more bins do not help Accumulate), SymPerm (upper-triangle only)")
	return t, nil
}

// Fig11 regenerates Figure 11: COBRA's per-phase speedups over PB-SW.
func Fig11(o Opts) (*Table, error) {
	rs, err := runSuite(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 11",
		Title:  "COBRA per-phase speedup over PB-SW",
		Header: []string{"app", "input", "binning", "accumulate", "whole"},
	}
	var binS, accS []float64
	for _, r := range rs {
		sb := r.pbsw.BinCycles / r.cobra.BinCycles
		sa := r.pbsw.AccumCycles / r.cobra.AccumCycles
		binS, accS = append(binS, sb), append(accS, sa)
		t.AddRow(r.p.App, r.p.Input, fx(sb), fx(sa), fx(r.cobra.Speedup(r.pbsw)))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("geomean binning %s (paper: 2.2-32x, mean 8.3x), accumulate %s",
		fx(stats.GeoMean(binS)), fx(stats.GeoMean(accS))))
	return t, nil
}

// Fig12 regenerates Figure 12: instruction reduction (top) and branch
// misprediction rates (bottom) — COBRA eliminates Binning's software
// overheads.
func Fig12(o Opts) (*Table, error) {
	rs, err := runSuite(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 12",
		Title:  "Binning instruction reduction and branch misses",
		Header: []string{"app", "input", "instr-reduction", "base-brMiss", "PB-brMiss", "COBRA-brMiss"},
	}
	var red []float64
	for _, r := range rs {
		ir := float64(r.pbsw.Ctr.Instructions) / float64(r.cobra.Ctr.Instructions)
		red = append(red, ir)
		t.AddRow(r.p.App, r.p.Input, fx(ir),
			fp(r.base.Ctr.BranchMissRate()), fp(r.pbsw.BinCtr.BranchMissRate()), fp(r.cobra.BinCtr.BranchMissRate()))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean instruction reduction %s (paper: 2-5.5x)", fx(stats.GeoMean(red))),
		"paper: COBRA reaches near-zero Binning branch misses except PageRank/Radii boundary branches")
	return t, nil
}

// Fig13a regenerates Figure 13a: fraction of Binning stalled on a full
// L1→L2 eviction buffer as its capacity varies (DES model).
func Fig13a(o Opts) (*Table, error) {
	t := &Table{
		ID:     "Figure 13a",
		Title:  "Eviction-buffer sizing: Binning stall fraction (Neighbor-Populate)",
		Header: []string{"entries", "KRON", "URND", "ROAD"},
	}
	sizes := []int{1, 2, 4, 8, 16, 32, 64}
	inputs := []string{"KRON", "URND", "ROAD"}
	apps, err := mapCells(o, len(inputs), func(i int) (*sim.App, error) {
		return BuildApp("NeighborPopulate", inputs[i], o.Scale, o.Seed)
	})
	if err != nil {
		return nil, err
	}
	// One cell per (input, buffer-size) point.
	ms, err := mapCells(o, len(inputs)*len(sizes), func(i int) (sim.Metrics, error) {
		input, e := inputs[i/len(sizes)], sizes[i%len(sizes)]
		return o.journaled(CellKey{Figure: "Figure 13a", App: "NeighborPopulate", Input: input,
			Scheme: fmt.Sprintf("COBRA[evict=%d,skipaccum]", e)},
			func() (sim.Metrics, error) {
				return sim.RunCOBRA(apps[i/len(sizes)], sim.CobraOpt{EvictBufL1L2: e, SkipAccum: true}, o.Arch)
			})
	})
	if err != nil {
		return nil, err
	}
	for i, e := range sizes {
		t.AddRow(fmt.Sprintf("%d", e),
			fp(ms[0*len(sizes)+i].EvictStallFrac), fp(ms[1*len(sizes)+i].EvictStallFrac), fp(ms[2*len(sizes)+i].EvictStallFrac))
	}
	t.Notes = append(t.Notes, "paper: a 32-entry buffer hides eviction latency for all inputs")
	return t, nil
}

// Fig13b regenerates Figure 13b: COBRA Binning sensitivity to the ways
// reserved for C-Buffers at each level.
func Fig13b(o Opts) (*Table, error) {
	app, err := BuildApp("NeighborPopulate", "KRON", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 13b",
		Title:  "Binning cycles vs ways reserved (relative to default config)",
		Header: []string{"level", "ways", "binning-vs-default"},
	}
	// Cell 0 is the reference run; the rest are one per (level, ways).
	type wayCell struct {
		level string
		opt   sim.CobraOpt
		ways  int
	}
	cells := []wayCell{{level: "", opt: sim.CobraOpt{SkipAccum: true}}}
	for _, w := range []int{2, 4, 6, 7} {
		cells = append(cells, wayCell{"L1", sim.CobraOpt{ReserveL1: w, SkipAccum: true}, w})
	}
	for _, w := range []int{1, 2, 4, 7} {
		cells = append(cells, wayCell{"L2", sim.CobraOpt{ReserveL2: w, SkipAccum: true}, w})
	}
	for _, w := range []int{4, 8, 12, 15} {
		cells = append(cells, wayCell{"LLC", sim.CobraOpt{ReserveLLC: w, SkipAccum: true}, w})
	}
	ms, err := mapCells(o, len(cells), func(i int) (sim.Metrics, error) {
		c := cells[i]
		scheme := "COBRA[skipaccum]"
		if c.level != "" {
			scheme = fmt.Sprintf("COBRA[rsv%s=%d,skipaccum]", c.level, c.ways)
		}
		return o.journaled(CellKey{Figure: "Figure 13b", App: "NeighborPopulate", Input: "KRON", Scheme: scheme},
			func() (sim.Metrics, error) { return sim.RunCOBRA(app, c.opt, o.Arch) })
	})
	if err != nil {
		return nil, err
	}
	ref := ms[0]
	for i, c := range cells[1:] {
		t.AddRow(c.level, fmt.Sprintf("%d", c.ways), fx(ms[i+1].BinCycles/ref.BinCycles))
	}
	t.Notes = append(t.Notes, "paper: ≤10% variation at L1/LLC; L2 the most sensitive (stream prefetcher)")
	return t, nil
}

// Fig13c regenerates Figure 13c: worst-case DRAM bandwidth waste from
// context switches evicting partially filled LLC C-Buffers.
func Fig13c(o Opts) (*Table, error) {
	app, err := BuildApp("NeighborPopulate", "KRON", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Figure 13c",
		Title:  "Context-switch bandwidth waste (Neighbor-Populate)",
		Header: []string{"quantum-cycles", "switches", "waste-bytes", "waste-frac"},
	}
	// Linux default quantum ~ 1ms ≈ 2.66M cycles; sweep down to 1/100th.
	quanta := []float64{26_600, 266_000, 2_660_000}
	ms, err := mapCells(o, len(quanta), func(i int) (sim.Metrics, error) {
		q := quanta[i]
		return o.journaled(CellKey{Figure: "Figure 13c", App: "NeighborPopulate", Input: "KRON",
			Scheme: fmt.Sprintf("COBRA[q=%.0f,skipaccum]", q)},
			func() (sim.Metrics, error) {
				return sim.RunCOBRA(app, sim.CobraOpt{CtxSwitchQuantum: q, SkipAccum: true}, o.Arch)
			})
	})
	if err != nil {
		return nil, err
	}
	for i, q := range quanta {
		m := ms[i]
		total := m.BinMem.DRAMBytes()
		frac := 0.0
		if total > 0 {
			frac = float64(m.CtxWasteBytes) / float64(total)
		}
		t.AddRow(fmt.Sprintf("%.0f", q), fmt.Sprintf("%d", m.CtxSwitches),
			fmt.Sprintf("%d", m.CtxWasteBytes), fp(frac))
	}
	t.Notes = append(t.Notes, "paper: <5% waste even at 1/100th of the default Linux quantum")
	return t, nil
}

// Fig14 regenerates Figure 14: DRAM traffic (a) and L1 misses (b)
// across PB-SW, PHI, COBRA, and COBRA-COMM for the commutative
// Count-Degrees and non-commutative Neighbor-Populate.
func Fig14(o Opts) (*Table, error) {
	t := &Table{
		ID:     "Figure 14",
		Title:  "Commutativity specialization: traffic and locality vs PB-SW (Binning+Accumulate)",
		Header: []string{"app", "input", "scheme", "DRAM-bytes-vs-PB", "L1miss-vs-PB"},
	}
	pairs := []pair{
		{"DegreeCount", "KRON"}, {"DegreeCount", "URND"}, {"DegreeCount", "ROAD"},
		{"NeighborPopulate", "KRON"}, {"NeighborPopulate", "URND"},
	}
	// One cell per pair; within a cell the comparison schemes run
	// serially because PHI depends on the PB-SW reference's bin count.
	// Each inner scheme run is journaled individually, so a resumed
	// campaign replays the completed schemes of a partially finished
	// pair too.
	blocks, err := mapCells(o, len(pairs), func(i int) ([][]string, error) {
		p := pairs[i]
		app, err := BuildApp(p.App, p.Input, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		key := func(scheme string, bins int) CellKey {
			return CellKey{Figure: "Figure 14", App: p.App, Input: p.Input, Scheme: scheme, Bins: bins}
		}
		// PB-SW reference at a representative compromise bin count (the
		// comparison is about traffic and locality, not the sweep).
		pbBest, err := o.journaled(key("PB-SW", 4096),
			func() (sim.Metrics, error) { return sim.RunPBSW(app, 4096, o.Arch) })
		if err != nil {
			return nil, err
		}
		pbTraffic := float64(pbBest.BinMem.Sum(pbBest.AccumMem).DRAMBytes())
		pbL1 := float64(pbBest.BinMem.Sum(pbBest.AccumMem).L1Misses)
		var rows [][]string
		add := func(name string, m sim.Metrics, err error) {
			if err != nil {
				rows = append(rows, []string{p.App, p.Input, name, "inapplicable", "inapplicable"})
				return
			}
			mm := m.BinMem.Sum(m.AccumMem)
			rows = append(rows, []string{p.App, p.Input, name,
				fp(float64(mm.DRAMBytes()) / pbTraffic), fp(float64(mm.L1Misses) / pbL1)})
		}
		rows = append(rows, []string{p.App, p.Input, "PB-SW", "100.0%", "100.0%"})
		phiM, phiErr := o.journaled(key("PHI", pbBest.NumBins),
			func() (sim.Metrics, error) { return sim.RunPHI(app, pbBest.NumBins, o.Arch) })
		add("PHI", phiM, phiErr)
		cobraM, cobraErr := o.journaled(key("COBRA", 0),
			func() (sim.Metrics, error) { return sim.RunCOBRA(app, sim.CobraOpt{}, o.Arch) })
		add("COBRA", cobraM, cobraErr)
		commM, commErr := o.journaled(key("COBRA-COMM", 0),
			func() (sim.Metrics, error) { return sim.RunCOBRA(app, sim.CobraOpt{Coalesce: true}, o.Arch) })
		add("COBRA-COMM", commM, commErr)
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	t.Notes = append(t.Notes,
		"paper: PHI/COBRA-COMM inapplicable to non-commutative apps; COBRA-COMM matches PHI's traffic;",
		"COBRA beats PHI on L1 misses (optimal bins); low-reuse inputs (URND) see little coalescing benefit")
	return t, nil
}
