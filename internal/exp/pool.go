package exp

// The parallel experiment executor. Every figure is a collection of
// independent simulation cells — one (app, input, scheme, bin-count)
// run, each owning its own sim.Mach — so cells are embarrassingly
// parallel. RunCells/MapCells schedule them on a bounded worker pool
// while keeping results strictly ordered by cell index: a figure built
// at -parallel N is byte-identical to the serial one, because each cell
// writes only its own slot and aggregation happens after the barrier in
// enumeration order (never completion order).
//
// Robustness contract (the fault-tolerance layer rests on it):
//
//   - A panicking cell NEVER kills the process: the panic is recovered
//     at the cell boundary and surfaces as a *CellError carrying the
//     index, the recovered value, and the goroutine stack. All other
//     cells still run.
//   - Cancelling the context stops dispatch of NEW cells; cells already
//     in flight drain to completion (their results — and any journal
//     appends they perform — are kept). The run then reports
//     ErrInterrupted unless a real cell failure takes precedence.
//   - Error reporting is deterministic under any schedule: the lowest-
//     indexed genuine cell failure wins; interruption is only reported
//     when no cell genuinely failed.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cobra/internal/obsv"
)

// ErrInterrupted reports that a campaign stopped early because its
// context was cancelled (Ctrl-C, -timeout, programmatic cancel). Cells
// completed before the interrupt remain valid — with a checkpoint
// journal they are replayed on the next -resume run.
var ErrInterrupted = errors.New("exp: campaign interrupted")

// CellError is a cell panic converted into a deterministic error: the
// process survives, every other cell still runs, and the report names
// the same (lowest-indexed) cell under any schedule.
type CellError struct {
	Index     int    // cell index within the figure's enumeration
	Recovered string // fmt.Sprint of the recovered panic value
	Stack     []byte // goroutine stack at the panic site
}

func (e *CellError) Error() string {
	return fmt.Sprintf("exp: cell %d panicked: %s", e.Index, e.Recovered)
}

// cellTimeoutKey carries the optional per-cell timeout through the
// campaign context (see WithCellTimeout).
type cellTimeoutKey struct{}

// WithCellTimeout returns a context under which every cell dispatched
// by RunCellsCtx/MapCellsCtx gets its own child context expiring after
// d. Cells that respect their context (long external steps, future
// remote backends) fail individually with a deadline error instead of
// wedging the whole campaign; d <= 0 disables the limit.
func WithCellTimeout(ctx context.Context, d time.Duration) context.Context {
	return context.WithValue(ctx, cellTimeoutKey{}, d)
}

func cellTimeout(ctx context.Context) time.Duration {
	d, _ := ctx.Value(cellTimeoutKey{}).(time.Duration)
	return d
}

// Workers resolves a parallelism request: n > 0 means exactly n
// workers; n <= 0 means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runCell executes one cell behind a panic barrier with its (optional)
// per-cell deadline. This is the single place a worker touches user
// code, so it is the single place a panic can be converted into data.
func runCell(ctx context.Context, i int, cell func(ctx context.Context, i int) error) (err error) {
	if d := cellTimeout(ctx); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &CellError{Index: i, Recovered: fmt.Sprint(r), Stack: debug.Stack()}
		}
	}()
	return cell(ctx, i)
}

// obsCell wraps runCell with the harness observability hooks: per-cell
// wall-clock latency ("exp.cell.wall") and completion/failure counts.
// With observability disabled (nil default registry) this is a single
// atomic load plus a nil check — zero allocations and no clock reads
// on the hot path (pinned by TestDisabledRegistryAddsZeroAllocs and
// BenchmarkObsv*).
func obsCell(ctx context.Context, i int, cell func(ctx context.Context, i int) error) error {
	reg := obsv.Default()
	t := reg.Timer("exp.cell.wall")
	err := runCell(ctx, i, cell)
	t.Stop()
	if reg != nil {
		if err != nil {
			reg.Counter("exp.cells.failed").Add(1)
		} else {
			reg.Counter("exp.cells.completed").Add(1)
		}
	}
	return err
}

// RunCells executes cell(i) for every i in [0, n) on a pool of at most
// `workers` goroutines (resolved via Workers). workers == 1 runs the
// cells serially on the calling goroutine — the exact serial semantics
// the determinism tests compare against.
//
// Every cell runs even if an earlier cell fails (cells are independent
// simulations; partial results stay valid). The returned error is the
// one from the lowest-indexed failing cell, so error reporting is
// deterministic under any schedule. Panics are isolated per cell (see
// CellError).
func RunCells(workers, n int, cell func(i int) error) error {
	return RunCellsCtx(context.Background(), workers, n, func(_ context.Context, i int) error {
		return cell(i)
	})
}

// RunCellsCtx is RunCells under a context: cancelling ctx stops the
// dispatch of new cells while in-flight cells drain to completion. The
// result is the lowest-indexed genuine cell error if any cell failed,
// an ErrInterrupted-wrapping error if the run was cut short without a
// cell failure, or nil.
func RunCellsCtx(ctx context.Context, workers, n int, cell func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var started int
	if workers == 1 {
		for started = 0; started < n; started++ {
			if ctx.Err() != nil {
				break
			}
			errs[started] = obsCell(ctx, started, cell)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = obsCell(ctx, i, cell)
				}
			}()
		}
		wg.Wait()
		started = int(next.Load())
		if started > n {
			started = n
		}
	}
	// Deterministic error selection: the lowest-indexed genuine failure
	// wins; interruption is reported only when nothing genuinely failed.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil && started < n {
		return fmt.Errorf("%w after %d/%d cells (%v)", ErrInterrupted, started, n, err)
	}
	return nil
}

// MapCells runs cell(i) for every i in [0, n) on the bounded pool and
// returns the results keyed by cell index (never completion order).
func MapCells[T any](workers, n int, cell func(i int) (T, error)) ([]T, error) {
	return MapCellsCtx(context.Background(), workers, n, func(_ context.Context, i int) (T, error) {
		return cell(i)
	})
}

// MapCellsCtx is MapCells under a context, with the same drain and
// deterministic-error semantics as RunCellsCtx.
func MapCellsCtx[T any](ctx context.Context, workers, n int, cell func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunCellsCtx(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := cell(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
