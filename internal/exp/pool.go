package exp

// The parallel experiment executor. Every figure is a collection of
// independent simulation cells — one (app, input, scheme, bin-count)
// run, each owning its own sim.Mach — so cells are embarrassingly
// parallel. RunCells/MapCells schedule them on a bounded worker pool
// while keeping results strictly ordered by cell index: a figure built
// at -parallel N is byte-identical to the serial one, because each cell
// writes only its own slot and aggregation happens after the barrier in
// enumeration order (never completion order).

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism request: n > 0 means exactly n
// workers; n <= 0 means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunCells executes cell(i) for every i in [0, n) on a pool of at most
// `workers` goroutines (resolved via Workers). workers == 1 runs the
// cells serially on the calling goroutine — the exact serial semantics
// the determinism tests compare against.
//
// Every cell runs even if an earlier cell fails (cells are independent
// simulations; partial results stay valid). The returned error is the
// one from the lowest-indexed failing cell, so error reporting is
// deterministic under any schedule.
func RunCells(workers, n int, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapCells runs cell(i) for every i in [0, n) on the bounded pool and
// returns the results keyed by cell index (never completion order).
func MapCells[T any](workers, n int, cell func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunCells(workers, n, func(i int) error {
		v, err := cell(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
