package exp

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cobra/internal/sim"
)

// TestRunSpecGoldenWire pins the canonical JSON spelling of a RunSpec.
// This IS the cobrad wire format (srv.JobSpec embeds RunSpec), so any
// drift here is a wire break.
func TestRunSpecGoldenWire(t *testing.T) {
	spec := RunSpec{
		App: "DegreeCount", Input: "KRON",
		Scale: 16, Seed: 7,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDCOBRA},
		Bins:    4096, NUCA: true, Cores: 4,
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"app":"DegreeCount","input":"KRON","scale":16,"seed":7,"schemes":["Baseline","COBRA"],"bins":4096,"nuca":true,"cores":4}`
	if string(b) != want {
		t.Fatalf("golden wire drift:\n got %s\nwant %s", b, want)
	}

	streamSpec := RunSpec{
		App: "StreamIngest", Input: "URND",
		Scale: 12, Schemes: []sim.SchemeID{sim.SchemeIDPHI},
		Kind: KindStream, Windows: 3, WindowUpdates: 1024,
	}
	b, err = json.Marshal(streamSpec)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"app":"StreamIngest","input":"URND","scale":12,"schemes":["PHI"],"kind":"stream","windows":3,"window_updates":1024}`
	if string(b) != want {
		t.Fatalf("stream golden wire drift:\n got %s\nwant %s", b, want)
	}
}

// TestRunSpecRoundTrip pins JSON round-trip fidelity.
func TestRunSpecRoundTrip(t *testing.T) {
	in := RunSpec{
		App: "StreamDelta", Input: "SKEW",
		Scale: 14, Seed: 99,
		Schemes: []sim.SchemeID{sim.SchemeIDPBSW},
		Bins:    256, Cores: 2,
		Kind: KindStream, Windows: 5, WindowUpdates: 2048,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out RunSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the spec:\n in  %+v\n out %+v", in, out)
	}
}

// TestRunSpecLegacyDecode pins wire back-compat: pre-typed clients
// sent schemes as arbitrary-case strings; those fixtures must still
// decode to the canonical ids.
func TestRunSpecLegacyDecode(t *testing.T) {
	legacy := `{"app":"SpMV","input":"SKEW","scale":10,"schemes":["baseline"," pb-sw ","cobra-comm"]}`
	var spec RunSpec
	if err := json.Unmarshal([]byte(legacy), &spec); err != nil {
		t.Fatalf("legacy fixture no longer decodes: %v", err)
	}
	want := []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDPBSW, sim.SchemeIDComm}
	if !reflect.DeepEqual(spec.Schemes, want) {
		t.Fatalf("legacy schemes decoded to %v", spec.Schemes)
	}
	// Unknown scheme names still fail loudly.
	if err := json.Unmarshal([]byte(`{"app":"SpMV","schemes":["FASTER"]}`), &spec); err == nil {
		t.Fatal("unknown scheme decoded silently")
	}
}

// TestRunSpecNormalize drives the single validation path.
func TestRunSpecNormalize(t *testing.T) {
	ok := RunSpec{App: "DegreeCount", Input: "KRON", Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}
	if err := ok.Normalize(Limits{}); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	if ok.Scale != DefaultOpts().Scale || ok.Cores != 1 {
		t.Fatalf("defaults not filled: %+v", ok)
	}

	limited := RunSpec{App: "DegreeCount", Input: "KRON", Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}
	if err := limited.Normalize(Limits{DefaultScale: 8, MaxScale: 12, MaxCores: 4}); err != nil {
		t.Fatal(err)
	}
	if limited.Scale != 8 {
		t.Fatalf("limit default scale not applied: %d", limited.Scale)
	}

	bad := []struct {
		name string
		spec RunSpec
		lim  Limits
		want string
	}{
		{"unknown app", RunSpec{App: "Nope", Input: "KRON", Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, Limits{}, "unknown workload"},
		{"unknown input", RunSpec{App: "DegreeCount", Input: "Nope", Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, Limits{}, "unknown input"},
		{"no schemes", RunSpec{App: "DegreeCount", Input: "KRON"}, Limits{}, "at least one scheme"},
		{"invalid scheme id", RunSpec{App: "DegreeCount", Input: "KRON", Schemes: []sim.SchemeID{0}}, Limits{}, "invalid scheme"},
		{"duplicate scheme", RunSpec{App: "DegreeCount", Input: "KRON", Schemes: []sim.SchemeID{sim.SchemeIDPHI, sim.SchemeIDPHI}}, Limits{}, "duplicate scheme"},
		{"scale too high", RunSpec{App: "DegreeCount", Input: "KRON", Scale: 13, Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, Limits{MaxScale: 12}, "out of range"},
		{"cores over cap", RunSpec{App: "DegreeCount", Input: "KRON", Cores: 8, Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, Limits{MaxCores: 4}, "exceeds limit"},
		{"negative bins", RunSpec{App: "DegreeCount", Input: "KRON", Bins: -1, Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, Limits{}, "negative bin"},
		{"windows without stream", RunSpec{App: "DegreeCount", Input: "KRON", Windows: 3, Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, Limits{}, "require kind"},
		{"stream of non-stream app", RunSpec{App: "DegreeCount", Input: "KRON", Kind: KindStream, Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, Limits{}, "not a streaming workload"},
		{"stream of PB-SW-IDEAL", RunSpec{App: "StreamIngest", Input: "URND", Kind: KindStream, Schemes: []sim.SchemeID{sim.SchemeIDPBIdeal}}, Limits{}, "not streamable"},
		{"unknown kind", RunSpec{App: "StreamIngest", Input: "URND", Kind: "batch", Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, Limits{}, "unknown run kind"},
	}
	for _, tc := range bad {
		err := tc.spec.Normalize(tc.lim)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}

	// Stream defaults fill in.
	st := RunSpec{App: "StreamIngest", Input: "URND", Scale: 10, Kind: KindStream, Schemes: []sim.SchemeID{sim.SchemeIDCOBRA}}
	if err := st.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	if st.Windows != DefaultStreamWindows || st.WindowUpdates != DefaultWindowUpdates(10) {
		t.Fatalf("stream defaults not filled: %+v", st)
	}
}

// TestRunSpecCellKeyCompat pins that spec-derived cell identities are
// byte-identical to the historical hand-built fingerprints, so caches
// and journals recorded before RunSpec stay valid.
func TestRunSpecCellKeyCompat(t *testing.T) {
	spec := RunSpec{
		App: "DegreeCount", Input: "KRON", Scale: 16, Seed: 42,
		Schemes: []sim.SchemeID{sim.SchemeIDCOBRA}, Bins: 64, Cores: 2,
	}
	base := sim.DefaultArch()
	got := spec.CellKey("srv", sim.SchemeIDCOBRA, base)
	arch := base.WithCores(2)
	want := CellKey{
		Figure: "srv", App: "DegreeCount", Input: "KRON", Scale: 16, Seed: 42,
		Scheme: "COBRA", Bins: 64, Cores: 2, Arch: ArchFingerprint(arch),
	}
	if got != want {
		t.Fatalf("CellKey drift:\n got %+v\nwant %+v", got, want)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("fingerprint drift")
	}
	// Offline fingerprints never carry a window suffix; streamed windows do.
	if strings.Contains(got.Fingerprint(), "win=") {
		t.Fatalf("offline fingerprint grew a window suffix: %s", got.Fingerprint())
	}
	got.Window = 3
	if !strings.HasSuffix(got.Fingerprint(), "|win=3") {
		t.Fatalf("windowed fingerprint missing suffix: %s", got.Fingerprint())
	}
}

// TestRunStreamResume kills a journaled streamed run mid-stream and
// resumes it from the same journal: completed windows replay, and the
// final functional state still matches the offline oracle built by the
// registry (BuildApp serves the concatenated stream).
func TestRunStreamResume(t *testing.T) {
	dir := t.TempDir()
	spec := RunSpec{
		App: "StreamIngest", Input: "URND", Scale: 8, Seed: 42,
		Schemes: []sim.SchemeID{sim.SchemeIDCOBRA},
		Kind:    KindStream, Windows: 4, WindowUpdates: 512,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	norm := spec
	if err := norm.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(dir, "stream.journal")
	j, err := OpenJournal(jpath, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	o := Opts{Scale: norm.Scale, Seed: norm.Seed, Arch: sim.DefaultArch(), Ctx: ctx, Journal: j}
	// Cancel after the second recorded window: the run dies between
	// windows 2 and 3.
	j.onRecord = func(total uint64) {
		if total == 2 {
			cancel()
		}
	}
	if _, err := RunStream(o, "stream", norm, sim.SchemeIDCOBRA); err == nil {
		t.Fatal("interrupted streamed run returned no error")
	}
	j.Close()

	j2, err := OpenJournal(jpath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("journal resumed with %d windows, want 2", j2.Len())
	}
	o2 := Opts{Scale: norm.Scale, Seed: norm.Seed, Arch: sim.DefaultArch(), Journal: j2}
	r, err := RunStream(o2, "stream", norm, sim.SchemeIDCOBRA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replayed != 2 {
		t.Fatalf("resumed run replayed %d windows, want 2", r.Replayed)
	}
	if len(r.PerWindow) != norm.Windows {
		t.Fatalf("resumed run has %d windows, want %d", len(r.PerWindow), norm.Windows)
	}

	// Oracle through the registry path: BuildApp serves the concatenated
	// stream, and a fresh un-journaled streamed run must agree with the
	// resumed one byte for byte.
	fresh, err := RunStream(Opts{Scale: norm.Scale, Seed: norm.Seed, Arch: sim.DefaultArch()}, "stream", norm, sim.SchemeIDCOBRA)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Final) != len(r.Final) {
		t.Fatal("final state lengths differ")
	}
	for i := range fresh.Final {
		if fresh.Final[i] != r.Final[i] {
			t.Fatalf("resumed final state diverges at key %d", i)
		}
	}
	for i := range fresh.PerWindow {
		if fresh.PerWindow[i] != r.PerWindow[i] {
			t.Fatalf("window %d metrics differ after resume", i)
		}
	}
}

// TestFigStream smoke-runs the streaming figure at a tiny geometry.
func TestFigStream(t *testing.T) {
	o := Opts{Scale: 8, Seed: 42, Arch: sim.DefaultArch(), StreamWindows: 2, StreamWindowUpdates: 256}
	tab, err := FigStream(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 3 pairs x 4 schemes
		t.Fatalf("FigStream produced %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "2" {
			t.Fatalf("row %v did not stream 2 windows", row)
		}
	}
}

// TestBuildStreamApps drives the registry entries for the stream
// family, including input validation.
func TestBuildStreamApps(t *testing.T) {
	for _, app := range StreamApps() {
		a, err := BuildApp(app, "URND", 8, 42)
		if err != nil {
			t.Fatalf("BuildApp(%s): %v", app, err)
		}
		if a.NumKeys != 1<<8 || a.NumUpdates != DefaultStreamWindows*DefaultWindowUpdates(8) {
			t.Fatalf("%s geometry: keys=%d updates=%d", app, a.NumKeys, a.NumUpdates)
		}
		if !a.Commutative {
			t.Fatalf("%s must be commutative", app)
		}
		if _, err := BuildApp(app, "KRON", 8, 42); err == nil {
			t.Fatalf("BuildApp(%s, KRON) accepted a non-stream input", app)
		}
	}
}
