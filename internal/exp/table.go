package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result with the same rows/series the
// paper's figure reports.
type Table struct {
	ID     string // "Figure 4a", "Table I", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note: "+n)
	}
	fmt.Fprintln(w)
}

// f2 formats a float with 2 decimals; fx as a multiplier.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fx(v float64) string { return fmt.Sprintf("%.2fx", v) }
func fp(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func fe(v float64) string { return fmt.Sprintf("%.3e", v) }
