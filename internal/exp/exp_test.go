package exp

import (
	"bytes"
	"strings"
	"testing"

	"cobra/internal/sim"
)

// tinyOpts keeps unit-test simulations fast.
func tinyOpts() Opts { return Opts{Scale: 12, Seed: 7, Arch: sim.DefaultArch()} }

func TestBuildAppAllPairs(t *testing.T) {
	for _, p := range DefaultSuite() {
		app, err := BuildApp(p.App, p.Input, 10, 1)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := app.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

func TestBuildAppErrors(t *testing.T) {
	if _, err := BuildApp("NoSuchApp", "URND", 10, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := BuildApp("DegreeCount", "NoSuchInput", 10, 1); err == nil {
		t.Fatal("unknown input accepted")
	}
	if _, err := BuildApp("IntSort", "KRONX", 10, 1); err == nil {
		t.Fatal("unknown IntSort input accepted")
	}
	if _, err := BuildApp("SpMV", "NoSuchMatrix", 10, 1); err == nil {
		t.Fatal("unknown matrix input accepted")
	}
	// Error messages must name the valid sets — they travel to CLI
	// stderr and service 400 bodies verbatim.
	_, err := BuildApp("NoSuchApp", "URND", 10, 1)
	if err == nil || !strings.Contains(err.Error(), "DegreeCount") {
		t.Fatalf("unknown-app error does not name valid apps: %v", err)
	}
}

func TestBuildAppScaleOutOfRange(t *testing.T) {
	for _, scale := range []int{-1, 0, MinScale - 1, MaxScale + 1, 1 << 20} {
		if _, err := BuildApp("DegreeCount", "URND", scale, 1); err == nil {
			t.Errorf("scale %d accepted, want range error", scale)
		} else if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("scale %d: error %q does not mention the range", scale, err)
		}
	}
	// Both bounds are inclusive and must build.
	for _, scale := range []int{MinScale, 12} {
		if _, err := BuildApp("DegreeCount", "URND", scale, 1); err != nil {
			t.Errorf("scale %d rejected: %v", scale, err)
		}
	}
}

func TestValidAppAndInput(t *testing.T) {
	for _, app := range AppNames() {
		if err := ValidApp(app); err != nil {
			t.Errorf("ValidApp(%q): %v", app, err)
		}
	}
	if err := ValidApp("NoSuchApp"); err == nil {
		t.Error("ValidApp accepted an unknown app")
	}
	for _, in := range InputNames() {
		if err := ValidInput(in); err != nil {
			t.Errorf("ValidInput(%q): %v", in, err)
		}
	}
	if err := ValidInput("NoSuchInput"); err == nil {
		t.Error("ValidInput accepted an unknown input")
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range SchemeNames() {
		s, err := ParseScheme(name)
		if err != nil || string(s) != name {
			t.Errorf("ParseScheme(%q) = %q, %v", name, s, err)
		}
	}
	for _, bad := range []string{"", "baseline", "pb-sw", "COBRA ", "Fastest"} {
		if _, err := ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "PB-SW-IDEAL") {
			t.Errorf("ParseScheme(%q) error does not list valid schemes: %v", bad, err)
		}
	}
}

func TestRunSchemeInvalidName(t *testing.T) {
	app, err := BuildApp("DegreeCount", "URND", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []sim.Scheme{"", "bogus", "baseline"} {
		m, err := RunScheme(app, bad, 16, sim.DefaultArch())
		if err == nil {
			t.Errorf("RunScheme(%q) accepted", bad)
		}
		if m.Cycles != 0 {
			t.Errorf("RunScheme(%q) returned non-zero metrics with an error", bad)
		}
	}
}

func TestAppAndInputNames(t *testing.T) {
	if len(AppNames()) != 11 {
		t.Fatalf("AppNames = %v", AppNames())
	}
	if len(InputNames()) == 0 || len(GraphApps()) != 4 || len(MatrixApps()) != 3 || len(StreamApps()) != 2 {
		t.Fatal("name lists wrong")
	}
}

func TestBestPBSWPicksMinimum(t *testing.T) {
	app, err := BuildApp("DegreeCount", "URND", 13, 3)
	if err != nil {
		t.Fatal(err)
	}
	best, sweep, err := BestPBSW(app, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) == 0 {
		t.Fatal("empty sweep")
	}
	for _, m := range sweep {
		if m.Cycles < best.Cycles {
			t.Fatalf("sweep has faster run (%d bins) than best (%d bins)", m.NumBins, best.NumBins)
		}
	}
	ideal := BestIdealPB(sweep)
	if ideal.Cycles > best.Cycles {
		t.Fatal("ideal slower than best PB-SW")
	}
	if BestIdealPB(nil).Cycles != 0 {
		t.Fatal("empty sweep ideal should be zero")
	}
}

func TestRunSchemeDispatch(t *testing.T) {
	app, err := BuildApp("DegreeCount", "URND", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	arch := sim.DefaultArch()
	for _, s := range []sim.Scheme{sim.SchemeBaseline, sim.SchemePBSW, sim.SchemePBIdeal, sim.SchemeCOBRA, sim.SchemeComm, sim.SchemePHI} {
		m, err := RunScheme(app, s, 16, arch)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if m.Scheme != s || m.Cycles <= 0 {
			t.Fatalf("%s: bad metrics %+v", s, m)
		}
	}
	if _, err := RunScheme(app, "bogus", 0, arch); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestRunSchemeRejectsCommOnNonCommutative(t *testing.T) {
	app, err := BuildApp("NeighborPopulate", "URND", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunScheme(app, sim.SchemeComm, 16, sim.DefaultArch()); err == nil {
		t.Fatal("COBRA-COMM ran on NeighborPopulate")
	}
	if _, err := RunScheme(app, sim.SchemePHI, 16, sim.DefaultArch()); err == nil {
		t.Fatal("PHI ran on NeighborPopulate")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "a note")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "a  bb", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if f2(1.234) != "1.23" || fx(2.5) != "2.50x" || fp(0.5) != "50.0%" {
		t.Fatal("formatters wrong")
	}
	if !strings.Contains(fe(12345.0), "e+04") {
		t.Fatalf("fe = %s", fe(12345.0))
	}
}

// The figure drivers must all run end-to-end at tiny scale. This is the
// regression net for the whole experiment pipeline.
func TestFiguresRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipeline test skipped in -short mode")
	}
	o := tinyOpts()
	for name, fn := range map[string]func(Opts) (*Table, error){
		"fig2": Fig2, "fig4": Fig4, "fig5": Fig5, "table1": Table1,
		"fig10": Fig10, "fig11": Fig11, "fig12": Fig12,
		"fig13a": Fig13a, "fig13b": Fig13b, "fig13c": Fig13c, "fig14": Fig14,
		"a1": AblationPrefetcher, "a2": AblationLLCPolicy, "a3": AblationPINV, "a4": AblationMLP, "a5": AblationNoPartition, "a6": AblationNUCA,
	} {
		tab, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", name)
		}
	}
}

func TestFig15RunsOnHost(t *testing.T) {
	if testing.Short() {
		t.Skip("host timing test skipped in -short mode")
	}
	tab, err := Fig15(Opts{Scale: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 2 inputs x 3 schemes.
	if len(tab.Rows) != 6 {
		t.Fatalf("Fig15 rows = %d, want 6", len(tab.Rows))
	}
}

func TestHeadlineShapesInDRAMBoundRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	// The paper's headline ordering — Baseline < PB-SW <= PB-SW-IDEAL
	// and PB-SW < COBRA — must hold for workloads whose irregular
	// working set exceeds the LLC slice (the regime the paper targets;
	// at toy scales where data fits on chip, PB correctly loses).
	// 8 B/16 B-element apps reach that regime at scale 18 already.
	arch := sim.DefaultArch()
	for _, p := range []pair{{"NeighborPopulate", "KRON"}, {"PageRank", "URND"}, {"Transpose", "RAND"}} {
		app, err := BuildApp(p.App, p.Input, 18, 42)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sim.RunBaseline(app, arch)
		if err != nil {
			t.Fatal(err)
		}
		pbsw, err := sim.RunPBSW(app, 1024, arch)
		if err != nil {
			t.Fatal(err)
		}
		cob, err := sim.RunCOBRA(app, sim.CobraOpt{}, arch)
		if err != nil {
			t.Fatal(err)
		}
		if pbsw.Cycles >= base.Cycles {
			t.Errorf("%v: PB-SW (%.3g cyc) not faster than baseline (%.3g)", p, pbsw.Cycles, base.Cycles)
		}
		if cob.Cycles >= pbsw.Cycles {
			t.Errorf("%v: COBRA (%.3g cyc) not faster than PB-SW (%.3g)", p, cob.Cycles, pbsw.Cycles)
		}
		// COBRA cuts Binning instructions vs PB-SW (Figure 12).
		if cob.BinCtr.Instructions >= pbsw.BinCtr.Instructions {
			t.Errorf("%v: COBRA binning instructions not reduced", p)
		}
	}
}
