package exp

import (
	"fmt"

	"cobra/internal/cache"
	"cobra/internal/mem"
	"cobra/internal/sim"
)

// This file contains ablation experiments for the design choices
// DESIGN.md calls out — they are not paper figures, but they justify
// the modeling decisions the figures rest on.

// AblationPrefetcher quantifies the L2 stream prefetcher's contribution:
// the paper's Binning phase is supposed to be streaming-friendly, which
// is only visible if the prefetcher actually hides stream latency.
func AblationPrefetcher(o Opts) (*Table, error) {
	app, err := BuildApp("NeighborPopulate", "KRON", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A1",
		Title:  "L2 stream prefetcher on/off (Neighbor-Populate, KRON)",
		Header: []string{"prefetcher", "scheme", "cycles", "DRAM-reads"},
	}
	// One cell per (prefetcher-setting, scheme) point. The modified
	// architectures get their own fingerprints, so checkpoints recorded
	// with the prefetcher off are never replayed for the on-config.
	rows, err := mapCells(o, 4, func(i int) ([]string, error) {
		pf, scheme := i/2 == 0, i%2
		arch := o.Arch
		label := "on"
		if !pf {
			arch.Mem.PrefetchDegree = 0
			label = "off"
		}
		key := CellKey{Figure: "Ablation A1", App: "NeighborPopulate", Input: "KRON", Arch: ArchFingerprint(arch)}
		if scheme == 0 {
			key.Scheme = "Baseline"
			base, err := o.journaled(key, func() (sim.Metrics, error) { return sim.RunBaseline(app, arch) })
			if err != nil {
				return nil, err
			}
			return []string{label, "Baseline", fe(base.Cycles), fmt.Sprintf("%d", base.DRAM.ReadLines)}, nil
		}
		key.Scheme, key.Bins = "PB-SW", 4096
		pbm, err := o.journaled(key, func() (sim.Metrics, error) { return sim.RunPBSW(app, 4096, arch) })
		if err != nil {
			return nil, err
		}
		return []string{label, "PB-SW", fe(pbm.Cycles), fmt.Sprintf("%d", pbm.DRAM.ReadLines)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "PB leans on streaming; disabling the prefetcher hurts PB more than baseline")
	return t, nil
}

// AblationLLCPolicy compares DRRIP (Table II) against true LRU at the
// LLC for the scan-heavy baseline.
func AblationLLCPolicy(o Opts) (*Table, error) {
	app, err := BuildApp("DegreeCount", "URND", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A2",
		Title:  "LLC replacement policy (DegreeCount, URND baseline)",
		Header: []string{"policy", "cycles", "LLC-miss-rate"},
	}
	policies := []cache.PolicyKind{cache.DRRIP, cache.TrueLRU, cache.Random}
	rows, err := mapCells(o, len(policies), func(i int) ([]string, error) {
		arch := o.Arch
		arch.Mem.LLC.Policy = policies[i]
		m, err := o.journaled(CellKey{Figure: "Ablation A2", App: "DegreeCount", Input: "URND",
			Scheme: "Baseline", Arch: ArchFingerprint(arch)},
			func() (sim.Metrics, error) { return sim.RunBaseline(app, arch) })
		if err != nil {
			return nil, err
		}
		return []string{policies[i].String(), fe(m.Cycles), fp(m.LLCMissRate)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "DRRIP's scan resistance protects the reused counter lines from streaming input")
	return t, nil
}

// AblationPINV reproduces §VII-A's PINV footnote: capping COBRA's LLC
// C-Buffer count at a medium value recovers the accumulate performance
// that fine bins destroy for a no-reuse scatter.
func AblationPINV(o Opts) (*Table, error) {
	app, err := BuildApp("PINV", "PERM", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A3",
		Title:  "PINV: COBRA with capped (medium) LLC C-Buffer count (§VII-A)",
		Header: []string{"LLC-bufs", "binning-cyc", "accum-cyc", "total-cyc"},
	}
	caps := []int{0, 1024, 256, 64} // 0 = uncapped default
	ms, err := mapCells(o, len(caps), func(i int) (sim.Metrics, error) {
		return o.journaled(CellKey{Figure: "Ablation A3", App: "PINV", Input: "PERM",
			Scheme: fmt.Sprintf("COBRA[maxllcbufs=%d]", caps[i])},
			func() (sim.Metrics, error) { return sim.RunCOBRA(app, sim.CobraOpt{MaxLLCBufs: caps[i]}, o.Arch) })
	})
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("%d (default)", ms[0].NumBins), fe(ms[0].BinCycles), fe(ms[0].AccumCycles), fe(ms[0].Cycles))
	for i, cap := range caps[1:] {
		m := ms[i+1]
		t.AddRow(fmt.Sprintf("%d", cap), fe(m.BinCycles), fe(m.AccumCycles), fe(m.Cycles))
	}
	t.Notes = append(t.Notes,
		"PINV writes each key exactly once, so fine bins add per-bin overhead with no reuse to harvest;",
		"the paper's medium-bin COBRA variant lifted its mean to 1.94x over PB")
	return t, nil
}

// AblationNoPartition reproduces §V-E's "Need for Static Cache
// Partitioning" claim: without way reservation, the baseline
// replacement policy still keeps C-Buffer inserts hitting in L1 (<1%
// miss rate) because all competing Binning accesses are streaming.
func AblationNoPartition(o Opts) (*Table, error) {
	t := &Table{
		ID:     "Ablation A5",
		Title:  "COBRA without static cache partitioning: C-Buffer L1 miss rate",
		Header: []string{"app", "input", "cbuf-miss-rate", "binning-vs-partitioned"},
	}
	pairs := []pair{{"NeighborPopulate", "KRON"}, {"DegreeCount", "URND"}}
	rows, err := mapCells(o, len(pairs), func(i int) ([]string, error) {
		p := pairs[i]
		app, err := BuildApp(p.App, p.Input, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		ref, err := o.journaled(CellKey{Figure: "Ablation A5", App: p.App, Input: p.Input, Scheme: "COBRA[skipaccum]"},
			func() (sim.Metrics, error) { return sim.RunCOBRA(app, sim.CobraOpt{SkipAccum: true}, o.Arch) })
		if err != nil {
			return nil, err
		}
		m, err := o.journaled(CellKey{Figure: "Ablation A5", App: p.App, Input: p.Input, Scheme: "COBRA[nopart,skipaccum]"},
			func() (sim.Metrics, error) {
				return sim.RunCOBRA(app, sim.CobraOpt{NoPartition: true, SkipAccum: true}, o.Arch)
			})
		if err != nil {
			return nil, err
		}
		return []string{p.App, p.Input, fp(m.CBufMissRate), fx(m.BinCycles / ref.BinCycles)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "paper: <1% C-Buffer miss rate without partitioning (streaming co-traffic)")
	return t, nil
}

// AblationMLP sweeps the core's MSHR count, the knob that controls how
// much memory-level parallelism hides irregular-miss latency — the
// modeling decision the whole baseline/PB gap rests on.
func AblationMLP(o Opts) (*Table, error) {
	app, err := BuildApp("DegreeCount", "URND", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A4",
		Title:  "MSHR sweep: baseline sensitivity to memory-level parallelism",
		Header: []string{"MSHRs", "baseline-cyc", "PB-SW-cyc", "PB-speedup"},
	}
	mshrSweep := []int{1, 4, 10, 16}
	rows, err := mapCells(o, len(mshrSweep), func(i int) ([]string, error) {
		arch := o.Arch
		arch.CPU.MSHRs = mshrSweep[i]
		af := ArchFingerprint(arch)
		base, err := o.journaled(CellKey{Figure: "Ablation A4", App: "DegreeCount", Input: "URND", Scheme: "Baseline", Arch: af},
			func() (sim.Metrics, error) { return sim.RunBaseline(app, arch) })
		if err != nil {
			return nil, err
		}
		pbm, err := o.journaled(CellKey{Figure: "Ablation A4", App: "DegreeCount", Input: "URND", Scheme: "PB-SW", Bins: 4096, Arch: af},
			func() (sim.Metrics, error) { return sim.RunPBSW(app, 4096, arch) })
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%d", mshrSweep[i]), fe(base.Cycles), fe(pbm.Cycles), fx(pbm.Speedup(base))}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "fewer MSHRs punish the irregular baseline far more than streaming PB")
	return t, nil
}

// AblationNUCA turns on Table II's 4x4-mesh NUCA modeling for the
// shared-LLC view: baseline irregular accesses scatter across remote
// banks (paying NoC hops) while COBRA's C-Buffers stay in the local
// bank — sharpening COBRA's advantage.
func AblationNUCA(o Opts) (*Table, error) {
	app, err := BuildApp("DegreeCount", "URND", o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A6",
		Title:  "NUCA mesh latency on the shared-LLC view (DegreeCount, URND)",
		Header: []string{"NUCA", "baseline-cyc", "COBRA-cyc", "COBRA-speedup"},
	}
	rows, err := mapCells(o, 2, func(i int) ([]string, error) {
		arch := o.Arch
		label := "off (local slice)"
		if i == 1 {
			arch.Mem.NUCA = mem.DefaultNUCA()
			label = "on (4x4 mesh)"
		}
		af := ArchFingerprint(arch)
		base, err := o.journaled(CellKey{Figure: "Ablation A6", App: "DegreeCount", Input: "URND", Scheme: "Baseline", Arch: af},
			func() (sim.Metrics, error) { return sim.RunBaseline(app, arch) })
		if err != nil {
			return nil, err
		}
		cob, err := o.journaled(CellKey{Figure: "Ablation A6", App: "DegreeCount", Input: "URND", Scheme: "COBRA", Arch: af},
			func() (sim.Metrics, error) { return sim.RunCOBRA(app, sim.CobraOpt{}, arch) })
		if err != nil {
			return nil, err
		}
		return []string{label, fe(base.Cycles), fe(cob.Cycles), fx(cob.Speedup(base))}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "NoC hops penalize the baseline's bank-scattered accesses more than COBRA's")
	return t, nil
}
