package exp

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestMapCellsOrdering: results are keyed by cell index, never by
// completion order, at every parallelism level.
func TestMapCellsOrdering(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 4, 0} {
		got, err := MapCells(workers, n, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got[i] != i*i {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, got[i], i*i)
			}
		}
	}
}

// TestRunCellsLowestError: the reported error is the lowest-indexed
// failure regardless of schedule, and every cell still runs.
func TestRunCellsLowestError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := RunCells(workers, 16, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 11 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "cell 3") {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure (cell 3)", workers, err)
		}
		if ran.Load() != 16 {
			t.Fatalf("workers=%d: ran %d cells, want all 16 despite the failure", workers, ran.Load())
		}
	}
}

func TestRunCellsEmpty(t *testing.T) {
	if err := RunCells(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestRunCellsBoundedConcurrency: no more than `workers` cells are ever
// in flight at once.
func TestRunCellsBoundedConcurrency(t *testing.T) {
	const workers, n = 2, 32
	var inFlight, peak atomic.Int64
	err := RunCells(workers, n, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			runtime.Gosched()
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}
