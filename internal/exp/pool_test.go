package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestMapCellsOrdering: results are keyed by cell index, never by
// completion order, at every parallelism level.
func TestMapCellsOrdering(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 4, 0} {
		got, err := MapCells(workers, n, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got[i] != i*i {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, got[i], i*i)
			}
		}
	}
}

// TestRunCellsLowestError: the reported error is the lowest-indexed
// failure regardless of schedule, and every cell still runs.
func TestRunCellsLowestError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := RunCells(workers, 16, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 11 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "cell 3") {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure (cell 3)", workers, err)
		}
		if ran.Load() != 16 {
			t.Fatalf("workers=%d: ran %d cells, want all 16 despite the failure", workers, ran.Load())
		}
	}
}

func TestRunCellsEmpty(t *testing.T) {
	if err := RunCells(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestRunCellsPanicIsolation is the regression for the old
// crash-the-process behaviour: a panicking cell must surface as the
// lowest-indexed deterministic *CellError while every remaining cell
// still runs, at any parallelism.
func TestRunCellsPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		var ran atomic.Int64
		err := RunCells(workers, 16, func(i int) error {
			ran.Add(1)
			if i == 5 || i == 12 {
				panic(fmt.Sprintf("cell %d exploded", i))
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic swallowed entirely", workers)
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: err = %T %v, want *CellError", workers, err, err)
		}
		if ce.Index != 5 {
			t.Fatalf("workers=%d: reported cell %d, want the lowest-indexed panic (5)", workers, ce.Index)
		}
		if want := "exp: cell 5 panicked: cell 5 exploded"; ce.Error() != want {
			t.Fatalf("workers=%d: error %q, want deterministic %q", workers, ce.Error(), want)
		}
		if len(ce.Stack) == 0 {
			t.Fatalf("workers=%d: panic stack not captured", workers)
		}
		if ran.Load() != 16 {
			t.Fatalf("workers=%d: ran %d cells, want all 16 despite the panics", workers, ran.Load())
		}
	}
}

// TestRunCellsCtxCancelDrains: cancellation stops dispatch of new cells
// but completed cells keep their results, and the run reports
// ErrInterrupted.
func TestRunCellsCtxCancelDrains(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		const n, stopAfter = 64, 5
		var done atomic.Int64
		err := RunCellsCtx(ctx, workers, n, func(_ context.Context, i int) error {
			// Cells take long enough that the pool cannot race through
			// all n of them inside the cancellation window.
			time.Sleep(time.Millisecond)
			if done.Add(1) == stopAfter {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("workers=%d: err = %v, want ErrInterrupted", workers, err)
		}
		if d := done.Load(); d < stopAfter || d >= n {
			t.Fatalf("workers=%d: %d cells completed; want >= %d (drain) and < %d (stopped dispatch)", workers, d, stopAfter, n)
		}
	}
}

// TestRunCellsCtxCellErrorBeatsInterrupt: a genuine cell failure is
// reported in preference to the interruption, keeping error reporting
// deterministic.
func TestRunCellsCtxCellErrorBeatsInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := RunCellsCtx(ctx, 1, 8, func(_ context.Context, i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	cancel()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the genuine cell error", err)
	}
}

// TestRunCellsCtxCompletedRunNotInterrupted: a run whose context is
// cancelled only after every cell finished reports success.
func TestRunCellsCtxCompletedRunNotInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := RunCellsCtx(ctx, 2, 8, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestWithCellTimeout: cells receive a per-cell deadline context; a
// cell that respects it fails individually without wedging the pool.
func TestWithCellTimeout(t *testing.T) {
	ctx := WithCellTimeout(context.Background(), time.Millisecond)
	err := RunCellsCtx(ctx, 2, 4, func(cctx context.Context, i int) error {
		if i == 1 {
			select {
			case <-cctx.Done():
				return fmt.Errorf("cell %d: %w", i, cctx.Err())
			case <-time.After(5 * time.Second):
				return errors.New("per-cell deadline never fired")
			}
		}
		if _, ok := cctx.Deadline(); !ok {
			return fmt.Errorf("cell %d: no deadline set", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("err = %v, want the timed-out cell's deadline error", err)
	}
}

// TestMapCellsCtxDropsResultsOnError mirrors MapCells semantics under
// cancellation: no partial slice escapes.
func TestMapCellsCtxDropsResultsOnError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCellsCtx(ctx, 2, 8, func(context.Context, int) (int, error) { return 1, nil })
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil slice and interrupt error", out, err)
	}
}

// TestRunCellsBoundedConcurrency: no more than `workers` cells are ever
// in flight at once.
func TestRunCellsBoundedConcurrency(t *testing.T) {
	const workers, n = 2, 32
	var inFlight, peak atomic.Int64
	err := RunCells(workers, n, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			runtime.Gosched()
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}
