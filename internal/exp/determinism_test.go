package exp

import (
	"bytes"
	"runtime"
	"testing"
)

// renderFigure runs a figure driver and returns its rendered bytes —
// exactly what cmd/figures would print (minus the timing note it
// appends, which is inherently nondeterministic).
func renderFigure(t *testing.T, fn func(Opts) (*Table, error), o Opts) []byte {
	t.Helper()
	tab, err := fn(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	return buf.Bytes()
}

// TestFig10DeterministicUnderParallelism is the tentpole's core
// regression: a figure built on the full worker pool must be
// byte-identical to the serial build. ResetMemos between runs forces
// the parallel run to regenerate inputs and suite results from scratch
// — otherwise the second run would trivially replay the first run's
// memoized cells and the comparison would prove nothing.
func TestFig10DeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism regression skipped in -short mode")
	}
	o := tinyOpts()

	o.Parallel = 1
	ResetMemos()
	serial := renderFigure(t, Fig10, o)

	o.Parallel = runtime.GOMAXPROCS(0)
	ResetMemos()
	parallel := renderFigure(t, Fig10, o)

	if !bytes.Equal(serial, parallel) {
		t.Fatalf("Fig10 output differs between -parallel 1 and -parallel %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			o.Parallel, serial, parallel)
	}
}

// TestAblationDeterministicUnderParallelism covers the MapCells
// adoption in the ablation drivers with the cheapest table (A2: three
// independent policy cells).
func TestAblationDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism regression skipped in -short mode")
	}
	o := tinyOpts()

	o.Parallel = 1
	ResetMemos()
	serial := renderFigure(t, AblationLLCPolicy, o)

	o.Parallel = runtime.GOMAXPROCS(0)
	ResetMemos()
	parallel := renderFigure(t, AblationLLCPolicy, o)

	if !bytes.Equal(serial, parallel) {
		t.Fatalf("A2 output differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
