package exp

// Journal compaction. Long campaigns (and cobrad cache journals that
// survive many restarts) accumulate superseded lines: duplicate keys
// from overlapping runs, and the occasional torn tail a crash left
// behind. Replay semantics are last-write-wins, so every line but the
// final one per key is dead weight that still costs load time and
// disk. CompactJournal rewrites the file down to exactly one line per
// key — atomically, via the same staged-write machinery as figure
// artifacts, so a crash mid-compaction leaves the original journal
// untouched.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cobra/internal/fsx"
)

// CompactJournal rewrites the journal at path, dropping superseded
// duplicate entries (last metrics win, as in replay) and any torn
// tail. Surviving keys keep their first-appearance order, so a
// compacted journal diffs cleanly against its ancestor. Returns the
// number of cells kept and the number of lines dropped (superseded
// duplicates plus a torn tail, if any).
//
// The journal must not be open for appending during compaction; run it
// between campaigns (figures -compact-checkpoint) or with the service
// stopped.
func CompactJournal(path string) (kept, dropped int, err error) {
	scan, err := scanJournal(path)
	if err != nil {
		return 0, 0, err
	}
	kept = len(scan.order)
	dropped = scan.entries - kept
	if scan.torn {
		dropped++
	}
	if dropped == 0 {
		return kept, 0, nil // already compact; leave the bytes alone
	}
	err = fsx.WriteFileAtomic(path, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		for _, k := range scan.order {
			line, err := json.Marshal(journalEntry{K: k, M: scan.cells[k]})
			if err != nil {
				return fmt.Errorf("exp: encoding compacted entry: %w", err)
			}
			line = append(line, '\n')
			if _, err := bw.Write(line); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
	if err != nil {
		return 0, 0, err
	}
	return kept, dropped, nil
}
