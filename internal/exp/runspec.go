package exp

// RunSpec: the one canonical description of "what to run".
//
// Five growth PRs left four divergent spellings of a run request —
// cobrasim flags, figures flags, srv.JobSpec, and dist's cell scatter —
// each with its own validation copy. RunSpec is now the single source
// of truth: every boundary (CLI flag parsing, the cobrad wire format,
// fleet cell translation) builds one of these and funnels through
// Normalize, so a spec that validates anywhere validates everywhere,
// and the stream window parameters exist in exactly one place.

import (
	"fmt"

	"cobra/internal/mem"
	"cobra/internal/sim"
	"cobra/internal/stream"
)

// Run kinds. The zero value (offline) is the historical behavior:
// build the whole workload and run it as one cell per scheme.
const (
	// KindOffline runs the workload as static offline cells.
	KindOffline = ""
	// KindStream runs the workload through the windowed streaming
	// engine: windows binned, flushed, and applied as epochs.
	KindStream = "stream"
)

// Streaming defaults: 8 windows of 2^(scale+1) updates each totals
// 16·2^scale updates — the same stream length as the offline graph
// workloads (URND carries 16n edges), so streamed and offline cells
// are comparable at equal scale.
const DefaultStreamWindows = 8

// DefaultWindowUpdates returns the default per-window update count at
// a scale.
func DefaultWindowUpdates(scale int) int { return 2 << scale }

// Limits bounds a RunSpec at normalization time. The zero value
// applies only the registry's own bounds (exp.MinScale/MaxScale, no
// core cap) — what CLIs use; the cobrad service fills it from its
// Config.
type Limits struct {
	// DefaultScale replaces a zero Scale (0: DefaultOpts().Scale).
	DefaultScale int
	// MaxScale caps Scale below exp.MaxScale (<= 0: exp.MaxScale).
	MaxScale int
	// MaxCores caps Cores (<= 0: uncapped).
	MaxCores int
}

// RunSpec is the canonical run request: one (app, input, scale, seed)
// workload through one or more schemes, offline or streamed. Its JSON
// form IS the cobrad wire format (srv.JobSpec embeds it), so the field
// tags are frozen.
type RunSpec struct {
	App   string `json:"app"`
	Input string `json:"input"`
	// Scale is the input scale (keys/vertices ~ 2^scale); 0 selects the
	// normalizing limit's default.
	Scale int    `json:"scale,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Schemes are the execution schemes to run, at least one. The wire
	// form is the canonical scheme names (legacy case variants are
	// accepted on input).
	Schemes []sim.SchemeID `json:"schemes"`
	// Bins is the PB-SW/PHI bin count; 0 sweeps offline (and selects
	// the fixed epoch default when streaming).
	Bins int `json:"bins,omitempty"`
	// NUCA enables Table II's 4x4-mesh NUCA latency model.
	NUCA bool `json:"nuca,omitempty"`
	// Cores is the simulated core count (0 and 1 both select the
	// single-core model; >1 runs the sharded multi-core model).
	Cores int `json:"cores,omitempty"`

	// Kind selects offline ("" — the historical behavior) or streamed
	// ("stream") execution.
	Kind string `json:"kind,omitempty"`
	// Windows is the streamed window count (0: DefaultStreamWindows).
	// Only valid with Kind "stream".
	Windows int `json:"windows,omitempty"`
	// WindowUpdates is the per-window update count — the epoch size
	// (0: DefaultWindowUpdates(scale)). Only valid with Kind "stream".
	WindowUpdates int `json:"window_updates,omitempty"`
}

// Normalize validates the spec against the experiment registry and the
// given limits, filling defaults in place. Every violation is a client
// error. This is the ONE validation path: cobrasim, figures, cobrad,
// and the fleet translator all call it instead of keeping copies.
func (s *RunSpec) Normalize(lim Limits) error {
	if err := ValidApp(s.App); err != nil {
		return err
	}
	if err := ValidInput(s.Input); err != nil {
		return err
	}
	if s.Scale == 0 {
		s.Scale = lim.DefaultScale
		if s.Scale == 0 {
			s.Scale = DefaultOpts().Scale
		}
	}
	maxScale := lim.MaxScale
	if maxScale <= 0 || maxScale > MaxScale {
		maxScale = MaxScale
	}
	if s.Scale < MinScale || s.Scale > maxScale {
		return fmt.Errorf("exp: scale %d out of range [%d, %d]", s.Scale, MinScale, maxScale)
	}
	if len(s.Schemes) == 0 {
		return fmt.Errorf("exp: spec needs at least one scheme (want of %v)", SchemeNames())
	}
	seen := map[sim.SchemeID]bool{}
	for _, id := range s.Schemes {
		if !id.Valid() {
			return fmt.Errorf("exp: invalid scheme id %d in spec", uint8(id))
		}
		if seen[id] {
			return fmt.Errorf("exp: duplicate scheme %q in spec", id)
		}
		seen[id] = true
	}
	if s.Bins < 0 {
		return fmt.Errorf("exp: negative bin count %d", s.Bins)
	}
	if s.Cores < 0 {
		return fmt.Errorf("exp: negative core count %d", s.Cores)
	}
	if s.Cores == 0 {
		s.Cores = 1
	}
	if lim.MaxCores > 0 && s.Cores > lim.MaxCores {
		return fmt.Errorf("exp: core count %d exceeds limit %d", s.Cores, lim.MaxCores)
	}
	switch s.Kind {
	case KindOffline:
		if s.Windows != 0 || s.WindowUpdates != 0 {
			return fmt.Errorf("exp: window parameters require kind %q", KindStream)
		}
	case KindStream:
		if !IsStreamApp(s.App) {
			return fmt.Errorf("exp: app %q is not a streaming workload (want one of %v)", s.App, StreamApps())
		}
		for _, id := range s.Schemes {
			if !stream.Streamable(id.Scheme()) {
				return fmt.Errorf("exp: scheme %q is not streamable", id)
			}
		}
		if s.Windows < 0 || s.WindowUpdates < 0 {
			return fmt.Errorf("exp: negative stream window parameters")
		}
		if s.Windows == 0 {
			s.Windows = DefaultStreamWindows
		}
		if s.WindowUpdates == 0 {
			s.WindowUpdates = DefaultWindowUpdates(s.Scale)
		}
	default:
		return fmt.Errorf("exp: unknown run kind %q (want %q or %q)", s.Kind, KindOffline, KindStream)
	}
	return nil
}

// Validate is Normalize without mutation or limits: it reports whether
// a fully specified spec is runnable as-is.
func (s RunSpec) Validate() error {
	c := s
	return c.Normalize(Limits{})
}

// NormalizeKnobs validates and defaults only the numeric knobs shared
// by campaign templates (scale, cores, stream window parameters) —
// figures regenerates many (app, input) pairs per invocation, so the
// workload identity fields stay per-figure while the knobs come from
// one spec.
func (s *RunSpec) NormalizeKnobs(lim Limits) error {
	if s.Scale == 0 {
		s.Scale = lim.DefaultScale
		if s.Scale == 0 {
			s.Scale = DefaultOpts().Scale
		}
	}
	maxScale := lim.MaxScale
	if maxScale <= 0 || maxScale > MaxScale {
		maxScale = MaxScale
	}
	if s.Scale < MinScale || s.Scale > maxScale {
		return fmt.Errorf("exp: scale %d out of range [%d, %d]", s.Scale, MinScale, maxScale)
	}
	if s.Cores < 0 {
		return fmt.Errorf("exp: negative core count %d", s.Cores)
	}
	if s.Cores == 0 {
		s.Cores = 1
	}
	if lim.MaxCores > 0 && s.Cores > lim.MaxCores {
		return fmt.Errorf("exp: core count %d exceeds limit %d", s.Cores, lim.MaxCores)
	}
	if s.Windows < 0 || s.WindowUpdates < 0 {
		return fmt.Errorf("exp: negative stream window parameters")
	}
	if s.Windows == 0 {
		s.Windows = DefaultStreamWindows
	}
	if s.WindowUpdates == 0 {
		s.WindowUpdates = DefaultWindowUpdates(s.Scale)
	}
	return nil
}

// Arch applies the spec's architecture knobs to a base configuration,
// in the canonical order every runner uses: NUCA first, then the core
// count — so spec-derived fingerprints match the runners exactly.
func (s RunSpec) Arch(base sim.Arch) sim.Arch {
	a := base
	if s.NUCA {
		a.Mem.NUCA = mem.DefaultNUCA()
	}
	if s.Cores > 1 {
		a = a.WithCores(s.Cores)
	}
	return a
}

// CellKey derives the checkpoint/cache identity of one of the spec's
// scheme cells under the given campaign unit and base architecture.
// Offline and streamed cells share the format; streamed windows append
// their 1-based index via CellKey.Window at run time.
func (s RunSpec) CellKey(fig string, scheme sim.SchemeID, base sim.Arch) CellKey {
	return s.CellKeyFP(fig, scheme, ArchFingerprint(s.Arch(base)))
}

// CellKeyFP is CellKey with a precomputed architecture fingerprint —
// the cobrad hot path precomputes its NUCA fingerprint pair so job
// admission never hashes an arch struct.
func (s RunSpec) CellKeyFP(fig string, scheme sim.SchemeID, archFP string) CellKey {
	cores := s.Cores
	if cores == 0 {
		cores = 1
	}
	return CellKey{
		Figure: fig,
		App:    s.App,
		Input:  s.Input,
		Scale:  s.Scale,
		Seed:   s.Seed,
		Scheme: string(scheme.Scheme()),
		Bins:   s.Bins,
		Cores:  cores,
		Arch:   archFP,
	}
}

// StreamWorkload derives the deterministic streaming workload from a
// normalized stream spec.
func (s RunSpec) StreamWorkload() (stream.Workload, error) {
	if s.Kind != KindStream {
		return stream.Workload{}, fmt.Errorf("exp: spec kind %q is not %q", s.Kind, KindStream)
	}
	return streamWorkload(s.App, s.Input, s.Scale, s.Seed, s.Windows, s.WindowUpdates)
}
