package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"cobra/internal/fault"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomicBytes(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("staging residue left behind: %v", names)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("published mode %v, want 0644", fi.Mode().Perm())
	}
}

// TestWriteFileAtomicOverwrite: an existing artifact is replaced whole,
// never truncated in place.
func TestWriteFileAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomicBytes(path, []byte("old content, quite long")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomicBytes(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q", got)
	}
}

// TestWriteFileAtomicFailureLeavesOldIntact: a writer that errors
// midway must leave the previous artifact untouched and no temp files.
func TestWriteFileAtomicFailureLeavesOldIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomicBytes(path, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage that must never be seen"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("old artifact clobbered: %q", got)
	}
	for _, n := range listDir(t, dir) {
		if strings.Contains(n, ".tmp-") {
			t.Fatalf("staging residue %q left behind", n)
		}
	}
}

// TestWriteFileAtomicFailureNoNewFile: when the destination did not
// exist, a failed write must not create it.
func TestWriteFileAtomicFailureNoNewFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "never.txt")
	err := WriteFileAtomic(path, func(w io.Writer) error { return errors.New("nope") })
	if err == nil {
		t.Fatal("expected error")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("partial artifact exists: %v", statErr)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("residue: %v", names)
	}
}

func TestWriteFileAtomicBadDir(t *testing.T) {
	if err := WriteFileAtomicBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

// TestInjectedFaultsLeaveDestinationUntouched drives every fsx
// injection point (torn write, failed fsync, torn rename) and asserts
// the atomicity contract under each: the previous artifact survives
// byte-identical and no staging litter remains.
func TestInjectedFaultsLeaveDestinationUntouched(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec string
	}{
		{"short write", "fsx.write:at=1:err=short"},
		{"write enospc", "fsx.write:at=1:err=enospc"},
		{"fsync failure", "fsx.sync:at=1:err=eio"},
		{"fsync enospc", "fsx.sync:at=1:err=enospc"},
		{"torn rename", "fsx.rename:at=1:err=eio"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.txt")
			if err := WriteFileAtomicBytes(path, []byte("precious")); err != nil {
				t.Fatal(err)
			}
			plan, err := fault.Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			fault.Activate(plan)
			defer fault.Deactivate()
			err = WriteFileAtomicBytes(path, []byte("replacement that must not land"))
			fault.Deactivate()
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("err = %v, want injected", err)
			}
			got, readErr := os.ReadFile(path)
			if readErr != nil || string(got) != "precious" {
				t.Fatalf("destination damaged: %q, %v", got, readErr)
			}
			for _, n := range listDir(t, dir) {
				if strings.Contains(n, ".tmp-") {
					t.Fatalf("staging residue %q left behind", n)
				}
			}
		})
	}
}

// TestDiskFullClassification: any ENOSPC in the chain — injected at
// the write or sync points here, exactly what a real full disk raises —
// is tagged ErrDiskFull; non-ENOSPC failures are not.
func TestDiskFullClassification(t *testing.T) {
	dir := t.TempDir()
	for _, spec := range []string{"fsx.write:at=1:err=enospc", "fsx.write:at=1:err=short", "fsx.sync:at=1:err=enospc"} {
		plan, err := fault.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		fault.Activate(plan)
		err = WriteFileAtomicBytes(filepath.Join(dir, "full.txt"), []byte("x"))
		fault.Deactivate()
		if !errors.Is(err, ErrDiskFull) {
			t.Fatalf("%s: err = %v, want ErrDiskFull", spec, err)
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("%s: ErrDiskFull lost the underlying ENOSPC: %v", spec, err)
		}
	}

	plan, err := fault.Parse("fsx.sync:at=1:err=eio")
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	err = WriteFileAtomicBytes(filepath.Join(dir, "eio.txt"), []byte("x"))
	fault.Deactivate()
	if err == nil || errors.Is(err, ErrDiskFull) {
		t.Fatalf("EIO misclassified as disk-full: %v", err)
	}

	if WrapDiskFull(nil) != nil {
		t.Fatal("WrapDiskFull(nil) != nil")
	}
	tagged := WrapDiskFull(syscall.ENOSPC)
	if WrapDiskFull(tagged) != tagged {
		t.Fatal("WrapDiskFull double-tagged an error")
	}
}
