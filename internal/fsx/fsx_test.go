package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomicBytes(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("staging residue left behind: %v", names)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("published mode %v, want 0644", fi.Mode().Perm())
	}
}

// TestWriteFileAtomicOverwrite: an existing artifact is replaced whole,
// never truncated in place.
func TestWriteFileAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomicBytes(path, []byte("old content, quite long")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomicBytes(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q", got)
	}
}

// TestWriteFileAtomicFailureLeavesOldIntact: a writer that errors
// midway must leave the previous artifact untouched and no temp files.
func TestWriteFileAtomicFailureLeavesOldIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomicBytes(path, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage that must never be seen"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("old artifact clobbered: %q", got)
	}
	for _, n := range listDir(t, dir) {
		if strings.Contains(n, ".tmp-") {
			t.Fatalf("staging residue %q left behind", n)
		}
	}
}

// TestWriteFileAtomicFailureNoNewFile: when the destination did not
// exist, a failed write must not create it.
func TestWriteFileAtomicFailureNoNewFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "never.txt")
	err := WriteFileAtomic(path, func(w io.Writer) error { return errors.New("nope") })
	if err == nil {
		t.Fatal("expected error")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("partial artifact exists: %v", statErr)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("residue: %v", names)
	}
}

func TestWriteFileAtomicBadDir(t *testing.T) {
	if err := WriteFileAtomicBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}
