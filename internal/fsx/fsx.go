// Package fsx provides crash-safe filesystem helpers for the artifact
// writers (cmd/figures tables, cmd/graphgen inputs, the experiment
// checkpoint journal).
//
// The core guarantee is all-or-nothing visibility: WriteFileAtomic
// stages content in a temporary file in the destination directory,
// fsyncs it, and renames it over the destination only after every byte
// is durable. A reader (or a crashed writer) therefore never observes a
// partially written artifact — it sees either the old file or the new
// one, never a truncated hybrid.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the output of `write` to path atomically:
// temp file in the same directory -> write -> fsync -> rename. On any
// error the temp file is removed and the destination is left untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsx: staging %s: %w", path, err)
	}
	tmpPath := tmp.Name()
	// Clean up the staging file on every failure path below.
	fail := func(stage string, err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: %s %s: %w", stage, path, err)
	}
	if err := write(tmp); err != nil {
		return fail("writing", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: closing %s: %w", path, err)
	}
	// os.CreateTemp creates 0600; published artifacts follow the usual
	// umask-style default instead.
	if err := os.Chmod(tmpPath, 0o644); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: chmod %s: %w", path, err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: publishing %s: %w", path, err)
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// some filesystems refuse O_RDONLY dir syncs, and the data is
	// already safe in the file.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteFileAtomicBytes is WriteFileAtomic for in-memory content.
func WriteFileAtomicBytes(path string, content []byte) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(content)
		return err
	})
}
