// Package fsx provides crash-safe filesystem helpers for the artifact
// writers (cmd/figures tables, cmd/graphgen inputs, the experiment
// checkpoint journal).
//
// The core guarantee is all-or-nothing visibility: WriteFileAtomic
// stages content in a temporary file in the destination directory,
// fsyncs it, and renames it over the destination only after every byte
// is durable. A reader (or a crashed writer) therefore never observes a
// partially written artifact — it sees either the old file or the new
// one, never a truncated hybrid. The guarantee holds under injected
// faults too: every stage is a named fault injection point
// (fault.PointFsxWrite/Sync/Rename), and the fsx tests drive ENOSPC,
// short writes, failed fsyncs and torn renames through each of them,
// asserting the destination is untouched and no staging litter remains.
//
// Failures are classified: a write that died because the disk is full
// (ENOSPC anywhere in the chain) additionally reports ErrDiskFull, so
// campaign drivers can exit with a distinct code instead of retrying a
// hopeless write.
package fsx

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"cobra/internal/fault"
)

// ErrDiskFull tags any fsx/journal failure whose root cause is disk
// exhaustion (syscall.ENOSPC). Unlike transient I/O errors, a full
// disk will fail every retry; callers use errors.Is(err, ErrDiskFull)
// to abort with a distinct exit code (cmd/figures exits 3).
var ErrDiskFull = errors.New("fsx: disk full")

// WrapDiskFull decorates err with ErrDiskFull when its chain contains
// ENOSPC (and it is not already tagged). Nil-safe; exported so the
// checkpoint journal applies the same classification to its appends.
func WrapDiskFull(err error) error {
	if err != nil && errors.Is(err, syscall.ENOSPC) && !errors.Is(err, ErrDiskFull) {
		return fmt.Errorf("%w: %w", ErrDiskFull, err)
	}
	return err
}

// WriteFileAtomic writes the output of `write` to path atomically:
// temp file in the same directory -> write -> fsync -> rename. On any
// error the temp file is removed and the destination is left untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsx: staging %s: %w", path, WrapDiskFull(err))
	}
	tmpPath := tmp.Name()
	// Clean up the staging file on every failure path below.
	fail := func(stage string, err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: %s %s: %w", stage, path, WrapDiskFull(err))
	}
	if err := write(fault.Writer(fault.PointFsxWrite, tmp)); err != nil {
		return fail("writing", err)
	}
	if err := fault.Hit(fault.PointFsxSync); err != nil {
		return fail("syncing", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: closing %s: %w", path, WrapDiskFull(err))
	}
	// os.CreateTemp creates 0600; published artifacts follow the usual
	// umask-style default instead.
	if err := os.Chmod(tmpPath, 0o644); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: chmod %s: %w", path, err)
	}
	// A failed (torn) rename leaves the old destination in place; the
	// staging file is discarded either way.
	if err := fault.Hit(fault.PointFsxRename); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: publishing %s: %w", path, WrapDiskFull(err))
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("fsx: publishing %s: %w", path, WrapDiskFull(err))
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// some filesystems refuse O_RDONLY dir syncs, and the data is
	// already safe in the file.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteFileAtomicBytes is WriteFileAtomic for in-memory content.
func WriteFileAtomicBytes(path string, content []byte) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(content)
		return err
	})
}
