// Package fault is a deterministic, zero-cost-when-disabled fault
// injection registry. Crash-safety code that is only ever exercised by
// the happy path is unproven; this package lets the test suite (and a
// human with an environment variable) schedule real failures — ENOSPC,
// EIO, short writes, failed fsyncs, torn renames, injected latency,
// even SIGKILL-ing the process mid-write — at named points threaded
// through the filesystem (fsx), graph I/O (gio), checkpoint journal
// (exp), and service (srv) layers.
//
// Contract:
//
//   - Zero cost when disabled. The registry is an atomic pointer that
//     is nil until a plan is activated; Hit/Writer/Reader on the
//     disabled registry are a single atomic load plus a nil check —
//     no allocations, no map lookups, no clock reads (pinned by
//     TestDisabledFaultZeroAllocs and BenchmarkFaultHitDisabled).
//   - Deterministic. Whether the Nth hit of a point fires is a pure
//     function of (plan seed, point name, N): counters use exact hit
//     numbers, and probabilistic rules hash (seed, point, N) through
//     splitmix64 rather than sharing a mutable RNG stream. Replaying a
//     schedule replays the exact same faults, even under concurrency —
//     what varies across schedules is only which goroutine observes a
//     given hit number.
//   - Faults are visible. Every injected error wraps ErrInjected plus
//     a realistic payload (syscall.ENOSPC, syscall.EIO), so production
//     code classifies it exactly like the real failure while tests can
//     still tell injected faults from genuine ones.
//
// A plan is a set of rules, one per injection point:
//
//	exp.journal.sync:at=3:err=enospc            fail the 3rd journal fsync
//	fsx.write:every=2:err=short                 tear every 2nd artifact write
//	srv.worker.complete:p=0.1:err=eio           fail ~10% of completions
//	exp.journal.append:at=2:err=short:kill      tear the 2nd append, then SIGKILL
//	gio.read:at=1:delay=50ms                    one slow read, no error
//
// Rules are joined with ";". The chaos harness passes plans to child
// processes via the COBRA_FAULTS environment variable (seed via
// COBRA_FAULT_SEED), which cmd/figures and cmd/cobrad activate at
// startup through ActivateFromEnv.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Environment variables consulted by ActivateFromEnv.
const (
	Env     = "COBRA_FAULTS"     // plan spec ("point:mod:mod;point:mod")
	EnvSeed = "COBRA_FAULT_SEED" // uint64 seed for p= rules (default 1)
)

// Named injection points threaded through the tree. Any string works
// as a point name — these constants are the ones production code hits,
// kept here so plans and docs have one place to look.
const (
	// fsx.WriteFileAtomic stages: payload write, pre-publish fsync, and
	// the publishing rename. A fault at any of them must leave the
	// destination untouched.
	PointFsxWrite  = "fsx.write"
	PointFsxSync   = "fsx.sync"
	PointFsxRename = "fsx.rename"
	// gio serialized graph/matrix reads and writes.
	PointGioRead  = "gio.read"
	PointGioWrite = "gio.write"
	// Checkpoint journal appends and their fsync. A fault here may cost
	// at most the entry being appended (a torn tail) — never the prefix.
	PointJournalAppend = "exp.journal.append"
	PointJournalSync   = "exp.journal.sync"
	// Service queue admission and worker completion. Admission faults
	// reject the job before it queues (HTTP 500); completion faults
	// discard a computed result before it reaches the cache (the job
	// fails, and the error must never be cached).
	PointSrvAdmit    = "srv.queue.admit"
	PointSrvComplete = "srv.worker.complete"
)

// Sentinels. Every injected error wraps ErrInjected; short writes also
// wrap ErrShortWrite plus syscall.ENOSPC (what a full disk reports for
// a partial write).
var (
	ErrInjected   = errors.New("fault: injected")
	ErrShortWrite = errors.New("fault: short write")
)

// payloads maps spec err= names onto realistic error values.
var payloads = map[string]error{
	"enospc": syscall.ENOSPC,
	"eio":    syscall.EIO,
	"closed": os.ErrClosed,
	"short":  fmt.Errorf("%w: %w", ErrShortWrite, syscall.ENOSPC),
}

// Rule schedules faults at one injection point. Exactly one trigger
// (At, Every, Prob) must be set; Times optionally caps total fires.
type Rule struct {
	Point string
	At    uint64        // fire exactly on the At-th hit (1-based)
	Every uint64        // fire on every Every-th hit
	Prob  float64       // fire on each hit with this probability
	Times uint64        // max total fires (0 = unlimited)
	Err   error         // injected payload (nil with Kill/Delay alone)
	Kill  bool          // SIGKILL the process at the fire point
	Delay time.Duration // sleep this long when firing

	hash  uint64 // fnv64a(Point), precomputed for the p= stream
	hits  atomic.Uint64
	fires atomic.Uint64
}

// validate checks a rule is well-formed and fills derived fields.
func (r *Rule) validate() error {
	if r.Point == "" {
		return errors.New("fault: rule without a point name")
	}
	triggers := 0
	if r.At > 0 {
		triggers++
	}
	if r.Every > 0 {
		triggers++
	}
	if r.Prob > 0 {
		triggers++
	}
	if triggers != 1 {
		return fmt.Errorf("fault: rule for %s needs exactly one trigger (at=, every= or p=), has %d", r.Point, triggers)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: rule for %s: probability %v out of [0,1]", r.Point, r.Prob)
	}
	if r.Err == nil && !r.Kill && r.Delay <= 0 {
		return fmt.Errorf("fault: rule for %s has no effect (no err=, kill or delay=)", r.Point)
	}
	h := fnv.New64a()
	h.Write([]byte(r.Point))
	r.hash = h.Sum64()
	return nil
}

// firesAt decides — deterministically from (seed, point, n) — whether
// the n-th hit of this point fires.
func (r *Rule) firesAt(n, seed uint64) bool {
	switch {
	case r.At > 0:
		return n == r.At
	case r.Every > 0:
		return n%r.Every == 0
	case r.Prob > 0:
		return rand01(seed, r.hash, n) < r.Prob
	}
	return false
}

// splitmix64 is the standard 64-bit finalizing mixer: a bijective hash
// good enough to turn (seed, point, hit#) into an independent uniform
// draw without any shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// rand01 maps (seed, point, n) to a uniform float64 in [0, 1).
func rand01(seed, point, n uint64) float64 {
	return float64(splitmix64(seed^point^(n*0x9E3779B97F4A7C15))>>11) / (1 << 53)
}

// Plan is an immutable set of rules plus the seed for probabilistic
// triggers. Built once (Parse or literal + Build), then activated; the
// rule map is read-only afterwards, so hits need no lock.
type Plan struct {
	Seed  uint64
	rules map[string]*Rule
}

// Build assembles a plan from rules (validating each). Seed 0 is
// normalized to 1 so "no seed given" is still deterministic.
func Build(seed uint64, rules ...*Rule) (*Plan, error) {
	if seed == 0 {
		seed = 1
	}
	p := &Plan{Seed: seed, rules: make(map[string]*Rule, len(rules))}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		if _, dup := p.rules[r.Point]; dup {
			return nil, fmt.Errorf("fault: duplicate rule for point %s", r.Point)
		}
		p.rules[r.Point] = r
	}
	return p, nil
}

// Parse builds a plan from the spec grammar documented in the package
// comment: ";"-separated rules, each "point:mod:mod...", with mods
// at=N, every=N, p=F, times=K, err=NAME, delay=DUR, kill — plus the
// standalone entry "seed=N".
func Parse(spec string) (*Plan, error) {
	var seed uint64
	var rules []*Rule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if v, ok := strings.CutPrefix(entry, "seed="); ok && !strings.Contains(entry, ":") {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		parts := strings.Split(entry, ":")
		r := &Rule{Point: parts[0]}
		for _, mod := range parts[1:] {
			key, val, hasVal := strings.Cut(mod, "=")
			var err error
			switch key {
			case "at":
				r.At, err = strconv.ParseUint(val, 10, 64)
			case "every":
				r.Every, err = strconv.ParseUint(val, 10, 64)
			case "p":
				r.Prob, err = strconv.ParseFloat(val, 64)
			case "times":
				r.Times, err = strconv.ParseUint(val, 10, 64)
			case "err":
				payload, ok := payloads[val]
				if !ok {
					return nil, fmt.Errorf("fault: unknown error payload %q (want one of %v)", val, payloadNames())
				}
				r.Err = payload
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			case "kill":
				if hasVal {
					return nil, fmt.Errorf("fault: kill takes no value (got %q)", mod)
				}
				r.Kill = true
			default:
				return nil, fmt.Errorf("fault: unknown modifier %q in rule %q", mod, entry)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: bad %s in rule %q: %v", key, entry, err)
			}
		}
		rules = append(rules, r)
	}
	return Build(seed, rules...)
}

// payloadNames lists the err= spellings, sorted for stable errors.
func payloadNames() []string {
	names := make([]string, 0, len(payloads))
	for k := range payloads {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// injectedError is the concrete error Hit returns: it wraps both
// ErrInjected and the rule's payload, and carries the kill flag so
// Writer can tear a write *before* the process dies.
type injectedError struct {
	point string
	hit   uint64
	kill  bool
	err   error
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("%v at %s (hit %d): %v", ErrInjected, e.point, e.hit, e.err)
}

func (e *injectedError) Is(target error) bool { return target == ErrInjected }

func (e *injectedError) Unwrap() error { return e.err }

// active is the whole enabled/disabled switch: nil means every
// injection point is inert.
var active atomic.Pointer[Plan]

// Enabled reports whether a fault plan is active.
func Enabled() bool { return active.Load() != nil }

// Activate installs a plan process-wide. Passing nil disables
// injection (same as Deactivate).
func Activate(p *Plan) { active.Store(p) }

// Deactivate disables all fault injection.
func Deactivate() { active.Store(nil) }

// ActivateFromEnv activates the plan described by the COBRA_FAULTS
// environment variable, if set. Returns whether a plan was activated.
func ActivateFromEnv() (bool, error) {
	spec := os.Getenv(Env)
	if spec == "" {
		return false, nil
	}
	p, err := Parse(spec)
	if err != nil {
		return false, err
	}
	if s := os.Getenv(EnvSeed); s != "" {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return false, fmt.Errorf("fault: bad %s %q: %v", EnvSeed, s, err)
		}
		if seed != 0 {
			p.Seed = seed
		}
	}
	Activate(p)
	return true, nil
}

// Hit registers one arrival at the named injection point and returns
// the injected error if the point's schedule fires (killing the
// process first when the rule says so). With no plan active this is
// the zero-cost fast path: one atomic load, one nil check.
func Hit(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(point)
}

func (p *Plan) hit(point string) error {
	r := p.rules[point]
	if r == nil {
		return nil
	}
	n := r.hits.Add(1)
	if !r.firesAt(n, p.Seed) {
		return nil
	}
	if fires := r.fires.Add(1); r.Times > 0 && fires > r.Times {
		return nil
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Kill && !errors.Is(r.Err, ErrShortWrite) {
		// A raw kill point (or err+kill on a non-write site) dies right
		// here — the crash the chaos harness schedules. Short-write kills
		// are deferred to Writer so the torn bytes land first.
		Kill()
	}
	if r.Err == nil {
		return nil // pure delay rule
	}
	return &injectedError{point: point, hit: n, kill: r.Kill, err: r.Err}
}

// Kill terminates the process with SIGKILL — no deferred functions, no
// flushes, exactly like the OOM killer or a power cut. Exported for
// harnesses that need to die at a point of their own choosing.
func Kill() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // SIGKILL is asynchronous; never execute past it
}

// Hits reports how many times the named point was reached under the
// active plan, and Fires how many faults it injected. Both are 0 with
// no active plan (or no rule for the point).
func Hits(point string) uint64 {
	if p := active.Load(); p != nil {
		if r := p.rules[point]; r != nil {
			return r.hits.Load()
		}
	}
	return 0
}

// Fires reports how many times the named point actually fired.
func Fires(point string) uint64 {
	if p := active.Load(); p != nil {
		if r := p.rules[point]; r != nil {
			return r.fires.Load()
		}
	}
	return 0
}
