package fault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// activate installs a plan for the duration of the test.
func activate(t *testing.T, p *Plan) {
	t.Helper()
	Activate(p)
	t.Cleanup(Deactivate)
}

func mustParse(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

// TestDisabledFaultZeroAllocs pins the zero-cost-disabled contract:
// with no active plan, Hit and the stream wrappers allocate nothing.
func TestDisabledFaultZeroAllocs(t *testing.T) {
	Deactivate()
	var w io.Writer = io.Discard
	var r io.Reader = strings.NewReader("")
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := Hit(PointJournalSync); err != nil {
			t.Fatal(err)
		}
		if Writer(PointFsxWrite, w) != w {
			t.Fatal("disabled Writer wrapped its stream")
		}
		if Reader(PointGioRead, r) != r {
			t.Fatal("disabled Reader wrapped its stream")
		}
	}); allocs != 0 {
		t.Fatalf("disabled fault path allocates %v per op, want 0", allocs)
	}
}

func BenchmarkFaultHitDisabled(b *testing.B) {
	Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit(PointFsxSync); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAtSchedule: at=N fires exactly on the Nth hit, once.
func TestAtSchedule(t *testing.T) {
	activate(t, mustParse(t, "fsx.sync:at=3:err=enospc"))
	for n := 1; n <= 6; n++ {
		err := Hit(PointFsxSync)
		if n == 3 {
			if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("hit 3: err = %v, want injected ENOSPC", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", n, err)
		}
	}
	if Hits(PointFsxSync) != 6 || Fires(PointFsxSync) != 1 {
		t.Fatalf("hits=%d fires=%d, want 6/1", Hits(PointFsxSync), Fires(PointFsxSync))
	}
}

// TestEverySchedule: every=N fires on each Nth hit, bounded by times=.
func TestEverySchedule(t *testing.T) {
	activate(t, mustParse(t, "gio.read:every=2:times=2:err=eio"))
	var fired []int
	for n := 1; n <= 10; n++ {
		if err := Hit(PointGioRead); err != nil {
			if !errors.Is(err, syscall.EIO) {
				t.Fatalf("payload = %v, want EIO", err)
			}
			fired = append(fired, n)
		}
	}
	if fmt.Sprint(fired) != "[2 4]" {
		t.Fatalf("fired at %v, want [2 4]", fired)
	}
}

// TestProbabilisticDeterminism: a p= schedule fires on an exact,
// replayable set of hit numbers for a given seed — and a different
// seed yields a different (still replayable) set.
func TestProbabilisticDeterminism(t *testing.T) {
	const spec = "srv.worker.complete:p=0.3:err=eio"
	firedSet := func(seed uint64) []int {
		p := mustParse(t, fmt.Sprintf("seed=%d;%s", seed, spec))
		Activate(p)
		defer Deactivate()
		var fired []int
		for n := 1; n <= 200; n++ {
			if Hit(PointSrvComplete) != nil {
				fired = append(fired, n)
			}
		}
		return fired
	}
	a, b := firedSet(7), firedSet(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times", len(a))
	}
	// ~30% of 200, loosely bounded: the mixer should not be degenerate.
	if len(a) < 30 || len(a) > 100 {
		t.Fatalf("p=0.3 fired %d/200 times, far from expectation", len(a))
	}
	if c := firedSet(8); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestProbabilisticDeterminismUnderConcurrency: the decision for hit
// number N is seed-pure, so the total fire count is schedule-
// independent even when hits arrive from many goroutines.
func TestProbabilisticDeterminismUnderConcurrency(t *testing.T) {
	serial := mustParse(t, "seed=11;srv.worker.complete:p=0.25:err=eio")
	Activate(serial)
	for n := 0; n < 400; n++ {
		Hit(PointSrvComplete)
	}
	want := Fires(PointSrvComplete)
	Deactivate()

	parallel := mustParse(t, "seed=11;srv.worker.complete:p=0.25:err=eio")
	Activate(parallel)
	defer Deactivate()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				Hit(PointSrvComplete)
			}
		}()
	}
	wg.Wait()
	if got := Fires(PointSrvComplete); got != want {
		t.Fatalf("concurrent fire count %d != serial %d", got, want)
	}
}

// TestShortWriteTearsBuffer: a short-write payload writes a strict
// prefix and reports both ErrShortWrite and ENOSPC.
func TestShortWriteTearsBuffer(t *testing.T) {
	activate(t, mustParse(t, "fsx.write:at=2:err=short"))
	var buf bytes.Buffer
	w := Writer(PointFsxWrite, &buf)
	if _, err := w.Write([]byte("first-line\n")); err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("second-line\n"))
	if !errors.Is(err, ErrShortWrite) || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v", err)
	}
	if n == 0 || n >= len("second-line\n") {
		t.Fatalf("short write wrote %d bytes, want a strict prefix", n)
	}
	if got := buf.String(); got != "first-line\n"+"second-line\n"[:n] {
		t.Fatalf("buffer = %q", got)
	}
}

// TestReaderInjection: a read fault fires before any bytes move.
func TestReaderInjection(t *testing.T) {
	activate(t, mustParse(t, "gio.read:at=1:err=eio"))
	r := Reader(PointGioRead, strings.NewReader("payload"))
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read err = %v, want EIO", err)
	}
}

// TestDelayRule: a pure delay rule injects latency, not errors.
func TestDelayRule(t *testing.T) {
	activate(t, mustParse(t, "gio.read:at=1:delay=30ms"))
	start := time.Now()
	if err := Hit(PointGioRead); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay rule slept only %v", elapsed)
	}
}

// TestParseErrors: malformed specs are rejected loudly.
func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"fsx.sync",                                    // no trigger, no effect
		"fsx.sync:err=enospc",                         // no trigger
		"fsx.sync:at=1:every=2:err=eio",               // two triggers
		"fsx.sync:at=1:err=nope",                      // unknown payload
		"fsx.sync:at=1:frobnicate=3",                  // unknown modifier
		"fsx.sync:at=x:err=eio",                       // bad number
		"fsx.sync:p=1.5:err=eio",                      // probability out of range
		"fsx.sync:at=1:kill=yes",                      // kill takes no value
		"fsx.sync:at=1:err=eio;fsx.sync:at=2:err=eio", // duplicate point
		"seed=zzz",                                    // bad seed
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

// TestActivateFromEnv: the chaos harness's cross-process channel.
func TestActivateFromEnv(t *testing.T) {
	t.Setenv(Env, "exp.journal.append:at=2:err=enospc")
	t.Setenv(EnvSeed, "99")
	ok, err := ActivateFromEnv()
	if err != nil || !ok {
		t.Fatalf("ActivateFromEnv = %v, %v", ok, err)
	}
	t.Cleanup(Deactivate)
	if p := active.Load(); p.Seed != 99 {
		t.Fatalf("seed = %d, want 99", p.Seed)
	}
	if Hit(PointJournalAppend) != nil {
		t.Fatal("hit 1 fired")
	}
	if err := Hit(PointJournalAppend); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("hit 2: %v", err)
	}

	t.Setenv(Env, "not:a=valid:spec")
	if _, err := ActivateFromEnv(); err == nil {
		t.Fatal("bad env spec accepted")
	}

	os.Unsetenv(Env)
	if ok, err := ActivateFromEnv(); ok || err != nil {
		t.Fatalf("empty env: %v, %v", ok, err)
	}
}
