package fault

// Stream wrappers: fault-aware io.Writer/io.Reader shims the fsx, gio
// and journal layers thread their streams through. Disabled, Writer
// and Reader return the original stream unchanged (one atomic load, no
// wrapper allocation), so production I/O paths are untouched.

import (
	"errors"
	"io"
)

// Writer wraps w with the named injection point. When the point fires
// with a short-write payload the wrapper writes only the first half of
// the buffer before returning the error — a genuinely torn write, the
// failure mode a full disk or a crash mid-write produces. A short
// write under a kill rule tears the bytes and then SIGKILLs, leaving a
// real torn tail on disk for recovery code to face.
func Writer(point string, w io.Writer) io.Writer {
	if active.Load() == nil {
		return w
	}
	return &faultWriter{point: point, w: w}
}

type faultWriter struct {
	point string
	w     io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	err := Hit(fw.point)
	if err == nil {
		return fw.w.Write(p)
	}
	if errors.Is(err, ErrShortWrite) && len(p) > 1 {
		n, werr := fw.w.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		var ie *injectedError
		if errors.As(err, &ie) && ie.kill {
			Kill()
		}
		return n, err
	}
	return 0, err
}

// Reader wraps r with the named injection point: a fired hit fails the
// Read before any bytes are consumed.
func Reader(point string, r io.Reader) io.Reader {
	if active.Load() == nil {
		return r
	}
	return &faultReader{point: point, r: r}
}

type faultReader struct {
	point string
	r     io.Reader
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if err := Hit(fr.point); err != nil {
		return 0, err
	}
	return fr.r.Read(p)
}
