// Package simtest provides shared synthetic workload builders and
// functional oracles for testing the simulator's execution schemes.
//
// Every execution scheme the paper evaluates (Baseline, PB-SW, COBRA,
// COBRA-COMM, PHI) must be a *functional no-op*: reordering updates
// through bins and C-Buffers may change the timing model's outputs,
// never the computed data. The builders here produce commutative count
// workloads whose final state is observable from the outside, and the
// oracles compare that state against a direct replay of the update
// stream — the correctness contract the differential tests pin for
// every scheme.
//
// (The helpers were previously private copies inside
// internal/sim/sim_test.go; sharing them here lets the sim tests, the
// cross-scheme differential oracle, and the metric-invariant tests all
// exercise the same workloads.)
package simtest

import (
	"testing"

	"cobra/internal/sim"
	"cobra/internal/stats"
)

// Dist selects the key distribution of a synthetic count workload —
// each stresses a different scheme mechanism.
type Dist int

const (
	// DistUniform draws keys uniformly: every bin fills evenly, the
	// C-Buffer full branch fires regularly.
	DistUniform Dist = iota
	// DistSkewed draws keys from a cubed-uniform (power-law-ish)
	// distribution: hot keys exercise coalescing (COBRA-COMM, PHI) and
	// imbalanced bins.
	DistSkewed
	// DistGrouped emits runs of equal keys with newGroup markers, the
	// shape of a CSR traversal: exercises the inner-loop branch model
	// and group boundaries.
	DistGrouped
)

// String names the distribution for test labels.
func (d Dist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistSkewed:
		return "skewed"
	case DistGrouped:
		return "grouped"
	default:
		return "unknown"
	}
}

// Dists lists every distribution, for table-driven tests.
func Dists() []Dist { return []Dist{DistUniform, DistSkewed, DistGrouped} }

// CountApp builds a synthetic commutative count workload: n updates
// with uniformly random keys over numKeys, pure read-modify-write
// counters. The returned slice pointer exposes the applier's live
// counter array — after a run it holds the scheme's functional output.
func CountApp(numKeys, n int, seed uint64) (*sim.App, *[]uint32) {
	return CountAppDist(DistUniform, numKeys, n, seed)
}

// CountAppDist is CountApp with an explicit key distribution.
func CountAppDist(dist Dist, numKeys, n int, seed uint64) (*sim.App, *[]uint32) {
	r := stats.NewRand(seed)
	keys := make([]uint32, n)
	groups := make([]bool, n)
	switch dist {
	case DistSkewed:
		for i := range keys {
			f := r.Float64()
			keys[i] = uint32(f * f * f * float64(numKeys))
			if keys[i] >= uint32(numKeys) {
				keys[i] = uint32(numKeys) - 1
			}
		}
	case DistGrouped:
		i := 0
		for i < n {
			k := uint32(r.Intn(numKeys))
			run := 1 + r.Intn(8)
			for j := 0; j < run && i < n; j++ {
				keys[i] = k
				groups[i] = j == 0
				i++
			}
		}
	default:
		for i := range keys {
			keys[i] = uint32(r.Intn(numKeys))
		}
	}
	counts := &[]uint32{}
	return &sim.App{
		Name:        "test-count-" + dist.String(),
		InputName:   "synthetic",
		Commutative: true,
		TupleBytes:  4,
		NumKeys:     numKeys,
		NumUpdates:  n,
		StreamBytes: 4,
		ApplyALU:    1,
		Reduce:      func(a, b uint64) uint64 { return a + b },
		ForEach: func(emit func(uint32, uint64, bool)) {
			for i, k := range keys {
				emit(k, 1, groups[i])
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			c := make([]uint32, numKeys)
			*counts = c
			return &countApplier{m: m, r: m.Alloc(uint64(numKeys) * 4), c: c}
		},
	}, counts
}

// countApplier performs one counter increment against the machine.
type countApplier struct {
	m *sim.Mach
	r sim.Region
	c []uint32
}

func (a *countApplier) Apply(key uint32, val uint64) {
	addr := a.r.Addr(uint64(key) * 4)
	a.m.B.Load(addr)
	a.m.B.Store(addr)
	a.c[key] += uint32(val)
}

// Shard returns a per-core view of the applier sharing the counter
// array, so sharded runs mutate the same observable functional state
// (key-partitioned: views write disjoint elements).
func (a *countApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// RefCounts computes the functional oracle: a direct replay of the
// update stream with no machine, no bins, no reordering.
func RefCounts(app *sim.App) []uint32 {
	ref := make([]uint32, app.NumKeys)
	app.ForEach(func(k uint32, v uint64, _ bool) { ref[k] += uint32(v) })
	return ref
}

// CheckCounts asserts a scheme's functional output equals the oracle.
func CheckCounts(t testing.TB, scheme string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: counts length %d, want %d", scheme, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: counts[%d] = %d, want %d", scheme, i, got[i], want[i])
		}
	}
}
