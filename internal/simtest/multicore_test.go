package simtest_test

// Core-count conformance: the sharded multi-core model (sim
// multicore.go) must be a functional no-op relative to the single-core
// oracle. Every scheme family runs at NumCores ∈ {1, 3, 16} — 3 is
// deliberately non-power-of-two, so uneven shard ranges and the
// ceil-based owner split are on the tested path — and the functional
// output must be bitwise invariant across core counts and equal to the
// direct-replay oracle.

import (
	"fmt"
	"testing"

	"cobra/internal/sim"
	"cobra/internal/simtest"
)

// mcCoreCounts is the conformance core-count axis.
var mcCoreCounts = []int{1, 3, 16}

// mcSchemes restricts the differential matrix for cores>1: one PB-SW
// bin count and one PHI bin count are enough, since the scheme
// internals don't change with the bin axis and the full bin matrix is
// already covered single-core by TestSchemesFunctionallyEquivalent.
func mcSchemes() []schemeRun {
	return []schemeRun{
		{"Baseline", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
			return sim.RunBaseline(app, arch)
		}},
		{"PB-SW[256]", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
			return sim.RunPBSW(app, 256, arch)
		}},
		{"COBRA", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
			return sim.RunCOBRA(app, sim.CobraOpt{}, arch)
		}},
		{"COBRA-COMM", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
			return sim.RunCOBRA(app, sim.CobraOpt{Coalesce: true}, arch)
		}},
		{"PHI[64]", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
			return sim.RunPHI(app, 64, arch)
		}},
	}
}

func TestSchemesCoreCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-core conformance skipped in -short mode")
	}
	for _, dist := range simtest.Dists() {
		dist := dist
		t.Run(dist.String(), func(t *testing.T) {
			const numKeys = 1 << 13
			app, counts := simtest.CountAppDist(dist, numKeys, 4*numKeys, 42)
			want := simtest.RefCounts(app)
			for _, s := range mcSchemes() {
				// singleCore holds the N=1 output; every sharded run must
				// reproduce it bitwise, not just match the oracle.
				var singleCore []uint32
				for _, cores := range mcCoreCounts {
					label := fmt.Sprintf("%s/cores=%d", s.name, cores)
					m, err := s.run(app, sim.DefaultArch().WithCores(cores))
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if m.Cycles <= 0 {
						t.Fatalf("%s: no cycles simulated", label)
					}
					if m.Cores != cores {
						t.Fatalf("%s: metrics report %d cores", label, m.Cores)
					}
					simtest.CheckCounts(t, label, *counts, want)
					if cores == 1 {
						singleCore = append([]uint32(nil), (*counts)...)
					} else {
						simtest.CheckCounts(t, label+" vs single-core", *counts, singleCore)
					}
				}
			}
		})
	}
}

// TestMultiCoreMetricsSane pins coarse metric invariants of sharded
// runs: merged traffic is additive over per-core phases (so it can't
// collapse to one core's view), and the merged clock is bounded by the
// single-core clock — a shard can never be slower than the whole.
func TestMultiCoreMetricsSane(t *testing.T) {
	app, _ := simtest.CountApp(1<<13, 1<<15, 7)
	m1, err := sim.RunPBSW(app, 256, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	m4, err := sim.RunPBSW(app, 256, sim.DefaultArch().WithCores(4))
	if err != nil {
		t.Fatal(err)
	}
	if m4.Cycles <= 0 || m4.Cycles > m1.Cycles {
		t.Fatalf("4-core cycles %v vs single-core %v", m4.Cycles, m1.Cycles)
	}
	if sp := m4.Speedup(m1); sp <= 1 {
		t.Fatalf("4-core speedup over single-core = %v, want > 1", sp)
	}
	if m4.Ctr.Instructions == 0 || m4.DRAM.ReadLines == 0 {
		t.Fatalf("merged counters empty: %+v", m4.Ctr)
	}
}
