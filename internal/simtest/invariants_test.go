package simtest_test

// Metric-invariant tests: conservation laws the simulator's reported
// metrics must obey regardless of scheme or timing-model changes.
// These are the counters the figures are computed from, so a violated
// invariant means a figure is silently wrong even if no test output
// changes.

import (
	"testing"

	"cobra/internal/core"
	"cobra/internal/sim"
	"cobra/internal/simtest"
)

// totalsOf projects a run's whole-run memory counters into PhaseMem
// form so phase deltas can be compared against them.
func totalsOf(m sim.Metrics) sim.PhaseMem {
	return sim.PhaseMem{
		L1Misses:       m.L1Misses,
		L2Misses:       m.L2Misses,
		LLCMisses:      m.LLCMisses,
		DRAMReadLines:  m.DRAM.ReadLines,
		DRAMWriteLines: m.DRAM.WriteLines,
	}
}

// checkPhaseLE asserts every field of phase <= total (phases can never
// report more activity than the whole run).
func checkPhaseLE(t *testing.T, label string, phase, total sim.PhaseMem) {
	t.Helper()
	if phase.L1Misses > total.L1Misses || phase.L2Misses > total.L2Misses ||
		phase.LLCMisses > total.LLCMisses ||
		phase.DRAMReadLines > total.DRAMReadLines || phase.DRAMWriteLines > total.DRAMWriteLines {
		t.Fatalf("%s: phase memory exceeds whole-run totals:\nphase %+v\ntotal %+v", label, phase, total)
	}
}

// TestBaselinePhaseMemEqualsTotals: the baseline is a single-phase run,
// so its Accumulate phase snapshot must equal the whole-run counters
// exactly — the strict form of "PhaseMem.Sum equals whole-run totals".
func TestBaselinePhaseMemEqualsTotals(t *testing.T) {
	app, _ := simtest.CountApp(1<<14, 100000, 11)
	m, err := sim.RunBaseline(app, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	if m.AccumMem != totalsOf(m) {
		t.Fatalf("baseline phase mem != totals:\nphase %+v\ntotal %+v", m.AccumMem, totalsOf(m))
	}
	if m.AccumMem.DRAMBytes() != (m.DRAM.ReadLines+m.DRAM.WriteLines)*64 {
		t.Fatal("DRAMBytes disagrees with line counts")
	}
}

// TestPBSWPhaseMemConservation: Binning + Accumulate must sum to the
// whole-run totals minus a non-negative Init remainder, for every
// counter — no phase may double-count or leak DRAM traffic.
func TestPBSWPhaseMemConservation(t *testing.T) {
	app, _ := simtest.CountApp(1<<14, 100000, 12)
	for _, bins := range []int{16, 256, 4096} {
		m, err := sim.RunPBSW(app, bins, sim.DefaultArch())
		if err != nil {
			t.Fatal(err)
		}
		total := totalsOf(m)
		sum := m.BinMem.Sum(m.AccumMem)
		checkPhaseLE(t, "pbsw", sum, total)
		// The Init remainder (totals - binning - accumulate) is exactly
		// the counting pass + prefix sum; it must be a small fraction of
		// whole-run DRAM traffic, not a dumping ground.
		initRead := total.DRAMReadLines - sum.DRAMReadLines
		if total.DRAMReadLines > 0 && initRead*2 > total.DRAMReadLines {
			t.Fatalf("bins=%d: init phase carries %d/%d DRAM read lines", bins, initRead, total.DRAMReadLines)
		}
		// DRAMBytes conservation across binning+accumulate: bytes are
		// additive over phases and consistent with line counts.
		if m.BinMem.DRAMBytes()+m.AccumMem.DRAMBytes() != sum.DRAMBytes() {
			t.Fatalf("bins=%d: DRAMBytes not additive over phases", bins)
		}
		if sum.DRAMBytes() > total.DRAMBytes() {
			t.Fatalf("bins=%d: phase DRAM bytes exceed whole-run bytes", bins)
		}
	}
}

// TestCOBRAPhaseMemConservation: same law for the hardware scheme.
func TestCOBRAPhaseMemConservation(t *testing.T) {
	app, _ := simtest.CountApp(1<<16, 200000, 13)
	m, err := sim.RunCOBRA(app, sim.CobraOpt{}, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	checkPhaseLE(t, "cobra", m.BinMem.Sum(m.AccumMem), totalsOf(m))
}

// TestBinnedTupleConservation: the hardware C-Buffer hierarchy must
// deliver every binned update to exactly one bin — tuples are never
// dropped or duplicated on the L1→L2→LLC→DRAM eviction path.
func TestBinnedTupleConservation(t *testing.T) {
	const numKeys, n = 1 << 14, 50000
	mach := sim.NewMach(sim.DefaultArch())
	m := core.NewMachine(mach.CPU, core.DefaultConfig(4))
	if err := m.BinInit(numKeys); err != nil {
		t.Fatal(err)
	}
	app, _ := simtest.CountApp(numKeys, n, 14)
	app.ForEach(func(key uint32, val uint64, _ bool) { m.BinUpdate(key, val) })
	m.BinFlush()
	if got := m.TotalBinnedTuples(); got != n {
		t.Fatalf("binned tuples = %d, want %d (tuples lost or duplicated)", got, n)
	}
	// The per-bin counts must agree with the machine's own total.
	sum := 0
	for _, b := range m.Bins {
		sum += len(b)
	}
	if sum != n {
		t.Fatalf("sum over bins = %d, want %d", sum, n)
	}
}

// TestSpeedupSanity: baseline over baseline is exactly 1, and the
// degenerate zero-cycle guard holds.
func TestSpeedupSanity(t *testing.T) {
	app, _ := simtest.CountApp(1<<12, 20000, 15)
	m, err := sim.RunBaseline(app, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Speedup(m); got != 1 {
		t.Fatalf("self-speedup = %v, want exactly 1", got)
	}
	var zero sim.Metrics
	if zero.Speedup(m) != 0 {
		t.Fatal("zero-cycle speedup should be 0")
	}
	if phases := m.InitCycles + m.BinCycles + m.AccumCycles; phases > m.Cycles {
		t.Fatalf("phase cycles (%v) exceed total (%v)", phases, m.Cycles)
	}
}
