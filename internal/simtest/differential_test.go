package simtest_test

// The cross-scheme differential oracle: every execution scheme must
// produce the exact functional output of a direct replay of the update
// stream, across key distributions, scales, and seeds. Any future perf
// PR that silently breaks scheme equivalence (a dropped tuple in a
// C-Buffer flush, a mis-split bin, a lossy coalesce) fails here with
// the first diverging key named.

import (
	"fmt"
	"testing"

	"cobra/internal/sim"
	"cobra/internal/simtest"
)

// schemeRun names one scheme execution of the differential table.
type schemeRun struct {
	name string
	run  func(app *sim.App, arch sim.Arch) (sim.Metrics, error)
}

// differentialSchemes enumerates every scheme (and PB-SW bin-count
// variant) the oracle checks. All four scheme families are covered:
// Baseline, PB-SW (several bin counts), COBRA (plain + COMM), and PHI.
func differentialSchemes() []schemeRun {
	var runs []schemeRun
	runs = append(runs, schemeRun{"Baseline", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
		return sim.RunBaseline(app, arch)
	}})
	for _, bins := range []int{16, 256, 1024} {
		b := bins
		runs = append(runs, schemeRun{fmt.Sprintf("PB-SW[%d]", b), func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
			return sim.RunPBSW(app, b, arch)
		}})
	}
	runs = append(runs, schemeRun{"COBRA", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
		return sim.RunCOBRA(app, sim.CobraOpt{}, arch)
	}})
	runs = append(runs, schemeRun{"COBRA-COMM", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
		return sim.RunCOBRA(app, sim.CobraOpt{Coalesce: true}, arch)
	}})
	runs = append(runs, schemeRun{"PHI", func(app *sim.App, arch sim.Arch) (sim.Metrics, error) {
		return sim.RunPHI(app, 64, arch)
	}})
	return runs
}

func TestSchemesFunctionallyEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("differential oracle skipped in -short mode")
	}
	arch := sim.DefaultArch()
	for _, dist := range simtest.Dists() {
		for _, numKeys := range []int{1 << 12, 1 << 14} {
			for _, seed := range []uint64{1, 42} {
				dist, numKeys, seed := dist, numKeys, seed
				name := fmt.Sprintf("%s/keys=%d/seed=%d", dist, numKeys, seed)
				t.Run(name, func(t *testing.T) {
					n := 4 * numKeys
					app, counts := simtest.CountAppDist(dist, numKeys, n, seed)
					want := simtest.RefCounts(app)
					for _, s := range differentialSchemes() {
						m, err := s.run(app, arch)
						if err != nil {
							t.Fatalf("%s: %v", s.name, err)
						}
						if m.Cycles <= 0 {
							t.Fatalf("%s: no cycles simulated", s.name)
						}
						simtest.CheckCounts(t, s.name, *counts, want)
					}
				})
			}
		}
	}
}

// TestOracleDetectsDivergence proves the oracle has teeth: a stream
// whose replay differs from the scheme output must fail the count
// comparison (meta-test of CheckCounts via a mutated copy).
func TestOracleDetectsDivergence(t *testing.T) {
	app, counts := simtest.CountApp(1<<10, 4096, 3)
	if _, err := sim.RunBaseline(app, sim.DefaultArch()); err != nil {
		t.Fatal(err)
	}
	want := simtest.RefCounts(app)
	simtest.CheckCounts(t, "baseline", *counts, want)
	// Corrupt one key's count and verify the oracle notices.
	mutated := append([]uint32(nil), (*counts)...)
	mutated[0]++
	ft := &fakeT{}
	simtest.CheckCounts(ft, "mutated", mutated, want)
	if !ft.failed {
		t.Fatal("CheckCounts accepted diverging functional output")
	}
}

// fakeT captures CheckCounts failures without failing the real test.
type fakeT struct {
	testing.T
	failed bool
}

func (f *fakeT) Fatalf(format string, args ...any) { f.failed = true }
func (f *fakeT) Helper()                           {}
