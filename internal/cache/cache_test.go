package cache

import (
	"testing"
	"testing/quick"

	"cobra/internal/stats"
)

func tiny(policy PolicyKind) *Cache {
	// 4 sets x 4 ways x 64B = 1 KiB.
	return New(Config{Name: "T", SizeB: 1024, Ways: 4, Policy: policy})
}

func TestGeometry(t *testing.T) {
	c := New(Config{Name: "L1", SizeB: 32 << 10, Ways: 8, Policy: BitPLRU})
	if c.Sets() != 64 {
		t.Fatalf("L1 sets = %d, want 64", c.Sets())
	}
	c2 := New(Config{Name: "LLC", SizeB: 2 << 20, Ways: 16, Policy: DRRIP})
	if c2.Sets() != 2048 {
		t.Fatalf("LLC sets = %d, want 2048", c2.Sets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets did not panic")
		}
	}()
	New(Config{Name: "bad", SizeB: 3 * 64 * 4, Ways: 4, Policy: BitPLRU})
}

func TestHitAfterMiss(t *testing.T) {
	for _, p := range []PolicyKind{BitPLRU, TrueLRU, DRRIP, Random} {
		c := tiny(p)
		if r := c.Access(0x1000, false); r.Hit {
			t.Fatalf("%v: cold access hit", p)
		}
		if r := c.Access(0x1000, false); !r.Hit {
			t.Fatalf("%v: second access missed", p)
		}
		if r := c.Access(0x1004, false); !r.Hit {
			t.Fatalf("%v: same-line access missed", p)
		}
		if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
			t.Fatalf("%v: stats = %+v", p, c.Stats)
		}
	}
}

func TestCapacityEviction(t *testing.T) {
	c := tiny(TrueLRU)
	// Fill one set (set 0) with 5 distinct lines mapping to it; the 5th fill
	// must evict the first.
	setStride := uint64(4 * LineSize) // 4 sets
	for i := uint64(0); i < 5; i++ {
		c.Access(i*setStride, false)
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats.Evictions)
	}
	if c.Probe(0) {
		t.Fatal("LRU should have evicted line 0")
	}
	if !c.Probe(4 * setStride) {
		t.Fatal("most recent fill should be resident")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := tiny(TrueLRU)
	setStride := uint64(4 * LineSize)
	c.Access(0, true) // dirty
	for i := uint64(1); i < 5; i++ {
		c.Access(i*setStride, false)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestVictimAddrRoundTrip(t *testing.T) {
	c := tiny(TrueLRU)
	setStride := uint64(4 * LineSize)
	target := uint64(2*LineSize + 7) // set 2, offset 7
	c.Access(target, false)
	var victim uint64
	for i := uint64(1); i < 5; i++ {
		r := c.Access(target+i*setStride, false)
		if r.Evicted {
			victim = r.VictimAddr
		}
	}
	if victim != target&^uint64(LineSize-1) {
		t.Fatalf("victim addr = %#x, want %#x", victim, target&^uint64(LineSize-1))
	}
}

func TestReserveWaysShrinksCapacity(t *testing.T) {
	c := tiny(TrueLRU)
	if err := c.ReserveWays(2); err != nil {
		t.Fatal(err)
	}
	setStride := uint64(4 * LineSize)
	for i := uint64(0); i < 3; i++ {
		c.Access(i*setStride, false)
	}
	// Only 2 usable ways remain, so the 3rd fill evicts.
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 with 2 usable ways", c.Stats.Evictions)
	}
	if c.ReservedBytes() != 2*4*LineSize {
		t.Fatalf("ReservedBytes = %d", c.ReservedBytes())
	}
}

func TestReserveWaysRejectsFullReservation(t *testing.T) {
	c := tiny(BitPLRU)
	if err := c.ReserveWays(4); err == nil {
		t.Fatal("reserving every way should fail")
	}
	if err := c.ReserveWays(-1); err == nil {
		t.Fatal("negative reservation should fail")
	}
}

func TestReserveInvalidatesResidentLines(t *testing.T) {
	c := tiny(TrueLRU)
	c.Access(0, false) // lands in way 0 (first free)
	if err := c.ReserveWays(1); err != nil {
		t.Fatal(err)
	}
	if c.Probe(0) {
		t.Fatal("line in reserved way should be invalidated")
	}
}

func TestWriteNTBypassesAllocation(t *testing.T) {
	c := tiny(BitPLRU)
	r := c.WriteNT(0x40)
	if !r.BypassedAlloc || r.Hit {
		t.Fatalf("NT store to absent line: %+v", r)
	}
	if c.Probe(0x40) {
		t.Fatal("NT store must not allocate")
	}
	// But it updates in place when resident.
	c.Access(0x80, false)
	r = c.WriteNT(0x80)
	if !r.Hit {
		t.Fatal("NT store to resident line should hit")
	}
}

func TestPrefetchInstallsQuietly(t *testing.T) {
	c := tiny(BitPLRU)
	misses := c.Stats.Misses
	if already := c.Prefetch(0x100); already {
		t.Fatal("prefetch of absent line reported present")
	}
	if c.Stats.Misses != misses {
		t.Fatal("prefetch counted a demand miss")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Fatal("demand access after prefetch should hit")
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny(BitPLRU)
	c.Access(0x200, true)
	present, dirty := c.Invalidate(0x200)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Probe(0x200) {
		t.Fatal("line still resident after invalidate")
	}
	present, _ = c.Invalidate(0x200)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestFlushAllCountsDirty(t *testing.T) {
	c := tiny(BitPLRU)
	c.Access(0x000, true)
	c.Access(0x040, false)
	c.Access(0x080, true)
	if d := c.FlushAll(); d != 2 {
		t.Fatalf("FlushAll dirty = %d, want 2", d)
	}
	if c.OccupiedLines() != 0 {
		t.Fatal("lines remain after FlushAll")
	}
}

func TestBitPLRUPreservesHotLine(t *testing.T) {
	c := tiny(BitPLRU)
	setStride := uint64(4 * LineSize)
	hot := uint64(0)
	c.Access(hot, false)
	// Stream many conflicting lines, re-touching hot between fills.
	for i := uint64(1); i < 32; i++ {
		c.Access(hot, false)
		c.Access(i*setStride, false)
	}
	if !c.Probe(hot) {
		t.Fatal("Bit-PLRU evicted the constantly-touched line")
	}
}

func TestDRRIPScanResistance(t *testing.T) {
	// DRRIP should keep a reused working set resident through a one-pass
	// scan better than LRU does. Working set: 8 lines in one set of a
	// 16-way cache; scan: 64 single-use lines in the same set.
	mk := func(p PolicyKind) *Cache {
		return New(Config{Name: "t", SizeB: 16 * LineSize * 4, Ways: 16, Policy: p})
	}
	run := func(c *Cache) (missesAfterScan uint64) {
		setStride := uint64(4 * LineSize)
		work := make([]uint64, 8)
		for i := range work {
			work[i] = uint64(i) * setStride
		}
		// Establish reuse.
		for pass := 0; pass < 8; pass++ {
			for _, a := range work {
				c.Access(a, false)
			}
		}
		// One-pass scan of 64 cold lines.
		for i := 100; i < 164; i++ {
			c.Access(uint64(i)*setStride, false)
		}
		before := c.Stats.Misses
		for _, a := range work {
			c.Access(a, false)
		}
		return c.Stats.Misses - before
	}
	drripMisses := run(mk(DRRIP))
	lruMisses := run(mk(TrueLRU))
	if drripMisses > lruMisses {
		t.Fatalf("DRRIP (%d misses) should not be worse than LRU (%d) after a scan", drripMisses, lruMisses)
	}
}

func TestOccupancyNeverExceedsUsableWays(t *testing.T) {
	f := func(seed uint64, reserve uint8) bool {
		c := tiny(BitPLRU)
		res := int(reserve % 4)
		if err := c.ReserveWays(res); err != nil {
			return false
		}
		r := stats.NewRand(seed)
		for i := 0; i < 2000; i++ {
			c.Access(uint64(r.Intn(1<<14)), r.Intn(2) == 0)
		}
		// Per-set occupancy bound: usable ways only.
		perSet := make([]int, c.Sets())
		for s := 0; s < c.Sets(); s++ {
			for w := 0; w < c.Ways(); w++ {
				if c.lineValid(s*c.Ways() + w) {
					perSet[s]++
					if w < res {
						return false // reserved way got filled
					}
				}
			}
			if perSet[s] > c.UsableWays() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsConservation(t *testing.T) {
	// hits + misses == accesses, fills == misses (no bypass in Access).
	f := func(seed uint64) bool {
		c := tiny(DRRIP)
		r := stats.NewRand(seed)
		const n = 5000
		for i := 0; i < n; i++ {
			c.Access(uint64(r.Intn(1<<13)), r.Intn(3) == 0)
		}
		return c.Stats.Accesses() == n && c.Stats.Fills == c.Stats.Misses &&
			c.Stats.Writebacks <= c.Stats.Evictions && c.Stats.Evictions <= c.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedMetaRoundTrip(t *testing.T) {
	// The packed word must preserve tag, valid, and dirty independently.
	c := tiny(TrueLRU)
	addr := uint64(0x7FFC0) // high-ish tag
	c.Access(addr, true)
	set, tag := c.setIndex(addr), c.tagOf(addr)
	w := c.find(set, tag)
	if w < 0 {
		t.Fatal("line not found after fill")
	}
	i := set*c.Ways() + w
	if !c.lineValid(i) || !c.lineDirty(i) {
		t.Fatalf("valid/dirty bits lost: meta=%#x", c.meta[i])
	}
	if got := c.meta[i] >> metaTagShift; got != tag {
		t.Fatalf("tag round-trip: got %#x want %#x", got, tag)
	}
}

func TestMRUFilterNeverStale(t *testing.T) {
	// The MRU filter is a hint: after invalidation or reservation of the
	// last-touched line, probes must not report a stale hit.
	c := tiny(TrueLRU)
	c.Access(0x40, false)
	if !c.Probe(0x40) {
		t.Fatal("line absent after access")
	}
	c.Invalidate(0x40)
	if c.Probe(0x40) {
		t.Fatal("MRU filter returned an invalidated line")
	}
	c.Access(0, false) // lands in way 0 (first free), becomes last-touched
	if err := c.ReserveWays(1); err != nil {
		t.Fatal(err)
	}
	if c.Probe(0) {
		t.Fatal("MRU filter returned a line in a reserved way")
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := tiny(DRRIP)
	r := stats.NewRand(3)
	for i := 0; i < 500; i++ {
		c.Access(uint64(r.Intn(1<<13)), i&1 == 0)
	}
	if err := c.ReserveWays(1); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.OccupiedLines() != 0 {
		t.Fatal("lines survive Reset")
	}
	if c.Stats != (Stats{}) {
		t.Fatalf("stats survive Reset: %+v", c.Stats)
	}
	if c.ReservedWays() != 0 {
		t.Fatal("reservation survives Reset")
	}
	// A reset cache must replay a trace identically to a fresh one.
	fresh := tiny(DRRIP)
	ra, rb := stats.NewRand(9), stats.NewRand(9)
	for i := 0; i < 2000; i++ {
		c.Access(uint64(ra.Intn(1<<13)), i&3 == 0)
		fresh.Access(uint64(rb.Intn(1<<13)), i&3 == 0)
	}
	if c.Stats != fresh.Stats {
		t.Fatalf("reset cache diverges from fresh: %+v vs %+v", c.Stats, fresh.Stats)
	}
}

func TestResetAllPolicies(t *testing.T) {
	for _, p := range []PolicyKind{BitPLRU, TrueLRU, DRRIP, Random} {
		c := tiny(p)
		r := stats.NewRand(uint64(p) + 1)
		for i := 0; i < 1000; i++ {
			c.Access(uint64(r.Intn(1<<13)), false)
		}
		c.Reset()
		fresh := tiny(p)
		ra, rb := stats.NewRand(11), stats.NewRand(11)
		for i := 0; i < 1000; i++ {
			c.Access(uint64(ra.Intn(1<<13)), false)
			fresh.Access(uint64(rb.Intn(1<<13)), false)
		}
		if c.Stats != fresh.Stats {
			t.Fatalf("%v: reset cache diverges: %+v vs %+v", p, c.Stats, fresh.Stats)
		}
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[PolicyKind]string{BitPLRU: "Bit-PLRU", TrueLRU: "LRU", DRRIP: "DRRIP", Random: "Random"} {
		if p.String() != want {
			t.Errorf("String(%d) = %q", p, p.String())
		}
	}
}

func TestSmallCacheThrashes(t *testing.T) {
	// Sanity: a working set 4x the cache must show a high miss rate
	// under cyclic access with any policy.
	c := tiny(BitPLRU)
	lines := 4 * c.Sets() * c.Ways()
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*LineSize), false)
		}
	}
	if mr := c.Stats.MissRate(); mr < 0.5 {
		t.Fatalf("cyclic over-capacity miss rate = %.2f, want >= 0.5", mr)
	}
}
