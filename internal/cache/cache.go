// Package cache models a single level of a set-associative cache with
// pluggable replacement policies and Intel-CAT-style way partitioning.
//
// The model is trace-driven and functional-only at this layer: callers
// feed byte addresses through Access and read hit/miss/writeback counts
// back. Timing is the concern of package cpu and package mem, which
// compose levels into a hierarchy.
//
// Hot-path layout: per-line metadata is packed into a single uint64
// (tag<<2 | dirty<<1 | valid) so the probe loop in find/fill issues one
// load and one masked compare per way instead of touching three
// parallel slices. A one-entry last-line MRU filter in front of the way
// scan short-circuits the common same-line / same-set-reuse case. Both
// are pure implementation details: every simulated counter (hits,
// misses, evictions, writebacks) and every victim choice is identical
// to the unpacked three-slice layout.
package cache

import (
	"fmt"

	"cobra/internal/stats"
)

// LineSize is the cache line size in bytes used throughout the
// simulated machine (Table II in the paper assumes 64 B lines).
const LineSize = 64

// LineBits is log2(LineSize).
const LineBits = 6

// Packed per-line metadata: tag<<2 | dirty<<1 | valid. A zero word is
// an invalid line. Tags are addr >> (LineBits + setBits), so the
// packing supports simulated addresses up to 2^61 — far beyond the
// model's 2^41 address-space ceiling.
const (
	metaValid    uint64 = 1 << 0
	metaDirty    uint64 = 1 << 1
	metaTagShift        = 2
)

// Exported aliases of the packed-metadata layout so BatchView users
// (package mem's inlined hit path) can compose probe words without
// duplicating magic numbers.
const (
	MetaValid    = metaValid
	MetaDirty    = metaDirty
	MetaTagShift = metaTagShift
)

// Stats aggregates access outcomes for one cache level.
type Stats struct {
	Hits       uint64 // accesses that found the line
	Misses     uint64 // accesses that had to fill
	Evictions  uint64 // valid lines displaced by fills
	Writebacks uint64 // dirty lines displaced by fills
	Fills      uint64 // lines installed (== Misses unless bypassed)
}

// Accesses returns total accesses observed.
func (s *Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns Misses/Accesses, or 0 when idle.
func (s *Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// Config describes one cache level's geometry.
type Config struct {
	Name   string // for error messages and reports ("L1", "L2", "LLC")
	SizeB  int    // total capacity in bytes
	Ways   int    // associativity
	Policy PolicyKind
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeB / (c.Ways * LineSize) }

// Lines returns the total number of lines.
func (c Config) Lines() int { return c.SizeB / LineSize }

// Cache is one set-associative cache level.
//
// Way partitioning: ReserveWays(k) removes the first k ways of every set
// from normal allocation, modeling Intel CAT reserving those ways for
// pinned data (COBRA's C-Buffers). Reserved ways are never probed or
// filled by Access; the pinned structures that live there are modeled by
// their owners (package core).
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	setBits  uint
	ways     int
	reserved int // ways [0, reserved) are withheld from normal use

	// meta holds packed per-line metadata (tag<<2|dirty<<1|valid),
	// indexed by set*ways+way.
	meta []uint64

	// One-entry MRU filter: the (set, way) of the last line touched by
	// find/fill. It is a hint only — find re-verifies the packed word
	// before trusting it — so invalidations, reservations, and refills
	// never need to maintain it for correctness.
	lastSet int32
	lastWay int32

	repl replacer

	Stats Stats
}

// New constructs a cache level. It panics on a malformed geometry since
// configs are compile-time constants of the simulated machine.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || !stats.IsPow2(uint64(sets)) {
		panic(fmt.Sprintf("cache %s: set count %d must be a positive power of two (size=%d ways=%d)",
			cfg.Name, sets, cfg.SizeB, cfg.Ways))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", cfg.Name))
	}
	n := sets * cfg.Ways
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		setBits: stats.Log2Ceil(uint64(sets)),
		ways:    cfg.Ways,
		meta:    make([]uint64, n),
		lastSet: -1,
	}
	c.repl = newReplacer(cfg.Policy, sets, cfg.Ways)
	return c
}

// Config returns the geometry this level was built with.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// UsableWays returns the ways available for normal allocation.
func (c *Cache) UsableWays() int { return c.ways - c.reserved }

// lineValid reports whether line i (set*ways+way) holds a valid line.
func (c *Cache) lineValid(i int) bool { return c.meta[i]&metaValid != 0 }

// lineDirty reports whether line i holds a dirty line.
func (c *Cache) lineDirty(i int) bool { return c.meta[i]&metaDirty != 0 }

// ReserveWays withholds the first k ways of every set from normal
// allocation and invalidates any resident lines in them (their contents
// conceptually belong to the pinned owner now). k must leave at least
// one usable way.
func (c *Cache) ReserveWays(k int) error {
	if k < 0 || k >= c.ways {
		return fmt.Errorf("cache %s: cannot reserve %d of %d ways (at least one must remain)", c.cfg.Name, k, c.ways)
	}
	c.reserved = k
	for s := 0; s < c.sets; s++ {
		for w := 0; w < k; w++ {
			c.meta[s*c.ways+w] = 0
		}
	}
	c.lastSet = -1
	return nil
}

// ReservedWays returns the current reservation.
func (c *Cache) ReservedWays() int { return c.reserved }

// ReservedBytes returns the capacity withheld by the reservation.
func (c *Cache) ReservedBytes() int { return c.reserved * c.sets * LineSize }

// Reset restores the level to its post-New state: all lines invalid,
// stats zeroed, replacement state cleared, reservation lifted. It lets
// a pooled machine reuse a Cache without leaking lines, stats, or
// replacement history from the previous run.
func (c *Cache) Reset() {
	for i := range c.meta {
		c.meta[i] = 0
	}
	c.reserved = 0
	c.lastSet = -1
	c.repl.reset()
	c.Stats = Stats{}
}

func (c *Cache) setIndex(addr uint64) int { return int((addr >> LineBits) & c.setMask) }
func (c *Cache) tagOf(addr uint64) uint64 { return addr >> (LineBits + c.setBits) }

// Result reports what one access did.
type Result struct {
	Hit           bool
	Evicted       bool   // a valid line was displaced
	WroteBack     bool   // the displaced line was dirty
	VictimAddr    uint64 // line-aligned address of the displaced line (valid when Evicted)
	VictimWasMRU  bool   // diagnostic: victim was the most recently touched usable line
	BypassedAlloc bool   // access was a non-allocating write (non-temporal store)
}

// Access performs a demand load or store of addr. Misses allocate
// (write-allocate, writeback). It returns what happened so hierarchies
// can propagate fills and writebacks.
func (c *Cache) Access(addr uint64, write bool) Result {
	return c.access(addr, write)
}

// Prefetch installs addr's line if absent without counting a demand
// miss. Used by the L2 stream prefetcher. Returns true if the line was
// already present.
func (c *Cache) Prefetch(addr uint64) bool {
	set := c.setIndex(addr)
	tag := c.tagOf(addr)
	if w := c.find(set, tag); w >= 0 {
		return true
	}
	c.fill(set, tag, false)
	return false
}

// Probe reports whether addr's line is resident, without side effects.
func (c *Cache) Probe(addr uint64) bool {
	return c.find(c.setIndex(addr), c.tagOf(addr)) >= 0
}

// WriteNT models a non-temporal (streaming) store: if the line is
// resident it is updated in place (and marked dirty); otherwise the
// store bypasses the cache entirely (write-combining to memory) and no
// allocation happens.
func (c *Cache) WriteNT(addr uint64) Result {
	set := c.setIndex(addr)
	tag := c.tagOf(addr)
	if w := c.find(set, tag); w >= 0 {
		c.meta[set*c.ways+w] |= metaDirty
		c.repl.onHit(set, w)
		c.Stats.Hits++
		return Result{Hit: true}
	}
	return Result{BypassedAlloc: true}
}

// Invalidate drops addr's line if resident, returning whether it was
// dirty (callers writeback as needed). Used by flush modeling.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.setIndex(addr)
	tag := c.tagOf(addr)
	w := c.find(set, tag)
	if w < 0 {
		return false, false
	}
	i := set*c.ways + w
	d := c.meta[i]&metaDirty != 0
	c.meta[i] = 0
	return true, d
}

// FlushAll invalidates every line, returning how many dirty lines were
// dropped (the caller accounts the writeback traffic).
func (c *Cache) FlushAll() (dirtyLines int) {
	for i, m := range c.meta {
		if m&(metaValid|metaDirty) == metaValid|metaDirty {
			dirtyLines++
		}
		c.meta[i] = 0
	}
	c.lastSet = -1
	return dirtyLines
}

// OccupiedLines counts valid lines (diagnostics and tests).
func (c *Cache) OccupiedLines() int {
	n := 0
	for _, m := range c.meta {
		if m&metaValid != 0 {
			n++
		}
	}
	return n
}

func (c *Cache) access(addr uint64, write bool) Result {
	set := c.setIndex(addr)
	tag := c.tagOf(addr)
	if w := c.find(set, tag); w >= 0 {
		if write {
			c.meta[set*c.ways+w] |= metaDirty
		}
		c.repl.onHit(set, w)
		c.Stats.Hits++
		return Result{Hit: true}
	}
	c.Stats.Misses++
	return c.fill(set, tag, write)
}

// FillMiss counts a demand miss and installs addr's line, skipping the
// tag probe — for callers that have already established the line is
// absent (the batched pipeline's inline probe). The probe it skips has
// no side effects on a miss, so the outcome is identical to Access on
// a missing line.
func (c *Cache) FillMiss(addr uint64, write bool) Result {
	c.Stats.Misses++
	return c.fill(c.setIndex(addr), c.tagOf(addr), write)
}

// PrefetchMiss installs addr's line as a prefetch fill, skipping the
// tag probe — for callers that have already established (via Probe)
// that the line is absent. Identical to Prefetch on a missing line.
func (c *Cache) PrefetchMiss(addr uint64) {
	c.fill(c.setIndex(addr), c.tagOf(addr), false)
}

// AccessHitAt applies the demand-hit path at a known-resident line
// (set, way): dirty update, replacement touch, hit count, MRU filter.
// For callers that re-verified residency through BatchView metadata
// and so can skip the tag probe. A set holds at most one valid copy of
// a tag, so a verified (set, way) is exactly where find would land —
// the outcome is identical to Access on a hit.
func (c *Cache) AccessHitAt(set, way int, write bool) {
	if write {
		c.meta[set*c.ways+way] |= metaDirty
	}
	c.repl.onHit(set, way)
	c.Stats.Hits++
	c.lastSet, c.lastWay = int32(set), int32(way)
}

// find locates tag in set, returning the way or -1. The packed layout
// makes the scan a single masked compare per way; the MRU filter skips
// the scan entirely when the last-touched line matches (it re-verifies
// the packed word, so it is never stale).
func (c *Cache) find(set int, tag uint64) int {
	base := set * c.ways
	want := tag<<metaTagShift | metaValid
	row := c.meta[base : base+c.ways]
	if int(c.lastSet) == set {
		if w := int(c.lastWay); w >= c.reserved && row[w]&^metaDirty == want {
			return w
		}
	}
	for w := c.reserved; w < len(row); w++ {
		if row[w]&^metaDirty == want {
			c.lastSet, c.lastWay = int32(set), int32(w)
			return w
		}
	}
	return -1
}

func (c *Cache) fill(set int, tag uint64, write bool) Result {
	base := set * c.ways
	row := c.meta[base : base+c.ways]
	res := Result{}
	way := -1
	for w := c.reserved; w < len(row); w++ {
		if row[w]&metaValid == 0 {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.repl.victim(set, c.reserved)
		m := row[way]
		res.Evicted = true
		res.WroteBack = m&metaDirty != 0
		res.VictimAddr = c.victimAddr(set, m>>metaTagShift)
		c.Stats.Evictions++
		if res.WroteBack {
			c.Stats.Writebacks++
		}
	}
	m := tag<<metaTagShift | metaValid
	if write {
		m |= metaDirty
	}
	row[way] = m
	c.lastSet, c.lastWay = int32(set), int32(way)
	c.repl.onFill(set, way)
	c.Stats.Fills++
	return res
}

func (c *Cache) victimAddr(set int, tag uint64) uint64 {
	return (tag << (LineBits + c.setBits)) | (uint64(set) << LineBits)
}

// BatchView exposes the packed per-line metadata and (when the policy
// is mask-based Bit-PLRU) the replacement masks, so package mem can
// inline this level's hit path inside AccessBatch without a call per
// reference. The view snapshots the geometry: callers must re-take it
// after ReserveWays or Reset. Mutations through the view must follow
// the scalar access semantics exactly (set dirty bit, Bit-PLRU touch),
// and hits taken through it are folded back via AddBatchHits.
type BatchView struct {
	Meta     []uint64 // packed tag<<2|dirty<<1|valid, indexed set*Ways+way
	PLRU     []uint16 // per-set Bit-PLRU masks; nil if the policy is not mask Bit-PLRU
	PLRUFull uint16   // mask with all Ways bits set
	SetMask  uint64
	SetBits  uint
	Ways     int
	Reserved int
}

// BatchView returns the inline-probe view of this level. PLRU is
// non-nil only for mask-based Bit-PLRU (ways <= 16); with any other
// policy a batched caller must keep using the scalar methods, whose
// replacement updates cannot be replayed externally.
func (c *Cache) BatchView() BatchView {
	v := BatchView{
		Meta:     c.meta,
		SetMask:  c.setMask,
		SetBits:  c.setBits,
		Ways:     c.ways,
		Reserved: c.reserved,
	}
	if p, ok := c.repl.(*bitPLRU); ok {
		v.PLRU = p.mru
		v.PLRUFull = p.full
	}
	return v
}

// AddBatchHits folds hits counted by a batched caller (probing through
// BatchView) into this level's stats. Hit counts are pure sums, so
// deferring them to one add per batch is counter-exact.
func (c *Cache) AddBatchHits(n uint64) { c.Stats.Hits += n }

// LastTouched returns the one-entry MRU filter: the (set, way) of the
// last line located by a demand access or fill (set < 0 if none).
// Immediately after a demand access of addr it identifies addr's
// resident line — the handoff a batched caller uses to resume inline
// probing after a scalar miss-path call.
func (c *Cache) LastTouched() (set, way int) { return int(c.lastSet), int(c.lastWay) }
