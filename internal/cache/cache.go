// Package cache models a single level of a set-associative cache with
// pluggable replacement policies and Intel-CAT-style way partitioning.
//
// The model is trace-driven and functional-only at this layer: callers
// feed byte addresses through Access and read hit/miss/writeback counts
// back. Timing is the concern of package cpu and package mem, which
// compose levels into a hierarchy.
//
// Hot-path layout: per-line metadata is packed into a single uint64
// (tag<<2 | dirty<<1 | valid) so the probe loop in find/fill issues one
// load and one masked compare per way instead of touching three
// parallel slices. A one-entry last-line MRU filter in front of the way
// scan short-circuits the common same-line / same-set-reuse case. Both
// are pure implementation details: every simulated counter (hits,
// misses, evictions, writebacks) and every victim choice is identical
// to the unpacked three-slice layout.
package cache

import (
	"fmt"

	"cobra/internal/stats"
)

// LineSize is the cache line size in bytes used throughout the
// simulated machine (Table II in the paper assumes 64 B lines).
const LineSize = 64

// LineBits is log2(LineSize).
const LineBits = 6

// Packed per-line metadata: tag<<2 | dirty<<1 | valid. A zero word is
// an invalid line. Tags are addr >> (LineBits + setBits), so the
// packing supports simulated addresses up to 2^61 — far beyond the
// model's 2^41 address-space ceiling.
const (
	metaValid    uint64 = 1 << 0
	metaDirty    uint64 = 1 << 1
	metaTagShift        = 2
)

// Stats aggregates access outcomes for one cache level.
type Stats struct {
	Hits       uint64 // accesses that found the line
	Misses     uint64 // accesses that had to fill
	Evictions  uint64 // valid lines displaced by fills
	Writebacks uint64 // dirty lines displaced by fills
	Fills      uint64 // lines installed (== Misses unless bypassed)
}

// Accesses returns total accesses observed.
func (s *Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns Misses/Accesses, or 0 when idle.
func (s *Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// Config describes one cache level's geometry.
type Config struct {
	Name   string // for error messages and reports ("L1", "L2", "LLC")
	SizeB  int    // total capacity in bytes
	Ways   int    // associativity
	Policy PolicyKind
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeB / (c.Ways * LineSize) }

// Lines returns the total number of lines.
func (c Config) Lines() int { return c.SizeB / LineSize }

// Cache is one set-associative cache level.
//
// Way partitioning: ReserveWays(k) removes the first k ways of every set
// from normal allocation, modeling Intel CAT reserving those ways for
// pinned data (COBRA's C-Buffers). Reserved ways are never probed or
// filled by Access; the pinned structures that live there are modeled by
// their owners (package core).
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	setBits  uint
	ways     int
	reserved int // ways [0, reserved) are withheld from normal use

	// meta holds packed per-line metadata (tag<<2|dirty<<1|valid),
	// indexed by set*ways+way.
	meta []uint64

	// One-entry MRU filter: the (set, way) of the last line touched by
	// find/fill. It is a hint only — find re-verifies the packed word
	// before trusting it — so invalidations, reservations, and refills
	// never need to maintain it for correctness.
	lastSet int32
	lastWay int32

	repl replacer

	Stats Stats
}

// New constructs a cache level. It panics on a malformed geometry since
// configs are compile-time constants of the simulated machine.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || !stats.IsPow2(uint64(sets)) {
		panic(fmt.Sprintf("cache %s: set count %d must be a positive power of two (size=%d ways=%d)",
			cfg.Name, sets, cfg.SizeB, cfg.Ways))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", cfg.Name))
	}
	n := sets * cfg.Ways
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		setBits: stats.Log2Ceil(uint64(sets)),
		ways:    cfg.Ways,
		meta:    make([]uint64, n),
		lastSet: -1,
	}
	c.repl = newReplacer(cfg.Policy, sets, cfg.Ways)
	return c
}

// Config returns the geometry this level was built with.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// UsableWays returns the ways available for normal allocation.
func (c *Cache) UsableWays() int { return c.ways - c.reserved }

// lineValid reports whether line i (set*ways+way) holds a valid line.
func (c *Cache) lineValid(i int) bool { return c.meta[i]&metaValid != 0 }

// lineDirty reports whether line i holds a dirty line.
func (c *Cache) lineDirty(i int) bool { return c.meta[i]&metaDirty != 0 }

// ReserveWays withholds the first k ways of every set from normal
// allocation and invalidates any resident lines in them (their contents
// conceptually belong to the pinned owner now). k must leave at least
// one usable way.
func (c *Cache) ReserveWays(k int) error {
	if k < 0 || k >= c.ways {
		return fmt.Errorf("cache %s: cannot reserve %d of %d ways (at least one must remain)", c.cfg.Name, k, c.ways)
	}
	c.reserved = k
	for s := 0; s < c.sets; s++ {
		for w := 0; w < k; w++ {
			c.meta[s*c.ways+w] = 0
		}
	}
	c.lastSet = -1
	return nil
}

// ReservedWays returns the current reservation.
func (c *Cache) ReservedWays() int { return c.reserved }

// ReservedBytes returns the capacity withheld by the reservation.
func (c *Cache) ReservedBytes() int { return c.reserved * c.sets * LineSize }

// Reset restores the level to its post-New state: all lines invalid,
// stats zeroed, replacement state cleared, reservation lifted. It lets
// a pooled machine reuse a Cache without leaking lines, stats, or
// replacement history from the previous run.
func (c *Cache) Reset() {
	for i := range c.meta {
		c.meta[i] = 0
	}
	c.reserved = 0
	c.lastSet = -1
	c.repl.reset()
	c.Stats = Stats{}
}

func (c *Cache) setIndex(addr uint64) int { return int((addr >> LineBits) & c.setMask) }
func (c *Cache) tagOf(addr uint64) uint64 { return addr >> (LineBits + c.setBits) }

// Result reports what one access did.
type Result struct {
	Hit           bool
	Evicted       bool   // a valid line was displaced
	WroteBack     bool   // the displaced line was dirty
	VictimAddr    uint64 // line-aligned address of the displaced line (valid when Evicted)
	VictimWasMRU  bool   // diagnostic: victim was the most recently touched usable line
	BypassedAlloc bool   // access was a non-allocating write (non-temporal store)
}

// Access performs a demand load or store of addr. Misses allocate
// (write-allocate, writeback). It returns what happened so hierarchies
// can propagate fills and writebacks.
func (c *Cache) Access(addr uint64, write bool) Result {
	return c.access(addr, write)
}

// Prefetch installs addr's line if absent without counting a demand
// miss. Used by the L2 stream prefetcher. Returns true if the line was
// already present.
func (c *Cache) Prefetch(addr uint64) bool {
	set := c.setIndex(addr)
	tag := c.tagOf(addr)
	if w := c.find(set, tag); w >= 0 {
		return true
	}
	c.fill(set, tag, false)
	return false
}

// Probe reports whether addr's line is resident, without side effects.
func (c *Cache) Probe(addr uint64) bool {
	return c.find(c.setIndex(addr), c.tagOf(addr)) >= 0
}

// WriteNT models a non-temporal (streaming) store: if the line is
// resident it is updated in place (and marked dirty); otherwise the
// store bypasses the cache entirely (write-combining to memory) and no
// allocation happens.
func (c *Cache) WriteNT(addr uint64) Result {
	set := c.setIndex(addr)
	tag := c.tagOf(addr)
	if w := c.find(set, tag); w >= 0 {
		c.meta[set*c.ways+w] |= metaDirty
		c.repl.onHit(set, w)
		c.Stats.Hits++
		return Result{Hit: true}
	}
	return Result{BypassedAlloc: true}
}

// Invalidate drops addr's line if resident, returning whether it was
// dirty (callers writeback as needed). Used by flush modeling.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.setIndex(addr)
	tag := c.tagOf(addr)
	w := c.find(set, tag)
	if w < 0 {
		return false, false
	}
	i := set*c.ways + w
	d := c.meta[i]&metaDirty != 0
	c.meta[i] = 0
	return true, d
}

// FlushAll invalidates every line, returning how many dirty lines were
// dropped (the caller accounts the writeback traffic).
func (c *Cache) FlushAll() (dirtyLines int) {
	for i, m := range c.meta {
		if m&(metaValid|metaDirty) == metaValid|metaDirty {
			dirtyLines++
		}
		c.meta[i] = 0
	}
	c.lastSet = -1
	return dirtyLines
}

// OccupiedLines counts valid lines (diagnostics and tests).
func (c *Cache) OccupiedLines() int {
	n := 0
	for _, m := range c.meta {
		if m&metaValid != 0 {
			n++
		}
	}
	return n
}

func (c *Cache) access(addr uint64, write bool) Result {
	set := c.setIndex(addr)
	tag := c.tagOf(addr)
	if w := c.find(set, tag); w >= 0 {
		if write {
			c.meta[set*c.ways+w] |= metaDirty
		}
		c.repl.onHit(set, w)
		c.Stats.Hits++
		return Result{Hit: true}
	}
	c.Stats.Misses++
	return c.fill(set, tag, write)
}

// find locates tag in set, returning the way or -1. The packed layout
// makes the scan a single masked compare per way; the MRU filter skips
// the scan entirely when the last-touched line matches (it re-verifies
// the packed word, so it is never stale).
func (c *Cache) find(set int, tag uint64) int {
	base := set * c.ways
	want := tag<<metaTagShift | metaValid
	if int(c.lastSet) == set {
		if w := int(c.lastWay); w >= c.reserved && c.meta[base+w]&^metaDirty == want {
			return w
		}
	}
	for w := c.reserved; w < c.ways; w++ {
		if c.meta[base+w]&^metaDirty == want {
			c.lastSet, c.lastWay = int32(set), int32(w)
			return w
		}
	}
	return -1
}

func (c *Cache) fill(set int, tag uint64, write bool) Result {
	base := set * c.ways
	res := Result{}
	way := -1
	for w := c.reserved; w < c.ways; w++ {
		if c.meta[base+w]&metaValid == 0 {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.repl.victim(set, c.reserved)
		m := c.meta[base+way]
		res.Evicted = true
		res.WroteBack = m&metaDirty != 0
		res.VictimAddr = c.victimAddr(set, m>>metaTagShift)
		c.Stats.Evictions++
		if res.WroteBack {
			c.Stats.Writebacks++
		}
	}
	m := tag<<metaTagShift | metaValid
	if write {
		m |= metaDirty
	}
	c.meta[base+way] = m
	c.lastSet, c.lastWay = int32(set), int32(way)
	c.repl.onFill(set, way)
	c.Stats.Fills++
	return res
}

func (c *Cache) victimAddr(set int, tag uint64) uint64 {
	return (tag << (LineBits + c.setBits)) | (uint64(set) << LineBits)
}
