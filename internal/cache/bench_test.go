package cache

import (
	"testing"

	"cobra/internal/stats"
)

func benchCache(p PolicyKind) *Cache {
	return New(Config{Name: "B", SizeB: 32 << 10, Ways: 8, Policy: p})
}

func benchAddrs(n int) []uint64 {
	r := stats.NewRand(1)
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 24)
	}
	return addrs
}

func BenchmarkAccessBitPLRU(b *testing.B) {
	c := benchCache(BitPLRU)
	addrs := benchAddrs(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<16-1)], i&3 == 0)
	}
}

func BenchmarkAccessDRRIP(b *testing.B) {
	c := New(Config{Name: "B", SizeB: 2 << 20, Ways: 16, Policy: DRRIP})
	addrs := benchAddrs(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<16-1)], false)
	}
}

// BenchmarkCacheAccessHot guards the packed-metadata + MRU-filter win:
// a hit-dominated access stream with heavy same-line reuse, the shape
// of every simulated access in the Binning/Accumulate inner loops.
func BenchmarkCacheAccessHot(b *testing.B) {
	c := benchCache(BitPLRU)
	// 64-line working set fits the 512-line cache: ~100% hits after
	// warmup. Four consecutive touches per line model word-granular
	// reuse inside one line (the MRU-filter fast path).
	const lines = 64
	addrs := make([]uint64, lines*4)
	for i := range addrs {
		addrs[i] = uint64(i/4)*LineSize + uint64(i%4)*8
	}
	for _, a := range addrs {
		c.Access(a, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)], i&7 == 0)
	}
}

func BenchmarkAccessSequential(b *testing.B) {
	c := benchCache(BitPLRU)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*8, false)
	}
}
