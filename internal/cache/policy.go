package cache

import "math/bits"

// PolicyKind selects a replacement policy for a cache level.
type PolicyKind int

// Replacement policies used by the simulated machine (Table II):
// Bit-PLRU in L1/L2, DRRIP in the LLC. TrueLRU and Random exist for
// ablation experiments and tests.
const (
	BitPLRU PolicyKind = iota
	TrueLRU
	DRRIP
	Random
)

// String returns the policy's display name.
func (p PolicyKind) String() string {
	switch p {
	case BitPLRU:
		return "Bit-PLRU"
	case TrueLRU:
		return "LRU"
	case DRRIP:
		return "DRRIP"
	case Random:
		return "Random"
	}
	return "unknown"
}

// replacer is a per-level replacement policy. Implementations keep all
// state in flat arrays so the hot path never allocates. The minWay
// argument to victim is the partition floor: ways below it are reserved
// and must never be chosen.
type replacer interface {
	onHit(set, way int)
	onFill(set, way int)
	victim(set, minWay int) int
	// reset restores the post-construction state (Cache.Reset support
	// for pooled machine reuse).
	reset()
}

func newReplacer(kind PolicyKind, sets, ways int) replacer {
	switch kind {
	case BitPLRU:
		return newBitPLRU(sets, ways)
	case TrueLRU:
		return newTrueLRU(sets, ways)
	case DRRIP:
		return newDRRIP(sets, ways)
	case Random:
		return newRandomRepl(sets, ways)
	default:
		panic("cache: unknown replacement policy")
	}
}

// bitPLRU keeps one MRU bit per line, packed as one mask word per set.
// A touch sets the line's bit; when every bit in the set is set, all
// other bits clear (leaving only the touched way marked). The victim is
// the lowest-indexed usable way with a clear bit.
//
// The mask layout makes touch two ALU ops and one store — the
// branch-light update the batched hit path relies on — and is
// bit-for-bit equivalent to the per-line boolean layout it replaced:
// the saturation check covers all ways of the set (including reserved
// ones, whose stale bits persist exactly as the boolean version's did).
type bitPLRU struct {
	ways int
	full uint16 // all `ways` bits set
	mru  []uint16
}

// plruMaxWays bounds the mask representation; wider sets fall back to
// bitPLRUWide (and forgo the batched fast path).
const plruMaxWays = 16

func newBitPLRU(sets, ways int) replacer {
	if ways > plruMaxWays {
		return &bitPLRUWide{ways: ways, mru: make([]bool, sets*ways)}
	}
	return &bitPLRU{ways: ways, full: uint16(1)<<uint(ways) - 1, mru: make([]uint16, sets)}
}

func (p *bitPLRU) touch(set, way int) {
	m := p.mru[set] | 1<<uint(way)
	if m == p.full {
		m = 1 << uint(way)
	}
	p.mru[set] = m
}

func (p *bitPLRU) onHit(set, way int)  { p.touch(set, way) }
func (p *bitPLRU) onFill(set, way int) { p.touch(set, way) }

func (p *bitPLRU) reset() {
	for i := range p.mru {
		p.mru[i] = 0
	}
}

func (p *bitPLRU) victim(set, minWay int) int {
	// Lowest way >= minWay with a clear MRU bit, else minWay — the same
	// scan order as the boolean loop, computed with one trailing-zeros.
	clear := ^p.mru[set] & p.full &^ (uint16(1)<<uint(minWay) - 1)
	if clear == 0 {
		return minWay
	}
	return bits.TrailingZeros16(clear)
}

// bitPLRUWide is the boolean-per-line Bit-PLRU used when a set has more
// ways than the mask word holds. Identical policy decisions.
type bitPLRUWide struct {
	ways int
	mru  []bool // sets*ways
}

func (p *bitPLRUWide) touch(set, way int) {
	base := set * p.ways
	p.mru[base+way] = true
	for w := 0; w < p.ways; w++ {
		if !p.mru[base+w] {
			return
		}
	}
	for w := 0; w < p.ways; w++ {
		if w != way {
			p.mru[base+w] = false
		}
	}
}

func (p *bitPLRUWide) onHit(set, way int)  { p.touch(set, way) }
func (p *bitPLRUWide) onFill(set, way int) { p.touch(set, way) }

func (p *bitPLRUWide) reset() {
	for i := range p.mru {
		p.mru[i] = false
	}
}

func (p *bitPLRUWide) victim(set, minWay int) int {
	base := set * p.ways
	for w := minWay; w < p.ways; w++ {
		if !p.mru[base+w] {
			return w
		}
	}
	return minWay
}

// trueLRU keeps a per-line logical timestamp.
type trueLRU struct {
	ways  int
	stamp []uint64
	clock uint64
}

func newTrueLRU(sets, ways int) *trueLRU {
	return &trueLRU{ways: ways, stamp: make([]uint64, sets*ways)}
}

func (p *trueLRU) onHit(set, way int)  { p.clock++; p.stamp[set*p.ways+way] = p.clock }
func (p *trueLRU) onFill(set, way int) { p.clock++; p.stamp[set*p.ways+way] = p.clock }

func (p *trueLRU) reset() {
	for i := range p.stamp {
		p.stamp[i] = 0
	}
	p.clock = 0
}

func (p *trueLRU) victim(set, minWay int) int {
	base := set * p.ways
	best, bestStamp := minWay, p.stamp[base+minWay]
	for w := minWay + 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// drrip implements Dynamic Re-Reference Interval Prediction [29]:
// 2-bit RRPVs, SRRIP vs BRRIP chosen by set dueling with a saturating
// PSEL counter. The BRRIP "long insertion most of the time" coin flip is
// replaced by a deterministic 1-in-32 counter so simulations reproduce
// exactly.
type drrip struct {
	ways  int
	sets  int
	rrpv  []uint8
	psel  int // saturating [-psMax, psMax]; >=0 means SRRIP wins
	bimod uint32
}

const (
	rrpvMax   = 3   // 2-bit RRPV
	pselMax   = 512 // saturation bound
	brripFreq = 32  // 1-in-32 BRRIP inserts use RRPV=rrpvMax-1
)

func newDRRIP(sets, ways int) *drrip {
	d := &drrip{ways: ways, sets: sets, rrpv: make([]uint8, sets*ways)}
	for i := range d.rrpv {
		d.rrpv[i] = rrpvMax
	}
	return d
}

// Set dueling: a strided subset of sets is dedicated to each policy.
// leader returns +1 for SRRIP leader sets, -1 for BRRIP leaders, 0 for
// follower sets.
func (d *drrip) leader(set int) int {
	switch set & 63 {
	case 0:
		return 1
	case 32:
		return -1
	}
	return 0
}

func (d *drrip) onHit(set, way int) { d.rrpv[set*d.ways+way] = 0 }

func (d *drrip) reset() {
	for i := range d.rrpv {
		d.rrpv[i] = rrpvMax
	}
	d.psel = 0
	d.bimod = 0
}

func (d *drrip) onFill(set, way int) {
	useSRRIP := d.psel >= 0
	switch d.leader(set) {
	case 1:
		useSRRIP = true
		// A fill in a leader set means its policy missed; punish it.
		if d.psel > -pselMax {
			d.psel--
		}
	case -1:
		useSRRIP = false
		if d.psel < pselMax {
			d.psel++
		}
	}
	i := set*d.ways + way
	if useSRRIP {
		d.rrpv[i] = rrpvMax - 1
	} else {
		d.bimod++
		if d.bimod%brripFreq == 0 {
			d.rrpv[i] = rrpvMax - 1
		} else {
			d.rrpv[i] = rrpvMax
		}
	}
}

func (d *drrip) victim(set, minWay int) int {
	base := set * d.ways
	for {
		for w := minWay; w < d.ways; w++ {
			if d.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := minWay; w < d.ways; w++ {
			if d.rrpv[base+w] < rrpvMax {
				d.rrpv[base+w]++
			}
		}
	}
}

// randomRepl picks victims with a deterministic xorshift stream.
type randomRepl struct {
	ways  int
	state uint64
}

// randomSeed is the fixed xorshift seed (deterministic replay).
const randomSeed = 0x2545F4914F6CDD1D

func newRandomRepl(sets, ways int) *randomRepl {
	return &randomRepl{ways: ways, state: randomSeed}
}

func (p *randomRepl) onHit(int, int)  {}
func (p *randomRepl) onFill(int, int) {}

func (p *randomRepl) reset() { p.state = randomSeed }

func (p *randomRepl) victim(set, minWay int) int {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	span := p.ways - minWay
	return minWay + int(p.state%uint64(span))
}
