package sparse

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"cobra/internal/pb"
	"cobra/internal/stats"
)

// denseOf expands m for small-matrix ground truth (duplicates sum).
func denseOf(m *Matrix) [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
	}
	for _, c := range m.ToCOO() {
		d[c.Row][c.Col] += c.Val
	}
	return d
}

func matricesEqual(t *testing.T, a, b *Matrix, eps float64) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		t.Fatalf("shape: (%d,%d,%d) vs (%d,%d,%d)", a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
	}
	da, db := denseOf(a), denseOf(b)
	for i := range da {
		for j := range da[i] {
			if math.Abs(da[i][j]-db[i][j]) > eps {
				t.Fatalf("entry (%d,%d): %g vs %g", i, j, da[i][j], db[i][j])
			}
		}
	}
}

func TestFromCOORoundTrip(t *testing.T) {
	coords := []Coord{{0, 1, 2.0}, {2, 0, -1.0}, {0, 3, 4.0}, {1, 1, 0.5}}
	m := FromCOO(3, 4, coords)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	back := m.ToCOO()
	if len(back) != len(coords) {
		t.Fatalf("NNZ %d vs %d", len(back), len(coords))
	}
	d := denseOf(m)
	if d[0][1] != 2.0 || d[2][0] != -1.0 || d[0][3] != 4.0 || d[1][1] != 0.5 {
		t.Fatalf("dense = %v", d)
	}
}

func TestValidateCatchesBadCols(t *testing.T) {
	m := FromCOO(2, 2, []Coord{{0, 1, 1}})
	m.ColIdx[0] = 5
	if m.Validate() == nil {
		t.Fatal("bad column not caught")
	}
}

func TestStencil5Shape(t *testing.T) {
	m := Stencil5(8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 64 || m.NNZ() != 64*5-4*8 {
		t.Fatalf("rows=%d nnz=%d", m.Rows, m.NNZ())
	}
	// Row sums of the interior Laplacian are 0.
	d := denseOf(m)
	sum := 0.0
	for _, v := range d[9*1+1] {
		sum += v
	}
	_ = sum // corner rows have positive sums; just validate symmetry:
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("stencil not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGeneratorsValidate(t *testing.T) {
	for name, m := range map[string]*Matrix{
		"random": RandomSparse(100, 80, 6, 1),
		"skewed": SkewedSparse(100, 128, 6, 2),
		"banded": Banded(100, 5, 8, 3),
		"sym":    SymmetricUpper(60, 4, 4),
	} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.NNZ() == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
}

func TestSkewedSparseIsSkewed(t *testing.T) {
	m := SkewedSparse(2000, 2048, 8, 5)
	colCnt := make([]int, m.Cols)
	for _, c := range m.ColIdx {
		colCnt[c]++
	}
	sort.Ints(colCnt)
	top := 0
	for _, c := range colCnt[len(colCnt)-len(colCnt)/100:] {
		top += c
	}
	if float64(top)/float64(m.NNZ()) < 0.10 {
		t.Fatalf("top-1%% of columns hold %.3f of entries; want skew", float64(top)/float64(m.NNZ()))
	}
}

func TestBandedStaysInBand(t *testing.T) {
	m := Banded(200, 4, 10, 7)
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, j := range cols {
			if int(j) < i-10 || int(j) > i+10 {
				t.Fatalf("entry (%d,%d) outside band", i, j)
			}
		}
	}
}

func TestSpMVAgainstDense(t *testing.T) {
	m := RandomSparse(50, 40, 5, 9)
	x := make([]float64, 40)
	r := stats.NewRand(1)
	for i := range x {
		x[i] = r.Float64()
	}
	y := make([]float64, 50)
	SpMV(m, x, y)
	d := denseOf(m)
	for i := 0; i < 50; i++ {
		want := 0.0
		for j := 0; j < 40; j++ {
			want += d[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-10 {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestSpMVScatterEqualsTransposeSpMV(t *testing.T) {
	m := RandomSparse(60, 45, 4, 11)
	x := make([]float64, 60)
	r := stats.NewRand(2)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	yScatter := make([]float64, 45)
	SpMVScatter(m, x, yScatter)
	yT := make([]float64, 45)
	SpMV(Transpose(m), x, yT)
	for i := range yScatter {
		if math.Abs(yScatter[i]-yT[i]) > 1e-10 {
			t.Fatalf("scatter[%d] = %g, Aᵀx = %g", i, yScatter[i], yT[i])
		}
	}
}

func TestSpMVScatterPBMatches(t *testing.T) {
	m := SkewedSparse(500, 512, 6, 13)
	x := make([]float64, 500)
	r := stats.NewRand(3)
	for i := range x {
		x[i] = r.Float64()
	}
	a := make([]float64, 512)
	b := make([]float64, 512)
	SpMVScatter(m, x, a)
	SpMVScatterPB(m, x, b, pb.Options{NumBins: 16, Workers: 4})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("PB scatter differs at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := RandomSparse(70, 50, 5, 17)
	tt := Transpose(Transpose(m))
	matricesEqual(t, m, tt, 0)
}

func TestTransposePBMatchesBaseline(t *testing.T) {
	m := SkewedSparse(300, 256, 7, 19)
	a := Transpose(m)
	for _, o := range []pb.Options{{}, {NumBins: 8}, {NumBins: 64, Workers: 4}} {
		b := TransposePB(m, o)
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		matricesEqual(t, a, b, 0)
	}
}

func TestPINVProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		p := stats.NewRand(seed).Perm(n)
		inv := PINV(p)
		invPB := PINVPB(p, pb.Options{NumBins: 8, Workers: 3})
		for i := 0; i < n; i++ {
			if inv[p[i]] != uint32(i) || invPB[i] != inv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPINVInvolution(t *testing.T) {
	p := stats.NewRand(23).Perm(512)
	if inv2 := PINV(PINV(p)); len(inv2) != len(p) {
		t.Fatal("length changed")
	} else {
		for i := range p {
			if inv2[i] != p[i] {
				t.Fatal("PINV(PINV(p)) != p")
			}
		}
	}
}

// symPermDense computes the ground truth: permute the symmetric matrix
// represented by its upper triangle and return the upper triangle of
// the permuted matrix.
func symPermDense(a *Matrix, perm []uint32) [][]float64 {
	n := a.Rows
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if int(j) < i {
				continue
			}
			i2, j2 := perm[i], perm[j]
			if i2 > j2 {
				i2, j2 = j2, i2
			}
			out[i2][j2] += vals[k]
		}
	}
	return out
}

func TestSymPermAgainstDense(t *testing.T) {
	a := SymmetricUpper(40, 3, 29)
	perm := stats.NewRand(31).Perm(40)
	c := SymPerm(a, perm)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	want := symPermDense(a, perm)
	got := denseOf(c)
	for i := range want {
		for j := range want[i] {
			if math.Abs(got[i][j]-want[i][j]) > 1e-10 {
				t.Fatalf("(%d,%d): %g vs %g", i, j, got[i][j], want[i][j])
			}
		}
	}
	// Result must be upper triangular.
	for _, co := range c.ToCOO() {
		if co.Col < co.Row {
			t.Fatalf("lower-triangular entry (%d,%d)", co.Row, co.Col)
		}
	}
}

func TestSymPermPBMatchesBaseline(t *testing.T) {
	a := SymmetricUpper(200, 4, 37)
	perm := stats.NewRand(41).Perm(200)
	base := SymPerm(a, perm)
	for _, o := range []pb.Options{{}, {NumBins: 16, Workers: 4}} {
		pbm := SymPermPB(a, perm, o)
		matricesEqual(t, base, pbm, 1e-12)
	}
}

func TestSymPermIdentity(t *testing.T) {
	a := SymmetricUpper(30, 3, 43)
	id := make([]uint32, 30)
	for i := range id {
		id[i] = uint32(i)
	}
	c := SymPerm(a, id)
	// With the identity permutation, the result is exactly triu(A).
	da, dc := denseOf(a), denseOf(c)
	for i := 0; i < 30; i++ {
		for j := i; j < 30; j++ {
			if math.Abs(da[i][j]-dc[i][j]) > 1e-12 {
				t.Fatalf("triu mismatch at (%d,%d)", i, j)
			}
		}
	}
}
