// Package sparse provides the sparse linear algebra substrate: CSR/COO
// matrices, synthetic generators (stencil, random, banded), and the four
// kernels the paper evaluates — SpMV (HPCG-style), Transpose, PINV, and
// SymPerm (SuiteSparse subroutines) — in baseline and
// propagation-blocked forms.
package sparse

import (
	"fmt"

	"cobra/internal/pb"
	"cobra/internal/stats"
)

// Matrix is a CSR sparse matrix.
type Matrix struct {
	Rows, Cols int
	RowPtr     []uint32 // len Rows+1
	ColIdx     []uint32 // len NNZ
	Vals       []float64
}

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices and values of row i (do not mutate).
func (m *Matrix) Row(i int) ([]uint32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// Validate checks structural invariants.
func (m *Matrix) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: rowptr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || int(m.RowPtr[m.Rows]) != m.NNZ() {
		return fmt.Errorf("sparse: rowptr endpoints wrong")
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("sparse: rowptr not monotone at %d", i)
		}
	}
	if len(m.Vals) != m.NNZ() {
		return fmt.Errorf("sparse: vals length %d, want %d", len(m.Vals), m.NNZ())
	}
	for k, c := range m.ColIdx {
		if int(c) >= m.Cols {
			return fmt.Errorf("sparse: col %d at nz %d out of range", c, k)
		}
	}
	return nil
}

// Coord is one COO entry.
type Coord struct {
	Row, Col uint32
	Val      float64
}

// FromCOO builds a CSR matrix from coordinates (duplicates are kept as
// separate entries, like most assembly pipelines).
func FromCOO(rows, cols int, coords []Coord) *Matrix {
	cnt := make([]uint32, rows)
	for _, c := range coords {
		cnt[c.Row]++
	}
	rowptr := make([]uint32, rows+1)
	var sum uint32
	for i, c := range cnt {
		rowptr[i] = sum
		sum += c
	}
	rowptr[rows] = sum
	colidx := make([]uint32, len(coords))
	vals := make([]float64, len(coords))
	cursor := make([]uint32, rows)
	copy(cursor, rowptr[:rows])
	for _, c := range coords {
		p := cursor[c.Row]
		colidx[p] = c.Col
		vals[p] = c.Val
		cursor[c.Row] = p + 1
	}
	return &Matrix{Rows: rows, Cols: cols, RowPtr: rowptr, ColIdx: colidx, Vals: vals}
}

// ToCOO flattens to coordinates (testing helper).
func (m *Matrix) ToCOO() []Coord {
	out := make([]Coord, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			out = append(out, Coord{Row: uint32(i), Col: cols[k], Val: vals[k]})
		}
	}
	return out
}

// Stencil5 generates the 5-point Laplacian on an n×n grid (the HPCG
// problem class): N = n² rows, ≤5 entries per row, strongly banded.
func Stencil5(n int) *Matrix {
	N := n * n
	coords := make([]Coord, 0, 5*N)
	id := func(x, y int) uint32 { return uint32(x*n + y) }
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			r := id(x, y)
			coords = append(coords, Coord{r, r, 4})
			if x > 0 {
				coords = append(coords, Coord{r, id(x-1, y), -1})
			}
			if x < n-1 {
				coords = append(coords, Coord{r, id(x+1, y), -1})
			}
			if y > 0 {
				coords = append(coords, Coord{r, id(x, y-1), -1})
			}
			if y < n-1 {
				coords = append(coords, Coord{r, id(x, y+1), -1})
			}
		}
	}
	return FromCOO(N, N, coords)
}

// RandomSparse generates a rows×cols matrix with ~nnzPerRow uniformly
// scattered entries per row (optimization-problem class: no banding, so
// column accesses are fully irregular).
func RandomSparse(rows, cols, nnzPerRow int, seed uint64) *Matrix {
	r := stats.NewRand(seed)
	coords := make([]Coord, 0, rows*nnzPerRow)
	for i := 0; i < rows; i++ {
		for k := 0; k < nnzPerRow; k++ {
			coords = append(coords, Coord{
				Row: uint32(i),
				Col: uint32(r.Intn(cols)),
				Val: r.Float64()*2 - 1,
			})
		}
	}
	return FromCOO(rows, cols, coords)
}

// SkewedSparse generates a matrix whose column distribution is
// power-law (some columns extremely popular), the worst case for
// column-indexed irregular updates and the best case for coalescing.
func SkewedSparse(rows, cols, nnzPerRow int, seed uint64) *Matrix {
	r := stats.NewRand(seed)
	coords := make([]Coord, 0, rows*nnzPerRow)
	bits := stats.Log2Ceil(uint64(cols))
	for i := 0; i < rows; i++ {
		for k := 0; k < nnzPerRow; k++ {
			// R-MAT-style per-bit biased column pick.
			var c uint32
			for b := uint(0); b < bits; b++ {
				bit := uint32(0)
				if r.Float64() > 0.7 {
					bit = 1
				}
				c = c<<1 | bit
			}
			if int(c) >= cols {
				c = uint32(cols - 1)
			}
			coords = append(coords, Coord{Row: uint32(i), Col: c, Val: r.Float64()})
		}
	}
	return FromCOO(rows, cols, coords)
}

// Banded generates a matrix with entries within `band` of the diagonal
// (simulation-problem class between stencil and random).
func Banded(n, nnzPerRow, band int, seed uint64) *Matrix {
	r := stats.NewRand(seed)
	coords := make([]Coord, 0, n*nnzPerRow)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			lo := i - band
			if lo < 0 {
				lo = 0
			}
			hi := i + band
			if hi >= n {
				hi = n - 1
			}
			coords = append(coords, Coord{
				Row: uint32(i),
				Col: uint32(lo + r.Intn(hi-lo+1)),
				Val: r.Float64(),
			})
		}
	}
	return FromCOO(n, n, coords)
}

// SymmetricUpper generates a random symmetric matrix stored fully (both
// triangles) so SymPerm has work to select. diagFrac of rows get a
// diagonal entry.
func SymmetricUpper(n, nnzPerRow int, seed uint64) *Matrix {
	r := stats.NewRand(seed)
	coords := make([]Coord, 0, 2*n*nnzPerRow)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			j := r.Intn(n)
			v := r.Float64()
			coords = append(coords, Coord{uint32(i), uint32(j), v})
			if j != i {
				coords = append(coords, Coord{uint32(j), uint32(i), v})
			}
		}
	}
	return FromCOO(n, n, coords)
}

// SpMV computes y = A·x row-wise (HPCG shape). In CSR this gathers
// x[col] irregularly.
func SpMV(a *Matrix, x, y []float64) {
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		sum := 0.0
		for k := range cols {
			sum += vals[k] * x[cols[k]]
		}
		y[i] = sum
	}
}

// SpMVScatter computes y += Aᵀ·x by streaming A's rows and scattering
// partial products into y[col] — the irregular-update formulation the
// paper's PB version uses (it processes the transpose representation).
func SpMVScatter(a *Matrix, x, y []float64) {
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		xi := x[i]
		for k := range cols {
			y[cols[k]] += vals[k] * xi // irregular commutative update
		}
	}
}

// SpMVScatterPB is the propagation-blocked SpMVScatter.
func SpMVScatterPB(a *Matrix, x, y []float64, o pb.Options) {
	pb.Run(a.Rows, a.Cols,
		func(b, e int, emit func(uint32, float64)) {
			for i := b; i < e; i++ {
				cols, vals := a.Row(i)
				xi := x[i]
				for k := range cols {
					emit(cols[k], vals[k]*xi)
				}
			}
		},
		func(col uint32, v float64) { y[col] += v },
		o)
}
