package sparse

import "cobra/internal/pb"

// This file implements the three SuiteSparse-derived kernels the paper
// parallelizes: Transpose, PINV, and SymPerm. All three perform
// irregular NON-commutative updates (the order of updates to the
// cursor/output arrays defines the result layout), yet all have
// unordered parallelism — exactly the class §III-B argues PB covers and
// commutativity-dependent optimizations (PHI) cannot.

// Transpose builds Aᵀ in CSR form. The scatter through per-column
// cursors is the Neighbor-Populate pattern on matrix columns.
func Transpose(a *Matrix) *Matrix {
	cnt := make([]uint32, a.Cols)
	for _, c := range a.ColIdx {
		cnt[c]++
	}
	rowptr := make([]uint32, a.Cols+1)
	var sum uint32
	for i, c := range cnt {
		rowptr[i] = sum
		sum += c
	}
	rowptr[a.Cols] = sum
	colidx := make([]uint32, a.NNZ())
	vals := make([]float64, a.NNZ())
	cursor := make([]uint32, a.Cols)
	copy(cursor, rowptr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		cols, vs := a.Row(i)
		for k := range cols {
			c := cols[k]
			p := cursor[c] // irregular, non-commutative
			colidx[p] = uint32(i)
			vals[p] = vs[k]
			cursor[c] = p + 1
		}
	}
	return &Matrix{Rows: a.Cols, Cols: a.Rows, RowPtr: rowptr, ColIdx: colidx, Vals: vals}
}

// transposeEntry is the value payload binned by TransposePB.
type transposeEntry struct {
	row uint32
	val float64
}

// TransposePB is the propagation-blocked Transpose: entries are binned
// by destination column, then scattered with the cursor range in cache.
func TransposePB(a *Matrix, o pb.Options) *Matrix {
	cnt := make([]uint32, a.Cols)
	for _, c := range a.ColIdx {
		cnt[c]++
	}
	rowptr := make([]uint32, a.Cols+1)
	var sum uint32
	for i, c := range cnt {
		rowptr[i] = sum
		sum += c
	}
	rowptr[a.Cols] = sum
	colidx := make([]uint32, a.NNZ())
	vals := make([]float64, a.NNZ())
	cursor := make([]uint32, a.Cols)
	copy(cursor, rowptr[:a.Cols])
	pb.Run(a.Rows, a.Cols,
		func(b, e int, emit func(uint32, transposeEntry)) {
			for i := b; i < e; i++ {
				cols, vs := a.Row(i)
				for k := range cols {
					emit(cols[k], transposeEntry{row: uint32(i), val: vs[k]})
				}
			}
		},
		func(c uint32, t transposeEntry) {
			p := cursor[c]
			colidx[p] = t.row
			vals[p] = t.val
			cursor[c] = p + 1
		},
		o)
	return &Matrix{Rows: a.Cols, Cols: a.Rows, RowPtr: rowptr, ColIdx: colidx, Vals: vals}
}

// PINV computes the inverse of a permutation: out[p[i]] = i. Each key
// is written exactly once — a pure irregular scatter with no reuse at
// all, which is why the paper found PINV to be the one workload where
// more bins do not improve Accumulate (§VII-A).
func PINV(p []uint32) []uint32 {
	out := make([]uint32, len(p))
	for i, pi := range p {
		out[pi] = uint32(i)
	}
	return out
}

// PINVPB is the propagation-blocked PINV.
func PINVPB(p []uint32, o pb.Options) []uint32 {
	out := make([]uint32, len(p))
	pb.Run(len(p), len(p),
		func(b, e int, emit func(uint32, uint32)) {
			for i := b; i < e; i++ {
				emit(p[i], uint32(i))
			}
		},
		func(k uint32, v uint32) { out[k] = v },
		o)
	return out
}

// SymPerm computes C = P·triu(A)·Pᵀ keeping only the upper triangle
// (cs_symperm from SuiteSparse, a Cholesky preprocessing step): entry
// (i,j) of the upper triangle of A moves to (min(p)(i,j)', max(...)')
// under the permutation. Only upper-triangular input coordinates are
// visited, which limits PB's headroom (§VII-A).
func SymPerm(a *Matrix, perm []uint32) *Matrix {
	n := a.Rows
	// Pass 1: count entries per destination row.
	cnt := make([]uint32, n)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if int(j) < i {
				continue // lower triangle skipped
			}
			i2, j2 := perm[i], perm[j]
			if i2 > j2 {
				i2, j2 = j2, i2
			}
			cnt[i2]++
		}
	}
	rowptr := make([]uint32, n+1)
	var sum uint32
	for i, c := range cnt {
		rowptr[i] = sum
		sum += c
	}
	rowptr[n] = sum
	colidx := make([]uint32, sum)
	vals := make([]float64, sum)
	cursor := make([]uint32, n)
	copy(cursor, rowptr[:n])
	// Pass 2: scatter (irregular, non-commutative through cursors).
	for i := 0; i < n; i++ {
		cols, vs := a.Row(i)
		for k, j := range cols {
			if int(j) < i {
				continue
			}
			i2, j2 := perm[i], perm[j]
			if i2 > j2 {
				i2, j2 = j2, i2
			}
			p := cursor[i2]
			colidx[p] = j2
			vals[p] = vs[k]
			cursor[i2] = p + 1
		}
	}
	return &Matrix{Rows: n, Cols: n, RowPtr: rowptr, ColIdx: colidx, Vals: vals}
}

// SymPermPB is the propagation-blocked SymPerm: both the counting and
// scatter passes bin by destination row.
func SymPermPB(a *Matrix, perm []uint32, o pb.Options) *Matrix {
	n := a.Rows
	cnt := make([]uint32, n)
	pb.Run(n, n,
		func(b, e int, emit func(uint32, struct{})) {
			for i := b; i < e; i++ {
				cols, _ := a.Row(i)
				for _, j := range cols {
					if int(j) < i {
						continue
					}
					i2, j2 := perm[i], perm[j]
					if i2 > j2 {
						i2, j2 = j2, i2
					}
					emit(i2, struct{}{})
				}
			}
		},
		func(k uint32, _ struct{}) { cnt[k]++ },
		o)
	rowptr := make([]uint32, n+1)
	var sum uint32
	for i, c := range cnt {
		rowptr[i] = sum
		sum += c
	}
	rowptr[n] = sum
	colidx := make([]uint32, sum)
	vals := make([]float64, sum)
	cursor := make([]uint32, n)
	copy(cursor, rowptr[:n])
	pb.Run(n, n,
		func(b, e int, emit func(uint32, transposeEntry)) {
			for i := b; i < e; i++ {
				cols, vs := a.Row(i)
				for k, j := range cols {
					if int(j) < i {
						continue
					}
					i2, j2 := perm[i], perm[j]
					if i2 > j2 {
						i2, j2 = j2, i2
					}
					emit(i2, transposeEntry{row: j2, val: vs[k]})
				}
			}
		},
		func(i2 uint32, t transposeEntry) {
			p := cursor[i2]
			colidx[p] = t.row
			vals[p] = t.val
			cursor[i2] = p + 1
		},
		o)
	return &Matrix{Rows: n, Cols: n, RowPtr: rowptr, ColIdx: colidx, Vals: vals}
}
