package obsv

// Prometheus text exposition for the registry. The cobrad service
// serves this from GET /metrics; cmd/figures could equally dump it
// next to a manifest. The format is the Prometheus text format 0.0.4:
//
//	# TYPE exp_cell_wall histogram
//	exp_cell_wall_bucket{le="2e-06"} 0
//	...
//	exp_cell_wall_bucket{le="+Inf"} 12
//	exp_cell_wall_sum 0.0341
//	exp_cell_wall_count 12
//
// Contract:
//
//   - Dotted registry names are sanitized to the Prometheus grammar
//     ([a-zA-Z_:][a-zA-Z0-9_:]*): every illegal rune becomes '_', and
//     a leading digit gets a '_' prefix ("exp.cell.wall" ->
//     "exp_cell_wall", "srv.scheme.PB-SW.wall" ->
//     "srv_scheme_PB_SW_wall").
//   - Output order is deterministic: families sort by sanitized name
//     (ties broken by raw name), so two snapshots of the same registry
//     state are byte-identical — diffable like every other artifact.
//   - Duration histograms expose the exponential buckets as cumulative
//     `_bucket{le="..."}` series with le in seconds, plus `_sum`
//     (seconds) and `_count`. The `+Inf` bucket always equals `_count`
//     (both are computed from one bucket sweep), so the exposition is
//     internally consistent even while observations land concurrently.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// promName sanitizes a dotted metric name into the Prometheus
// identifier grammar.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b = append(b, '_')
			}
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// promFloat renders a float64 the way Prometheus clients do: shortest
// round-trippable decimal/exponent form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one metric family staged for deterministic emission.
type promFamily struct {
	name string // sanitized
	raw  string // original dotted name (sort tiebreak)
	kind string // "counter" | "gauge" | "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format. A nil registry writes nothing. The first
// write error aborts and is returned.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.s.mu.RLock()
	fams := make([]promFamily, 0, len(r.s.counts)+len(r.s.gauges)+len(r.s.hists))
	for name, c := range r.s.counts {
		fams = append(fams, promFamily{name: promName(name), raw: name, kind: "counter", c: c})
	}
	for name, g := range r.s.gauges {
		fams = append(fams, promFamily{name: promName(name), raw: name, kind: "gauge", g: g})
	}
	for name, h := range r.s.hists {
		fams = append(fams, promFamily{name: promName(name), raw: name, kind: "histogram", h: h})
	}
	r.s.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool {
		if fams[i].name != fams[j].name {
			return fams[i].name < fams[j].name
		}
		return fams[i].raw < fams[j].raw
	})
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		var err error
		switch f.kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value())
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, promFloat(f.g.Value()))
		case "histogram":
			err = writePromHistogram(w, f.name, f.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family: cumulative buckets
// (le in seconds; the final clamp bucket folds into +Inf), sum, count.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	var cum uint64
	for i := 0; i < histBuckets-1; i++ {
		cum += h.bucket[i].Load()
		// Bucket i spans [2^i, 2^(i+1)) µs; its inclusive Prometheus
		// upper bound is the upper edge in seconds.
		le := float64(uint64(1)<<uint(i+1)) * 1e-6
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(le), cum); err != nil {
			return err
		}
	}
	cum += h.bucket[histBuckets-1].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(time.Duration(h.sumNS.Load()).Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
	return err
}
