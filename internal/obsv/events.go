package obsv

// Structured JSONL event log. Every line is one self-contained JSON
// object with a monotonic sequence number, a timestamp, and an event
// name — the machine-readable companion to the human progress line.
// Events stream to their own file (never stdout), so figure table
// bytes stay byte-identical with and without an event log attached.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// EventLog appends structured events as JSON lines. A nil *EventLog is
// a valid no-op sink, so instrumented code never branches on "events
// enabled". Safe for concurrent use.
type EventLog struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	seq uint64
	err error
	now func() time.Time // test hook
}

// NewEventLog wraps a writer as an event sink. If w is also an
// io.Closer, Close will close it.
func NewEventLog(w io.Writer) *EventLog {
	e := &EventLog{w: bufio.NewWriter(w), now: time.Now}
	if c, ok := w.(io.Closer); ok {
		e.c = c
	}
	return e
}

// CreateEventLog opens (truncating) an event-log file at path. Event
// logs are append streams, not artifacts: they are written directly
// (no temp+rename) so a crash leaves the events emitted so far.
func CreateEventLog(path string) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obsv: creating event log: %w", err)
	}
	return NewEventLog(f), nil
}

// event is the wire form of one line. Fields are flattened into the
// same object to keep lines greppable (jq '.ev == "cell_done"').
type event struct {
	Seq    uint64         `json:"seq"`
	Time   string         `json:"ts"`
	Name   string         `json:"ev"`
	Fields map[string]any `json:"f,omitempty"`
}

// Emit appends one event line. Field maps are encoded with sorted keys
// (encoding/json's map order), so identical events are byte-identical.
// Emit on a nil log is a no-op. The first write error sticks and is
// reported by Close.
func (e *EventLog) Emit(name string, fields map[string]any) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	line, err := json.Marshal(event{
		Seq:    e.seq,
		Time:   e.now().UTC().Format(time.RFC3339Nano),
		Name:   name,
		Fields: fields,
	})
	if err != nil {
		e.err = fmt.Errorf("obsv: encoding event %q: %w", name, err)
		return
	}
	e.seq++
	if _, err := e.w.Write(append(line, '\n')); err != nil {
		e.err = fmt.Errorf("obsv: writing event log: %w", err)
	}
}

// Flush forces buffered events to the underlying writer.
func (e *EventLog) Flush() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// Close flushes and closes the log, returning the first error the log
// hit at any point. Close on a nil log is a no-op.
func (e *EventLog) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ferr := e.w.Flush(); e.err == nil && ferr != nil {
		e.err = fmt.Errorf("obsv: flushing event log: %w", ferr)
	}
	if e.c != nil {
		if cerr := e.c.Close(); e.err == nil && cerr != nil {
			e.err = fmt.Errorf("obsv: closing event log: %w", cerr)
		}
		e.c = nil
	}
	return e.err
}
