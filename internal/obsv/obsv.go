// Package obsv is the harness's observability subsystem: a hierarchical
// metrics registry (counters, gauges, duration histograms), a live
// progress line, a structured JSONL event log, and the run manifest
// that makes any two campaigns diffable.
//
// The paper's claims are metric-shaped — COBRA wins because of *where*
// instructions, branch misses, and DRAM line transfers go per phase —
// so the harness that regenerates its figures must itself be legible:
// per-cell latency, per-phase wall-clock, event rates, cache hit
// ratios, and checkpoint replay counts, not just final table bytes.
//
// Design contract (the zero-cost-disabled rule):
//
//   - Observability is OFF by default. The process-wide registry
//     (Default) is nil until a CLI opts in via SetDefault.
//   - Every method in this package is nil-receiver safe: a nil
//     *Registry yields nil *Counter/*Gauge/*Histogram and zero-value
//     Timers, and every operation on those is a no-op. Instrumented
//     hot paths therefore pay exactly one atomic pointer load plus a
//     nil check — and, pinned by test and benchmark, ZERO allocations
//     and no time.Now calls — when observability is disabled.
//   - Enabled instruments are lock-free on the hot path: counters and
//     gauges are single atomics, histograms are fixed arrays of atomic
//     buckets. Registration (name -> instrument) takes a lock, so
//     instrumented code should either hold instruments or tolerate one
//     map lookup per operation (fine for per-cell/per-run granularity).
//   - Instrumentation must never alter simulated results: registry
//     metrics are harness wall-clock observations, entirely disjoint
//     from sim.Metrics, and figure table bytes are asserted identical
//     with observability on and off.
//
// Hierarchy is expressed by dotted metric names ("exp.cell.wall",
// "sim.pbsw.binning.wall"); Scope returns a view that prefixes every
// name, and Scope on a nil registry is nil, so disabled-ness propagates
// through subsystem handles for free.
package obsv

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named view onto a shared instrument store. The zero
// *Registry (nil) is the disabled registry: every method no-ops.
type Registry struct {
	prefix string
	s      *store
}

// store holds the instruments; all Registry views over one hierarchy
// share it. Lookups take the read lock; first registration the write
// lock. Instrument operations themselves are lock-free.
type store struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// New returns a fresh enabled registry.
func New() *Registry {
	return &Registry{s: &store{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}}
}

// defaultReg is the process-wide registry (nil = observability off).
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil when observability
// is disabled. The load is a single atomic pointer read.
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs (or, with nil, removes) the process-wide
// registry. CLIs call this once at startup; tests must restore the
// previous value.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Scope returns a child view that prefixes every metric name with
// "name.". Scope of nil is nil, so a disabled registry propagates
// through subsystem handles without any checks at the leaves.
func (r *Registry) Scope(name string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{prefix: r.full(name), s: r.s}
}

func (r *Registry) full(name string) string {
	if r.prefix == "" {
		return name
	}
	return r.prefix + "." + name
}

// Counter returns (registering on first use) the named counter, or nil
// on a disabled registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	full := r.full(name)
	r.s.mu.RLock()
	c := r.s.counts[full]
	r.s.mu.RUnlock()
	if c != nil {
		return c
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if c = r.s.counts[full]; c == nil {
		c = &Counter{}
		r.s.counts[full] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil on
// a disabled registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	full := r.full(name)
	r.s.mu.RLock()
	g := r.s.gauges[full]
	r.s.mu.RUnlock()
	if g != nil {
		return g
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if g = r.s.gauges[full]; g == nil {
		g = &Gauge{}
		r.s.gauges[full] = g
	}
	return g
}

// Histogram returns (registering on first use) the named duration
// histogram, or nil on a disabled registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	full := r.full(name)
	r.s.mu.RLock()
	h := r.s.hists[full]
	r.s.mu.RUnlock()
	if h != nil {
		return h
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if h = r.s.hists[full]; h == nil {
		h = &Histogram{}
		r.s.hists[full] = h
	}
	return h
}

// Timer starts a wall-clock measurement destined for the named
// histogram. On a disabled registry the zero Timer is returned and no
// clock is read; Stop on it is a no-op.
func (r *Registry) Timer(name string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{h: r.Histogram(name), start: time.Now()}
}

// Counter is a monotonically increasing event count. A nil *Counter is
// a valid no-op instrument.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 sample. A nil *Gauge is a valid
// no-op instrument.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the most recent sample (0 for nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the bucket count of the exponential duration
// histogram: bucket i holds observations in [2^i, 2^(i+1)) microseconds
// (bucket 0 is < 2µs), so 44 buckets span sub-microsecond to ~200 days.
const histBuckets = 44

// Histogram is a lock-free exponential-bucket duration histogram. A
// nil *Histogram is a valid no-op instrument.
type Histogram struct {
	count  atomic.Uint64
	sumNS  atomic.Int64
	minNS  atomic.Int64 // 0 means unset (durations observed are >= 0)
	maxNS  atomic.Int64
	bucket [histBuckets]atomic.Uint64
}

// bucketFor maps a duration to its exponential bucket index:
// floor(log2(µs)), clamped to the last bucket.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := d.Nanoseconds()
	h.count.Add(1)
	h.sumNS.Add(ns)
	h.bucket[bucketFor(d)].Add(1)
	// min: CAS down (0 sentinel = unset).
	for {
		cur := h.minNS.Load()
		if cur != 0 && cur <= ns {
			break
		}
		set := ns
		if set == 0 {
			set = 1 // preserve the unset sentinel; 1ns rounding is noise
		}
		if h.minNS.CompareAndSwap(cur, set) {
			break
		}
	}
	// max: CAS up.
	for {
		cur := h.maxNS.Load()
		if cur >= ns {
			break
		}
		if h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Mean returns the mean observed duration (0 when empty or nil).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]) from the exponential buckets: the upper edge of the bucket in
// which the quantile falls, clamped to the observed max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.bucket[i].Load()
		if seen >= rank {
			// Bucket i spans [2^i, 2^(i+1)) µs; the exclusive upper edge
			// keeps the estimate >= every observation in the bucket.
			upper := time.Duration(1<<uint(i+1)) * time.Microsecond
			if mx := time.Duration(h.maxNS.Load()); mx > 0 && upper > mx {
				upper = mx
			}
			return upper
		}
	}
	return time.Duration(h.maxNS.Load())
}

// Timer is an in-flight wall-clock measurement. The zero Timer (from a
// disabled registry) is a no-op and never reads the clock.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Stop records the elapsed time into the timer's histogram. Stop on a
// zero Timer is a no-op.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(time.Since(t.start))
}

// MetricValue is the snapshot form of one instrument, chosen so the
// encoding is stable and diffable across runs.
type MetricValue struct {
	Kind  string  `json:"kind"` // "counter" | "gauge" | "histogram"
	Count uint64  `json:"count,omitempty"`
	Value float64 `json:"value,omitempty"`
	// Histogram summary (seconds).
	SumSeconds  float64 `json:"sum_s,omitempty"`
	MeanSeconds float64 `json:"mean_s,omitempty"`
	MinSeconds  float64 `json:"min_s,omitempty"`
	MaxSeconds  float64 `json:"max_s,omitempty"`
	P50Seconds  float64 `json:"p50_s,omitempty"`
	P99Seconds  float64 `json:"p99_s,omitempty"`
}

// Snapshot returns the current value of every instrument registered
// anywhere in this registry's hierarchy, keyed by full dotted name.
// A nil registry snapshots to an empty map.
func (r *Registry) Snapshot() map[string]MetricValue {
	out := map[string]MetricValue{}
	if r == nil {
		return out
	}
	r.s.mu.RLock()
	defer r.s.mu.RUnlock()
	for name, c := range r.s.counts {
		out[name] = MetricValue{Kind: "counter", Count: c.Value()}
	}
	for name, g := range r.s.gauges {
		out[name] = MetricValue{Kind: "gauge", Value: g.Value()}
	}
	for name, h := range r.s.hists {
		out[name] = MetricValue{
			Kind:        "histogram",
			Count:       h.Count(),
			SumSeconds:  h.Sum().Seconds(),
			MeanSeconds: h.Mean().Seconds(),
			MinSeconds:  time.Duration(h.minNS.Load()).Seconds(),
			MaxSeconds:  time.Duration(h.maxNS.Load()).Seconds(),
			P50Seconds:  h.Quantile(0.50).Seconds(),
			P99Seconds:  h.Quantile(0.99).Seconds(),
		}
	}
	return out
}

// Names returns every registered metric name, sorted — the
// deterministic iteration order for reports.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.s.mu.RLock()
	defer r.s.mu.RUnlock()
	names := make([]string, 0, len(r.s.counts)+len(r.s.gauges)+len(r.s.hists))
	for n := range r.s.counts {
		names = append(names, n)
	}
	for n := range r.s.gauges {
		names = append(names, n)
	}
	for n := range r.s.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
