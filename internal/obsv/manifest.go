package obsv

// Run manifest: the provenance record a campaign emits next to its
// artifact. Two runs are diffable iff their manifests say what
// produced them — architecture fingerprint, Go toolchain, parallelism,
// per-figure durations, and the final metric snapshot — so a perf
// regression or a divergent table can be traced to the exact knob that
// changed. Written atomically via internal/fsx: a crashed campaign
// never publishes a torn manifest.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cobra/internal/fsx"
)

// FigureTiming is the wall-clock record of one regenerated figure.
type FigureTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// CheckpointInfo summarizes journal use during the run.
type CheckpointInfo struct {
	Path     string `json:"path"`
	Replayed uint64 `json:"replayed"`
	Recorded uint64 `json:"recorded"`
}

// FleetNode is one worker's dispatch accounting in a distributed
// campaign: cells dispatched/completed/failed on it, cells it received
// as steals from dead workers, plus its client's transport health.
type FleetNode struct {
	Addr           string `json:"addr"`
	Healthy        bool   `json:"healthy"`
	Dispatched     uint64 `json:"dispatched"`
	Completed      uint64 `json:"completed"`
	Failed         uint64 `json:"failed"`
	Stolen         uint64 `json:"stolen"`
	ClientAttempts uint64 `json:"client_attempts"`
	ClientRetries  uint64 `json:"client_retries"`
	Breaker        string `json:"breaker"`
}

// FleetInfo summarizes a distributed campaign for the manifest: the
// per-node accounting plus fleet-wide totals. Gathered counts distinct
// cell fingerprints collected (duplicates deduped).
type FleetInfo struct {
	Workers    []FleetNode `json:"workers"`
	Dispatched uint64      `json:"dispatched"`
	Completed  uint64      `json:"completed"`
	Failed     uint64      `json:"failed"`
	Stolen     uint64      `json:"stolen"`
	Gathered   uint64      `json:"gathered"`
}

// Manifest is the run provenance record.
type Manifest struct {
	Tool       string `json:"tool"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	// Campaign identity: everything that determines the artifact bytes.
	ArchFingerprint string `json:"arch_fingerprint,omitempty"`
	Scale           int    `json:"scale,omitempty"`
	Seed            uint64 `json:"seed"`
	Parallel        int    `json:"parallel"`

	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	WallSeconds float64   `json:"wall_seconds"`

	Figures    []FigureTiming  `json:"figures,omitempty"`
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"`
	Fleet      *FleetInfo      `json:"fleet,omitempty"`

	// Metrics is the registry snapshot at campaign end.
	Metrics map[string]MetricValue `json:"metrics,omitempty"`
}

// NewManifest starts a manifest for the named tool, stamping the
// toolchain and host shape and the start time.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:       tool,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Start:      time.Now().UTC(),
	}
}

// AddFigure records one figure's regeneration time.
func (m *Manifest) AddFigure(name string, d time.Duration) {
	m.Figures = append(m.Figures, FigureTiming{Name: name, Seconds: d.Seconds()})
}

// Finish stamps the end time and attaches the registry snapshot (r may
// be nil).
func (m *Manifest) Finish(r *Registry) {
	m.End = time.Now().UTC()
	m.WallSeconds = m.End.Sub(m.Start).Seconds()
	if r != nil {
		m.Metrics = r.Snapshot()
	}
}

// Write publishes the manifest atomically (temp + fsync + rename, see
// internal/fsx) as indented JSON.
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obsv: encoding manifest: %w", err)
	}
	return fsx.WriteFileAtomicBytes(path, append(data, '\n'))
}

// ReadManifest loads a manifest written by Write.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obsv: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obsv: decoding manifest %s: %w", path, err)
	}
	return &m, nil
}
