package obsv

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"exp.cell.wall":        "exp_cell_wall",
		"srv.scheme.PB-SW":     "srv_scheme_PB_SW",
		"plain":                "plain",
		"with:colon_ok9":       "with:colon_ok9",
		"9leading.digit":       "_9leading_digit",
		"weird name/with%junk": "weird_name_with_junk",
		"":                     "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLine is the shape of every non-comment exposition line:
// name[{le="..."}] value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9+.eEIn-]+$`)

func TestWritePrometheusFormatAndOrder(t *testing.T) {
	r := New()
	r.Counter("exp.cells.completed").Add(3)
	r.Gauge("srv.queue.depth").Set(2.5)
	h := r.Histogram("srv.scheme.PB-SW.wall")
	h.Observe(3 * time.Microsecond)
	h.Observe(500 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	// Every line is either a TYPE comment or a valid sample line.
	var families []string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# TYPE ") {
			parts := strings.Fields(ln)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", ln)
			}
			families = append(families, parts[2])
			continue
		}
		if !promLine.MatchString(ln) {
			t.Fatalf("line does not parse as Prometheus sample: %q", ln)
		}
	}
	// Families are sorted by sanitized name.
	for i := 1; i < len(families); i++ {
		if families[i-1] > families[i] {
			t.Fatalf("families out of order: %q > %q", families[i-1], families[i])
		}
	}

	for _, want := range []string{
		"# TYPE exp_cells_completed counter\nexp_cells_completed 3\n",
		"# TYPE srv_queue_depth gauge\nsrv_queue_depth 2.5\n",
		"# TYPE srv_scheme_PB_SW_wall histogram\n",
		"srv_scheme_PB_SW_wall_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q in:\n%s", want, out)
		}
	}

	// Histogram buckets are cumulative and +Inf equals count.
	var prev uint64
	var infSeen bool
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "srv_scheme_PB_SW_wall_bucket") {
			continue
		}
		v, err := strconv.ParseUint(ln[strings.LastIndex(ln, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", ln, err)
		}
		if v < prev {
			t.Fatalf("bucket series not cumulative at %q", ln)
		}
		prev = v
		if strings.Contains(ln, `le="+Inf"`) {
			infSeen = true
			if v != 2 {
				t.Fatalf("+Inf bucket = %d, want 2", v)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(1)
	r.Counter("a.count").Add(2)
	r.Gauge("m.gauge").Set(1)
	r.Histogram("z.h").Observe(time.Millisecond)
	var one, two bytes.Buffer
	if err := r.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("two snapshots of an idle registry differ:\n%s\n---\n%s", one.String(), two.String())
	}
	if !strings.Contains(one.String(), "a_count 2") || !strings.Contains(one.String(), "b_count 1") {
		t.Fatalf("missing counters:\n%s", one.String())
	}
	if strings.Index(one.String(), "a_count") > strings.Index(one.String(), "b_count") {
		t.Fatal("a_count should sort before b_count")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}
