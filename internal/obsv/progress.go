package obsv

// Live campaign progress: one carriage-return-refreshed stderr line
// with completed/total cells, replay count, throughput, and an ETA.
//
// The line is checkpoint-aware: cells replayed from a resume journal
// are counted (and shown) separately from freshly simulated ones, so
// the throughput and ETA reflect real simulation work. Totals are
// declared incrementally — each figure registers its cell count as it
// starts — so the ETA firms up as the campaign unfolds.
//
// A nil *Progress is a valid no-op sink (the disabled fast path), and
// the renderer writes only to its own writer (stderr in the CLI), so
// figure table bytes are untouched by progress being on.

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracks and renders campaign completion. Create with
// StartProgress; all methods are safe for concurrent use and no-ops on
// nil.
type Progress struct {
	w     io.Writer
	start time.Time

	total    atomic.Int64
	done     atomic.Int64 // completed cells, replays included
	replayed atomic.Int64

	mu    sync.Mutex
	label string
	width int // widest line rendered, for clean \r overwrites

	stop chan struct{}
	dead chan struct{}
}

// StartProgress begins rendering to w every interval (0 means 250ms).
// Call Finish to stop the renderer and print the final line.
func StartProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	p := &Progress{w: w, start: time.Now(), stop: make(chan struct{}), dead: make(chan struct{})}
	go func() {
		defer close(p.dead)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.render(false)
			}
		}
	}()
	return p
}

// SetLabel names the campaign unit currently running (e.g. the figure).
func (p *Progress) SetLabel(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.label = label
	p.mu.Unlock()
}

// AddTotal declares n more expected cells.
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.total.Add(int64(n))
}

// CellDone records one completed cell (fresh or replayed).
func (p *Progress) CellDone() {
	if p == nil {
		return
	}
	p.done.Add(1)
}

// Replayed records that a completed cell was served from the
// checkpoint journal rather than simulated.
func (p *Progress) Replayed() {
	if p == nil {
		return
	}
	p.replayed.Add(1)
}

// Counts returns (done, total, replayed) — test observability.
func (p *Progress) Counts() (done, total, replayed int64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.done.Load(), p.total.Load(), p.replayed.Load()
}

// Line renders the current progress state (without the \r framing).
func (p *Progress) Line() string {
	if p == nil {
		return ""
	}
	done, total, replayed := p.done.Load(), p.total.Load(), p.replayed.Load()
	elapsed := time.Since(p.start)
	p.mu.Lock()
	label := p.label
	p.mu.Unlock()

	var b strings.Builder
	if label != "" {
		fmt.Fprintf(&b, "%s · ", label)
	}
	fmt.Fprintf(&b, "%d/%d cells", done, total)
	if replayed > 0 {
		fmt.Fprintf(&b, " (%d replayed)", replayed)
	}
	// Throughput and ETA come from freshly simulated cells only:
	// replays complete in microseconds and would poison the forecast.
	fresh := done - replayed
	if fresh > 0 && elapsed > 0 {
		rate := float64(fresh) / elapsed.Seconds()
		fmt.Fprintf(&b, " · %.1f cells/s", rate)
		if remaining := total - done; remaining > 0 && rate > 0 {
			eta := time.Duration(float64(remaining)/rate) * time.Second
			fmt.Fprintf(&b, " · eta %s", eta.Round(time.Second))
		}
	}
	fmt.Fprintf(&b, " · elapsed %s", elapsed.Round(time.Second))
	return b.String()
}

// render writes the refreshed line; final appends a newline so later
// output starts clean.
func (p *Progress) render(final bool) {
	line := p.Line()
	p.mu.Lock()
	defer p.mu.Unlock()
	pad := ""
	if n := p.width - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	if len(line) > p.width {
		p.width = len(line)
	}
	end := ""
	if final {
		end = "\n"
	}
	fmt.Fprintf(p.w, "\r%s%s%s", line, pad, end)
}

// Finish stops the renderer and prints the final line. Safe to call
// once; no-op on nil.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	close(p.stop)
	<-p.dead
	p.render(true)
}
