package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every public method on the disabled (nil)
// forms — the contract instrumented code relies on to skip "is
// observability on" branches entirely.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Scope("x") != nil {
		t.Fatal("Scope of nil registry not nil")
	}
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h") != nil {
		t.Fatal("nil registry handed out instruments")
	}
	r.Timer("t").Stop() // zero Timer: no clock read, no panic
	if len(r.Snapshot()) != 0 || r.Names() != nil {
		t.Fatal("nil registry snapshot not empty")
	}

	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}

	var e *EventLog
	e.Emit("ev", nil)
	if e.Flush() != nil || e.Close() != nil {
		t.Fatal("nil event log errored")
	}

	var p *Progress
	p.SetLabel("x")
	p.AddTotal(3)
	p.CellDone()
	p.Replayed()
	p.Finish()
	if d, tot, rep := p.Counts(); d != 0 || tot != 0 || rep != 0 {
		t.Fatal("nil progress has counts")
	}
	if p.Line() != "" {
		t.Fatal("nil progress rendered a line")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("hits") != c {
		t.Fatal("counter not memoized by name")
	}
	g := r.Gauge("rate")
	g.Set(1.5)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestScopePrefixesNames(t *testing.T) {
	r := New()
	sub := r.Scope("sim").Scope("pbsw")
	sub.Counter("runs").Add(1)
	if got := r.Counter("sim.pbsw.runs").Value(); got != 1 {
		t.Fatalf("scoped counter not visible at full name: %d", got)
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "sim.pbsw.runs" {
		t.Fatalf("Names = %v", names)
	}
}

func TestHistogramStats(t *testing.T) {
	r := New()
	h := r.Histogram("wall")
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Quantile reports the bucket's upper edge clamped to the observed
	// max: for these samples p100 lands in the (1.024ms, 2.048ms]
	// bucket, so the estimate must fall between 2ms and the true 3ms max.
	if q := h.Quantile(1.0); q < 2*time.Millisecond || q > 3*time.Millisecond {
		t.Fatalf("p100 = %v, want within [2ms, 3ms]", q)
	}
	if q := h.Quantile(0.01); q < time.Millisecond || q > 2*time.Millisecond {
		t.Fatalf("p1 = %v, want within first bucket's upper edge", q)
	}
	// Negative durations clamp to zero instead of corrupting buckets.
	h.Observe(-time.Second)
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("negative observation changed sum: %v", h.Sum())
	}
	snap := r.Snapshot()["wall"]
	if snap.Kind != "histogram" || snap.Count != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The clamped-to-zero observation becomes the min (recorded as the
	// 1ns sentinel-preserving floor).
	if snap.MinSeconds > 1e-6 || snap.MaxSeconds != 0.003 {
		t.Fatalf("snapshot min/max = %v/%v", snap.MinSeconds, snap.MaxSeconds)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := New().Histogram("w")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	var inBuckets uint64
	for i := range h.bucket {
		inBuckets += h.bucket[i].Load()
	}
	if inBuckets != 4000 {
		t.Fatalf("bucket sum = %d, want 4000", inBuckets)
	}
}

func TestSnapshotCoversAllKinds(t *testing.T) {
	r := New()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h").Observe(time.Millisecond)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	if snap["c"].Kind != "counter" || snap["c"].Count != 7 {
		t.Fatalf("counter snap = %+v", snap["c"])
	}
	if snap["g"].Kind != "gauge" || snap["g"].Value != 1.25 {
		t.Fatalf("gauge snap = %+v", snap["g"])
	}
	if got := r.Names(); strings.Join(got, ",") != "c,g,h" {
		t.Fatalf("Names = %v", got)
	}
}

func TestDefaultRegistrySwap(t *testing.T) {
	prev := Default()
	defer SetDefault(prev)
	if SetDefault(nil); Default() != nil {
		t.Fatal("default not cleared")
	}
	r := New()
	SetDefault(r)
	if Default() != r {
		t.Fatal("default not installed")
	}
}

// TestEventLogJSONL: every emitted line must be standalone valid JSON
// with monotonically increasing seq and parseable RFC3339Nano time.
func TestEventLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	e := NewEventLog(&buf)
	fake := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	e.now = func() time.Time { return fake }
	e.Emit("campaign_start", map[string]any{"figures": 3})
	e.Emit("cell_done", map[string]any{"figure": "fig10", "ms": 12.5})
	e.Emit("no_fields", nil)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var n uint64
	for sc.Scan() {
		var ev struct {
			Seq    uint64         `json:"seq"`
			Time   string         `json:"ts"`
			Name   string         `json:"ev"`
			Fields map[string]any `json:"f"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", n, err, sc.Text())
		}
		if ev.Seq != n {
			t.Fatalf("seq = %d, want %d", ev.Seq, n)
		}
		if _, err := time.Parse(time.RFC3339Nano, ev.Time); err != nil {
			t.Fatalf("bad timestamp %q: %v", ev.Time, err)
		}
		if n == 1 && (ev.Name != "cell_done" || ev.Fields["figure"] != "fig10") {
			t.Fatalf("event 1 = %+v", ev)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("got %d lines, want 3", n)
	}
}

// errWriter fails after the first write, to exercise sticky errors.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, bufio.ErrBufferFull
	}
	return len(p), nil
}

func TestEventLogStickyError(t *testing.T) {
	e := NewEventLog(&errWriter{})
	// Tiny buffer forces the write through on each Emit.
	e.w = bufio.NewWriterSize(&errWriter{}, 1)
	e.Emit("a", nil)
	e.Emit("b", nil) // second underlying write fails
	e.Emit("c", nil) // must be dropped, not panic
	if err := e.Close(); err == nil {
		t.Fatal("sticky write error not reported by Close")
	}
}

func TestCreateEventLogWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	e, err := CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	e.Emit("x", nil)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1 || !json.Valid([]byte(lines[0])) {
		t.Fatalf("event file contents: %q", data)
	}
}

func TestProgressCountsAndLine(t *testing.T) {
	var buf syncBuffer
	p := StartProgress(&buf, time.Hour) // ticker effectively disabled
	p.SetLabel("fig10")
	p.AddTotal(10)
	for i := 0; i < 4; i++ {
		p.CellDone()
	}
	p.Replayed()
	done, total, replayed := p.Counts()
	if done != 4 || total != 10 || replayed != 1 {
		t.Fatalf("counts = %d/%d/%d", done, total, replayed)
	}
	line := p.Line()
	for _, want := range []string{"fig10", "4/10 cells", "(1 replayed)"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "4/10 cells") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("final render wrong: %q", out)
	}
}

// TestProgressPadsShrinkingLines: a shorter line must blank out the
// tail of a longer previous render (the \r-overwrite contract).
func TestProgressPadsShrinkingLines(t *testing.T) {
	var buf syncBuffer
	p := StartProgress(&buf, time.Hour)
	p.SetLabel("a-rather-long-figure-label")
	p.render(false)
	p.SetLabel("x")
	p.render(false)
	frames := strings.Split(buf.String(), "\r")
	if len(frames) < 3 {
		t.Fatalf("frames = %q", frames)
	}
	if len(frames[2]) < len(frames[1]) {
		t.Fatalf("short frame not padded: %d < %d", len(frames[2]), len(frames[1]))
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the renderer goroutine
// may still be mid-write when the test reads).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestManifestRoundTrip(t *testing.T) {
	r := New()
	r.Counter("exp.cells.completed").Add(42)
	m := NewManifest("figures")
	m.ArchFingerprint = "abc123"
	m.Scale = 20
	m.Seed = 7
	m.Parallel = 4
	m.AddFigure("fig10", 1500*time.Millisecond)
	m.AddFigure("fig11", 250*time.Millisecond)
	m.Checkpoint = &CheckpointInfo{Path: "ckpt.jsonl", Replayed: 3, Recorded: 9}
	m.Finish(r)
	if m.WallSeconds < 0 || m.End.Before(m.Start) {
		t.Fatalf("bad wall clock: %+v", m)
	}
	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "figures" || got.GoVersion == "" || got.GOMAXPROCS <= 0 {
		t.Fatalf("provenance fields missing: %+v", got)
	}
	if got.ArchFingerprint != "abc123" || got.Scale != 20 || got.Seed != 7 || got.Parallel != 4 {
		t.Fatalf("identity fields lost: %+v", got)
	}
	if len(got.Figures) != 2 || got.Figures[0].Name != "fig10" || got.Figures[0].Seconds != 1.5 {
		t.Fatalf("figure timings lost: %+v", got.Figures)
	}
	if got.Checkpoint == nil || got.Checkpoint.Replayed != 3 {
		t.Fatalf("checkpoint info lost: %+v", got.Checkpoint)
	}
	if mv := got.Metrics["exp.cells.completed"]; mv.Kind != "counter" || mv.Count != 42 {
		t.Fatalf("metric snapshot lost: %+v", got.Metrics)
	}
}

func TestReadManifestRejectsGarbage(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing manifest accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestBucketForEdges(t *testing.T) {
	if b := bucketFor(0); b != 0 {
		t.Fatalf("bucketFor(0) = %d", b)
	}
	if b := bucketFor(time.Microsecond); b != 0 {
		t.Fatalf("bucketFor(1µs) = %d", b)
	}
	if b := bucketFor(2 * time.Microsecond); b != 1 {
		t.Fatalf("bucketFor(2µs) = %d", b)
	}
	if b := bucketFor(365 * 24 * time.Hour); b != histBuckets-1 {
		t.Fatalf("huge duration not clamped to last bucket: %d", b)
	}
}
