package gio

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/graph"
	"cobra/internal/pb"
	"cobra/internal/sparse"
)

func TestEdgeListRoundTrip(t *testing.T) {
	el := graph.RMAT(10, 8, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != el.N || got.M() != el.M() {
		t.Fatalf("shape changed: (%d,%d) vs (%d,%d)", got.N, got.M(), el.N, el.M())
	}
	for i := range el.Edges {
		if got.Edges[i] != el.Edges[i] {
			t.Fatalf("edge %d changed", i)
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	g := graph.BuildCSR(graph.Uniform(500, 3000, 5), false, pb.Options{})
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || got.M() != g.M() {
		t.Fatal("shape changed")
	}
	for i := range g.Offsets {
		if got.Offsets[i] != g.Offsets[i] {
			t.Fatal("offsets changed")
		}
	}
	for i := range g.Neighs {
		if got.Neighs[i] != g.Neighs[i] {
			t.Fatal("neighbors changed")
		}
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	m := sparse.SkewedSparse(300, 256, 5, 7)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != m.Rows || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
		t.Fatal("shape changed")
	}
	for i := range m.Vals {
		if got.Vals[i] != m.Vals[i] || got.ColIdx[i] != m.ColIdx[i] {
			t.Fatalf("entry %d changed", i)
		}
	}
}

func TestWrongMagicRejected(t *testing.T) {
	el := graph.Uniform(10, 20, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, el); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSR(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("CSR reader accepted an edge-list file")
	}
	if _, err := ReadMatrix(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("matrix reader accepted an edge-list file")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	el := graph.Uniform(10, 20, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, el); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 4, 8, 12, 20, len(full) - 1} {
		if _, err := ReadEdgeList(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCorruptEdgeRejected(t *testing.T) {
	el := &graph.EdgeList{N: 4, Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, el); err != nil {
		t.Fatal(err)
	}
	// Corrupt a source vertex to be out of range: sources start after
	// magic(8) + version(4) + n(8) + len(8).
	b := buf.Bytes()
	b[28] = 0xff
	b[29] = 0xff
	if _, err := ReadEdgeList(bytes.NewReader(b)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestCorruptCSRRejected(t *testing.T) {
	g := graph.BuildCSR(graph.Uniform(50, 200, 2), false, pb.Options{})
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt an offsets entry (monotonicity check must fire).
	b[40] = 0xff
	b[41] = 0xff
	b[42] = 0xff
	if _, err := ReadCSR(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt CSR accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		el := graph.Uniform(n, 4*n, seed)
		var buf bytes.Buffer
		if WriteEdgeList(&buf, el) != nil {
			return false
		}
		got, err := ReadEdgeList(&buf)
		if err != nil || got.N != el.N || got.M() != el.M() {
			return false
		}
		for i := range el.Edges {
			if got.Edges[i] != el.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyStructures(t *testing.T) {
	el := &graph.EdgeList{N: 1}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil || got.M() != 0 {
		t.Fatalf("empty edge list round trip: %v, %d edges", err, got.M())
	}
}
