package gio

// Fault-injection coverage for the hardened readers: every corruption
// class (truncated header, truncated payload, bit-flipped body, absurd
// element counts, damaged/partial footers, trailing garbage) must be
// rejected with the right typed sentinel — and legacy footerless files
// must still load.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"cobra/internal/fault"
	"cobra/internal/graph"
	"cobra/internal/pb"
	"cobra/internal/sparse"
)

func edgeListBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, graph.Uniform(64, 256, 9)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func csrBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, graph.BuildCSR(graph.Uniform(64, 256, 9), false, pb.Options{})); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func matrixBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, sparse.RandomSparse(40, 40, 4, 11)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFooterRoundTrip: current files carry a verifiable footer and load
// cleanly through all three readers.
func TestFooterRoundTrip(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewReader(edgeListBytes(t))); err != nil {
		t.Fatalf("edge list: %v", err)
	}
	if _, err := ReadCSR(bytes.NewReader(csrBytes(t))); err != nil {
		t.Fatalf("CSR: %v", err)
	}
	if _, err := ReadMatrix(bytes.NewReader(matrixBytes(t))); err != nil {
		t.Fatalf("matrix: %v", err)
	}
}

// TestLegacyFooterlessAccepted: seed-era files (no footer) still load —
// backward compatibility is explicit, not accidental.
func TestLegacyFooterlessAccepted(t *testing.T) {
	b := edgeListBytes(t)
	legacy := b[:len(b)-8] // strip the 8-byte footer
	el, err := ReadEdgeList(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy footerless file rejected: %v", err)
	}
	if el.M() != 256 {
		t.Fatalf("legacy decode lost edges: %d", el.M())
	}
	c := csrBytes(t)
	if _, err := ReadCSR(bytes.NewReader(c[:len(c)-8])); err != nil {
		t.Fatalf("legacy CSR rejected: %v", err)
	}
	m := matrixBytes(t)
	if _, err := ReadMatrix(bytes.NewReader(m[:len(m)-8])); err != nil {
		t.Fatalf("legacy matrix rejected: %v", err)
	}
}

// TestBitFlipDetected: a single flipped bit anywhere in the body (body
// sections that structural validation alone might not catch) trips the
// CRC with ErrChecksum.
func TestBitFlipDetected(t *testing.T) {
	b := edgeListBytes(t)
	// Flip a bit in every byte of the payload region one at a time is
	// overkill; sample a spread of offsets past the header (magic 8 +
	// version 4 + n 8 = 20) and before the footer.
	for _, off := range []int{20, 29, 64, 101, len(b) - 9} {
		mut := append([]byte(nil), b...)
		mut[off] ^= 0x10
		_, err := ReadEdgeList(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
		// Structural validation may fire first (e.g. an out-of-range
		// vertex); what matters is that silent corruption is impossible
		// and pure payload flips carry the checksum sentinel.
	}
	// A flip in edge payload bytes that keeps vertices in range MUST be
	// caught by the checksum (this is the case structure checks cannot
	// see). Flipping the low bit of a source vertex keeps it < 64 only
	// if the result stays in range; choose a byte and flip bit 0x01 of
	// a high-order (always zero) byte instead: offsets 20+8k+1..3 are
	// zero for vertices < 256.
	mut := append([]byte(nil), b...)
	mut[20+8+2] ^= 0x01 // high byte of a length/payload word
	var ce *CorruptError
	_, err := ReadEdgeList(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("in-range bit flip accepted")
	}
	if !errors.As(err, &ce) {
		t.Fatalf("error not a *CorruptError: %v", err)
	}
}

// TestChecksumSentinel: a body flip that stays structurally valid is
// classified as ErrChecksum specifically.
func TestChecksumSentinel(t *testing.T) {
	b := matrixBytes(t)
	// Flip a bit inside the float64 values section — any value is
	// structurally legal, so only the CRC can catch it. Values live
	// just before the 8-byte footer.
	mut := append([]byte(nil), b...)
	mut[len(b)-12] ^= 0x40
	_, err := ReadMatrix(bytes.NewReader(mut))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// TestTruncationSentinel: cutting the stream inside any section yields
// ErrTruncated (or a corrupt footer report), never success.
func TestTruncationSentinel(t *testing.T) {
	b := csrBytes(t)
	for _, cut := range []int{0, 3, 8, 11, 12, 19, 20, 27, 28, 40, len(b) - 12, len(b) - 7, len(b) - 1} {
		_, err := ReadCSR(bytes.NewReader(b[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A cut strictly inside a payload section is a clean ErrTruncated.
	if _, err := ReadCSR(bytes.NewReader(b[:40])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("payload cut: err = %v, want ErrTruncated", err)
	}
	// A cut inside the footer is also truncation.
	if _, err := ReadCSR(bytes.NewReader(b[:len(b)-3])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("footer cut: err = %v, want ErrTruncated", err)
	}
}

// TestAbsurdCountRejected: a length header claiming ~4Gi elements is
// rejected with ErrTooLarge before any giant allocation, and a large-
// but-legal count with no data behind it fails fast as truncation
// (chunked reads never allocate more than the stream can back).
func TestAbsurdCountRejected(t *testing.T) {
	b := edgeListBytes(t)
	mut := append([]byte(nil), b...)
	// Sources length lives at offset 20 (magic 8 + version 4 + n 8).
	binary.LittleEndian.PutUint64(mut[20:], maxElems+1)
	if _, err := ReadEdgeList(bytes.NewReader(mut)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}

	// Legal-looking huge count, truncated stream: must fail fast and
	// cheap (ErrTruncated), not OOM.
	mut = append([]byte(nil), b[:28]...)
	binary.LittleEndian.PutUint64(mut[20:], maxElems-1)
	if _, err := ReadEdgeList(bytes.NewReader(mut)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}

	// Matrix shape fields too.
	mb := matrixBytes(t)
	mmut := append([]byte(nil), mb...)
	binary.LittleEndian.PutUint64(mmut[12:], maxElems+7) // rows
	if _, err := ReadMatrix(bytes.NewReader(mmut)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("matrix rows: err = %v, want ErrTooLarge", err)
	}
}

// TestTrailingGarbageRejected: bytes after the payload that are not a
// valid footer — and bytes after a valid footer — are both ErrFormat.
func TestTrailingGarbageRejected(t *testing.T) {
	b := edgeListBytes(t)
	legacy := b[:len(b)-8]

	// 8 trailing bytes that aren't a footer.
	junk := append(append([]byte(nil), legacy...), []byte("GARBAGE!")...)
	if _, err := ReadEdgeList(bytes.NewReader(junk)); !errors.Is(err, ErrFormat) {
		t.Fatalf("non-footer trailer: err = %v, want ErrFormat", err)
	}

	// Data after a valid footer.
	extra := append(append([]byte(nil), b...), 0x00)
	if _, err := ReadEdgeList(bytes.NewReader(extra)); !errors.Is(err, ErrFormat) {
		t.Fatalf("post-footer data: err = %v, want ErrFormat", err)
	}
}

// TestFooterBadMagicRejected: a footer-sized trailer with the wrong
// magic is rejected even if the CRC bytes happen to match.
func TestFooterBadMagicRejected(t *testing.T) {
	b := csrBytes(t)
	mut := append([]byte(nil), b...)
	mut[len(b)-8] = 'X' // first footer magic byte
	if _, err := ReadCSR(bytes.NewReader(mut)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

// TestWrongVersionRejected: a bumped version byte is ErrFormat.
func TestWrongVersionRejected(t *testing.T) {
	b := edgeListBytes(t)
	mut := append([]byte(nil), b...)
	mut[8] = 0xee // version u32 low byte
	if _, err := ReadEdgeList(bytes.NewReader(mut)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

// TestCorruptErrorReportsKind: the typed error names the file kind and
// section, so campaign logs say *what* is damaged.
func TestCorruptErrorReportsKind(t *testing.T) {
	b := matrixBytes(t)
	mut := append([]byte(nil), b...)
	mut[len(b)-12] ^= 0x20
	_, err := ReadMatrix(bytes.NewReader(mut))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CorruptError", err)
	}
	if ce.Kind != "matrix" {
		t.Fatalf("Kind = %q", ce.Kind)
	}
}

// TestInjectedIOFaults drives the gio.read/gio.write injection points:
// an injected read error surfaces as a typed corruption (never a
// silently wrong graph), and an injected torn write produces bytes the
// reader then rejects — the full write-fault-then-read-back cycle.
func TestInjectedIOFaults(t *testing.T) {
	plan, err := fault.Parse("gio.read:at=1:err=eio")
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	_, readErr := ReadEdgeList(bytes.NewReader(edgeListBytes(t)))
	fault.Deactivate()
	if readErr == nil || !errors.Is(readErr, fault.ErrInjected) {
		t.Fatalf("injected read fault not surfaced: %v", readErr)
	}
	var ce *CorruptError
	if !errors.As(readErr, &ce) {
		t.Fatalf("injected read fault lost its corruption context: %v", readErr)
	}

	// Torn write: the writer reports the fault AND the half-written
	// bytes fail verification on read-back (no silent acceptance).
	plan, err = fault.Parse("gio.write:at=2:err=short")
	if err != nil {
		t.Fatal(err)
	}
	var torn bytes.Buffer
	fault.Activate(plan)
	writeErr := WriteCSR(&torn, graph.BuildCSR(graph.Uniform(64, 256, 9), false, pb.Options{}))
	fault.Deactivate()
	if writeErr == nil || !errors.Is(writeErr, fault.ErrShortWrite) {
		t.Fatalf("torn write not reported: %v", writeErr)
	}
	if torn.Len() == 0 {
		t.Fatal("torn write produced no bytes; the fault fired before any write")
	}
	if _, err := ReadCSR(bytes.NewReader(torn.Bytes())); err == nil {
		t.Fatal("reader accepted a torn CSR file")
	}
}
