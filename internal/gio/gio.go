// Package gio serializes the repository's graph and matrix types to a
// compact binary format, so generated inputs can be produced once
// (cmd/graphgen) and reused across experiment runs.
//
// Format: an 8-byte magic ("CBRAGIO" + kind byte), a u32 version, then
// little-endian payload sections, then an 8-byte integrity footer
// ("CRC1" + IEEE CRC32 of every preceding byte). Readers validate
// structure before returning (corrupt files fail loudly, never produce
// invalid CSR) and verify the checksum; files written before the footer
// existed (no trailing bytes after the payload) are still accepted.
//
// Failures carry typed sentinels so campaign tooling can distinguish
// damage classes: errors.Is(err, ErrTruncated | ErrChecksum |
// ErrTooLarge | ErrFormat).
package gio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cobra/internal/fault"
	"cobra/internal/graph"
	"cobra/internal/sparse"
)

const version = 1

var (
	magicEdgeList = [8]byte{'C', 'B', 'R', 'A', 'G', 'I', 'O', 'E'}
	magicCSR      = [8]byte{'C', 'B', 'R', 'A', 'G', 'I', 'O', 'G'}
	magicMatrix   = [8]byte{'C', 'B', 'R', 'A', 'G', 'I', 'O', 'M'}

	// footerMagic introduces the CRC32 integrity footer appended by
	// every writer since the footer format was introduced.
	footerMagic = [4]byte{'C', 'R', 'C', '1'}
)

// Typed corruption sentinels. Readers wrap one of these into every
// failure, so callers can classify damage without string matching.
var (
	// ErrTruncated: the stream ended before the structure it promised.
	ErrTruncated = errors.New("gio: truncated file")
	// ErrChecksum: the CRC32 footer does not match the file contents —
	// a bit flip or partial overwrite somewhere in the body.
	ErrChecksum = errors.New("gio: checksum mismatch")
	// ErrTooLarge: a declared element count exceeds the sanity limit
	// (an absurd header, almost certainly corruption).
	ErrTooLarge = errors.New("gio: element count exceeds sanity limit")
	// ErrFormat: wrong magic, unsupported version, inconsistent
	// sections, or trailing garbage.
	ErrFormat = errors.New("gio: malformed file")
)

// CorruptError decorates a sentinel with the file kind and the section
// where the damage was detected.
type CorruptError struct {
	Kind   string // "edge list", "CSR", "matrix"
	Detail string
	Err    error // one of the sentinels above (or an underlying I/O error)
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("gio: corrupt %s (%s): %v", e.Kind, e.Detail, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

func corrupt(kind, detail string, sentinel error) error {
	return &CorruptError{Kind: kind, Detail: detail, Err: sentinel}
}

// classify maps a raw decode error onto a sentinel: short reads mean
// truncation, anything else passes through.
func classify(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

// crcWriter tracks the IEEE CRC32 of everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader tracks the IEEE CRC32 of everything the decoder consumes
// (hashing at the consumption layer, not the source, so the bufio
// read-ahead never over-hashes).
type crcReader struct {
	br  *bufio.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.br.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// writeFooter appends the integrity footer directly to the underlying
// writer (the footer itself is not part of the checksum).
func writeFooter(w io.Writer, crc uint32) error {
	if _, err := w.Write(footerMagic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc)
}

// verifyFooter checks the bytes after the payload. Three legal shapes:
//
//   - immediate EOF: a legacy footerless file — accepted for backward
//     compatibility with inputs written before the footer existed;
//   - exactly footerMagic + matching CRC32, then EOF: a current file;
//   - anything else: corruption (partial footer, wrong trailer bytes,
//     checksum mismatch, or garbage after the footer).
func verifyFooter(cr *crcReader, kind string) error {
	sum := cr.crc // checksum of everything consumed so far (header + payload)
	var tail [8]byte
	n, err := io.ReadFull(cr.br, tail[:])
	if n == 0 && errors.Is(err, io.EOF) {
		return nil // legacy footerless file
	}
	if err != nil {
		return corrupt(kind, "checksum footer", fmt.Errorf("%w: %d trailing bytes (want 8)", ErrTruncated, n))
	}
	if [4]byte(tail[:4]) != footerMagic {
		return corrupt(kind, "checksum footer", fmt.Errorf("%w: trailing bytes are not a checksum footer", ErrFormat))
	}
	want := binary.LittleEndian.Uint32(tail[4:])
	if want != sum {
		return corrupt(kind, "body", fmt.Errorf("%w: computed %08x, footer says %08x", ErrChecksum, sum, want))
	}
	if _, err := cr.br.ReadByte(); err != io.EOF {
		return corrupt(kind, "checksum footer", fmt.Errorf("%w: trailing data after footer", ErrFormat))
	}
	return nil
}

func writeHeader(w io.Writer, magic [8]byte) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(version))
}

func readHeader(r io.Reader, want [8]byte, kind string) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return corrupt(kind, "magic", classify(err))
	}
	if magic != want {
		return corrupt(kind, "magic", fmt.Errorf("%w: not a %s file (magic %q)", ErrFormat, kind, magic[:]))
	}
	var v uint32
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return corrupt(kind, "version", classify(err))
	}
	if v != version {
		return corrupt(kind, "version", fmt.Errorf("%w: version %d unsupported (want %d)", ErrFormat, v, version))
	}
	return nil
}

func writeU32s(w io.Writer, xs []uint32) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(xs))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, xs)
}

// readChunk bounds a single allocation while reading a length-prefixed
// array: capacity grows with the bytes actually present in the stream,
// so an absurd (corrupt) length header fails fast with ErrTruncated
// instead of attempting a multi-GiB allocation up front.
const readChunk = 1 << 20

func readU32s(r io.Reader, limit uint64, kind, what string) ([]uint32, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, corrupt(kind, what+" length", classify(err))
	}
	if n > limit {
		return nil, corrupt(kind, what, fmt.Errorf("%w: length %d > limit %d", ErrTooLarge, n, limit))
	}
	xs := make([]uint32, 0, min(n, readChunk))
	for uint64(len(xs)) < n {
		chunk := min(n-uint64(len(xs)), readChunk)
		buf := make([]uint32, chunk)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, corrupt(kind, what+" payload", classify(err))
		}
		xs = append(xs, buf...)
	}
	return xs, nil
}

func readU64s(r io.Reader, limit uint64, kind, what string) ([]uint64, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, corrupt(kind, what+" length", classify(err))
	}
	if n > limit {
		return nil, corrupt(kind, what, fmt.Errorf("%w: length %d > limit %d", ErrTooLarge, n, limit))
	}
	xs := make([]uint64, 0, min(n, readChunk))
	for uint64(len(xs)) < n {
		chunk := min(n-uint64(len(xs)), readChunk)
		buf := make([]uint64, chunk)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, corrupt(kind, what+" payload", classify(err))
		}
		xs = append(xs, buf...)
	}
	return xs, nil
}

// maxElems bounds any single array read to ~4 Gi entries, rejecting
// obviously corrupt headers before allocation.
const maxElems = 1 << 32

// WriteEdgeList serializes el (with integrity footer).
func WriteEdgeList(w io.Writer, el *graph.EdgeList) error {
	w = fault.Writer(fault.PointGioWrite, w)
	cw := &crcWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, magicEdgeList); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(el.N)); err != nil {
		return err
	}
	srcs := make([]uint32, el.M())
	dsts := make([]uint32, el.M())
	for i, e := range el.Edges {
		srcs[i], dsts[i] = e.Src, e.Dst
	}
	if err := writeU32s(bw, srcs); err != nil {
		return err
	}
	if err := writeU32s(bw, dsts); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return writeFooter(w, cw.crc)
}

// ReadEdgeList deserializes an edge list, verifying the checksum
// footer (when present) and validating vertex bounds.
func ReadEdgeList(r io.Reader) (*graph.EdgeList, error) {
	const kind = "edge list"
	cr := &crcReader{br: bufio.NewReader(fault.Reader(fault.PointGioRead, r))}
	if err := readHeader(cr, magicEdgeList, kind); err != nil {
		return nil, err
	}
	var n uint64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, corrupt(kind, "vertex count", classify(err))
	}
	if n > maxElems {
		return nil, corrupt(kind, "vertex count", fmt.Errorf("%w: %d", ErrTooLarge, n))
	}
	srcs, err := readU32s(cr, maxElems, kind, "sources")
	if err != nil {
		return nil, err
	}
	dsts, err := readU32s(cr, maxElems, kind, "destinations")
	if err != nil {
		return nil, err
	}
	if err := verifyFooter(cr, kind); err != nil {
		return nil, err
	}
	if len(srcs) != len(dsts) {
		return nil, corrupt(kind, "sections", fmt.Errorf("%w: source/destination counts differ (%d vs %d)", ErrFormat, len(srcs), len(dsts)))
	}
	el := &graph.EdgeList{N: int(n), Edges: make([]graph.Edge, len(srcs))}
	for i := range srcs {
		if uint64(srcs[i]) >= n || uint64(dsts[i]) >= n {
			return nil, corrupt(kind, "edges", fmt.Errorf("%w: edge %d (%d->%d) out of range [0,%d)", ErrFormat, i, srcs[i], dsts[i], n))
		}
		el.Edges[i] = graph.Edge{Src: srcs[i], Dst: dsts[i]}
	}
	return el, nil
}

// WriteCSR serializes g (with integrity footer).
func WriteCSR(w io.Writer, g *graph.CSR) error {
	w = fault.Writer(fault.PointGioWrite, w)
	cw := &crcWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, magicCSR); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.N)); err != nil {
		return err
	}
	if err := writeU32s(bw, g.Offsets); err != nil {
		return err
	}
	if err := writeU32s(bw, g.Neighs); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return writeFooter(w, cw.crc)
}

// ReadCSR deserializes a CSR graph, verifying the checksum footer
// (when present) and validating its invariants.
func ReadCSR(r io.Reader) (*graph.CSR, error) {
	const kind = "CSR"
	cr := &crcReader{br: bufio.NewReader(fault.Reader(fault.PointGioRead, r))}
	if err := readHeader(cr, magicCSR, kind); err != nil {
		return nil, err
	}
	var n uint64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, corrupt(kind, "vertex count", classify(err))
	}
	if n > maxElems {
		return nil, corrupt(kind, "vertex count", fmt.Errorf("%w: %d", ErrTooLarge, n))
	}
	offsets, err := readU32s(cr, maxElems, kind, "offsets")
	if err != nil {
		return nil, err
	}
	neighs, err := readU32s(cr, maxElems, kind, "neighbors")
	if err != nil {
		return nil, err
	}
	if err := verifyFooter(cr, kind); err != nil {
		return nil, err
	}
	g := &graph.CSR{N: int(n), Offsets: offsets, Neighs: neighs}
	if err := g.Validate(); err != nil {
		return nil, corrupt(kind, "structure", fmt.Errorf("%w: %v", ErrFormat, err))
	}
	return g, nil
}

// WriteMatrix serializes m (with integrity footer).
func WriteMatrix(w io.Writer, m *sparse.Matrix) error {
	w = fault.Writer(fault.PointGioWrite, w)
	cw := &crcWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, magicMatrix); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(m.Rows)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(m.Cols)); err != nil {
		return err
	}
	if err := writeU32s(bw, m.RowPtr); err != nil {
		return err
	}
	if err := writeU32s(bw, m.ColIdx); err != nil {
		return err
	}
	bits := make([]uint64, len(m.Vals))
	for i, v := range m.Vals {
		bits[i] = math.Float64bits(v)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(bits))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, bits); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return writeFooter(w, cw.crc)
}

// ReadMatrix deserializes a CSR matrix, verifying the checksum footer
// (when present) and validating its invariants.
func ReadMatrix(r io.Reader) (*sparse.Matrix, error) {
	const kind = "matrix"
	cr := &crcReader{br: bufio.NewReader(fault.Reader(fault.PointGioRead, r))}
	if err := readHeader(cr, magicMatrix, kind); err != nil {
		return nil, err
	}
	var rows, cols uint64
	if err := binary.Read(cr, binary.LittleEndian, &rows); err != nil {
		return nil, corrupt(kind, "row count", classify(err))
	}
	if err := binary.Read(cr, binary.LittleEndian, &cols); err != nil {
		return nil, corrupt(kind, "column count", classify(err))
	}
	if rows > maxElems || cols > maxElems {
		return nil, corrupt(kind, "shape", fmt.Errorf("%w: %dx%d", ErrTooLarge, rows, cols))
	}
	rowptr, err := readU32s(cr, maxElems, kind, "rowptr")
	if err != nil {
		return nil, err
	}
	colidx, err := readU32s(cr, maxElems, kind, "colidx")
	if err != nil {
		return nil, err
	}
	bits, err := readU64s(cr, maxElems, kind, "values")
	if err != nil {
		return nil, err
	}
	if err := verifyFooter(cr, kind); err != nil {
		return nil, err
	}
	if len(bits) != len(colidx) {
		return nil, corrupt(kind, "sections", fmt.Errorf("%w: %d values for %d column indices", ErrFormat, len(bits), len(colidx)))
	}
	vals := make([]float64, len(bits))
	for i, b := range bits {
		vals[i] = math.Float64frombits(b)
	}
	m := &sparse.Matrix{Rows: int(rows), Cols: int(cols), RowPtr: rowptr, ColIdx: colidx, Vals: vals}
	if err := m.Validate(); err != nil {
		return nil, corrupt(kind, "structure", fmt.Errorf("%w: %v", ErrFormat, err))
	}
	return m, nil
}
