// Package gio serializes the repository's graph and matrix types to a
// compact binary format, so generated inputs can be produced once
// (cmd/graphgen) and reused across experiment runs.
//
// Format: an 8-byte magic ("CBRAGIO" + kind byte), a u32 version, then
// little-endian payload sections. Readers validate structure before
// returning (corrupt files fail loudly, never produce invalid CSR).
package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cobra/internal/graph"
	"cobra/internal/sparse"
)

const version = 1

var (
	magicEdgeList = [8]byte{'C', 'B', 'R', 'A', 'G', 'I', 'O', 'E'}
	magicCSR      = [8]byte{'C', 'B', 'R', 'A', 'G', 'I', 'O', 'G'}
	magicMatrix   = [8]byte{'C', 'B', 'R', 'A', 'G', 'I', 'O', 'M'}
)

func writeHeader(w io.Writer, magic [8]byte) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(version))
}

func readHeader(r io.Reader, want [8]byte, kind string) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("gio: reading %s magic: %w", kind, err)
	}
	if magic != want {
		return fmt.Errorf("gio: not a %s file (magic %q)", kind, magic[:])
	}
	var v uint32
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return fmt.Errorf("gio: reading %s version: %w", kind, err)
	}
	if v != version {
		return fmt.Errorf("gio: %s version %d unsupported (want %d)", kind, v, version)
	}
	return nil
}

func writeU32s(w io.Writer, xs []uint32) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(xs))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, xs)
}

func readU32s(r io.Reader, limit uint64, what string) ([]uint32, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("gio: reading %s length: %w", what, err)
	}
	if n > limit {
		return nil, fmt.Errorf("gio: %s length %d exceeds sanity limit %d", what, n, limit)
	}
	xs := make([]uint32, n)
	if err := binary.Read(r, binary.LittleEndian, xs); err != nil {
		return nil, fmt.Errorf("gio: reading %s payload: %w", what, err)
	}
	return xs, nil
}

// maxElems bounds any single array read to ~4 Gi entries, rejecting
// obviously corrupt headers before allocation.
const maxElems = 1 << 32

// WriteEdgeList serializes el.
func WriteEdgeList(w io.Writer, el *graph.EdgeList) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magicEdgeList); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(el.N)); err != nil {
		return err
	}
	srcs := make([]uint32, el.M())
	dsts := make([]uint32, el.M())
	for i, e := range el.Edges {
		srcs[i], dsts[i] = e.Src, e.Dst
	}
	if err := writeU32s(bw, srcs); err != nil {
		return err
	}
	if err := writeU32s(bw, dsts); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList deserializes an edge list, validating vertex bounds.
func ReadEdgeList(r io.Reader) (*graph.EdgeList, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicEdgeList, "edge list"); err != nil {
		return nil, err
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxElems {
		return nil, fmt.Errorf("gio: vertex count %d exceeds sanity limit", n)
	}
	srcs, err := readU32s(br, maxElems, "sources")
	if err != nil {
		return nil, err
	}
	dsts, err := readU32s(br, maxElems, "destinations")
	if err != nil {
		return nil, err
	}
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("gio: source/destination counts differ (%d vs %d)", len(srcs), len(dsts))
	}
	el := &graph.EdgeList{N: int(n), Edges: make([]graph.Edge, len(srcs))}
	for i := range srcs {
		if uint64(srcs[i]) >= n || uint64(dsts[i]) >= n {
			return nil, fmt.Errorf("gio: edge %d (%d->%d) out of range [0,%d)", i, srcs[i], dsts[i], n)
		}
		el.Edges[i] = graph.Edge{Src: srcs[i], Dst: dsts[i]}
	}
	return el, nil
}

// WriteCSR serializes g.
func WriteCSR(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magicCSR); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.N)); err != nil {
		return err
	}
	if err := writeU32s(bw, g.Offsets); err != nil {
		return err
	}
	if err := writeU32s(bw, g.Neighs); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSR deserializes a CSR graph and validates its invariants.
func ReadCSR(r io.Reader) (*graph.CSR, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicCSR, "CSR"); err != nil {
		return nil, err
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxElems {
		return nil, fmt.Errorf("gio: vertex count %d exceeds sanity limit", n)
	}
	offsets, err := readU32s(br, maxElems, "offsets")
	if err != nil {
		return nil, err
	}
	neighs, err := readU32s(br, maxElems, "neighbors")
	if err != nil {
		return nil, err
	}
	g := &graph.CSR{N: int(n), Offsets: offsets, Neighs: neighs}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gio: %w", err)
	}
	return g, nil
}

// WriteMatrix serializes m.
func WriteMatrix(w io.Writer, m *sparse.Matrix) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, magicMatrix); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(m.Rows)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(m.Cols)); err != nil {
		return err
	}
	if err := writeU32s(bw, m.RowPtr); err != nil {
		return err
	}
	if err := writeU32s(bw, m.ColIdx); err != nil {
		return err
	}
	bits := make([]uint64, len(m.Vals))
	for i, v := range m.Vals {
		bits[i] = math.Float64bits(v)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(bits))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, bits); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMatrix deserializes a CSR matrix and validates its invariants.
func ReadMatrix(r io.Reader) (*sparse.Matrix, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicMatrix, "matrix"); err != nil {
		return nil, err
	}
	var rows, cols uint64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
		return nil, err
	}
	if rows > maxElems || cols > maxElems {
		return nil, fmt.Errorf("gio: matrix shape %dx%d exceeds sanity limit", rows, cols)
	}
	rowptr, err := readU32s(br, maxElems, "rowptr")
	if err != nil {
		return nil, err
	}
	colidx, err := readU32s(br, maxElems, "colidx")
	if err != nil {
		return nil, err
	}
	var nv uint64
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, err
	}
	if nv > maxElems {
		return nil, fmt.Errorf("gio: value count %d exceeds sanity limit", nv)
	}
	bits := make([]uint64, nv)
	if err := binary.Read(br, binary.LittleEndian, bits); err != nil {
		return nil, err
	}
	vals := make([]float64, nv)
	for i, b := range bits {
		vals[i] = math.Float64frombits(b)
	}
	m := &sparse.Matrix{Rows: int(rows), Cols: int(cols), RowPtr: rowptr, ColIdx: colidx, Vals: vals}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("gio: %w", err)
	}
	return m, nil
}
