package gio

// Fuzz targets for the two readers that campaign tooling points at
// user-supplied files. The invariant under fuzz: arbitrary bytes NEVER
// panic or allocate absurdly, and any input the reader accepts is
// structurally valid and survives a write/read round trip.
//
// `make fuzz-smoke` runs each target for a short budget; `go test`
// alone replays the seed corpus as regression tests.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"cobra/internal/graph"
	"cobra/internal/pb"
)

// fuzzSeeds returns a spread of interesting inputs: valid files,
// truncations, flipped bytes, absurd counts, and raw noise.
func fuzzSeeds(t testing.TB, valid []byte) [][]byte {
	t.Helper()
	seeds := [][]byte{
		valid,
		valid[:len(valid)-8], // legacy footerless
		{},
		[]byte("not a gio file at all"),
		valid[:12],           // header only
		valid[:len(valid)/2], // mid-payload cut
		valid[:len(valid)-3], // footer cut
	}
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x80
	seeds = append(seeds, flip)
	huge := append([]byte(nil), valid[:28]...)
	binary.LittleEndian.PutUint64(huge[20:], 1<<40)
	seeds = append(seeds, huge)
	return seeds
}

func FuzzReadEdgeList(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, graph.Uniform(32, 128, 4)); err != nil {
		f.Fatal(err)
	}
	for _, s := range fuzzSeeds(f, buf.Bytes()) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		el, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejection is always legal; panics are the bug
		}
		// Accepted input must be internally consistent...
		for i, e := range el.Edges {
			if int(e.Src) >= el.N || int(e.Dst) >= el.N {
				t.Fatalf("accepted edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, el.N)
			}
		}
		// ...and round-trip through the writer.
		var out bytes.Buffer
		if err := WriteEdgeList(&out, el); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadEdgeList(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.N != el.N || back.M() != el.M() {
			t.Fatalf("round trip changed shape: (%d,%d) vs (%d,%d)", back.N, back.M(), el.N, el.M())
		}
	})
}

func FuzzReadCSR(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCSR(&buf, graph.BuildCSR(graph.Uniform(32, 128, 4), false, pb.Options{})); err != nil {
		f.Fatal(err)
	}
	for _, s := range fuzzSeeds(f, buf.Bytes()) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		// ReadCSR promises a validated CSR: re-validating must hold.
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted CSR fails Validate: %v", err)
		}
		var out bytes.Buffer
		if err := WriteCSR(&out, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadCSR(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.N != g.N || back.M() != g.M() {
			t.Fatalf("round trip changed shape")
		}
	})
}
