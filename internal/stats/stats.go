package stats

import (
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs. Non-positive entries are
// skipped (a ratio of zero would collapse the mean to zero and hide the
// rest of the distribution). It returns 0 when no usable entries exist.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c))))
	return c[rank-1]
}

// Log2Ceil returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func Log2Ceil(n uint64) uint {
	if n <= 1 {
		return 0
	}
	k := uint(0)
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// NextPow2 returns the smallest power of two >= n (n >= 1). NextPow2(0) = 1.
func NextPow2(n uint64) uint64 {
	return 1 << Log2Ceil(maxU64(n, 1))
}

// PrevPow2 returns the largest power of two <= n for n >= 1; it panics on 0.
func PrevPow2(n uint64) uint64 {
	if n == 0 {
		panic("stats: PrevPow2(0)")
	}
	p := uint64(1)
	for p<<1 <= n && p<<1 != 0 {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a power of two (n > 0).
func IsPow2(n uint64) bool { return n > 0 && n&(n-1) == 0 }

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// DivCeil returns ceil(a/b) for b > 0.
func DivCeil(a, b uint64) uint64 { return (a + b - 1) / b }

// Histogram counts values into n equal-width buckets over [lo, hi).
// Values outside the range clamp into the edge buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
	Count   uint64
}

// NewHistogram returns a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int(float64(len(h.Buckets)) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
	h.Count++
}

// Frac returns the fraction of observations in bucket i.
func (h *Histogram) Frac(i int) float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.Count)
}
