package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 64", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square style sanity check on 8 buckets.
	r := NewRand(11)
	const draws = 80000
	var counts [8]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(8)]++
	}
	want := draws / 8
	for i, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(5)
	check := func(n int) {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if seen[v] {
				t.Fatalf("Perm(%d): duplicate %d", n, v)
			}
			seen[v] = true
		}
	}
	for _, n := range []int{0, 1, 2, 17, 256} {
		check(n)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Fatalf("GeoMean(ones) = %v, want 1", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", g)
	}
	// Non-positive entries are skipped, not zero-collapsing.
	if g := GeoMean([]float64{0, 4, 4}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean with zero = %v, want 4", g)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty-slice helpers should return 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("P50 = %v, want 5", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("P100 = %v, want 10", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("P0 = %v, want 1", p)
	}
}

func TestPow2Helpers(t *testing.T) {
	cases := []struct{ n, next, prev uint64 }{
		{1, 1, 1}, {2, 2, 2}, {3, 4, 2}, {5, 8, 4}, {1024, 1024, 1024}, {1025, 2048, 1024},
	}
	for _, c := range cases {
		if NextPow2(c.n) != c.next {
			t.Errorf("NextPow2(%d) = %d, want %d", c.n, NextPow2(c.n), c.next)
		}
		if PrevPow2(c.n) != c.prev {
			t.Errorf("PrevPow2(%d) = %d, want %d", c.n, PrevPow2(c.n), c.prev)
		}
	}
	if !IsPow2(64) || IsPow2(65) || IsPow2(0) {
		t.Fatal("IsPow2 misclassified")
	}
}

func TestPow2Property(t *testing.T) {
	f := func(n uint32) bool {
		v := uint64(n%1_000_000) + 1
		np, pp := NextPow2(v), PrevPow2(v)
		return IsPow2(np) && IsPow2(pp) && np >= v && pp <= v && np < 2*v && 2*pp > v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog2Ceil(t *testing.T) {
	for _, c := range []struct {
		n uint64
		k uint
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1 << 20, 20}} {
		if g := Log2Ceil(c.n); g != c.k {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, g, c.k)
		}
	}
}

func TestDivCeil(t *testing.T) {
	if DivCeil(10, 3) != 4 || DivCeil(9, 3) != 3 || DivCeil(0, 5) != 0 {
		t.Fatal("DivCeil wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Buckets[i] != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Buckets[i])
		}
	}
	h.Add(-5) // clamps low
	h.Add(99) // clamps high
	if h.Buckets[0] != 2 || h.Buckets[9] != 2 {
		t.Fatal("edge clamping failed")
	}
	if f := h.Frac(0); math.Abs(f-2.0/12.0) > 1e-12 {
		t.Fatalf("Frac = %v", f)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(9)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams overlapped %d/64 draws", same)
	}
}

func TestExpPositive(t *testing.T) {
	r := NewRand(13)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}
