// Package stats provides deterministic pseudo-random number generation
// and small statistical helpers shared by the generators, simulators,
// and experiment harness.
//
// All randomness in the repository flows through Rand so that every
// experiment is reproducible bit-for-bit from its seed.
package stats

import "math"

// Rand is a splitmix64-seeded xoshiro256** generator. It is deliberately
// not math/rand: we need a stable algorithm whose streams never change
// between Go releases, so figures regenerate identically.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed non-zero state for any seed (including 0).
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns 32 uniformly random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly random uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n called with zero n")
	}
	// Rejection sampling on the high product keeps the result unbiased.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator; the i-th split of a seed is
// stable across calls, which lets parallel workers draw disjoint streams.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *Rand) Exp() float64 {
	// Inverse CDF; Float64 never returns 1.0 so the log argument is > 0.
	return -math.Log(1 - r.Float64())
}
