package dist

// Coordinator tests against in-process cobrad workers (srv.Server
// behind httptest). The contract under test is the one cmd/figures
// relies on: every gathered result is byte-identical to the local
// simulation of the same cell, worker failures translate to steals or
// local-fallback declines (never campaign errors), and the fleet
// journal short-circuits re-dispatch on resume.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"cobra/internal/client"
	"cobra/internal/exp"
	"cobra/internal/sim"
	"cobra/internal/srv"
)

// startWorker boots an in-process cobrad and returns its base URL.
func startWorker(t *testing.T) string {
	t.Helper()
	server, err := srv.New(srv.Config{Workers: 2, QueueDepth: 16, DefaultScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	server.Start()
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// deadWorker serves 500 on every path — a worker that is reachable but
// broken (the client treats it like any availability failure).
func deadWorker(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// fastOpts makes worker failure cheap: no retries, no resubmits, no
// breaker, tight polling.
func fastOpts() client.Options {
	return client.Options{
		MaxRetries:       -1,
		Resubmits:        -1,
		BreakerThreshold: -1,
		PollFloor:        time.Millisecond,
		PollInterval:     20 * time.Millisecond,
	}
}

func newCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Client == (client.Options{}) {
		cfg.Client = fastOpts()
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// localMetrics simulates the cell in-process, the way exp campaigns do
// when RunCell declines.
func localMetrics(t *testing.T, k exp.CellKey) sim.Metrics {
	t.Helper()
	app, err := exp.BuildApp(k.App, k.Input, k.Scale, k.Seed)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := exp.ParseScheme(k.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	m, err := exp.RunScheme(app, scheme, k.Bins, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mustJSON renders metrics the way the artifact path consumes them;
// equality here is the byte-identity the fleet promises.
func mustJSON(t *testing.T, m sim.Metrics) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func testKey() exp.CellKey {
	return FleetCellKey(exp.RunSpec{
		App: "DegreeCount", Input: "URND", Scale: 8, Seed: 42, Cores: 1,
	}, sim.SchemeIDCOBRA)
}

func TestRunCellMatchesLocal(t *testing.T) {
	co := newCoordinator(t, Config{Addrs: []string{startWorker(t)}})
	k := testKey()
	got, ok, err := co.RunCell(context.Background(), k)
	if err != nil || !ok {
		t.Fatalf("RunCell: ok=%v err=%v", ok, err)
	}
	want := localMetrics(t, k)
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatalf("remote metrics diverge from local:\n remote %s\n local  %s",
			mustJSON(t, got), mustJSON(t, want))
	}
	info := co.Snapshot()
	if info.Dispatched != 1 || info.Completed != 1 || info.Gathered != 1 {
		t.Fatalf("snapshot: %+v", info)
	}
}

func TestDeclinesUnservable(t *testing.T) {
	// Dead address on purpose: a decline must never touch the network.
	co := newCoordinator(t, Config{Addrs: []string{"http://127.0.0.1:1"}})
	cases := map[string]exp.CellKey{
		"variant scheme": func() exp.CellKey {
			k := testKey()
			k.Scheme = "COBRA[evict=8]"
			return k
		}(),
		"foreign arch": func() exp.CellKey {
			k := testKey()
			k.Arch = "not-a-stock-fingerprint"
			return k
		}(),
		"scale out of range": func() exp.CellKey {
			k := testKey()
			k.Scale = exp.MaxScale + 1
			return k
		}(),
	}
	for name, k := range cases {
		if _, ok, err := co.RunCell(context.Background(), k); ok || err != nil {
			t.Fatalf("%s: want decline, got ok=%v err=%v", name, ok, err)
		}
	}
	if info := co.Snapshot(); info.Dispatched != 0 {
		t.Fatalf("unservable cells were dispatched: %+v", info)
	}
}

func TestStealFromDeadWorker(t *testing.T) {
	dead := deadWorker(t)
	co := newCoordinator(t, Config{Addrs: []string{dead, startWorker(t)}})
	k := testKey()
	got, ok, err := co.RunCell(context.Background(), k)
	if err != nil || !ok {
		t.Fatalf("RunCell: ok=%v err=%v", ok, err)
	}
	if mustJSON(t, got) != mustJSON(t, localMetrics(t, k)) {
		t.Fatal("stolen cell diverged from local metrics")
	}
	info := co.Snapshot()
	if info.Stolen != 1 || info.Completed != 1 || info.Failed != 1 {
		t.Fatalf("steal accounting: %+v", info)
	}
	if info.Workers[0].Healthy || !info.Workers[1].Healthy {
		t.Fatalf("health flags after steal: %+v", info.Workers)
	}
	if info.Workers[1].Stolen != 1 {
		t.Fatalf("node1 should have received the steal: %+v", info.Workers[1])
	}
}

func TestAllWorkersDownFallsBackLocal(t *testing.T) {
	co := newCoordinator(t, Config{Addrs: []string{deadWorker(t), deadWorker(t)}})
	_, ok, err := co.RunCell(context.Background(), testKey())
	if ok || err != nil {
		t.Fatalf("want local-fallback decline, got ok=%v err=%v", ok, err)
	}
	info := co.Snapshot()
	if info.Failed != 2 {
		t.Fatalf("both nodes should have been tried: %+v", info)
	}
	for _, n := range info.Workers {
		if n.Healthy {
			t.Fatalf("node %s should be marked down", n.Addr)
		}
	}
}

func TestJournalReplaySkipsDispatch(t *testing.T) {
	k := testKey()
	want := localMetrics(t, k)
	path := filepath.Join(t.TempDir(), "fleet.journal")
	j, err := exp.OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(k, want); err != nil {
		t.Fatal(err)
	}
	// Workers are all dead: any dispatch attempt would show up as a
	// decline instead of the replayed metrics.
	co := newCoordinator(t, Config{Addrs: []string{deadWorker(t)}, Journal: j})
	got, ok, err := co.RunCell(context.Background(), k)
	if err != nil || !ok {
		t.Fatalf("RunCell: ok=%v err=%v", ok, err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("journal replay diverged")
	}
	if info := co.Snapshot(); info.Dispatched != 0 {
		t.Fatalf("replayed cell was dispatched: %+v", info)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateCellDedupes(t *testing.T) {
	co := newCoordinator(t, Config{Addrs: []string{startWorker(t)}})
	k := testKey()
	first, ok, err := co.RunCell(context.Background(), k)
	if err != nil || !ok {
		t.Fatalf("first RunCell: ok=%v err=%v", ok, err)
	}
	second, ok, err := co.RunCell(context.Background(), k)
	if err != nil || !ok {
		t.Fatalf("second RunCell: ok=%v err=%v", ok, err)
	}
	if mustJSON(t, first) != mustJSON(t, second) {
		t.Fatal("deduped result diverged")
	}
	if info := co.Snapshot(); info.Dispatched != 1 || info.Gathered != 1 {
		t.Fatalf("duplicate was re-dispatched: %+v", info)
	}
}

func TestProbeReadmitsRecoveredWorker(t *testing.T) {
	worker, err := srv.New(srv.Config{Workers: 2, QueueDepth: 16, DefaultScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	worker.Start()
	handler := worker.Handler()
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "flapping", http.StatusInternalServerError)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	co := newCoordinator(t, Config{Addrs: []string{ts.URL}, ProbeInterval: 10 * time.Millisecond})
	k := testKey()
	want := localMetrics(t, k)

	down.Store(true)
	if _, ok, err := co.RunCell(context.Background(), k); ok || err != nil {
		t.Fatalf("down worker: want decline, got ok=%v err=%v", ok, err)
	}

	down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if co.Snapshot().Workers[0].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never re-admitted the recovered worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, ok, err := co.RunCell(context.Background(), k)
	if err != nil || !ok {
		t.Fatalf("recovered worker: ok=%v err=%v", ok, err)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("post-recovery metrics diverged")
	}
}
