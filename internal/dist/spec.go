package dist

// Cell -> job translation and servability. A cell is expressible as a
// cobrad job only when every field of its identity survives the wire
// round-trip exactly: the scheme must be a registry name (variant
// schemes like "COBRA[evict=8]" have no JobSpec spelling), the scale
// must be inside the registry bounds, and the architecture fingerprint
// must be one a worker would itself compute from the job — workers run
// the stock sim.DefaultArch, toggling NUCA before applying the core
// count exactly as srv.runJob does. Anything else (ablation cells with
// hand-modified caches, scalar-ref variants) is declined and simulated
// locally, which preserves byte-identity by construction.

import (
	"cobra/internal/exp"
	"cobra/internal/mem"
	"cobra/internal/sim"
	"cobra/internal/srv"
)

// servableArchs are the architecture fingerprints a stock worker can
// reproduce for one core count, split by which NUCA flag to send.
type servableArchs struct {
	plain map[string]bool
	nuca  map[string]bool
}

// servable returns (memoized) the fingerprints a worker reaches for
// the given core count.
func (co *Coordinator) servable(cores int) servableArchs {
	if cores < 1 {
		cores = 1
	}
	co.fpmu.Lock()
	defer co.fpmu.Unlock()
	if s, ok := co.archFPs[cores]; ok {
		return s
	}
	s := servableArchs{plain: map[string]bool{}, nuca: map[string]bool{}}
	base := sim.DefaultArch()
	nucaArch := base
	nucaArch.Mem.NUCA = mem.DefaultNUCA() // NUCA first, cores second: srv.runJob's order
	if cores <= 1 {
		// The simulator treats NumCores 0 and 1 identically (both select
		// the single-core model) but their %+v fingerprints differ, so
		// accept either spelling of "single-core".
		s.plain[exp.ArchFingerprint(base)] = true
		s.plain[exp.ArchFingerprint(base.WithCores(1))] = true
		s.nuca[exp.ArchFingerprint(nucaArch)] = true
		s.nuca[exp.ArchFingerprint(nucaArch.WithCores(1))] = true
	} else {
		s.plain[exp.ArchFingerprint(base.WithCores(cores))] = true
		s.nuca[exp.ArchFingerprint(nucaArch.WithCores(cores))] = true
	}
	co.archFPs[cores] = s
	return s
}

// specFor translates a cell into the job a worker would run, or
// reports it unservable. The candidate spec is validated through the
// one shared path (exp.RunSpec.Validate) — no per-binary copy of the
// scheme/scale/cores checks.
func (co *Coordinator) specFor(k exp.CellKey) (srv.JobSpec, bool) {
	if k.Window != 0 {
		// Stream windows are not independently dispatchable: a window's
		// metrics are, but the functional state is sequential. Streamed
		// runs go to workers as whole stream jobs, never as cells.
		return srv.JobSpec{}, false
	}
	id, err := sim.ParseSchemeID(k.Scheme)
	if err != nil {
		// Variant schemes ("COBRA[evict=8]") have no JobSpec spelling.
		return srv.JobSpec{}, false
	}
	cores := k.Cores
	if cores < 1 {
		cores = 1
	}
	archs := co.servable(cores)
	var nuca bool
	switch {
	case archs.plain[k.Arch]:
		nuca = false
	case archs.nuca[k.Arch]:
		nuca = true
	default:
		return srv.JobSpec{}, false
	}
	spec := srv.JobSpec{RunSpec: exp.RunSpec{
		App:     k.App,
		Input:   k.Input,
		Scale:   k.Scale,
		Seed:    k.Seed,
		Schemes: []sim.SchemeID{id},
		Bins:    k.Bins,
		NUCA:    nuca,
		Cores:   cores,
	}}
	if spec.RunSpec.Validate() != nil {
		return srv.JobSpec{}, false
	}
	return spec, true
}

// FleetCellKey builds the canonical identity of an ad-hoc fleet cell
// (cobractl fleet run) from the one RunSpec: the stock architecture
// with the spec's NUCA and core knobs applied in the worker's own
// order, fingerprinted the same way the campaign code does.
func FleetCellKey(spec exp.RunSpec, scheme sim.SchemeID) exp.CellKey {
	return spec.CellKey("fleet", scheme, sim.DefaultArch())
}
