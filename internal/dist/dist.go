// Package dist is the fleet coordinator: it scatters the independent
// simulation cells of a campaign across a set of cobrad workers and
// gathers the results back into the local merge/artifact path, so a
// distributed run's output is byte-identical to a local one.
//
// The coordinator implements exp.RemoteRunner: cmd/figures plugs it
// into exp.Opts.Remote and every cell flows journal-lookup -> remote
// dispatch -> local fallback. Dispatch is least-loaded (local
// in-flight plus the advisory queue depth from GET /v1/jobs) with a
// bounded in-flight per node; each node gets its own resilient
// internal/client (retries, jittered backoff, Retry-After honoring,
// circuit breaker). A node whose dispatch fails for availability
// reasons is marked down and the cell is stolen — re-dispatched to a
// healthy node; a background prober re-admits nodes whose /healthz and
// /readyz recover. When no node can take a cell (fleet down, or the
// cell is not expressible as a cobrad job), RunCell declines it and
// the caller simulates locally — degraded throughput, identical bytes.
//
// Byte-identity argument: a cell is a deterministic function of its
// exp.CellKey, the workers run the exact same simulator via
// srv.runJob, and sim.Metrics round-trips JSON exactly (uint64 and
// float64 fields decode bit-exact into the typed struct — the same
// property the checkpoint journal's replay path relies on). Gathered
// results are keyed by CellKey.Fingerprint, so duplicate dispatches
// (steals that raced a slow first attempt) dedupe deterministically:
// first write wins, and every write is identical.
package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"cobra/internal/client"
	"cobra/internal/exp"
	"cobra/internal/obsv"
	"cobra/internal/sim"
	"cobra/internal/srv"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Addrs are the cobrad worker base URLs ("http://host:port"; a bare
	// host:port gets the scheme prefixed). At least one is required.
	Addrs []string
	// MaxInflight bounds concurrently dispatched cells per worker
	// (<= 0: 4). Dispatch blocks when every healthy node is at its cap.
	MaxInflight int
	// Client configures every per-node client; zero values select the
	// client package defaults.
	Client client.Options
	// Journal, when non-nil, is the coordinator's own fleet journal:
	// every gathered cell is recorded (fsync'd) and consulted before
	// dispatching, so an interrupted campaign resumes without re-running
	// completed cells. cmd/figures instead passes its -checkpoint
	// journal through exp.Opts, which wraps RunCell the same way;
	// cobractl fleet run uses this field directly.
	Journal *exp.Journal
	// Reg receives fleet metrics (dist.* counters); nil disables
	// (zero-cost, per the obsv contract).
	Reg *obsv.Registry
	// Events receives fleet events (node_down/node_up/cell_stolen);
	// nil disables.
	Events *obsv.EventLog
	// ProbeInterval paces the background prober that re-admits
	// recovered workers and refreshes advisory load (<= 0: 2s).
	ProbeInterval time.Duration
}

// node is one registered worker and its dispatch accounting. All
// mutable fields are guarded by Coordinator.mu.
type node struct {
	idx  int
	addr string
	c    *client.Client

	healthy  bool
	inflight int // cells currently dispatched by this coordinator
	load     int // advisory queued+running from GET /v1/jobs

	dispatched uint64
	completed  uint64
	failed     uint64
	stolen     uint64 // dispatches received as steals from other nodes
}

// score orders dispatch preference: fewest in-flight plus advisory
// backlog wins; ties resolve to the lowest node index (deterministic).
func (n *node) score() int { return n.inflight + n.load }

// Coordinator scatters cells across cobrad workers. Safe for
// concurrent use by parallel campaign cells.
type Coordinator struct {
	cfg    Config
	reg    *obsv.Registry
	events *obsv.EventLog
	nodes  []*node

	mu      sync.Mutex
	results map[string]sim.Metrics // gathered cells by fingerprint

	// wake is a buffered slot-freed/node-recovered notification so
	// blocked acquirers re-evaluate promptly without spinning.
	wake chan struct{}

	closeOnce sync.Once
	closed    chan struct{}
	probeWG   sync.WaitGroup

	fpmu    sync.Mutex
	archFPs map[int]servableArchs // cores -> fingerprints a worker computes
}

var (
	errNoWorkers = errors.New("dist: no healthy worker can take the cell")
	errClosed    = errors.New("dist: coordinator closed")
)

// New builds a Coordinator and starts its background health prober.
// Call Close when the campaign ends.
func New(cfg Config) (*Coordinator, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	co := &Coordinator{
		cfg:     cfg,
		reg:     cfg.Reg,
		events:  cfg.Events,
		results: map[string]sim.Metrics{},
		wake:    make(chan struct{}, 1),
		closed:  make(chan struct{}),
		archFPs: map[int]servableArchs{},
	}
	for _, addr := range cfg.Addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		co.nodes = append(co.nodes, &node{
			idx:     len(co.nodes),
			addr:    addr,
			c:       client.New(addr, cfg.Client),
			healthy: true, // optimistic; the first failure or probe corrects it
		})
	}
	if len(co.nodes) == 0 {
		return nil, fmt.Errorf("dist: no worker addresses")
	}
	co.probeWG.Add(1)
	go co.probeLoop()
	return co, nil
}

// Nodes returns the registered worker addresses in index order.
func (co *Coordinator) Nodes() []string {
	addrs := make([]string, len(co.nodes))
	for i, n := range co.nodes {
		addrs[i] = n.addr
	}
	return addrs
}

// Close stops the background prober. Idempotent; in-flight RunCell
// calls are not interrupted (cancel their ctx for that).
func (co *Coordinator) Close() {
	co.closeOnce.Do(func() { close(co.closed) })
	co.probeWG.Wait()
}

// Probe health-checks every worker once, synchronously (both /healthz
// and /readyz must answer), updates each node's health flag, and
// returns how many are healthy. Campaigns call it up front so a dead
// fleet is reported before hours of local-fallback simulation.
func (co *Coordinator) Probe(ctx context.Context) int {
	healthy := 0
	for _, n := range co.nodes {
		up := n.c.Health(ctx) == nil && n.c.Ready(ctx) == nil
		co.mu.Lock()
		n.healthy = up
		co.mu.Unlock()
		if up {
			healthy++
		}
	}
	if healthy > 0 {
		co.notify()
	}
	return healthy
}

// RunCell implements exp.RemoteRunner: dispatch the cell to the
// least-loaded healthy worker, stealing it to another node when the
// first fails for availability reasons. ok=false declines the cell —
// not expressible as a cobrad job, rejected by every worker's
// validation, or no healthy worker left — and the caller runs it
// locally. err is only returned for the caller's own problems
// (canceled context, closed coordinator) or a fleet-journal write
// failure; worker failures never fail the campaign.
func (co *Coordinator) RunCell(ctx context.Context, k exp.CellKey) (sim.Metrics, bool, error) {
	spec, servable := co.specFor(k)
	if !servable {
		co.reg.Counter("dist.cells.unservable").Add(1)
		return sim.Metrics{}, false, nil
	}
	fp := k.Fingerprint()
	if m, ok := co.gathered(fp); ok {
		co.reg.Counter("dist.cells.deduped").Add(1)
		return m, true, nil
	}
	if co.cfg.Journal != nil {
		if m, ok := co.cfg.Journal.Lookup(k); ok {
			co.reg.Counter("dist.cells.replayed").Add(1)
			return m, true, nil
		}
	}

	var tried map[int]bool
	steal := false
	for {
		n, err := co.acquire(ctx, tried)
		if err == errNoWorkers {
			// Every worker is down or already failed this cell: decline
			// and let the caller simulate locally.
			co.reg.Counter("dist.cells.local_fallback").Add(1)
			co.events.Emit("cell_local_fallback", map[string]any{"cell": fp})
			return sim.Metrics{}, false, nil
		}
		if err != nil {
			return sim.Metrics{}, true, err
		}
		m, err := co.dispatch(ctx, n, spec, fp, steal)
		if err == nil {
			if co.cfg.Journal != nil {
				if jerr := co.cfg.Journal.Record(k, m); jerr != nil {
					return m, true, jerr
				}
			}
			co.record(fp, m)
			return m, true, nil
		}
		if ctx.Err() != nil {
			return sim.Metrics{}, true, err
		}
		var ce *client.Error
		if errors.As(err, &ce) && ce.Permanent && ce.Status != 0 && ce.Status != http.StatusNotFound {
			// The worker answered and rejected the spec itself (4xx):
			// every node validates identically, so re-dispatching cannot
			// help — decline to local, where the cell either runs fine
			// (e.g. a scale beyond the worker's -max-scale) or surfaces
			// the real error from the simulator.
			co.reg.Counter("dist.cells.rejected").Add(1)
			co.events.Emit("cell_rejected", map[string]any{"cell": fp, "node": n.addr, "error": err.Error()})
			return sim.Metrics{}, false, nil
		}
		// Availability failure (transport error, 5xx, exhausted retries,
		// circuit open, job repeatedly failed/vanished): take the node
		// out of rotation and steal the cell to another one.
		co.markDown(n, err)
		if tried == nil {
			tried = map[int]bool{}
		}
		tried[n.idx] = true
		steal = true
	}
}

// acquire blocks until a healthy node (not in tried) has a free
// dispatch slot, returning it with the slot reserved. errNoWorkers
// means no healthy untried node exists at all — waiting would be
// pointless until the prober re-admits one, and the caller prefers
// local fallback over stalling the campaign.
func (co *Coordinator) acquire(ctx context.Context, tried map[int]bool) (*node, error) {
	for {
		co.mu.Lock()
		var best *node
		candidates := false
		for _, n := range co.nodes {
			if tried[n.idx] || !n.healthy {
				continue
			}
			candidates = true
			if n.inflight >= co.cfg.MaxInflight {
				continue
			}
			if best == nil || n.score() < best.score() {
				best = n
			}
		}
		if best != nil {
			best.inflight++
			co.mu.Unlock()
			return best, nil
		}
		co.mu.Unlock()
		if !candidates {
			return nil, errNoWorkers
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-co.closed:
			return nil, errClosed
		case <-co.wake:
		case <-time.After(100 * time.Millisecond):
			// Periodic re-check: a single wake token can only rouse one
			// waiter, and node health may have changed without a release.
		}
	}
}

// dispatch runs one cell as a single-scheme job on n, releasing the
// reserved slot when done.
func (co *Coordinator) dispatch(ctx context.Context, n *node, spec srv.JobSpec, fp string, steal bool) (sim.Metrics, error) {
	defer co.release(n)
	co.mu.Lock()
	n.dispatched++
	if steal {
		n.stolen++
	}
	co.mu.Unlock()
	co.reg.Counter("dist.cells.dispatched").Add(1)
	if steal {
		co.reg.Counter("dist.cells.stolen").Add(1)
		co.events.Emit("cell_stolen", map[string]any{"cell": fp, "to": n.addr})
	}

	v, err := n.c.Run(ctx, spec)
	co.mu.Lock()
	if err != nil {
		n.failed++
	} else {
		n.completed++
	}
	co.mu.Unlock()
	if err != nil {
		co.reg.Counter("dist.cells.failed").Add(1)
		return sim.Metrics{}, err
	}
	if len(v.Results) != 1 {
		return sim.Metrics{}, fmt.Errorf("dist: job %s returned %d results, want 1", v.ID, len(v.Results))
	}
	co.reg.Counter("dist.cells.completed").Add(1)
	return v.Results[0], nil
}

// release frees a dispatch slot and wakes one blocked acquirer.
func (co *Coordinator) release(n *node) {
	co.mu.Lock()
	n.inflight--
	co.mu.Unlock()
	co.notify()
}

func (co *Coordinator) notify() {
	select {
	case co.wake <- struct{}{}:
	default:
	}
}

// markDown takes a node out of the dispatch rotation; the background
// prober re-admits it when /healthz and /readyz recover.
func (co *Coordinator) markDown(n *node, cause error) {
	co.mu.Lock()
	was := n.healthy
	n.healthy = false
	co.mu.Unlock()
	if was {
		co.reg.Counter("dist.node.down").Add(1)
		co.events.Emit("node_down", map[string]any{"node": n.addr, "error": cause.Error()})
	}
	// Waiters must re-evaluate: the node they were queueing for may
	// have been the last healthy one.
	co.notify()
}

// gathered returns an already-collected result by fingerprint.
func (co *Coordinator) gathered(fp string) (sim.Metrics, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	m, ok := co.results[fp]
	return m, ok
}

// record stores a gathered result. First write wins; duplicates (a
// steal racing a slow first dispatch) are byte-identical by cell
// determinism, so the dedup is itself deterministic.
func (co *Coordinator) record(fp string, m sim.Metrics) {
	co.mu.Lock()
	if _, dup := co.results[fp]; !dup {
		co.results[fp] = m
	}
	co.mu.Unlock()
}

// probeLoop periodically re-probes down nodes (re-admitting recovered
// ones) and refreshes healthy nodes' advisory load from GET /v1/jobs.
func (co *Coordinator) probeLoop() {
	defer co.probeWG.Done()
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.closed:
			return
		case <-t.C:
			co.probeOnce()
		}
	}
}

func (co *Coordinator) probeOnce() {
	for _, n := range co.nodes {
		co.mu.Lock()
		healthy := n.healthy
		co.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), co.cfg.ProbeInterval)
		if !healthy {
			if n.c.Health(ctx) == nil && n.c.Ready(ctx) == nil {
				co.mu.Lock()
				n.healthy = true
				co.mu.Unlock()
				co.reg.Counter("dist.node.up").Add(1)
				co.events.Emit("node_up", map[string]any{"node": n.addr})
				co.notify()
			}
		} else if sum, err := n.c.Jobs(ctx); err == nil {
			co.mu.Lock()
			n.load = sum.Queued + sum.Running
			co.mu.Unlock()
		}
		cancel()
	}
}

// Snapshot returns the fleet accounting for the run manifest.
func (co *Coordinator) Snapshot() *obsv.FleetInfo {
	co.mu.Lock()
	defer co.mu.Unlock()
	info := &obsv.FleetInfo{Gathered: uint64(len(co.results))}
	for _, n := range co.nodes {
		cs := n.c.Stats()
		info.Workers = append(info.Workers, obsv.FleetNode{
			Addr:           n.addr,
			Healthy:        n.healthy,
			Dispatched:     n.dispatched,
			Completed:      n.completed,
			Failed:         n.failed,
			Stolen:         n.stolen,
			ClientAttempts: cs.Attempts,
			ClientRetries:  cs.Retries,
			Breaker:        cs.BreakerState,
		})
		info.Dispatched += n.dispatched
		info.Completed += n.completed
		info.Failed += n.failed
		info.Stolen += n.stolen
	}
	return info
}
