package srv

// Streamed jobs over the HTTP surface: POST /v1/stream runs the
// windowed engine end to end (merged result + live per-window views),
// window results checkpoint through the cache journal at window
// granularity (a failed run resumes where it died), and the /v1 error
// envelope carries stable machine-readable codes. Plus the wire-format
// golden fixtures: every pre-RunSpec JobSpec body must keep decoding.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cobra/internal/exp"
	"cobra/internal/fault"
	"cobra/internal/sim"
	"cobra/internal/stream"
)

// streamSpec is the tiny streamed job the tests run: 3 windows of 256
// updates at scale 8.
func streamSpec() JobSpec {
	return JobSpec{RunSpec: exp.RunSpec{
		App: "StreamIngest", Input: "URND", Scale: 8, Seed: 9,
		Schemes: []sim.SchemeID{sim.SchemeIDCOBRA},
		Kind:    exp.KindStream, Windows: 3, WindowUpdates: 256,
	}}
}

// waitDone polls a job to a terminal state.
func waitDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch v.State {
		case JobDone, JobFailed, JobCanceled:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamJobEndToEnd: POST /v1/stream runs the windowed engine and
// the job view carries one merged result plus per-window metrics that
// are byte-identical (over JSON) to driving the stream engine directly.
func TestStreamJobEndToEnd(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	spec := streamSpec()
	spec.Kind = "" // the endpoint forces it

	code, body := postJSON(t, ts.URL+"/v1/stream", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/stream = %d: %s", code, body)
	}
	var accepted JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Spec.Kind != exp.KindStream {
		t.Fatalf("accepted kind = %q, want %q", accepted.Spec.Kind, exp.KindStream)
	}
	v := waitDone(t, ts.URL, accepted.ID)
	if v.State != JobDone {
		t.Fatalf("stream job ended %s: %s", v.State, v.Error)
	}
	if len(v.Results) != 1 || len(v.Windows) != 3 {
		t.Fatalf("results/windows = %d/%d, want 1/3", len(v.Results), len(v.Windows))
	}
	if v.CacheMisses != 3 || v.CacheHits != 0 {
		t.Fatalf("hits/misses = %d/%d, want 0/3", v.CacheHits, v.CacheMisses)
	}

	// Direct engine run with the normalized spec: same windows, same fold.
	norm := streamSpec()
	if _, err := norm.normalize(Config{}.withDefaults()); err != nil {
		t.Fatal(err)
	}
	w, err := norm.StreamWorkload()
	if err != nil {
		t.Fatal(err)
	}
	r, err := stream.Run(w, stream.Config{Scheme: sim.SchemeCOBRA, Arch: sim.DefaultArch()})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(struct {
		R []sim.Metrics
		W []sim.Metrics
	}{v.Results, v.Windows})
	want, _ := json.Marshal(struct {
		R []sim.Metrics
		W []sim.Metrics
	}{[]sim.Metrics{r.Merged}, r.PerWindow})
	if !bytes.Equal(got, want) {
		t.Fatalf("service stream metrics diverge from the engine:\n got %s\nwant %s", got, want)
	}
	if reg.Counter("srv.stream.windows_done").Value() != 3 {
		t.Fatalf("windows_done = %v, want 3", reg.Counter("srv.stream.windows_done").Value())
	}
}

// TestStreamJobWindowResume: a completion fault kills the streamed job
// after its first window is journaled; the resubmission replays that
// window from the cache and computes only the rest — checkpoint/resume
// at window granularity through the existing journal.
func TestStreamJobWindowResume(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "cache.jsonl")
	_, ts, reg := newTestServer(t, func(c *Config) { c.CachePath = cachePath })

	// Window 1 records cleanly, window 2's completion fails.
	plan, err := fault.Parse("srv.worker.complete:at=2:err=eio")
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	defer fault.Deactivate()

	spec := streamSpec()
	code, body := postJSON(t, ts.URL+"/v1/run", spec)
	if code != http.StatusInternalServerError {
		t.Fatalf("faulted stream run = %d: %s", code, body)
	}
	var failed JobView
	if err := json.Unmarshal(body, &failed); err != nil {
		t.Fatal(err)
	}
	if failed.State != JobFailed || len(failed.Windows) != 1 {
		t.Fatalf("failed view: state=%s windows=%d, want failed/1", failed.State, len(failed.Windows))
	}

	fault.Deactivate()
	code, body = postJSON(t, ts.URL+"/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("resumed stream run = %d: %s", code, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.CacheHits != 1 || v.CacheMisses != 2 {
		t.Fatalf("resume hits/misses = %d/%d, want 1/2", v.CacheHits, v.CacheMisses)
	}
	if len(v.Windows) != 3 || len(v.Results) != 1 {
		t.Fatalf("resumed results/windows = %d/%d, want 1/3", len(v.Results), len(v.Windows))
	}
	if reg.Counter("srv.stream.windows_replayed").Value() != 1 {
		t.Fatalf("windows_replayed = %v, want 1", reg.Counter("srv.stream.windows_replayed").Value())
	}

	// A third, identical run replays every window.
	code, body = postJSON(t, ts.URL+"/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("replayed stream run = %d: %s", code, body)
	}
	var replay JobView
	if err := json.Unmarshal(body, &replay); err != nil {
		t.Fatal(err)
	}
	if replay.CacheHits != 3 || replay.CacheMisses != 0 {
		t.Fatalf("full replay hits/misses = %d/%d, want 3/0", replay.CacheHits, replay.CacheMisses)
	}
	a, _ := json.Marshal(v.Results)
	b, _ := json.Marshal(replay.Results)
	if !bytes.Equal(a, b) {
		t.Fatalf("replayed merged result diverged:\n%s\n%s", a, b)
	}
}

// TestStreamJobValidation: stream-specific rejections flow through the
// same 400 path as every other invalid spec.
func TestStreamJobValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"two schemes", `{"app":"StreamIngest","input":"URND","schemes":["Baseline","COBRA"],"kind":"stream"}`},
		{"offline app", `{"app":"DegreeCount","input":"URND","schemes":["Baseline"],"kind":"stream"}`},
		{"unstreamable scheme", `{"app":"StreamIngest","input":"URND","schemes":["PB-SW-IDEAL"],"kind":"stream"}`},
		{"windows without kind", `{"app":"DegreeCount","input":"URND","schemes":["Baseline"],"windows":3}`},
		{"unknown kind", `{"app":"DegreeCount","input":"URND","schemes":["Baseline"],"kind":"batch"}`},
	}
	for _, tc := range cases {
		for _, ep := range []string{"/v1/jobs", "/v1/stream"} {
			if tc.name == "windows without kind" && ep == "/v1/stream" {
				continue // the endpoint forces kind=stream, making this one valid
			}
			resp, err := http.Post(ts.URL+ep, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var eb ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", tc.name, ep, resp.StatusCode)
			}
			if eb.Code != ErrCodeInvalidSpec {
				t.Errorf("%s %s: code %q, want %q", tc.name, ep, eb.Code, ErrCodeInvalidSpec)
			}
		}
	}
}

// TestErrorEnvelope pins the /v1 error contract: stable code, human
// message, structured details, and the legacy "error" mirror.
func TestErrorEnvelope(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != ErrCodeNotFound || eb.Message == "" {
		t.Fatalf("envelope = %+v", eb)
	}
	if eb.Details["id"] != "j-999999" {
		t.Fatalf("details = %v, want id=j-999999", eb.Details)
	}
	if eb.Legacy != eb.Message {
		t.Fatalf("legacy mirror %q != message %q", eb.Legacy, eb.Message)
	}
}

// TestJobSpecWireFixtures: golden pre-RunSpec request bodies (captured
// from the flat JobSpec era) must keep decoding into the embedded
// RunSpec form, including legacy lower-case scheme spellings, and the
// canonical encoding must stay stable.
func TestJobSpecWireFixtures(t *testing.T) {
	fixtures := []struct {
		name string
		body string
		want JobSpec
	}{
		{
			"flat offline spec",
			`{"app":"DegreeCount","input":"URND","scale":10,"seed":7,"schemes":["Baseline","PB-SW","COBRA"],"bins":16,"nuca":true,"timeout_ms":60000}`,
			JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 10, Seed: 7,
				Schemes: []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDPBSW, sim.SchemeIDCOBRA},
				Bins:    16, NUCA: true}, TimeoutMS: 60_000},
		},
		{
			"legacy scheme case",
			`{"app":"PageRank","input":"KRON","schemes":["baseline","cobra-comm","phi"]}`,
			JobSpec{RunSpec: exp.RunSpec{App: "PageRank", Input: "KRON",
				Schemes: []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDComm, sim.SchemeIDPHI}}},
		},
		{
			"multi-core spec",
			`{"app":"DegreeCount","input":"URND","scale":9,"schemes":["COBRA"],"cores":4}`,
			JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 9,
				Schemes: []sim.SchemeID{sim.SchemeIDCOBRA}, Cores: 4}},
		},
	}
	for _, tc := range fixtures {
		var got JobSpec
		dec := json.NewDecoder(strings.NewReader(tc.body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("%s: old wire body no longer decodes: %v", tc.name, err)
		}
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(tc.want)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: decoded %s, want %s", tc.name, a, b)
		}
	}

	// Canonical encoding: typed schemes marshal as canonical names and
	// the stream knobs only appear when set.
	out, err := json.Marshal(streamSpec())
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"app":"StreamIngest","input":"URND","scale":8,"seed":9,"schemes":["COBRA"],"kind":"stream","windows":3,"window_updates":256}`
	if string(out) != want {
		t.Fatalf("canonical encoding drifted:\n got %s\nwant %s", out, want)
	}
}
