package srv

// Server: bounded job queue + worker pool + result cache.
//
// Request path:  handler -> validate -> enqueue (non-blocking; a full
// queue is backpressure, HTTP 429) -> worker dequeues -> each scheme
// runs as one exp cell (panic isolation, per-cell timeout) through the
// fingerprint-keyed result cache -> job reaches a terminal state and
// wakes sync waiters.
//
// Shutdown path (Drain): flip readiness, stop intake, cancel
// never-started queued jobs, wait for in-flight jobs to finish, then
// flush and close the cache journal. The caller (cmd/cobrad) wires
// this to the first SIGINT/SIGTERM; a second signal aborts hard.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cobra/internal/exp"
	"cobra/internal/fault"
	"cobra/internal/mem"
	"cobra/internal/obsv"
	"cobra/internal/sim"
	"cobra/internal/stream"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the job worker pool size (<= 0: one per CPU).
	Workers int
	// QueueDepth bounds the job queue; a full queue rejects with 429
	// (<= 0: 64).
	QueueDepth int
	// MaxInflight, when > 0, caps jobs admitted but not yet settled
	// (queued + running): submissions beyond it reject with 429 even
	// while the queue has room. Bounds worker memory precisely, and
	// lets the fleet smoke test provoke Retry-After redistribution
	// deterministically. 0 disables the cap.
	MaxInflight int
	// DefaultScale fills JobSpec.Scale == 0 (<= 0: 16).
	DefaultScale int
	// MaxScale caps job scale (0: exp.MaxScale).
	MaxScale int
	// MaxCores caps the per-job simulated core count (<= 0: 64).
	MaxCores int
	// DefaultJobTimeout bounds jobs that do not ask for a timeout
	// (<= 0: 5m); MaxJobTimeout clamps requested ones (<= 0: 30m).
	DefaultJobTimeout time.Duration
	MaxJobTimeout     time.Duration
	// Arch is the base architecture for every job (zero: Table II
	// defaults). Jobs may toggle the NUCA knob per request.
	Arch sim.Arch
	// CachePath, when set, persists the result cache as an fsync'd
	// JSONL journal (the figures checkpoint format). CacheReset
	// truncates an existing file instead of resuming from it.
	CachePath  string
	CacheReset bool
	// Reg receives service metrics; nil disables instrumentation
	// (zero-cost, per the obsv contract).
	Reg *obsv.Registry
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultScale <= 0 {
		c.DefaultScale = 16
	}
	if c.MaxScale <= 0 || c.MaxScale > exp.MaxScale {
		c.MaxScale = exp.MaxScale
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 64
	}
	if c.DefaultJobTimeout <= 0 {
		c.DefaultJobTimeout = 5 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 30 * time.Minute
	}
	var zero sim.Arch
	if c.Arch == zero {
		c.Arch = sim.DefaultArch()
	}
	return c
}

// Server is the cobrad simulation service.
type Server struct {
	cfg     Config
	reg     *obsv.Registry
	cache   *resultCache
	journal *exp.Journal
	archFP  map[bool]string // NUCA toggle -> arch fingerprint

	// qmu serializes intake against queue close; draining flips once.
	qmu      sync.Mutex
	queue    chan *Job
	draining atomic.Bool

	jmu  sync.RWMutex
	jobs map[string]*Job
	seq  atomic.Uint64

	inflight atomic.Int64
	// active counts jobs admitted but not yet settled (queued +
	// running); the MaxInflight cap rejects on it.
	active   atomic.Int64
	started  atomic.Bool
	wg       sync.WaitGroup
	drainDo  sync.Once
	drainErr error
}

// New builds a Server (opening the cache journal if configured) but
// does not start its workers; call Start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   cfg.Reg,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  map[string]*Job{},
	}
	if cfg.CachePath != "" {
		j, err := exp.OpenJournal(cfg.CachePath, !cfg.CacheReset)
		if err != nil {
			return nil, fmt.Errorf("srv: opening result cache: %w", err)
		}
		s.journal = j
	}
	s.cache = newResultCache(s.journal, s.reg)
	// Architecture fingerprints are pure functions of the config; both
	// NUCA variants are precomputed so the job hot path never hashes.
	nucaArch := cfg.Arch
	nucaArch.Mem.NUCA = mem.DefaultNUCA()
	s.archFP = map[bool]string{
		false: exp.ArchFingerprint(cfg.Arch),
		true:  exp.ArchFingerprint(nucaArch),
	}
	return s, nil
}

// CacheLen reports the number of fingerprints in the result cache
// (restored + recorded).
func (s *Server) CacheLen() int { return s.cache.len() }

// Start launches the worker pool. Safe to call once.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.reg.Gauge("srv.queue.depth").Set(float64(len(s.queue)))
				if s.draining.Load() {
					// Drain: never-started jobs are canceled, not run —
					// "drain in-flight" must not mean "run the backlog".
					job.cancel(time.Now())
					s.active.Add(-1)
					s.reg.Counter("srv.jobs.canceled").Add(1)
					continue
				}
				s.runJob(job)
			}
		}()
	}
}

// Drain performs the graceful-shutdown sequence: stop intake, cancel
// queued jobs, wait (bounded by ctx) for in-flight jobs, then flush
// and close the cache journal. Idempotent; later calls return the
// first outcome.
func (s *Server) Drain(ctx context.Context) error {
	s.drainDo.Do(func() {
		s.qmu.Lock()
		s.draining.Store(true)
		close(s.queue)
		s.qmu.Unlock()

		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.drainErr = fmt.Errorf("srv: drain interrupted with %d jobs in flight: %w",
				s.inflight.Load(), ctx.Err())
		}
		if s.journal != nil {
			// The journal fsyncs per record; Close flushes the handle. Done
			// after the workers stop so every drained job's cells are on disk.
			if err := s.journal.Close(); err != nil && s.drainErr == nil {
				s.drainErr = fmt.Errorf("srv: closing result cache: %w", err)
			}
		}
	})
	return s.drainErr
}

// Draining reports whether the server has begun (or finished)
// draining; /readyz flips on it.
func (s *Server) Draining() bool { return s.draining.Load() }

// errQueueFull and errDraining classify intake rejections.
var (
	errQueueFull = fmt.Errorf("srv: job queue full")
	errDraining  = fmt.Errorf("srv: server is draining")
)

// submit validates a spec and enqueues a job. The returned error is
// nil (job accepted), errQueueFull (backpressure), errDraining, or a
// validation error.
func (s *Server) submit(spec JobSpec) (*Job, error) {
	schemes, err := spec.normalize(s.cfg)
	if err != nil {
		s.reg.Counter("srv.jobs.rejected_invalid").Add(1)
		return nil, err
	}
	if err := fault.Hit(fault.PointSrvAdmit); err != nil {
		s.reg.Counter("srv.jobs.rejected_injected").Add(1)
		return nil, err
	}
	id := fmt.Sprintf("j-%06d", s.seq.Add(1))
	job := newJob(id, spec, schemes, time.Now())

	s.qmu.Lock()
	if s.draining.Load() {
		s.qmu.Unlock()
		s.reg.Counter("srv.jobs.rejected_draining").Add(1)
		return nil, errDraining
	}
	if s.cfg.MaxInflight > 0 && int(s.active.Load()) >= s.cfg.MaxInflight {
		s.qmu.Unlock()
		s.reg.Counter("srv.jobs.rejected_full").Add(1)
		return nil, errQueueFull
	}
	select {
	case s.queue <- job:
		s.active.Add(1)
		s.qmu.Unlock()
	default:
		s.qmu.Unlock()
		s.reg.Counter("srv.jobs.rejected_full").Add(1)
		return nil, errQueueFull
	}

	s.jmu.Lock()
	s.jobs[id] = job
	s.jmu.Unlock()
	s.reg.Counter("srv.jobs.accepted").Add(1)
	s.reg.Gauge("srv.queue.depth").Set(float64(len(s.queue)))
	return job, nil
}

// lookup returns a submitted job by id.
func (s *Server) lookup(id string) (*Job, bool) {
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobsSummary is the GET /v1/jobs payload: lifecycle counts plus the
// most recent job views. It is the one-call answer to "how loaded is
// this node" — the fleet coordinator polls it for load-aware dispatch
// and cobractl's jobs subcommand renders it.
type JobsSummary struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// Workers and QueueCap describe the node's capacity; CacheSize is
	// the fingerprint count of its result cache.
	Workers   int `json:"workers"`
	QueueCap  int `json:"queue_cap"`
	CacheSize int `json:"cache_size"`
	// Recent holds the newest jobsSummaryLimit views, newest first,
	// with Results stripped: the list is for dashboards and dispatch
	// decisions, not bulk result transfer (fetch /v1/jobs/{id} for a
	// job's metrics).
	Recent []JobView `json:"recent,omitempty"`
}

// jobsSummaryLimit caps JobsSummary.Recent.
const jobsSummaryLimit = 20

// jobsSummary snapshots the job table.
func (s *Server) jobsSummary() JobsSummary {
	s.jmu.RLock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.View())
	}
	s.jmu.RUnlock()

	sum := JobsSummary{
		Workers:   s.cfg.Workers,
		QueueCap:  s.cfg.QueueDepth,
		CacheSize: s.cache.len(),
	}
	for i := range views {
		switch views[i].State {
		case JobQueued:
			sum.Queued++
		case JobRunning:
			sum.Running++
		case JobDone:
			sum.Done++
		case JobFailed:
			sum.Failed++
		case JobCanceled:
			sum.Canceled++
		}
		views[i].Results = nil
	}
	// Ids are zero-padded sequence numbers, so lexical order is
	// submission order; newest first.
	sort.Slice(views, func(a, b int) bool { return views[a].ID > views[b].ID })
	if len(views) > jobsSummaryLimit {
		views = views[:jobsSummaryLimit]
	}
	sum.Recent = views
	return sum
}

// timeoutFor resolves a job's effective wall-clock budget.
func (s *Server) timeoutFor(spec JobSpec) time.Duration {
	if spec.TimeoutMS > 0 {
		return time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	return s.cfg.DefaultJobTimeout
}

// runJob executes one job on the calling worker goroutine: every
// scheme is one exp cell with panic isolation and a per-cell deadline,
// and every cell goes through the fingerprint cache. Streamed jobs run
// their windows sequentially inside one cell, each window individually
// cached and checkpointed.
func (s *Server) runJob(job *Job) {
	job.setRunning(time.Now())
	s.reg.Gauge("srv.jobs.inflight").Set(float64(s.inflight.Add(1)))
	defer func() {
		s.reg.Gauge("srv.jobs.inflight").Set(float64(s.inflight.Add(-1)))
		s.active.Add(-1)
	}()

	timeout := s.timeoutFor(job.spec)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ctx = exp.WithCellTimeout(ctx, timeout)

	// The canonical knob order (NUCA, then cores) lives in RunSpec.Arch;
	// the single-core fingerprint pair is precomputed so the hot path
	// never hashes.
	arch := job.spec.Arch(s.cfg.Arch)
	archFP := s.archFP[job.spec.NUCA]
	if job.spec.Cores > 1 {
		// Multi-core jobs are the cold path: the sharded arch differs per
		// core count, so its fingerprint is hashed here instead of being
		// served from the precomputed single-core pair.
		archFP = exp.ArchFingerprint(arch)
	}

	if job.spec.Kind == exp.KindStream {
		s.runStreamJob(ctx, job, arch, archFP)
		return
	}

	var hits, misses atomic.Int64
	// Schemes run serially within the job (workers=1): the service's
	// parallelism unit is the job worker pool, and serial cells keep
	// per-scheme latency attribution exact.
	results, err := exp.MapCellsCtx(ctx, 1, len(job.schemes), func(ctx context.Context, i int) (sim.Metrics, error) {
		scheme := job.schemes[i]
		key := job.spec.CellKeyFP("srv", scheme, archFP)
		t := s.reg.Timer("srv.scheme." + scheme.String() + ".wall")
		m, hit, err := s.cache.getOrRun(key, func() (sim.Metrics, error) {
			app, err := exp.BuildApp(job.spec.App, job.spec.Input, job.spec.Scale, job.spec.Seed)
			if err != nil {
				return sim.Metrics{}, err
			}
			m, err := exp.RunScheme(app, scheme.Scheme(), job.spec.Bins, arch)
			if err != nil {
				return sim.Metrics{}, err
			}
			// Completion fault: the simulation finished, but the worker
			// "dies" before the result lands. Firing inside the compute
			// closure guarantees a fired fault discards the metrics and is
			// never cached — the cache's error-never-cached contract under
			// test in the backpressure suite.
			if ferr := fault.Hit(fault.PointSrvComplete); ferr != nil {
				return sim.Metrics{}, ferr
			}
			return m, nil
		})
		t.Stop()
		if err == nil {
			if hit {
				hits.Add(1)
			} else {
				misses.Add(1)
			}
		}
		return m, err
	})
	if err != nil {
		s.reg.Counter("srv.jobs.failed").Add(1)
	} else {
		s.reg.Counter("srv.jobs.completed").Add(1)
	}
	job.finish(results, int(hits.Load()), int(misses.Load()), err, time.Now())
}

// runStreamJob executes one streamed job: the windowed engine drives
// the job's single scheme over every window, each window cached and
// checkpointed individually under CellKey.Window (so a killed server
// resumes a re-submitted stream at window granularity from its cache
// journal), and per-window progress lands in the job view and the
// /metrics registry as windows complete. Results carries the one
// MergeMetrics fold; JobView.Windows the per-window metrics.
//
// Stream windows bypass the cache's single-flight layer: windows of
// one run are strictly sequential, and concurrent identical stream
// jobs dedupe through the journal after each window instead.
func (s *Server) runStreamJob(ctx context.Context, job *Job, arch sim.Arch, archFP string) {
	scheme := job.schemes[0]
	base := job.spec.CellKeyFP("srv", scheme, archFP)
	var hits, misses atomic.Int64
	t := s.reg.Timer("srv.scheme." + scheme.String() + ".wall")
	// The whole streamed run is one exp cell: one panic barrier, one
	// deadline, windows sequential inside.
	results, err := exp.MapCellsCtx(ctx, 1, 1, func(ctx context.Context, _ int) (sim.Metrics, error) {
		w, err := job.spec.StreamWorkload()
		if err != nil {
			return sim.Metrics{}, err
		}
		r, err := stream.Run(w, stream.Config{
			Scheme: scheme.Scheme(),
			Bins:   job.spec.Bins,
			Arch:   arch,
			Ctx:    ctx,
			Lookup: func(i int) (sim.Metrics, bool) {
				k := base
				k.Window = i + 1
				return s.cache.lookup(k)
			},
			Record: func(i int, m sim.Metrics) error {
				k := base
				k.Window = i + 1
				if ferr := fault.Hit(fault.PointSrvComplete); ferr != nil {
					return ferr
				}
				return s.cache.record(k, m)
			},
			OnWindow: func(i int, m sim.Metrics, replayed bool) {
				if replayed {
					hits.Add(1)
					s.reg.Counter("srv.stream.windows_replayed").Add(1)
				} else {
					misses.Add(1)
					s.reg.Counter("srv.stream.windows_done").Add(1)
				}
				s.reg.Gauge("srv.stream.window").Set(float64(i + 1))
				job.windowDone(m)
			},
		})
		if err != nil {
			return sim.Metrics{}, err
		}
		return r.Merged, nil
	})
	t.Stop()
	if err != nil {
		s.reg.Counter("srv.jobs.failed").Add(1)
	} else {
		s.reg.Counter("srv.jobs.completed").Add(1)
	}
	job.finish(results, int(hits.Load()), int(misses.Load()), err, time.Now())
}
