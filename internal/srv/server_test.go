package srv

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"cobra/internal/exp"
	"cobra/internal/obsv"
	"cobra/internal/sim"
)

// newTestServer builds a started server + httptest frontend with a
// fresh registry, and tears both down at test end.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server, *obsv.Registry) {
	t.Helper()
	reg := obsv.New()
	cfg := Config{
		Workers:           2,
		QueueDepth:        8,
		DefaultScale:      8,
		MaxScale:          12,
		DefaultJobTimeout: time.Minute,
		Reg:               reg,
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return s, ts, reg
}

// postJSON posts a spec and decodes the JobView (or error) body.
func postJSON(t *testing.T, url string, spec any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestRunSyncByteIdenticalToDirect is the end-to-end acceptance test:
// a job submitted over HTTP returns metrics byte-identical (after a
// JSON round-trip) to calling exp.RunScheme directly with the same
// cell parameters.
func TestRunSyncByteIdenticalToDirect(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	spec := JobSpec{RunSpec: exp.RunSpec{
		App: "DegreeCount", Input: "URND", Scale: 10, Seed: 7,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDPBSW, sim.SchemeIDCOBRA}, Bins: 16,
	}}
	code, body := postJSON(t, ts.URL+"/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/run = %d: %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.State != JobDone || len(view.Results) != 3 {
		t.Fatalf("view = %+v", view)
	}

	app, err := exp.BuildApp(spec.App, spec.Input, spec.Scale, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	arch := sim.DefaultArch()
	var direct []sim.Metrics
	for _, id := range spec.Schemes {
		m, err := exp.RunScheme(app, id.Scheme(), spec.Bins, arch)
		if err != nil {
			t.Fatal(err)
		}
		direct = append(direct, m)
	}
	got, err := json.Marshal(view.Results)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service metrics differ from direct RunScheme:\n got %s\nwant %s", got, want)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"unknown app", `{"app":"NoSuchApp","input":"URND","schemes":["Baseline"]}`},
		{"unknown input", `{"app":"DegreeCount","input":"NOPE","schemes":["Baseline"]}`},
		{"unknown scheme", `{"app":"DegreeCount","input":"URND","schemes":["Fastest"]}`},
		{"no schemes", `{"app":"DegreeCount","input":"URND"}`},
		{"duplicate scheme", `{"app":"DegreeCount","input":"URND","schemes":["Baseline","Baseline"]}`},
		{"scale too small", `{"app":"DegreeCount","input":"URND","scale":2,"schemes":["Baseline"]}`},
		{"scale too large", `{"app":"DegreeCount","input":"URND","scale":29,"schemes":["Baseline"]}`},
		{"negative bins", `{"app":"DegreeCount","input":"URND","bins":-1,"schemes":["Baseline"]}`},
		{"unknown field", `{"app":"DegreeCount","input":"URND","schems":["Baseline"]}`},
		{"malformed json", `{"app":`},
	}
	for _, tc := range cases {
		for _, ep := range []string{"/v1/jobs", "/v1/run"} {
			resp, err := http.Post(ts.URL+ep, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", tc.name, ep, resp.StatusCode)
			}
		}
	}
}

func TestAsyncJobLifecycleAndCacheHit(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 9, Seed: 3,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}

	code, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.ID == "" || (view.State != JobQueued && view.State != JobRunning) {
		t.Fatalf("accepted view = %+v", view)
	}

	// Poll until terminal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.State == JobDone {
			if len(v.Results) != 1 || v.Results[0].Scheme != sim.SchemeBaseline {
				t.Fatalf("done view = %+v", v)
			}
			if v.CacheMisses != 1 {
				t.Fatalf("first run cache_misses = %d, want 1", v.CacheMisses)
			}
			break
		}
		if v.State == JobFailed || v.State == JobCanceled {
			t.Fatalf("job ended %s: %s", v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An identical spec is served from the fingerprint cache.
	code, body = postJSON(t, ts.URL+"/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("second run = %d: %s", code, body)
	}
	var second JobView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 1 || second.CacheMisses != 0 {
		t.Fatalf("second run hits/misses = %d/%d, want 1/0", second.CacheHits, second.CacheMisses)
	}
	if reg.Counter("srv.cache.hits").Value() == 0 {
		t.Fatal("srv.cache.hits counter never moved")
	}

	// Unknown job id is a 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestRuntimeFailureIs500(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	// COBRA-COMM on a non-commutative app passes name validation but
	// fails at run time (§III-B) — surfaced as a failed job, not a
	// wedged one.
	spec := JobSpec{RunSpec: exp.RunSpec{App: "NeighborPopulate", Input: "URND", Scale: 8,
		Schemes: []sim.SchemeID{sim.SchemeIDComm}}}
	code, body := postJSON(t, ts.URL+"/v1/run", spec)
	if code != http.StatusInternalServerError {
		t.Fatalf("status = %d: %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.State != JobFailed || view.Error == "" {
		t.Fatalf("view = %+v", view)
	}
}

func TestHealthAndReadyFlipOnDrain(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain /readyz = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain /healthz = %d, want 200 (liveness outlives readiness)", resp.StatusCode)
	}
	// Submissions after drain are 503, not 429 or 200.
	code, _ := postJSON(t, ts.URL+"/v1/jobs", JobSpec{RunSpec: exp.RunSpec{
		App: "DegreeCount", Input: "URND", Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d, want 503", code)
	}
}

// promSample matches a Prometheus text-format sample line.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9+.eEIn-]+$`)

func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8, Seed: 1,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
	if code, body := postJSON(t, ts.URL+"/v1/run", spec); code != http.StatusOK {
		t.Fatalf("run = %d: %s", code, body)
	}
	// Run it twice so the hit counter moves.
	if code, body := postJSON(t, ts.URL+"/v1/run", spec); code != http.StatusOK {
		t.Fatalf("rerun = %d: %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, ln := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(ln, "# TYPE ") {
			continue
		}
		if !promSample.MatchString(ln) {
			t.Fatalf("unparseable exposition line %q", ln)
		}
	}
	for _, want := range []string{
		"# TYPE srv_queue_depth gauge",
		"# TYPE srv_cache_hits counter",
		"srv_cache_hits 1",
		"srv_cache_misses 1",
		"# TYPE srv_scheme_Baseline_wall histogram",
		"srv_scheme_Baseline_wall_count 2",
		`srv_scheme_Baseline_wall_bucket{le="+Inf"} 2`,
		"srv_jobs_completed 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestCacheSurvivesRestart(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "cache.jsonl")
	spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 9, Seed: 11,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDCOBRA}}}

	run := func(wantHits, wantMisses int) JobView {
		t.Helper()
		_, ts, _ := newTestServer(t, func(c *Config) { c.CachePath = cachePath })
		code, body := postJSON(t, ts.URL+"/v1/run", spec)
		if code != http.StatusOK {
			t.Fatalf("run = %d: %s", code, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.CacheHits != wantHits || v.CacheMisses != wantMisses {
			t.Fatalf("hits/misses = %d/%d, want %d/%d", v.CacheHits, v.CacheMisses, wantHits, wantMisses)
		}
		return v
	}
	first := run(0, 2)  // cold: both schemes simulated and journaled
	second := run(2, 0) // new server, same journal: both replayed

	a, _ := json.Marshal(first.Results)
	b, _ := json.Marshal(second.Results)
	if !bytes.Equal(a, b) {
		t.Fatalf("restart changed results:\n%s\n%s", a, b)
	}
}

func TestSubmitTimeoutClamped(t *testing.T) {
	s, _, _ := newTestServer(t, func(c *Config) { c.MaxJobTimeout = 50 * time.Millisecond })
	spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}, TimeoutMS: 10_000}
	job, err := s.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.timeoutFor(job.spec); got != 50*time.Millisecond {
		t.Fatalf("timeout = %v, want clamp to 50ms", got)
	}
	<-job.Done()
}

func TestMethodDiscipline(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/jobs = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", resp.StatusCode)
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	cfg := Config{DefaultScale: 12}.withDefaults()
	sp := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND",
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
	schemes, err := sp.normalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scale != 12 {
		t.Fatalf("default scale = %d, want 12", sp.Scale)
	}
	if len(schemes) != 1 || schemes[0] != sim.SchemeIDBaseline {
		t.Fatalf("schemes = %v", schemes)
	}
	// Fingerprint equality across NUCA must differ.
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.archFP[false] == s.archFP[true] {
		t.Fatal("NUCA toggle does not change the arch fingerprint")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
