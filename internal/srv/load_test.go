package srv

// Load/robustness tests — these are the ones `make race` runs with
// -race: 64+ concurrent requests against a deliberately small queue
// must produce only successes and clean backpressure (no 500s, no
// deadlock), duplicates must collapse onto the fingerprint cache, and
// a drain in the middle of load must settle every accepted job.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"cobra/internal/exp"
	"cobra/internal/sim"
)

// fire posts spec to url and returns the status code (0 on transport
// error, which the tests treat as a failure unless draining).
func fire(t *testing.T, client *http.Client, url string, spec JobSpec) int {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var sink bytes.Buffer
	sink.ReadFrom(resp.Body)
	return resp.StatusCode
}

func TestLoadBackpressureOnlySuccessOr429(t *testing.T) {
	_, ts, oreg := newTestServer(t, func(c *Config) {
		c.Workers = 2
		c.QueueDepth = 4
	})

	spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8, Seed: 5,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
	const n = 64
	codes := make([]int, n)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 60 * time.Second}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mix sync and async submissions: both must respect
			// backpressure the same way.
			if i%4 == 0 {
				codes[i] = fire(t, client, ts.URL+"/v1/jobs", spec)
			} else {
				codes[i] = fire(t, client, ts.URL+"/v1/run", spec)
			}
		}(i)
	}
	wg.Wait()

	counts := map[int]int{}
	for _, c := range codes {
		counts[c]++
	}
	for code := range counts {
		if code != http.StatusOK && code != http.StatusAccepted && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d under load (histogram %v)", code, counts)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("no sync request ever succeeded: %v", counts)
	}
	// Identical cells must collapse onto the fingerprint cache.
	if oreg.Counter("srv.cache.hits").Value() == 0 {
		t.Fatal("64 identical requests produced zero cache hits")
	}
	if oreg.Counter("srv.cache.misses").Value() == 0 {
		t.Fatal("cache miss counter never moved (nothing simulated?)")
	}
}

func TestDrainDuringLoadSettlesEveryAcceptedJob(t *testing.T) {
	s, ts, oreg := newTestServer(t, func(c *Config) {
		c.Workers = 2
		c.QueueDepth = 8
	})

	// Vary seeds so the queue actually fills with distinct work.
	const n = 48
	codes := make([]int, n)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 60 * time.Second}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8,
				Seed: uint64(i % 6), Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
			codes[i] = fire(t, client, ts.URL+"/v1/run", spec)
		}(i)
	}

	// Drain mid-flight — but only after at least one job has actually
	// completed, so the final "drain completed nothing" assertion can't
	// trip on a loaded machine where drain wins the race against the
	// first worker dequeue (canceling everything is then correct
	// behaviour, but makes this test vacuous).
	for deadline := time.Now().Add(20 * time.Second); oreg.Counter("srv.jobs.completed").Value() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no job completed within 20s under load")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	wg.Wait()

	// Every request resolved to success, backpressure, or the drain
	// rejection/cancellation — never a 500 and never a hang.
	for i, c := range codes {
		switch c {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("request %d got status %d", i, c)
		}
	}
	// After the drain, every known job is terminal.
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	for id, j := range s.jobs {
		v := j.View()
		switch v.State {
		case JobDone, JobFailed, JobCanceled:
		default:
			t.Fatalf("job %s left in state %s after drain", id, v.State)
		}
	}
	if oreg.Counter("srv.jobs.completed").Value() == 0 {
		t.Fatal("drain completed nothing")
	}
}
