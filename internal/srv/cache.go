package srv

// Content-addressed result cache. Every scheme execution the service
// performs is one simulation cell — a deterministic function of
// (app, input, scale, seed, scheme, bins, arch) — so results are
// addressed by the exact checkpoint cell fingerprint cmd/figures
// journals under (exp.CellKey.Fingerprint). Three layers:
//
//  1. single-flight: concurrent requests for the same fingerprint
//     collapse onto one computation; waiters count as cache hits.
//  2. the persistent journal (optional): the same fsync'd JSONL format
//     as figure checkpoints, so the cache survives restarts and a
//     cobrad cache file can even seed a figures -resume run.
//  3. a plain in-memory map when no journal is configured.
//
// Errors are never cached: a failed computation propagates to its
// waiters, and the next request recomputes.

import (
	"fmt"
	"sync"

	"cobra/internal/exp"
	"cobra/internal/obsv"
	"cobra/internal/sim"
)

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	m    sim.Metrics
	err  error
}

// resultCache is the fingerprint-keyed result store.
type resultCache struct {
	reg     *obsv.Registry // nil-safe
	journal *exp.Journal   // optional persistence

	mu       sync.Mutex
	mem      map[string]sim.Metrics // used when journal == nil
	inflight map[string]*flight
}

func newResultCache(journal *exp.Journal, reg *obsv.Registry) *resultCache {
	return &resultCache{
		reg:      reg,
		journal:  journal,
		mem:      map[string]sim.Metrics{},
		inflight: map[string]*flight{},
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	if c.journal != nil {
		return c.journal.Len()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// lookupLocked consults the persistent or in-memory store. Caller
// holds c.mu.
func (c *resultCache) lookupLocked(key exp.CellKey, fp string) (sim.Metrics, bool) {
	if c.journal != nil {
		return c.journal.Lookup(key)
	}
	m, ok := c.mem[fp]
	return m, ok
}

// getOrRun returns the cached metrics for key, computing (and
// recording) them on a miss. The boolean reports a cache hit — a
// stored result or a ride on another request's in-flight computation.
//
// Panic safety: compute runs inside the exp cell panic barrier at the
// call site, but the flight is settled via defer here too, so even a
// panic that escapes this frame can never strand waiters on a flight
// that will not close.
func (c *resultCache) getOrRun(key exp.CellKey, compute func() (sim.Metrics, error)) (m sim.Metrics, hit bool, err error) {
	fp := key.Fingerprint()
	c.mu.Lock()
	if f := c.inflight[fp]; f != nil {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return sim.Metrics{}, false, f.err
		}
		c.count(true)
		return f.m, true, nil
	}
	if m, ok := c.lookupLocked(key, fp); ok {
		c.mu.Unlock()
		c.count(true)
		return m, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[fp] = f
	c.mu.Unlock()

	settled := false
	defer func() {
		if !settled {
			// compute panicked past us: fail the flight so waiters wake,
			// then let the panic continue to the exp cell barrier.
			c.settle(fp, f, sim.Metrics{}, fmt.Errorf("srv: computation for %s panicked", fp))
		}
	}()
	m, err = compute()
	if err == nil && c.journal != nil {
		err = c.journal.Record(key, m)
	}
	c.settle(fp, f, m, err)
	settled = true
	if err != nil {
		return sim.Metrics{}, false, err
	}
	c.count(false)
	return m, false, nil
}

// lookup consults the store without computing — the stream engine's
// per-window checkpoint probe.
func (c *resultCache) lookup(key exp.CellKey) (sim.Metrics, bool) {
	fp := key.Fingerprint()
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.lookupLocked(key, fp)
	if ok {
		c.count(true)
	}
	return m, ok
}

// record stores one computed result directly — the stream engine's
// per-window checkpoint commit. Windows bypass single-flight (they are
// sequential within a run; concurrent identical runs dedupe through
// the journal per window), so there is no flight to settle.
func (c *resultCache) record(key exp.CellKey, m sim.Metrics) error {
	if c.journal != nil {
		// Journal.Record locks and fsyncs itself.
		if err := c.journal.Record(key, m); err != nil {
			return err
		}
		c.count(false)
		return nil
	}
	fp := key.Fingerprint()
	c.mu.Lock()
	c.mem[fp] = m
	c.mu.Unlock()
	c.count(false)
	return nil
}

// settle publishes the flight's outcome, stores successful results,
// and removes the in-flight marker.
func (c *resultCache) settle(fp string, f *flight, m sim.Metrics, err error) {
	f.m, f.err = m, err
	c.mu.Lock()
	if err == nil && c.journal == nil {
		c.mem[fp] = m
	}
	delete(c.inflight, fp)
	c.mu.Unlock()
	close(f.done)
}

// count records a cache hit or miss in the registry (nil-safe).
func (c *resultCache) count(hit bool) {
	if hit {
		c.reg.Counter("srv.cache.hits").Add(1)
	} else {
		c.reg.Counter("srv.cache.misses").Add(1)
	}
}
