package srv

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"cobra/internal/exp"
	"cobra/internal/sim"
)

// TestSpecCoresValidation pins the cores field of the job wire format:
// 0 normalizes to the single-core model, negatives and counts above
// the server limit are client errors.
func TestSpecCoresValidation(t *testing.T) {
	cfg := Config{MaxCores: 8}.withDefaults()
	base := JobSpec{RunSpec: exp.RunSpec{
		App: "DegreeCount", Input: "URND", Schemes: []sim.SchemeID{sim.SchemeIDBaseline},
	}}

	sp := base
	if _, err := sp.normalize(cfg); err != nil {
		t.Fatal(err)
	}
	if sp.Cores != 1 {
		t.Fatalf("cores 0 normalized to %d, want 1", sp.Cores)
	}

	sp = base
	sp.Cores = 8
	if _, err := sp.normalize(cfg); err != nil {
		t.Fatalf("cores at the limit rejected: %v", err)
	}

	sp = base
	sp.Cores = -1
	if _, err := sp.normalize(cfg); err == nil || !strings.Contains(err.Error(), "negative core count") {
		t.Fatalf("negative cores: err = %v", err)
	}

	sp = base
	sp.Cores = 9
	if _, err := sp.normalize(cfg); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("cores over limit: err = %v", err)
	}

	// Default limit resolves when unset.
	if got := (Config{}).withDefaults().MaxCores; got != 64 {
		t.Fatalf("default MaxCores = %d, want 64", got)
	}
}

// TestRunSyncMultiCore runs a sharded job end to end over HTTP and
// checks the merged metrics carry the requested core count.
func TestRunSyncMultiCore(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	spec := JobSpec{RunSpec: exp.RunSpec{
		App: "DegreeCount", Input: "URND", Scale: 9, Seed: 7,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDCOBRA}, Cores: 4,
	}}
	code, body := postJSON(t, ts.URL+"/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/run = %d: %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.State != JobDone || len(view.Results) != 2 {
		t.Fatalf("view = %+v", view)
	}
	for _, m := range view.Results {
		if m.Cores != 4 {
			t.Fatalf("%s: merged Cores = %d, want 4", m.Scheme, m.Cores)
		}
	}

	// Over-limit jobs are rejected at intake with a 400.
	spec.Cores = 1 << 10
	code, body = postJSON(t, ts.URL+"/v1/run", spec)
	if code != http.StatusBadRequest {
		t.Fatalf("over-limit cores: POST /v1/run = %d: %s", code, body)
	}
}
