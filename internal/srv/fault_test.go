package srv

// Backpressure under injected faults — runs with -race via `make
// race`. With a 10% seeded completion-fault schedule and 64-way
// concurrent load, the service must stay inside its status contract
// (200/202/429/500 only — 500s are the injected failures), never cache
// an error (the same cells all succeed once the plan deactivates), and
// still drain to quiescence.

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cobra/internal/exp"
	"cobra/internal/fault"
	"cobra/internal/sim"
)

func TestLoadWithCompletionFaults(t *testing.T) {
	s, ts, oreg := newTestServer(t, func(c *Config) {
		c.Workers = 4
		c.QueueDepth = 8
	})

	// 10% of worker completions fail, deterministically seeded: the
	// fire/skip decision is a pure function of (seed, point, hit), so
	// the schedule is identical however goroutines interleave.
	plan, err := fault.Build(1234, &fault.Rule{
		Point: fault.PointSrvComplete, Prob: 0.10, Err: syscall.EIO,
	})
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	defer fault.Deactivate()

	const n = 64
	codes := make([]int, n)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 60 * time.Second}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds: every job is a genuine compute (a fault
			// candidate), not a cache collapse.
			spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8,
				Seed: uint64(i), Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
			if i%4 == 0 {
				codes[i] = fire(t, client, ts.URL+"/v1/jobs", spec)
			} else {
				codes[i] = fire(t, client, ts.URL+"/v1/run", spec)
			}
		}(i)
	}
	wg.Wait()

	counts := map[int]int{}
	for _, c := range codes {
		counts[c]++
	}
	for code := range counts {
		switch code {
		case http.StatusOK, http.StatusAccepted, http.StatusTooManyRequests, http.StatusInternalServerError:
		default:
			t.Fatalf("status %d under faulted load (histogram %v)", code, counts)
		}
	}

	// Wait for asynchronously submitted jobs to settle before the next
	// phase: every job must be terminal before we change the fault plan.
	for deadline := time.Now().Add(30 * time.Second); ; {
		if s.inflight.Load() == 0 && len(s.queue) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never settled under faulted load")
		}
		time.Sleep(time.Millisecond)
	}

	if fault.Fires(fault.PointSrvComplete) == 0 {
		t.Fatal("the 10% schedule never fired — the test exercised nothing")
	}

	// The cache must not have absorbed a single injected failure: with
	// faults off, the exact same cells all succeed. If an error had been
	// cached, one of these would replay it.
	fault.Deactivate()
	for seed := 0; seed < n; seed++ {
		spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8,
			Seed: uint64(seed), Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
		if code := fire(t, client, ts.URL+"/v1/run", spec); code != http.StatusOK {
			t.Fatalf("seed %d after deactivation: status %d — an injected failure leaked into the cache", seed, code)
		}
	}

	// And the server still drains cleanly: no wedged worker, no stuck
	// queue entry.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after faulted load: %v", err)
	}
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	for id, j := range s.jobs {
		v := j.View()
		switch v.State {
		case JobDone, JobFailed, JobCanceled:
		default:
			t.Fatalf("job %s wedged in state %s", id, v.State)
		}
		if v.State == JobFailed && !strings.Contains(v.Error, "injected") {
			t.Fatalf("job %s failed for a non-injected reason: %s", id, v.Error)
		}
	}
	_ = oreg
}

// TestAdmissionFaultMapsTo500: an injected admission fault answers 500
// (retryable server trouble), never 4xx, and allocates no job.
func TestAdmissionFaultMapsTo500(t *testing.T) {
	s, ts, oreg := newTestServer(t, nil)
	plan, err := fault.Parse("srv.queue.admit:at=1:err=eio")
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	defer fault.Deactivate()

	client := &http.Client{Timeout: 30 * time.Second}
	spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
	if code := fire(t, client, ts.URL+"/v1/jobs", spec); code != http.StatusInternalServerError {
		t.Fatalf("faulted admission: status %d, want 500", code)
	}
	if got := oreg.Counter("srv.jobs.rejected_injected").Value(); got != 1 {
		t.Fatalf("rejected_injected = %d, want 1", got)
	}
	s.jmu.RLock()
	jobs := len(s.jobs)
	s.jmu.RUnlock()
	if jobs != 0 {
		t.Fatalf("a rejected submission allocated %d job(s)", jobs)
	}

	// The next submission (fault exhausted) succeeds.
	if code := fire(t, client, ts.URL+"/v1/jobs", spec); code != http.StatusAccepted {
		t.Fatalf("post-fault submission: status %d, want 202", code)
	}
}
