package srv

// GET /v1/jobs and the MaxInflight admission cap.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cobra/internal/exp"
	"cobra/internal/obsv"
	"cobra/internal/sim"
)

func getSummary(t *testing.T, base string) JobsSummary {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs: %d", resp.StatusCode)
	}
	var sum JobsSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestJobsSummary(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)

	spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
	status, body := postJSON(t, ts.URL+"/v1/run", spec)
	if status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}
	spec.Seed = 7
	status, body = postJSON(t, ts.URL+"/v1/run", spec)
	if status != http.StatusOK {
		t.Fatalf("run: %d %s", status, body)
	}

	sum := getSummary(t, ts.URL)
	if sum.Done != 2 || sum.Queued != 0 || sum.Running != 0 || sum.Failed != 0 {
		t.Fatalf("counts: %+v", sum)
	}
	if sum.Workers != s.cfg.Workers || sum.QueueCap != s.cfg.QueueDepth {
		t.Fatalf("capacity fields: %+v", sum)
	}
	if len(sum.Recent) != 2 {
		t.Fatalf("recent: %d views", len(sum.Recent))
	}
	// Newest first, and results stripped (the list is a summary — a
	// full view is one GET /v1/jobs/{id} away).
	if sum.Recent[0].ID <= sum.Recent[1].ID {
		t.Fatalf("recent not newest-first: %s then %s", sum.Recent[0].ID, sum.Recent[1].ID)
	}
	for _, v := range sum.Recent {
		if v.Results != nil {
			t.Fatalf("view %s leaks results into the list", v.ID)
		}
		if v.State != JobDone {
			t.Fatalf("view %s state %s, want done", v.ID, v.State)
		}
	}
}

// TestMaxInflightBackpressure holds a server un-started so its queue
// cannot drain, fills the admission cap, and demands a deterministic
// 429 + Retry-After for the overflow; once the server starts, the
// rejected job resubmits successfully — the redistribution loop a
// fleet client runs.
func TestMaxInflightBackpressure(t *testing.T) {
	reg := obsv.New()
	s, err := New(Config{Workers: 1, QueueDepth: 8, MaxInflight: 1, DefaultScale: 8, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	// NOT started: the first job stays queued, pinning active at the cap.
	spec := JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 8,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline}}}
	first, err := s.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.submit(spec); err != errQueueFull {
		t.Fatalf("over-cap submit: %v, want errQueueFull", err)
	}

	// Same rejection over HTTP must carry Retry-After.
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap HTTP submit: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	s.Start()
	<-first.Done()
	// The slot frees when the worker settles the job; poll-resubmit
	// exactly as a backpressured client would.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := s.submit(spec); err == nil {
			break
		} else if err != errQueueFull {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after job completion")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if v := reg.Counter("srv.jobs.rejected_full").Value(); v < 2 {
		t.Fatalf("rejected_full counter %v, want >= 2", v)
	}
}
