package srv

// HTTP/JSON surface.
//
//	POST /v1/jobs      submit async; 202 + job id (poll /v1/jobs/{id})
//	POST /v1/run       submit and wait; 200 done | 500 failed | 504 deadline
//	POST /v1/stream    submit async with Kind forced to "stream"
//	GET  /v1/jobs      job list summary (state counts + recent views)
//	GET  /v1/jobs/{id} job status/result
//	GET  /healthz      liveness (200 while the process runs)
//	GET  /readyz       readiness (503 once draining)
//	GET  /metrics      Prometheus text exposition of the obsv registry
//
// Backpressure: a full queue answers 429 with Retry-After; a draining
// server answers 503 with Retry-After. Neither allocates a job.
//
// Every error response is one ErrorBody envelope: {code, message,
// details}. The legacy "error" key mirrors message so pre-envelope
// clients keep decoding.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cobra/internal/exp"
	"cobra/internal/fault"
)

// maxBodyBytes bounds request bodies; a JobSpec is tiny.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/run", s.handleRunSync)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs", s.handleJobsList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON writes one JSON response with a trailing newline (curl
// friendliness).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// Error codes of the /v1 envelope. Machine-readable and stable:
// clients branch on these, never on message text.
const (
	ErrCodeInvalidSpec = "invalid_spec"
	ErrCodeQueueFull   = "queue_full"
	ErrCodeDraining    = "draining"
	ErrCodeNotFound    = "not_found"
	ErrCodeInternal    = "internal"
)

// ErrorBody is the single error envelope every /v1 endpoint answers
// with: a stable machine-readable code, a human message, and optional
// structured details. Legacy mirrors Message under the historical
// top-level "error" key for pre-envelope clients.
type ErrorBody struct {
	Code    string            `json:"code"`
	Message string            `json:"message"`
	Details map[string]string `json:"details,omitempty"`
	Legacy  string            `json:"error"`
}

// writeError emits one enveloped error response.
func writeError(w http.ResponseWriter, status int, code, msg string, details map[string]string) {
	writeJSON(w, status, ErrorBody{Code: code, Message: msg, Details: details, Legacy: msg})
}

// decodeSpec parses and strictly decodes a JobSpec (unknown fields are
// rejected so misspelled knobs fail loudly instead of silently running
// a default).
func decodeSpec(w http.ResponseWriter, r *http.Request) (JobSpec, bool) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeInvalidSpec,
			fmt.Sprintf("srv: decoding job spec: %v", err), nil)
		return JobSpec{}, false
	}
	return spec, true
}

// acceptJob runs the shared submit path and maps rejections to HTTP
// semantics. Returns nil after writing an error response.
func (s *Server) acceptJob(w http.ResponseWriter, spec JobSpec) *Job {
	job, err := s.submit(spec)
	switch {
	case err == nil:
		return job
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, ErrCodeQueueFull, err.Error(), nil)
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, ErrCodeDraining, err.Error(), nil)
	case errors.Is(err, fault.ErrInjected):
		// An injected admission fault is an internal failure, not the
		// client's: 500, retryable.
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, err.Error(), nil)
	default:
		writeError(w, http.StatusBadRequest, ErrCodeInvalidSpec, err.Error(), nil)
	}
	return nil
}

// handleSubmit is POST /v1/jobs: async submission.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("srv.http.jobs_post").Add(1)
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	job := s.acceptJob(w, spec)
	if job == nil {
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.id)
	writeJSON(w, http.StatusAccepted, job.View())
}

// handleStream is POST /v1/stream: async submission with Kind forced
// to "stream" — sugar over POST /v1/jobs with {"kind":"stream"}; both
// spellings run the same path.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("srv.http.stream_post").Add(1)
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	spec.Kind = exp.KindStream
	job := s.acceptJob(w, spec)
	if job == nil {
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.id)
	writeJSON(w, http.StatusAccepted, job.View())
}

// handleRunSync is POST /v1/run: submit and wait for the result, up to
// the job's own timeout budget. On deadline the job keeps running and
// the 504 body carries its id for polling.
func (s *Server) handleRunSync(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("srv.http.run_post").Add(1)
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	job := s.acceptJob(w, spec)
	if job == nil {
		return
	}
	// The body is fully decoded; clear the server's read deadline so a
	// long-running job outlives ReadTimeout. Without this the connection
	// deadline fires mid-wait, the background body read fails, and the
	// request context is canceled before the job finishes. Recorders in
	// tests don't implement the controller — that error is fine to drop.
	_ = http.NewResponseController(w).SetReadDeadline(time.Time{})
	deadline := time.NewTimer(s.timeoutFor(job.spec) + time.Second)
	defer deadline.Stop()
	select {
	case <-job.Done():
		v := job.View()
		switch v.State {
		case JobDone:
			writeJSON(w, http.StatusOK, v)
		case JobCanceled:
			w.Header().Set("Retry-After", "5")
			writeJSON(w, http.StatusServiceUnavailable, v)
		default: // JobFailed
			writeJSON(w, http.StatusInternalServerError, v)
		}
	case <-deadline.C:
		w.Header().Set("Location", "/v1/jobs/"+job.id)
		writeJSON(w, http.StatusGatewayTimeout, job.View())
	case <-r.Context().Done():
		// Client went away; the job finishes (and caches) regardless.
	}
}

// handleJobsList is GET /v1/jobs: lifecycle counts plus recent views.
func (s *Server) handleJobsList(w http.ResponseWriter, _ *http.Request) {
	s.reg.Counter("srv.http.jobs_list").Add(1)
	writeJSON(w, http.StatusOK, s.jobsSummary())
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("srv.http.jobs_get").Add(1)
	id := r.PathValue("id")
	job, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			fmt.Sprintf("srv: no job %q", id), map[string]string{"id": id})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

// handleHealthz is liveness: 200 while the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: flips to 503 the moment draining starts,
// so load balancers stop routing before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.Draining():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.started.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// handleMetrics is GET /metrics: the registry in Prometheus text
// exposition format. Queue depth and cache size are refreshed at
// scrape time so a quiet server still reports truth.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.reg.Gauge("srv.queue.depth").Set(float64(len(s.queue)))
	s.reg.Gauge("srv.cache.size").Set(float64(s.cache.len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are gone; nothing useful to do but note it.
		s.reg.Counter("srv.http.metrics_errors").Add(1)
	}
}
