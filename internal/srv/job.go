// Package srv is the cobrad simulation service: a long-running
// HTTP/JSON daemon that accepts simulation jobs (app, input, scale,
// seed, schemes, arch knobs), executes them on a bounded worker pool
// built on the exp campaign machinery (per-cell panic isolation and
// timeouts), and serves results from a content-addressed cache keyed
// by the checkpoint cell fingerprint. See DESIGN.md §"cobrad service"
// for the job lifecycle and the drain/flush shutdown order.
package srv

import (
	"fmt"
	"sync"
	"time"

	"cobra/internal/exp"
	"cobra/internal/sim"
)

// JobSpec is the wire form of one simulation request. It is exactly
// the parameter set of an exp simulation cell group: one (app, input,
// scale, seed) workload run through one or more schemes.
type JobSpec struct {
	App   string `json:"app"`
	Input string `json:"input"`
	// Scale is the input scale (keys/vertices ~ 2^scale); 0 selects the
	// server's default. Bounded by exp.MinScale..min(exp.MaxScale,
	// server max).
	Scale int    `json:"scale,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Schemes is the list of execution schemes to run; every name must
	// be one of exp.SchemeNames(). At least one is required.
	Schemes []string `json:"schemes"`
	// Bins is the PB-SW/PHI bin count; 0 sweeps for the best (slower,
	// still deterministic — the sweep result is part of the cell's
	// identity).
	Bins int `json:"bins,omitempty"`
	// NUCA enables Table II's 4x4-mesh NUCA latency model. Arch knobs
	// are part of the cache fingerprint, so NUCA and non-NUCA results
	// never alias.
	NUCA bool `json:"nuca,omitempty"`
	// Cores is the simulated core count (0 and 1 both select the
	// single-core model; >1 runs the sharded multi-core model). Bounded
	// by the server's MaxCores.
	Cores int `json:"cores,omitempty"`
	// TimeoutMS caps this job's wall-clock; 0 uses the server default.
	// Clamped to the server maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// normalize validates the spec against the experiment registry and
// the server limits, filling defaults in place and returning the
// parsed schemes. Every violation is a client error (HTTP 400).
func (sp *JobSpec) normalize(cfg Config) ([]sim.Scheme, error) {
	if err := exp.ValidApp(sp.App); err != nil {
		return nil, err
	}
	if err := exp.ValidInput(sp.Input); err != nil {
		return nil, err
	}
	if sp.Scale == 0 {
		sp.Scale = cfg.DefaultScale
	}
	maxScale := cfg.MaxScale
	if maxScale <= 0 || maxScale > exp.MaxScale {
		maxScale = exp.MaxScale
	}
	if sp.Scale < exp.MinScale || sp.Scale > maxScale {
		return nil, fmt.Errorf("srv: scale %d out of range [%d, %d]", sp.Scale, exp.MinScale, maxScale)
	}
	if len(sp.Schemes) == 0 {
		return nil, fmt.Errorf("srv: job needs at least one scheme (want of %v)", exp.SchemeNames())
	}
	schemes := make([]sim.Scheme, len(sp.Schemes))
	seen := map[string]bool{}
	for i, name := range sp.Schemes {
		s, err := exp.ParseScheme(name)
		if err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("srv: duplicate scheme %q in job", name)
		}
		seen[name] = true
		schemes[i] = s
	}
	if sp.Bins < 0 {
		return nil, fmt.Errorf("srv: negative bin count %d", sp.Bins)
	}
	if sp.Cores < 0 {
		return nil, fmt.Errorf("srv: negative core count %d", sp.Cores)
	}
	if sp.Cores == 0 {
		sp.Cores = 1
	}
	if sp.Cores > cfg.MaxCores {
		return nil, fmt.Errorf("srv: core count %d exceeds server limit %d", sp.Cores, cfg.MaxCores)
	}
	if sp.TimeoutMS < 0 {
		return nil, fmt.Errorf("srv: negative timeout_ms %d", sp.TimeoutMS)
	}
	if maxMS := cfg.MaxJobTimeout.Milliseconds(); maxMS > 0 && sp.TimeoutMS > maxMS {
		sp.TimeoutMS = maxMS
	}
	return schemes, nil
}

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle: queued -> running -> done|failed; queued -> canceled
// (only during drain, when the server stops dispatching queued jobs).
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one accepted simulation request. All mutation goes through
// the state methods; readers take View snapshots.
type Job struct {
	id      string
	spec    JobSpec
	schemes []sim.Scheme

	mu        sync.Mutex
	state     JobState
	errMsg    string
	results   []sim.Metrics
	hits      int // scheme cells served from the result cache
	misses    int // scheme cells simulated fresh
	submitted time.Time
	started   time.Time
	finished  time.Time

	// done closes exactly once when the job reaches a terminal state;
	// sync /v1/run handlers and tests wait on it.
	done chan struct{}
}

func newJob(id string, spec JobSpec, schemes []sim.Scheme, now time.Time) *Job {
	return &Job{
		id:        id,
		spec:      spec,
		schemes:   schemes,
		state:     JobQueued,
		submitted: now,
		done:      make(chan struct{}),
	}
}

// Done returns the completion channel (closed at any terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = now
}

// finish moves the job to its terminal state and releases waiters.
func (j *Job) finish(results []sim.Metrics, hits, misses int, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.hits, j.misses = hits, misses
	j.finished = now
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.results = results
	}
	close(j.done)
}

// cancel marks a never-started job canceled (drain path).
func (j *Job) cancel(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return
	}
	j.state = JobCanceled
	j.errMsg = "srv: server draining; job was never started"
	j.finished = now
	close(j.done)
}

// JobView is the JSON representation served by GET /v1/jobs/{id} and
// POST /v1/run. Results carry the exact sim.Metrics structs the
// figures pipeline uses, so CLI (-json) and API wire formats align.
type JobView struct {
	ID          string        `json:"id"`
	State       JobState      `json:"state"`
	Spec        JobSpec       `json:"spec"`
	Error       string        `json:"error,omitempty"`
	Results     []sim.Metrics `json:"results,omitempty"`
	CacheHits   int           `json:"cache_hits"`
	CacheMisses int           `json:"cache_misses"`
	SubmittedAt string        `json:"submitted_at,omitempty"`
	StartedAt   string        `json:"started_at,omitempty"`
	FinishedAt  string        `json:"finished_at,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		Error:       j.errMsg,
		Results:     j.results,
		CacheHits:   j.hits,
		CacheMisses: j.misses,
	}
	if !j.submitted.IsZero() {
		v.SubmittedAt = j.submitted.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}
