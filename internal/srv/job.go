// Package srv is the cobrad simulation service: a long-running
// HTTP/JSON daemon that accepts simulation jobs (app, input, scale,
// seed, schemes, arch knobs), executes them on a bounded worker pool
// built on the exp campaign machinery (per-cell panic isolation and
// timeouts), and serves results from a content-addressed cache keyed
// by the checkpoint cell fingerprint. See DESIGN.md §"cobrad service"
// for the job lifecycle and the drain/flush shutdown order.
package srv

import (
	"fmt"
	"sync"
	"time"

	"cobra/internal/exp"
	"cobra/internal/sim"
)

// JobSpec is the wire form of one simulation request: the canonical
// exp.RunSpec — one (app, input, scale, seed) workload run through one
// or more schemes, offline or streamed — plus the service-level
// timeout knob. Embedding keeps the wire format flat: the JSON object
// is exactly the RunSpec fields plus timeout_ms, byte-compatible with
// every pre-RunSpec client.
type JobSpec struct {
	exp.RunSpec
	// TimeoutMS caps this job's wall-clock; 0 uses the server default.
	// Clamped to the server maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// normalize validates the spec through the one shared validation path
// (exp.RunSpec.Normalize under the server's limits) plus the
// service-level constraints, filling defaults in place. Every
// violation is a client error (HTTP 400).
func (sp *JobSpec) normalize(cfg Config) ([]sim.SchemeID, error) {
	if err := sp.RunSpec.Normalize(exp.Limits{
		DefaultScale: cfg.DefaultScale,
		MaxScale:     cfg.MaxScale,
		MaxCores:     cfg.MaxCores,
	}); err != nil {
		return nil, err
	}
	// A streamed job reports one merged result plus per-window metrics;
	// one scheme per job keeps that wire shape unambiguous (submit one
	// job per scheme to compare).
	if sp.Kind == exp.KindStream && len(sp.Schemes) != 1 {
		return nil, fmt.Errorf("srv: stream jobs run exactly one scheme, got %d", len(sp.Schemes))
	}
	if sp.TimeoutMS < 0 {
		return nil, fmt.Errorf("srv: negative timeout_ms %d", sp.TimeoutMS)
	}
	if maxMS := cfg.MaxJobTimeout.Milliseconds(); maxMS > 0 && sp.TimeoutMS > maxMS {
		sp.TimeoutMS = maxMS
	}
	return sp.Schemes, nil
}

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle: queued -> running -> done|failed; queued -> canceled
// (only during drain, when the server stops dispatching queued jobs).
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one accepted simulation request. All mutation goes through
// the state methods; readers take View snapshots.
type Job struct {
	id      string
	spec    JobSpec
	schemes []sim.SchemeID

	mu        sync.Mutex
	state     JobState
	errMsg    string
	results   []sim.Metrics
	windows   []sim.Metrics // streamed jobs: per-window metrics, live
	hits      int           // scheme cells served from the result cache
	misses    int           // scheme cells simulated fresh
	submitted time.Time
	started   time.Time
	finished  time.Time

	// done closes exactly once when the job reaches a terminal state;
	// sync /v1/run handlers and tests wait on it.
	done chan struct{}
}

func newJob(id string, spec JobSpec, schemes []sim.SchemeID, now time.Time) *Job {
	return &Job{
		id:        id,
		spec:      spec,
		schemes:   schemes,
		state:     JobQueued,
		submitted: now,
		done:      make(chan struct{}),
	}
}

// Done returns the completion channel (closed at any terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = now
}

// windowDone appends one completed stream window, so GET /v1/jobs/{id}
// shows per-window progress while the job is still running.
func (j *Job) windowDone(m sim.Metrics) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.windows = append(j.windows, m)
}

// finish moves the job to its terminal state and releases waiters.
func (j *Job) finish(results []sim.Metrics, hits, misses int, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.hits, j.misses = hits, misses
	j.finished = now
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.results = results
	}
	close(j.done)
}

// cancel marks a never-started job canceled (drain path).
func (j *Job) cancel(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return
	}
	j.state = JobCanceled
	j.errMsg = "srv: server draining; job was never started"
	j.finished = now
	close(j.done)
}

// JobView is the JSON representation served by GET /v1/jobs/{id} and
// POST /v1/run. Results carry the exact sim.Metrics structs the
// figures pipeline uses, so CLI (-json) and API wire formats align.
// Streamed jobs additionally carry Windows — the per-window metrics in
// window order (populated live as windows complete) — while Results
// holds the single MergeMetrics fold.
type JobView struct {
	ID          string        `json:"id"`
	State       JobState      `json:"state"`
	Spec        JobSpec       `json:"spec"`
	Error       string        `json:"error,omitempty"`
	Results     []sim.Metrics `json:"results,omitempty"`
	Windows     []sim.Metrics `json:"windows,omitempty"`
	CacheHits   int           `json:"cache_hits"`
	CacheMisses int           `json:"cache_misses"`
	SubmittedAt string        `json:"submitted_at,omitempty"`
	StartedAt   string        `json:"started_at,omitempty"`
	FinishedAt  string        `json:"finished_at,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		Error:       j.errMsg,
		Results:     j.results,
		CacheHits:   j.hits,
		CacheMisses: j.misses,
	}
	if len(j.windows) > 0 {
		v.Windows = append([]sim.Metrics(nil), j.windows...)
	}
	if !j.submitted.IsZero() {
		v.SubmittedAt = j.submitted.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}
