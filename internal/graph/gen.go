package graph

import (
	"fmt"

	"cobra/internal/stats"
)

// This file generates the synthetic inputs standing in for the paper's
// Table III graphs. The paper's trends depend on two input axes: degree
// skew (power-law vs uniform vs bounded) and working-set size relative
// to cache. The three generators span those axes:
//
//   - RMAT: Kronecker-style power-law graphs (stand-ins for KRON,
//     TWITTER, UK2005, HBUBL — the highly skewed inputs).
//   - Uniform: Erdős–Rényi-style uniform random graphs (URND).
//   - Grid: bounded-degree 2D lattice with local edges (ROAD, EURO —
//     the high-diameter, low-degree inputs).

// GenKind names a generator for CLI/reporting.
type GenKind string

// Generator kinds.
const (
	GenRMAT    GenKind = "rmat"
	GenUniform GenKind = "uniform"
	GenGrid    GenKind = "grid"
)

// RMAT generates a power-law edge list with 2^scale vertices and
// edgeFactor edges per vertex using the Graph500 R-MAT parameters
// (a=0.57, b=0.19, c=0.19, d=0.05).
func RMAT(scale, edgeFactor int, seed uint64) *EdgeList {
	return RMATParams(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// RMATParams generates an R-MAT graph with explicit quadrant
// probabilities (a+b+c <= 1; d is the remainder).
func RMATParams(scale, edgeFactor int, a, b, c float64, seed uint64) *EdgeList {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("graph: RMAT scale %d out of range [1,30]", scale))
	}
	n := 1 << scale
	m := n * edgeFactor
	r := stats.NewRand(seed)
	edges := make([]Edge, m)
	for i := range edges {
		var src, dst uint32
		for lvl := 0; lvl < scale; lvl++ {
			p := r.Float64()
			var sbit, dbit uint32
			switch {
			case p < a:
				// top-left: 0,0
			case p < a+b:
				dbit = 1
			case p < a+b+c:
				sbit = 1
			default:
				sbit, dbit = 1, 1
			}
			src = src<<1 | sbit
			dst = dst<<1 | dbit
		}
		edges[i] = Edge{Src: src, Dst: dst}
	}
	return &EdgeList{N: n, Edges: edges}
}

// Uniform generates an edge list with n vertices and m uniformly random
// edges (self-loops allowed, matching synthetic URND-style inputs).
func Uniform(n, m int, seed uint64) *EdgeList {
	if n <= 0 || m < 0 {
		panic("graph: Uniform requires n > 0, m >= 0")
	}
	r := stats.NewRand(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
	}
	return &EdgeList{N: n, Edges: edges}
}

// Grid generates a bounded-degree graph: a rows×cols lattice where each
// cell connects to its 4 neighbors plus a few short-range shortcuts,
// mimicking road networks (low max degree, high diameter, strong
// spatial locality in vertex IDs).
func Grid(rows, cols int, shortcutFrac float64, seed uint64) *EdgeList {
	if rows <= 0 || cols <= 0 {
		panic("graph: Grid requires positive dimensions")
	}
	n := rows * cols
	r := stats.NewRand(seed)
	edges := make([]Edge, 0, 4*n)
	id := func(x, y int) uint32 { return uint32(x*cols + y) }
	for x := 0; x < rows; x++ {
		for y := 0; y < cols; y++ {
			v := id(x, y)
			if x+1 < rows {
				edges = append(edges, Edge{v, id(x+1, y)}, Edge{id(x+1, y), v})
			}
			if y+1 < cols {
				edges = append(edges, Edge{v, id(x, y+1)}, Edge{id(x, y+1), v})
			}
			if shortcutFrac > 0 && r.Float64() < shortcutFrac {
				// Short-range shortcut within a +/- 1000-vertex window,
				// like highway links in road networks.
				lo := int(v) - 1000
				if lo < 0 {
					lo = 0
				}
				hi := int(v) + 1000
				if hi >= n {
					hi = n - 1
				}
				u := uint32(lo + r.Intn(hi-lo+1))
				edges = append(edges, Edge{v, u})
			}
		}
	}
	return &EdgeList{N: n, Edges: edges}
}

// DegreeStats summarizes an edge list's degree distribution for
// generator validation and cmd/graphgen.
type DegreeStats struct {
	N, M         int
	MaxDeg       uint32
	MeanDeg      float64
	P99Deg       float64
	ZeroDegFrac  float64
	Top1PctShare float64 // fraction of edges owned by the top 1% of vertices
}

// Degrees computes DegreeStats for el.
func Degrees(el *EdgeList) DegreeStats {
	deg := DegreeCount(el)
	ds := DegreeStats{N: el.N, M: el.M()}
	if el.N == 0 {
		return ds
	}
	fs := make([]float64, el.N)
	zero := 0
	for i, d := range deg {
		fs[i] = float64(d)
		if d > ds.MaxDeg {
			ds.MaxDeg = d
		}
		if d == 0 {
			zero++
		}
	}
	ds.MeanDeg = float64(el.M()) / float64(el.N)
	ds.P99Deg = stats.Percentile(fs, 99)
	ds.ZeroDegFrac = float64(zero) / float64(el.N)
	// Top-1% share: sort descending via percentile threshold then sum.
	thresh := stats.Percentile(fs, 99)
	var topEdges float64
	for _, f := range fs {
		if f >= thresh && f > 0 {
			topEdges += f
		}
	}
	if el.M() > 0 {
		ds.Top1PctShare = topEdges / float64(el.M())
	}
	return ds
}

// Input bundles a named generated graph for the experiment harness
// (stand-ins for Table III).
type Input struct {
	Name string
	Kind GenKind
	EL   *EdgeList
}

// StandardInputs generates the default input suite at the given scale
// (vertices ≈ 2^scale). The names allude to the paper's inputs they
// stand in for.
func StandardInputs(scale int, seed uint64) []Input {
	n := 1 << scale
	side := 1
	for side*side < n {
		side *= 2
	}
	return []Input{
		{Name: "KRON", Kind: GenRMAT, EL: RMAT(scale, 16, seed)},
		{Name: "URND", Kind: GenUniform, EL: Uniform(n, 16*n, seed+1)},
		{Name: "TWIT", Kind: GenRMAT, EL: RMATParams(scale, 12, 0.65, 0.15, 0.15, seed+2)},
		{Name: "ROAD", Kind: GenGrid, EL: Grid(side, side/2, 0.05, seed+3)},
	}
}
