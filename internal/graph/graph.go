// Package graph provides the graph substrate: edge lists, the CSR/CSC
// compressed representations of Figure 1, synthetic input generators
// spanning the paper's input classes (Table III), and the Graph500-style
// build kernels (Degree-Count, Neighbor-Populate) plus analytics kernels
// (PageRank, Radii, BFS) in baseline and propagation-blocked forms.
package graph

import (
	"fmt"

	"cobra/internal/pb"
)

// Edge is one directed edge of an edge list.
type Edge struct {
	Src, Dst uint32
}

// EdgeList is the raw input representation (e.g., Graph500's input to
// the CSR-construction kernel).
type EdgeList struct {
	N     int // number of vertices
	Edges []Edge
}

// M returns the edge count.
func (el *EdgeList) M() int { return len(el.Edges) }

// CSR is the Compressed Sparse Row representation of Figure 1: OA
// (Offsets) holds each vertex's starting offset into NA (Neighs), which
// stores neighbor lists contiguously, sorted by edge source.
type CSR struct {
	N       int
	Offsets []uint32 // len N+1; OA in Figure 1
	Neighs  []uint32 // len M;  NA in Figure 1
}

// M returns the edge count.
func (g *CSR) M() int { return len(g.Neighs) }

// Degree returns the out-degree of vertex v.
func (g *CSR) Degree(v uint32) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Neighbors returns v's neighbor slice (do not mutate).
func (g *CSR) Neighbors(v uint32) []uint32 {
	return g.Neighs[g.Offsets[v]:g.Offsets[v+1]]
}

// Validate checks structural invariants, returning the first violation.
func (g *CSR) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.Offsets[0])
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	if int(g.Offsets[g.N]) != len(g.Neighs) {
		return fmt.Errorf("graph: offsets[N] = %d, want %d", g.Offsets[g.N], len(g.Neighs))
	}
	for i, u := range g.Neighs {
		if int(u) >= g.N {
			return fmt.Errorf("graph: neighbor %d at position %d out of range", u, i)
		}
	}
	return nil
}

// DegreeCount computes out-degrees of an edge list — the first dominant
// kernel of Edgelist-to-CSR conversion. The increments are irregular
// commutative updates.
func DegreeCount(el *EdgeList) []uint32 {
	deg := make([]uint32, el.N)
	for _, e := range el.Edges {
		deg[e.Src]++
	}
	return deg
}

// DegreeCountPB is the propagation-blocked variant.
func DegreeCountPB(el *EdgeList, o pb.Options) []uint32 {
	deg := make([]uint32, el.N)
	pb.Run(len(el.Edges), el.N,
		func(b, e int, emit func(uint32, struct{})) {
			for _, ed := range el.Edges[b:e] {
				emit(ed.Src, struct{}{})
			}
		},
		func(k uint32, _ struct{}) { deg[k]++ },
		o)
	return deg
}

// PrefixSum converts degrees into CSR offsets (exclusive scan with the
// total appended).
func PrefixSum(deg []uint32) []uint32 {
	offsets := make([]uint32, len(deg)+1)
	var sum uint32
	for i, d := range deg {
		offsets[i] = sum
		sum += d
	}
	offsets[len(deg)] = sum
	return offsets
}

// NeighborPopulate fills the Neighbors Array from an edge list given
// CSR offsets — Algorithm 1 of the paper. It consumes a scratch copy of
// offsets; the updates to it are irregular and NOT commutative (their
// order defines NA contents), yet the kernel has unordered parallelism:
// a vertex's neighbors may be listed in any order.
func NeighborPopulate(el *EdgeList, offsets []uint32) *CSR {
	cursor := make([]uint32, el.N)
	copy(cursor, offsets[:el.N])
	neighs := make([]uint32, el.M())
	for _, e := range el.Edges {
		neighs[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	return &CSR{N: el.N, Offsets: offsets, Neighs: neighs}
}

// NeighborPopulatePB is Algorithm 2: edges are binned by source, then
// each bin's edges populate NA with high locality. Bins partition the
// source range, so concurrent accumulate goroutines never race.
func NeighborPopulatePB(el *EdgeList, offsets []uint32, o pb.Options) *CSR {
	cursor := make([]uint32, el.N)
	copy(cursor, offsets[:el.N])
	neighs := make([]uint32, el.M())
	pb.Run(el.M(), el.N,
		func(b, e int, emit func(uint32, uint32)) {
			for _, ed := range el.Edges[b:e] {
				emit(ed.Src, ed.Dst)
			}
		},
		func(src uint32, dst uint32) {
			neighs[cursor[src]] = dst
			cursor[src]++
		},
		o)
	return &CSR{N: el.N, Offsets: offsets, Neighs: neighs}
}

// BuildCSR runs the full Edgelist-to-CSR conversion (Degree-Count,
// PrefixSum, Neighbor-Populate). usePB selects the propagation-blocked
// kernels.
func BuildCSR(el *EdgeList, usePB bool, o pb.Options) *CSR {
	var deg []uint32
	if usePB {
		deg = DegreeCountPB(el, o)
	} else {
		deg = DegreeCount(el)
	}
	offsets := PrefixSum(deg)
	if usePB {
		return NeighborPopulatePB(el, offsets, o)
	}
	return NeighborPopulate(el, offsets)
}

// Transpose returns the graph with every edge reversed (CSC of the
// original). Internally another non-commutative scatter.
func (g *CSR) Transpose() *CSR {
	deg := make([]uint32, g.N)
	for _, u := range g.Neighs {
		deg[u]++
	}
	offsets := PrefixSum(deg)
	cursor := make([]uint32, g.N)
	copy(cursor, offsets[:g.N])
	neighs := make([]uint32, g.M())
	for v := uint32(0); int(v) < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			neighs[cursor[u]] = v
			cursor[u]++
		}
	}
	return &CSR{N: g.N, Offsets: offsets, Neighs: neighs}
}

// ToEdgeList flattens the CSR back into an edge list (testing helper).
func (g *CSR) ToEdgeList() *EdgeList {
	edges := make([]Edge, 0, g.M())
	for v := uint32(0); int(v) < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			edges = append(edges, Edge{Src: v, Dst: u})
		}
	}
	return &EdgeList{N: g.N, Edges: edges}
}
