package graph

import (
	"math"

	"cobra/internal/pb"
)

// PageRank parameters shared by all variants.
const (
	PRDamping = 0.85
	PREps     = 1e-4
)

// PageRankPull runs pull-style PageRank (the GAP reference shape) for
// at most maxIters iterations or until the L1 delta falls below eps.
// It needs the transpose (incoming-edge) graph gt. Returns the scores
// and the iteration count.
//
// Pull PageRank performs irregular *reads* of contributions; the
// push/PB variants below turn the irregularity into updates.
func PageRankPull(gt *CSR, outDeg []uint32, maxIters int, eps float64) ([]float64, int) {
	n := gt.N
	scores := make([]float64, n)
	contrib := make([]float64, n)
	base := (1 - PRDamping) / float64(n)
	for i := range scores {
		scores[i] = 1 / float64(n)
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		for v := range contrib {
			if d := outDeg[v]; d > 0 {
				contrib[v] = scores[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
		delta := 0.0
		for v := uint32(0); int(v) < n; v++ {
			sum := 0.0
			for _, u := range gt.Neighbors(v) {
				sum += contrib[u]
			}
			next := base + PRDamping*sum
			delta += math.Abs(next - scores[v])
			scores[v] = next
		}
		if delta < eps {
			iters++
			break
		}
	}
	return scores, iters
}

// PageRankPush runs push-style PageRank on the forward graph: every
// vertex scatters its contribution to its out-neighbors. The scatters
// are irregular commutative updates over the full vertex range — the
// access pattern of Figure 3's unoptimized execution.
func PageRankPush(g *CSR, maxIters int, eps float64) ([]float64, int) {
	n := g.N
	scores := make([]float64, n)
	incoming := make([]float64, n)
	base := (1 - PRDamping) / float64(n)
	for i := range scores {
		scores[i] = 1 / float64(n)
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		for i := range incoming {
			incoming[i] = 0
		}
		for v := uint32(0); int(v) < n; v++ {
			neighs := g.Neighbors(v)
			if len(neighs) == 0 {
				continue
			}
			c := scores[v] / float64(len(neighs))
			for _, u := range neighs {
				incoming[u] += c // irregular update
			}
		}
		delta := 0.0
		for v := 0; v < n; v++ {
			next := base + PRDamping*incoming[v]
			delta += math.Abs(next - scores[v])
			scores[v] = next
		}
		if delta < eps {
			iters++
			break
		}
	}
	return scores, iters
}

// PageRankPB is the propagation-blocked push variant (Figure 3's PB
// execution): Binning streams edges emitting (dst, contribution)
// tuples; Accumulate applies each bin's updates with the destination
// range in cache.
func PageRankPB(g *CSR, maxIters int, eps float64, o pb.Options) ([]float64, int) {
	n := g.N
	scores := make([]float64, n)
	incoming := make([]float64, n)
	base := (1 - PRDamping) / float64(n)
	for i := range scores {
		scores[i] = 1 / float64(n)
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		for i := range incoming {
			incoming[i] = 0
		}
		pb.Run(n, n,
			func(b, e int, emit func(uint32, float64)) {
				for v := b; v < e; v++ {
					neighs := g.Neighbors(uint32(v))
					if len(neighs) == 0 {
						continue
					}
					c := scores[v] / float64(len(neighs))
					for _, u := range neighs {
						emit(u, c)
					}
				}
			},
			func(u uint32, c float64) { incoming[u] += c },
			o)
		delta := 0.0
		for v := 0; v < n; v++ {
			next := base + PRDamping*incoming[v]
			delta += math.Abs(next - scores[v])
			scores[v] = next
		}
		if delta < eps {
			iters++
			break
		}
	}
	return scores, iters
}
