package graph

// Radii estimates the graph's diameter by running a multi-source BFS
// from up to 64 sample sources simultaneously, Ligra-style: each vertex
// carries a 64-bit visited mask (one bit per source) and a radius
// estimate. Each round propagates masks along edges; a vertex whose
// mask grows updates its radius to the current round.
//
// The mask propagation next[u] |= cur[v] is an irregular commutative
// (bitwise-OR) update — the paper's representative of graph kernels
// that process only a subset of vertices each iteration.

import (
	"sync/atomic"

	"cobra/internal/pb"
)

// RadiiResult carries per-vertex eccentricity estimates and the
// estimated diameter.
type RadiiResult struct {
	Radii    []int32
	Diameter int32
	Rounds   int
}

// radiiSources picks up to 64 well-spread sources.
func radiiSources(n int) []uint32 {
	k := 64
	if n < k {
		k = n
	}
	srcs := make([]uint32, k)
	for i := range srcs {
		srcs[i] = uint32(i * n / k)
	}
	return srcs
}

// Radii runs the multi-source BFS on g (treated as directed; use an
// undirected/symmetrized graph for true radii). Baseline push variant.
func Radii(g *CSR, maxRounds int) *RadiiResult {
	return radiiRun(g, maxRounds, func(cur, next []uint64, radii []int32, round int32, changed *atomic.Bool) {
		for v := uint32(0); int(v) < g.N; v++ {
			m := cur[v]
			if m == 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if m&^next[u] != 0 { // irregular read-modify-write
					next[u] |= m
					if radii[u] < round {
						radii[u] = round
					}
					changed.Store(true)
				}
			}
		}
	})
}

// RadiiPB is the propagation-blocked variant: mask propagations are
// binned by destination before being OR-ed in with cache locality.
func RadiiPB(g *CSR, maxRounds int, o pb.Options) *RadiiResult {
	return radiiRun(g, maxRounds, func(cur, next []uint64, radii []int32, round int32, changed *atomic.Bool) {
		pb.Run(g.N, g.N,
			func(b, e int, emit func(uint32, uint64)) {
				for v := b; v < e; v++ {
					m := cur[v]
					if m == 0 {
						continue
					}
					for _, u := range g.Neighbors(uint32(v)) {
						emit(u, m)
					}
				}
			},
			func(u uint32, m uint64) {
				if m&^next[u] != 0 {
					next[u] |= m
					if radii[u] < round {
						radii[u] = round
					}
					changed.Store(true)
				}
			},
			o)
	})
}

func radiiRun(g *CSR, maxRounds int, propagate func(cur, next []uint64, radii []int32, round int32, changed *atomic.Bool)) *RadiiResult {
	n := g.N
	cur := make([]uint64, n)
	next := make([]uint64, n)
	radii := make([]int32, n)
	for i := range radii {
		radii[i] = -1
	}
	for i, s := range radiiSources(n) {
		cur[s] |= 1 << uint(i)
		radii[s] = 0
	}
	res := &RadiiResult{}
	for round := int32(1); int(round) <= maxRounds; round++ {
		copy(next, cur)
		var changed atomic.Bool
		propagate(cur, next, radii, round, &changed)
		if !changed.Load() {
			break
		}
		cur, next = next, cur
		res.Rounds++
	}
	res.Radii = radii
	for _, r := range radii {
		if r > res.Diameter {
			res.Diameter = r
		}
	}
	return res
}

// BFS runs a standard single-source BFS returning parent pointers
// (-1 for unreached). Used by tests to validate generators and by
// Radii's ground truth.
func BFS(g *CSR, source uint32) []int32 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[source] = int32(source)
	frontier := []uint32{source}
	for len(frontier) > 0 {
		var nextFrontier []uint32
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if parent[u] == -1 {
					parent[u] = int32(v)
					nextFrontier = append(nextFrontier, u)
				}
			}
		}
		frontier = nextFrontier
	}
	return parent
}
