package graph

// Connected components and single-source shortest paths: two further
// irregular-update kernels with unordered parallelism, extending the
// PB library beyond the paper's evaluated nine (its §III-B argument
// covers them: label-propagation updates are commutative min-reductions,
// so both software PB and COBRA-COMM apply).

import (
	"sync/atomic"

	"cobra/internal/pb"
)

// ConnectedComponents runs label propagation on an undirected view of g
// (edges are followed in both directions): every vertex starts with its
// own ID; each round, each vertex pushes its label to its neighbors,
// which keep the minimum. Converges to per-component minimum vertex IDs.
func ConnectedComponents(g *CSR) []uint32 {
	return ccRun(g, func(labels, next []uint32, changed *bool) {
		for v := uint32(0); int(v) < g.N; v++ {
			l := labels[v]
			for _, u := range g.Neighbors(v) {
				if l < next[u] {
					next[u] = l // irregular commutative (min) update
					*changed = true
				}
				if lu := labels[u]; lu < next[v] {
					next[v] = lu
					*changed = true
				}
			}
		}
	})
}

// ConnectedComponentsPB is the propagation-blocked variant: label
// pushes are binned by destination before the min-reduction applies.
func ConnectedComponentsPB(g *CSR, o pb.Options) []uint32 {
	return ccRun(g, func(labels, next []uint32, changed *bool) {
		var flag atomic.Bool
		pb.Run(g.N, g.N,
			func(b, e int, emit func(uint32, uint32)) {
				for v := b; v < e; v++ {
					l := labels[v]
					for _, u := range g.Neighbors(uint32(v)) {
						emit(u, l)
						emit(uint32(v), labels[u])
					}
				}
			},
			func(u uint32, l uint32) {
				if l < next[u] {
					next[u] = l
					flag.Store(true)
				}
			},
			o)
		if flag.Load() {
			*changed = true
		}
	})
}

func ccRun(g *CSR, round func(labels, next []uint32, changed *bool)) []uint32 {
	labels := make([]uint32, g.N)
	next := make([]uint32, g.N)
	for i := range labels {
		labels[i] = uint32(i)
	}
	for iter := 0; iter < g.N; iter++ {
		copy(next, labels)
		changed := false
		round(labels, next, &changed)
		labels, next = next, labels
		if !changed {
			break
		}
	}
	return labels
}

// InfDist marks unreachable vertices in SSSP results.
const InfDist = int64(1) << 62

// SSSP computes single-source shortest paths with unit-ish weights
// derived from edge endpoints (deterministic pseudo-weights in [1,8])
// using Bellman-Ford rounds of irregular min-updates.
func SSSP(g *CSR, source uint32) []int64 {
	return ssspRun(g, source, func(dist, next []int64, changed *bool) {
		for v := uint32(0); int(v) < g.N; v++ {
			dv := dist[v]
			if dv == InfDist {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if d := dv + int64(EdgeWeight(v, u)); d < next[u] {
					next[u] = d // irregular commutative (min) update
					*changed = true
				}
			}
		}
	})
}

// SSSPPB is the propagation-blocked Bellman-Ford.
func SSSPPB(g *CSR, source uint32, o pb.Options) []int64 {
	return ssspRun(g, source, func(dist, next []int64, changed *bool) {
		var flag atomic.Bool
		pb.Run(g.N, g.N,
			func(b, e int, emit func(uint32, uint64)) {
				for v := b; v < e; v++ {
					dv := dist[v]
					if dv == InfDist {
						continue
					}
					for _, u := range g.Neighbors(uint32(v)) {
						emit(u, uint64(dv+int64(EdgeWeight(uint32(v), u))))
					}
				}
			},
			func(u uint32, d uint64) {
				if int64(d) < next[u] {
					next[u] = int64(d)
					flag.Store(true)
				}
			},
			o)
		if flag.Load() {
			*changed = true
		}
	})
}

func ssspRun(g *CSR, source uint32, round func(dist, next []int64, changed *bool)) []int64 {
	dist := make([]int64, g.N)
	next := make([]int64, g.N)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[source] = 0
	for iter := 0; iter < g.N; iter++ {
		copy(next, dist)
		changed := false
		round(dist, next, &changed)
		dist, next = next, dist
		if !changed {
			break
		}
	}
	return dist
}

// EdgeWeight derives a deterministic pseudo-weight in [1, 8] for edge
// (v, u) — a stand-in for stored weights that keeps the CSR compact.
func EdgeWeight(v, u uint32) uint32 {
	x := uint64(v)*0x9e3779b97f4a7c15 ^ uint64(u)*0xbf58476d1ce4e5b9
	x ^= x >> 29
	return uint32(x&7) + 1
}
