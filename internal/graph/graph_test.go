package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"cobra/internal/pb"
	"cobra/internal/stats"
)

func sortedNeighbors(g *CSR, v uint32) []uint32 {
	ns := append([]uint32(nil), g.Neighbors(v)...)
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

func equalAsSets(t *testing.T, a, b *CSR) {
	t.Helper()
	if a.N != b.N || a.M() != b.M() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", a.N, a.M(), b.N, b.M())
	}
	for v := uint32(0); int(v) < a.N; v++ {
		na, nb := sortedNeighbors(a, v), sortedNeighbors(b, v)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d: neighbor sets differ", v)
			}
		}
	}
}

func TestBuildCSRBaseline(t *testing.T) {
	el := &EdgeList{N: 4, Edges: []Edge{{0, 1}, {0, 2}, {1, 3}, {3, 0}, {3, 2}}}
	g := BuildCSR(el, false, pb.Options{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 0 || g.Degree(3) != 2 {
		t.Fatalf("degrees wrong: offsets=%v", g.Offsets)
	}
	if ns := sortedNeighbors(g, 3); ns[0] != 0 || ns[1] != 2 {
		t.Fatalf("neighbors of 3 = %v", ns)
	}
}

func TestBuildCSRPBMatchesBaseline(t *testing.T) {
	el := RMAT(10, 8, 42)
	base := BuildCSR(el, false, pb.Options{})
	for _, o := range []pb.Options{{}, {NumBins: 4}, {NumBins: 64, Workers: 4}, {Workers: 1, NumBins: 1}} {
		pbg := BuildCSR(el, true, o)
		if err := pbg.Validate(); err != nil {
			t.Fatalf("opts %+v: %v", o, err)
		}
		equalAsSets(t, base, pbg)
	}
}

func TestDegreeCountPBProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, mRaw uint16) bool {
		n := int(nRaw%500) + 1
		m := int(mRaw % 5000)
		el := Uniform(n, m, seed)
		a := DegreeCount(el)
		b := DegreeCountPB(el, pb.Options{NumBins: 8, Workers: 3})
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSum(t *testing.T) {
	off := PrefixSum([]uint32{2, 0, 3})
	want := []uint32{0, 2, 2, 5}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("PrefixSum = %v", off)
		}
	}
	if got := PrefixSum(nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("PrefixSum(nil) = %v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	el := Uniform(100, 500, 1)
	g := BuildCSR(el, false, pb.Options{})
	bad := *g
	bad.Neighs = append([]uint32(nil), g.Neighs...)
	bad.Neighs[0] = 10000
	if bad.Validate() == nil {
		t.Fatal("out-of-range neighbor not caught")
	}
	bad2 := *g
	bad2.Offsets = append([]uint32(nil), g.Offsets...)
	bad2.Offsets[5] = bad2.Offsets[4] + 1<<30
	if bad2.Validate() == nil {
		t.Fatal("non-monotone offsets not caught")
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	el := RMAT(8, 8, 7)
	g := BuildCSR(el, false, pb.Options{})
	gtt := g.Transpose().Transpose()
	equalAsSets(t, g, gtt)
}

func TestTransposeReversesEdges(t *testing.T) {
	el := &EdgeList{N: 3, Edges: []Edge{{0, 1}, {1, 2}}}
	g := BuildCSR(el, false, pb.Options{})
	gt := g.Transpose()
	if gt.Degree(1) != 1 || gt.Neighbors(1)[0] != 0 {
		t.Fatalf("transpose wrong: %v %v", gt.Offsets, gt.Neighs)
	}
}

func TestToEdgeListRoundTrip(t *testing.T) {
	el := Uniform(50, 300, 9)
	g := BuildCSR(el, false, pb.Options{})
	g2 := BuildCSR(g.ToEdgeList(), false, pb.Options{})
	equalAsSets(t, g, g2)
}

func TestRMATIsSkewed(t *testing.T) {
	ds := Degrees(RMAT(12, 16, 1))
	if ds.MaxDeg < 100 {
		t.Fatalf("R-MAT max degree %d too small for power-law", ds.MaxDeg)
	}
	if ds.Top1PctShare < 0.1 {
		t.Fatalf("R-MAT top-1%% share %.3f too uniform", ds.Top1PctShare)
	}
}

func TestUniformIsNotSkewed(t *testing.T) {
	ds := Degrees(Uniform(4096, 4096*16, 2))
	if ds.MaxDeg > 64 {
		t.Fatalf("uniform max degree %d too skewed", ds.MaxDeg)
	}
}

func TestGridIsBoundedDegree(t *testing.T) {
	el := Grid(64, 64, 0.05, 3)
	ds := Degrees(el)
	if ds.MaxDeg > 8 {
		t.Fatalf("grid max degree %d, want <= 8", ds.MaxDeg)
	}
	// Lattice must be connected.
	g := BuildCSR(el, false, pb.Options{})
	parents := BFS(g, 0)
	for v, p := range parents {
		if p == -1 {
			t.Fatalf("vertex %d unreachable in grid", v)
		}
	}
}

func TestRMATScaleBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for absurd scale")
		}
	}()
	RMAT(40, 16, 1)
}

func TestStandardInputs(t *testing.T) {
	ins := StandardInputs(8, 1)
	if len(ins) != 4 {
		t.Fatalf("inputs = %d", len(ins))
	}
	for _, in := range ins {
		if in.EL.N == 0 || in.EL.M() == 0 {
			t.Fatalf("input %s empty", in.Name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := RMAT(8, 4, 99), RMAT(8, 4, 99)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
}

func TestPageRankPullConverges(t *testing.T) {
	el := RMAT(9, 8, 5)
	g := BuildCSR(el, false, pb.Options{})
	gt := g.Transpose()
	deg := DegreeCount(el)
	scores, iters := PageRankPull(gt, deg, 100, PREps)
	if iters == 100 {
		t.Fatal("pull PageRank did not converge in 100 iters")
	}
	sum := 0.0
	for _, s := range scores {
		if s < 0 {
			t.Fatal("negative score")
		}
		sum += s
	}
	if sum < 0.5 || sum > 1.5 {
		t.Fatalf("score mass = %v, want ~1", sum)
	}
}

func TestPageRankVariantsAgree(t *testing.T) {
	el := RMAT(9, 8, 5)
	g := BuildCSR(el, false, pb.Options{})
	gt := g.Transpose()
	deg := DegreeCount(el)
	pull, _ := PageRankPull(gt, deg, 50, 0) // fixed 50 iters for comparability
	push, _ := PageRankPush(g, 50, 0)
	pbScores, _ := PageRankPB(g, 50, 0, pb.Options{NumBins: 16, Workers: 4})
	for i := range pull {
		if d := abs(pull[i] - push[i]); d > 1e-9 {
			t.Fatalf("pull vs push at %d: %g vs %g", i, pull[i], push[i])
		}
		if d := abs(push[i] - pbScores[i]); d > 1e-9 {
			t.Fatalf("push vs PB at %d: %g vs %g", i, push[i], pbScores[i])
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRadiiMatchesBFSOnGrid(t *testing.T) {
	// On a small connected graph, the radius estimate from source bit 0
	// equals BFS depth from that source.
	el := Grid(16, 16, 0, 1)
	g := BuildCSR(el, false, pb.Options{})
	res := Radii(g, 1000)
	if res.Diameter <= 0 {
		t.Fatalf("diameter = %d", res.Diameter)
	}
	// Grid 16x16 diameter is ~30; sources are spread so estimates are
	// lower, but must be positive and bounded by the true diameter.
	if res.Diameter > 30 {
		t.Fatalf("diameter estimate %d exceeds the true grid diameter", res.Diameter)
	}
}

func TestRadiiPBMatchesBaseline(t *testing.T) {
	el := RMAT(8, 8, 11)
	g := BuildCSR(el, false, pb.Options{})
	a := Radii(g, 100)
	b := RadiiPB(g, 100, pb.Options{NumBins: 8, Workers: 4})
	if a.Diameter != b.Diameter || a.Rounds != b.Rounds {
		t.Fatalf("diameter/rounds: (%d,%d) vs (%d,%d)", a.Diameter, a.Rounds, b.Diameter, b.Rounds)
	}
	for i := range a.Radii {
		if a.Radii[i] != b.Radii[i] {
			t.Fatalf("radii differ at %d: %d vs %d", i, a.Radii[i], b.Radii[i])
		}
	}
}

func TestBFSParents(t *testing.T) {
	el := &EdgeList{N: 4, Edges: []Edge{{0, 1}, {1, 2}}}
	g := BuildCSR(el, false, pb.Options{})
	p := BFS(g, 0)
	if p[0] != 0 || p[1] != 0 || p[2] != 1 || p[3] != -1 {
		t.Fatalf("parents = %v", p)
	}
}

func TestDegreesStatsSanity(t *testing.T) {
	ds := Degrees(&EdgeList{N: 0})
	if ds.N != 0 {
		t.Fatal("empty edge list stats")
	}
	r := stats.NewRand(1)
	_ = r
	ds = Degrees(&EdgeList{N: 2, Edges: []Edge{{0, 1}, {0, 0}}})
	if ds.MaxDeg != 2 || ds.ZeroDegFrac != 0.5 {
		t.Fatalf("stats = %+v", ds)
	}
}
