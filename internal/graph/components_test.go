package graph

import (
	"testing"
	"testing/quick"

	"cobra/internal/pb"
)

// refComponents computes components by repeated BFS over the
// undirected view — independent ground truth for label propagation.
func refComponents(g *CSR) []uint32 {
	und := undirected(g)
	comp := make([]uint32, g.N)
	for i := range comp {
		comp[i] = ^uint32(0)
	}
	for s := uint32(0); int(s) < g.N; s++ {
		if comp[s] != ^uint32(0) {
			continue
		}
		// BFS labeling the component with its minimum vertex ID (= s,
		// since we scan ascending).
		frontier := []uint32{s}
		comp[s] = s
		for len(frontier) > 0 {
			var next []uint32
			for _, v := range frontier {
				for _, u := range und.Neighbors(v) {
					if comp[u] == ^uint32(0) {
						comp[u] = s
						next = append(next, u)
					}
				}
			}
			frontier = next
		}
	}
	return comp
}

// undirected symmetrizes g.
func undirected(g *CSR) *CSR {
	el := g.ToEdgeList()
	edges := make([]Edge, 0, 2*len(el.Edges))
	for _, e := range el.Edges {
		edges = append(edges, e, Edge{e.Dst, e.Src})
	}
	return BuildCSR(&EdgeList{N: g.N, Edges: edges}, false, pb.Options{})
}

func TestConnectedComponentsMatchesBFS(t *testing.T) {
	// A graph guaranteed to have multiple components: two disjoint grids.
	el := Grid(8, 8, 0, 1)
	shift := uint32(64)
	edges := append([]Edge(nil), el.Edges...)
	for _, e := range el.Edges {
		edges = append(edges, Edge{e.Src + shift, e.Dst + shift})
	}
	g := BuildCSR(&EdgeList{N: 128, Edges: edges}, false, pb.Options{})
	want := refComponents(g)
	got := ConnectedComponents(g)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("component[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if got[0] == got[64+0] {
		t.Fatal("disjoint grids merged")
	}
}

func TestConnectedComponentsPBMatches(t *testing.T) {
	el := RMAT(9, 4, 3)
	g := BuildCSR(el, false, pb.Options{})
	a := ConnectedComponents(g)
	b := ConnectedComponentsPB(g, pb.Options{NumBins: 16, Workers: 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PB components differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConnectedComponentsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		el := Uniform(n, 2*n, seed)
		g := BuildCSR(el, false, pb.Options{})
		got := ConnectedComponents(g)
		want := refComponents(g)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// refSSSP is Dijkstra-ish via repeated relaxation over the same
// pseudo-weights (a correct but simple reference).
func refSSSP(g *CSR, source uint32) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[source] = 0
	for iter := 0; iter < g.N; iter++ {
		changed := false
		for v := uint32(0); int(v) < g.N; v++ {
			if dist[v] == InfDist {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if d := dist[v] + int64(EdgeWeight(v, u)); d < dist[u] {
					dist[u] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestSSSPMatchesReference(t *testing.T) {
	el := RMAT(9, 6, 5)
	g := BuildCSR(el, false, pb.Options{})
	want := refSSSP(g, 0)
	got := SSSP(g, 0)
	gotPB := SSSPPB(g, 0, pb.Options{NumBins: 16, Workers: 4})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SSSP[%d] = %d, want %d", i, got[i], want[i])
		}
		if gotPB[i] != want[i] {
			t.Fatalf("SSSPPB[%d] = %d, want %d", i, gotPB[i], want[i])
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	el := &EdgeList{N: 3, Edges: []Edge{{0, 1}}}
	g := BuildCSR(el, false, pb.Options{})
	d := SSSP(g, 0)
	if d[0] != 0 || d[1] == InfDist || d[2] != InfDist {
		t.Fatalf("dist = %v", d)
	}
}

func TestSSSPTriangleInequalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		el := Uniform(40, 160, seed)
		g := BuildCSR(el, false, pb.Options{})
		d := SSSP(g, 0)
		// Relaxed final state: no edge can still improve a distance.
		for v := uint32(0); int(v) < g.N; v++ {
			if d[v] == InfDist {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if d[v]+int64(EdgeWeight(v, u)) < d[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeWeightRangeAndDeterminism(t *testing.T) {
	for v := uint32(0); v < 100; v++ {
		for u := uint32(0); u < 10; u++ {
			w := EdgeWeight(v, u)
			if w < 1 || w > 8 {
				t.Fatalf("weight(%d,%d) = %d out of [1,8]", v, u, w)
			}
			if w != EdgeWeight(v, u) {
				t.Fatal("weights not deterministic")
			}
		}
	}
}
