package graph

import (
	"testing"

	"cobra/internal/pb"
)

func benchEL() *EdgeList { return RMAT(16, 16, 1) }

func BenchmarkBuildCSRBaseline(b *testing.B) {
	el := benchEL()
	b.SetBytes(int64(8 * el.M()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCSR(el, false, pb.Options{})
	}
}

func BenchmarkBuildCSRPB(b *testing.B) {
	el := benchEL()
	b.SetBytes(int64(8 * el.M()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCSR(el, true, pb.Options{})
	}
}

func BenchmarkPageRankPull(b *testing.B) {
	el := benchEL()
	g := BuildCSR(el, false, pb.Options{})
	gt := g.Transpose()
	deg := DegreeCount(el)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRankPull(gt, deg, 5, 0)
	}
}

func BenchmarkPageRankPB(b *testing.B) {
	el := benchEL()
	g := BuildCSR(el, false, pb.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRankPB(g, 5, 0, pb.Options{})
	}
}

func BenchmarkRMATGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(14, 16, uint64(i))
	}
}
