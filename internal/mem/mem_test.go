package mem

import (
	"testing"
	"testing/quick"

	"cobra/internal/cache"
	"cobra/internal/stats"
)

func noPrefetch() Config {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	return cfg
}

func TestColdMissGoesToDRAM(t *testing.T) {
	h := New(noPrefetch())
	if l := h.Load(0x10000); l != DRAM {
		t.Fatalf("cold load serviced by %v, want DRAM", l)
	}
	if l := h.Load(0x10000); l != L1 {
		t.Fatalf("warm load serviced by %v, want L1", l)
	}
	if h.DRAMTraffic.ReadLines != 1 {
		t.Fatalf("DRAM reads = %d, want 1", h.DRAMTraffic.ReadLines)
	}
}

func TestL2AndLLCHitLevels(t *testing.T) {
	h := New(noPrefetch())
	h.Load(0x20000) // install everywhere
	// Evict from L1 only: walk enough conflicting lines to displace the
	// L1 copy but not the L2 copy. L1 set stride = 64 sets * 64B = 4KB.
	for i := uint64(1); i <= 8; i++ {
		h.Load(0x20000 + i*4096*257) // scattered lines, same L1 set occasionally
	}
	// Force-evict via L1 conflict set: 8 lines mapping to the same L1 set.
	setStride := uint64(h.L1c.Sets() * cache.LineSize)
	for i := uint64(1); i <= 8; i++ {
		h.Load(0x20000 + i*setStride)
	}
	if h.L1c.Probe(0x20000) {
		t.Skip("conflict walk failed to evict; geometry changed")
	}
	if l := h.Load(0x20000); l != L2 {
		t.Fatalf("load after L1-only eviction serviced by %v, want L2", l)
	}
}

func TestLatenciesOf(t *testing.T) {
	lat := DefaultLatencies()
	if lat.Of(L1) != 3 || lat.Of(L2) != 8 || lat.Of(LLC) != 21 || lat.Of(DRAM) != 212 {
		t.Fatalf("latencies = %+v", lat)
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || DRAM.String() != "DRAM" {
		t.Fatal("Level strings wrong")
	}
}

func TestStreamPrefetcherHidesStreamMisses(t *testing.T) {
	with := New(DefaultConfig())
	without := New(noPrefetch())
	// Stream 1024 sequential lines through both.
	var dramWith, dramWithout int
	for i := uint64(0); i < 1024; i++ {
		if with.Load(i*cache.LineSize) == DRAM {
			dramWith++
		}
		if without.Load(i*cache.LineSize) == DRAM {
			dramWithout++
		}
	}
	if dramWithout != 1024 {
		t.Fatalf("no-prefetch DRAM-serviced loads = %d, want 1024", dramWithout)
	}
	if dramWith >= dramWithout/2 {
		t.Fatalf("prefetcher barely helped: %d vs %d DRAM-latency loads", dramWith, dramWithout)
	}
	// Lines still move from DRAM once each (prefetch is latency hiding,
	// not traffic elimination).
	if with.DRAMTraffic.ReadLines < 1000 {
		t.Fatalf("prefetch hid traffic that must still flow: %d lines", with.DRAMTraffic.ReadLines)
	}
}

func TestPrefetcherDescendingStream(t *testing.T) {
	h := New(DefaultConfig())
	dram := 0
	for i := 2048; i >= 0; i-- {
		if h.Load(uint64(i)*cache.LineSize) == DRAM {
			dram++
		}
	}
	if dram > 1300 {
		t.Fatalf("descending stream: %d/2049 loads at DRAM latency; prefetcher should detect direction flips", dram)
	}
}

func TestPrefetcherIgnoresRandomAccesses(t *testing.T) {
	h := New(DefaultConfig())
	r := stats.NewRand(1)
	for i := 0; i < 4000; i++ {
		h.Load(uint64(r.Intn(1<<26)) &^ 3)
	}
	// Random traffic must not trigger a prefetch storm.
	if pf := h.DRAMTraffic.PrefetchLines; pf > h.DRAMTraffic.ReadLines/4 {
		t.Fatalf("random stream triggered %d prefetch lines of %d total reads", pf, h.DRAMTraffic.ReadLines)
	}
}

func TestStoreNTBypassAndWriteCombine(t *testing.T) {
	h := New(noPrefetch())
	// 8 NT stores into one absent line: one DRAM line write.
	for off := uint64(0); off < 64; off += 8 {
		if l := h.StoreNT(0x50000 + off); l != DRAM {
			t.Fatalf("NT store to absent line serviced by %v", l)
		}
	}
	if h.DRAMTraffic.WriteLines != 1 {
		t.Fatalf("write-combined NT stores produced %d line writes, want 1", h.DRAMTraffic.WriteLines)
	}
	// NT store to a resident line updates in place.
	h.Load(0x60000)
	if l := h.StoreNT(0x60000); l != L1 {
		t.Fatalf("NT store to resident line serviced by %v, want L1", l)
	}
}

func TestStoreNTSequentialStreamTraffic(t *testing.T) {
	h := New(noPrefetch())
	// 64 lines of sequential NT stores, 8 stores per line.
	for i := uint64(0); i < 64*8; i++ {
		h.StoreNT(0x100000 + i*8)
	}
	if h.DRAMTraffic.WriteLines != 64 {
		t.Fatalf("sequential NT stream wrote %d lines, want 64", h.DRAMTraffic.WriteLines)
	}
}

func TestDirtyEvictionReachesDRAM(t *testing.T) {
	cfg := noPrefetch()
	// Tiny hierarchy so evictions cascade quickly.
	cfg.L1 = cache.Config{Name: "L1", SizeB: 1 << 10, Ways: 2, Policy: cache.TrueLRU}
	cfg.L2 = cache.Config{Name: "L2", SizeB: 2 << 10, Ways: 2, Policy: cache.TrueLRU}
	cfg.LLC = cache.Config{Name: "LLC", SizeB: 4 << 10, Ways: 2, Policy: cache.TrueLRU}
	h := New(cfg)
	// Dirty a large footprint: every line written once, footprint 64KB >> LLC.
	for i := uint64(0); i < 1024; i++ {
		h.Store(i * cache.LineSize)
	}
	if h.DRAMTraffic.WriteLines == 0 {
		t.Fatal("dirty evictions never reached DRAM")
	}
	if h.DRAMTraffic.ReadLines < 1024 {
		t.Fatalf("reads = %d, want >= 1024 (write-allocate)", h.DRAMTraffic.ReadLines)
	}
}

func TestWriteLineDirect(t *testing.T) {
	h := New(noPrefetch())
	h.WriteLineDirect(10)
	h.ReadLineDirect(3)
	if h.DRAMTraffic.WriteLines != 10 || h.DRAMTraffic.ReadLines != 3 {
		t.Fatalf("direct traffic = %+v", h.DRAMTraffic)
	}
	if h.DRAMTraffic.Bytes() != 13*64 {
		t.Fatalf("Bytes = %d", h.DRAMTraffic.Bytes())
	}
}

func TestIrregularWorkingSetMissRates(t *testing.T) {
	// The phenomenon Figure 2 rests on: random updates over a footprint
	// much larger than the LLC slice mostly go to DRAM; over a footprint
	// inside L1 they mostly hit.
	run := func(footprint uint64) float64 {
		h := New(noPrefetch())
		r := stats.NewRand(7)
		dram := 0
		const n = 100000
		for i := 0; i < n; i++ {
			addr := r.Uint64n(footprint) &^ 3
			h.Load(addr)
			h.Store(addr)
			if false {
				_ = i
			}
		}
		l1m := h.L1c.Stats.MissRate()
		_ = dram
		return l1m
	}
	small := run(16 << 10) // 16 KB fits L1
	big := run(64 << 20)   // 64 MB >> LLC
	if small > 0.05 {
		t.Fatalf("in-L1 working set miss rate %.3f, want < .05", small)
	}
	// Each missing load is paired with a same-line store that hits, so
	// the ceiling is 0.5; anything close to it means loads ~always miss.
	if big < 0.45 {
		t.Fatalf("over-LLC working set L1 miss rate %.3f, want > .45", big)
	}
}

func TestMissSummaryMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		h := New(noPrefetch())
		r := stats.NewRand(seed)
		for i := 0; i < 3000; i++ {
			h.Load(r.Uint64n(1 << 24))
		}
		l1, l2, llc := h.MissSummary()
		// Demand misses cannot increase down the hierarchy.
		return l2 <= l1 && llc <= l2 && h.DRAMTraffic.ReadLines >= llc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	h := New(DefaultConfig())
	s := h.String()
	if s == "" {
		t.Fatal("empty description")
	}
}

func TestNUCAExtraCycles(t *testing.T) {
	cfg := noPrefetch()
	cfg.NUCA = DefaultNUCA()
	h := New(cfg)
	// Bank 0 sits at (0,0); core at (1,1): distance 2 -> 2*2*2 = 8 cycles.
	if e := h.LLCExtraCycles(0); e != 8 {
		t.Fatalf("bank-0 extra = %d, want 8", e)
	}
	// Bank 5 = (1,1): local, zero extra.
	if e := h.LLCExtraCycles(5 * 64); e != 0 {
		t.Fatalf("local bank extra = %d, want 0", e)
	}
	// Bank 15 = (3,3): distance 4 -> 16 cycles.
	if e := h.LLCExtraCycles(15 * 64); e != 16 {
		t.Fatalf("far bank extra = %d, want 16", e)
	}
	// Disabled by default.
	h2 := New(noPrefetch())
	if h2.LLCExtraCycles(0) != 0 {
		t.Fatal("NUCA charged while disabled")
	}
}

func TestNUCADistancesBounded(t *testing.T) {
	cfg := noPrefetch()
	cfg.NUCA = DefaultNUCA()
	h := New(cfg)
	maxExtra := uint32(2 * 6 * cfg.NUCA.HopCycles) // max Manhattan distance 6 from (1,1)... actually 4
	for line := uint64(0); line < 64; line++ {
		if e := h.LLCExtraCycles(line * 64); e > maxExtra {
			t.Fatalf("line %d extra %d exceeds bound %d", line, e, maxExtra)
		}
	}
}
