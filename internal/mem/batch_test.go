package mem

import (
	"math/rand"
	"reflect"
	"testing"

	"cobra/internal/cache"
)

// batchConfigs returns hierarchy configurations spanning the fast path
// (mask Bit-PLRU L1), the scalar fallback (TrueLRU L1), tiny caches
// (high conflict pressure), NUCA on/off, and prefetcher on/off.
func batchConfigs() map[string]Config {
	tiny := Config{
		L1:  cache.Config{Name: "L1", SizeB: 1 << 10, Ways: 2, Policy: cache.BitPLRU},
		L2:  cache.Config{Name: "L2", SizeB: 2 << 10, Ways: 2, Policy: cache.BitPLRU},
		LLC: cache.Config{Name: "LLC", SizeB: 4 << 10, Ways: 4, Policy: cache.DRRIP},
		Lat: DefaultLatencies(),
	}
	nuca := DefaultConfig()
	nuca.NUCA = DefaultNUCA()
	noPf := DefaultConfig()
	noPf.PrefetchStreams = 0
	noPf.PrefetchDegree = 0
	lruL1 := DefaultConfig()
	lruL1.L1.Policy = cache.TrueLRU
	tinyPf := tiny
	tinyPf.PrefetchStreams = 4
	tinyPf.PrefetchDegree = 2
	return map[string]Config{
		"default":  DefaultConfig(),
		"tiny":     tiny,
		"tiny_pf":  tinyPf,
		"nuca":     nuca,
		"no_pf":    noPf,
		"lru_l1":   lruL1,
		"reserved": DefaultConfig(), // ways reserved by the test body
	}
}

// replayScalar drives the scalar oracle API.
func replayScalar(h *Hierarchy, refs []Ref) []Level {
	out := make([]Level, len(refs))
	for i, r := range refs {
		switch r.Kind {
		case RefStore:
			out[i] = h.Store(r.Addr)
		case RefStoreNT:
			out[i] = h.StoreNT(r.Addr)
		default:
			out[i] = h.Load(r.Addr)
		}
	}
	return out
}

// snapshot captures every externally visible counter of a hierarchy.
type snapshot struct {
	L1, L2, LLC cache.Stats
	Traffic     Traffic
	L1Lines     int
	L2Lines     int
	LLCLines    int
}

func snap(h *Hierarchy) snapshot {
	return snapshot{
		L1: h.L1c.Stats, L2: h.L2c.Stats, LLC: h.LLCc.Stats,
		Traffic:  h.DRAMTraffic,
		L1Lines:  h.L1c.OccupiedLines(),
		L2Lines:  h.L2c.OccupiedLines(),
		LLCLines: h.LLCc.OccupiedLines(),
	}
}

// genRefs builds a stream mixing streaming runs, same-line bursts
// (the coalescing cases), pointer-chasing randomness, and NT stores.
func genRefs(rng *rand.Rand, n int, addrSpace uint64) []Ref {
	refs := make([]Ref, 0, n)
	for len(refs) < n {
		addr := rng.Uint64() % addrSpace
		kind := RefKind(rng.Intn(3))
		run := 1
		switch rng.Intn(4) {
		case 0: // same-line burst: consecutive refs within one line
			run = 1 + rng.Intn(6)
		case 1: // short sequential run feeding the prefetcher
			run = 1 + rng.Intn(8)
		}
		for j := 0; j < run && len(refs) < n; j++ {
			a := addr
			if rng.Intn(4) == 1 {
				a = addr + uint64(j)*cache.LineSize
			} else {
				a = addr + uint64(rng.Intn(cache.LineSize))
			}
			k := kind
			if rng.Intn(3) == 0 {
				k = RefKind(rng.Intn(3))
			}
			refs = append(refs, Ref{Addr: a, Kind: k})
		}
	}
	return refs[:n]
}

// TestAccessBatchMatchesScalar replays identical random streams through
// AccessBatch and the scalar API on twin hierarchies and requires every
// counter, residency count, and returned level to be bit-identical.
func TestAccessBatchMatchesScalar(t *testing.T) {
	for name, cfg := range batchConfigs() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 8; trial++ {
				scalar := New(cfg)
				batched := New(cfg)
				if name == "reserved" {
					for _, h := range []*Hierarchy{scalar, batched} {
						if err := h.L1c.ReserveWays(2); err != nil {
							t.Fatal(err)
						}
						if err := h.LLCc.ReserveWays(4); err != nil {
							t.Fatal(err)
						}
					}
				}
				// Vary batch sizes so batch boundaries land mid-run.
				refs := genRefs(rng, 2000+rng.Intn(1000), 1<<uint(14+trial))
				want := replayScalar(scalar, refs)
				var got []Level
				var buf []Level
				for off := 0; off < len(refs); {
					sz := 1 + rng.Intn(97)
					if off+sz > len(refs) {
						sz = len(refs) - off
					}
					buf = batched.AccessBatch(refs[off:off+sz], buf)
					got = append(got, buf...)
					off += sz
				}
				if !reflect.DeepEqual(want, got) {
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("trial %d: level mismatch at ref %d (%+v): scalar=%v batched=%v",
								trial, i, refs[i], want[i], got[i])
						}
					}
				}
				if s, b := snap(scalar), snap(batched); s != b {
					t.Fatalf("trial %d: state diverged\nscalar:  %+v\nbatched: %+v", trial, s, b)
				}
			}
		})
	}
}

// TestAccessBatchInterleavedWithScalar checks the handoff points: a
// hierarchy may freely alternate between batched and scalar calls.
func TestAccessBatchInterleavedWithScalar(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(7))
	oracle := New(cfg)
	mixed := New(cfg)
	refs := genRefs(rng, 4000, 1<<18)
	want := replayScalar(oracle, refs)
	var got, buf []Level
	for off := 0; off < len(refs); {
		sz := 1 + rng.Intn(50)
		if off+sz > len(refs) {
			sz = len(refs) - off
		}
		if rng.Intn(2) == 0 {
			got = append(got, replayScalar(mixed, refs[off:off+sz])...)
		} else {
			buf = mixed.AccessBatch(refs[off:off+sz], buf)
			got = append(got, buf...)
		}
		off += sz
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("interleaved levels diverged from scalar oracle")
	}
	if s, b := snap(oracle), snap(mixed); s != b {
		t.Fatalf("interleaved state diverged\nscalar: %+v\nmixed:  %+v", s, b)
	}
}

// FuzzAccessBatch asserts scalar/batched equivalence on fuzzer-chosen
// streams: every returned level and every counter must match.
func FuzzAccessBatch(f *testing.F) {
	f.Add(uint64(1), uint8(3), []byte{0, 1, 2, 3, 40, 41, 200})
	f.Add(uint64(99), uint8(16), []byte{7, 7, 7, 7, 7, 7})
	f.Add(uint64(12345), uint8(30), []byte{255, 0, 255, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, seed uint64, spaceBits uint8, raw []byte) {
		if len(raw) == 0 || len(raw) > 1<<14 {
			t.Skip()
		}
		bits := uint(spaceBits%28) + 8
		rng := rand.New(rand.NewSource(int64(seed)))
		// Derive a ref stream from the raw bytes: each byte contributes
		// an address perturbation and a kind; the rng picks stream bases.
		base := rng.Uint64() % (1 << bits)
		refs := make([]Ref, 0, len(raw))
		for _, b := range raw {
			switch b % 7 {
			case 0: // new random base
				base = rng.Uint64() % (1 << bits)
			case 1: // next line (streaming)
				base += cache.LineSize
			case 2: // same line, different offset
				base = (base &^ uint64(cache.LineSize-1)) + uint64(b%cache.LineSize)
			}
			refs = append(refs, Ref{Addr: base % (1 << bits), Kind: RefKind(b % 3)})
		}
		tiny := Config{
			L1:  cache.Config{Name: "L1", SizeB: 1 << 10, Ways: 2, Policy: cache.BitPLRU},
			L2:  cache.Config{Name: "L2", SizeB: 2 << 10, Ways: 2, Policy: cache.BitPLRU},
			LLC: cache.Config{Name: "LLC", SizeB: 4 << 10, Ways: 4, Policy: cache.DRRIP},
			Lat: DefaultLatencies(),
		}
		tiny.PrefetchStreams = 4
		tiny.PrefetchDegree = 2
		for _, cfg := range []Config{DefaultConfig(), tiny} {
			scalar := New(cfg)
			batched := New(cfg)
			want := replayScalar(scalar, refs)
			got := batched.AccessBatch(refs, nil)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("levels diverged (cfg %s)", cfg.L1.Name)
			}
			if s, b := snap(scalar), snap(batched); s != b {
				t.Fatalf("state diverged\nscalar:  %+v\nbatched: %+v", s, b)
			}
		}
	})
}

// TestAccessBatchL1HitPathAllocs pins the batched L1-hit path at zero
// allocations per call once the level buffer is warm.
func TestAccessBatchL1HitPathAllocs(t *testing.T) {
	h := New(DefaultConfig())
	refs := make([]Ref, 256)
	for i := range refs {
		// 4 lines, all L1-resident after warmup; mixed kinds.
		refs[i] = Ref{Addr: uint64(i%4) * cache.LineSize, Kind: RefKind(i % 3)}
	}
	out := h.AccessBatch(refs, nil) // warm: fills lines and the buffer
	allocs := testing.AllocsPerRun(100, func() {
		out = h.AccessBatch(refs, out)
	})
	if allocs != 0 {
		t.Fatalf("batched L1-hit path allocates: %v allocs/op", allocs)
	}
}

// BenchmarkHierarchyAccessScalar measures the per-reference scalar path
// on an L1-resident working set (the hot-loop case the batch API
// optimizes).
func BenchmarkHierarchyAccessScalar(b *testing.B) {
	h := New(DefaultConfig())
	refs := benchRefs()
	replayScalar(h, refs) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayScalar(h, refs)
	}
	b.SetBytes(int64(len(refs)))
}

// BenchmarkHierarchyAccessBatch measures the same stream through
// AccessBatch.
func BenchmarkHierarchyAccessBatch(b *testing.B) {
	h := New(DefaultConfig())
	refs := benchRefs()
	out := h.AccessBatch(refs, nil) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = h.AccessBatch(refs, out)
	}
	b.SetBytes(int64(len(refs)))
}

// benchRefs mimics an accumulate inner loop: sequential tuple loads
// from a bin interleaved with read-modify-write pairs to a small
// cache-resident region.
func benchRefs() []Ref {
	refs := make([]Ref, 0, 4096)
	const region = 16 << 10 // 16 KB accumulator region: L1-resident
	bin := uint64(1 << 30)
	for i := 0; len(refs) < cap(refs); i++ {
		refs = append(refs, Ref{Addr: bin, Kind: RefLoad})
		bin += 16
		key := uint64(i*2654435761) % region
		refs = append(refs, Ref{Addr: key, Kind: RefLoad})
		refs = append(refs, Ref{Addr: key, Kind: RefStore})
	}
	return refs
}
