// Package mem composes cache levels into the three-level hierarchy of
// the simulated machine (Table II of the paper): private L1 and L2, a
// NUCA LLC slice local to the core, and DRAM. It adds the L2 stream
// prefetcher, non-temporal store handling with write-combining, and
// DRAM traffic accounting.
//
// The hierarchy is functional (which level serviced an access, what
// traffic moved); cycle costs are attached by package cpu using the
// Level returned from each access.
package mem

import (
	"fmt"

	"cobra/internal/cache"
)

// Level identifies which part of the hierarchy serviced an access.
type Level int

// Hierarchy levels, nearest first.
const (
	L1 Level = iota
	L2
	LLC
	DRAM
)

// String returns the level's display name.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case DRAM:
		return "DRAM"
	}
	return "unknown"
}

// Latencies gives load-to-use cycles per level (Table II: 3/8/21 and
// 80 ns DRAM ≈ 212 cycles at 2.66 GHz).
type Latencies struct {
	L1, L2, LLC, DRAM uint32
}

// DefaultLatencies mirrors Table II.
func DefaultLatencies() Latencies { return Latencies{L1: 3, L2: 8, LLC: 21, DRAM: 212} }

// Of returns the latency for servicing level l.
func (lat Latencies) Of(l Level) uint32 {
	switch l {
	case L1:
		return lat.L1
	case L2:
		return lat.L2
	case LLC:
		return lat.LLC
	default:
		return lat.DRAM
	}
}

// Config describes the per-core hierarchy slice.
type Config struct {
	L1, L2, LLC cache.Config
	Lat         Latencies
	// Prefetch configures the L2 stream prefetcher; Degree 0 disables it.
	PrefetchStreams int
	PrefetchDegree  int
	// NUCA, when enabled, charges NoC hop latency for LLC accesses that
	// land on remote banks of the shared, address-interleaved LLC
	// (Table II: 4x4 mesh, 2 cycles/hop). Off by default: the base
	// model treats the LLC as the core-local NUCA slice, which is how
	// COBRA pins its C-Buffers; NUCA mode sharpens the BASELINE's cost
	// of scattering over the whole shared LLC.
	NUCA NUCAConfig
}

// NUCAConfig describes the mesh the shared LLC banks sit on.
type NUCAConfig struct {
	Enable    bool
	MeshDim   int // MeshDim x MeshDim banks (Table II: 4)
	HopCycles int // per-hop latency (Table II: 2)
	CoreX     int // this core's mesh position
	CoreY     int
}

// DefaultNUCA mirrors Table II with the core at a central position.
func DefaultNUCA() NUCAConfig {
	return NUCAConfig{Enable: true, MeshDim: 4, HopCycles: 2, CoreX: 1, CoreY: 1}
}

// LLCExtraCycles returns the round-trip NoC latency for the bank
// holding addr (0 when NUCA modeling is off or the bank is local).
func (h *Hierarchy) LLCExtraCycles(addr uint64) uint32 {
	n := h.cfg.NUCA
	if !n.Enable || n.MeshDim <= 1 {
		return 0
	}
	bank := int(addr>>cache.LineBits) % (n.MeshDim * n.MeshDim)
	bx, by := bank%n.MeshDim, bank/n.MeshDim
	dist := abs(bx-n.CoreX) + abs(by-n.CoreY)
	return uint32(2 * dist * n.HopCycles) // request + response traversal
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DefaultConfig mirrors Table II: 32 KB/8-way Bit-PLRU L1, 256 KB/8-way
// Bit-PLRU L2, 2 MB/16-way DRRIP LLC slice (the core-local NUCA bank).
func DefaultConfig() Config {
	return Config{
		L1:              cache.Config{Name: "L1", SizeB: 32 << 10, Ways: 8, Policy: cache.BitPLRU},
		L2:              cache.Config{Name: "L2", SizeB: 256 << 10, Ways: 8, Policy: cache.BitPLRU},
		LLC:             cache.Config{Name: "LLC", SizeB: 2 << 20, Ways: 16, Policy: cache.DRRIP},
		Lat:             DefaultLatencies(),
		PrefetchStreams: 16,
		PrefetchDegree:  4,
	}
}

// Traffic counts DRAM transfers in cache lines.
type Traffic struct {
	ReadLines     uint64 // demand + prefetch fills from DRAM
	WriteLines    uint64 // LLC writebacks + non-temporal stores
	PrefetchLines uint64 // subset of ReadLines initiated by the prefetcher
}

// Bytes returns total DRAM bytes moved.
func (t Traffic) Bytes() uint64 { return (t.ReadLines + t.WriteLines) * cache.LineSize }

// Hierarchy is one core's view of the memory system.
type Hierarchy struct {
	cfg Config

	L1c  *cache.Cache
	L2c  *cache.Cache
	LLCc *cache.Cache

	pf wcAndPf

	DRAMTraffic Traffic
}

// wcAndPf bundles the prefetcher stream table and the non-temporal
// write-combining buffer state.
type wcAndPf struct {
	streams []stream
	clock   uint64
	degree  int

	// Non-temporal store write-combining: last few line addresses seen,
	// so a burst of NT stores to one line costs one DRAM write.
	wcLines [4]uint64
	wcValid [4]bool
	wcNext  int
}

type stream struct {
	lastLine uint64
	dir      int64 // +1 or -1
	conf     int
	lastUse  uint64
	valid    bool
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg:  cfg,
		L1c:  cache.New(cfg.L1),
		L2c:  cache.New(cfg.L2),
		LLCc: cache.New(cfg.LLC),
	}
	h.pf.streams = make([]stream, cfg.PrefetchStreams)
	h.pf.degree = cfg.PrefetchDegree
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Load performs a demand load and returns the servicing level.
func (h *Hierarchy) Load(addr uint64) Level { return h.access(addr, false) }

// Store performs a demand store (write-allocate) and returns the level
// that serviced the fill (L1 when the line was already resident).
func (h *Hierarchy) Store(addr uint64) Level { return h.access(addr, true) }

// StoreNT performs a non-temporal store: caches are updated only if the
// line is already resident; otherwise the write bypasses the hierarchy
// and write-combines to DRAM. Returns the level charged (L1 when it hit
// a resident line, DRAM otherwise).
func (h *Hierarchy) StoreNT(addr uint64) Level {
	if r := h.L1c.WriteNT(addr); r.Hit {
		return L1
	}
	if r := h.L2c.WriteNT(addr); r.Hit {
		return L2
	}
	if r := h.LLCc.WriteNT(addr); r.Hit {
		return LLC
	}
	h.writeCombine(addr)
	return DRAM
}

// WriteLineDirect models a full-line DRAM write that bypasses the cache
// hierarchy entirely (COBRA's LLC C-Buffer eviction writing a line-sized
// burst of tuples to an in-memory bin). lines counts 64 B units.
func (h *Hierarchy) WriteLineDirect(lines uint64) { h.DRAMTraffic.WriteLines += lines }

// ReadLineDirect models a full-line DRAM read bypassing the caches.
func (h *Hierarchy) ReadLineDirect(lines uint64) { h.DRAMTraffic.ReadLines += lines }

func (h *Hierarchy) access(addr uint64, write bool) Level {
	if r := h.L1c.Access(addr, write); r.Hit {
		return L1
	} else if r.WroteBack {
		h.installWriteback(h.L2c, r.VictimAddr, LLC)
	}
	// L1 miss: probe L2 (prefetcher observes the L1-miss stream).
	h.observeStream(addr)
	if r := h.L2c.Access(addr, false); r.Hit {
		return L1fillFrom(L2)
	} else if r.WroteBack {
		h.installWriteback(h.LLCc, r.VictimAddr, DRAM)
	}
	if r := h.LLCc.Access(addr, false); r.Hit {
		return L1fillFrom(LLC)
	} else if r.WroteBack {
		h.DRAMTraffic.WriteLines++
	}
	h.DRAMTraffic.ReadLines++
	return DRAM
}

// L1fillFrom exists to make the control flow above read naturally; the
// fill into upper levels has already happened via Access side effects
// conceptually (we model upper-level fills implicitly: the line was
// installed in L1 by the initial Access call's miss path).
func L1fillFrom(l Level) Level { return l }

// installWriteback installs a dirty victim from level i into level i+1.
// If that displaces another dirty line, the cascade continues (next ==
// DRAM means count traffic).
func (h *Hierarchy) installWriteback(c *cache.Cache, victim uint64, next Level) {
	r := c.Access(victim, true) // write-allocate the writeback
	// Undo the demand-stat pollution: writeback installs are not demand
	// accesses from the core's perspective.
	if r.Hit {
		c.Stats.Hits--
	} else {
		c.Stats.Misses--
		c.Stats.Fills--
	}
	if r.WroteBack {
		if next == DRAM {
			h.DRAMTraffic.WriteLines++
		} else {
			h.DRAMTraffic.WriteLines++ // LLC victim of an L2 writeback cascade
		}
	}
}

func (h *Hierarchy) writeCombine(addr uint64) {
	line := addr &^ uint64(cache.LineSize-1)
	for i := range h.pf.wcLines {
		if h.pf.wcValid[i] && h.pf.wcLines[i] == line {
			return // combined into an open WC entry
		}
	}
	h.pf.wcLines[h.pf.wcNext] = line
	h.pf.wcValid[h.pf.wcNext] = true
	h.pf.wcNext = (h.pf.wcNext + 1) % len(h.pf.wcLines)
	h.DRAMTraffic.WriteLines++
}

// observeStream feeds the L2 stream prefetcher with the L1-miss stream.
// On a detected ascending or descending stream it prefetches the next
// `degree` lines into L2 (and LLC if absent), counting DRAM traffic for
// lines not already on chip.
func (h *Hierarchy) observeStream(addr uint64) {
	if h.pf.degree == 0 || len(h.pf.streams) == 0 {
		return
	}
	line := addr >> cache.LineBits
	h.pf.clock++
	best := -1
	for i := range h.pf.streams {
		s := &h.pf.streams[i]
		if !s.valid {
			continue
		}
		if line == s.lastLine+uint64(s.dir) || line == s.lastLine {
			if line != s.lastLine {
				s.conf++
				s.lastLine = line
			}
			s.lastUse = h.pf.clock
			if s.conf >= 2 {
				h.issuePrefetches(line, s.dir)
			}
			return
		}
		if line == s.lastLine-uint64(s.dir) { // direction flip candidate
			s.dir = -s.dir
			s.conf = 1
			s.lastLine = line
			s.lastUse = h.pf.clock
			return
		}
		if best < 0 || s.lastUse < h.pf.streams[best].lastUse {
			best = i
		}
	}
	// Allocate a new stream entry (reuse invalid or LRU slot).
	for i := range h.pf.streams {
		if !h.pf.streams[i].valid {
			best = i
			break
		}
	}
	h.pf.streams[best] = stream{lastLine: line, dir: 1, conf: 0, lastUse: h.pf.clock, valid: true}
}

func (h *Hierarchy) issuePrefetches(line uint64, dir int64) {
	for k := 1; k <= h.pf.degree; k++ {
		next := line + uint64(int64(k)*dir)
		addr := next << cache.LineBits
		if h.L2c.Probe(addr) {
			continue
		}
		if !h.LLCc.Probe(addr) {
			h.DRAMTraffic.ReadLines++
			h.DRAMTraffic.PrefetchLines++
			h.LLCc.Prefetch(addr)
		}
		h.L2c.Prefetch(addr)
	}
}

// MissSummary returns per-level demand misses for reporting.
func (h *Hierarchy) MissSummary() (l1, l2, llc uint64) {
	return h.L1c.Stats.Misses, h.L2c.Stats.Misses, h.LLCc.Stats.Misses
}

// String summarizes the hierarchy for logs.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("L1 %dKB/%dw %s | L2 %dKB/%dw %s | LLC %dMB/%dw %s",
		h.cfg.L1.SizeB>>10, h.cfg.L1.Ways, h.cfg.L1.Policy,
		h.cfg.L2.SizeB>>10, h.cfg.L2.Ways, h.cfg.L2.Policy,
		h.cfg.LLC.SizeB>>20, h.cfg.LLC.Ways, h.cfg.LLC.Policy)
}
