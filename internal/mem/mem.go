// Package mem composes cache levels into the three-level hierarchy of
// the simulated machine (Table II of the paper): private L1 and L2, a
// NUCA LLC slice local to the core, and DRAM. It adds the L2 stream
// prefetcher, non-temporal store handling with write-combining, and
// DRAM traffic accounting.
//
// The hierarchy is functional (which level serviced an access, what
// traffic moved); cycle costs are attached by package cpu using the
// Level returned from each access.
package mem

import (
	"fmt"

	"cobra/internal/cache"
)

// Level identifies which part of the hierarchy serviced an access.
type Level int

// Hierarchy levels, nearest first.
const (
	L1 Level = iota
	L2
	LLC
	DRAM
)

// String returns the level's display name.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case DRAM:
		return "DRAM"
	}
	return "unknown"
}

// Latencies gives load-to-use cycles per level (Table II: 3/8/21 and
// 80 ns DRAM ≈ 212 cycles at 2.66 GHz).
type Latencies struct {
	L1, L2, LLC, DRAM uint32
}

// DefaultLatencies mirrors Table II.
func DefaultLatencies() Latencies { return Latencies{L1: 3, L2: 8, LLC: 21, DRAM: 212} }

// Of returns the latency for servicing level l.
func (lat Latencies) Of(l Level) uint32 {
	switch l {
	case L1:
		return lat.L1
	case L2:
		return lat.L2
	case LLC:
		return lat.LLC
	default:
		return lat.DRAM
	}
}

// Config describes the per-core hierarchy slice.
type Config struct {
	L1, L2, LLC cache.Config
	Lat         Latencies
	// Prefetch configures the L2 stream prefetcher; Degree 0 disables it.
	PrefetchStreams int
	PrefetchDegree  int
	// NUCA, when enabled, charges NoC hop latency for LLC accesses that
	// land on remote banks of the shared, address-interleaved LLC
	// (Table II: 4x4 mesh, 2 cycles/hop). Off by default: the base
	// model treats the LLC as the core-local NUCA slice, which is how
	// COBRA pins its C-Buffers; NUCA mode sharpens the BASELINE's cost
	// of scattering over the whole shared LLC.
	NUCA NUCAConfig
}

// NUCAConfig describes the mesh the shared LLC banks sit on.
type NUCAConfig struct {
	Enable    bool
	MeshDim   int // MeshDim x MeshDim banks (Table II: 4)
	HopCycles int // per-hop latency (Table II: 2)
	CoreX     int // this core's mesh position
	CoreY     int
}

// DefaultNUCA mirrors Table II with the core at a central position.
func DefaultNUCA() NUCAConfig {
	return NUCAConfig{Enable: true, MeshDim: 4, HopCycles: 2, CoreX: 1, CoreY: 1}
}

// LLCExtraCycles returns the round-trip NoC latency for the bank
// holding addr (0 when NUCA modeling is off or the bank is local).
func (h *Hierarchy) LLCExtraCycles(addr uint64) uint32 {
	n := h.cfg.NUCA
	if !n.Enable || n.MeshDim <= 1 {
		return 0
	}
	bank := int(addr>>cache.LineBits) % (n.MeshDim * n.MeshDim)
	bx, by := bank%n.MeshDim, bank/n.MeshDim
	dist := abs(bx-n.CoreX) + abs(by-n.CoreY)
	return uint32(2 * dist * n.HopCycles) // request + response traversal
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DefaultConfig mirrors Table II: 32 KB/8-way Bit-PLRU L1, 256 KB/8-way
// Bit-PLRU L2, 2 MB/16-way DRRIP LLC slice (the core-local NUCA bank).
func DefaultConfig() Config {
	return Config{
		L1:              cache.Config{Name: "L1", SizeB: 32 << 10, Ways: 8, Policy: cache.BitPLRU},
		L2:              cache.Config{Name: "L2", SizeB: 256 << 10, Ways: 8, Policy: cache.BitPLRU},
		LLC:             cache.Config{Name: "LLC", SizeB: 2 << 20, Ways: 16, Policy: cache.DRRIP},
		Lat:             DefaultLatencies(),
		PrefetchStreams: 16,
		PrefetchDegree:  4,
	}
}

// Traffic counts DRAM transfers in cache lines.
type Traffic struct {
	ReadLines     uint64 // demand + prefetch fills from DRAM
	WriteLines    uint64 // LLC writebacks + non-temporal stores
	PrefetchLines uint64 // subset of ReadLines initiated by the prefetcher
}

// Bytes returns total DRAM bytes moved.
func (t Traffic) Bytes() uint64 { return (t.ReadLines + t.WriteLines) * cache.LineSize }

// Hierarchy is one core's view of the memory system.
type Hierarchy struct {
	cfg Config

	L1c  *cache.Cache
	L2c  *cache.Cache
	LLCc *cache.Cache

	pf wcAndPf

	// Verified-slot cache over the L2 metadata, shared by the demand
	// miss path, the prefetcher's residency probes, and L1-victim
	// writeback installs. Each slot remembers where a line was last
	// located in L2 (its packed-metadata index); a slot is trusted only
	// after the live metadata word re-verifies (valid + tag), so
	// intervening evictions, resets, or reservations can never fake a
	// hit — they just fall back to the full way scan. Entries are
	// recorded exclusively from find/fill results, so a verified index
	// always lies in a non-reserved way (the ways find itself scans).
	l2SlotLine [64]uint64
	l2SlotIdx  [64]int32
	l2Meta     []uint64 // L2 packed metadata (slice identity is stable)
	l2SetMask  uint64
	l2TagShift uint
	l2Ways     int

	DRAMTraffic Traffic
}

// wcAndPf bundles the prefetcher stream table and the non-temporal
// write-combining buffer state.
type wcAndPf struct {
	// Stream table, struct-of-arrays: the detection scan in
	// observeStream runs on every L1 demand miss and touches only
	// lastLine (two cache lines at 16 streams) instead of a struct per
	// stream. A stream is live iff lastUse != 0 — the clock
	// pre-increments, so an allocated entry's stamp is always ≥ 1 —
	// and streams are never invalidated. Never-allocated entries hold
	// an unreachable sentinel lastLine (no line address reaches
	// 2^58), so the match scan needs no liveness check.
	lastLine []uint64
	lastUse  []uint64
	dir      []int64 // +1 or -1
	conf     []int
	clock    uint64
	degree   int
	nvalid   int // live entries; never decreases

	// Non-temporal store write-combining: last few line addresses seen,
	// so a burst of NT stores to one line costs one DRAM write.
	wcLines [4]uint64
	wcValid [4]bool
	wcNext  int
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg:  cfg,
		L1c:  cache.New(cfg.L1),
		L2c:  cache.New(cfg.L2),
		LLCc: cache.New(cfg.LLC),
	}
	h.pf.lastLine = make([]uint64, cfg.PrefetchStreams)
	for i := range h.pf.lastLine {
		h.pf.lastLine[i] = ^uint64(0) // sentinel: never matches a real line
	}
	h.pf.lastUse = make([]uint64, cfg.PrefetchStreams)
	h.pf.dir = make([]int64, cfg.PrefetchStreams)
	h.pf.conf = make([]int, cfg.PrefetchStreams)
	l2v := h.L2c.BatchView()
	h.l2Meta = l2v.Meta
	h.l2SetMask = l2v.SetMask
	h.l2TagShift = cache.LineBits + l2v.SetBits
	h.l2Ways = l2v.Ways
	for i := range h.l2SlotLine {
		h.l2SlotLine[i] = ^uint64(0) // unreachable line: slots start cold
	}
	h.pf.degree = cfg.PrefetchDegree
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Load performs a demand load and returns the servicing level.
func (h *Hierarchy) Load(addr uint64) Level { return h.access(addr, false) }

// Store performs a demand store (write-allocate) and returns the level
// that serviced the fill (L1 when the line was already resident).
func (h *Hierarchy) Store(addr uint64) Level { return h.access(addr, true) }

// StoreNT performs a non-temporal store: caches are updated only if the
// line is already resident; otherwise the write bypasses the hierarchy
// and write-combines to DRAM. Returns the level charged (L1 when it hit
// a resident line, DRAM otherwise).
func (h *Hierarchy) StoreNT(addr uint64) Level {
	if r := h.L1c.WriteNT(addr); r.Hit {
		return L1
	}
	if r := h.L2c.WriteNT(addr); r.Hit {
		return L2
	}
	if r := h.LLCc.WriteNT(addr); r.Hit {
		return LLC
	}
	h.writeCombine(addr)
	return DRAM
}

// WriteLineDirect models a full-line DRAM write that bypasses the cache
// hierarchy entirely (COBRA's LLC C-Buffer eviction writing a line-sized
// burst of tuples to an in-memory bin). lines counts 64 B units.
func (h *Hierarchy) WriteLineDirect(lines uint64) { h.DRAMTraffic.WriteLines += lines }

// ReadLineDirect models a full-line DRAM read bypassing the caches.
func (h *Hierarchy) ReadLineDirect(lines uint64) { h.DRAMTraffic.ReadLines += lines }

func (h *Hierarchy) access(addr uint64, write bool) Level {
	if r := h.L1c.Access(addr, write); r.Hit {
		return L1
	} else if r.WroteBack {
		h.installWriteback(h.L2c, r.VictimAddr, LLC)
	}
	// L1 miss: probe L2 (prefetcher observes the L1-miss stream).
	h.observeStream(addr)
	if r := h.L2c.Access(addr, false); r.Hit {
		return L1fillFrom(L2)
	} else if r.WroteBack {
		h.installWriteback(h.LLCc, r.VictimAddr, DRAM)
	}
	if r := h.LLCc.Access(addr, false); r.Hit {
		return L1fillFrom(LLC)
	} else if r.WroteBack {
		h.DRAMTraffic.WriteLines++
	}
	h.DRAMTraffic.ReadLines++
	return DRAM
}

// L1fillFrom exists to make the control flow above read naturally; the
// fill into upper levels has already happened via Access side effects
// conceptually (we model upper-level fills implicitly: the line was
// installed in L1 by the initial Access call's miss path).
func L1fillFrom(l Level) Level { return l }

// installWriteback installs a dirty victim from level i into level i+1.
// If that displaces another dirty line, the cascade continues (next ==
// DRAM means count traffic).
func (h *Hierarchy) installWriteback(c *cache.Cache, victim uint64, next Level) {
	if c == h.L2c {
		// L1 victims usually still sit in L2 (they were filled from
		// it); a slot-verified hit is Access's hit path with the hit
		// count immediately undone — i.e. dirty mark + touch only.
		line := victim >> cache.LineBits
		slot := line & 63
		want := victim>>h.l2TagShift<<cache.MetaTagShift | cache.MetaValid
		if h.l2SlotLine[slot] == line && h.l2Meta[h.l2SlotIdx[slot]]&^cache.MetaDirty == want {
			set := int(line & h.l2SetMask)
			c.AccessHitAt(set, int(h.l2SlotIdx[slot])-set*h.l2Ways, true)
			c.Stats.Hits--
			return
		}
		r := c.Access(victim, true)
		// The install left the victim resident wherever the access
		// landed it (hit way or fill way).
		s, w := c.LastTouched()
		h.l2SlotLine[slot] = line
		h.l2SlotIdx[slot] = int32(s*h.l2Ways + w)
		h.finishWriteback(c, r, next)
		return
	}
	h.finishWriteback(c, c.Access(victim, true), next)
}

// finishWriteback undoes the demand-stat pollution of a writeback
// install (writeback installs are not demand accesses from the core's
// perspective) and counts cascade traffic.
func (h *Hierarchy) finishWriteback(c *cache.Cache, r cache.Result, next Level) {
	if r.Hit {
		c.Stats.Hits--
	} else {
		c.Stats.Misses--
		c.Stats.Fills--
	}
	if r.WroteBack {
		if next == DRAM {
			h.DRAMTraffic.WriteLines++
		} else {
			h.DRAMTraffic.WriteLines++ // LLC victim of an L2 writeback cascade
		}
	}
}

func (h *Hierarchy) writeCombine(addr uint64) {
	line := addr &^ uint64(cache.LineSize-1)
	for i := range h.pf.wcLines {
		if h.pf.wcValid[i] && h.pf.wcLines[i] == line {
			return // combined into an open WC entry
		}
	}
	h.pf.wcLines[h.pf.wcNext] = line
	h.pf.wcValid[h.pf.wcNext] = true
	h.pf.wcNext = (h.pf.wcNext + 1) % len(h.pf.wcLines)
	h.DRAMTraffic.WriteLines++
}

// observeStream feeds the L2 stream prefetcher with the L1-miss stream.
// On a detected ascending or descending stream it prefetches the next
// `degree` lines into L2 (and LLC if absent), counting DRAM traffic for
// lines not already on chip.
func (h *Hierarchy) observeStream(addr uint64) {
	if h.pf.degree == 0 || len(h.pf.lastUse) == 0 {
		return
	}
	line := addr >> cache.LineBits
	h.pf.clock++
	lastLine := h.pf.lastLine
	// Match scan: every match condition (advance, repeat, flip)
	// requires line within ±1 of lastLine, so one distance check
	// rejects non-matching streams before the per-condition compares.
	// Only lastLine is touched — never-allocated entries hold an
	// unreachable sentinel line and zero direction, so they can never
	// match and need no liveness check here.
	for i := range lastLine {
		if d := line - lastLine[i]; d+1 <= 2 {
			dir := h.pf.dir[i]
			if line == lastLine[i]+uint64(dir) || line == lastLine[i] {
				if line != lastLine[i] {
					h.pf.conf[i]++
					lastLine[i] = line
				}
				h.pf.lastUse[i] = h.pf.clock
				if h.pf.conf[i] >= 2 {
					h.issuePrefetches(line, dir)
				}
				return
			}
			if line == lastLine[i]-uint64(dir) { // direction flip candidate
				h.pf.dir[i] = -dir
				h.pf.conf[i] = 1
				lastLine[i] = line
				h.pf.lastUse[i] = h.pf.clock
				return
			}
		}
	}
	// No stream matched: allocate an entry — the first never-used slot
	// while the table is filling (streams are never invalidated, so
	// once full the empty-slot scan is skipped for good), else the LRU
	// victim (ascending scan, strict less-than: the first entry with
	// the minimal stamp, as the fused scalar scan chose).
	lastUse := h.pf.lastUse
	best := 0
	if h.pf.nvalid < len(lastUse) {
		for i := range lastUse {
			if lastUse[i] == 0 {
				best = i
				break
			}
		}
		h.pf.nvalid++
	} else {
		bestUse := ^uint64(0)
		for i := range lastUse {
			if use := lastUse[i]; use < bestUse {
				best = i
				bestUse = use
			}
		}
	}
	lastLine[best] = line
	h.pf.dir[best] = 1
	h.pf.conf[best] = 0
	lastUse[best] = h.pf.clock
}

func (h *Hierarchy) issuePrefetches(line uint64, dir int64) {
	for k := 1; k <= h.pf.degree; k++ {
		next := line + uint64(int64(k)*dir)
		addr := next << cache.LineBits
		// An advancing stream re-probes lines it prefetched one step
		// ago, so the slot cache usually confirms residency without the
		// way scan (Probe's only side effect is the re-verified MRU
		// hint, so skipping it is unobservable).
		slot := next & 63
		want := addr>>h.l2TagShift<<cache.MetaTagShift | cache.MetaValid
		if h.l2SlotLine[slot] == next && h.l2Meta[h.l2SlotIdx[slot]]&^cache.MetaDirty == want {
			continue
		}
		if h.L2c.Probe(addr) {
			s, w := h.L2c.LastTouched()
			h.l2SlotLine[slot] = next
			h.l2SlotIdx[slot] = int32(s*h.l2Ways + w)
			continue
		}
		// Prefetch's return value subsumes the Probe it used to follow
		// (present → no fill, absent → fill + DRAM read), and the L2
		// install skips its probe outright: the L2 Probe above already
		// established absence, and nothing touches L2 in between.
		if !h.LLCc.Prefetch(addr) {
			h.DRAMTraffic.ReadLines++
			h.DRAMTraffic.PrefetchLines++
		}
		h.L2c.PrefetchMiss(addr)
		s, w := h.L2c.LastTouched()
		h.l2SlotLine[slot] = next
		h.l2SlotIdx[slot] = int32(s*h.l2Ways + w)
	}
}

// RefKind distinguishes the demand reference types of the simulated
// machine. The zero value is a load.
type RefKind uint8

// Reference kinds carried by a batched stream.
const (
	RefLoad RefKind = iota
	RefStore
	RefStoreNT
)

// Ref is one memory reference in a batched stream.
type Ref struct {
	Addr uint64
	Kind RefKind
}

// Residency knowledge carried across consecutive references in a batch.
const (
	brNone = iota // nothing known about the previous reference's line
	brL1          // previous reference's line is L1-resident at l1Idx
	brWC          // previous reference was an NT store absorbed by an open WC entry
)

// AccessBatch resolves a stream of references, writing the servicing
// level of refs[i] into out[i] (out is grown if needed and returned
// with len(refs) entries — pass a reused buffer for zero allocations).
//
// It is counter-exact with the scalar Load/Store/StoreNT sequence: the
// simulated state after a batch — every hit/miss/eviction/writeback
// count, DRAM traffic, replacement metadata, prefetcher streams — is
// bit-identical to issuing the same references one at a time. Three
// amortizations make it faster, none of them observable:
//
//  1. Run-length coalescing: a reference to the same line as its
//     predecessor, when that line is known L1-resident, is a
//     guaranteed L1 hit whose only architectural effects are the hit
//     count and (for stores) the dirty bit — the Bit-PLRU touch of an
//     already-MRU way is a no-op, so it is skipped. Likewise an NT
//     store to the line an NT store just write-combined is absorbed
//     by the open WC entry with no state change at all.
//  2. Inlined L1 hit path: the tag probe runs against the packed
//     metadata words through cache.BatchView with a branch-light mask
//     Bit-PLRU update, avoiding per-reference calls; hits are folded
//     into L1 stats once per batch (sums commute with the miss path's
//     in-place corrections).
//  3. Hoisting: set masks, tag shifts, and way bounds are loaded once
//     per batch instead of per reference.
//
// Misses (and every reference when L1's policy is not mask Bit-PLRU,
// whose replacement updates cannot be replayed externally) fall back
// to the scalar methods, which remain the oracle.
func (h *Hierarchy) AccessBatch(refs []Ref, out []Level) []Level {
	if cap(out) < len(refs) {
		out = make([]Level, len(refs))
	}
	out = out[:len(refs)]
	v := h.L1c.BatchView()
	if v.PLRU == nil {
		for i, r := range refs {
			switch r.Kind {
			case RefStore:
				out[i] = h.access(r.Addr, true)
			case RefStoreNT:
				out[i] = h.StoreNT(r.Addr)
			default:
				out[i] = h.access(r.Addr, false)
			}
		}
		return out
	}

	meta := v.Meta
	plru := v.PLRU
	full := v.PLRUFull
	setMask := v.SetMask
	tagShift := cache.LineBits + v.SetBits
	ways := v.Ways
	reserved := v.Reserved

	const noLine = ^uint64(0)
	var hits uint64
	state := brNone
	curLine := noLine
	l1Idx := 0
	// A small direct-mapped cache of recently confirmed L1-resident
	// lines (line → metadata index). The hot loops interleave several
	// line streams (input / counter / C-Buffer; bin / accumulator), and
	// a slot hit replaces the full way scan with one metadata compare.
	// Slots are hints: a hit is trusted only after the packed word
	// re-verifies (valid + tag), so intervening evictions can never
	// fake a hit — they just fall back to the scan.
	var slotLine [16]uint64
	var slotIdx [16]int32
	for i := range slotLine {
		slotLine[i] = noLine
	}

	for i, r := range refs {
		line := r.Addr >> cache.LineBits
		if line == curLine {
			if state == brL1 {
				// Guaranteed L1 hit: nothing intervened since the last
				// reference left this line resident.
				if r.Kind != RefLoad {
					meta[l1Idx] |= cache.MetaDirty
				}
				hits++
				out[i] = L1
				continue
			}
			if state == brWC && r.Kind == RefStoreNT {
				out[i] = DRAM
				continue
			}
		}
		curLine = line

		set := int(line & setMask)
		want := r.Addr>>tagShift<<cache.MetaTagShift | cache.MetaValid
		base := set * ways
		slot := line & 15
		idx := -1
		if slotLine[slot] == line && meta[slotIdx[slot]]&^cache.MetaDirty == want {
			idx = int(slotIdx[slot])
		} else {
			for w := reserved; w < ways; w++ {
				if meta[base+w]&^cache.MetaDirty == want {
					idx = base + w
					slotLine[slot] = line
					slotIdx[slot] = int32(idx)
					break
				}
			}
		}
		if idx >= 0 {
			// L1 hit (a set holds at most one valid copy of a tag, so the
			// slot-verified way is the way the scalar find would return).
			l1Idx = idx
			if r.Kind != RefLoad {
				meta[idx] |= cache.MetaDirty
			}
			bit := uint16(1) << uint(idx-base)
			m := plru[set] | bit
			if m == full {
				m = bit
			}
			plru[set] = m
			hits++
			state = brL1
			out[i] = L1
			continue
		}

		// L1 miss (the inline probe is find() minus the MRU-filter
		// shortcut, which re-verifies the metadata word, so the scalar
		// path reaches the same verdict): hand off to the scalar miss
		// machinery — fill cascade, stream prefetcher, writeback
		// accounting — skipping only the L1 probe already performed.
		if r.Kind == RefStoreNT {
			lvl := h.StoreNTL1Missed(r.Addr)
			if lvl == DRAM {
				state = brWC // line sits in an open write-combining entry
			} else {
				state = brNone // resident at L2/LLC: no replayable fast path
			}
			out[i] = lvl
			continue
		}
		out[i] = h.AccessL1Missed(r.Addr, r.Kind == RefStore)
		// The demand fill left the line L1-resident; the cache's MRU
		// filter identifies exactly where.
		s, w := h.L1c.LastTouched()
		l1Idx = s*ways + w
		slotLine[slot] = line
		slotIdx[slot] = int32(l1Idx)
		state = brL1
	}
	h.L1c.AddBatchHits(hits)
	return out
}

// AccessL1Missed is the scalar demand path minus the L1 tag probe, for
// batched callers whose inline probe already established the L1 miss.
// Effects are identical to access() on a missing line: the L1 fill
// (and victim writeback) happens first, then the prefetcher observes
// the miss, then the walk continues down the hierarchy.
func (h *Hierarchy) AccessL1Missed(addr uint64, write bool) Level {
	if r := h.L1c.FillMiss(addr, write); r.WroteBack {
		h.installWriteback(h.L2c, r.VictimAddr, LLC)
	}
	h.observeStream(addr)
	line := addr >> cache.LineBits
	slot := line & 63
	want := addr>>h.l2TagShift<<cache.MetaTagShift | cache.MetaValid
	if h.l2SlotLine[slot] == line && h.l2Meta[h.l2SlotIdx[slot]]&^cache.MetaDirty == want {
		// Slot-verified L2 residency: apply Access's hit path directly,
		// skipping the way scan it would perform to find this line.
		set := int(line & h.l2SetMask)
		h.L2c.AccessHitAt(set, int(h.l2SlotIdx[slot])-set*h.l2Ways, false)
		return L1fillFrom(L2)
	}
	if r := h.L2c.Access(addr, false); r.Hit {
		s, w := h.L2c.LastTouched()
		h.l2SlotLine[slot] = line
		h.l2SlotIdx[slot] = int32(s*h.l2Ways + w)
		return L1fillFrom(L2)
	} else if r.WroteBack {
		h.installWriteback(h.LLCc, r.VictimAddr, DRAM)
	}
	if r := h.LLCc.Access(addr, false); r.Hit {
		return L1fillFrom(LLC)
	} else if r.WroteBack {
		h.DRAMTraffic.WriteLines++
	}
	h.DRAMTraffic.ReadLines++
	return DRAM
}

// StoreNTL1Missed is StoreNT minus the L1 probe (which, on a miss, has
// no side effects at all).
func (h *Hierarchy) StoreNTL1Missed(addr uint64) Level {
	if r := h.L2c.WriteNT(addr); r.Hit {
		return L2
	}
	if r := h.LLCc.WriteNT(addr); r.Hit {
		return LLC
	}
	h.writeCombine(addr)
	return DRAM
}

// MissSummary returns per-level demand misses for reporting.
func (h *Hierarchy) MissSummary() (l1, l2, llc uint64) {
	return h.L1c.Stats.Misses, h.L2c.Stats.Misses, h.LLCc.Stats.Misses
}

// String summarizes the hierarchy for logs.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("L1 %dKB/%dw %s | L2 %dKB/%dw %s | LLC %dMB/%dw %s",
		h.cfg.L1.SizeB>>10, h.cfg.L1.Ways, h.cfg.L1.Policy,
		h.cfg.L2.SizeB>>10, h.cfg.L2.Ways, h.cfg.L2.Policy,
		h.cfg.LLC.SizeB>>20, h.cfg.LLC.Ways, h.cfg.LLC.Policy)
}
