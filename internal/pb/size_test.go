package pb

import "testing"

// TestUpdateSizePinned pins the exact Update[V] sizes BinBytes is
// computed from. A uint32 payload packs to 8 B (no padding), a
// uint64/float64 payload aligns to 16 B — the old hardcoded 12 B
// estimate was wrong for both.
func TestUpdateSizePinned(t *testing.T) {
	if got := updateSize[uint32](); got != 8 {
		t.Fatalf("Update[uint32] size = %d, want 8", got)
	}
	if got := updateSize[uint64](); got != 16 {
		t.Fatalf("Update[uint64] size = %d, want 16", got)
	}
	if got := updateSize[float64](); got != 16 {
		t.Fatalf("Update[float64] size = %d, want 16", got)
	}
	// A zero-size payload still pads the trailing field (Go reserves a
	// byte so &u.Val never points past the struct), rounding up to 8.
	if got := updateSize[struct{}](); got != 8 {
		t.Fatalf("Update[struct{}] size = %d, want 8", got)
	}
}

// TestBinBytesUsesRealSize checks the accounted storage equals
// capacity x exact tuple size.
func TestBinBytesUsesRealSize(t *testing.T) {
	const n, k = 10000, 256
	keys := randomKeys(5, n, k)
	st := Run(n, k,
		func(b, e int, emit func(uint32, uint32)) {
			for _, key := range keys[b:e] {
				emit(key, key)
			}
		},
		func(uint32, uint32) {},
		Options{NumBins: 16, Workers: 1})
	// Exact pre-count: every bin's capacity equals its count, so
	// BinBytes == updates * sizeof(Update[uint32]) == updates * 8.
	if want := st.Updates * 8; st.BinBytes != want {
		t.Fatalf("BinBytes = %d, want %d (8 B per uint32 tuple)", st.BinBytes, want)
	}
}
