// Package pb implements Propagation Blocking (Beamer et al. [13]) as a
// reusable, generic locality optimization for irregular memory updates.
//
// An application with unordered parallelism produces a stream of
// (key, value) update tuples whose keys scatter over a large range —
// updating vertex data while streaming graph edges, bumping histogram
// counters while scanning keys, writing a sparse transpose. Applying
// such updates directly thrashes the cache. Propagation Blocking splits
// execution into two phases:
//
//   - Binning: stream the input and append each tuple to one of several
//     bins, where bin i holds keys in [i*BinRange, (i+1)*BinRange).
//     Writes to bins are sequential, so this phase streams.
//   - Accumulate: process bins one at a time. Each bin's keys span only
//     BinRange elements, which fit in cache, so the irregular updates
//     now hit.
//
// The paper's §III-B insight is implemented faithfully: updates need
// NOT be commutative. The only contract is unordered parallelism —
// Apply must tolerate updates to different keys landing in any order.
// Within one key, updates from one producer chunk are applied in
// production order; ordering across chunks is unspecified.
//
// The executor runs a pre-counting pass ("Init" in the paper's Table I)
// so bins are exactly sized, then bins in parallel with per-worker
// private bins (no synchronization, as in the paper), then accumulates
// bins in parallel (disjoint key ranges never race).
package pb

import (
	"fmt"
	"runtime"
	"sync"
	"unsafe"

	"cobra/internal/stats"
)

// Update is one irregular update tuple.
type Update[V any] struct {
	Key uint32
	Val V
}

// Source produces the update tuples for input items [begin, end).
// The executor calls it from multiple goroutines on disjoint ranges; it
// must be safe for that (read-only over the input).
type Source[V any] func(begin, end int, emit func(key uint32, val V))

// Apply consumes one binned update during Accumulate. Calls for
// different bins may run concurrently; keys within a bin are delivered
// from a single goroutine.
type Apply[V any] func(key uint32, val V)

// Options tunes the executor.
type Options struct {
	// NumBins requests a bin count; the executor rounds so that the bin
	// range is a power of two (making binning a shift, as in the paper).
	// 0 picks a default sized for a 256 KB L2 working set per bin.
	NumBins int
	// Workers is the number of binning/accumulate goroutines.
	// 0 uses GOMAXPROCS.
	Workers int
	// SkipCount disables the exact pre-counting pass and grows bins
	// dynamically instead. Costs reallocation but halves source passes;
	// useful when the source is expensive.
	SkipCount bool
}

// Stats reports what an execution did.
type Stats struct {
	NumKeys   int
	NumBins   int
	BinRange  int // keys per bin (power of two)
	BinShift  uint
	Workers   int
	Updates   uint64 // tuples binned == tuples accumulated
	BinBytes  uint64 // bytes of bin storage allocated
	CountPass bool
}

func (s Stats) String() string {
	return fmt.Sprintf("pb: %d updates over %d keys, %d bins x %d range, %d workers",
		s.Updates, s.NumKeys, s.NumBins, s.BinRange, s.Workers)
}

// plan resolves options against the key range.
func plan(numKeys int, o Options) (bins int, shift uint, workers int) {
	if numKeys <= 0 {
		return 1, 0, 1
	}
	target := o.NumBins
	if target <= 0 {
		// Default: bin ranges sized so a bin's touched data (~4-8 B/key)
		// fits comfortably in L2: 32Ki keys per bin.
		target = int(stats.DivCeil(uint64(numKeys), 32<<10))
	}
	if target < 1 {
		target = 1
	}
	if target > numKeys {
		target = numKeys
	}
	rng := stats.NextPow2(stats.DivCeil(uint64(numKeys), uint64(target)))
	shift = stats.Log2Ceil(rng)
	bins = int(stats.DivCeil(uint64(numKeys), rng))
	workers = o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	return bins, shift, workers
}

// Run executes PB over numItems input items producing updates to keys
// in [0, numKeys). It returns execution stats. It panics if a produced
// key is out of range (programming error in the source).
func Run[V any](numItems, numKeys int, src Source[V], apply Apply[V], o Options) Stats {
	bins, shift, workers := plan(numKeys, o)
	st := Stats{
		NumKeys:   numKeys,
		NumBins:   bins,
		BinRange:  1 << shift,
		BinShift:  shift,
		Workers:   workers,
		CountPass: !o.SkipCount,
	}
	if numItems <= 0 || numKeys <= 0 {
		return st
	}

	// Partition input items across workers.
	chunk := (numItems + workers - 1) / workers
	type segment struct{ begin, end int }
	segs := make([]segment, 0, workers)
	for b := 0; b < numItems; b += chunk {
		e := b + chunk
		if e > numItems {
			e = numItems
		}
		segs = append(segs, segment{b, e})
	}

	// Per-worker private bins (paper: per-thread duplicates eliminate
	// synchronization during Binning).
	binsOf := make([][][]Update[V], len(segs))

	// Out-of-range keys are a programming error in the source; detect in
	// the workers but panic from the caller's goroutine so it is
	// recoverable.
	badKeys := make([]int64, len(segs))
	for w := range badKeys {
		badKeys[w] = -1
	}
	checkBad := func() {
		for _, k := range badKeys {
			if k >= 0 {
				panic(fmt.Sprintf("pb: key %d out of range [0,%d)", k, numKeys))
			}
		}
	}

	if !o.SkipCount {
		// Init: exact pre-count so each bin is a single allocation.
		counts := make([][]uint32, len(segs))
		var wg sync.WaitGroup
		for w := range segs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cnt := make([]uint32, bins)
				src(segs[w].begin, segs[w].end, func(key uint32, _ V) {
					if int(key) >= numKeys {
						if badKeys[w] < 0 {
							badKeys[w] = int64(key)
						}
						return
					}
					cnt[key>>shift]++
				})
				counts[w] = cnt
			}(w)
		}
		wg.Wait()
		checkBad()
		for w := range segs {
			bs := make([][]Update[V], bins)
			for b := 0; b < bins; b++ {
				if c := counts[w][b]; c > 0 {
					bs[b] = make([]Update[V], 0, c)
				}
			}
			binsOf[w] = bs
		}
	} else {
		for w := range segs {
			binsOf[w] = make([][]Update[V], bins)
		}
	}

	// Binning phase.
	var wg sync.WaitGroup
	updates := make([]uint64, len(segs))
	for w := range segs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bs := binsOf[w]
			var n uint64
			src(segs[w].begin, segs[w].end, func(key uint32, val V) {
				if int(key) >= numKeys {
					if badKeys[w] < 0 {
						badKeys[w] = int64(key)
					}
					return
				}
				b := key >> shift
				bs[b] = append(bs[b], Update[V]{key, val})
				n++
			})
			updates[w] = n
		}(w)
	}
	wg.Wait()
	checkBad()
	for w := range segs {
		st.Updates += updates[w]
		for _, b := range binsOf[w] {
			st.BinBytes += uint64(cap(b)) * uint64(updateSize[V]())
		}
	}

	// Accumulate phase: bins processed in parallel, each bin's key range
	// disjoint from every other's. Within a bin, worker segments apply
	// in worker order for determinism.
	binCh := make(chan int, bins)
	for b := 0; b < bins; b++ {
		binCh <- b
	}
	close(binCh)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range binCh {
				for w := range binsOf {
					for _, u := range binsOf[w][b] {
						apply(u.Key, u.Val)
					}
				}
			}
		}()
	}
	wg.Wait()
	return st
}

// updateSize returns the exact in-memory byte size of an Update[V]
// (including alignment padding), resolved at compile time — so BinBytes
// reports real allocation footprints for every payload type (8 B for
// uint32 payloads, 16 B for uint64/float64, not a hardcoded estimate).
func updateSize[V any]() uintptr {
	return unsafe.Sizeof(Update[V]{})
}

// RunSeq is a single-goroutine convenience wrapper (Workers=1); exact
// deterministic order: bins ascending, production order within a bin.
func RunSeq[V any](numItems, numKeys int, src Source[V], apply Apply[V], o Options) Stats {
	o.Workers = 1
	return Run(numItems, numKeys, src, apply, o)
}
