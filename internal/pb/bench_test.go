package pb

import (
	"testing"

	"cobra/internal/stats"
)

func benchKeys(n, numKeys int) []uint32 {
	r := stats.NewRand(1)
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(r.Intn(numKeys))
	}
	return keys
}

func BenchmarkHistogramPB(b *testing.B) {
	const n, k = 1 << 22, 1 << 20
	keys := benchKeys(n, k)
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Histogram(keys, k, Options{})
	}
}

func BenchmarkHistogramNaive(b *testing.B) {
	const n, k = 1 << 22, 1 << 20
	keys := benchKeys(n, k)
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make([]uint32, k)
		for _, key := range keys {
			counts[key]++
		}
	}
}

func BenchmarkHistogramPBSkipCount(b *testing.B) {
	const n, k = 1 << 22, 1 << 20
	keys := benchKeys(n, k)
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Histogram(keys, k, Options{SkipCount: true})
	}
}

func BenchmarkGroupOffsets(b *testing.B) {
	const n, k = 1 << 20, 1 << 16
	keys := benchKeys(n, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupOffsets(keys, k, Options{})
	}
}
