package pb

// This file provides ready-made PB applications of the generic
// executor: dense histograms and scatter, the two shapes that cover
// most irregular-update kernels (commutative and non-commutative).

// Histogram counts occurrences of each key in keys over [0, numKeys)
// using propagation blocking. Equivalent to the naive loop
//
//	for _, k := range keys { counts[k]++ }
//
// but cache-friendly when numKeys*4B exceeds the cache.
func Histogram(keys []uint32, numKeys int, o Options) []uint32 {
	counts := make([]uint32, numKeys)
	Run(len(keys), numKeys,
		func(begin, end int, emit func(uint32, struct{})) {
			for _, k := range keys[begin:end] {
				emit(k, struct{}{})
			}
		},
		func(k uint32, _ struct{}) { counts[k]++ },
		o)
	return counts
}

// WeightedHistogram accumulates vals[i] into out[keys[i]].
func WeightedHistogram(keys []uint32, vals []float64, numKeys int, o Options) []float64 {
	if len(keys) != len(vals) {
		panic("pb: keys and vals length mismatch")
	}
	out := make([]float64, numKeys)
	Run(len(keys), numKeys,
		func(begin, end int, emit func(uint32, float64)) {
			for i := begin; i < end; i++ {
				emit(keys[i], vals[i])
			}
		},
		func(k uint32, v float64) { out[k] += v },
		o)
	return out
}

// Scatter writes vals[i] to out[keys[i]] (last writer per key within a
// producer chunk wins; keys duplicated across chunks have unspecified
// winners — the unordered-parallelism contract). out must have length
// >= numKeys.
func Scatter[V any](keys []uint32, vals []V, out []V, o Options) {
	if len(keys) != len(vals) {
		panic("pb: keys and vals length mismatch")
	}
	Run(len(keys), len(out),
		func(begin, end int, emit func(uint32, V)) {
			for i := begin; i < end; i++ {
				emit(keys[i], vals[i])
			}
		},
		func(k uint32, v V) { out[k] = v },
		o)
}

// GroupOffsets bins n items by key and returns, for each key, the
// positions of the items carrying it, as a CSR-style (offsets, items)
// pair — the core of counting sort and Edgelist→CSR. Items within a key
// preserve a worker chunk's relative order.
func GroupOffsets(keys []uint32, numKeys int, o Options) (offsets []uint32, items []uint32) {
	counts := Histogram(keys, numKeys, o)
	offsets = make([]uint32, numKeys+1)
	var sum uint32
	for i, c := range counts {
		offsets[i] = sum
		sum += c
	}
	offsets[numKeys] = sum
	items = make([]uint32, len(keys))
	cursor := make([]uint32, numKeys)
	copy(cursor, offsets[:numKeys])
	Run(len(keys), numKeys,
		func(begin, end int, emit func(uint32, uint32)) {
			for i := begin; i < end; i++ {
				emit(keys[i], uint32(i))
			}
		},
		func(k uint32, item uint32) {
			items[cursor[k]] = item
			cursor[k]++ // non-commutative: order defines contents
		},
		o)
	return offsets, items
}
