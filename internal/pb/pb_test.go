package pb

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"cobra/internal/stats"
)

func randomKeys(seed uint64, n, numKeys int) []uint32 {
	r := stats.NewRand(seed)
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(r.Intn(numKeys))
	}
	return keys
}

func TestPlanDefaults(t *testing.T) {
	bins, shift, workers := plan(1<<20, Options{})
	if bins <= 0 || workers < 1 {
		t.Fatalf("plan: bins=%d workers=%d", bins, workers)
	}
	if 1<<shift*bins < 1<<20 {
		t.Fatalf("bins*range (%d*%d) does not cover the key space", bins, 1<<shift)
	}
}

func TestPlanRespectsRequestedBins(t *testing.T) {
	for _, req := range []int{1, 2, 7, 64, 1000} {
		bins, shift, _ := plan(1<<16, Options{NumBins: req})
		if !stats.IsPow2(1 << shift) {
			t.Fatal("bin range not a power of two")
		}
		if bins > 2*req && req < 1<<16 {
			t.Fatalf("requested %d bins, got %d", req, bins)
		}
	}
}

func TestPlanDegenerate(t *testing.T) {
	bins, _, workers := plan(0, Options{})
	if bins != 1 || workers != 1 {
		t.Fatalf("plan(0) = %d bins, %d workers", bins, workers)
	}
	bins, _, _ = plan(5, Options{NumBins: 100})
	if bins > 5 {
		t.Fatalf("more bins (%d) than keys (5)", bins)
	}
}

func TestHistogramMatchesNaive(t *testing.T) {
	const n, k = 100000, 4096
	keys := randomKeys(1, n, k)
	want := make([]uint32, k)
	for _, key := range keys {
		want[key]++
	}
	for _, o := range []Options{{}, {NumBins: 16}, {NumBins: 1}, {Workers: 1}, {Workers: 7}, {SkipCount: true}} {
		got := Histogram(keys, k, o)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opts %+v: counts[%d] = %d, want %d", o, i, got[i], want[i])
			}
		}
	}
}

func TestWeightedHistogram(t *testing.T) {
	keys := []uint32{0, 1, 1, 3}
	vals := []float64{1.5, 2.0, 3.0, -1.0}
	out := WeightedHistogram(keys, vals, 4, Options{Workers: 2})
	want := []float64{1.5, 5.0, 0, -1.0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestWeightedHistogramLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	WeightedHistogram([]uint32{1}, []float64{1, 2}, 4, Options{})
}

func TestRunCountsUpdates(t *testing.T) {
	keys := randomKeys(2, 5000, 100)
	var applied uint64
	st := Run(len(keys), 100,
		func(b, e int, emit func(uint32, uint8)) {
			for _, k := range keys[b:e] {
				emit(k, 1)
			}
		},
		func(uint32, uint8) { atomic.AddUint64(&applied, 1) },
		Options{NumBins: 8})
	if st.Updates != 5000 || applied != 5000 {
		t.Fatalf("updates=%d applied=%d", st.Updates, applied)
	}
	if st.NumBins*st.BinRange < 100 {
		t.Fatal("bins do not cover key space")
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestOutOfRangeKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range key did not panic")
		}
	}()
	RunSeq(1, 4, func(b, e int, emit func(uint32, int)) { emit(99, 0) }, func(uint32, int) {}, Options{})
}

func TestEmptyInputs(t *testing.T) {
	st := Run(0, 100, func(b, e int, emit func(uint32, int)) {}, func(uint32, int) {}, Options{})
	if st.Updates != 0 {
		t.Fatal("phantom updates")
	}
	st = Run(100, 0, func(b, e int, emit func(uint32, int)) {}, func(uint32, int) {}, Options{})
	if st.Updates != 0 {
		t.Fatal("phantom updates with zero keys")
	}
}

// The partition property: every emitted update is applied exactly once,
// regardless of options. Non-commutativity-safe check via multiset.
func TestPartitionProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint16, binsRaw, workersRaw uint8, skip bool) bool {
		n := int(nRaw%5000) + 1
		k := int(kRaw%2000) + 1
		o := Options{
			NumBins:   int(binsRaw % 65),
			Workers:   int(workersRaw%8) + 1,
			SkipCount: skip,
		}
		keys := randomKeys(seed, n, k)
		var mu [256]struct{} // avoid unused warnings pattern
		_ = mu
		got := make([]uint32, k)
		var total uint64
		Run(n, k,
			func(b, e int, emit func(uint32, uint32)) {
				for i := b; i < e; i++ {
					emit(keys[i], uint32(i))
				}
			},
			func(key uint32, item uint32) {
				if keys[item] != key {
					return // corrupted pairing; will fail totals
				}
				atomic.AddUint32(&got[key], 1)
				atomic.AddUint64(&total, 1)
			},
			o)
		if total != uint64(n) {
			return false
		}
		want := make([]uint32, k)
		for _, key := range keys {
			want[key]++
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Within one worker chunk, updates to one key apply in production order
// (the non-commutative contract the paper's Neighbor-Populate needs).
func TestPerChunkOrderPreserved(t *testing.T) {
	const n = 10000
	keys := randomKeys(3, n, 7) // heavy duplication
	var seen [7][]uint32
	RunSeq(n, 7,
		func(b, e int, emit func(uint32, uint32)) {
			for i := b; i < e; i++ {
				emit(keys[i], uint32(i))
			}
		},
		func(k uint32, item uint32) { seen[k] = append(seen[k], item) },
		Options{NumBins: 4})
	for k := range seen {
		if !sort.SliceIsSorted(seen[k], func(i, j int) bool { return seen[k][i] < seen[k][j] }) {
			t.Fatalf("key %d: items applied out of production order", k)
		}
	}
}

func TestScatter(t *testing.T) {
	keys := []uint32{3, 1, 4, 1, 5}
	vals := []string{"a", "b", "c", "d", "e"}
	out := make([]string, 8)
	Scatter(keys, vals, out, Options{Workers: 1})
	// Worker=1: last write per key wins in production order.
	if out[3] != "a" || out[4] != "c" || out[5] != "e" || out[1] != "d" {
		t.Fatalf("out = %v", out)
	}
}

func TestGroupOffsetsIsStableGrouping(t *testing.T) {
	const n, k = 20000, 512
	keys := randomKeys(5, n, k)
	offsets, items := GroupOffsets(keys, k, Options{Workers: 1})
	if int(offsets[k]) != n {
		t.Fatalf("total grouped = %d, want %d", offsets[k], n)
	}
	seen := make([]bool, n)
	for key := 0; key < k; key++ {
		prev := -1
		for _, it := range items[offsets[key]:offsets[key+1]] {
			if keys[it] != uint32(key) {
				t.Fatalf("item %d grouped under key %d but has key %d", it, key, keys[it])
			}
			if seen[it] {
				t.Fatalf("item %d appears twice", it)
			}
			seen[it] = true
			if int(it) < prev {
				t.Fatalf("key %d: single-worker grouping not stable", key)
			}
			prev = int(it)
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("item %d lost", i)
		}
	}
}

func TestGroupOffsetsParallelIsCompletePartition(t *testing.T) {
	const n, k = 30000, 256
	keys := randomKeys(6, n, k)
	offsets, items := GroupOffsets(keys, k, Options{Workers: 6, NumBins: 8})
	seen := make([]bool, n)
	for key := 0; key < k; key++ {
		for _, it := range items[offsets[key]:offsets[key+1]] {
			if keys[it] != uint32(key) || seen[it] {
				t.Fatalf("bad grouping for item %d", it)
			}
			seen[it] = true
		}
	}
}

func TestBinDisjointness(t *testing.T) {
	// Each apply call for bin b must see keys only in b's range: checked
	// by recording key>>shift per goroutine-visible bin id via the key
	// itself (structural property of Run).
	const n, k = 50000, 1 << 14
	keys := randomKeys(7, n, k)
	st := Run(n, k,
		func(b, e int, emit func(uint32, struct{})) {
			for _, key := range keys[b:e] {
				emit(key, struct{}{})
			}
		},
		func(key uint32, _ struct{}) {},
		Options{NumBins: 64})
	if st.NumBins < 32 {
		t.Fatalf("NumBins = %d", st.NumBins)
	}
	if st.BinBytes == 0 {
		t.Fatal("no bin storage accounted")
	}
}

func TestSkipCountMatchesCounted(t *testing.T) {
	const n, k = 40000, 1024
	keys := randomKeys(8, n, k)
	a := Histogram(keys, k, Options{SkipCount: false, Workers: 3})
	b := Histogram(keys, k, Options{SkipCount: true, Workers: 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SkipCount changed results at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
