// Package kernels defines the paper's nine evaluated applications as
// sim.App workloads: each replays its real update stream from a real
// generated input and applies updates functionally while driving the
// simulated machine with the true addresses touched. The apps:
//
//	Graph pre-processing: Degree-Count, Neighbor-Populate (Graph500)
//	Graph analytics:      PageRank (GAP), Radii (Ligra)
//	Sorting:              Integer Sort (counting sort [16])
//	Sparse algebra:       SpMV (HPCG), Transpose, PINV, SymPerm (SuiteSparse)
//
// Commutativity per §III-B: Degree-Count, PageRank, Radii, and SpMV are
// commutative; Neighbor-Populate, Integer Sort, Transpose, PINV, and
// SymPerm are not (update order defines output layout).
package kernels

import (
	"math"

	"cobra/internal/graph"
	"cobra/internal/sim"
	"cobra/internal/sparse"
	"cobra/internal/stats"
)

func addU64(a, b uint64) uint64 { return a + b }
func orU64(a, b uint64) uint64  { return a | b }

// ---------------------------------------------------------------------------
// Degree-Count

type degreeApplier struct {
	m   *sim.Mach
	deg sim.Region
	cnt []uint32
}

func (a *degreeApplier) Apply(key uint32, val uint64) {
	addr := a.deg.Addr(uint64(key) * 4)
	a.m.B.Load(addr) // read-modify-write the counter
	a.m.B.Store(addr)
	a.cnt[key] += uint32(val)
}

// Shard returns a per-core view issuing ops on m while sharing the
// functional counter array (sharded runs partition the key range, so
// views write disjoint elements).
func (a *degreeApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// DegreeCount builds the Degree-Count app from an edge list: the first
// dominant kernel of Edgelist-to-CSR conversion. Commutative increments
// with a 4 B tuple (the index alone).
func DegreeCount(el *graph.EdgeList, inputName string) *sim.App {
	return &sim.App{
		Name:        "DegreeCount",
		InputName:   inputName,
		Commutative: true,
		TupleBytes:  4,
		NumKeys:     el.N,
		NumUpdates:  el.M(),
		StreamBytes: 8, // one Edge
		ApplyALU:    1,
		Reduce:      addU64,
		ForEach: func(emit func(uint32, uint64, bool)) {
			for _, e := range el.Edges {
				emit(e.Src, 1, false)
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			return &degreeApplier{m: m, deg: m.Alloc(uint64(el.N) * 4), cnt: make([]uint32, el.N)}
		},
	}
}

// DegCounts exposes a degree applier's functional result for validation.
func DegCounts(a sim.Applier) []uint32 {
	if d, ok := a.(*degreeApplier); ok {
		return d.cnt
	}
	return nil
}

// ---------------------------------------------------------------------------
// Neighbor-Populate

type neighPopApplier struct {
	m       *sim.Mach
	cursorR sim.Region
	neighsR sim.Region
	cursor  []uint32
	neighs  []uint32
}

func (a *neighPopApplier) Apply(key uint32, val uint64) {
	curAddr := a.cursorR.Addr(uint64(key) * 4)
	a.m.B.Load(curAddr) // offsetVal <- offsets[src]
	off := a.cursor[key]
	a.m.B.Store(a.neighsR.Addr(uint64(off) * 4)) // neighs[offsetVal] <- dst
	a.m.B.Store(curAddr)                         // offsets[src]++
	a.neighs[off] = uint32(val)
	a.cursor[key] = off + 1
}

// Shard returns a per-core view sharing the cursor and neighbor arrays
// (key-partitioned: each cursor, and the CSR segment it walks, belongs
// to exactly one core).
func (a *neighPopApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// NeighborPopulate builds Algorithm 1's kernel: populate the CSR
// Neighbors Array from an edge list. Non-commutative (cursor order
// defines NA contents); 8 B tuples (src, dst).
func NeighborPopulate(el *graph.EdgeList, inputName string) *sim.App {
	offsets := graph.PrefixSum(graph.DegreeCount(el))
	return &sim.App{
		Name:        "NeighborPopulate",
		InputName:   inputName,
		Commutative: false,
		TupleBytes:  8,
		NumKeys:     el.N,
		NumUpdates:  el.M(),
		StreamBytes: 8,
		ApplyALU:    2,
		ForEach: func(emit func(uint32, uint64, bool)) {
			for _, e := range el.Edges {
				emit(e.Src, uint64(e.Dst), false)
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			a := &neighPopApplier{
				m:       m,
				cursorR: m.Alloc(uint64(el.N) * 4),
				neighsR: m.Alloc(uint64(el.M()) * 4),
				cursor:  make([]uint32, el.N),
				neighs:  make([]uint32, el.M()),
			}
			copy(a.cursor, offsets[:el.N])
			return a
		},
	}
}

// Neighs exposes a neighPop applier's functional result for validation.
func Neighs(a sim.Applier) []uint32 {
	if np, ok := a.(*neighPopApplier); ok {
		return np.neighs
	}
	return nil
}

// ---------------------------------------------------------------------------
// PageRank

type pagerankApplier struct {
	m        *sim.Mach
	incoming sim.Region
	sums     []float64
}

func (a *pagerankApplier) Apply(key uint32, val uint64) {
	addr := a.incoming.Addr(uint64(key) * 8)
	a.m.B.Load(addr) // incoming[dst] += contrib
	a.m.B.Store(addr)
	a.sums[key] += float64FromBits(val)
}

// Shard returns a per-core view sharing the sums array (key-partitioned).
func (a *pagerankApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// PageRank builds one push iteration of GAP-style PageRank on g
// (the paper simulates a single iteration, §VI). Commutative float
// adds; 8 B tuples (dst, contribution). Reduce is nil: float payloads
// do not coalesce losslessly in our integer reduction units.
func PageRank(g *graph.CSR, inputName string) *sim.App {
	n := g.N
	contrib := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.Degree(uint32(v)); d > 0 {
			contrib[v] = 1 / float64(n) / float64(d)
		}
	}
	return &sim.App{
		Name:        "PageRank",
		InputName:   inputName,
		Commutative: true,
		TupleBytes:  8,
		NumKeys:     n,
		NumUpdates:  g.M(),
		StreamBytes: 4, // one neighbor index per update
		ApplyALU:    2, // fp add + damping math amortized
		ForEach: func(emit func(uint32, uint64, bool)) {
			for v := uint32(0); int(v) < n; v++ {
				first := true
				c := float64Bits(contrib[v])
				for _, u := range g.Neighbors(v) {
					emit(u, c, first)
					first = false
				}
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			return &pagerankApplier{m: m, incoming: m.Alloc(uint64(n) * 8), sums: make([]float64, n)}
		},
	}
}

// PageRankSums exposes the applier's accumulated sums for validation.
func PageRankSums(a sim.Applier) []float64 {
	if pr, ok := a.(*pagerankApplier); ok {
		return pr.sums
	}
	return nil
}

// ---------------------------------------------------------------------------
// Radii

type radiiApplier struct {
	m     *sim.Mach
	nextR sim.Region
	radR  sim.Region
	next  []uint64
	radii []int32
	round int32
}

func (a *radiiApplier) Apply(key uint32, val uint64) {
	maskAddr := a.nextR.Addr(uint64(key) * 8)
	a.m.B.Load(maskAddr) // next[u] |= m
	a.m.B.Store(maskAddr)
	if val&^a.next[key] != 0 {
		a.next[key] |= val
		a.m.B.Store(a.radR.Addr(uint64(key) * 4)) // radii[u] = round
		if a.radii[key] < a.round {
			a.radii[key] = a.round
		}
	}
}

// Shard returns a per-core view sharing the mask and radii arrays
// (key-partitioned).
func (a *radiiApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// Radii builds one sampled pull iteration of Ligra-style Radii
// (multi-source BFS; the paper simulates every second pull iteration
// via iteration sampling [43]). Commutative bitwise-OR updates; 16 B
// tuples (dst, 64-bit visit mask).
func Radii(g *graph.CSR, inputName string) *sim.App {
	// Run the functional Radii capturing the frontier masks of a middle
	// round, which is the representative sampled iteration.
	n := g.N
	cur := radiiFrontier(g, 2)
	numUpdates := 0
	for v := uint32(0); int(v) < n; v++ {
		if cur[v] != 0 {
			numUpdates += g.Degree(v)
		}
	}
	if numUpdates == 0 {
		// Degenerate graph; fall back to round 1 (sources only).
		cur = radiiFrontier(g, 1)
		for v := uint32(0); int(v) < n; v++ {
			if cur[v] != 0 {
				numUpdates += g.Degree(v)
			}
		}
	}
	return &sim.App{
		Name:        "Radii",
		InputName:   inputName,
		Commutative: true,
		TupleBytes:  16,
		NumKeys:     n,
		NumUpdates:  numUpdates,
		StreamBytes: 4,
		ApplyALU:    2,
		Reduce:      orU64,
		ForEach: func(emit func(uint32, uint64, bool)) {
			for v := uint32(0); int(v) < n; v++ {
				m := cur[v]
				if m == 0 {
					continue
				}
				first := true
				for _, u := range g.Neighbors(v) {
					emit(u, m, first)
					first = false
				}
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			a := &radiiApplier{
				m:     m,
				nextR: m.Alloc(uint64(n) * 8),
				radR:  m.Alloc(uint64(n) * 4),
				next:  make([]uint64, n),
				radii: make([]int32, n),
				round: 3,
			}
			copy(a.next, cur)
			return a
		},
	}
}

// radiiFrontier returns the visit masks after `rounds` propagation
// rounds from the standard 64 spread sources.
func radiiFrontier(g *graph.CSR, rounds int) []uint64 {
	n := g.N
	cur := make([]uint64, n)
	k := 64
	if n < k {
		k = n
	}
	for i := 0; i < k; i++ {
		cur[i*n/k] |= 1 << uint(i)
	}
	for r := 0; r < rounds; r++ {
		next := append([]uint64(nil), cur...)
		for v := uint32(0); int(v) < n; v++ {
			if cur[v] == 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				next[u] |= cur[v]
			}
		}
		cur = next
	}
	return cur
}

// ---------------------------------------------------------------------------
// Integer Sort

type isortApplier struct {
	m       *sim.Mach
	cursorR sim.Region
	outR    sim.Region
	cursor  []uint32
	out     []uint32
}

func (a *isortApplier) Apply(key uint32, val uint64) {
	curAddr := a.cursorR.Addr(uint64(key) * 4)
	a.m.B.Load(curAddr)
	off := a.cursor[key]
	a.m.B.Store(a.outR.Addr(uint64(off) * 4))
	a.m.B.Store(curAddr)
	a.out[off] = uint32(val)
	a.cursor[key] = off + 1
}

// Shard returns a per-core view sharing the cursor and output arrays
// (key-partitioned: each key's output segment has one owner).
func (a *isortApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// IntSort builds the counting-sort scatter over n random keys with the
// given maximum key value (the paper sorts 256 M keys with varying max
// key). Non-commutative (stability through cursors); 4 B tuples.
func IntSort(n, maxKey int, seed uint64, inputName string) *sim.App {
	r := stats.NewRand(seed)
	keys := make([]uint32, n)
	counts := make([]uint32, maxKey)
	for i := range keys {
		keys[i] = uint32(r.Intn(maxKey))
		counts[keys[i]]++
	}
	offsets := make([]uint32, maxKey)
	var sum uint32
	for i, c := range counts {
		offsets[i] = sum
		sum += c
	}
	return &sim.App{
		Name:        "IntSort",
		InputName:   inputName,
		Commutative: false,
		TupleBytes:  4,
		NumKeys:     maxKey,
		NumUpdates:  n,
		StreamBytes: 4,
		ApplyALU:    1,
		ForEach: func(emit func(uint32, uint64, bool)) {
			for _, k := range keys {
				emit(k, uint64(k), false)
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			a := &isortApplier{
				m:       m,
				cursorR: m.Alloc(uint64(maxKey) * 4),
				outR:    m.Alloc(uint64(n) * 4),
				cursor:  make([]uint32, maxKey),
				out:     make([]uint32, n),
			}
			copy(a.cursor, offsets)
			return a
		},
	}
}

// SortedOutput exposes the isort applier result for validation.
func SortedOutput(a sim.Applier) []uint32 {
	if s, ok := a.(*isortApplier); ok {
		return s.out
	}
	return nil
}

// ---------------------------------------------------------------------------
// SpMV (scatter formulation over the transpose representation, §VI)

type spmvApplier struct {
	m  *sim.Mach
	yR sim.Region
	y  []float64
}

func (a *spmvApplier) Apply(key uint32, val uint64) {
	addr := a.yR.Addr(uint64(key) * 8)
	a.m.B.Load(addr)
	a.m.B.Store(addr)
	a.y[key] += float64FromBits(val)
}

// Shard returns a per-core view sharing the y vector (key-partitioned).
func (a *spmvApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// SpMV builds the scatter-form sparse matrix-vector product y += Aᵀ·x
// (HPCG class). Commutative float adds; 16 B tuples (col, product).
func SpMV(a *sparse.Matrix, inputName string) *sim.App {
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	return &sim.App{
		Name:        "SpMV",
		InputName:   inputName,
		Commutative: true,
		TupleBytes:  16,
		NumKeys:     a.Cols,
		NumUpdates:  a.NNZ(),
		StreamBytes: 12, // col index + value
		ApplyALU:    3,  // fp multiply-add
		ForEach: func(emit func(uint32, uint64, bool)) {
			for i := 0; i < a.Rows; i++ {
				cols, vals := a.Row(i)
				first := true
				for k := range cols {
					emit(cols[k], float64Bits(vals[k]*x[i]), first)
					first = false
				}
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			return &spmvApplier{m: m, yR: m.Alloc(uint64(a.Cols) * 8), y: make([]float64, a.Cols)}
		},
	}
}

// SpMVResult exposes the accumulated y vector for validation.
func SpMVResult(a sim.Applier) []float64 {
	if s, ok := a.(*spmvApplier); ok {
		return s.y
	}
	return nil
}

// ---------------------------------------------------------------------------
// Transpose

type transposeApplier struct {
	m       *sim.Mach
	cursorR sim.Region
	colR    sim.Region
	valR    sim.Region
	cursor  []uint32
	colIdx  []uint32
}

func (a *transposeApplier) Apply(key uint32, val uint64) {
	curAddr := a.cursorR.Addr(uint64(key) * 4)
	a.m.B.Load(curAddr)
	p := a.cursor[key]
	a.m.B.Store(a.colR.Addr(uint64(p) * 4))
	a.m.B.Store(a.valR.Addr(uint64(p) * 8))
	a.m.B.Store(curAddr)
	a.colIdx[p] = uint32(val)
	a.cursor[key] = p + 1
}

// Shard returns a per-core view sharing the cursor and column arrays
// (key-partitioned: each destination column has one owner).
func (a *transposeApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// Transpose builds the sparse transpose kernel (SuiteSparse cs_transpose
// shape): scatter each entry into its destination column's cursor.
// Non-commutative; 16 B tuples (col, row, value).
func Transpose(a *sparse.Matrix, inputName string) *sim.App {
	cnt := make([]uint32, a.Cols)
	for _, c := range a.ColIdx {
		cnt[c]++
	}
	offsets := make([]uint32, a.Cols)
	var sum uint32
	for i, c := range cnt {
		offsets[i] = sum
		sum += c
	}
	return &sim.App{
		Name:        "Transpose",
		InputName:   inputName,
		Commutative: false,
		TupleBytes:  16,
		NumKeys:     a.Cols,
		NumUpdates:  a.NNZ(),
		StreamBytes: 12,
		ApplyALU:    2,
		ForEach: func(emit func(uint32, uint64, bool)) {
			for i := 0; i < a.Rows; i++ {
				cols, _ := a.Row(i)
				first := true
				for _, c := range cols {
					emit(c, uint64(i), first)
					first = false
				}
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			ap := &transposeApplier{
				m:       m,
				cursorR: m.Alloc(uint64(a.Cols) * 4),
				colR:    m.Alloc(uint64(a.NNZ()) * 4),
				valR:    m.Alloc(uint64(a.NNZ()) * 8),
				cursor:  make([]uint32, a.Cols),
				colIdx:  make([]uint32, a.NNZ()),
			}
			copy(ap.cursor, offsets)
			return ap
		},
	}
}

// TransposeCols exposes a transpose/symperm applier's column result.
func TransposeCols(a sim.Applier) []uint32 {
	if t, ok := a.(*transposeApplier); ok {
		return t.colIdx
	}
	return nil
}

// ---------------------------------------------------------------------------
// PINV

type pinvApplier struct {
	m    *sim.Mach
	outR sim.Region
	out  []uint32
}

func (a *pinvApplier) Apply(key uint32, val uint64) {
	// Pure scatter: out[p[i]] = i. No read — each key written once, so
	// Accumulate has no temporal reuse to harvest (the §VII-A anomaly).
	a.m.B.Store(a.outR.Addr(uint64(key) * 4))
	a.out[key] = uint32(val)
}

// Shard returns a per-core view sharing the output permutation
// (key-partitioned: each key is written exactly once by its owner).
func (a *pinvApplier) Shard(m *sim.Mach) sim.Applier {
	s := *a
	s.m = m
	return &s
}

// PINV builds the permutation-inverse kernel (SuiteSparse cs_pinv).
// Non-commutative (trivially: one update per key); 16 B tuples in the
// paper's accounting.
func PINV(perm []uint32, inputName string) *sim.App {
	n := len(perm)
	return &sim.App{
		Name:        "PINV",
		InputName:   inputName,
		Commutative: false,
		TupleBytes:  16,
		NumKeys:     n,
		NumUpdates:  n,
		StreamBytes: 4,
		ApplyALU:    1,
		ForEach: func(emit func(uint32, uint64, bool)) {
			for i, p := range perm {
				emit(p, uint64(i), false)
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			return &pinvApplier{m: m, outR: m.Alloc(uint64(n) * 4), out: make([]uint32, n)}
		},
	}
}

// PINVResult exposes the applier's inverse permutation for validation.
func PINVResult(a sim.Applier) []uint32 {
	if p, ok := a.(*pinvApplier); ok {
		return p.out
	}
	return nil
}

// ---------------------------------------------------------------------------
// SymPerm

// SymPerm builds the symmetric-permutation kernel (SuiteSparse
// cs_symperm): only upper-triangular coordinates are processed and
// scattered to permuted positions. Non-commutative; 16 B tuples. The
// skipped lower triangle halves the update/stream ratio — the limited
// headroom the paper reports (§VII-A).
func SymPerm(a *sparse.Matrix, perm []uint32, inputName string) *sim.App {
	n := a.Rows
	// Count upper-triangular entries and destination-row sizes.
	numUpdates := 0
	cnt := make([]uint32, n)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if int(j) < i {
				continue
			}
			i2, j2 := perm[i], perm[j]
			if i2 > j2 {
				i2, j2 = j2, i2
			}
			cnt[i2]++
			numUpdates++
		}
	}
	offsets := make([]uint32, n)
	var sum uint32
	for i, c := range cnt {
		offsets[i] = sum
		sum += c
	}
	// Stream cost: the kernel walks every stored entry (both triangles)
	// but emits updates only for the upper half. Charge the full stream
	// bytes to the updates that do get emitted.
	streamBytes := 12
	if numUpdates > 0 {
		streamBytes = 12 * a.NNZ() / numUpdates
	}
	return &sim.App{
		Name:        "SymPerm",
		InputName:   inputName,
		Commutative: false,
		TupleBytes:  16,
		NumKeys:     n,
		NumUpdates:  numUpdates,
		StreamBytes: streamBytes,
		ApplyALU:    4, // permutation lookups + min/max swap
		ForEach: func(emit func(uint32, uint64, bool)) {
			for i := 0; i < n; i++ {
				cols, _ := a.Row(i)
				first := true
				for _, j := range cols {
					if int(j) < i {
						continue
					}
					i2, j2 := perm[i], perm[j]
					if i2 > j2 {
						i2, j2 = j2, i2
					}
					emit(i2, uint64(j2), first)
					first = false
				}
			}
		},
		NewApplier: func(m *sim.Mach) sim.Applier {
			ap := &transposeApplier{
				m:       m,
				cursorR: m.Alloc(uint64(n) * 4),
				colR:    m.Alloc(uint64(numUpdates) * 4),
				valR:    m.Alloc(uint64(numUpdates) * 8),
				cursor:  make([]uint32, n),
				colIdx:  make([]uint32, numUpdates),
			}
			copy(ap.cursor, offsets)
			return ap
		},
	}
}

// float bit helpers.
func float64Bits(f float64) uint64     { return math.Float64bits(f) }
func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
