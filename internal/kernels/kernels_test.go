package kernels

import (
	"math"
	"sort"
	"testing"

	"cobra/internal/graph"
	"cobra/internal/pb"
	"cobra/internal/sim"
	"cobra/internal/sparse"
	"cobra/internal/stats"
)

// captureApplier wraps an app so the test can inspect the functional
// result produced during a simulated run.
func captureApplier(app *sim.App) *sim.Applier {
	var got sim.Applier
	orig := app.NewApplier
	app.NewApplier = func(m *sim.Mach) sim.Applier {
		got = orig(m)
		return got
	}
	return &got
}

// runAllSchemes exercises Baseline, PB-SW, and COBRA on the app,
// validating the functional result with check after each run.
func runAllSchemes(t *testing.T, app *sim.App, got *sim.Applier, check func(name string)) {
	t.Helper()
	arch := sim.DefaultArch()
	if _, err := sim.RunBaseline(app, arch); err != nil {
		t.Fatal(err)
	}
	check("baseline")
	if _, err := sim.RunPBSW(app, 64, arch); err != nil {
		t.Fatal(err)
	}
	check("pb-sw")
	if _, err := sim.RunCOBRA(app, sim.CobraOpt{}, arch); err != nil {
		t.Fatal(err)
	}
	check("cobra")
}

func testGraph() *graph.EdgeList { return graph.RMAT(12, 8, 7) }

func TestDegreeCountAllSchemes(t *testing.T) {
	el := testGraph()
	app := DegreeCount(el, "KRON")
	got := captureApplier(app)
	want := graph.DegreeCount(el)
	runAllSchemes(t, app, got, func(name string) {
		cnt := DegCounts(*got)
		if cnt == nil {
			t.Fatalf("%s: no counts", name)
		}
		for i := range want {
			if cnt[i] != want[i] {
				t.Fatalf("%s: deg[%d] = %d, want %d", name, i, cnt[i], want[i])
			}
		}
	})
}

func TestNeighborPopulateAllSchemes(t *testing.T) {
	el := testGraph()
	app := NeighborPopulate(el, "KRON")
	got := captureApplier(app)
	ref := graph.BuildCSR(el, false, pb.Options{})
	runAllSchemes(t, app, got, func(name string) {
		neighs := Neighs(*got)
		if len(neighs) != ref.M() {
			t.Fatalf("%s: %d neighbors, want %d", name, len(neighs), ref.M())
		}
		// Neighbor order within a vertex is unspecified; compare sets.
		for v := uint32(0); int(v) < ref.N; v++ {
			lo, hi := ref.Offsets[v], ref.Offsets[v+1]
			a := append([]uint32(nil), neighs[lo:hi]...)
			b := append([]uint32(nil), ref.Neighs[lo:hi]...)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: vertex %d neighbor sets differ", name, v)
				}
			}
		}
	})
}

func TestPageRankAllSchemes(t *testing.T) {
	el := testGraph()
	g := graph.BuildCSR(el, false, pb.Options{})
	app := PageRank(g, "KRON")
	got := captureApplier(app)
	// Reference: one push round of contributions.
	want := make([]float64, g.N)
	app.ForEach(func(k uint32, v uint64, _ bool) {
		want[k] += math.Float64frombits(v)
	})
	runAllSchemes(t, app, got, func(name string) {
		sums := PageRankSums(*got)
		for i := range want {
			if math.Abs(sums[i]-want[i]) > 1e-12 {
				t.Fatalf("%s: sums[%d] = %g, want %g", name, i, sums[i], want[i])
			}
		}
	})
}

func TestPageRankGroupBranches(t *testing.T) {
	// Power-law neighbor loops must produce measurable branch misses in
	// the baseline (footnote 3 of the paper).
	el := testGraph()
	g := graph.BuildCSR(el, false, pb.Options{})
	app := PageRank(g, "KRON")
	m, err := sim.RunBaseline(app, sim.DefaultArch())
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Ctr.BranchMissRate(); r < 0.005 {
		t.Fatalf("power-law boundary branches mispredicted only %.4f; expected > 0.5%%", r)
	}
}

func TestRadiiApp(t *testing.T) {
	el := testGraph()
	g := graph.BuildCSR(el, false, pb.Options{})
	app := Radii(g, "KRON")
	if app.NumUpdates == 0 {
		t.Fatal("empty Radii frontier")
	}
	if app.Reduce == nil || app.Reduce(0b01, 0b10) != 0b11 {
		t.Fatal("Radii reducer must be bitwise OR")
	}
	got := captureApplier(app)
	// Reference masks after applying the emitted updates.
	ref := make(map[uint32]uint64)
	app.ForEach(func(k uint32, v uint64, _ bool) { ref[k] |= v })
	if _, err := sim.RunCOBRA(app, sim.CobraOpt{}, sim.DefaultArch()); err != nil {
		t.Fatal(err)
	}
	ra := (*got).(*radiiApplier)
	for k, m := range ref {
		if ra.next[k]&m != m {
			t.Fatalf("mask for %d missing bits", k)
		}
	}
}

func TestIntSortAllSchemes(t *testing.T) {
	app := IntSort(20000, 1<<12, 3, "BIGKEY")
	got := captureApplier(app)
	runAllSchemes(t, app, got, func(name string) {
		out := SortedOutput(*got)
		if len(out) != 20000 {
			t.Fatalf("%s: output length %d", name, len(out))
		}
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				t.Fatalf("%s: not sorted at %d", name, i)
			}
		}
	})
}

func TestSpMVAllSchemes(t *testing.T) {
	m := sparse.RandomSparse(2000, 2048, 6, 5)
	app := SpMV(m, "RAND")
	got := captureApplier(app)
	want := make([]float64, 2048)
	app.ForEach(func(k uint32, v uint64, _ bool) { want[k] += math.Float64frombits(v) })
	runAllSchemes(t, app, got, func(name string) {
		y := SpMVResult(*got)
		for i := range want {
			if math.Abs(y[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: y[%d] = %g, want %g", name, i, y[i], want[i])
			}
		}
	})
}

func TestTransposeAllSchemes(t *testing.T) {
	m := sparse.SkewedSparse(1500, 1024, 5, 9)
	app := Transpose(m, "SKEW")
	got := captureApplier(app)
	ref := sparse.Transpose(m)
	runAllSchemes(t, app, got, func(name string) {
		cols := TransposeCols(*got)
		if len(cols) != ref.NNZ() {
			t.Fatalf("%s: nnz %d, want %d", name, len(cols), ref.NNZ())
		}
		// Row sets per transposed row must match (order unspecified).
		for i := 0; i < ref.Rows; i++ {
			lo, hi := ref.RowPtr[i], ref.RowPtr[i+1]
			a := append([]uint32(nil), cols[lo:hi]...)
			b := append([]uint32(nil), ref.ColIdx[lo:hi]...)
			sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
			sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("%s: row %d differs", name, i)
				}
			}
		}
	})
}

func TestPINVAllSchemes(t *testing.T) {
	perm := stats.NewRand(11).Perm(1 << 13)
	app := PINV(perm, "PERM")
	got := captureApplier(app)
	runAllSchemes(t, app, got, func(name string) {
		inv := PINVResult(*got)
		for i, p := range perm {
			if inv[p] != uint32(i) {
				t.Fatalf("%s: inv[%d] = %d, want %d", name, p, inv[p], i)
			}
		}
	})
}

func TestSymPermApp(t *testing.T) {
	m := sparse.SymmetricUpper(800, 4, 13)
	perm := stats.NewRand(17).Perm(800)
	app := SymPerm(m, perm, "RAND")
	if app.NumUpdates == 0 || app.NumUpdates > m.NNZ() {
		t.Fatalf("SymPerm updates = %d of %d nnz", app.NumUpdates, m.NNZ())
	}
	// Stream cost reflects skipped lower-triangle entries.
	if app.StreamBytes < 12 {
		t.Fatalf("StreamBytes = %d, want >= 12", app.StreamBytes)
	}
	ref := sparse.SymPerm(m, perm)
	got := captureApplier(app)
	if _, err := sim.RunPBSW(app, 64, sim.DefaultArch()); err != nil {
		t.Fatal(err)
	}
	cols := TransposeCols(*got)
	if len(cols) != ref.NNZ() {
		t.Fatalf("nnz %d, want %d", len(cols), ref.NNZ())
	}
	for i := 0; i < ref.Rows; i++ {
		lo, hi := ref.RowPtr[i], ref.RowPtr[i+1]
		a := append([]uint32(nil), cols[lo:hi]...)
		b := append([]uint32(nil), ref.ColIdx[lo:hi]...)
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestCommutativityDeclarations(t *testing.T) {
	el := graph.Uniform(256, 1024, 1)
	g := graph.BuildCSR(el, false, pb.Options{})
	m := sparse.RandomSparse(128, 128, 4, 2)
	perm := stats.NewRand(3).Perm(128)
	comm := map[string]bool{
		"DegreeCount": true, "PageRank": true, "Radii": true, "SpMV": true,
		"NeighborPopulate": false, "IntSort": false, "Transpose": false,
		"PINV": false, "SymPerm": false,
	}
	apps := []*sim.App{
		DegreeCount(el, "t"), NeighborPopulate(el, "t"), PageRank(g, "t"), Radii(g, "t"),
		IntSort(1000, 256, 4, "t"), SpMV(m, "t"), Transpose(m, "t"),
		PINV(perm, "t"), SymPerm(m, perm, "t"),
	}
	for _, app := range apps {
		want, ok := comm[app.Name]
		if !ok {
			t.Fatalf("unknown app %s", app.Name)
		}
		if app.Commutative != want {
			t.Fatalf("%s commutativity = %v, want %v", app.Name, app.Commutative, want)
		}
		if err := app.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		// Non-commutative apps must never carry a reducer.
		if !app.Commutative && app.Reduce != nil {
			t.Fatalf("%s: non-commutative app has a reducer", app.Name)
		}
	}
}

func TestTupleSizesMatchPaper(t *testing.T) {
	el := graph.Uniform(256, 1024, 1)
	g := graph.BuildCSR(el, false, pb.Options{})
	m := sparse.RandomSparse(128, 128, 4, 2)
	perm := stats.NewRand(3).Perm(128)
	// Paper §VI: 4B for Degree-Counting and Integer Sort, 8B for
	// Neighbor-Populate and Pagerank, 16B for the rest.
	want := map[string]int{
		"DegreeCount": 4, "IntSort": 4,
		"NeighborPopulate": 8, "PageRank": 8,
		"Radii": 16, "SpMV": 16, "Transpose": 16, "PINV": 16, "SymPerm": 16,
	}
	for _, app := range []*sim.App{
		DegreeCount(el, "t"), NeighborPopulate(el, "t"), PageRank(g, "t"), Radii(g, "t"),
		IntSort(1000, 256, 4, "t"), SpMV(m, "t"), Transpose(m, "t"),
		PINV(perm, "t"), SymPerm(m, perm, "t"),
	} {
		if app.TupleBytes != want[app.Name] {
			t.Errorf("%s tuple size = %d, want %d", app.Name, app.TupleBytes, want[app.Name])
		}
	}
}
