// Package cobra's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation. Each benchmark regenerates its
// experiment at a reduced scale (so `go test -bench=.` terminates in
// minutes) and reports the experiment's headline quantity as a custom
// metric next to the usual ns/op. The full-scale regeneration is
// `go run ./cmd/figures -all`.
package cobra

import (
	"strconv"
	"testing"

	"cobra/internal/exp"
	"cobra/internal/sim"
	"cobra/internal/stats"
)

// benchOpts is the reduced scale used by the benchmark harness.
func benchOpts() exp.Opts {
	return exp.Opts{Scale: 14, Seed: 42, Arch: sim.DefaultArch()}
}

// geomeanColumn extracts a geomean from "N.NNx"-style cells in col.
func geomeanColumn(t *exp.Table, col int) float64 {
	var xs []float64
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		s := row[col]
		if len(s) > 1 && s[len(s)-1] == 'x' {
			if v, err := strconv.ParseFloat(s[:len(s)-1], 64); err == nil {
				xs = append(xs, v)
			}
		}
	}
	return stats.GeoMean(xs)
}

func BenchmarkFig02_LLCMissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04_BinSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05_IdealHeadroom(b *testing.B) {
	var tab *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		if tab, err = exp.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geomeanColumn(tab, 3), "ideal-speedup-geomean")
}

func BenchmarkTable1_PhaseBreakup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_Speedups(b *testing.B) {
	var tab *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		if tab, err = exp.Fig10(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geomeanColumn(tab, 4), "cobra-speedup-geomean")
}

func BenchmarkFig11_PhaseSpeedups(b *testing.B) {
	var tab *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		if tab, err = exp.Fig11(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geomeanColumn(tab, 2), "binning-speedup-geomean")
}

func BenchmarkFig12_InstrBranch(b *testing.B) {
	var tab *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		if tab, err = exp.Fig12(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geomeanColumn(tab, 2), "instr-reduction-geomean")
}

func BenchmarkFig13a_EvictionBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig13a(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13b_WaySensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig13b(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13c_ContextSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig13c(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14_CommSpecialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig14(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15_Tiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig15(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPrefetcher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationPrefetcher(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLLCPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationLLCPolicy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPINVMediumBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationPINV(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationMLP(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}
