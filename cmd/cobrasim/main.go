// Command cobrasim runs one workload through one or more execution
// schemes on the simulated machine and reports the paper's metrics
// (cycles, phase split, instruction counts, branch misses, cache
// misses, DRAM traffic).
//
// Usage:
//
//	cobrasim -app DegreeCount -input URND -scale 18 -schemes Baseline,PB-SW,COBRA
//	cobrasim -app NeighborPopulate -input KRON -bins 512
//	cobrasim -app DegreeCount -input KRON -cores 16   # sharded multi-core model
//	cobrasim -app DegreeCount -input URND -json   # machine-readable metrics
//	cobrasim -list
//
// Every -schemes name is validated up front against the experiment
// registry: an unknown scheme exits 2 before any simulation runs,
// instead of failing partway through a multi-scheme run. -json emits
// the sim.Metrics slice as JSON — the same structs the cobrad service
// returns, so CLI and API wire formats stay aligned.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cobra/internal/exp"
	"cobra/internal/mem"
	"cobra/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		appName = flag.String("app", "DegreeCount", "workload: "+strings.Join(exp.AppNames(), ", "))
		input   = flag.String("input", "URND", "input: "+strings.Join(exp.InputNames(), ", "))
		scale   = flag.Int("scale", 18, "input scale (vertices/keys ~ 2^scale)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		bins    = flag.Int("bins", 0, "PB-SW bin count (0 = sweep for best)")
		schemes = flag.String("schemes", "Baseline,PB-SW,COBRA", "comma-separated schemes")
		nuca    = flag.Bool("nuca", false, "model Table II's 4x4-mesh NUCA latency for the shared LLC")
		cores   = flag.Int("cores", 1, "simulated core count (1 = legacy single-core model)")
		asJSON  = flag.Bool("json", false, "emit the metrics slice as JSON (the cobrad wire format) instead of tables")
		list    = flag.Bool("list", false, "list workloads and inputs, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(exp.AppNames(), ", "))
		fmt.Println("inputs:   ", strings.Join(exp.InputNames(), ", "))
		fmt.Println("schemes:  ", strings.Join(exp.SchemeNames(), ", "))
		return 0
	}

	// Validate every requested scheme before building anything: a typo
	// in the last scheme must not waste the whole run (usage error,
	// exit 2).
	var schemeList []sim.Scheme
	for _, s := range strings.Split(*schemes, ",") {
		scheme, err := exp.ParseScheme(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cobrasim:", err)
			return 2
		}
		schemeList = append(schemeList, scheme)
	}

	app, err := exp.BuildApp(*appName, *input, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cobrasim:", err)
		return 1
	}
	arch := sim.DefaultArch()
	if *nuca {
		arch.Mem.NUCA = mem.DefaultNUCA()
	}
	if *cores > 1 {
		arch = arch.WithCores(*cores)
	}
	if !*asJSON {
		fmt.Printf("%s on %s: %d keys, %d updates, %d B tuples, commutative=%v\n\n",
			app.Name, app.InputName, app.NumKeys, app.NumUpdates, app.TupleBytes, app.Commutative)
	}

	var results []sim.Metrics
	var base *sim.Metrics
	failed := false
	for _, scheme := range schemeList {
		m, err := exp.RunScheme(app, scheme, *bins, arch)
		if err != nil {
			// Scheme names were validated up front; failures here are
			// applicability errors (e.g. COBRA-COMM on a non-commutative
			// app). Report and keep going so the valid schemes still run.
			fmt.Fprintf(os.Stderr, "cobrasim: %s: %v\n", scheme, err)
			failed = true
			continue
		}
		results = append(results, m)
		if m.Scheme == sim.SchemeBaseline {
			base = &results[len(results)-1]
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "cobrasim:", err)
			return 1
		}
		if failed {
			return 1
		}
		return 0
	}

	fmt.Printf("%-12s %12s %10s %12s %12s %12s %8s %9s %8s\n",
		"scheme", "cycles", "speedup", "init", "binning", "accumulate", "bins", "instr", "brMiss%")
	for _, m := range results {
		speedup := "-"
		if base != nil && m.Cycles > 0 {
			speedup = fmt.Sprintf("%.2fx", base.Cycles/m.Cycles)
		}
		fmt.Printf("%-12s %12.3e %10s %12.3e %12.3e %12.3e %8d %9.2e %8.2f\n",
			m.Scheme, m.Cycles, speedup, m.InitCycles, m.BinCycles, m.AccumCycles,
			m.NumBins, float64(m.Ctr.Instructions), 100*m.Ctr.BranchMissRate())
	}
	fmt.Println()
	for _, m := range results {
		fmt.Printf("%-12s L1miss=%9d L2miss=%9d LLCmiss=%9d LLCmissRate=%.3f DRAM rd/wr lines=%d/%d\n",
			m.Scheme, m.L1Misses, m.L2Misses, m.LLCMisses, m.LLCMissRate,
			m.DRAM.ReadLines, m.DRAM.WriteLines)
	}
	if failed {
		return 1
	}
	return 0
}
