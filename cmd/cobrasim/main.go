// Command cobrasim runs one workload through one or more execution
// schemes on the simulated machine and reports the paper's metrics
// (cycles, phase split, instruction counts, branch misses, cache
// misses, DRAM traffic).
//
// Usage:
//
//	cobrasim -app DegreeCount -input URND -scale 18 -schemes Baseline,PB-SW,COBRA
//	cobrasim -app NeighborPopulate -input KRON -bins 512
//	cobrasim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cobra/internal/exp"
	"cobra/internal/mem"
	"cobra/internal/sim"
)

func main() {
	var (
		appName = flag.String("app", "DegreeCount", "workload: "+strings.Join(exp.AppNames(), ", "))
		input   = flag.String("input", "URND", "input: "+strings.Join(exp.InputNames(), ", "))
		scale   = flag.Int("scale", 18, "input scale (vertices/keys ~ 2^scale)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		bins    = flag.Int("bins", 0, "PB-SW bin count (0 = sweep for best)")
		schemes = flag.String("schemes", "Baseline,PB-SW,COBRA", "comma-separated schemes")
		nuca    = flag.Bool("nuca", false, "model Table II's 4x4-mesh NUCA latency for the shared LLC")
		list    = flag.Bool("list", false, "list workloads and inputs, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(exp.AppNames(), ", "))
		fmt.Println("inputs:   ", strings.Join(exp.InputNames(), ", "))
		fmt.Println("schemes:  ", "Baseline, PB-SW, PB-SW-IDEAL, COBRA, COBRA-COMM, PHI")
		return
	}

	app, err := exp.BuildApp(*appName, *input, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cobrasim:", err)
		os.Exit(1)
	}
	arch := sim.DefaultArch()
	if *nuca {
		arch.Mem.NUCA = mem.DefaultNUCA()
	}
	fmt.Printf("%s on %s: %d keys, %d updates, %d B tuples, commutative=%v\n\n",
		app.Name, app.InputName, app.NumKeys, app.NumUpdates, app.TupleBytes, app.Commutative)

	var results []sim.Metrics
	var base *sim.Metrics
	for _, s := range strings.Split(*schemes, ",") {
		m, err := exp.RunScheme(app, sim.Scheme(strings.TrimSpace(s)), *bins, arch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cobrasim: %s: %v\n", s, err)
			continue
		}
		results = append(results, m)
		if m.Scheme == sim.SchemeBaseline {
			base = &results[len(results)-1]
		}
	}

	fmt.Printf("%-12s %12s %10s %12s %12s %12s %8s %9s %8s\n",
		"scheme", "cycles", "speedup", "init", "binning", "accumulate", "bins", "instr", "brMiss%")
	for _, m := range results {
		speedup := "-"
		if base != nil && m.Cycles > 0 {
			speedup = fmt.Sprintf("%.2fx", base.Cycles/m.Cycles)
		}
		fmt.Printf("%-12s %12.3e %10s %12.3e %12.3e %12.3e %8d %9.2e %8.2f\n",
			m.Scheme, m.Cycles, speedup, m.InitCycles, m.BinCycles, m.AccumCycles,
			m.NumBins, float64(m.Ctr.Instructions), 100*m.Ctr.BranchMissRate())
	}
	fmt.Println()
	for _, m := range results {
		fmt.Printf("%-12s L1miss=%9d L2miss=%9d LLCmiss=%9d LLCmissRate=%.3f DRAM rd/wr lines=%d/%d\n",
			m.Scheme, m.L1Misses, m.L2Misses, m.LLCMisses, m.LLCMissRate,
			m.DRAM.ReadLines, m.DRAM.WriteLines)
	}
}
