// Command cobrasim runs one workload through one or more execution
// schemes on the simulated machine and reports the paper's metrics
// (cycles, phase split, instruction counts, branch misses, cache
// misses, DRAM traffic).
//
// Usage:
//
//	cobrasim -app DegreeCount -input URND -scale 18 -schemes Baseline,PB-SW,COBRA
//	cobrasim -app NeighborPopulate -input KRON -bins 512
//	cobrasim -app DegreeCount -input KRON -cores 16   # sharded multi-core model
//	cobrasim -app StreamIngest -input URND -stream -windows 8   # windowed streaming engine
//	cobrasim -app DegreeCount -input URND -json   # machine-readable metrics
//	cobrasim -list
//
// The flags assemble one canonical exp.RunSpec — the same structure the
// cobrad wire format and the fleet translator use — and validation is
// exp.RunSpec.Normalize, not a CLI-local copy: a spec that validates
// here validates everywhere. An invalid spec exits 2 before any
// simulation runs. -json emits the sim.Metrics slice as JSON — the same
// structs the cobrad service returns, so CLI and API wire formats stay
// aligned.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cobra/internal/exp"
	"cobra/internal/sim"
)

func main() {
	os.Exit(run())
}

// parseSpec assembles the RunSpec from flags and validates it through
// the shared Normalize path. Returns exit code 2 on any usage error, -1
// to proceed.
func parseSpec() (exp.RunSpec, bool, int) {
	var (
		asJSON  = flag.Bool("json", false, "emit the metrics slice as JSON (the cobrad wire format) instead of tables")
		appName = flag.String("app", "DegreeCount", "workload: "+strings.Join(exp.AppNames(), ", "))
		input   = flag.String("input", "URND", "input: "+strings.Join(exp.InputNames(), ", "))
		scale   = flag.Int("scale", 18, "input scale (vertices/keys ~ 2^scale)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		bins    = flag.Int("bins", 0, "PB-SW bin count (0 = sweep for best; fixed epoch default when streaming)")
		schemes = flag.String("schemes", "Baseline,PB-SW,COBRA", "comma-separated schemes")
		nuca    = flag.Bool("nuca", false, "model Table II's 4x4-mesh NUCA latency for the shared LLC")
		cores   = flag.Int("cores", 1, "simulated core count (1 = legacy single-core model)")
		stream  = flag.Bool("stream", false, "drive the workload through the windowed streaming engine")
		windows = flag.Int("windows", 0, "stream window count (0 = default; needs -stream)")
		winUpd  = flag.Int("window-updates", 0, "updates per stream window (0 = default; needs -stream)")
		list    = flag.Bool("list", false, "list workloads and inputs, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(exp.AppNames(), ", "))
		fmt.Println("inputs:   ", strings.Join(exp.InputNames(), ", "))
		fmt.Println("schemes:  ", strings.Join(exp.SchemeNames(), ", "))
		fmt.Println("streaming:", strings.Join(exp.StreamApps(), ", "), "(with -stream)")
		return exp.RunSpec{}, false, 0
	}

	var ids []sim.SchemeID
	for _, s := range strings.Split(*schemes, ",") {
		id, err := sim.ParseSchemeIDLenient(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cobrasim:", err)
			return exp.RunSpec{}, false, 2
		}
		ids = append(ids, id)
	}
	spec := exp.RunSpec{
		App: *appName, Input: *input, Scale: *scale, Seed: *seed,
		Schemes: ids, Bins: *bins, NUCA: *nuca, Cores: *cores,
		Windows: *windows, WindowUpdates: *winUpd,
	}
	if *stream {
		spec.Kind = exp.KindStream
	}
	// The one shared validation path: a typo in the last scheme, an
	// out-of-range scale, or a stream knob on an offline run must not
	// waste a partial simulation (usage error, exit 2).
	if err := spec.Normalize(exp.Limits{}); err != nil {
		fmt.Fprintln(os.Stderr, "cobrasim:", err)
		return exp.RunSpec{}, false, 2
	}
	return spec, *asJSON, -1
}

func run() int {
	spec, asJSON, code := parseSpec()
	if code >= 0 {
		return code
	}
	if spec.Kind == exp.KindStream {
		return runStream(spec, asJSON)
	}
	return runOffline(spec, asJSON)
}

// runOffline is the historical path: one static cell per scheme.
func runOffline(spec exp.RunSpec, asJSON bool) int {
	app, err := exp.BuildApp(spec.App, spec.Input, spec.Scale, spec.Seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cobrasim:", err)
		return 1
	}
	arch := spec.Arch(sim.DefaultArch())
	if !asJSON {
		fmt.Printf("%s on %s: %d keys, %d updates, %d B tuples, commutative=%v\n\n",
			app.Name, app.InputName, app.NumKeys, app.NumUpdates, app.TupleBytes, app.Commutative)
	}

	var results []sim.Metrics
	var base *sim.Metrics
	failed := false
	for _, id := range spec.Schemes {
		m, err := exp.RunScheme(app, id.Scheme(), spec.Bins, arch)
		if err != nil {
			// Scheme names were validated up front; failures here are
			// applicability errors (e.g. COBRA-COMM on a non-commutative
			// app). Report and keep going so the valid schemes still run.
			fmt.Fprintf(os.Stderr, "cobrasim: %s: %v\n", id, err)
			failed = true
			continue
		}
		results = append(results, m)
		if m.Scheme == sim.SchemeBaseline {
			base = &results[len(results)-1]
		}
	}
	return render(results, base, asJSON, failed)
}

// runStream drives each scheme through the windowed streaming engine
// and reports the merged (MergeMetrics-folded) metrics per scheme.
func runStream(spec exp.RunSpec, asJSON bool) int {
	o := exp.DefaultOpts()
	o.Scale, o.Seed = spec.Scale, spec.Seed
	if !asJSON {
		w, err := spec.StreamWorkload()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cobrasim:", err)
			return 1
		}
		fmt.Printf("%s on %s: %d keys, %d windows x %d updates (streamed)\n\n",
			w.Name, w.InputName, w.NumKeys, w.Windows, w.WindowUpdates)
	}

	var results []sim.Metrics
	var base *sim.Metrics
	failed := false
	for _, id := range spec.Schemes {
		r, err := exp.RunStream(o, "cli", spec, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cobrasim: %s: %v\n", id, err)
			failed = true
			continue
		}
		results = append(results, r.Merged)
		if r.Merged.Scheme == sim.SchemeBaseline {
			base = &results[len(results)-1]
		}
	}
	return render(results, base, asJSON, failed)
}

// render emits the metrics slice as JSON or the two human tables.
func render(results []sim.Metrics, base *sim.Metrics, asJSON, failed bool) int {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "cobrasim:", err)
			return 1
		}
		if failed {
			return 1
		}
		return 0
	}

	fmt.Printf("%-12s %12s %10s %12s %12s %12s %8s %9s %8s\n",
		"scheme", "cycles", "speedup", "init", "binning", "accumulate", "bins", "instr", "brMiss%")
	for _, m := range results {
		speedup := "-"
		if base != nil && m.Cycles > 0 {
			speedup = fmt.Sprintf("%.2fx", base.Cycles/m.Cycles)
		}
		fmt.Printf("%-12s %12.3e %10s %12.3e %12.3e %12.3e %8d %9.2e %8.2f\n",
			m.Scheme, m.Cycles, speedup, m.InitCycles, m.BinCycles, m.AccumCycles,
			m.NumBins, float64(m.Ctr.Instructions), 100*m.Ctr.BranchMissRate())
	}
	fmt.Println()
	for _, m := range results {
		fmt.Printf("%-12s L1miss=%9d L2miss=%9d LLCmiss=%9d LLCmissRate=%.3f DRAM rd/wr lines=%d/%d\n",
			m.Scheme, m.L1Misses, m.L2Misses, m.LLCMisses, m.LLCMissRate,
			m.DRAM.ReadLines, m.DRAM.WriteLines)
	}
	if failed {
		return 1
	}
	return 0
}
