// Command graphgen generates and inspects the synthetic inputs that
// stand in for the paper's Table III graphs and matrices.
//
// Usage:
//
//	graphgen -list
//	graphgen -input KRON -scale 20
//	graphgen -matrix SKEW -scale 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cobra/internal/fsx"
	"cobra/internal/gio"
	"cobra/internal/graph"
	"cobra/internal/sparse"
)

func main() {
	var (
		input  = flag.String("input", "", "graph input to generate: KRON, TWIT, URND, ROAD")
		matrix = flag.String("matrix", "", "matrix input to generate: STEN, RAND, SKEW, BAND")
		scale  = flag.Int("scale", 18, "size (vertices/rows ~ 2^scale)")
		seed   = flag.Uint64("seed", 42, "generator seed")
		out    = flag.String("o", "", "write the generated input to this file (gio binary format)")
		load   = flag.String("load", "", "load and describe a previously written edge-list file")
		list   = flag.Bool("list", false, "describe the input suite, then exit")
	)
	flag.Parse()

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		el, err := gio.ReadEdgeList(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		ds := graph.Degrees(el)
		fmt.Printf("%s: %d vertices, %d edges, mean degree %.2f, max %d\n",
			*load, ds.N, ds.M, ds.MeanDeg, ds.MaxDeg)
		return
	}

	switch {
	case *list:
		fmt.Println("Graph inputs (stand-ins for the paper's Table III graphs):")
		fmt.Println("  KRON  R-MAT power-law (a=.57,b=.19,c=.19), 16 edges/vertex — highly skewed")
		fmt.Println("  TWIT  R-MAT power-law (a=.65), 12 edges/vertex — extreme skew")
		fmt.Println("  URND  uniform random, 16 edges/vertex — no skew, no reuse")
		fmt.Println("  ROAD  2D lattice + short-range shortcuts — bounded degree, high diameter")
		fmt.Println("Matrix inputs:")
		fmt.Println("  STEN  5-point stencil Laplacian (HPCG class)")
		fmt.Println("  RAND  uniform random sparse, 8 nnz/row")
		fmt.Println("  SKEW  power-law column distribution, 8 nnz/row")
		fmt.Println("  BAND  banded random, 8 nnz/row")
	case *input != "":
		var el *graph.EdgeList
		switch *input {
		case "KRON":
			el = graph.RMAT(*scale, 16, *seed)
		case "TWIT":
			el = graph.RMATParams(*scale, 12, 0.65, 0.15, 0.15, *seed+2)
		case "URND":
			el = graph.Uniform(1<<*scale, 16<<*scale, *seed+1)
		case "ROAD":
			side := 1 << ((*scale + 1) / 2)
			el = graph.Grid(side, 1<<(*scale/2), 0.05, *seed+3)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown input %q\n", *input)
			os.Exit(1)
		}
		ds := graph.Degrees(el)
		fmt.Printf("%s scale=%d: %d vertices, %d edges\n", *input, *scale, ds.N, ds.M)
		if *out != "" {
			// Atomic temp+rename with fsync: a crash or full disk never
			// leaves a truncated input file for later runs to trip over
			// (write/close/sync errors all propagate).
			if err := fsx.WriteFileAtomic(*out, func(w io.Writer) error { return gio.WriteEdgeList(w, el) }); err != nil {
				fmt.Fprintln(os.Stderr, "graphgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		fmt.Printf("  mean degree   %.2f\n", ds.MeanDeg)
		fmt.Printf("  max degree    %d\n", ds.MaxDeg)
		fmt.Printf("  p99 degree    %.0f\n", ds.P99Deg)
		fmt.Printf("  zero-deg frac %.3f\n", ds.ZeroDegFrac)
		fmt.Printf("  top-1%% share  %.3f of edges\n", ds.Top1PctShare)
	case *matrix != "":
		var m *sparse.Matrix
		n := 1 << *scale
		switch *matrix {
		case "STEN":
			m = sparse.Stencil5(1 << (*scale / 2))
		case "RAND":
			m = sparse.RandomSparse(n, n, 8, *seed+4)
		case "SKEW":
			m = sparse.SkewedSparse(n, n, 8, *seed+5)
		case "BAND":
			m = sparse.Banded(n, 8, 1<<(*scale/2), *seed+6)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown matrix %q\n", *matrix)
			os.Exit(1)
		}
		if err := m.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: generated matrix invalid: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s scale=%d: %d x %d, %d nnz (%.2f per row)\n",
			*matrix, *scale, m.Rows, m.Cols, m.NNZ(), float64(m.NNZ())/float64(m.Rows))
		if *out != "" {
			if err := fsx.WriteFileAtomic(*out, func(w io.Writer) error { return gio.WriteMatrix(w, m) }); err != nil {
				fmt.Fprintln(os.Stderr, "graphgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
