package main

// Process-level smoke test: `make serve-smoke` runs TestServeSmoke,
// which re-executes this test binary as a real cobrad process (the
// classic TestMain re-exec pattern — no network toolchain or separate
// build step needed), then:
//
//  1. waits for the ephemeral listen address to land in -addrfile,
//  2. probes /healthz and /readyz,
//  3. runs one sync job over HTTP and diffs the metrics against a
//     direct exp.RunScheme call (byte-identical after JSON round-trip),
//  4. fires concurrent load and sends SIGTERM mid-flight,
//  5. asserts the daemon drains and exits 0.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cobra/internal/exp"
	"cobra/internal/sim"
)

// TestMain lets the test binary impersonate cobrad when re-executed
// with COBRAD_SMOKE_CHILD set: it runs the real daemon main loop and
// exits with its code.
func TestMain(m *testing.M) {
	if os.Getenv("COBRAD_SMOKE_CHILD") == "1" {
		os.Exit(run(strings.Fields(os.Getenv("COBRAD_SMOKE_ARGS")), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// spawnDaemon re-executes the test binary as a cobrad child and
// returns the command plus its base URL once the listener is up. Extra
// environment entries (e.g. a COBRA_FAULTS schedule) ride along.
func spawnDaemon(t *testing.T, extraArgs string, extraEnv ...string) (*exec.Cmd, string) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	args := "-addr 127.0.0.1:0 -addrfile " + addrFile + " " + extraArgs
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "COBRAD_SMOKE_CHILD=1", "COBRAD_SMOKE_ARGS="+args)
	cmd.Env = append(cmd.Env, extraEnv...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("cobrad stderr:\n%s", stderr.String())
		}
	})
	// The daemon publishes its bound address atomically; poll for it.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never published its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process smoke test")
	}
	cachePath := filepath.Join(t.TempDir(), "cache.jsonl")
	cmd, base := spawnDaemon(t, "-workers 2 -queue 8 -max-scale 12 -cache "+cachePath)

	client := &http.Client{Timeout: 30 * time.Second}

	// Probe liveness and readiness.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}

	// One sync job over HTTP...
	spec := map[string]any{
		"app": "DegreeCount", "input": "URND", "scale": 10, "seed": 7,
		"schemes": []string{"Baseline", "COBRA"}, "bins": 16,
	}
	body, _ := json.Marshal(spec)
	resp, err := client.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		State   string        `json:"state"`
		Results []sim.Metrics `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.State != "done" || len(view.Results) != 2 {
		t.Fatalf("sync run: status %d view %+v", resp.StatusCode, view)
	}

	// ...must match direct exp.RunScheme byte-for-byte after the JSON
	// round-trip.
	app, err := exp.BuildApp("DegreeCount", "URND", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	var direct []sim.Metrics
	for _, s := range []sim.Scheme{sim.SchemeBaseline, sim.SchemeCOBRA} {
		m, err := exp.RunScheme(app, s, 16, sim.DefaultArch())
		if err != nil {
			t.Fatal(err)
		}
		direct = append(direct, m)
	}
	got, _ := json.Marshal(view.Results)
	want, _ := json.Marshal(direct)
	if !bytes.Equal(got, want) {
		t.Fatalf("service != direct:\n got %s\nwant %s", got, want)
	}

	// /metrics exposes the run.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, wantLine := range []string{"srv_jobs_completed 1", "# TYPE srv_queue_depth gauge"} {
		if !strings.Contains(metrics.String(), wantLine) {
			t.Fatalf("/metrics missing %q:\n%s", wantLine, metrics.String())
		}
	}

	// Concurrent load, then SIGTERM mid-flight: the daemon must drain
	// and exit 0, and no request may see a 5xx other than the drain 503.
	var wg sync.WaitGroup
	codes := make([]int, 32)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := fmt.Sprintf(`{"app":"DegreeCount","input":"URND","scale":9,"seed":%d,"schemes":["Baseline"]}`, i%5)
			resp, err := client.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
			if err != nil {
				codes[i] = -1 // connection torn down post-drain: acceptable
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, c := range codes {
		switch c {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable, -1:
		default:
			t.Errorf("request %d: status %d", i, c)
		}
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("cobrad exited non-zero after SIGTERM: %v", err)
	}

	// The fsync'd result cache survived the shutdown.
	if fi, err := os.Stat(cachePath); err != nil || fi.Size() == 0 {
		t.Fatalf("result cache journal missing or empty after drain: %v", err)
	}
}

// TestUsageErrors pins CLI exit discipline: bad flags and stray
// arguments are usage errors (exit 2), not crashes.
func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &out); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &out); code != 2 {
		t.Fatalf("stray arg exit = %d, want 2", code)
	}
}
