package main

// Service chaos: SIGKILL a real cobrad at a fault-scheduled journal
// append and prove the result cache survives the crash — the restarted
// daemon serves the pre-crash results as cache hits, the journal never
// contains an error entry, and at most its tail is torn. Plus the
// slowloris regression for the hardened http.Server.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cobra/internal/client"
	"cobra/internal/exp"
	"cobra/internal/sim"
	"cobra/internal/srv"
)

// TestChaosCacheSurvivesKill: daemon A computes one job (2 cells → 2
// fsync'd journal appends), then dies by SIGKILL at its 3rd append,
// mid-way through a second job. Daemon B restarts on the same journal
// and must serve the first job's results entirely from cache.
func TestChaosCacheSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos test")
	}
	cachePath := filepath.Join(t.TempDir(), "cache.jsonl")
	args := "-workers 1 -queue 8 -max-scale 12 -cache " + cachePath

	cmdA, baseA := spawnDaemon(t, args,
		"COBRA_FAULTS=exp.journal.append:at=3:err=short:kill")

	// The resilient client drives the whole exchange.
	cl := client.New(baseA, client.Options{PollInterval: 20 * time.Millisecond})
	ctx := t.Context()

	specA := srv.JobSpec{RunSpec: exp.RunSpec{App: "DegreeCount", Input: "URND", Scale: 10, Seed: 7,
		Schemes: []sim.SchemeID{sim.SchemeIDBaseline, sim.SchemeIDCOBRA}, Bins: 16}}
	vA, err := cl.Run(ctx, specA)
	if err != nil {
		t.Fatalf("job A before crash: %v", err)
	}
	if vA.State != srv.JobDone || vA.CacheMisses != 2 {
		t.Fatalf("job A view: %+v", vA)
	}

	// Job B's first cell lands on journal append #3: torn write, then
	// SIGKILL. The HTTP call fails however the connection dies.
	specB := specA
	specB.Seed = 8
	if _, err := cl.Submit(ctx, specB); err != nil {
		t.Logf("submit during crash (expected to fail): %v", err)
	}
	err = cmdA.Wait()
	if err == nil {
		t.Fatal("daemon A survived its kill schedule")
	}
	ws, ok := cmdA.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("daemon A died of %v, want SIGKILL", err)
	}

	// The journal on disk: 2 complete entries plus a physically torn
	// tail — and not a single error was cached.
	checkJournalEntries(t, cachePath, 2)

	// Daemon B resumes the journal, no faults armed.
	cmdB, baseB := spawnDaemon(t, args)
	clB := client.New(baseB, client.Options{PollInterval: 20 * time.Millisecond})
	vB, err := clB.Run(ctx, specA)
	if err != nil {
		t.Fatalf("job A after restart: %v", err)
	}
	if vB.State != srv.JobDone || vB.CacheHits != 2 || vB.CacheMisses != 0 {
		t.Fatalf("restarted daemon did not serve from cache: %+v", vB)
	}
	// Byte-identical across the crash: the replayed metrics equal the
	// originals exactly.
	got, _ := json.Marshal(vB.Results)
	want, _ := json.Marshal(vA.Results)
	if !bytes.Equal(got, want) {
		t.Fatalf("cached results diverged across restart:\n got %s\nwant %s", got, want)
	}

	// The interrupted job B runs cleanly now.
	if vB, err = clB.Run(ctx, specB); err != nil || vB.State != srv.JobDone {
		t.Fatalf("job B after restart: %+v %v", vB, err)
	}

	// Graceful exit for daemon B.
	if err := cmdB.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmdB.Wait(); err != nil {
		t.Fatalf("daemon B exited non-zero: %v", err)
	}
}

// checkJournalEntries asserts the cache journal holds exactly want
// complete well-formed {k,m} lines (errors are never cached, so no
// entry may carry an error field) and tolerates only a torn tail.
func checkJournalEntries(t *testing.T, path string, want int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	complete := 0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	tornTail := len(raw) > 0 && raw[len(raw)-1] != '\n'
	for i, line := range lines {
		var e map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			if tornTail && i == len(lines)-1 {
				continue // the torn tail, not an entry
			}
			t.Fatalf("journal line %d damaged beyond the tail: %q", i+1, line)
		}
		if _, ok := e["k"]; !ok {
			t.Fatalf("journal line %d missing key: %q", i+1, line)
		}
		if _, ok := e["error"]; ok {
			t.Fatalf("an error was cached: %q", line)
		}
		complete++
	}
	if complete != want {
		t.Fatalf("journal holds %d complete entries, want %d (torn tail: %v)", complete, want, tornTail)
	}
	if !tornTail {
		t.Fatal("expected a torn tail from the short-write kill")
	}
}

// TestSlowloris: a client that opens a connection and trickles header
// bytes is disconnected by ReadHeaderTimeout instead of holding the
// connection open indefinitely.
func TestSlowloris(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos test")
	}
	_, base := spawnDaemon(t, "-workers 1 -read-header-timeout 300ms")
	addr := strings.TrimPrefix(base, "http://")

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Partial request line, then silence — the classic slowloris hold.
	if _, err := fmt.Fprintf(conn, "GET /healthz HT"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	// The server may write a 408 before closing; read to EOF either way.
	all, err := io.ReadAll(conn)
	elapsed := time.Since(start)
	if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatalf("server held the slowloris connection past %v", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("connection closed only after %v, want ~read-header-timeout", elapsed)
	}
	if len(all) > 0 && !bytes.Contains(all, []byte("408")) && !bytes.Contains(all, []byte("400")) {
		t.Fatalf("unexpected response to a half-written request line: %q", all)
	}

	// The server is still healthy for well-behaved clients.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after slowloris = %d", resp.StatusCode)
	}
}
