// Command cobrad serves the COBRA/PB simulation substrate as a
// long-running HTTP/JSON daemon: a bounded job queue with
// backpressure, a worker pool over the exp campaign machinery (panic
// isolation, per-job timeouts), a restart-surviving result cache
// keyed by checkpoint cell fingerprints, and Prometheus metrics.
//
// Usage:
//
//	cobrad                                  # listen on :8372
//	cobrad -addr 127.0.0.1:0 -addrfile a    # ephemeral port, address published to a file
//	cobrad -cache results.jsonl             # persistent result cache (fsync'd JSONL)
//	cobrad -workers 4 -queue 128            # pool and backpressure knobs
//
// Endpoints: POST /v1/jobs (async), POST /v1/run (sync), GET
// /v1/jobs/{id}, GET /healthz, GET /readyz, GET /metrics. See the
// README "Service" section for an example curl session.
//
// Shutdown: the first SIGINT/SIGTERM flips /readyz to 503, stops job
// intake (new submissions get 503), cancels queued-but-unstarted
// jobs, drains the jobs in flight, flushes and closes the result
// cache journal, then closes the listener and exits 0. A second
// signal aborts immediately with exit 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cobra/internal/fault"
	"cobra/internal/fsx"
	"cobra/internal/obsv"
	"cobra/internal/srv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon behind a testable seam: flags in, exit code out.
// The process-level smoke test re-executes the test binary through it.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cobrad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8372", "listen address (host:port; port 0 picks an ephemeral port)")
		addrFile     = fs.String("addrfile", "", "write the bound listen address to this file (atomic; for scripts probing an ephemeral port)")
		workers      = fs.Int("workers", runtime.GOMAXPROCS(0), "job worker pool size")
		queueDepth   = fs.Int("queue", 64, "job queue depth (a full queue answers 429)")
		maxInflight  = fs.Int("max-inflight", 0, "cap on jobs admitted but not yet settled (queued+running); beyond it submissions answer 429 (0 = no cap)")
		cachePath    = fs.String("cache", "", "persist the result cache to this JSONL journal (checkpoint format; resumed on restart)")
		cacheReset   = fs.Bool("cache-reset", false, "truncate an existing -cache file instead of resuming from it")
		defaultScale = fs.Int("scale", 16, "default input scale for jobs that omit one")
		maxScale     = fs.Int("max-scale", 24, "largest scale a job may request")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "default per-job wall-clock budget")
		maxTimeout   = fs.Duration("max-job-timeout", 30*time.Minute, "largest per-job timeout a job may request")
		drainTimeout = fs.Duration("drain-timeout", 60*time.Second, "how long graceful shutdown waits for in-flight jobs")
		readHdrTO    = fs.Duration("read-header-timeout", 5*time.Second, "per-connection header read deadline (slowloris defense)")
		readTO       = fs.Duration("read-timeout", 30*time.Second, "per-request body read deadline")
		idleTO       = fs.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle deadline")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "cobrad: unexpected arguments %v\n", fs.Args())
		return 2
	}

	// Fault injection (COBRA_FAULTS / COBRA_FAULT_SEED) activates before
	// the cache journal opens so the chaos harness can schedule crashes
	// at any journal append or admission.
	if _, err := fault.ActivateFromEnv(); err != nil {
		fmt.Fprintln(stderr, "cobrad:", err)
		return 2
	}

	// The service always runs instrumented: /metrics is part of the
	// API. The registry is installed process-wide so the exp/sim layers
	// (cell latency, input-cache hits, checkpoint counters) surface in
	// the same exposition as the srv.* metrics.
	reg := obsv.New()
	obsv.SetDefault(reg)
	defer obsv.SetDefault(nil)

	server, err := srv.New(srv.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		MaxInflight:       *maxInflight,
		DefaultScale:      *defaultScale,
		MaxScale:          *maxScale,
		DefaultJobTimeout: *jobTimeout,
		MaxJobTimeout:     *maxTimeout,
		CachePath:         *cachePath,
		CacheReset:        *cacheReset,
		Reg:               reg,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cobrad:", err)
		return 1
	}
	if *cachePath != "" {
		fmt.Fprintf(stderr, "cobrad: result cache %s: %d cells restored\n", *cachePath, server.CacheLen())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "cobrad:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := fsx.WriteFileAtomicBytes(*addrFile, []byte(bound+"\n")); err != nil {
			fmt.Fprintln(stderr, "cobrad:", err)
			ln.Close()
			return 1
		}
	}

	server.Start()
	// Hardened listener: a client that trickles header bytes (slowloris)
	// or never sends its body is cut off instead of pinning a connection
	// forever. Long sync /v1/run waits survive ReadTimeout because the
	// handler clears the read deadline once the body is fully decoded.
	httpSrv := &http.Server{
		Handler:           server.Handler(),
		ReadHeaderTimeout: *readHdrTO,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
	}
	fmt.Fprintf(stderr, "cobrad: listening on %s (workers=%d queue=%d scale<=%d)\n",
		bound, *workers, *queueDepth, *maxScale)

	// Two-stage SIGINT/SIGTERM, mirroring cmd/figures: first signal
	// drains, second aborts.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	drained := make(chan int, 1)
	go func() {
		<-sigc
		fmt.Fprintln(stderr, "cobrad: shutdown — draining in-flight jobs and flushing the result cache (signal again to abort)")
		go func() {
			<-sigc
			fmt.Fprintln(stderr, "cobrad: aborted")
			os.Exit(130)
		}()
		code := 0
		// Order: Drain first (flips /readyz via the draining flag, stops
		// intake, waits for workers, closes the journal) so every
		// accepted job settles; then Shutdown lets in-flight HTTP
		// handlers — sync waiters included — write their responses.
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer dcancel()
		if err := server.Drain(dctx); err != nil {
			fmt.Fprintln(stderr, "cobrad:", err)
			code = 1
		}
		sctx, scancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer scancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			fmt.Fprintln(stderr, "cobrad: http shutdown:", err)
			code = 1
		}
		drained <- code
	}()

	select {
	case code := <-drained:
		<-serveErr // Serve has returned ErrServerClosed by now
		fmt.Fprintln(stderr, "cobrad: drained; bye")
		return code
	case err := <-serveErr:
		// Listener failed without a signal (port stolen, fd pressure).
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "cobrad:", err)
			return 1
		}
		return 0
	}
}
