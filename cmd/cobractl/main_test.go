package main

// cobractl end-to-end tests against an in-process cobrad (srv.Server
// behind httptest): the CLI seam run() drives the same client code the
// installed binary uses.

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"cobra/internal/fault"
	"cobra/internal/srv"
)

// startServer runs a small in-process cobrad and returns its base URL.
func startServer(t *testing.T) string {
	t.Helper()
	server, err := srv.New(srv.Config{Workers: 2, QueueDepth: 16, DefaultScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	server.Start()
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func runCtl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestHealth(t *testing.T) {
	url := startServer(t)
	code, out, errOut := runCtl(t, "-addr", url, "health")
	if code != 0 || !strings.Contains(out, "ok") {
		t.Fatalf("health: code=%d out=%q err=%q", code, out, errOut)
	}
}

func TestRunEndToEnd(t *testing.T) {
	url := startServer(t)
	code, out, errOut := runCtl(t, "-addr", url, "run",
		"-app", "DegreeCount", "-input", "URND", "-scale", "8", "-schemes", "Baseline,COBRA")
	if code != 0 {
		t.Fatalf("run: code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(out, "done") || !strings.Contains(out, "Baseline") || !strings.Contains(out, "COBRA") {
		t.Fatalf("summary missing scheme results: %q", out)
	}

	// Same spec again: every cell replays from the server's cache.
	code, out, _ = runCtl(t, "-addr", url, "-json", "run",
		"-app", "DegreeCount", "-input", "URND", "-scale", "8", "-schemes", "Baseline,COBRA")
	if code != 0 {
		t.Fatalf("cached rerun failed: %q", out)
	}
	if !strings.Contains(out, `"cache_hits": 2`) {
		t.Fatalf("rerun did not hit the cache: %q", out)
	}
}

func TestSubmitGetWait(t *testing.T) {
	url := startServer(t)
	code, out, errOut := runCtl(t, "-addr", url, "submit",
		"-app", "DegreeCount", "-input", "URND", "-scale", "8", "-schemes", "Baseline")
	if code != 0 {
		t.Fatalf("submit: code=%d err=%q", code, errOut)
	}
	id := strings.Fields(out)[0]
	if !strings.HasPrefix(id, "j-") {
		t.Fatalf("no job id in %q", out)
	}
	code, out, errOut = runCtl(t, "-addr", url, "-poll", "5ms", "wait", id)
	if code != 0 || !strings.Contains(out, "done") {
		t.Fatalf("wait: code=%d out=%q err=%q", code, out, errOut)
	}
	code, out, _ = runCtl(t, "-addr", url, "get", id)
	if code != 0 || !strings.Contains(out, "done") {
		t.Fatalf("get after done: code=%d out=%q", code, out)
	}
}

func TestInvalidSpecPermanent(t *testing.T) {
	url := startServer(t)
	code, _, errOut := runCtl(t, "-addr", url, "submit",
		"-app", "NoSuchApp", "-input", "URND", "-schemes", "Baseline")
	if code != 1 {
		t.Fatalf("invalid app: code=%d", code)
	}
	if !strings.Contains(errOut, "permanent") {
		t.Fatalf("rejection not classified permanent: %q", errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCtl(t); code != 2 {
		t.Fatal("no command accepted")
	}
	if code, _, _ := runCtl(t, "bogus"); code != 2 {
		t.Fatal("unknown command accepted")
	}
	if code, _, _ := runCtl(t, "submit", "-app", "X"); code != 2 {
		t.Fatal("incomplete spec accepted")
	}
	if code, _, _ := runCtl(t, "wait"); code != 2 {
		t.Fatal("wait without id accepted")
	}
}

func TestJobFailureExitCode(t *testing.T) {
	url := startServer(t)
	// Every worker completion fails via the injection point: the job
	// lands failed, Run's resubmissions fail the same way, and the CLI
	// reports exit 1.
	plan, err := fault.Parse("srv.worker.complete:every=1:err=eio")
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	defer fault.Deactivate()
	code, _, errOut := runCtl(t, "-addr", url, "-poll", "5ms", "run",
		"-app", "DegreeCount", "-input", "URND", "-scale", "8", "-schemes", "Baseline")
	if code != 1 {
		t.Fatalf("failed job: code=%d err=%q", code, errOut)
	}
	if !strings.Contains(errOut, "failed") {
		t.Fatalf("stderr does not name the failed job: %q", errOut)
	}
}

func TestJobsList(t *testing.T) {
	url := startServer(t)
	code, _, errOut := runCtl(t, "-addr", url, "-poll", "5ms", "run",
		"-app", "DegreeCount", "-input", "URND", "-scale", "8", "-schemes", "Baseline")
	if code != 0 {
		t.Fatalf("run: code=%d err=%q", code, errOut)
	}
	code, out, errOut := runCtl(t, "-addr", url, "jobs")
	if code != 0 {
		t.Fatalf("jobs: code=%d err=%q", code, errOut)
	}
	if !strings.Contains(out, "done=1") {
		t.Fatalf("summary line missing done count: %q", out)
	}
	if !strings.Contains(out, "DegreeCount/URND") {
		t.Fatalf("recent rows missing the job: %q", out)
	}

	code, out, _ = runCtl(t, "-addr", url, "-json", "jobs")
	if code != 0 || !strings.Contains(out, `"done": 1`) {
		t.Fatalf("json jobs: code=%d out=%q", code, out)
	}
}

func TestFleetRun(t *testing.T) {
	w1, w2 := startServer(t), startServer(t)
	code, out, errOut := runCtl(t, "fleet", "run",
		"-addrs", w1+","+w2,
		"-app", "DegreeCount", "-input", "URND", "-scale", "8", "-schemes", "Baseline,COBRA")
	if code != 0 {
		t.Fatalf("fleet run: code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(errOut, "2/2 workers healthy") {
		t.Fatalf("probe report missing: %q", errOut)
	}
	if !strings.Contains(out, "Baseline") || !strings.Contains(out, "COBRA") || !strings.Contains(out, "(fleet)") {
		t.Fatalf("fleet results missing: %q", out)
	}
	if !strings.Contains(errOut, "2 dispatched, 2 completed") {
		t.Fatalf("fleet summary missing: %q", errOut)
	}
}

func TestFleetRunUsage(t *testing.T) {
	if code, _, _ := runCtl(t, "fleet"); code != 2 {
		t.Fatal("fleet without subcommand accepted")
	}
	if code, _, _ := runCtl(t, "fleet", "run", "-app", "X"); code != 2 {
		t.Fatal("fleet run without -addrs accepted")
	}
}
