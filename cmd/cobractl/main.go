// Command cobractl is the cobrad control CLI, built on the resilient
// internal/client: every call retries transient failures with jittered
// backoff, honors Retry-After backpressure, and trips a circuit
// breaker instead of hammering a dead server.
//
// Usage:
//
//	cobractl -addr http://127.0.0.1:8372 health
//	cobractl submit -app PageRank -input URAND -schemes Baseline,PB-SW
//	cobractl get j-000001
//	cobractl wait j-000001
//	cobractl run -app PageRank -input URAND -schemes COBRA   # submit + wait + resubmit-on-loss
//	cobractl jobs                                            # queue/running/done counts + recent jobs
//	cobractl fleet run -addrs host1:8372,host2:8372 -app PageRank -input URAND -schemes COBRA
//
// fleet run scatters one cell per scheme across a set of cobrad
// workers through the internal/dist coordinator — the same dispatch,
// steal, and local-fallback machinery `figures -fleet` uses — and an
// optional -journal makes interrupted fleet runs resumable.
//
// run survives a cobrad restart mid-job: a vanished job id (the
// server's job table is in-memory) is resubmitted, and the server's
// fingerprint-keyed result cache makes the resubmission replay already
// computed cells instead of re-simulating them.
//
// Exit codes: 0 job done / healthy; 1 job failed or transport gave up;
// 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cobra/internal/client"
	"cobra/internal/dist"
	"cobra/internal/exp"
	"cobra/internal/sim"
	"cobra/internal/srv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the CLI behind a testable seam: argv in, exit code out.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cobractl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8372", "cobrad base URL")
		timeout = fs.Duration("timeout", 10*time.Minute, "overall deadline for the command")
		retries = fs.Int("retries", 4, "per-request retry budget for transient failures")
		poll    = fs.Duration("poll", 250*time.Millisecond, "job status poll interval for wait/run")
		jsonOut = fs.Bool("json", false, "print the raw job JSON instead of a summary")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cobractl [flags] <health|submit|get|wait|run|jobs|fleet> [args]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	c := client.New(*addr, client.Options{
		MaxRetries:   *retries,
		PollInterval: *poll,
	})

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch cmd {
	case "health":
		if err := c.Health(ctx); err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		fmt.Fprintln(stdout, "ok")
		return 0

	case "submit":
		spec, code := parseSpec(rest, stderr)
		if code != 0 {
			return code
		}
		v, err := c.Submit(ctx, spec)
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		return printJob(stdout, v, *jsonOut)

	case "get", "wait":
		if len(rest) != 1 {
			fmt.Fprintf(stderr, "cobractl: %s needs exactly one job id\n", cmd)
			return 2
		}
		var (
			v   srv.JobView
			err error
		)
		if cmd == "get" {
			v, err = c.Get(ctx, rest[0])
		} else {
			v, err = c.Wait(ctx, rest[0])
		}
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		return printJob(stdout, v, *jsonOut)

	case "run":
		spec, code := parseSpec(rest, stderr)
		if code != 0 {
			return code
		}
		v, err := c.Run(ctx, spec)
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		return printJob(stdout, v, *jsonOut)

	case "jobs":
		sum, err := c.Jobs(ctx)
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			enc.Encode(sum)
			return 0
		}
		fmt.Fprintf(stdout, "queued=%d running=%d done=%d failed=%d canceled=%d workers=%d queue_cap=%d cache=%d\n",
			sum.Queued, sum.Running, sum.Done, sum.Failed, sum.Canceled, sum.Workers, sum.QueueCap, sum.CacheSize)
		for _, v := range sum.Recent {
			fmt.Fprintf(stdout, "%s\t%s\t%s/%s scale=%d schemes=%s\n",
				v.ID, v.State, v.Spec.App, v.Spec.Input, v.Spec.Scale, strings.Join(sim.SchemeNames(v.Spec.Schemes), ","))
		}
		return 0

	case "fleet":
		if len(rest) == 0 || rest[0] != "run" {
			fmt.Fprintln(stderr, "cobractl: fleet supports exactly one subcommand: run")
			return 2
		}
		return fleetRun(ctx, rest[1:], stdout, stderr, *jsonOut)

	default:
		fmt.Fprintf(stderr, "cobractl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
}

// parseSchemeList resolves a comma-separated scheme list to typed ids
// (lenient case, like the wire format).
func parseSchemeList(arg string, stderr io.Writer) ([]sim.SchemeID, bool) {
	var ids []sim.SchemeID
	for _, s := range strings.Split(arg, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		id, err := sim.ParseSchemeIDLenient(s)
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return nil, false
		}
		ids = append(ids, id)
	}
	return ids, true
}

// parseSpec parses the job-spec flags shared by submit and run into
// the canonical exp.RunSpec. Full validation happens server-side
// through the same RunSpec.Normalize every other surface uses.
func parseSpec(args []string, stderr io.Writer) (srv.JobSpec, int) {
	fs := flag.NewFlagSet("cobractl job", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app     = fs.String("app", "", "application (required)")
		input   = fs.String("input", "", "input distribution (required)")
		scale   = fs.Int("scale", 0, "input scale (0 = server default)")
		seed    = fs.Uint64("seed", 42, "generator seed")
		schemes = fs.String("schemes", "", "comma-separated scheme list (required)")
		bins    = fs.Int("bins", 0, "bin count (0 = sweep)")
		nuca    = fs.Bool("nuca", false, "enable the NUCA latency model")
		cores   = fs.Int("cores", 0, "simulated core count (0 = single-core)")
		stream  = fs.Bool("stream", false, "run as a streamed (windowed) job")
		windows = fs.Int("windows", 0, "stream window count (0 = server default)")
		winUpd  = fs.Int("window-updates", 0, "updates per stream window (0 = server default)")
		jobTO   = fs.Duration("job-timeout", 0, "per-job wall-clock budget (0 = server default)")
	)
	if err := fs.Parse(args); err != nil {
		return srv.JobSpec{}, 2
	}
	if *app == "" || *input == "" || *schemes == "" {
		fmt.Fprintln(stderr, "cobractl: -app, -input and -schemes are required")
		return srv.JobSpec{}, 2
	}
	ids, ok := parseSchemeList(*schemes, stderr)
	if !ok {
		return srv.JobSpec{}, 2
	}
	kind := exp.KindOffline
	if *stream {
		kind = exp.KindStream
	}
	return srv.JobSpec{
		RunSpec: exp.RunSpec{
			App:           *app,
			Input:         *input,
			Scale:         *scale,
			Seed:          *seed,
			Schemes:       ids,
			Bins:          *bins,
			NUCA:          *nuca,
			Cores:         *cores,
			Kind:          kind,
			Windows:       *windows,
			WindowUpdates: *winUpd,
		},
		TimeoutMS: jobTO.Milliseconds(),
	}, 0
}

// fleetRun scatters one cell per scheme across a worker fleet via the
// dist coordinator. A cell no worker can take (fleet down) runs
// locally — same metrics either way, by the coordinator's
// byte-identity contract.
func fleetRun(ctx context.Context, args []string, stdout, stderr io.Writer, jsonOut bool) int {
	fs := flag.NewFlagSet("cobractl fleet run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrs    = fs.String("addrs", "", "comma-separated cobrad worker URLs (required)")
		app      = fs.String("app", "", "application (required)")
		input    = fs.String("input", "", "input distribution (required)")
		scale    = fs.Int("scale", 16, "input scale")
		seed     = fs.Uint64("seed", 42, "generator seed")
		schemes  = fs.String("schemes", "", "comma-separated scheme list (required)")
		bins     = fs.Int("bins", 0, "bin count (0 = sweep)")
		cores    = fs.Int("cores", 1, "simulated core count")
		nuca     = fs.Bool("nuca", false, "enable the NUCA latency model")
		journal  = fs.String("journal", "", "fleet journal (fsync'd JSONL): gathered cells are recorded and replayed on rerun")
		inflight = fs.Int("inflight", 4, "max in-flight cells per worker")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addrs == "" || *app == "" || *input == "" || *schemes == "" {
		fmt.Fprintln(stderr, "cobractl: fleet run requires -addrs, -app, -input and -schemes")
		return 2
	}
	ids, ok := parseSchemeList(*schemes, stderr)
	if !ok {
		return 2
	}
	// One canonical spec covers every scheme's cell; validated through
	// the same shared path cobrad uses.
	spec := exp.RunSpec{
		App:   *app,
		Input: *input,
		Scale: *scale,
		Seed:  *seed,
		Bins:  *bins,
		NUCA:  *nuca,
		Cores: *cores,
	}
	probe := spec
	probe.Schemes = ids
	if err := probe.Validate(); err != nil {
		fmt.Fprintln(stderr, "cobractl:", err)
		return 2
	}

	cfg := dist.Config{Addrs: strings.Split(*addrs, ","), MaxInflight: *inflight}
	if *journal != "" {
		j, err := exp.OpenJournal(*journal, true)
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		defer j.Close()
		cfg.Journal = j
	}
	co, err := dist.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "cobractl:", err)
		return 2
	}
	defer co.Close()
	fmt.Fprintf(stderr, "cobractl: fleet: %d/%d workers healthy\n", co.Probe(ctx), len(co.Nodes()))

	// Local-fallback architecture, built in the worker's own knob order
	// (NUCA first, then cores) so a declined cell still lands on
	// identical metrics.
	arch := spec.Arch(sim.DefaultArch())

	type cellResult struct {
		Scheme  string      `json:"scheme"`
		Remote  bool        `json:"remote"`
		Metrics sim.Metrics `json:"metrics"`
	}
	var results []cellResult
	for _, id := range ids {
		k := dist.FleetCellKey(spec, id)
		m, remote, err := co.RunCell(ctx, k)
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		if !remote {
			fmt.Fprintf(stderr, "cobractl: fleet: cell %s declined — simulating locally\n", id)
			appl, err := exp.BuildApp(*app, *input, *scale, *seed)
			if err != nil {
				fmt.Fprintln(stderr, "cobractl:", err)
				return 1
			}
			if m, err = exp.RunScheme(appl, id.Scheme(), *bins, arch); err != nil {
				fmt.Fprintln(stderr, "cobractl:", err)
				return 1
			}
		}
		results = append(results, cellResult{Scheme: id.String(), Remote: remote, Metrics: m})
	}

	fi := co.Snapshot()
	fmt.Fprintf(stderr, "cobractl: fleet: %d dispatched, %d completed, %d stolen, %d failed, %d gathered\n",
		fi.Dispatched, fi.Completed, fi.Stolen, fi.Failed, fi.Gathered)
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(results)
		return 0
	}
	for _, r := range results {
		src := "fleet"
		if !r.Remote {
			src = "local"
		}
		fmt.Fprintf(stdout, "%s\tcycles=%.0f\t(%s)\n", r.Scheme, r.Metrics.Cycles, src)
	}
	return 0
}

// printJob renders one job view: full JSON with -json, otherwise a
// compact human summary. Exit code mirrors the job's fate so scripts
// can chain on it.
func printJob(stdout io.Writer, v srv.JobView, asJSON bool) int {
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	} else {
		fmt.Fprintf(stdout, "%s\t%s", v.ID, v.State)
		if v.State == srv.JobDone {
			fmt.Fprintf(stdout, "\tcache_hits=%d cache_misses=%d", v.CacheHits, v.CacheMisses)
			if len(v.Windows) > 0 {
				fmt.Fprintf(stdout, " windows=%d", len(v.Windows))
			}
			for i, m := range v.Results {
				fmt.Fprintf(stdout, "\n  %s\tcycles=%.0f", v.Spec.Schemes[i], m.Cycles)
			}
		}
		if v.Error != "" {
			fmt.Fprintf(stdout, "\terror=%s", v.Error)
		}
		fmt.Fprintln(stdout)
	}
	switch v.State {
	case srv.JobFailed, srv.JobCanceled:
		return 1
	default:
		return 0
	}
}
