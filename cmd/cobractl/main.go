// Command cobractl is the cobrad control CLI, built on the resilient
// internal/client: every call retries transient failures with jittered
// backoff, honors Retry-After backpressure, and trips a circuit
// breaker instead of hammering a dead server.
//
// Usage:
//
//	cobractl -addr http://127.0.0.1:8372 health
//	cobractl submit -app PageRank -input URAND -schemes Baseline,PB-SW
//	cobractl get j-000001
//	cobractl wait j-000001
//	cobractl run -app PageRank -input URAND -schemes COBRA   # submit + wait + resubmit-on-loss
//
// run survives a cobrad restart mid-job: a vanished job id (the
// server's job table is in-memory) is resubmitted, and the server's
// fingerprint-keyed result cache makes the resubmission replay already
// computed cells instead of re-simulating them.
//
// Exit codes: 0 job done / healthy; 1 job failed or transport gave up;
// 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cobra/internal/client"
	"cobra/internal/srv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the CLI behind a testable seam: argv in, exit code out.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cobractl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8372", "cobrad base URL")
		timeout = fs.Duration("timeout", 10*time.Minute, "overall deadline for the command")
		retries = fs.Int("retries", 4, "per-request retry budget for transient failures")
		poll    = fs.Duration("poll", 250*time.Millisecond, "job status poll interval for wait/run")
		jsonOut = fs.Bool("json", false, "print the raw job JSON instead of a summary")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cobractl [flags] <health|submit|get|wait|run> [args]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	c := client.New(*addr, client.Options{
		MaxRetries:   *retries,
		PollInterval: *poll,
	})

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch cmd {
	case "health":
		if err := c.Health(ctx); err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		fmt.Fprintln(stdout, "ok")
		return 0

	case "submit":
		spec, code := parseSpec(rest, stderr)
		if code != 0 {
			return code
		}
		v, err := c.Submit(ctx, spec)
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		return printJob(stdout, v, *jsonOut)

	case "get", "wait":
		if len(rest) != 1 {
			fmt.Fprintf(stderr, "cobractl: %s needs exactly one job id\n", cmd)
			return 2
		}
		var (
			v   srv.JobView
			err error
		)
		if cmd == "get" {
			v, err = c.Get(ctx, rest[0])
		} else {
			v, err = c.Wait(ctx, rest[0])
		}
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		return printJob(stdout, v, *jsonOut)

	case "run":
		spec, code := parseSpec(rest, stderr)
		if code != 0 {
			return code
		}
		v, err := c.Run(ctx, spec)
		if err != nil {
			fmt.Fprintln(stderr, "cobractl:", err)
			return 1
		}
		return printJob(stdout, v, *jsonOut)

	default:
		fmt.Fprintf(stderr, "cobractl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
}

// parseSpec parses the job-spec flags shared by submit and run.
func parseSpec(args []string, stderr io.Writer) (srv.JobSpec, int) {
	fs := flag.NewFlagSet("cobractl job", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app     = fs.String("app", "", "application (required)")
		input   = fs.String("input", "", "input distribution (required)")
		scale   = fs.Int("scale", 0, "input scale (0 = server default)")
		seed    = fs.Uint64("seed", 42, "generator seed")
		schemes = fs.String("schemes", "", "comma-separated scheme list (required)")
		bins    = fs.Int("bins", 0, "bin count (0 = sweep)")
		nuca    = fs.Bool("nuca", false, "enable the NUCA latency model")
		jobTO   = fs.Duration("job-timeout", 0, "per-job wall-clock budget (0 = server default)")
	)
	if err := fs.Parse(args); err != nil {
		return srv.JobSpec{}, 2
	}
	if *app == "" || *input == "" || *schemes == "" {
		fmt.Fprintln(stderr, "cobractl: -app, -input and -schemes are required")
		return srv.JobSpec{}, 2
	}
	var list []string
	for _, s := range strings.Split(*schemes, ",") {
		if s = strings.TrimSpace(s); s != "" {
			list = append(list, s)
		}
	}
	return srv.JobSpec{
		App:       *app,
		Input:     *input,
		Scale:     *scale,
		Seed:      *seed,
		Schemes:   list,
		Bins:      *bins,
		NUCA:      *nuca,
		TimeoutMS: jobTO.Milliseconds(),
	}, 0
}

// printJob renders one job view: full JSON with -json, otherwise a
// compact human summary. Exit code mirrors the job's fate so scripts
// can chain on it.
func printJob(stdout io.Writer, v srv.JobView, asJSON bool) int {
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	} else {
		fmt.Fprintf(stdout, "%s\t%s", v.ID, v.State)
		if v.State == srv.JobDone {
			fmt.Fprintf(stdout, "\tcache_hits=%d cache_misses=%d", v.CacheHits, v.CacheMisses)
			for i, m := range v.Results {
				fmt.Fprintf(stdout, "\n  %s\tcycles=%.0f", v.Spec.Schemes[i], m.Cycles)
			}
		}
		if v.Error != "" {
			fmt.Fprintf(stdout, "\terror=%s", v.Error)
		}
		fmt.Fprintln(stdout)
	}
	switch v.State {
	case srv.JobFailed, srv.JobCanceled:
		return 1
	default:
		return 0
	}
}
