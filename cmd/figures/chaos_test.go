package main

// Crash-recovery chaos harness: re-execute this test binary as a real
// figures process with a COBRA_FAULTS schedule that SIGKILLs it at an
// exact checkpoint-journal append, then resume in-process and demand
// byte-identical output. This is the tentpole's acceptance test — not
// a simulated crash (context cancel) but a real process dying with a
// real half-written file on disk.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"cobra/internal/exp"
)

// TestMain lets the test binary impersonate the figures CLI when
// re-executed with FIGURES_CHAOS_CHILD set; the COBRA_FAULTS schedule
// in the child's environment arms the crash.
func TestMain(m *testing.M) {
	if os.Getenv("FIGURES_CHAOS_CHILD") == "1" {
		os.Exit(run(strings.Fields(os.Getenv("FIGURES_CHAOS_ARGS")), os.Stdout, os.Stderr))
	}
	if os.Getenv("FIGURES_FLEET_WORKER") == "1" {
		// Fleet tests re-execute the binary as a cobrad worker — a
		// separate process the coordinator can SIGKILL (see fleet_test.go).
		os.Exit(fleetWorkerMain())
	}
	os.Exit(m.Run())
}

// crashCampaign re-executes the test binary as a figures child with the
// given fault schedule and waits for it to die by SIGKILL.
func crashCampaign(t *testing.T, args, faults string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"FIGURES_CHAOS_CHILD=1",
		"FIGURES_CHAOS_ARGS="+args,
		"COBRA_FAULTS="+faults,
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("child survived its fault schedule %q; stderr:\n%s", faults, stderr.String())
	}
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child died of %v, want SIGKILL; stderr:\n%s", err, stderr.String())
	}
}

// TestChaosCrashMidCampaignResumesByteIdentical: SIGKILL the campaign
// at its 3rd checkpoint append; the journal must hold exactly the 2
// durable cells, no artifact may exist, and a -resume run must produce
// output byte-identical to an uninterrupted campaign.
func TestChaosCrashMidCampaignResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos test")
	}
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.txt")
	out := filepath.Join(dir, "out.txt")
	ckpt := filepath.Join(dir, "run.ckpt")

	// Uninterrupted reference, in-process.
	code, _, stderr := runFigures(t, "-fig", "10", "-scale", "12", "-parallel", "1", "-manifest", "none", "-o", golden)
	if code != 0 {
		t.Fatalf("golden run: exit %d\n%s", code, stderr)
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: a real process SIGKILLed at the instant of its 3rd journal
	// append — after 2 cells became durable.
	crashCampaign(t,
		"-fig 10 -scale 12 -parallel 1 -manifest none -checkpoint "+ckpt+" -o "+out,
		"exp.journal.append:at=3:kill")

	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("killed campaign published an artifact: %v", err)
	}
	j, err := exp.OpenJournal(ckpt, true)
	if err != nil {
		t.Fatalf("journal unreadable after SIGKILL: %v", err)
	}
	got := j.Len()
	j.Close()
	if got != 2 {
		t.Fatalf("journal holds %d cells after kill-at-append-3, want 2", got)
	}

	// Resume in-process: replay the 2 durable cells, simulate the rest,
	// and match the uninterrupted bytes exactly.
	code, _, stderr = runFigures(t, "-fig", "10", "-scale", "12", "-parallel", "1", "-manifest", "none",
		"-checkpoint", ckpt, "-resume", "-o", out)
	if code != 0 {
		t.Fatalf("resume run: exit %d\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "resuming") {
		t.Fatalf("resume did not report replay:\n%s", stderr)
	}
	gotBytes, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gotBytes) {
		t.Fatalf("resumed artifact differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, gotBytes)
	}
}

// TestChaosTornWriteThenKillRecovers: the harder crash — the process
// tears the append (half the line reaches the file) and THEN dies, so
// recovery faces a genuinely torn tail. Resume must drop the tail,
// keep the durable prefix, and still converge to identical bytes.
func TestChaosTornWriteThenKillRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos test")
	}
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.txt")
	out := filepath.Join(dir, "out.txt")
	ckpt := filepath.Join(dir, "run.ckpt")

	code, _, stderr := runFigures(t, "-fig", "10", "-scale", "12", "-parallel", "1", "-manifest", "none", "-o", golden)
	if code != 0 {
		t.Fatalf("golden run: exit %d\n%s", code, stderr)
	}
	want, _ := os.ReadFile(golden)

	crashCampaign(t,
		"-fig 10 -scale 12 -parallel 1 -manifest none -checkpoint "+ckpt+" -o "+out,
		"exp.journal.append:at=2:err=short:kill")

	// The tail is physically torn: the file must end mid-line.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] == '\n' {
		t.Fatalf("expected a torn tail, file ends cleanly (%d bytes)", len(raw))
	}

	j, err := exp.OpenJournal(ckpt, true)
	if err != nil {
		t.Fatalf("journal unreadable after torn-write kill: %v", err)
	}
	kept := j.Len()
	j.Close()
	if kept != 1 {
		t.Fatalf("journal holds %d cells, want 1 durable before the torn append", kept)
	}

	code, _, stderr = runFigures(t, "-fig", "10", "-scale", "12", "-parallel", "1", "-manifest", "none",
		"-checkpoint", ckpt, "-resume", "-o", out)
	if code != 0 {
		t.Fatalf("resume after torn tail: exit %d\n%s", code, stderr)
	}
	gotBytes, _ := os.ReadFile(out)
	if !bytes.Equal(want, gotBytes) {
		t.Fatal("resume after torn-write crash diverged from uninterrupted output")
	}
}

// TestChaosCompactionAfterCrash: -compact-checkpoint cleans the torn
// journal a crash left behind, and the compacted journal still resumes
// to identical bytes.
func TestChaosCompactionAfterCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos test")
	}
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.txt")
	out := filepath.Join(dir, "out.txt")
	ckpt := filepath.Join(dir, "run.ckpt")

	code, _, stderr := runFigures(t, "-fig", "10", "-scale", "12", "-parallel", "1", "-manifest", "none", "-o", golden)
	if code != 0 {
		t.Fatalf("golden run: exit %d\n%s", code, stderr)
	}
	want, _ := os.ReadFile(golden)

	crashCampaign(t,
		"-fig 10 -scale 12 -parallel 1 -manifest none -checkpoint "+ckpt+" -o "+out,
		"exp.journal.append:at=3:err=short:kill")

	code, _, stderr = runFigures(t, "-checkpoint", ckpt, "-compact-checkpoint")
	if code != 0 {
		t.Fatalf("compaction: exit %d\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "2 cells kept") || !strings.Contains(stderr, "1 stale lines dropped") {
		t.Fatalf("compaction report unexpected:\n%s", stderr)
	}

	code, _, stderr = runFigures(t, "-fig", "10", "-scale", "12", "-parallel", "1", "-manifest", "none",
		"-checkpoint", ckpt, "-resume", "-o", out)
	if code != 0 {
		t.Fatalf("resume from compacted journal: exit %d\n%s", code, stderr)
	}
	gotBytes, _ := os.ReadFile(out)
	if !bytes.Equal(want, gotBytes) {
		t.Fatal("resume from compacted journal diverged")
	}
}
