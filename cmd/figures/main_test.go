package main

// Acceptance tests for the observability layer at the CLI seam: the
// run() function is the whole binary, so these are end-to-end minus
// process spawn. The core claim under test is the ISSUE's acceptance
// criterion: a campaign with -progress, -events, and a manifest
// produces BYTE-IDENTICAL figure output to an observability-disabled
// run, while emitting valid JSONL and a well-formed manifest.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"cobra/internal/exp"
	"cobra/internal/obsv"
)

// runFigures invokes the CLI seam with memo caches cleared, so every
// invocation simulates from scratch like a fresh process would.
func runFigures(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	exp.ResetMemos()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestObservabilityOutputByteIdentical(t *testing.T) {
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "plain.txt")
	obsPath := filepath.Join(dir, "obs.txt")
	eventsPath := filepath.Join(dir, "ev.jsonl")

	// Plain run: no observability at all.
	code, _, stderr := runFigures(t, "-fig", "10", "-scale", "12", "-o", plainPath, "-manifest", "none")
	if code != 0 {
		t.Fatalf("plain run exited %d\n%s", code, stderr)
	}
	if _, err := os.Stat(plainPath + ".manifest.json"); !os.IsNotExist(err) {
		t.Fatal("-manifest none still wrote a manifest")
	}

	// Instrumented run: progress + events + auto manifest.
	code, _, stderr = runFigures(t, "-fig", "10", "-scale", "12", "-o", obsPath,
		"-progress", "-events", eventsPath)
	if code != 0 {
		t.Fatalf("instrumented run exited %d\n%s", code, stderr)
	}

	plain, err := os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, obs) {
		t.Fatalf("figure artifact differs with observability enabled:\nplain %d bytes, instrumented %d bytes", len(plain), len(obs))
	}
	if len(plain) == 0 {
		t.Fatal("artifact is empty")
	}

	// The default registry must be restored after run() returns, so
	// embedding callers (and later tests) see observability disabled.
	if obsv.Default() != nil {
		t.Fatal("run() leaked the process-global registry")
	}

	checkEventLog(t, eventsPath)
	checkManifest(t, obsPath+".manifest.json")
}

// checkEventLog asserts every line is standalone JSON with the wire
// fields and that the campaign lifecycle events bracket the stream.
func checkEventLog(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var names []string
	var wantSeq uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Seq    uint64         `json:"seq"`
			Time   string         `json:"ts"`
			Name   string         `json:"ev"`
			Fields map[string]any `json:"f"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid JSONL line: %v\n%s", err, sc.Text())
		}
		if ev.Seq != wantSeq {
			t.Fatalf("seq %d, want %d", ev.Seq, wantSeq)
		}
		if _, err := time.Parse(time.RFC3339Nano, ev.Time); err != nil {
			t.Fatalf("bad event timestamp %q: %v", ev.Time, err)
		}
		wantSeq++
		names = append(names, ev.Name)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("only %d events emitted: %v", len(names), names)
	}
	if names[0] != "campaign_start" || names[len(names)-1] != "campaign_done" {
		t.Fatalf("lifecycle events missing: first=%s last=%s", names[0], names[len(names)-1])
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"figure_start", "figure_done", "cell_done"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("no %s event in stream: %v", want, names)
		}
	}
}

// checkManifest asserts the provenance record is complete: toolchain,
// campaign identity, per-figure timing, and the metric snapshot.
func checkManifest(t *testing.T, path string) {
	t.Helper()
	m, err := obsv.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "figures" {
		t.Fatalf("tool = %q", m.Tool)
	}
	if m.GoVersion != runtime.Version() || m.GOMAXPROCS <= 0 || m.NumCPU <= 0 {
		t.Fatalf("toolchain fields wrong: %+v", m)
	}
	if m.ArchFingerprint == "" || m.Scale != 12 || m.Parallel <= 0 {
		t.Fatalf("campaign identity wrong: %+v", m)
	}
	if m.WallSeconds <= 0 || m.End.Before(m.Start) {
		t.Fatalf("wall clock wrong: %+v", m)
	}
	if len(m.Figures) != 1 || m.Figures[0].Name != "10" || m.Figures[0].Seconds <= 0 {
		t.Fatalf("figure timings wrong: %+v", m.Figures)
	}
	if len(m.Metrics) == 0 {
		t.Fatal("metric snapshot empty")
	}
	for _, name := range []string{"exp.cells.completed", "exp.cell.wall", "sim.baseline.wall"} {
		if _, ok := m.Metrics[name]; !ok {
			t.Fatalf("manifest metrics missing %q (have %d metrics)", name, len(m.Metrics))
		}
	}
	if mv := m.Metrics["exp.cells.completed"]; mv.Count == 0 {
		t.Fatal("no cells recorded as completed")
	}
}

// TestBatchedPipelineOutputByteIdentical extends the byte-identity
// acceptance to the batched reference pipeline: figure artifacts from
// the batched hot path must equal the scalar oracle's artifacts
// byte-for-byte (not approximately — the simulated cycle counts
// themselves must agree in every bit for the tables to match).
func TestBatchedPipelineOutputByteIdentical(t *testing.T) {
	dir := t.TempDir()
	batched := filepath.Join(dir, "batched.txt")
	scalar := filepath.Join(dir, "scalar.txt")

	for _, figName := range []string{"10", "t1"} {
		code, _, stderr := runFigures(t, "-fig", figName, "-scale", "12", "-o", batched, "-manifest", "none")
		if code != 0 {
			t.Fatalf("batched run exited %d\n%s", code, stderr)
		}
		code, _, stderr = runFigures(t, "-fig", figName, "-scale", "12", "-o", scalar, "-manifest", "none", "-scalarrefs")
		if code != 0 {
			t.Fatalf("scalar run exited %d\n%s", code, stderr)
		}
		a, err := os.ReadFile(batched)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(scalar)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 {
			t.Fatalf("fig %s: empty artifact", figName)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("fig %s: batched pipeline artifact differs from scalar oracle (%d vs %d bytes)",
				figName, len(a), len(b))
		}
	}
}

// TestManifestRecordsCheckpointReplay: a resumed campaign's manifest
// must report the replay/record split, and the replayed run's artifact
// must match the original byte-for-byte.
func TestManifestRecordsCheckpointReplay(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	first := filepath.Join(dir, "first.txt")
	second := filepath.Join(dir, "second.txt")

	code, _, stderr := runFigures(t, "-fig", "10", "-scale", "12", "-o", first,
		"-manifest", "none", "-checkpoint", ckpt)
	if code != 0 {
		t.Fatalf("first run exited %d\n%s", code, stderr)
	}
	code, _, stderr = runFigures(t, "-fig", "10", "-scale", "12", "-o", second,
		"-checkpoint", ckpt, "-resume", "-events", filepath.Join(dir, "ev.jsonl"))
	if code != 0 {
		t.Fatalf("resumed run exited %d\n%s", code, stderr)
	}

	a, _ := os.ReadFile(first)
	b, _ := os.ReadFile(second)
	if !bytes.Equal(a, b) {
		t.Fatal("resumed artifact differs from original")
	}

	m, err := obsv.ReadManifest(second + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if m.Checkpoint == nil || m.Checkpoint.Path != ckpt {
		t.Fatalf("checkpoint info missing: %+v", m.Checkpoint)
	}
	if m.Checkpoint.Replayed == 0 {
		t.Fatalf("resume replayed no cells: %+v", m.Checkpoint)
	}
	if mv := m.Metrics["exp.checkpoint.replayed"]; mv.Count != m.Checkpoint.Replayed {
		t.Fatalf("replay counter (%d) disagrees with journal stats (%d)", mv.Count, m.Checkpoint.Replayed)
	}

	// The event stream of a fully-replayed campaign names every cell as
	// a replay, never a fresh completion.
	data, err := os.ReadFile(filepath.Join(dir, "ev.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"ev":"cell_replay"`)) {
		t.Fatal("no cell_replay events in resumed run")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if code, _, _ := runFigures(t, "-resume"); code != 2 {
		t.Fatalf("-resume without -checkpoint exited %d, want 2", code)
	}
	if code, _, _ := runFigures(t, "-fig", "nope"); code != 1 {
		t.Fatalf("unknown figure exited %d, want 1", code)
	}
	if code, _, _ := runFigures(t); code != 2 {
		t.Fatalf("no figure selection exited %d, want 2", code)
	}
	code, stdout, _ := runFigures(t, "-list")
	if code != 0 || !strings.Contains(stdout, "10") {
		t.Fatalf("-list failed: %d %q", code, stdout)
	}
}

func TestProgressLineRendersToStderr(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runFigures(t, "-fig", "t1", "-scale", "12", "-progress",
		"-o", filepath.Join(dir, "t1.txt"), "-manifest", "none")
	if code != 0 {
		t.Fatalf("run exited %d\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "cells") {
		t.Fatalf("no progress line on stderr: %q", stderr)
	}
	if strings.Contains(stdout, "cells/s") || strings.Contains(stdout, "\r") {
		t.Fatal("progress leaked into stdout")
	}
}
