// Command figures regenerates the paper's tables and figures on the
// simulated machine (and, for Figure 15, on the host).
//
// Usage:
//
//	figures -all              # everything at the default scale
//	figures -fig 10           # one figure
//	figures -fig 13a -quick   # fast smoke run
//	figures -fig 10 -parallel 1   # force serial cell execution
//	figures -list
//
// Simulation cells within a figure are independent and run on a
// bounded worker pool; -parallel N bounds it (0 = one worker per CPU,
// 1 = serial). Output is byte-identical at any parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cobra/internal/exp"
)

type figureFn func(exp.Opts) (*exp.Table, error)

var figures = map[string]figureFn{
	"2":   exp.Fig2,
	"4":   exp.Fig4,
	"5":   exp.Fig5,
	"t1":  exp.Table1,
	"10":  exp.Fig10,
	"11":  exp.Fig11,
	"12":  exp.Fig12,
	"13a": exp.Fig13a,
	"13b": exp.Fig13b,
	"13c": exp.Fig13c,
	"14":  exp.Fig14,
	"15":  exp.Fig15,
	"a1":  exp.AblationPrefetcher,
	"a2":  exp.AblationLLCPolicy,
	"a3":  exp.AblationPINV,
	"a4":  exp.AblationMLP,
	"a5":  exp.AblationNoPartition,
	"a6":  exp.AblationNUCA,
}

// order fixes the presentation sequence for -all.
var order = []string{"2", "4", "5", "t1", "10", "11", "12", "13a", "13b", "13c", "14", "15", "a1", "a2", "a3", "a4", "a5", "a6"}

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate (2,4,5,t1,10,11,12,13a,13b,13c,14,15) or ablation (a1..a4)")
		all      = flag.Bool("all", false, "regenerate every figure")
		quick    = flag.Bool("quick", false, "small-scale smoke run")
		scale    = flag.Int("scale", 0, "override input scale (keys ~ 2^scale)")
		seed     = flag.Uint64("seed", 42, "generator seed")
		list     = flag.Bool("list", false, "list figures, then exit")
		parallel = flag.Int("parallel", 0, "worker pool size for simulation cells (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	if *list {
		keys := make([]string, 0, len(figures))
		for k := range figures {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("figures:", keys)
		return
	}

	opts := exp.DefaultOpts()
	if *quick {
		opts = exp.QuickOpts()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	opts.Seed = *seed
	opts.Parallel = *parallel

	run := func(name string) {
		fn, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", name)
			os.Exit(1)
		}
		start := time.Now()
		t, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("regenerated in %v at scale %d", time.Since(start).Round(time.Millisecond), opts.Scale))
		t.Fprint(os.Stdout)
	}

	switch {
	case *all:
		for _, name := range order {
			run(name)
		}
	case *fig != "":
		run(*fig)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
