// Command figures regenerates the paper's tables and figures on the
// simulated machine (and, for Figure 15, on the host).
//
// Usage:
//
//	figures -all              # everything at the default scale
//	figures -fig 10           # one figure
//	figures -fig 13a -quick   # fast smoke run
//	figures -fig 10 -parallel 1   # force serial cell execution
//	figures -all -checkpoint run.ckpt      # journal completed cells
//	figures -all -checkpoint run.ckpt -resume  # pick up where a run died
//	figures -fig 10 -o fig10.txt  # crash-safe artifact (temp+rename)
//	figures -fig 10 -o fig10.txt -progress -events ev.jsonl  # observability
//	figures -fig 10 -cpuprofile cpu.pprof   # pprof the campaign
//	figures -all -fleet host1:8080,host2:8080  # scatter cells across cobrad workers
//	figures -list
//
// Simulation cells within a figure are independent and run on a
// bounded worker pool; -parallel N bounds it (0 = one worker per CPU,
// 1 = serial). Output is byte-identical at any parallelism — and, with
// -checkpoint/-resume, byte-identical across an interrupted+resumed
// campaign, because replayed cells reproduce their recorded metrics
// exactly.
//
// Observability (all off by default; none of it can change table
// bytes — progress renders to stderr, events and manifests go to
// their own files, and the simulation itself is never touched):
//
//   - -progress: a live stderr line with completed/total cells,
//     journal replays, cells/sec, and an ETA.
//   - -events FILE: a structured JSONL event stream (campaign_start,
//     figure_start/figure_done, cell_done/cell_replay/cell_error with
//     identity and latency).
//   - A run manifest is written next to the -o artifact
//     (<artifact>.manifest.json; override with -manifest PATH, disable
//     with -manifest none): arch fingerprint, Go toolchain,
//     GOMAXPROCS, per-figure durations, and the full metric snapshot —
//     everything needed to diff two runs.
//   - -cpuprofile/-memprofile/-trace: standard pprof/trace hooks.
//
// Distributed campaigns: -fleet host1,host2,... scatters simulation
// cells across cobrad workers (least-loaded dispatch, bounded
// in-flight per node, steal-on-failure, local fallback when no worker
// can take a cell) and gathers results back into the same merge path,
// so the artifact is byte-identical to a local run. See internal/dist.
//
// Fault tolerance:
//
//   - First SIGINT/SIGTERM: stop dispatching new cells, drain the ones
//     in flight, flush the checkpoint journal, and exit 130. A second
//     signal aborts immediately.
//   - A panicking cell becomes a deterministic error naming the cell;
//     the process survives and every other cell still runs.
//   - -o writes the artifact via temp-file + rename: an interrupted or
//     failed campaign never publishes a partial table file.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"syscall"
	"time"

	"cobra/internal/client"
	"cobra/internal/dist"
	"cobra/internal/exp"
	"cobra/internal/fault"
	"cobra/internal/fsx"
	"cobra/internal/obsv"
)

type figureFn func(exp.Opts) (*exp.Table, error)

var figures = map[string]figureFn{
	"2":       exp.Fig2,
	"4":       exp.Fig4,
	"5":       exp.Fig5,
	"t1":      exp.Table1,
	"10":      exp.Fig10,
	"11":      exp.Fig11,
	"12":      exp.Fig12,
	"13a":     exp.Fig13a,
	"13b":     exp.Fig13b,
	"13c":     exp.Fig13c,
	"14":      exp.Fig14,
	"15":      exp.Fig15,
	"scaling": exp.FigScaling,
	"stream":  exp.FigStream,
	"a1":      exp.AblationPrefetcher,
	"a2":      exp.AblationLLCPolicy,
	"a3":      exp.AblationPINV,
	"a4":      exp.AblationMLP,
	"a5":      exp.AblationNoPartition,
	"a6":      exp.AblationNUCA,
}

// order fixes the presentation sequence for -all.
var order = []string{"2", "4", "5", "t1", "10", "11", "12", "13a", "13b", "13c", "14", "15", "scaling", "stream", "a1", "a2", "a3", "a4", "a5", "a6"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: flags in, exit code
// out, all writes through the given streams or files named by flags.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig         = fs.String("fig", "", "figure to regenerate (2,4,5,t1,10,11,12,13a,13b,13c,14,15,scaling,stream) or ablation (a1..a6)")
		all         = fs.Bool("all", false, "regenerate every figure")
		quick       = fs.Bool("quick", false, "small-scale smoke run")
		scale       = fs.Int("scale", 0, "override input scale (keys ~ 2^scale)")
		seed        = fs.Uint64("seed", 42, "generator seed")
		list        = fs.Bool("list", false, "list figures, then exit")
		parallel    = fs.Int("parallel", 0, "worker pool size for simulation cells (0 = one per CPU, 1 = serial)")
		checkpoint  = fs.String("checkpoint", "", "journal completed cells to this file (JSONL, fsync'd per cell)")
		resume      = fs.Bool("resume", false, "replay already-completed cells from the -checkpoint journal")
		outPath     = fs.String("o", "", "write tables to this file atomically (temp-file + rename) instead of stdout")
		cellTimeout = fs.Duration("cell-timeout", 0, "optional per-cell context deadline (0 = none)")
		progress    = fs.Bool("progress", false, "render a live progress line (cells done, replays, cells/sec, ETA) to stderr")
		eventsPath  = fs.String("events", "", "append a structured JSONL event stream to this file")
		manifest    = fs.String("manifest", "auto", `run-manifest path ("auto" = next to -o artifact, "none" = disabled)`)
		cpuProfile  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
		tracePath   = fs.String("trace", "", "write a runtime execution trace to this file")
		cores       = fs.Int("cores", 1, "simulated core count for every run (1 = legacy single-core model; the scaling figure sweeps its own core axis)")
		windows     = fs.Int("windows", 0, "stream window count for the stream figure (0 = default)")
		winUpd      = fs.Int("window-updates", 0, "updates per stream window for the stream figure (0 = default)")
		scalarRefs  = fs.Bool("scalarrefs", false, "drive simulations through the scalar per-reference oracle instead of the batched pipeline (byte-identical output, slower; for differential testing)")
		compactCkpt = fs.Bool("compact-checkpoint", false, "compact the -checkpoint journal (drop superseded duplicates and torn tails), then exit")
		fleet       = fs.String("fleet", "", "comma-separated cobrad worker URLs: scatter servable cells across the fleet (others still run locally)")
		fleetMax    = fs.Int("fleet-inflight", 4, "max in-flight cells per fleet worker")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	// Fault injection (COBRA_FAULTS / COBRA_FAULT_SEED) activates before
	// any I/O so the chaos harness can schedule crashes from the very
	// first journal append.
	if _, err := fault.ActivateFromEnv(); err != nil {
		fmt.Fprintln(stderr, "figures:", err)
		return 2
	}

	if *list {
		keys := make([]string, 0, len(figures))
		for k := range figures {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(stdout, "figures:", keys)
		return 0
	}

	if *resume && *checkpoint == "" {
		fmt.Fprintln(stderr, "figures: -resume requires -checkpoint")
		return 2
	}

	// -compact-checkpoint is a standalone maintenance action: rewrite
	// the journal down to one line per cell and exit.
	if *compactCkpt {
		if *checkpoint == "" {
			fmt.Fprintln(stderr, "figures: -compact-checkpoint requires -checkpoint")
			return 2
		}
		kept, dropped, err := exp.CompactJournal(*checkpoint)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			if errors.Is(err, fsx.ErrDiskFull) {
				return 3
			}
			return 1
		}
		fmt.Fprintf(stderr, "figures: compacted %s: %d cells kept, %d stale lines dropped\n", *checkpoint, kept, dropped)
		return 0
	}

	opts := exp.DefaultOpts()
	if *quick {
		opts = exp.QuickOpts()
	}
	// The numeric knobs validate through the shared RunSpec path (the
	// same bounds cobrad and cobrasim enforce), not a CLI-local copy.
	knobs := exp.RunSpec{Scale: *scale, Cores: *cores, Windows: *windows, WindowUpdates: *winUpd}
	if err := knobs.NormalizeKnobs(exp.Limits{DefaultScale: opts.Scale}); err != nil {
		fmt.Fprintln(stderr, "figures:", err)
		return 2
	}
	opts.Scale = knobs.Scale
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.CellTimeout = *cellTimeout
	opts.StreamWindows = knobs.Windows
	opts.StreamWindowUpdates = knobs.WindowUpdates
	if knobs.Cores > 1 {
		opts.Arch = opts.Arch.WithCores(knobs.Cores)
	}
	if *scalarRefs {
		opts.Arch = opts.Arch.WithScalarRefs()
	}

	// Resolve the manifest destination: explicit path, auto (next to
	// the -o artifact), or disabled.
	manifestPath := ""
	switch *manifest {
	case "none", "":
		// disabled
	case "auto":
		if *outPath != "" {
			manifestPath = *outPath + ".manifest.json"
		}
	default:
		manifestPath = *manifest
	}

	// Observability is enabled iff some sink wants it; the registry is
	// process-global (sim and exp instrument through it) and reset on
	// return so embedding callers (tests) stay isolated.
	var reg *obsv.Registry
	if *progress || *eventsPath != "" || manifestPath != "" {
		reg = obsv.New()
		obsv.SetDefault(reg)
		defer obsv.SetDefault(nil)
	}

	// Profiling hooks (standard pprof/trace plumbing).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "figures: starting CPU profile:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(stderr, "figures: starting trace:", err)
			f.Close()
			return 1
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "figures:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "figures: writing heap profile:", err)
			}
		}()
	}

	// Two-stage signal handling: the first SIGINT/SIGTERM cancels the
	// campaign context — workers stop claiming new cells, in-flight
	// cells drain, and every drained cell still lands in the checkpoint
	// journal. A second signal aborts the process immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	sigdone := make(chan struct{})
	defer close(sigdone)
	go func() {
		select {
		case <-sigc:
		case <-sigdone:
			return
		}
		fmt.Fprintln(stderr, "figures: interrupt — draining in-flight cells and flushing the checkpoint (signal again to abort)")
		cancel()
		select {
		case <-sigc:
		case <-sigdone:
			return
		}
		fmt.Fprintln(stderr, "figures: aborted")
		os.Exit(130)
	}()
	opts.Ctx = ctx

	var journal *exp.Journal
	if *checkpoint != "" {
		var err error
		journal, err = exp.OpenJournal(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
		if *resume && journal.Len() > 0 {
			fmt.Fprintf(stderr, "figures: resuming — %d completed cells in %s\n", journal.Len(), *checkpoint)
		}
		opts.Journal = journal
	}

	var events *obsv.EventLog
	if *eventsPath != "" {
		var err error
		events, err = obsv.CreateEventLog(*eventsPath)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
		opts.Events = events
	}

	var prog *obsv.Progress
	if *progress {
		prog = obsv.StartProgress(stderr, 0)
		opts.Progress = prog
	}

	// Fleet mode: scatter servable cells across cobrad workers. The
	// coordinator plugs in as opts.Remote, downstream of the checkpoint
	// journal (replays never touch the network) and upstream of the
	// local simulator (declined cells fall back transparently).
	var coord *dist.Coordinator
	if *fleet != "" {
		var err error
		coord, err = dist.New(dist.Config{
			Addrs:       strings.Split(*fleet, ","),
			MaxInflight: *fleetMax,
			Client: client.Options{
				MaxRetries:       3,
				BaseBackoff:      50 * time.Millisecond,
				MaxBackoff:       time.Second,
				BreakerThreshold: 4,
				BreakerCooldown:  2 * time.Second,
				PollFloor:        5 * time.Millisecond,
				PollInterval:     200 * time.Millisecond,
				Resubmits:        1,
			},
			Reg:    reg,
			Events: events,
		})
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 2
		}
		defer coord.Close()
		probeCtx, probeCancel := context.WithTimeout(ctx, 5*time.Second)
		healthy := coord.Probe(probeCtx)
		probeCancel()
		fmt.Fprintf(stderr, "figures: fleet: %d/%d workers healthy\n", healthy, len(coord.Nodes()))
		if healthy == 0 {
			fmt.Fprintln(stderr, "figures: fleet: no worker reachable — cells will run locally until one recovers")
		}
		opts.Remote = coord
	}

	man := obsv.NewManifest("figures")
	man.Scale, man.Seed, man.Parallel = opts.Scale, opts.Seed, exp.Workers(opts.Parallel)
	man.ArchFingerprint = exp.ArchFingerprint(opts.Arch)

	events.Emit("campaign_start", map[string]any{
		"scale": opts.Scale, "seed": opts.Seed, "parallel": exp.Workers(opts.Parallel),
		"arch": man.ArchFingerprint, "checkpoint": *checkpoint, "resume": *resume,
	})

	// Tables accumulate in memory when -o is set, so a failed or
	// interrupted campaign never publishes a partial artifact.
	var out io.Writer = stdout
	var artifact bytes.Buffer
	if *outPath != "" {
		out = &artifact
	}

	campaignStart := time.Now()
	runOne := func(name string) error {
		fn, ok := figures[name]
		if !ok {
			return fmt.Errorf("unknown figure %q", name)
		}
		prog.SetLabel("fig " + name)
		events.Emit("figure_start", map[string]any{"figure": name})
		start := time.Now()
		t, err := fn(opts)
		elapsed := time.Since(start)
		if err != nil {
			events.Emit("figure_error", map[string]any{"figure": name, "error": err.Error()})
			return fmt.Errorf("%s: %w", name, err)
		}
		man.AddFigure(name, elapsed)
		events.Emit("figure_done", map[string]any{"figure": name, "ms": float64(elapsed.Microseconds()) / 1000})
		// Timing goes to stderr: table bytes stay a deterministic
		// function of (scale, seed, arch), which is what makes resumed
		// output byte-identical to an uninterrupted run.
		fmt.Fprintf(stderr, "figures: %s regenerated in %v at scale %d\n",
			name, elapsed.Round(time.Millisecond), opts.Scale)
		t.Fprint(out)
		return nil
	}

	var runErr error
	switch {
	case *all:
		for _, name := range order {
			if runErr = runOne(name); runErr != nil {
				break
			}
		}
	case *fig != "":
		runErr = runOne(*fig)
	default:
		fs.Usage()
		return 2
	}

	prog.Finish()

	if journal != nil {
		replayed, recorded := journal.Stats()
		fmt.Fprintf(stderr, "figures: checkpoint %s: %d cells replayed, %d newly recorded\n",
			*checkpoint, replayed, recorded)
		man.Checkpoint = &obsv.CheckpointInfo{Path: *checkpoint, Replayed: replayed, Recorded: recorded}
		if err := journal.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("closing checkpoint: %w", err)
		}
	}

	if coord != nil {
		fi := coord.Snapshot()
		man.Fleet = fi
		fmt.Fprintf(stderr, "figures: fleet: %d cells dispatched, %d completed, %d stolen, %d failed\n",
			fi.Dispatched, fi.Completed, fi.Stolen, fi.Failed)
	}

	// Campaign-level derived rates land in the registry before the
	// manifest snapshots it.
	if reg != nil {
		if wall := time.Since(campaignStart).Seconds(); wall > 0 {
			done := reg.Counter("exp.cells.completed").Value()
			reg.Gauge("exp.cells_per_sec").Set(float64(done) / wall)
		}
	}

	status := "ok"
	switch {
	case runErr == nil:
	case errors.Is(runErr, exp.ErrInterrupted):
		status = "interrupted"
	default:
		status = "error"
	}
	events.Emit("campaign_done", map[string]any{
		"status": status, "wall_s": time.Since(campaignStart).Seconds(),
	})
	if err := events.Close(); err != nil && runErr == nil {
		runErr = err
	}

	// The manifest is written even for failed or interrupted campaigns
	// — that is exactly when you want the provenance record — but only
	// the success path publishes the artifact.
	if manifestPath != "" {
		man.Finish(reg)
		if err := man.Write(manifestPath); err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			if runErr == nil {
				runErr = err
			}
		} else {
			fmt.Fprintf(stderr, "figures: wrote manifest %s\n", manifestPath)
		}
	}

	switch {
	case runErr == nil:
		if *outPath != "" {
			if err := fsx.WriteFileAtomicBytes(*outPath, artifact.Bytes()); err != nil {
				fmt.Fprintln(stderr, "figures:", err)
				return 1
			}
			fmt.Fprintf(stderr, "figures: wrote %s (%d bytes)\n", *outPath, artifact.Len())
		}
		return 0
	case errors.Is(runErr, exp.ErrInterrupted):
		msg := "figures: interrupted"
		if *checkpoint != "" {
			msg += fmt.Sprintf("; completed cells saved — re-run with -checkpoint %s -resume to continue", *checkpoint)
		}
		fmt.Fprintln(stderr, msg)
		return 130
	case errors.Is(runErr, fsx.ErrDiskFull):
		// Distinct exit code: operators (and the campaign runner) can
		// tell "free disk space and resume" from a genuine failure.
		fmt.Fprintf(stderr, "figures: disk full: %v\n", runErr)
		return 3
	default:
		fmt.Fprintf(stderr, "figures: %v\n", runErr)
		return 1
	}
}
