// Command figures regenerates the paper's tables and figures on the
// simulated machine (and, for Figure 15, on the host).
//
// Usage:
//
//	figures -all              # everything at the default scale
//	figures -fig 10           # one figure
//	figures -fig 13a -quick   # fast smoke run
//	figures -fig 10 -parallel 1   # force serial cell execution
//	figures -all -checkpoint run.ckpt      # journal completed cells
//	figures -all -checkpoint run.ckpt -resume  # pick up where a run died
//	figures -fig 10 -o fig10.txt  # crash-safe artifact (temp+rename)
//	figures -list
//
// Simulation cells within a figure are independent and run on a
// bounded worker pool; -parallel N bounds it (0 = one worker per CPU,
// 1 = serial). Output is byte-identical at any parallelism — and, with
// -checkpoint/-resume, byte-identical across an interrupted+resumed
// campaign, because replayed cells reproduce their recorded metrics
// exactly.
//
// Fault tolerance:
//
//   - First SIGINT/SIGTERM: stop dispatching new cells, drain the ones
//     in flight, flush the checkpoint journal, and exit 130. A second
//     signal aborts immediately.
//   - A panicking cell becomes a deterministic error naming the cell;
//     the process survives and every other cell still runs.
//   - -o writes the artifact via temp-file + rename: an interrupted or
//     failed campaign never publishes a partial table file.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"cobra/internal/exp"
	"cobra/internal/fsx"
)

type figureFn func(exp.Opts) (*exp.Table, error)

var figures = map[string]figureFn{
	"2":   exp.Fig2,
	"4":   exp.Fig4,
	"5":   exp.Fig5,
	"t1":  exp.Table1,
	"10":  exp.Fig10,
	"11":  exp.Fig11,
	"12":  exp.Fig12,
	"13a": exp.Fig13a,
	"13b": exp.Fig13b,
	"13c": exp.Fig13c,
	"14":  exp.Fig14,
	"15":  exp.Fig15,
	"a1":  exp.AblationPrefetcher,
	"a2":  exp.AblationLLCPolicy,
	"a3":  exp.AblationPINV,
	"a4":  exp.AblationMLP,
	"a5":  exp.AblationNoPartition,
	"a6":  exp.AblationNUCA,
}

// order fixes the presentation sequence for -all.
var order = []string{"2", "4", "5", "t1", "10", "11", "12", "13a", "13b", "13c", "14", "15", "a1", "a2", "a3", "a4", "a5", "a6"}

func main() {
	var (
		fig         = flag.String("fig", "", "figure to regenerate (2,4,5,t1,10,11,12,13a,13b,13c,14,15) or ablation (a1..a6)")
		all         = flag.Bool("all", false, "regenerate every figure")
		quick       = flag.Bool("quick", false, "small-scale smoke run")
		scale       = flag.Int("scale", 0, "override input scale (keys ~ 2^scale)")
		seed        = flag.Uint64("seed", 42, "generator seed")
		list        = flag.Bool("list", false, "list figures, then exit")
		parallel    = flag.Int("parallel", 0, "worker pool size for simulation cells (0 = one per CPU, 1 = serial)")
		checkpoint  = flag.String("checkpoint", "", "journal completed cells to this file (JSONL, fsync'd per cell)")
		resume      = flag.Bool("resume", false, "replay already-completed cells from the -checkpoint journal")
		outPath     = flag.String("o", "", "write tables to this file atomically (temp-file + rename) instead of stdout")
		cellTimeout = flag.Duration("cell-timeout", 0, "optional per-cell context deadline (0 = none)")
	)
	flag.Parse()

	if *list {
		keys := make([]string, 0, len(figures))
		for k := range figures {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("figures:", keys)
		return
	}

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "figures: -resume requires -checkpoint")
		os.Exit(2)
	}

	opts := exp.DefaultOpts()
	if *quick {
		opts = exp.QuickOpts()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.CellTimeout = *cellTimeout

	// Two-stage signal handling: the first SIGINT/SIGTERM cancels the
	// campaign context — workers stop claiming new cells, in-flight
	// cells drain, and every drained cell still lands in the checkpoint
	// journal. A second signal aborts the process immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "figures: interrupt — draining in-flight cells and flushing the checkpoint (signal again to abort)")
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "figures: aborted")
		os.Exit(130)
	}()
	opts.Ctx = ctx

	var journal *exp.Journal
	if *checkpoint != "" {
		var err error
		journal, err = exp.OpenJournal(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if *resume && journal.Len() > 0 {
			fmt.Fprintf(os.Stderr, "figures: resuming — %d completed cells in %s\n", journal.Len(), *checkpoint)
		}
		opts.Journal = journal
	}

	// Tables accumulate in memory when -o is set, so a failed or
	// interrupted campaign never publishes a partial artifact.
	var out io.Writer = os.Stdout
	var artifact bytes.Buffer
	if *outPath != "" {
		out = &artifact
	}

	run := func(name string) error {
		fn, ok := figures[name]
		if !ok {
			return fmt.Errorf("unknown figure %q", name)
		}
		start := time.Now()
		t, err := fn(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		// Timing goes to stderr: table bytes stay a deterministic
		// function of (scale, seed, arch), which is what makes resumed
		// output byte-identical to an uninterrupted run.
		fmt.Fprintf(os.Stderr, "figures: %s regenerated in %v at scale %d\n",
			name, time.Since(start).Round(time.Millisecond), opts.Scale)
		t.Fprint(out)
		return nil
	}

	var runErr error
	switch {
	case *all:
		for _, name := range order {
			if runErr = run(name); runErr != nil {
				break
			}
		}
	case *fig != "":
		runErr = run(*fig)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if journal != nil {
		replayed, recorded := journal.Stats()
		fmt.Fprintf(os.Stderr, "figures: checkpoint %s: %d cells replayed, %d newly recorded\n",
			*checkpoint, replayed, recorded)
		if err := journal.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("closing checkpoint: %w", err)
		}
	}

	switch {
	case runErr == nil:
		if *outPath != "" {
			if err := fsx.WriteFileAtomicBytes(*outPath, artifact.Bytes()); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "figures: wrote %s (%d bytes)\n", *outPath, artifact.Len())
		}
	case errors.Is(runErr, exp.ErrInterrupted):
		msg := "figures: interrupted"
		if *checkpoint != "" {
			msg += fmt.Sprintf("; completed cells saved — re-run with -checkpoint %s -resume to continue", *checkpoint)
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(130)
	default:
		fmt.Fprintf(os.Stderr, "figures: %v\n", runErr)
		os.Exit(1)
	}
}
