// Analytics: connected components and single-source shortest paths —
// two label-propagation kernels whose min-reduction updates are
// irregular, commutative, and unordered-parallel, run through the same
// PB machinery as everything else.
//
// Run: go run ./examples/analytics [-scale 18]
package main

import (
	"flag"
	"fmt"
	"time"

	"cobra/internal/graph"
	"cobra/internal/pb"
)

func main() {
	scale := flag.Int("scale", 18, "graph scale (vertices = 2^scale)")
	flag.Parse()

	// A uniform graph plus an intentionally disconnected tail of
	// isolated vertices, so components are interesting.
	n := 1 << *scale
	el := graph.Uniform(n*9/10, 8*n, 11)
	el.N = n // vertices [9n/10, n) have no edges
	g := graph.BuildCSR(el, true, pb.Options{})
	fmt.Printf("graph: %d vertices, %d edges (vertices %d.. are isolated)\n",
		g.N, g.M(), n*9/10)

	// Connected components, baseline vs PB.
	start := time.Now()
	comp := graph.ConnectedComponents(g)
	ccTime := time.Since(start)
	start = time.Now()
	compPB := graph.ConnectedComponentsPB(g, pb.Options{})
	ccPBTime := time.Since(start)
	for i := range comp {
		if comp[i] != compPB[i] {
			panic("PB components differ from baseline")
		}
	}
	sizes := map[uint32]int{}
	for _, c := range comp {
		sizes[c]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("components: %d total, largest %d vertices\n", len(sizes), largest)
	fmt.Printf("  baseline %v, PB %v\n", ccTime.Round(time.Millisecond), ccPBTime.Round(time.Millisecond))

	// SSSP from vertex 0, baseline vs PB.
	start = time.Now()
	dist := graph.SSSP(g, 0)
	spTime := time.Since(start)
	start = time.Now()
	distPB := graph.SSSPPB(g, 0, pb.Options{})
	spPBTime := time.Since(start)
	reached, maxDist := 0, int64(0)
	for i := range dist {
		if dist[i] != distPB[i] {
			panic("PB distances differ from baseline")
		}
		if dist[i] != graph.InfDist {
			reached++
			if dist[i] > maxDist {
				maxDist = dist[i]
			}
		}
	}
	fmt.Printf("sssp from 0: reached %d vertices, max distance %d\n", reached, maxDist)
	fmt.Printf("  baseline %v, PB %v\n", spTime.Round(time.Millisecond), spPBTime.Round(time.Millisecond))
	fmt.Println("all PB results identical to baselines ✓")
}
