// Spsort: two more NON-commutative irregular-update kernels through the
// same PB API — counting sort (NAS IS class) and sparse transpose
// (SuiteSparse cs_transpose) — demonstrating §III-B's claim that PB
// needs only unordered parallelism, not commutativity.
//
// Run: go run ./examples/spsort [-n 33554432] [-maxkey 16777216]
package main

import (
	"flag"
	"fmt"
	"time"

	"cobra/internal/isort"
	"cobra/internal/pb"
	"cobra/internal/sparse"
	"cobra/internal/stats"
)

func main() {
	n := flag.Int("n", 32<<20, "keys to sort")
	maxKey := flag.Int("maxkey", 16<<20, "maximum key value")
	flag.Parse()

	// --- Integer sort ---
	fmt.Printf("integer sort: %d keys in [0, %d)\n", *n, *maxKey)
	r := stats.NewRand(3)
	keys := make([]uint32, *n)
	for i := range keys {
		keys[i] = uint32(r.Intn(*maxKey))
	}

	ref := append([]uint32(nil), keys...)
	start := time.Now()
	isort.SortComparisonParallel(ref)
	cmpTime := time.Since(start)

	start = time.Now()
	counting := isort.CountingSort(keys, *maxKey)
	countTime := time.Since(start)

	start = time.Now()
	blocked := isort.CountingSortPB(keys, *maxKey, pb.Options{})
	pbTime := time.Since(start)

	for i := range ref {
		if counting[i] != ref[i] || blocked[i] != ref[i] {
			panic("sort outputs differ")
		}
	}
	fmt.Printf("  comparison sort:  %v\n", cmpTime.Round(time.Millisecond))
	fmt.Printf("  counting sort:    %v\n", countTime.Round(time.Millisecond))
	fmt.Printf("  PB counting sort: %v (%.2fx vs counting)\n",
		pbTime.Round(time.Millisecond), float64(countTime)/float64(pbTime))

	// --- Sparse transpose ---
	rows := 1 << 20
	fmt.Printf("sparse transpose: %d x %d, power-law columns\n", rows, rows)
	m := sparse.SkewedSparse(rows, rows, 8, 5)

	start = time.Now()
	t1 := sparse.Transpose(m)
	baseTime := time.Since(start)

	start = time.Now()
	t2 := sparse.TransposePB(m, pb.Options{})
	pbTTime := time.Since(start)

	if err := t2.Validate(); err != nil {
		panic(err)
	}
	if t1.NNZ() != t2.NNZ() {
		panic("transpose NNZ mismatch")
	}
	// Row pointers must agree exactly; within-row order may differ.
	for i := 0; i <= t1.Rows; i++ {
		if t1.RowPtr[i] != t2.RowPtr[i] {
			panic("transpose row structure mismatch")
		}
	}
	fmt.Printf("  baseline:  %v\n", baseTime.Round(time.Millisecond))
	fmt.Printf("  PB:        %v (%.2fx)\n", pbTTime.Round(time.Millisecond),
		float64(baseTime)/float64(pbTTime))
	fmt.Println("all outputs validated ✓")
}
