// Pagerank: the workload Propagation Blocking was invented for [13].
// Compares pull (gather) PageRank, push (scatter) PageRank — whose
// irregular commutative updates are Figure 3's motivating pattern — and
// the propagation-blocked push variant, all run to convergence.
//
// Run: go run ./examples/pagerank [-scale 20] [-input KRON|URND]
package main

import (
	"flag"
	"fmt"
	"math"
	"sort"
	"time"

	"cobra/internal/graph"
	"cobra/internal/pb"
)

func main() {
	scale := flag.Int("scale", 20, "graph scale (vertices = 2^scale)")
	input := flag.String("input", "KRON", "KRON or URND")
	flag.Parse()

	var el *graph.EdgeList
	switch *input {
	case "KRON":
		el = graph.RMAT(*scale, 16, 7)
	case "URND":
		el = graph.Uniform(1<<*scale, 16<<*scale, 7)
	default:
		panic("input must be KRON or URND")
	}
	fmt.Printf("%s: %d vertices, %d edges\n", *input, el.N, el.M())

	g := graph.BuildCSR(el, true, pb.Options{})
	gt := g.Transpose()
	deg := graph.DegreeCount(el)
	const maxIters = 100

	start := time.Now()
	pull, pullIters := graph.PageRankPull(gt, deg, maxIters, graph.PREps)
	pullTime := time.Since(start)

	start = time.Now()
	push, pushIters := graph.PageRankPush(g, maxIters, graph.PREps)
	pushTime := time.Since(start)

	start = time.Now()
	blocked, pbIters := graph.PageRankPB(g, maxIters, graph.PREps, pb.Options{})
	pbTime := time.Since(start)

	maxDiff := 0.0
	for i := range pull {
		if d := math.Abs(pull[i] - blocked[i]); d > maxDiff {
			maxDiff = d
		}
		if d := math.Abs(pull[i] - push[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("pull: %v (%d iters)\n", pullTime.Round(time.Millisecond), pullIters)
	fmt.Printf("push: %v (%d iters)\n", pushTime.Round(time.Millisecond), pushIters)
	fmt.Printf("PB:   %v (%d iters, %.2fx vs push)\n", pbTime.Round(time.Millisecond),
		pbIters, float64(pushTime)/float64(pbTime))
	fmt.Printf("max score difference across variants: %.2e ✓\n", maxDiff)

	// Top-5 ranked vertices.
	type vs struct {
		v uint32
		s float64
	}
	top := make([]vs, len(blocked))
	for i, s := range blocked {
		top[i] = vs{uint32(i), s}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].s > top[j].s })
	fmt.Println("top-5 vertices:")
	for _, t := range top[:5] {
		fmt.Printf("  v%-8d score %.6f  out-degree %d\n", t.v, t.s, g.Degree(t.v))
	}
}
