// Quickstart: build a histogram over a large key range with Propagation
// Blocking — the smallest possible use of the pb package.
//
// The naive loop `counts[k]++` scatters writes over the whole counter
// array; pb.Histogram bins the keys first so each bin's counter range
// stays cache-resident during the accumulate phase.
//
// Whether PB beats the naive loop on YOUR machine depends on the ratio
// of the counter array to your last-level cache: PB pays two extra
// streaming passes to convert random DRAM traffic into sequential
// traffic, which wins exactly when the random traffic was the
// bottleneck. (On hosts whose LLC swallows the counter array — some
// cloud VMs advertise >256 MB of L3 — the naive loop is already
// cache-resident and PB's streaming tax shows.) The controlled
// demonstration of the paper's claims runs on the simulated Table II
// machine: `go run ./cmd/figures -fig 10`.
//
// Run: go run ./examples/quickstart [-mb 128]
package main

import (
	"flag"
	"fmt"
	"time"

	"cobra/internal/pb"
	"cobra/internal/stats"
)

func main() {
	mb := flag.Int("mb", 128, "size of the counter array in MB")
	flag.Parse()
	numKeys := *mb << 20 / 4
	n := 4 * numKeys // 4 updates per counter

	fmt.Printf("histogram: %d random updates over %d keys (%d MB of counters)\n",
		n, numKeys, *mb)

	r := stats.NewRand(1)
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(r.Uint64n(uint64(numKeys)))
	}

	// Naive irregular updates.
	start := time.Now()
	naive := make([]uint32, numKeys)
	for _, k := range keys {
		naive[k]++
	}
	naiveTime := time.Since(start)

	// Propagation-blocked: bin, then accumulate bin-by-bin. SkipCount
	// trades exact bin sizing for one fewer pass over the input.
	start = time.Now()
	blocked := pb.Histogram(keys, numKeys, pb.Options{SkipCount: true})
	pbTime := time.Since(start)

	for i := range naive {
		if naive[i] != blocked[i] {
			panic("results differ — propagation blocking must be exact")
		}
	}
	fmt.Printf("naive: %v\n", naiveTime.Round(time.Millisecond))
	fmt.Printf("pb:    %v  (%.2fx)\n", pbTime.Round(time.Millisecond),
		float64(naiveTime)/float64(pbTime))
	fmt.Println("results identical ✓")
	fmt.Println("\n(if pb lost here, your LLC likely holds the whole counter array —")
	fmt.Println(" rerun with a larger -mb, or see `go run ./cmd/figures -fig 10`)")
}
