// Graphbuild: Edgelist-to-CSR conversion — the Graph500 kernel the
// paper uses to show PB works for NON-commutative updates (§III-B).
//
// Degree-Count's increments commute, but Neighbor-Populate's cursor
// updates do not: their order defines the Neighbors Array layout. PB
// still applies because a vertex's neighbors may be listed in any order
// (unordered parallelism).
//
// Run: go run ./examples/graphbuild [-scale 21]
package main

import (
	"flag"
	"fmt"
	"time"

	"cobra/internal/graph"
	"cobra/internal/pb"
)

func main() {
	scale := flag.Int("scale", 21, "graph scale (vertices = 2^scale)")
	flag.Parse()

	fmt.Printf("generating R-MAT graph, scale %d (%d vertices, ~%d edges)...\n",
		*scale, 1<<*scale, 16<<*scale)
	el := graph.RMAT(*scale, 16, 42)

	start := time.Now()
	base := graph.BuildCSR(el, false, pb.Options{})
	baseTime := time.Since(start)

	start = time.Now()
	blocked := graph.BuildCSR(el, true, pb.Options{})
	pbTime := time.Since(start)

	if err := blocked.Validate(); err != nil {
		panic(err)
	}
	// The two CSRs list each vertex's neighbors in possibly different
	// orders; degrees must match exactly.
	for v := 0; v < base.N; v++ {
		if base.Degree(uint32(v)) != blocked.Degree(uint32(v)) {
			panic(fmt.Sprintf("degree mismatch at vertex %d", v))
		}
	}

	fmt.Printf("baseline build: %v\n", baseTime.Round(time.Millisecond))
	fmt.Printf("PB build:       %v  (%.2fx)\n", pbTime.Round(time.Millisecond),
		float64(baseTime)/float64(pbTime))
	fmt.Printf("CSR: %d vertices, %d edges, validated ✓\n", blocked.N, blocked.M())

	// A taste of downstream use: BFS from vertex 0.
	start = time.Now()
	parents := graph.BFS(blocked, 0)
	reached := 0
	for _, p := range parents {
		if p >= 0 {
			reached++
		}
	}
	fmt.Printf("BFS from 0 reached %d vertices in %v\n", reached, time.Since(start).Round(time.Millisecond))
}
