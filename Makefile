# Build/test entry points. `make ci` is the gate PRs must keep green:
# vet + build + race-mode tests on the concurrency-bearing packages
# (exp's worker pool and input memo, obsv's lock-free instruments,
# cache's shared-model users, pb's parallel binning) + the full test
# suite with coverage + a short fuzz pass over the hardened gio readers.

GO ?= go

.PHONY: all build vet test race ci bench bench-compare profile coverage figures-quick fmt-check fuzz-smoke serve-smoke chaos-smoke fleet-smoke stream-smoke

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-mode pass over the packages that actually spawn goroutines or
# share state across them (obsv: lock-free counters/histograms, the
# progress renderer goroutine, and the concurrent event log; srv: the
# worker pool, single-flight result cache, drain-under-load and
# faulted-load tests; fault: the lock-free injection registry under
# concurrent hits; client: retry/breaker state across goroutines;
# dist: the fleet coordinator's dispatch slots, steal path, and prober;
# sim/simtest: the multi-core sharded runners' per-phase goroutine
# gangs and the cross-core conformance oracle).
# (-timeout 30m: exp's race pass alone runs >10m on a 2-core box, past
# go test's default per-binary timeout.)
race:
	$(GO) test -race -timeout 30m ./internal/exp ./internal/obsv ./internal/cache ./internal/pb ./internal/srv ./internal/fault ./internal/client ./internal/dist ./internal/sim ./internal/simtest ./internal/stream

# Short fuzz budget per gio reader target: enough to shake out decoder
# panics and allocation bombs on every CI run without stalling it.
# (Plain `go test` already replays each target's seed corpus.)
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadEdgeList$$' -fuzztime=10s ./internal/gio
	$(GO) test -run='^$$' -fuzz='^FuzzReadCSR$$' -fuzztime=10s ./internal/gio

# Per-package statement coverage with a total summary line. CI runs
# this in place of the bare `test` target so coverage regressions are
# visible in the log; the profile lands in coverage.out for
# `go tool cover -html=coverage.out` drill-down.
coverage:
	$(GO) test -cover -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1

# Process-level service smoke: re-executes the cobrad test binary as a
# real daemon on an ephemeral port, probes /healthz and /readyz, runs a
# sync job over HTTP, diffs the metrics against a direct exp.RunScheme
# call, then SIGTERMs it under load and asserts a clean drain (exit 0).
serve-smoke:
	$(GO) test -run '^TestServeSmoke$$' -v ./cmd/cobrad

# Crash-recovery chaos: re-executes the figures and cobrad test
# binaries as real processes under COBRA_FAULTS schedules that SIGKILL
# them at exact journal appends (optionally after tearing the write),
# then asserts byte-identical resume, a restart-surviving result
# cache, and the slowloris read-header-timeout disconnect.
chaos-smoke:
	$(GO) test -run 'TestChaos|TestSlowloris' -v ./cmd/figures ./cmd/cobrad

# Distributed-campaign smoke: re-executes the figures test binary as
# real cobrad worker processes (one throttled to a single in-flight job
# to provoke 429 redistribution), scatters a campaign across them, and
# diffs the gathered artifact against a serial local run — including
# with a worker SIGKILLed mid-campaign and with the coordinator itself
# killed and resumed from its fleet journal.
fleet-smoke:
	$(GO) test -run 'TestFleet' -v ./cmd/figures

# Streaming-engine smoke: a tiny 3-window streamed run byte-compared
# against the offline oracle (same updates replayed in one batch), both
# in-process (engine conformance, incl. multi-core) and end-to-end over
# HTTP (POST /v1/stream vs a direct engine run, plus mid-stream kill
# and window-granularity resume through the result-cache journal).
stream-smoke:
	$(GO) test -run '^TestStreamOfflineConformance$$' -v ./internal/stream
	$(GO) test -run '^TestStreamJob' -v ./internal/srv

ci: vet build race coverage fuzz-smoke serve-smoke chaos-smoke fleet-smoke stream-smoke bench-compare

# Hot-path microbenchmarks (packed cache metadata; scalar-vs-batched
# hierarchy pipeline; PB binning).
bench:
	$(GO) test -bench=BenchmarkCacheAccessHot -benchmem ./internal/cache
	$(GO) test -run='^$$' -bench=BenchmarkHierarchyAccess -benchmem ./internal/mem
	$(GO) test -bench=. -benchmem ./internal/pb

# Hot-path benchmark comparison against the parent commit: builds
# HEAD~1 in a throwaway worktree, runs the microbenchmarks on both
# trees, and reports via benchstat when installed (raw listings
# otherwise). Informational only — every step tolerates failure — so
# CI surfaces regressions without gating on a noisy box.
BENCH_CMP_ARGS = -run='^$$' -bench='BenchmarkCacheAccessHot|BenchmarkHierarchyAccess' -benchmem -count=3 -benchtime=0.3s
BENCH_CMP_PKGS = ./internal/cache ./internal/mem

bench-compare:
	-@rm -rf .bench-compare; mkdir -p .bench-compare
	-@git worktree add -q --detach .bench-compare/head1 HEAD~1 2>/dev/null && \
	  (cd .bench-compare/head1 && $(GO) test $(BENCH_CMP_ARGS) $(BENCH_CMP_PKGS)) \
	    > .bench-compare/old.txt 2>&1 || true
	-@$(GO) test $(BENCH_CMP_ARGS) $(BENCH_CMP_PKGS) > .bench-compare/new.txt 2>&1 || true
	-@if command -v benchstat >/dev/null 2>&1; then \
	    benchstat .bench-compare/old.txt .bench-compare/new.txt || true; \
	  else \
	    echo "benchstat not installed; raw results:"; \
	    echo "--- HEAD~1"; cat .bench-compare/old.txt 2>/dev/null; \
	    echo "--- working tree"; cat .bench-compare/new.txt 2>/dev/null; \
	  fi
	-@git worktree remove --force .bench-compare/head1 2>/dev/null || true; rm -rf .bench-compare

# CPU-profile the Fig10 campaign (the batched hot path): writes
# cpu.pprof at the repo root and prints the top consumers. Raise
# PROFILE_SCALE for longer, steadier profiles.
PROFILE_SCALE ?= 13
profile:
	$(GO) run ./cmd/figures -fig 10 -scale $(PROFILE_SCALE) -parallel 1 -manifest none \
	  -o /dev/null -cpuprofile cpu.pprof
	$(GO) tool pprof -top -nodecount=15 cpu.pprof

# Smoke-regenerate one figure serially and in parallel (outputs must be
# byte-identical; the exp tests also enforce this).
figures-quick:
	$(GO) run ./cmd/figures -fig 10 -quick -parallel 1
	$(GO) run ./cmd/figures -fig 10 -quick -parallel 0

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
