# Build/test entry points. `make ci` is the gate PRs must keep green:
# vet + build + race-mode tests on the concurrency-bearing packages
# (exp's worker pool and input memo, obsv's lock-free instruments,
# cache's shared-model users, pb's parallel binning) + the full test
# suite with coverage + a short fuzz pass over the hardened gio readers.

GO ?= go

.PHONY: all build vet test race ci bench coverage figures-quick fmt-check fuzz-smoke serve-smoke

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-mode pass over the packages that actually spawn goroutines or
# share state across them (obsv: lock-free counters/histograms, the
# progress renderer goroutine, and the concurrent event log; srv: the
# worker pool, single-flight result cache, and drain-under-load tests).
# (-timeout 30m: exp's race pass alone runs >10m on a 2-core box, past
# go test's default per-binary timeout.)
race:
	$(GO) test -race -timeout 30m ./internal/exp ./internal/obsv ./internal/cache ./internal/pb ./internal/srv

# Short fuzz budget per gio reader target: enough to shake out decoder
# panics and allocation bombs on every CI run without stalling it.
# (Plain `go test` already replays each target's seed corpus.)
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadEdgeList$$' -fuzztime=10s ./internal/gio
	$(GO) test -run='^$$' -fuzz='^FuzzReadCSR$$' -fuzztime=10s ./internal/gio

# Per-package statement coverage with a total summary line. CI runs
# this in place of the bare `test` target so coverage regressions are
# visible in the log; the profile lands in coverage.out for
# `go tool cover -html=coverage.out` drill-down.
coverage:
	$(GO) test -cover -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1

# Process-level service smoke: re-executes the cobrad test binary as a
# real daemon on an ephemeral port, probes /healthz and /readyz, runs a
# sync job over HTTP, diffs the metrics against a direct exp.RunScheme
# call, then SIGTERMs it under load and asserts a clean drain (exit 0).
serve-smoke:
	$(GO) test -run '^TestServeSmoke$$' -v ./cmd/cobrad

ci: vet build race coverage fuzz-smoke serve-smoke

# Hot-path microbenchmarks (packed cache metadata; PB binning).
bench:
	$(GO) test -bench=BenchmarkCacheAccessHot -benchmem ./internal/cache
	$(GO) test -bench=. -benchmem ./internal/pb

# Smoke-regenerate one figure serially and in parallel (outputs must be
# byte-identical; the exp tests also enforce this).
figures-quick:
	$(GO) run ./cmd/figures -fig 10 -quick -parallel 1
	$(GO) run ./cmd/figures -fig 10 -quick -parallel 0

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
